package reunion

import (
	"io"
	"strings"
	"testing"

	"reunion/internal/workload"
)

func TestOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Threads != 4 || o.CompareLatency != 10 || o.FPInterval != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.WarmCycles != 100_000 || o.MeasureCycles != 50_000 {
		t.Fatalf("window defaults: %+v", o)
	}
	// The sentinel survives defaulting (buildSystem maps it to a literal
	// zero): folding it here would make withDefaults non-idempotent and
	// collide zero-latency checkpoint keys with default-latency ones.
	z := Options{CompareLatency: ZeroLatency}.withDefaults()
	if z.CompareLatency != ZeroLatency {
		t.Fatalf("ZeroLatency → %d", z.CompareLatency)
	}
	five := Options{CompareLatency: 5}.withDefaults()
	if five.CompareLatency != 5 {
		t.Fatalf("explicit latency clobbered: %d", five.CompareLatency)
	}
}

func TestDefaultConfigMatchesTable1(t *testing.T) {
	c := DefaultConfig()
	if c.Core.ROBSize != 256 || c.Core.SBSize != 64 || c.Core.DispatchWidth != 4 {
		t.Fatal("core parameters deviate from Table 1")
	}
	if c.L1Bytes != 64<<10 || c.L1Ways != 2 || c.L1MSHRs != 32 || c.Core.LoadToUse != 2 {
		t.Fatal("L1 parameters deviate from Table 1")
	}
	if c.L2.CapacityBytes != 16<<20 || c.L2.Banks != 4 || c.L2.Ways != 8 || c.L2.HitLatency != 35 {
		t.Fatal("L2 parameters deviate from Table 1")
	}
	if c.ITLBEntries != 128 || c.DTLBEntries != 512 {
		t.Fatal("TLB parameters deviate from Table 1")
	}
	if c.L2.MemLatency != 240 || c.L2.MemBanks != 64 {
		t.Fatal("memory parameters deviate from Table 1 (60ns at 4GHz, 64 banks)")
	}
	if c.L2.Phantom != PhantomGlobal || c.Core.FPInterval != 1 {
		t.Fatal("Reunion defaults deviate from the paper's evaluation setup")
	}
}

func TestModeAndEnumStrings(t *testing.T) {
	if ModeNonRedundant.String() != "non-redundant" || ModeStrict.String() != "strict" ||
		ModeReunion.String() != "reunion" || Mode(9).String() != "?" {
		t.Fatal("mode names")
	}
	if TopologyDirectory.String() != "directory" || TopologySnoopy.String() != "snoopy" {
		t.Fatal("topology names")
	}
}

func TestDefaultSeedsDistinct(t *testing.T) {
	s := DefaultSeeds(5)
	seen := map[uint64]bool{}
	for _, x := range s {
		if seen[x] {
			t.Fatal("duplicate seed")
		}
		seen[x] = true
	}
}

func TestExpConfigPrintf(t *testing.T) {
	var sb strings.Builder
	c := QuickExp(&sb)
	c.printf("hello %d\n", 42)
	if !strings.Contains(sb.String(), "hello 42") {
		t.Fatal("printf lost output")
	}
	silent := QuickExp(nil)
	silent.printf("dropped\n") // must not panic
}

func TestCommercialSuiteExcludesScientific(t *testing.T) {
	for _, p := range commercialSuite() {
		if p.Class == workload.Scientific {
			t.Fatalf("%s is scientific", p.Name)
		}
	}
	if len(commercialSuite()) != 7 {
		t.Fatalf("commercial suite size %d want 7", len(commercialSuite()))
	}
}

func TestCollectRates(t *testing.T) {
	w := workload.Sparse().Build(3, 2)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 3)
	sys.Prefill()
	sys.Run(8_000)
	sys.ResetStats()
	sys.Run(8_000)
	r := Collect(sys, 8_000)
	if r.Committed <= 0 || r.UserIPC <= 0 {
		t.Fatalf("no progress: %+v", r)
	}
	if r.AvgROBOccupancy <= 0 || r.AvgROBOccupancy > 256 {
		t.Fatalf("occupancy %v out of range", r.AvgROBOccupancy)
	}
	if r.Compares <= 0 {
		t.Fatal("no comparisons under Reunion")
	}
	if r.CommittedLoads == 0 || r.CommittedStores == 0 {
		t.Fatal("load/store accounting missing")
	}
}

func TestFigure5ClassMean(t *testing.T) {
	f := &Figure5Result{Rows: []WorkloadRow{
		{Workload: "a", Class: workload.Web, Values: map[string]float64{"strict": 0.9}},
		{Workload: "b", Class: workload.Web, Values: map[string]float64{"strict": 0.4}},
		{Workload: "c", Class: workload.OLTP, Values: map[string]float64{"strict": 0.7}},
	}}
	got := f.ClassMean(workload.Web, "strict")
	if got < 0.59 || got > 0.61 { // geomean(0.9, 0.4) = 0.6
		t.Fatalf("class mean %v", got)
	}
	if f.ClassMean(workload.DSS, "strict") != 0 {
		t.Fatal("empty class mean")
	}
}

func TestQuickAndFullCampaignSizing(t *testing.T) {
	q, fl := QuickExp(io.Discard), FullExp(io.Discard)
	if len(q.Seeds) >= len(fl.Seeds) {
		t.Fatal("full campaign must use more seeds")
	}
	if q.MeasureCycles >= fl.MeasureCycles || q.Table3Cycles >= fl.Table3Cycles {
		t.Fatal("full campaign must use longer windows")
	}
}
