package reunion

import (
	"fmt"

	"reunion/internal/cache"
	"reunion/internal/coherence"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/mem"
	"reunion/internal/sim"
	"reunion/internal/snoop"
	"reunion/internal/tlb"
	"reunion/internal/trace"
	"reunion/internal/workload"
)

// memorySystem is the surface both topologies (directory L2 and snoopy
// bus) provide to the system: the L1s' downstream port, the scheduler's
// tick/quiescence contract, and stats management.
type memorySystem interface {
	cache.Below
	sim.Tickable
	RegisterL1D(core int, c *cache.L1)
	CancelSync(pair int, minToken int64)
	DebugRead(block uint64) mem.Block
	ResetStats()
}

// Kernel selects the simulation kernel.
type Kernel uint8

// Kernels. Both are cycle-exact and bit-identical in every architectural
// and statistical outcome; they differ only in wall-clock cost.
const (
	// KernelFastForward (the default) is the quiescence-aware kernel:
	// when every component reports itself quiescent, the clock jumps in
	// one move to the next scheduled event, component wake cycle, or
	// deadline instead of polling every component every cycle.
	KernelFastForward Kernel = iota
	// KernelNaive ticks every component on every cycle (the reference
	// kernel the A/B equivalence tests compare against).
	KernelNaive
)

// String names the kernel.
func (k Kernel) String() string {
	if k == KernelNaive {
		return "naive"
	}
	return "fastforward"
}

// System is one assembled CMP simulation: memory image, memory-system
// topology (directory L2 or snoopy bus), cores (one per logical processor,
// or a vocal/mute pair each under ModeReunion), and the execution-model
// gates wiring them together.
type System struct {
	Cfg  Config
	Mode Mode

	EQ    *sim.EventQueue
	Sched *sim.Scheduler
	// Kernel selects the simulation kernel (default KernelFastForward).
	// Set it before the first Run; both kernels are bit-identical.
	Kernel Kernel
	Mem    *mem.Memory
	L2     *coherence.L2 // directory topology (nil under TopologySnoopy)
	Bus    *snoop.Bus    // snoopy topology (nil under TopologyDirectory)
	msys   memorySystem
	Cores  []*cpu.Core
	Pairs  []*core.Pair // ModeReunion only
	W      *workload.Workload

	gates []core.InterruptSink

	// InterruptEvery delivers an external interrupt to every logical
	// processor each time this many cycles elapse (0 = off). Interrupts
	// are replicated to both members of a pair and serviced at the same
	// comparison boundary (§4.3).
	InterruptEvery int64
	// InterruptCost is the handler service time in cycles.
	InterruptCost int64

	// Interrupt delivery runs as a self-scheduling chain of events (so
	// the fast-forward kernel can never jump across a boundary); intArmed
	// is the interval the chain was armed with, re-armed when the public
	// field changes between runs. The chain is guarded by a generation
	// counter rather than a captured cancel flag so Snapshot/Restore can
	// resurrect a chain exactly as it was: a restored chain event fires
	// iff its generation matches the restored intGen.
	intArmed int64
	intGen   int64

	// Liveness watchdog (see checkLiveness).
	watchLast   int64
	watchSince  int64
	watchHalted bool

	appliedKernel Kernel
	kernelApplied bool
}

// NewSystem builds a system running the given workload under the given
// execution model. The workload's thread count defines the number of
// logical processors.
func NewSystem(cfg Config, mode Mode, w *workload.Workload, seed uint64) *System {
	n := len(w.Threads)
	if n == 0 {
		panic("reunion: workload has no threads")
	}
	cfg.LogicalProcessors = n
	numCores := n
	if mode == ModeReunion {
		numCores = 2 * n
	}
	s := &System{Cfg: cfg, Mode: mode, EQ: sim.NewEventQueue(), Mem: mem.New(), W: w}
	w.Init(s.Mem)
	switch cfg.Topology {
	case TopologySnoopy:
		s.Bus = snoop.NewBus(snoop.Config{
			SnoopLatency: cfg.SnoopLatency,
			BusPerCycle:  max(1, numCores/4),
			MemLatency:   cfg.L2.MemLatency,
			MemBanks:     cfg.L2.MemBanks,
			MemBankBusy:  cfg.L2.MemBankBusy,
			MemMSHRs:     cfg.L2.MemMSHRs,
			Phantom:      int(cfg.L2.Phantom),
		}, s.EQ, s.Mem, numCores)
		s.msys = s.Bus
	default:
		// On-chip cache bandwidth scales in proportion with the number of
		// cores (paper §5).
		l2cfg := cfg.L2
		l2cfg.PortsPerBank = max(1, numCores/l2cfg.Banks)
		s.L2 = coherence.NewL2(l2cfg, s.EQ, s.Mem, numCores)
		s.msys = s.L2
	}

	devSalt := sim.Mix64(seed ^ 0xdec1de)

	newCore := func(id, pair int, vocal bool, gate cpu.Gate) *cpu.Core {
		ccfg := cfg.Core // copy
		l1d := cache.NewL1(fmt.Sprintf("l1d%d", id), id, pair, vocal, cfg.L1Bytes, cfg.L1Ways, cfg.L1MSHRs, s.msys, false)
		l1i := cache.NewL1(fmt.Sprintf("l1i%d", id), id, pair, vocal, cfg.L1Bytes, cfg.L1Ways, cfg.L1MSHRs, s.msys, true)
		itlb := tlb.New(cfg.ITLBEntries, cfg.ITLBWays)
		dtlb := tlb.New(cfg.DTLBEntries, cfg.DTLBWays)
		c := cpu.New(id, pair, vocal, &ccfg, s.EQ, w.Threads[pair], l1d, l1i, itlb, dtlb, gate)
		s.msys.RegisterL1D(id, l1d)
		s.Cores = append(s.Cores, c)
		return c
	}

	switch mode {
	case ModeNonRedundant:
		for t := 0; t < n; t++ {
			g := &core.NonRedundantGate{EQ: s.EQ, DevSalt: devSalt}
			newCore(t, t, true, g)
			s.gates = append(s.gates, g)
		}
	case ModeStrict:
		for t := 0; t < n; t++ {
			g := &core.StrictGate{EQ: s.EQ, CompareLat: cfg.CompareLatency, DevSalt: devSalt}
			newCore(t, t, true, g)
			s.gates = append(s.gates, g)
		}
	case ModeReunion:
		for t := 0; t < n; t++ {
			p := core.NewPair(t, s.EQ, s.msys, cfg.CompareLatency, cfg.PairTimeout, devSalt)
			vocal := newCore(2*t, t, true, p)
			mute := newCore(2*t+1, t, false, p)
			p.Bind(vocal, mute)
			s.Pairs = append(s.Pairs, p)
			s.gates = append(s.gates, p)
		}
	default:
		panic("reunion: unknown mode")
	}
	// Kernel tick order: memory system, pair gates, cores — the order the
	// original per-cycle loop used. Registration order is the per-cycle
	// semantics, so it must not change.
	s.Sched = sim.NewScheduler(s.EQ)
	s.Sched.Register(s.msys)
	for _, p := range s.Pairs {
		s.Sched.Register(p)
	}
	for _, c := range s.Cores {
		s.Sched.Register(c)
	}
	return s
}

// EnableTracing attaches a shared event ring of the given capacity to
// every pair (recovery and mismatch events) and returns it.
func (s *System) EnableTracing(capacity int) *trace.Ring {
	r := trace.New(capacity)
	for _, p := range s.Pairs {
		p.Trace = r
	}
	return r
}

// DisableTracing detaches any event ring from every pair, returning the
// system to the zero-cost untraced path. Trial runners that enable a
// per-trial ring on a cached warm system must disable it before the
// system goes back to the cache, so later (untraced) runs of other
// trials do not keep recording.
func (s *System) DisableTracing() {
	for _, p := range s.Pairs {
		p.Trace = nil
	}
}

// InterruptsServiced totals serviced external interrupts across logical
// processors.
func (s *System) InterruptsServiced() int64 {
	var n int64
	for _, g := range s.gates {
		n += g.InterruptsServiced()
	}
	return n
}

// Prefill emulates launching from a checkpoint with warmed caches: the
// workload's warm ranges are installed into the shared cache (bounded by
// its capacity) and each core's hot pages are preloaded into its DTLB and
// the first code pages into its ITLB.
func (s *System) Prefill() {
	if s.L2 != nil {
		budget := s.L2.Capacity()
		for _, r := range s.W.WarmRanges {
			for off := uint64(0); off < r.Len && budget > 0; off += mem.BlockBytes {
				if s.L2.Prefill(r.Base + off) {
					budget--
				}
			}
		}
	}
	for _, c := range s.Cores {
		if hp := s.W.HotPages; c.Pair < len(hp) {
			for _, pg := range hp[c.Pair] {
				c.DTLB.Preload(pg)
			}
		}
		th := s.W.Threads[c.Pair]
		codePages := uint64(len(th.Code)*4)/mem.PageBytes + 1
		for pg := uint64(0); pg < codePages && pg < 64; pg++ {
			c.ITLB.Preload(mem.PageOf(th.CodeBase) + pg)
		}
	}
}

// armInterrupts (re)installs the interrupt-delivery event chain when the
// public InterruptEvery field changed since the last arming. The boundary
// is a scheduled event, not a per-cycle modulo check, so the fast-forward
// kernel can never jump across it. Delivery fires at every positive
// multiple of the interval; each firing schedules the next. Re-arming
// bumps the generation, which orphans the old chain (its next firing is a
// no-op and does not reschedule). The chain closure captures only its
// generation, the interval, and the system pointer — all checkpointed —
// so a restored chain event replays exactly.
func (s *System) armInterrupts() {
	if s.InterruptEvery == s.intArmed {
		return
	}
	s.intGen++
	s.intArmed = s.InterruptEvery
	if s.InterruptEvery <= 0 {
		return
	}
	every := s.InterruptEvery
	gen := s.intGen
	s.EQ.AtD((s.EQ.Now()/every+1)*every, &evInterrupt{gen: gen, every: every}, s.interruptFire(gen, every))
}

// evInterrupt is the serializable descriptor of one link in the
// interrupt-delivery chain: the generation guard and the interval it was
// armed with (see armInterrupts).
type evInterrupt struct{ gen, every int64 }

// interruptFire returns the fire closure for one interrupt boundary. The
// checkpoint decoder rebuilds pending chain links from evInterrupt
// descriptors through this factory.
func (s *System) interruptFire(gen, every int64) func() {
	return func() {
		if s.intGen != gen {
			return
		}
		cost := s.InterruptCost
		if cost <= 0 {
			cost = 150
		}
		for _, g := range s.gates {
			g.RaiseInterrupt(cost)
		}
		s.EQ.AtD(s.EQ.Now()+every, &evInterrupt{gen: gen, every: every}, s.interruptFire(gen, every))
	}
}

// Step advances the simulation by exactly one cycle: due events fire,
// then every component ticks. This is the shared per-cycle contract of
// both kernels; the Run methods additionally fast-forward between steps
// under KernelFastForward.
func (s *System) Step() {
	s.armInterrupts()
	if !s.kernelApplied || s.appliedKernel != s.Kernel {
		s.kernelApplied, s.appliedKernel = true, s.Kernel
		for _, c := range s.Cores {
			c.SetPollEveryCycle(s.Kernel == KernelNaive)
		}
	}
	s.Sched.Step()
}

// fastForward jumps over provably idle cycles (KernelFastForward only),
// bounded by limit and by the liveness watchdog's deadline so a wedged
// simulation still panics at exactly the cycle the naive kernel would.
func (s *System) fastForward(limit int64) {
	if s.Kernel == KernelNaive {
		return
	}
	if !s.watchHalted {
		if d := s.watchSince + livenessWindow + 1; d < limit {
			limit = d
		}
	}
	s.Sched.FastForward(limit)
}

// Run advances the simulation by n cycles (with a liveness watchdog: the
// forward-progress guarantee of Lemma 2 means a correct model never stops
// committing; a stall of 500k cycles indicates a simulator bug and
// panics with the pipeline state).
func (s *System) Run(n int64) {
	limit := s.EQ.Now() + n
	for s.EQ.Now() < limit {
		s.Step()
		s.checkLiveness()
		s.fastForward(limit)
	}
}

const livenessWindow = 500_000

func (s *System) checkLiveness() {
	var total int64
	halted := true
	for _, c := range s.Cores {
		total += c.Stats.Committed
		if !c.Halted() {
			halted = false
		}
	}
	s.watchHalted = halted
	if halted {
		return
	}
	if total != s.watchLast {
		s.watchLast = total
		s.watchSince = s.EQ.Now()
		return
	}
	if s.EQ.Now()-s.watchSince > livenessWindow {
		msg := fmt.Sprintf("reunion: no commit in %d cycles at cycle %d\n", int64(livenessWindow), s.EQ.Now())
		for _, c := range s.Cores {
			msg += c.DumpState() + "\n"
		}
		panic(msg)
	}
}

// RunUntilDone advances until done (checked once per cycle, before the
// step) reports true or maxCycles elapse, returning the cycles run and
// whether done fired. done must be a pure predicate of simulation state
// (the fast-forward kernel evaluates it less often than once per cycle,
// which is equivalent exactly because skipped cycles change no state).
// Fault-injection trials use it to run to a committed-instruction
// boundary under a hard cycle deadline — the kilroy lesson: a campaign
// trial ends in a terminal outcome or a deadline, never a retry loop.
func (s *System) RunUntilDone(maxCycles int64, done func() bool) (int64, bool) {
	start := s.EQ.Now()
	limit := start + maxCycles
	for s.EQ.Now() < limit {
		if done() {
			return s.EQ.Now() - start, true
		}
		s.Step()
		s.checkLiveness()
		// The fast-forward kernel must not jump past a cycle where done
		// already holds, or the returned cycle count would overshoot.
		if s.Kernel != KernelNaive && s.EQ.Now() < limit && !done() {
			s.fastForward(limit)
		}
	}
	return s.EQ.Now() - start, done()
}

// RunUntilHalted runs until every core halts or maxCycles elapse. It
// returns the cycle count and whether all cores halted.
func (s *System) RunUntilHalted(maxCycles int64) (int64, bool) {
	start := s.EQ.Now()
	limit := start + maxCycles
	for s.EQ.Now() < limit {
		s.Step()
		s.checkLiveness()
		if s.watchHalted {
			return s.EQ.Now() - start, true
		}
		s.fastForward(limit)
	}
	return s.EQ.Now() - start, false
}

// Failed reports whether any pair signalled an unrecoverable error.
func (s *System) Failed() bool {
	for _, c := range s.Cores {
		if c.Failed() {
			return true
		}
	}
	return false
}

// ResetStats zeroes every statistic counter (measurement boundary):
// core, TLB and L1 counters, pair execution-model counters, the memory
// system's (shared-cache/bus hit, miss, queue and phantom counters —
// without this the warmup window would bleed into the measured L2/bus
// statistics), the scheduler's kernel-efficiency counters (steps, jumps,
// skipped cycles), and the gates' interrupts-serviced counters.
func (s *System) ResetStats() {
	for _, c := range s.Cores {
		c.Stats = cpu.Stats{}
		c.ITLB.ResetStats()
		c.DTLB.ResetStats()
		c.L1D.ResetStats()
		c.L1I.ResetStats()
	}
	for _, p := range s.Pairs {
		p.Stats = core.PairStats{}
	}
	for _, g := range s.gates {
		g.ResetInterruptStats()
	}
	s.msys.ResetStats()
	s.Sched.ResetStats()
}

// CoherentWord returns the coherent architectural value of the 8-byte
// word at addr, reading through the cache hierarchy (owner's copy first).
// The bool is always true; it keeps call sites explicit about the
// non-timing debug path.
func (s *System) CoherentWord(addr uint64) (int64, bool) {
	b := s.msys.DebugRead(mem.BlockAddr(addr))
	return int64(b[(addr%mem.BlockBytes)/8]), true
}

// ArmCommitDigests enables the running commit digest on every vocal core,
// latching each at target committed instructions from now. Call at a
// measurement boundary (right after ResetStats); the latched digests then
// cover exactly the next target retirements per logical processor, which
// is the instruction-precise boundary fault classification compares at.
func (s *System) ArmCommitDigests(target int64) {
	for _, c := range s.VocalCores() {
		c.EnableCommitDigest(target)
	}
}

// DigestsDone reports whether every vocal core has latched its commit
// digest (reached the commit target, or halted).
func (s *System) DigestsDone() bool {
	for _, c := range s.VocalCores() {
		if _, done := c.CommitDigest(); !done {
			return false
		}
	}
	return true
}

// CommitDigest folds the vocal cores' latched commit digests into one
// system-level value. ok is true only when every vocal core latched; a
// digest compared before then says nothing. Only vocal cores contribute:
// their retirement defines architectural state, and a recovered mute
// legitimately differs in timing, not correctness.
func (s *System) CommitDigest() (digest uint64, ok bool) {
	digest = 0x5dc0ffee
	ok = true
	for _, c := range s.VocalCores() {
		d, done := c.CommitDigest()
		if !done {
			ok = false
		}
		digest = sim.Mix64(digest ^ d)
	}
	return digest, ok
}

// ArchDigest hashes the point-in-time architectural state of the system:
// every vocal core's register file and commit point, plus every dirty
// line in the vocal L1Ds and the shared cache (dirty lines are the memory
// state not yet mirrored below; clean lines carry no unique state). All
// iteration is in deterministic array order, so two runs with identical
// architectural histories digest identically. Unlike CommitDigest it is
// comparable across runs only when their timing agrees — use it for
// snapshots of equal-schedule runs, and CommitDigest for classification
// at an instruction boundary.
func (s *System) ArchDigest() uint64 {
	d := uint64(0xa2c4d16e57)
	fold := func(x uint64) { d = sim.Mix64(d ^ x) }
	for _, c := range s.VocalCores() {
		seq, pc := c.CommitPoint()
		fold(uint64(seq))
		fold(uint64(pc))
		for _, r := range c.ARF() {
			fold(uint64(r))
		}
		c.L1D.Arr.ForEachValid(func(l *cache.Line) {
			if l.Dirty {
				fold(l.Block)
				for _, w := range l.Data {
					fold(w)
				}
			}
		})
	}
	if s.L2 != nil {
		s.L2.VisitDirty(func(block uint64, data *mem.Block) {
			fold(block)
			for _, w := range data {
				fold(w)
			}
		})
	}
	return d
}

// VocalCores returns the cores whose retirement defines each logical
// processor's architectural progress (all cores outside ModeReunion).
func (s *System) VocalCores() []*cpu.Core {
	var v []*cpu.Core
	for _, c := range s.Cores {
		if c.Vocal {
			v = append(v, c)
		}
	}
	return v
}
