package reunion

import (
	"io"
	"testing"

	"reunion/internal/workload"
)

// TestExperimentShapes asserts the qualitative results of the paper's
// evaluation at quick-campaign scale — the "shape" contract of the
// reproduction:
//
//  1. Checking overhead grows with comparison latency (Figure 6a).
//  2. Reunion never meaningfully beats the Strict oracle, and both
//     converge toward the same trend at large latencies (Figure 6b).
//  3. Input incoherence under global phantoms is orders of magnitude
//     rarer than under shared/null, and rarer than TLB misses (Table 3).
//  4. Weak phantom strengths collapse performance (Figure 7a).
//  5. Software-managed TLBs cost more than hardware-managed ones under
//     redundant execution at high latency (Figure 7b).
//  6. Sequential consistency collapses performance at high comparison
//     latency (§5.5).
func TestExperimentShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := ExpConfig{
		Seeds:         DefaultSeeds(1),
		WarmCycles:    25_000,
		MeasureCycles: 20_000,
		Table3Cycles:  60_000,
		Out:           io.Discard,
		base:          newMemo[Result](),
	}

	t.Run("figure6-latency-sensitivity", func(t *testing.T) {
		strict, err := cfg.Figure6(ModeStrict)
		if err != nil {
			t.Fatal(err)
		}
		reun, err := cfg.Figure6(ModeReunion)
		if err != nil {
			t.Fatal(err)
		}
		for _, cls := range workload.Classes() {
			s := strict.Series[cls]
			r := reun.Series[cls]
			if s[0] < 0.93 {
				t.Errorf("%s: strict at zero latency %.3f; should be near 1.0", cls, s[0])
			}
			if s[len(s)-1] > s[0]+0.02 {
				t.Errorf("%s: strict does not degrade with latency: %.3f -> %.3f", cls, s[0], s[len(s)-1])
			}
			if r[len(r)-1] > r[0]+0.02 {
				t.Errorf("%s: reunion does not degrade with latency: %.3f -> %.3f", cls, r[0], r[len(r)-1])
			}
			// Reunion never meaningfully beats the oracle.
			for i := range s {
				if r[i] > s[i]+0.05 {
					t.Errorf("%s @%dc: reunion %.3f beats strict oracle %.3f", cls, strict.Latencies[i], r[i], s[i])
				}
			}
		}
	})

	t.Run("table3-incoherence-ordering", func(t *testing.T) {
		res, err := cfg.Table3()
		if err != nil {
			t.Fatal(err)
		}
		var g, sh, nl, tlb float64
		for _, row := range res.Rows {
			g += row.IncoherencePerM["global"]
			sh += row.IncoherencePerM["shared"]
			nl += row.IncoherencePerM["null"]
			tlb += row.TLBMissPerM
		}
		if !(g < sh && sh <= nl*1.5) {
			t.Errorf("incoherence ordering violated: global=%.1f shared=%.1f null=%.1f", g, sh, nl)
		}
		if g > sh/20 {
			t.Errorf("global (%.1f) not orders of magnitude rarer than shared (%.1f)", g, sh)
		}
		if g > tlb {
			t.Errorf("global incoherence (%.1f/M) more frequent than TLB misses (%.1f/M)", g/11, tlb/11)
		}
	})

	t.Run("figure7a-weak-phantoms-collapse", func(t *testing.T) {
		res, err := cfg.Figure7a()
		if err != nil {
			t.Fatal(err)
		}
		var g, n float64
		for _, row := range res.Rows {
			g += row.Values["global"]
			n += row.Values["null"]
		}
		k := float64(len(res.Rows))
		if g/k < 0.8 {
			t.Errorf("global phantom average %.3f; should be near baseline", g/k)
		}
		if n/k > 0.75*g/k {
			t.Errorf("null phantom average %.3f does not collapse vs global %.3f", n/k, g/k)
		}
	})

	t.Run("figure7b-software-tlb-costs-more", func(t *testing.T) {
		res, err := cfg.Figure7b()
		if err != nil {
			t.Fatal(err)
		}
		last := len(res.Latencies) - 1
		if res.Software[last] > res.Hardware[last]+0.01 {
			t.Errorf("software TLB @40c (%.3f) not costlier than hardware (%.3f)",
				res.Software[last], res.Hardware[last])
		}
	})

	t.Run("sc-store-serialization", func(t *testing.T) {
		res, err := cfg.SCExperiment()
		if err != nil {
			t.Fatal(err)
		}
		last := len(res.Latencies) - 1
		if res.SC[last] > res.TSO[last]-0.05 {
			t.Errorf("SC @40c (%.3f) does not collapse vs TSO (%.3f)", res.SC[last], res.TSO[last])
		}
	})

	t.Run("interval-ablation-flat", func(t *testing.T) {
		res, err := cfg.FPIntervalAblation()
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := res.Reunion[0], res.Reunion[0]
		for _, v := range res.Reunion {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		// The paper: intervals of 1 and 50 are performance-insignificant.
		if hi-lo > 0.08 {
			t.Errorf("interval sensitivity too large: %.3f..%.3f", lo, hi)
		}
	})
}
