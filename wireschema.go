package reunion

// Wire-schema pin, enforced by the wireversion analyzer (internal/lint,
// cmd/reunion-lint). wireSchemaPinDigest is a canonical digest of every
// named type reachable from DecodedCheckpoint (plus the descriptor types
// in serialize.go's decode switches), excluding fields annotated
// //reunion:derived, //reunion:shared, or //reunion:wire-compat.
//
// If the lint fails here, a checkpoint-reachable type changed shape.
// Either the payload encoding really changed — then bump
// ckptFormatVersion (serialize.go) and refresh both constants below with
// `reunion-lint -wirepin` in the same commit — or the edit is
// wire-compatible (rename, encoder-skipped field) and the field should
// carry a //reunion:wire-compat annotation saying why.
const (
	wireSchemaPinVersion uint16 = 3
	wireSchemaPinDigest         = "d3c8f4c21be2e7cf"
)
