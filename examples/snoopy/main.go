// Snoopy topology: the paper notes (§4.1) that the Reunion execution model
// can also be implemented at a snoopy cache interface for
// microarchitectures with private caches, such as Montecito. This example
// runs the same workload under both memory-system organizations and shows
// that the execution model's behaviour (overheads, incoherence handling)
// carries over unchanged.
package main

import (
	"fmt"
	"log"

	"reunion"
	"reunion/internal/workload"
)

func main() {
	p := workload.Moldyn()
	fmt.Printf("workload: %s (%s)\n\n", p.Name, p.Class)
	fmt.Printf("%-10s %12s %12s %14s %10s\n", "topology", "base IPC", "reunion IPC", "normalized", "inc/M")

	for _, topo := range []reunion.Topology{reunion.TopologyDirectory, reunion.TopologySnoopy} {
		cfg := reunion.DefaultConfig()
		cfg.Topology = topo
		base, err := reunion.Run(reunion.Options{
			Mode: reunion.ModeNonRedundant, Workload: p, Config: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := reunion.Run(reunion.Options{
			Mode: reunion.ModeReunion, Workload: p, Config: &cfg,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12.3f %12.3f %14.3f %10.1f\n",
			topo, base.UserIPC, r.UserIPC, r.UserIPC/base.UserIPC, r.IncoherencePerM)
	}
	fmt.Println("\nAbsolute IPC differs (no shared L2 on the bus), but the Reunion")
	fmt.Println("overhead and incoherence behaviour are topology-independent.")
}
