// OLTP deep-dive: the workload class the paper's introduction motivates.
// Runs the DB2 TPC-C profile across the comparison-latency range and
// prints the per-component breakdown that explains Figure 6: serializing
// instructions dominate commercial workloads' checking overhead.
package main

import (
	"fmt"
	"log"

	"reunion"
	"reunion/internal/workload"
)

func main() {
	p := workload.DB2OLTP()
	fmt.Printf("workload: %s (%s)\n", p.Name, p.Class)

	base, err := reunion.Run(reunion.Options{Mode: reunion.ModeNonRedundant, Workload: p})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline: %.3f IPC, %.0f serializing instructions per million\n\n",
		base.UserIPC, float64(base.Serializing)*1e6/float64(base.Committed))

	fmt.Printf("%-8s %10s %10s %14s %12s\n", "latency", "strict", "reunion", "incoherence/M", "recoveries")
	for _, lat := range []int64{reunion.ZeroLatency, 5, 10, 20, 40} {
		s, err := reunion.Run(reunion.Options{
			Mode: reunion.ModeStrict, Workload: p, CompareLatency: lat,
		})
		if err != nil {
			log.Fatal(err)
		}
		r, err := reunion.Run(reunion.Options{
			Mode: reunion.ModeReunion, Workload: p, CompareLatency: lat,
		})
		if err != nil {
			log.Fatal(err)
		}
		shown := lat
		if lat == reunion.ZeroLatency {
			shown = 0
		}
		fmt.Printf("%-8d %10.3f %10.3f %14.1f %12d\n",
			shown, s.UserIPC/base.UserIPC, r.UserIPC/base.UserIPC,
			r.IncoherencePerM, r.Recoveries)
	}

	fmt.Println("\nwith software-managed TLBs (UltraSPARC III fast miss handler —")
	fmt.Println("2 traps + 3 non-idempotent MMU ops per miss, each serializing):")
	baseSW, err := reunion.Run(reunion.Options{
		Mode: reunion.ModeNonRedundant, Workload: p, TLB: reunion.TLBSoftware,
	})
	if err != nil {
		log.Fatal(err)
	}
	rSW, err := reunion.Run(reunion.Options{
		Mode: reunion.ModeReunion, Workload: p, TLB: reunion.TLBSoftware, CompareLatency: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reunion @40c, software TLB: %.3f normalized IPC\n", rSW.UserIPC/baseSW.UserIPC)
}
