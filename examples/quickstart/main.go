// Quickstart: run one workload under all three execution models and print
// the headline comparison the paper makes — the cost of redundancy with
// strict input replication vs. Reunion's relaxed input replication.
package main

import (
	"fmt"
	"log"

	"reunion"
	"reunion/internal/workload"
)

func main() {
	p := workload.Apache()
	fmt.Printf("workload: %s (%s)\n\n", p.Name, p.Class)

	base, err := reunion.Run(reunion.Options{
		Mode:     reunion.ModeNonRedundant,
		Workload: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-redundant baseline: %.3f aggregate user IPC\n", base.UserIPC)

	strict, err := reunion.Run(reunion.Options{
		Mode:     reunion.ModeStrict,
		Workload: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("strict input replication: %.3f IPC (%.1f%% overhead)\n",
		strict.UserIPC, 100*(1-strict.UserIPC/base.UserIPC))

	reun, err := reunion.Run(reunion.Options{
		Mode:     reunion.ModeReunion,
		Workload: p,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Reunion (relaxed input replication): %.3f IPC (%.1f%% overhead)\n",
		reun.UserIPC, 100*(1-reun.UserIPC/base.UserIPC))
	fmt.Printf("\nReunion events over %d instructions:\n", reun.Committed)
	fmt.Printf("  fingerprint comparisons: %d\n", reun.Compares)
	fmt.Printf("  input incoherence:       %d (%.1f per million instructions)\n",
		reun.IncoherenceEvents, reun.IncoherencePerM)
	fmt.Printf("  synchronizing requests:  %d\n", reun.SyncRequests)
	fmt.Printf("  TLB misses (reference):  %.0f per million\n", reun.TLBMissPerM)
}
