// Phantom-strength exploration: how diligently a phantom request searches
// for coherent data determines how often the mute core observes input
// incoherence — and whether Reunion's recovery machinery becomes the
// bottleneck (paper §4.2 and §5.4).
//
// This example runs one workload at each strength and contrasts the
// incoherence rate and the performance cost.
package main

import (
	"fmt"
	"log"

	"reunion"
	"reunion/internal/workload"
)

func main() {
	p := workload.DSSQ1()
	fmt.Printf("workload: %s (%s)\n\n", p.Name, p.Class)

	base, err := reunion.Run(reunion.Options{Mode: reunion.ModeNonRedundant, Workload: p})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %12s %14s %12s %12s\n",
		"phantom", "norm. IPC", "incoherence/M", "recoveries", "sync reqs")
	for _, ph := range []reunion.Phantom{
		reunion.PhantomGlobal, reunion.PhantomShared, reunion.PhantomNull,
	} {
		r, err := reunion.Run(reunion.Options{
			Mode:     reunion.ModeReunion,
			Workload: p,
			Phantom:  ph,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12.3f %14.1f %12d %12d\n",
			ph, r.UserIPC/base.UserIPC, r.IncoherencePerM, r.Recoveries, r.SyncRequests)
	}
	fmt.Println("\nExpected shape (paper Table 3 / Figure 7a): global keeps input")
	fmt.Println("incoherence orders of magnitude rarer than shared/null, whose")
	fmt.Println("recovery rate collapses performance.")
}
