// Fault injection: validate the soft-error story end to end.
//
// The paper's premise is that the same fingerprint-compare + rollback
// machinery handles both soft errors and input incoherence. This example
// injects single-bit transients into instruction results on random cores
// of a Reunion system running the lock-protected counter microbenchmark,
// and then checks that (a) every fired fault was detected and recovered
// and (b) the program still computed the architecturally correct result.
package main

import (
	"fmt"
	"log"

	"reunion"
	"reunion/internal/fault"
	"reunion/internal/workload"
)

func main() {
	const (
		threads = 4
		iters   = 200
	)
	w := workload.MicroCounter(threads, iters)
	sys := reunion.NewSystem(reunion.DefaultConfig(), reunion.ModeReunion, w, 42)

	campaign := fault.NewCampaign(99, 3_000, sys.Cores)

	var cycles int64
	for cycles = 0; cycles < 30_000_000; cycles++ {
		sys.Step()
		campaign.Tick(cycles)
		done := true
		for _, c := range sys.Cores {
			if !c.Halted() {
				done = false
				break
			}
		}
		if done {
			break
		}
	}
	if sys.Failed() {
		log.Fatal("unrecoverable failure signalled — should not happen for transient faults")
	}

	counter, _ := sys.CoherentWord(workload.CounterAddr)
	want := int64(threads * iters)

	var recoveries, faultEvents, incoherence, phase2 int64
	for _, p := range sys.Pairs {
		recoveries += p.Stats.Recoveries
		faultEvents += p.Stats.FaultEvents
		incoherence += p.Stats.IncoherenceEvents
		phase2 += p.Stats.Phase2
	}

	fmt.Printf("ran %d cycles with fault injection\n", cycles)
	fmt.Printf("faults armed:    %d\n", campaign.Injected)
	fmt.Printf("faults fired:    %d (remainder armed on squashed/halted paths)\n", campaign.Fired)
	fmt.Printf("recoveries:      %d (%d attributed to faults, %d to incoherence, %d phase-2)\n",
		recoveries, faultEvents, incoherence, phase2)
	fmt.Printf("final counter:   %d (want %d)\n", counter, want)
	if counter != want {
		log.Fatal("ARCHITECTURAL CORRUPTION — detection/recovery failed")
	}
	fmt.Println("all injected faults detected or masked; result architecturally correct ✓")
}
