package reunion

import (
	"errors"
	"fmt"
	"hash/crc64"

	"reunion/internal/bin"
	"reunion/internal/cache"
	"reunion/internal/coherence"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/dist"
	"reunion/internal/mem"
	"reunion/internal/sim"
	"reunion/internal/snoop"
)

// Binary checkpoint serialization: EncodeCheckpoint writes a Checkpoint
// to a self-describing byte blob and DecodeCheckpoint + Bind rebuild one
// onto a freshly constructed System, so warm state crosses process (and
// machine) boundaries — the persistent checkpoint store's substrate.
//
// Format:
//
//	magic "RNCK" | u16 version | u64 options key | payload | u64 CRC-64
//
// The options key is the snapshot-invariant fingerprint of the Options
// that built the system (same hashing discipline as the dist journal
// header); Bind refuses a blob whose key disagrees with the target
// system's options, which is how a store can never hand warm state to a
// configuration it does not match. The CRC-64 (ECMA, as in dist.Journal)
// seals everything before it; DecodeCheckpoint refuses a blob whose
// checksum disagrees. Beyond the checksum, every decoder validates
// structure — enum ranges, index bounds, sorted-map order — so even a
// blob with a forged checksum cannot produce a restorable Checkpoint.
//
// Closures are never serialized. Every pending event carries a plain-data
// descriptor (sim.Event.Desc), every MSHR waiter a callback descriptor
// (cache.CB), and every in-flight request is interned into a table so
// pointer identity — which processSync compares — survives the round
// trip. Bind rebuilds each closure through the same factory the live
// pipeline used, then validates component geometry before handing back a
// Checkpoint that System.Restore accepts exactly like a live snapshot.

// ckptMagic identifies a Reunion checkpoint blob.
const ckptMagic = "RNCK"

// ckptFormatVersion is bumped on any change to the encoding. Decoders
// read exactly one version; the golden-format tests pin the byte layout
// so an accidental change fails loudly instead of corrupting stores.
// Version 2: the issue-stage memo stamps (Core.execStamp and the
// per-entry pollStamp) changed dynamics when the memo narrowed from
// any-progress to readiness-affecting changes; encoded values differ
// even though the byte layout is unchanged.
// Version 3: the per-entry pollStamp left the wire — the issue stage's
// park memos became fully derived state (per-producer wait pairs
// reconstructed from the unready flags), so ROB entries no longer carry
// a memo field.
const ckptFormatVersion uint16 = 3

// ckptCRCTable is the CRC-64 (ECMA) table sealing checkpoint blobs,
// matching the dist journal's footer discipline.
var ckptCRCTable = crc64.MakeTable(crc64.ECMA)

// ckptHeaderBytes is magic + version + options key.
const ckptHeaderBytes = 4 + 2 + 8

// CheckpointKey fingerprints the snapshot-invariant options — everything
// warmKey covers, including the kernel and any config override — into
// the content-address a checkpoint store files the blob under.
func CheckpointKey(o Options) uint64 {
	return dist.Fingerprint("reunion-ckpt", warmKey(o.withDefaults()))
}

// event descriptor type tags (wire values; append only).
const (
	tagEvDecide uint8 = iota + 1
	tagCohXbar
	tagCohReply
	tagCohMemCont
	tagCohPhantomMem
	tagSnoopReply
	tagSnoopMemFetch
	tagSnoopPhantomMem
	tagSnoopSyncMem
	tagInterrupt
)

// ErrNoDescriptor reports a pending event scheduled without a
// serializable descriptor. Warm-phase checkpoints never contain one (all
// production scheduling sites attach descriptors); trial-time events
// (fault arming) do not cross process boundaries by design.
var ErrNoDescriptor = errors.New("reunion: pending event has no serializable descriptor")

// visitDescReqs calls fn for every request a descriptor references, in
// field order.
func visitDescReqs(desc any, fn func(*cache.Req)) {
	switch d := desc.(type) {
	case *coherence.EvXbar:
		fn(d.R)
	case *coherence.EvReply:
		fn(d.R)
	case *coherence.EvMemCont:
		fn(d.R)
		if d.Cont == coherence.ContSync {
			fn(d.Vocal)
			fn(d.Mute)
		}
	case *coherence.EvPhantomMem:
		fn(d.R)
	case *snoop.EvReply:
		fn(d.R)
	case *snoop.EvMemFetch:
		fn(d.R)
	case *snoop.EvPhantomMem:
		fn(d.R)
	case *snoop.EvSyncMem:
		fn(d.V)
		fn(d.M)
	}
}

// EncodeCheckpoint serializes a checkpoint into a store-ready blob keyed
// by the options fingerprint. It fails if any pending event or MSHR
// waiter lacks a serializable descriptor (test-only entry points).
func EncodeCheckpoint(cp *Checkpoint, key uint64) ([]byte, error) {
	w := &bin.Writer{}
	w.Raw([]byte(ckptMagic))
	w.U16(ckptFormatVersion)
	w.U64(key)

	// Intern every request reachable from event descriptors and the
	// memory-system snapshot, in deterministic visit order.
	reqIdx := make(map[*cache.Req]int)
	var reqs []*cache.Req
	intern := func(r *cache.Req) {
		if _, ok := reqIdx[r]; !ok {
			reqIdx[r] = len(reqs)
			reqs = append(reqs, r)
		}
	}
	events := cp.eq.Events()
	for _, ev := range events {
		visitDescReqs(ev.Desc, intern)
	}
	if cp.l2 != nil {
		cp.l2.VisitReqs(intern)
	}
	if cp.bus != nil {
		cp.bus.VisitReqs(intern)
	}
	reqID := func(r *cache.Req) int { return reqIdx[r] }

	w.Uvarint(uint64(len(reqs)))
	for _, r := range reqs {
		r.EncodeBody(w)
	}

	now, order := cp.eq.Clock()
	w.I64(now)
	w.I64(order)
	w.Uvarint(uint64(len(events)))
	for _, ev := range events {
		w.I64(ev.At)
		w.I64(ev.Order)
		switch d := ev.Desc.(type) {
		case *core.EvDecide:
			w.U8(tagEvDecide)
			d.Encode(w)
		case *coherence.EvXbar:
			w.U8(tagCohXbar)
			d.Encode(w, reqID)
		case *coherence.EvReply:
			w.U8(tagCohReply)
			d.Encode(w, reqID)
		case *coherence.EvMemCont:
			w.U8(tagCohMemCont)
			d.Encode(w, reqID)
		case *coherence.EvPhantomMem:
			w.U8(tagCohPhantomMem)
			d.Encode(w, reqID)
		case *snoop.EvReply:
			w.U8(tagSnoopReply)
			d.Encode(w, reqID)
		case *snoop.EvMemFetch:
			w.U8(tagSnoopMemFetch)
			d.Encode(w, reqID)
		case *snoop.EvPhantomMem:
			w.U8(tagSnoopPhantomMem)
			d.Encode(w, reqID)
		case *snoop.EvSyncMem:
			w.U8(tagSnoopSyncMem)
			d.Encode(w, reqID)
		case *evInterrupt:
			w.U8(tagInterrupt)
			w.I64(d.gen)
			w.I64(d.every)
		case nil:
			return nil, ErrNoDescriptor
		default:
			return nil, fmt.Errorf("reunion: pending event has unknown descriptor type %T", ev.Desc)
		}
	}

	steps, ffs, skipped := cp.sched.Counters()
	w.I64(steps)
	w.I64(ffs)
	w.I64(skipped)

	cp.mem.Encode(w)

	w.Uvarint(uint64(len(cp.cores)))
	for _, cs := range cp.cores {
		if err := cs.Encode(w); err != nil {
			return nil, err
		}
	}
	w.Uvarint(uint64(len(cp.pairs)))
	for _, ps := range cp.pairs {
		ps.Encode(w)
	}
	w.Uvarint(uint64(len(cp.nr)))
	for _, gs := range cp.nr {
		gs.Encode(w)
	}
	w.Uvarint(uint64(len(cp.strict)))
	for _, gs := range cp.strict {
		gs.Encode(w)
	}
	w.Bool(cp.l2 != nil)
	if cp.l2 != nil {
		cp.l2.Encode(w, reqID)
	}
	w.Bool(cp.bus != nil)
	if cp.bus != nil {
		cp.bus.Encode(w, reqID)
	}

	w.U8(uint8(cp.kernel))
	w.U8(uint8(cp.appliedKernel))
	w.Bool(cp.kernelApplied)
	w.I64(cp.interruptEvery)
	w.I64(cp.interruptCost)
	w.I64(cp.intArmed)
	w.I64(cp.intGen)
	w.I64(cp.watchLast)
	w.I64(cp.watchSince)
	w.Bool(cp.watchHalted)

	w.U64(crc64.Checksum(w.Bytes(), ckptCRCTable))
	return w.Bytes(), nil
}

// decodedEvent is one pending event's plain-data form: schedule position
// plus descriptor; Bind attaches the fire closure.
type decodedEvent struct {
	at, order int64
	desc      any
}

// DecodedCheckpoint is a checkpoint parsed from bytes but not yet bound
// to a System: pure data, no closures, no component pointers. Bind
// validates it against a live system and produces a restorable
// Checkpoint. Keeping decode and bind separate makes decoding cheap and
// total (the fuzz target's property) and lets golden tests deep-compare
// decoded state without a machine.
type DecodedCheckpoint struct {
	// Key is the options fingerprint the blob was encoded under.
	Key uint64

	reqs   []*cache.Req
	now    int64
	order  int64
	events []decodedEvent

	steps, ffs, skipped int64

	mem    *mem.MemoryState
	cores  []*cpu.CoreState
	pairs  []*core.PairState
	nr     []*core.NonRedundantGateState
	strict []*core.StrictGateState
	l2     *coherence.L2State
	bus    *snoop.BusState

	kernel, appliedKernel Kernel
	kernelApplied         bool

	interruptEvery, interruptCost int64
	intArmed, intGen              int64

	watchLast, watchSince int64
	watchHalted           bool
}

// DecodeCheckpoint parses a checkpoint blob: header, checksum, then every
// component snapshot with full structural validation. It never panics on
// arbitrary input and never returns a DecodedCheckpoint alongside an
// error.
func DecodeCheckpoint(data []byte) (*DecodedCheckpoint, error) {
	if len(data) < ckptHeaderBytes+8 {
		return nil, errors.New("reunion: checkpoint blob truncated before header")
	}
	if string(data[:4]) != ckptMagic {
		return nil, errors.New("reunion: not a checkpoint blob (bad magic)")
	}
	hr := bin.NewReader(data[4:ckptHeaderBytes])
	version := hr.U16()
	key := hr.U64()
	if version != ckptFormatVersion {
		return nil, fmt.Errorf("reunion: checkpoint format version %d; this build reads version %d",
			version, ckptFormatVersion)
	}
	payload, footer := data[:len(data)-8], data[len(data)-8:]
	want := bin.NewReader(footer).U64()
	if got := crc64.Checksum(payload, ckptCRCTable); got != want {
		return nil, fmt.Errorf("reunion: checkpoint checksum mismatch (blob %016x, computed %016x)", want, got)
	}

	r := bin.NewReader(payload[ckptHeaderBytes:])
	d := &DecodedCheckpoint{Key: key}

	nreq := r.Len(1 + 8 + 1 + 1 + 1 + 8 + 1)
	for i := 0; i < nreq; i++ {
		rq := cache.DecodeReqBody(r)
		if rq == nil {
			return nil, fmt.Errorf("reunion: checkpoint request table: %w", r.Err())
		}
		d.reqs = append(d.reqs, rq)
	}
	req := func(i int) *cache.Req {
		if i < 0 || i >= len(d.reqs) {
			return nil
		}
		return d.reqs[i]
	}

	d.now = r.I64()
	d.order = r.I64()
	nev := r.Len(8 + 8 + 1 + 1)
	for i := 0; i < nev; i++ {
		ev := decodedEvent{at: r.I64(), order: r.I64()}
		tag := r.U8()
		if r.Err() != nil {
			return nil, fmt.Errorf("reunion: checkpoint events: %w", r.Err())
		}
		switch tag {
		case tagEvDecide:
			ev.desc = core.DecodeEvDecide(r)
		case tagCohXbar:
			ev.desc = coherence.DecodeEvXbar(r, req)
		case tagCohReply:
			ev.desc = coherence.DecodeEvReply(r, req)
		case tagCohMemCont:
			ev.desc = coherence.DecodeEvMemCont(r, req)
		case tagCohPhantomMem:
			ev.desc = coherence.DecodeEvPhantomMem(r, req)
		case tagSnoopReply:
			ev.desc = snoop.DecodeEvReply(r, req)
		case tagSnoopMemFetch:
			ev.desc = snoop.DecodeEvMemFetch(r, req)
		case tagSnoopPhantomMem:
			ev.desc = snoop.DecodeEvPhantomMem(r, req)
		case tagSnoopSyncMem:
			ev.desc = snoop.DecodeEvSyncMem(r, req)
		case tagInterrupt:
			ev.desc = &evInterrupt{gen: r.I64(), every: r.I64()}
		default:
			return nil, fmt.Errorf("reunion: checkpoint event %d has unknown descriptor tag %d", i, tag)
		}
		if r.Err() != nil {
			return nil, fmt.Errorf("reunion: checkpoint event %d: %w", i, r.Err())
		}
		d.events = append(d.events, ev)
	}

	d.steps = r.I64()
	d.ffs = r.I64()
	d.skipped = r.I64()

	if d.mem = mem.DecodeMemoryState(r); d.mem == nil {
		return nil, fmt.Errorf("reunion: checkpoint memory: %w", r.Err())
	}

	ncores := r.Len(64)
	for i := 0; i < ncores; i++ {
		cs := cpu.DecodeCoreState(r)
		if cs == nil {
			return nil, fmt.Errorf("reunion: checkpoint core %d: %w", i, r.Err())
		}
		d.cores = append(d.cores, cs)
	}
	npairs := r.Len(32)
	for i := 0; i < npairs; i++ {
		ps := core.DecodePairState(r)
		if ps == nil {
			return nil, fmt.Errorf("reunion: checkpoint pair %d: %w", i, r.Err())
		}
		d.pairs = append(d.pairs, ps)
	}
	nnr := r.Len(8)
	for i := 0; i < nnr; i++ {
		gs := core.DecodeNonRedundantGateState(r)
		if gs == nil {
			return nil, fmt.Errorf("reunion: checkpoint gate %d: %w", i, r.Err())
		}
		d.nr = append(d.nr, gs)
	}
	nstrict := r.Len(8)
	for i := 0; i < nstrict; i++ {
		gs := core.DecodeStrictGateState(r)
		if gs == nil {
			return nil, fmt.Errorf("reunion: checkpoint gate %d: %w", i, r.Err())
		}
		d.strict = append(d.strict, gs)
	}
	if r.Bool() {
		if d.l2 = coherence.DecodeL2State(r, req); d.l2 == nil {
			return nil, fmt.Errorf("reunion: checkpoint L2: %w", r.Err())
		}
	}
	if r.Bool() {
		if d.bus = snoop.DecodeBusState(r, req); d.bus == nil {
			return nil, fmt.Errorf("reunion: checkpoint bus: %w", r.Err())
		}
	}

	d.kernel = Kernel(r.U8())
	d.appliedKernel = Kernel(r.U8())
	if r.Err() == nil && (d.kernel > KernelNaive || d.appliedKernel > KernelNaive) {
		return nil, errors.New("reunion: checkpoint names an unknown kernel")
	}
	d.kernelApplied = r.Bool()
	d.interruptEvery = r.I64()
	d.interruptCost = r.I64()
	d.intArmed = r.I64()
	d.intGen = r.I64()
	d.watchLast = r.I64()
	d.watchSince = r.I64()
	d.watchHalted = r.Bool()

	if r.Err() != nil {
		return nil, fmt.Errorf("reunion: checkpoint trailer: %w", r.Err())
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("reunion: checkpoint has %d trailing bytes", r.Remaining())
	}
	return d, nil
}

// resolveCB rebuilds the (loadFn, storeFn) completion pair a decoded MSHR
// waiter descriptor stands for, bounds-checking every index against the
// live system before constructing closures that will use them.
func (s *System) resolveCB(cb *cache.CB, depth int) (func(uint64), func(), error) {
	if depth > 1 {
		return nil, nil, errors.New("reunion: checkpoint callback descriptor nested too deeply")
	}
	if cb.Core < 0 || cb.Core >= len(s.Cores) {
		return nil, nil, fmt.Errorf("reunion: checkpoint callback core %d out of range [0,%d)", cb.Core, len(s.Cores))
	}
	c := s.Cores[cb.Core]
	needIdx := func() error {
		if cb.Idx < 0 || cb.Idx >= c.ROBLen() {
			return fmt.Errorf("reunion: checkpoint callback ROB slot %d out of range [0,%d)", cb.Idx, c.ROBLen())
		}
		if cb.Word < 0 || cb.Word >= mem.BlockWords {
			return fmt.Errorf("reunion: checkpoint callback word %d out of range", cb.Word)
		}
		return nil
	}
	switch cb.Kind {
	case cache.CBIfetchDone:
		done := c.IfetchDoneFn(cb.Epoch)
		return func(uint64) { done() }, nil, nil
	case cache.CBLoadDone:
		if err := needIdx(); err != nil {
			return nil, nil, err
		}
		return c.LoadDoneFn(cb.Idx, cb.Seq, cb.Epoch), nil, nil
	case cache.CBStoreDone:
		return nil, c.StoreDoneFn(cb.Seq), nil
	case cache.CBAtomicBegin:
		if err := needIdx(); err != nil {
			return nil, nil, err
		}
		return c.L1D.AtomicFillWrap(cb.Block, c.AtomicFinishFn(cb.Idx, cb.Seq, cb.Epoch, cb.Block, cb.Word)), nil, nil
	case cache.CBAtomicFin:
		if err := needIdx(); err != nil {
			return nil, nil, err
		}
		return c.AtomicFinishFn(cb.Idx, cb.Seq, cb.Epoch, cb.Block, cb.Word), nil, nil
	case cache.CBSyncWrap:
		if cb.Pair < 0 || cb.Pair >= len(s.Pairs) {
			return nil, nil, fmt.Errorf("reunion: checkpoint callback pair %d out of range [0,%d)", cb.Pair, len(s.Pairs))
		}
		if cb.Inner == nil {
			return nil, nil, errors.New("reunion: checkpoint sync-wrap callback has no inner callback")
		}
		inner, _, err := s.resolveCB(cb.Inner, depth+1)
		if err != nil {
			return nil, nil, err
		}
		if inner == nil {
			return nil, nil, errors.New("reunion: checkpoint sync-wrap callback wraps a store callback")
		}
		return s.Pairs[cb.Pair].SyncDoneFn(cb.Gen, inner), nil, nil
	}
	return nil, nil, fmt.Errorf("reunion: checkpoint callback has unknown kind %d", cb.Kind)
}

// Bind validates a decoded checkpoint against a live system, rebuilds
// every closure (request completions, MSHR waiters, event fire functions)
// through the system's factories, and returns a Checkpoint restorable
// onto that system. key is the fingerprint of the options that built sys;
// a mismatch — different geometry, workload, seed, or anything else the
// warm key covers — is an error, never a silent cross-restore.
func (d *DecodedCheckpoint) Bind(sys *System, key uint64) (*Checkpoint, error) {
	if d.Key != key {
		return nil, fmt.Errorf("reunion: checkpoint keyed %016x, system options key %016x", d.Key, key)
	}
	if len(d.cores) != len(sys.Cores) {
		return nil, fmt.Errorf("reunion: checkpoint has %d cores, system has %d", len(d.cores), len(sys.Cores))
	}
	if len(d.pairs) != len(sys.Pairs) {
		return nil, fmt.Errorf("reunion: checkpoint has %d pairs, system has %d", len(d.pairs), len(sys.Pairs))
	}
	if (d.l2 != nil) != (sys.L2 != nil) || (d.bus != nil) != (sys.Bus != nil) {
		return nil, errors.New("reunion: checkpoint topology does not match system")
	}
	var liveNR []*core.NonRedundantGate
	var liveStrict []*core.StrictGate
	if len(sys.Pairs) == 0 {
		for _, g := range sys.gates {
			switch g := g.(type) {
			case *core.NonRedundantGate:
				liveNR = append(liveNR, g)
			case *core.StrictGate:
				liveStrict = append(liveStrict, g)
			}
		}
	}
	if len(d.nr) != len(liveNR) || len(d.strict) != len(liveStrict) {
		return nil, errors.New("reunion: checkpoint gate roster does not match system")
	}

	// Rebind request completions: fills resolve their L1 MSHR by block at
	// fire time, so (Kind, Core, Block) fully determines the closure.
	for i, rq := range d.reqs {
		if rq.Core < 0 || rq.Core >= len(sys.Cores) {
			return nil, fmt.Errorf("reunion: checkpoint request %d core %d out of range [0,%d)", i, rq.Core, len(sys.Cores))
		}
		if rq.Pair < 0 || rq.Pair >= len(sys.Cores) {
			return nil, fmt.Errorf("reunion: checkpoint request %d pair %d out of range", i, rq.Pair)
		}
		switch rq.Kind {
		case cache.Writeback:
			rq.Done = nil
		case cache.Ifetch:
			rq.Done = sys.Cores[rq.Core].L1I.FillFn(rq.Block)
		default:
			rq.Done = sys.Cores[rq.Core].L1D.FillFn(rq.Block)
		}
	}

	for i, cs := range d.cores {
		if err := cs.BindTo(sys.Cores[i]); err != nil {
			return nil, fmt.Errorf("reunion: checkpoint core %d: %w", i, err)
		}
		var rerr error
		cs.ResolveWaiters(func(cb *cache.CB) (func(uint64), func()) {
			loadFn, storeFn, err := sys.resolveCB(cb, 0)
			if err != nil && rerr == nil {
				rerr = err
			}
			return loadFn, storeFn
		})
		if rerr != nil {
			return nil, fmt.Errorf("reunion: checkpoint core %d: %w", i, rerr)
		}
	}
	for i, ps := range d.pairs {
		if err := ps.BindTo(sys.Pairs[i]); err != nil {
			return nil, fmt.Errorf("reunion: checkpoint pair %d: %w", i, err)
		}
	}
	for i, gs := range d.nr {
		gs.BindTo(liveNR[i])
	}
	for i, gs := range d.strict {
		gs.BindTo(liveStrict[i])
	}
	if d.l2 != nil {
		if err := d.l2.BindTo(sys.L2); err != nil {
			return nil, err
		}
	}
	if d.bus != nil {
		if err := d.bus.BindTo(sys.Bus); err != nil {
			return nil, err
		}
	}

	events := make([]*sim.Event, 0, len(d.events))
	for i, de := range d.events {
		ev := &sim.Event{At: de.at, Order: de.order, Desc: de.desc}
		switch desc := de.desc.(type) {
		case *core.EvDecide:
			if desc.PairID < 0 || desc.PairID >= len(sys.Pairs) {
				return nil, fmt.Errorf("reunion: checkpoint event %d pair %d out of range [0,%d)", i, desc.PairID, len(sys.Pairs))
			}
			ev.Fn = sys.Pairs[desc.PairID].FireDecide(desc.Gen, desc.Match, desc.AEnd, desc.BEnd, desc.EndsMem)
		case *coherence.EvXbar:
			if sys.L2 == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the directory L2 on a snoopy system", i)
			}
			ev.Fn = sys.L2.XbarArrive(desc.R)
		case *coherence.EvReply:
			if sys.L2 == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the directory L2 on a snoopy system", i)
			}
			ev.Fn = sys.L2.DeliverReply(desc)
		case *coherence.EvMemCont:
			if sys.L2 == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the directory L2 on a snoopy system", i)
			}
			ev.Fn = sys.L2.MemFetchDone(desc)
		case *coherence.EvPhantomMem:
			if sys.L2 == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the directory L2 on a snoopy system", i)
			}
			ev.Fn = sys.L2.PhantomMemDone(desc.R)
		case *snoop.EvReply:
			if sys.Bus == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the snoopy bus on a directory system", i)
			}
			ev.Fn = sys.Bus.DeliverReply(desc)
		case *snoop.EvMemFetch:
			if sys.Bus == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the snoopy bus on a directory system", i)
			}
			ev.Fn = sys.Bus.MemFetchDone(desc)
		case *snoop.EvPhantomMem:
			if sys.Bus == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the snoopy bus on a directory system", i)
			}
			ev.Fn = sys.Bus.PhantomMemDone(desc.R)
		case *snoop.EvSyncMem:
			if sys.Bus == nil {
				return nil, fmt.Errorf("reunion: checkpoint event %d targets the snoopy bus on a directory system", i)
			}
			ev.Fn = sys.Bus.SyncMemDone(desc)
		case *evInterrupt:
			ev.Fn = sys.interruptFire(desc.gen, desc.every)
		default:
			return nil, fmt.Errorf("reunion: checkpoint event %d has unknown descriptor type %T", i, de.desc)
		}
		events = append(events, ev)
	}

	cp := &Checkpoint{
		owner: sys,
		eq:    sim.NewEventQueueState(d.now, d.order, events),
		sched: sim.NewSchedulerState(d.steps, d.ffs, d.skipped),
		mem:   d.mem,

		cores:  d.cores,
		pairs:  d.pairs,
		nr:     d.nr,
		strict: d.strict,
		l2:     d.l2,
		bus:    d.bus,

		kernel:        d.kernel,
		appliedKernel: d.appliedKernel,
		kernelApplied: d.kernelApplied,

		interruptEvery: d.interruptEvery,
		interruptCost:  d.interruptCost,
		intArmed:       d.intArmed,
		intGen:         d.intGen,

		watchLast:   d.watchLast,
		watchSince:  d.watchSince,
		watchHalted: d.watchHalted,
	}
	return cp, nil
}
