package reunion

import "testing"

// TestWireSchemaPinTracksFormatVersion mirrors the wireversion
// analyzer's coupling rule at test time: re-pinning the digest without
// bumping the format version (or vice versa) is always a mistake.
func TestWireSchemaPinTracksFormatVersion(t *testing.T) {
	if wireSchemaPinVersion != ckptFormatVersion {
		t.Fatalf("wireSchemaPinVersion = %d, ckptFormatVersion = %d: refresh the pin "+
			"(reunion-lint -wirepin) in the same change that bumps the format",
			wireSchemaPinVersion, ckptFormatVersion)
	}
	if len(wireSchemaPinDigest) != 16 {
		t.Fatalf("wireSchemaPinDigest %q is not a 16-hex digest", wireSchemaPinDigest)
	}
}
