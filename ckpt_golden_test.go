package reunion

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"reunion/internal/workload"
)

// The golden-format tests pin the checkpoint byte layout: committed
// blobs under testdata/ckpt must both decode to deep-equal snapshots
// and match the current encoder byte for byte. An encoding change that
// forgets to bump ckptFormatVersion fails here with instructions, not
// in production as a store full of silently unreadable checkpoints.

var updateGolden = flag.Bool("update", false, "regenerate golden checkpoint blobs under testdata/ckpt")

// tinyWorkload shrinks a profile's memory footprint so a pinned (or
// fuzz-corpus) blob is a few hundred kilobytes instead of the tens of
// megabytes a production cell's memory image occupies. Access behavior
// is unchanged in kind — same mix, same sharing — only the private set
// is smaller.
func tinyWorkload() workload.Params {
	p := workload.Apache()
	p.Name = "apache-tiny"
	p.PrivateBytes = 64 << 10
	p.HotBytes = 32 << 10
	return p
}

// goldenCells are the pinned format exemplars: one per structural
// variant the encoding branches on (topology, execution mode, kernel).
func goldenCells() []struct {
	name string
	o    Options
} {
	cell := func(name string, topo Topology, mode Mode, kern Kernel) struct {
		name string
		o    Options
	} {
		cfg := DefaultConfig()
		cfg.Topology = topo
		return struct {
			name string
			o    Options
		}{name, Options{
			Mode:       mode,
			Workload:   tinyWorkload(),
			Seed:       23,
			WarmCycles: 3_000,
			Config:     &cfg,
			Kernel:     kern,
		}.withDefaults()}
	}
	return []struct {
		name string
		o    Options
	}{
		cell("dir-reunion-ff", TopologyDirectory, ModeReunion, KernelFastForward),
		cell("dir-nonred-naive", TopologyDirectory, ModeNonRedundant, KernelNaive),
		cell("snoop-reunion-naive", TopologySnoopy, ModeReunion, KernelNaive),
		cell("snoop-strict-ff", TopologySnoopy, ModeStrict, KernelFastForward),
	}
}

func goldenPath(name string) string {
	return filepath.Join("testdata", "ckpt", name+".bin")
}

// TestCheckpointGoldenFormat re-encodes each pinned cell and compares
// against the committed blob. With -update it regenerates the files
// instead (do this only together with a ckptFormatVersion bump, or for
// brand-new cells).
func TestCheckpointGoldenFormat(t *testing.T) {
	for _, cell := range goldenCells() {
		blob, err := EncodeCheckpoint(warmSystem(cell.o).Snapshot(), CheckpointKey(cell.o))
		if err != nil {
			t.Fatalf("%s: encode: %v", cell.name, err)
		}
		path := goldenPath(cell.name)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: wrote %d bytes", path, len(blob))
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: no golden blob (generate with -update): %v", cell.name, err)
		}
		if !bytes.Equal(blob, want) {
			t.Errorf("%s: checkpoint encoding changed without a version bump "+
				"(golden %d bytes, current %d). If the format change is intentional, "+
				"bump ckptFormatVersion and regenerate with "+
				"`go test -run TestCheckpointGoldenFormat -update ./...`; "+
				"otherwise the change breaks every stored checkpoint.",
				cell.name, len(want), len(blob))
		}
	}
}

// TestCheckpointGoldenDecode proves the committed blobs still decode to
// snapshots deep-equal to freshly encoded ones — the decoder-side half
// of the compatibility pin (an encoder could drift in ways byte
// comparison alone would blame on the wrong side).
func TestCheckpointGoldenDecode(t *testing.T) {
	if *updateGolden {
		t.Skip("regenerating golden blobs")
	}
	for _, cell := range goldenCells() {
		committed, err := os.ReadFile(goldenPath(cell.name))
		if err != nil {
			t.Fatalf("%s: no golden blob (generate with -update): %v", cell.name, err)
		}
		fromDisk, err := DecodeCheckpoint(committed)
		if err != nil {
			t.Fatalf("%s: committed golden blob no longer decodes: %v", cell.name, err)
		}
		blob, err := EncodeCheckpoint(warmSystem(cell.o).Snapshot(), CheckpointKey(cell.o))
		if err != nil {
			t.Fatal(err)
		}
		fresh, err := DecodeCheckpoint(blob)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(fromDisk, fresh) {
			t.Errorf("%s: committed golden blob decodes to a different snapshot than a fresh encoding", cell.name)
		}
		// And the pinned blob must still bind and restore.
		sys := buildSystem(cell.o)
		cp, err := fromDisk.Bind(sys, CheckpointKey(cell.o))
		if err != nil {
			t.Fatalf("%s: committed golden blob no longer binds: %v", cell.name, err)
		}
		sys.Restore(cp)
		if got, want := fmt.Sprint(sys.EQ.Now() > 0), "true"; got != want {
			t.Errorf("%s: restored clock did not advance past zero", cell.name)
		}
	}
}
