package reunion

import (
	"fmt"

	"reunion/internal/fault"
	"reunion/internal/stats"
	"reunion/internal/trace"
	"reunion/internal/workload"
)

// Options configures one measured simulation run.
type Options struct {
	// Mode selects the execution model (default ModeNonRedundant).
	Mode Mode
	// Workload is the program profile to run (see internal/workload.Suite).
	Workload workload.Params
	// Threads is the number of logical processors (default 4, Table 1).
	Threads int
	// Seed drives workload generation; matched-pair comparisons run the
	// same seed under different modes.
	Seed uint64
	// CompareLatency overrides the one-way comparison latency. The zero
	// value means the default of 10 cycles (Figure 5); pass ZeroLatency
	// for a literal zero-cycle latency (Figure 6's leftmost points).
	CompareLatency int64
	// Phantom selects the phantom request strength (default global).
	Phantom Phantom
	// TLB selects hardware- or software-managed TLBs (default hardware,
	// as in the paper's headline results).
	TLB TLBMode
	// Consistency selects TSO (default) or SC.
	Consistency Consistency
	// FPInterval sets the fingerprint comparison interval in instructions
	// (default 1: compare every instruction, as the paper does).
	FPInterval int
	// WarmCycles and MeasureCycles size the sampling window (defaults
	// 100k/50k, the paper's §5 methodology).
	WarmCycles    int64
	MeasureCycles int64
	// NoPrefill skips the warmed-checkpoint cache/TLB prefill.
	NoPrefill bool
	// Config optionally overrides the whole machine configuration.
	Config *Config
	// Kernel selects the simulation kernel (default KernelFastForward).
	// Both kernels are bit-identical in results; KernelNaive ticks every
	// component every cycle and exists for A/B verification and as a
	// reference for new tickable components.
	Kernel Kernel

	// Inject arms one precise single-shot fault (fault-injection campaign
	// trials): bit Inject.Bit of the next register-writing result entering
	// check on core Inject.Core is flipped, arming Inject.Cycle cycles
	// after the measurement window starts.
	Inject *fault.Injection
	// CommitTarget, when nonzero, switches the measurement phase from a
	// fixed cycle window to "run until every vocal core has committed this
	// many instructions", latching each core's commit digest exactly at
	// that boundary. Fault trials are classified on this digest: a
	// recovered run loses cycles, not instructions, so only an
	// instruction-precise boundary compares corruption rather than timing.
	CommitTarget int64
	// TrialDeadline bounds the measurement phase in cycles when
	// CommitTarget is set (default 200k). A trial past its deadline is a
	// terminal DUE outcome, never a retry.
	TrialDeadline int64

	// TraceEvents, when positive, attaches a kernel-event ring of that
	// capacity (recovery and comparison-mismatch events) for the
	// measurement phase and returns its formatted dump in
	// Result.TraceDump. Diagnostics only: it is deliberately excluded
	// from the warm, golden, and checkpoint keys — a traced run shares
	// warm state with untraced runs and produces bit-identical results.
	TraceEvents int

	// Warm, when set, reuses checkpointed warm state across runs: the
	// first run for a given warm key (every option that shapes the system
	// from construction through the warmup window) builds, prefills and
	// warms a system, snapshots it at the measurement boundary, and every
	// later run with the same key restores that snapshot instead of
	// re-warming. Results are bit-identical to fresh runs — only host
	// time changes. Share one cache across a sweep matrix or a
	// fault-injection campaign; it is safe for concurrent use (runs that
	// share warm state serialize on it, distinct keys run in parallel).
	Warm *WarmCache
}

// ZeroLatency requests a literal zero-cycle comparison latency (the zero
// value of Options.CompareLatency means "default").
const ZeroLatency int64 = -1

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	// ZeroLatency stays a sentinel here (buildSystem maps it to a literal
	// zero): folding it to 0 would make defaulting non-idempotent, and
	// the checkpoint key re-derives defaults on already-defaulted options
	// — a zero-latency cell must never hash like a default-latency one.
	if o.CompareLatency == 0 {
		o.CompareLatency = 10
	}
	if o.FPInterval == 0 {
		o.FPInterval = 1
	}
	if o.WarmCycles == 0 {
		o.WarmCycles = 100_000
	}
	if o.MeasureCycles == 0 {
		o.MeasureCycles = 50_000
	}
	if o.TrialDeadline == 0 {
		o.TrialDeadline = 200_000
	}
	return o
}

// Result reports the measured statistics of one run.
type Result struct {
	Mode                            Mode
	Workload                        string
	Cycles                          int64
	Committed                       int64   // user instructions retired (vocal cores)
	UserIPC                         float64 // aggregate user instructions per cycle (the paper's metric)
	CommittedLoads, CommittedStores int64

	// Redundancy events (ModeReunion).
	Recoveries        int64
	IncoherenceEvents int64
	FaultEvents       int64
	SyncRequests      int64
	Phase2            int64
	Failures          int64
	Compares          int64
	Timeouts          int64

	// Memory system.
	TLBMisses      int64 // I+D, vocal cores
	L1DMisses      int64
	L1DHits        int64
	L2Misses       int64
	L2Hits         int64
	PhantomGarbage int64
	MemAccesses    int64

	// Per-million rates (relative to Committed).
	IncoherencePerM float64
	TLBMissPerM     float64

	Serializing int64
	Mispredicts int64

	// Overhead attribution (vocal cores, per-cycle averages / totals).
	AvgROBOccupancy   float64 // mean occupied RUU entries per cycle
	AvgCheckOccupancy float64 // mean offered-but-unretired entries per cycle
	SerIssueStalls    int64   // issue-slot stalls behind serializing fences
	CompareWaitVocal  int64   // cycles the vocal's fingerprints waited for the mute
	CompareWaitMute   int64   // cycles the mute's fingerprints waited for the vocal

	// Fault-injection observability (populated by trial runs: Options with
	// Inject and/or CommitTarget set).
	FaultArmed         bool  // the arm event found a live core
	FaultFired         bool  // the flip was consumed by an instruction entering check
	FaultFireCycle     int64 // measurement-relative consumption cycle (-1 if unfired)
	FaultFireInstr     int64 // target pair's vocal committed count at consumption
	FaultDetected      bool  // a recovery was attributed to the injected fault
	DetectLatency      int64 // cycles from consumption to that recovery (-1 if undetected)
	DetectLatencyInstr int64 // committed instructions over the same span
	FaultRetired       int64 // flipped results that reached architectural state
	FaultSquashed      int64 // flipped results discarded by rollback or squash
	Unrecoverable      bool  // a pair signalled a detected, unrecoverable error
	TrialComplete      bool  // every vocal core reached the commit target
	TrialCycles        int64 // cycles the measurement phase actually ran
	CommitDigest       uint64
	DigestOK           bool
	ArchDigest         uint64 // point-in-time state hash; golden (uninjected) trial runs only

	// TraceDump is the formatted kernel-event ring captured during the
	// measurement phase when Options.TraceEvents was set (diagnostics;
	// empty otherwise). It never participates in serialized records or
	// digests.
	TraceDump string
}

// Run executes one measured simulation: build, prefill, warm, measure.
// With Options.Warm set, the build/prefill/warm phase is served from the
// checkpointed warm-state cache (bit-identical results, less host time).
func Run(o Options) (Result, error) {
	o = o.withDefaults()
	if o.Warm != nil {
		return o.Warm.run(o)
	}
	return measure(warmSystem(o), o)
}

// buildSystem assembles a cold system for the options, without prefill or
// warmup. The checkpoint-store fetch path uses it directly: a fetched
// checkpoint binds and restores onto a freshly built machine, which must
// be constructed exactly as the warmed original was.
func buildSystem(o Options) *System {
	cfg := DefaultConfig()
	if o.Config != nil {
		cfg = *o.Config
	}
	cfg.CompareLatency = o.CompareLatency
	if o.CompareLatency == ZeroLatency {
		cfg.CompareLatency = 0
	}
	cfg.L2.Phantom = o.Phantom
	cfg.Core.TLB.Mode = o.TLB
	cfg.Core.Consistency = o.Consistency
	cfg.Core.FPInterval = o.FPInterval

	w := o.Workload.Build(o.Seed, o.Threads)
	sys := NewSystem(cfg, o.Mode, w, o.Seed)
	sys.Kernel = o.Kernel
	return sys
}

// warmSystem builds a system for the options and runs it through the
// warmup window (the phase a WarmCache checkpoints and reuses).
func warmSystem(o Options) *System {
	sys := buildSystem(o)
	if !o.NoPrefill {
		sys.Prefill()
	}
	sys.Run(o.WarmCycles)
	return sys
}

// measure runs the measurement phase on a warmed system: statistics reset
// at the boundary, then either the plain fixed-window path or the
// fault-injection trial path. With Options.TraceEvents set, a kernel-
// event ring observes the phase and its dump lands in Result.TraceDump;
// the ring is detached again before the system returns to any warm
// cache, so tracing one run never leaks into the next. Enabling the
// ring changes no simulated state — it only records.
func measure(sys *System, o Options) (Result, error) {
	var ring *trace.Ring
	if o.TraceEvents > 0 {
		ring = sys.EnableTracing(o.TraceEvents)
		defer sys.DisableTracing()
	}
	sys.ResetStats()
	res, err := func() (Result, error) {
		if o.Inject != nil || o.CommitTarget > 0 {
			return runTrial(sys, o)
		}
		sys.Run(o.MeasureCycles)
		if sys.Failed() {
			return Result{}, fmt.Errorf("reunion: unrecoverable failure in %s under %v", sys.W.Name, o.Mode)
		}
		return Collect(sys, o.MeasureCycles), nil
	}()
	if ring != nil && err == nil {
		res.TraceDump = ring.Dump()
	}
	return res, err
}

// runTrial runs the measurement phase of a fault-injection trial (or of
// its fault-free golden reference): the fault is armed at its
// measurement-relative cycle, detection is observed through the pair
// hooks, and the run ends at the commit-target boundary, an unrecoverable
// failure, or the trial deadline — always a terminal outcome. Unlike the
// plain path, an unrecoverable failure is reported in the Result
// (classification needs it), not as an error.
func runTrial(sys *System, o Options) (Result, error) {
	measStart := sys.EQ.Now()
	var shot *fault.Shot
	var fireInstr int64
	var detected bool
	var detectCycle, detectInstr int64
	if o.Inject != nil {
		inj := *o.Inject
		if inj.Core < 0 || inj.Core >= len(sys.Cores) {
			return Result{}, fmt.Errorf("reunion: inject core %d out of range [0,%d)", inj.Core, len(sys.Cores))
		}
		target := sys.Cores[inj.Core]
		arch := target
		if !arch.Vocal {
			arch = sys.Pairs[target.Pair].VocalC
		}
		inj.Cycle += measStart
		shot = inj.Arm(sys.EQ, target, func(int64) { fireInstr = arch.Stats.Committed })
		for _, p := range sys.Pairs {
			p := p
			p.OnFaultDetected = func() {
				if detected {
					return
				}
				detected = true
				detectCycle = sys.EQ.Now()
				detectInstr = p.VocalC.Stats.Committed
			}
		}
	}

	var ran int64
	if o.CommitTarget > 0 {
		sys.ArmCommitDigests(o.CommitTarget)
		ran, _ = sys.RunUntilDone(o.TrialDeadline, func() bool {
			return sys.DigestsDone() || sys.Failed()
		})
	} else {
		sys.Run(o.MeasureCycles)
		ran = o.MeasureCycles
	}

	r := Collect(sys, ran)
	r.TrialCycles = ran
	r.Unrecoverable = sys.Failed()
	r.CommitDigest, r.DigestOK = sys.CommitDigest()
	r.TrialComplete = o.CommitTarget > 0 && sys.DigestsDone() && !r.Unrecoverable
	if o.Inject == nil {
		// The full architectural-state walk (register files + dirty lines)
		// is a per-cell diagnostic, not a per-trial classifier: compute it
		// for golden references only, off the campaign's trial hot path.
		r.ArchDigest = sys.ArchDigest()
	}
	r.FaultFireCycle, r.DetectLatency = -1, -1
	if shot != nil {
		r.FaultArmed, r.FaultFired = shot.Armed, shot.Fired
		if shot.Fired {
			r.FaultFireCycle = shot.FiredAt - measStart
			r.FaultFireInstr = fireInstr
		}
		if detected {
			r.FaultDetected = true
			r.DetectLatency = detectCycle - shot.FiredAt
			r.DetectLatencyInstr = detectInstr - fireInstr
		}
		for _, c := range sys.Cores {
			r.FaultRetired += c.FaultRetired
			r.FaultSquashed += c.FaultSquashed
		}
	}
	return r, nil
}

// Collect gathers a Result from a system after a measurement window.
func Collect(sys *System, cycles int64) Result {
	r := Result{Mode: sys.Mode, Workload: sys.W.Name, Cycles: cycles}
	var occ, checkOcc, coreCycles int64
	for _, c := range sys.VocalCores() {
		r.Committed += c.Stats.Committed
		r.CommittedLoads += c.Stats.CommittedLoads
		r.CommittedStores += c.Stats.CommittedStores
		r.TLBMisses += c.Stats.ITLBMisses + c.Stats.DTLBMisses
		r.Serializing += c.Stats.Serializing
		r.Mispredicts += c.Stats.Mispredicts
		r.L1DMisses += c.L1D.Misses
		r.L1DHits += c.L1D.Hits
		r.SerIssueStalls += c.Stats.IssueStallSer
		occ += c.Stats.ROBOccupancy
		checkOcc += c.Stats.CheckOccupancy
		coreCycles += c.Stats.Cycles
	}
	if coreCycles > 0 {
		r.AvgROBOccupancy = float64(occ) / float64(coreCycles)
		r.AvgCheckOccupancy = float64(checkOcc) / float64(coreCycles)
	}
	for _, p := range sys.Pairs {
		r.Recoveries += p.Stats.Recoveries
		r.IncoherenceEvents += p.Stats.IncoherenceEvents
		r.FaultEvents += p.Stats.FaultEvents
		r.SyncRequests += p.Stats.SyncRequests
		r.Phase2 += p.Stats.Phase2
		r.Failures += p.Stats.Failures
		r.Compares += p.Stats.Compares
		r.Timeouts += p.Stats.Timeouts
		r.CompareWaitVocal += p.Stats.CompareWaitVocal
		r.CompareWaitMute += p.Stats.CompareWaitMute
	}
	if sys.L2 != nil {
		r.L2Hits = sys.L2.HitsL2
		r.L2Misses = sys.L2.MissesL2
		r.PhantomGarbage = sys.L2.PhantomGarbage
		r.MemAccesses = sys.L2.MemAccesses
	} else if sys.Bus != nil {
		r.PhantomGarbage = sys.Bus.PhantomGarbage
		r.MemAccesses = sys.Bus.MemAccesses
	}
	if cycles > 0 {
		r.UserIPC = float64(r.Committed) / float64(cycles)
	}
	r.IncoherencePerM = stats.PerMillion(r.IncoherenceEvents, r.Committed)
	r.TLBMissPerM = stats.PerMillion(r.TLBMisses, r.Committed)
	return r
}

// Metrics flattens the result into named scalar metrics, the form the
// sweep sinks (JSON Lines, CSV) serialize. Keys are stable across runs,
// so a results file is diffable and trackable over time.
func (r Result) Metrics() map[string]float64 {
	return map[string]float64{
		"cycles":              float64(r.Cycles),
		"committed":           float64(r.Committed),
		"user_ipc":            r.UserIPC,
		"committed_loads":     float64(r.CommittedLoads),
		"committed_stores":    float64(r.CommittedStores),
		"recoveries":          float64(r.Recoveries),
		"incoherence_events":  float64(r.IncoherenceEvents),
		"fault_events":        float64(r.FaultEvents),
		"sync_requests":       float64(r.SyncRequests),
		"phase2":              float64(r.Phase2),
		"failures":            float64(r.Failures),
		"compares":            float64(r.Compares),
		"timeouts":            float64(r.Timeouts),
		"tlb_misses":          float64(r.TLBMisses),
		"l1d_misses":          float64(r.L1DMisses),
		"l1d_hits":            float64(r.L1DHits),
		"l2_misses":           float64(r.L2Misses),
		"l2_hits":             float64(r.L2Hits),
		"phantom_garbage":     float64(r.PhantomGarbage),
		"mem_accesses":        float64(r.MemAccesses),
		"incoherence_per_m":   r.IncoherencePerM,
		"tlb_miss_per_m":      r.TLBMissPerM,
		"serializing":         float64(r.Serializing),
		"mispredicts":         float64(r.Mispredicts),
		"avg_rob_occupancy":   r.AvgROBOccupancy,
		"avg_check_occupancy": r.AvgCheckOccupancy,
		"ser_issue_stalls":    float64(r.SerIssueStalls),
		"compare_wait_vocal":  float64(r.CompareWaitVocal),
		"compare_wait_mute":   float64(r.CompareWaitMute),
	}
}

// TrialMetrics extends Metrics with the fault-injection observability of a
// campaign trial. Digests stay out (float64 cannot hold them losslessly);
// the campaign records the digest verdict as an outcome label instead.
func (r Result) TrialMetrics() map[string]float64 {
	m := r.Metrics()
	m["fault_armed"] = boolMetric(r.FaultArmed)
	m["fault_fired"] = boolMetric(r.FaultFired)
	m["fault_fire_cycle"] = float64(r.FaultFireCycle)
	m["fault_fire_instr"] = float64(r.FaultFireInstr)
	m["fault_detected"] = boolMetric(r.FaultDetected)
	m["detect_latency_cycles"] = float64(r.DetectLatency)
	m["detect_latency_instrs"] = float64(r.DetectLatencyInstr)
	m["fault_retired"] = float64(r.FaultRetired)
	m["fault_squashed"] = float64(r.FaultSquashed)
	m["trial_complete"] = boolMetric(r.TrialComplete)
	m["trial_cycles"] = float64(r.TrialCycles)
	m["unrecoverable"] = boolMetric(r.Unrecoverable)
	return m
}

func boolMetric(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Comparison is the outcome of a matched-pair normalized-performance
// measurement: the test mode's IPC relative to a baseline across seeds.
type Comparison struct {
	Workload   string
	Normalized float64 // mean test/baseline IPC ratio
	CI         float64 // 95% confidence half-width
	Base, Test []Result
}

// Compare measures test-vs-baseline normalized IPC over the given seeds
// using matched pairs (same seed, same workload in both runs), the
// paper's methodology.
func Compare(base, test Options, seeds []uint64) (Comparison, error) {
	var mp stats.MatchedPair
	cmp := Comparison{Workload: base.Workload.Name}
	for _, seed := range seeds {
		b := base
		b.Seed = seed
		t := test
		t.Seed = seed
		br, err := Run(b)
		if err != nil {
			return cmp, err
		}
		tr, err := Run(t)
		if err != nil {
			return cmp, err
		}
		mp.Add(br.UserIPC, tr.UserIPC)
		cmp.Base = append(cmp.Base, br)
		cmp.Test = append(cmp.Test, tr)
	}
	cmp.Normalized = mp.Mean()
	cmp.CI = mp.CI()
	return cmp, nil
}

// DefaultSeeds returns n distinct measurement seeds.
func DefaultSeeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = 0x1234_5678_9abc_def0 + uint64(i)*0x1111
	}
	return s
}
