package reunion

import (
	"fmt"

	"reunion/internal/stats"
	"reunion/internal/workload"
)

// Options configures one measured simulation run.
type Options struct {
	// Mode selects the execution model (default ModeNonRedundant).
	Mode Mode
	// Workload is the program profile to run (see internal/workload.Suite).
	Workload workload.Params
	// Threads is the number of logical processors (default 4, Table 1).
	Threads int
	// Seed drives workload generation; matched-pair comparisons run the
	// same seed under different modes.
	Seed uint64
	// CompareLatency overrides the one-way comparison latency. The zero
	// value means the default of 10 cycles (Figure 5); pass ZeroLatency
	// for a literal zero-cycle latency (Figure 6's leftmost points).
	CompareLatency int64
	// Phantom selects the phantom request strength (default global).
	Phantom Phantom
	// TLB selects hardware- or software-managed TLBs (default hardware,
	// as in the paper's headline results).
	TLB TLBMode
	// Consistency selects TSO (default) or SC.
	Consistency Consistency
	// FPInterval sets the fingerprint comparison interval in instructions
	// (default 1: compare every instruction, as the paper does).
	FPInterval int
	// WarmCycles and MeasureCycles size the sampling window (defaults
	// 100k/50k, the paper's §5 methodology).
	WarmCycles    int64
	MeasureCycles int64
	// NoPrefill skips the warmed-checkpoint cache/TLB prefill.
	NoPrefill bool
	// Config optionally overrides the whole machine configuration.
	Config *Config
}

// ZeroLatency requests a literal zero-cycle comparison latency (the zero
// value of Options.CompareLatency means "default").
const ZeroLatency int64 = -1

func (o Options) withDefaults() Options {
	if o.Threads == 0 {
		o.Threads = 4
	}
	if o.Seed == 0 {
		o.Seed = 0x5eed
	}
	switch {
	case o.CompareLatency == 0:
		o.CompareLatency = 10
	case o.CompareLatency == ZeroLatency:
		o.CompareLatency = 0
	}
	if o.FPInterval == 0 {
		o.FPInterval = 1
	}
	if o.WarmCycles == 0 {
		o.WarmCycles = 100_000
	}
	if o.MeasureCycles == 0 {
		o.MeasureCycles = 50_000
	}
	return o
}

// Result reports the measured statistics of one run.
type Result struct {
	Mode                            Mode
	Workload                        string
	Cycles                          int64
	Committed                       int64   // user instructions retired (vocal cores)
	UserIPC                         float64 // aggregate user instructions per cycle (the paper's metric)
	CommittedLoads, CommittedStores int64

	// Redundancy events (ModeReunion).
	Recoveries        int64
	IncoherenceEvents int64
	FaultEvents       int64
	SyncRequests      int64
	Phase2            int64
	Failures          int64
	Compares          int64
	Timeouts          int64

	// Memory system.
	TLBMisses      int64 // I+D, vocal cores
	L1DMisses      int64
	L1DHits        int64
	L2Misses       int64
	L2Hits         int64
	PhantomGarbage int64
	MemAccesses    int64

	// Per-million rates (relative to Committed).
	IncoherencePerM float64
	TLBMissPerM     float64

	Serializing int64
	Mispredicts int64

	// Overhead attribution (vocal cores, per-cycle averages / totals).
	AvgROBOccupancy   float64 // mean occupied RUU entries per cycle
	AvgCheckOccupancy float64 // mean offered-but-unretired entries per cycle
	SerIssueStalls    int64   // issue-slot stalls behind serializing fences
	CompareWaitVocal  int64   // cycles the vocal's fingerprints waited for the mute
	CompareWaitMute   int64   // cycles the mute's fingerprints waited for the vocal
}

// Run executes one measured simulation: build, prefill, warm, measure.
func Run(o Options) (Result, error) {
	o = o.withDefaults()
	cfg := DefaultConfig()
	if o.Config != nil {
		cfg = *o.Config
	}
	cfg.CompareLatency = o.CompareLatency
	cfg.L2.Phantom = o.Phantom
	cfg.Core.TLB.Mode = o.TLB
	cfg.Core.Consistency = o.Consistency
	cfg.Core.FPInterval = o.FPInterval

	w := o.Workload.Build(o.Seed, o.Threads)
	sys := NewSystem(cfg, o.Mode, w, o.Seed)
	if !o.NoPrefill {
		sys.Prefill()
	}
	sys.Run(o.WarmCycles)
	sys.ResetStats()
	sys.Run(o.MeasureCycles)
	if sys.Failed() {
		return Result{}, fmt.Errorf("reunion: unrecoverable failure in %s under %v", w.Name, o.Mode)
	}
	return Collect(sys, o.MeasureCycles), nil
}

// Collect gathers a Result from a system after a measurement window.
func Collect(sys *System, cycles int64) Result {
	r := Result{Mode: sys.Mode, Workload: sys.W.Name, Cycles: cycles}
	var occ, checkOcc, coreCycles int64
	for _, c := range sys.VocalCores() {
		r.Committed += c.Stats.Committed
		r.CommittedLoads += c.Stats.CommittedLoads
		r.CommittedStores += c.Stats.CommittedStores
		r.TLBMisses += c.Stats.ITLBMisses + c.Stats.DTLBMisses
		r.Serializing += c.Stats.Serializing
		r.Mispredicts += c.Stats.Mispredicts
		r.L1DMisses += c.L1D.Misses
		r.L1DHits += c.L1D.Hits
		r.SerIssueStalls += c.Stats.IssueStallSer
		occ += c.Stats.ROBOccupancy
		checkOcc += c.Stats.CheckOccupancy
		coreCycles += c.Stats.Cycles
	}
	if coreCycles > 0 {
		r.AvgROBOccupancy = float64(occ) / float64(coreCycles)
		r.AvgCheckOccupancy = float64(checkOcc) / float64(coreCycles)
	}
	for _, p := range sys.Pairs {
		r.Recoveries += p.Stats.Recoveries
		r.IncoherenceEvents += p.Stats.IncoherenceEvents
		r.FaultEvents += p.Stats.FaultEvents
		r.SyncRequests += p.Stats.SyncRequests
		r.Phase2 += p.Stats.Phase2
		r.Failures += p.Stats.Failures
		r.Compares += p.Stats.Compares
		r.Timeouts += p.Stats.Timeouts
		r.CompareWaitVocal += p.Stats.CompareWaitVocal
		r.CompareWaitMute += p.Stats.CompareWaitMute
	}
	if sys.L2 != nil {
		r.L2Hits = sys.L2.HitsL2
		r.L2Misses = sys.L2.MissesL2
		r.PhantomGarbage = sys.L2.PhantomGarbage
		r.MemAccesses = sys.L2.MemAccesses
	} else if sys.Bus != nil {
		r.PhantomGarbage = sys.Bus.PhantomGarbage
		r.MemAccesses = sys.Bus.MemAccesses
	}
	if cycles > 0 {
		r.UserIPC = float64(r.Committed) / float64(cycles)
	}
	r.IncoherencePerM = stats.PerMillion(r.IncoherenceEvents, r.Committed)
	r.TLBMissPerM = stats.PerMillion(r.TLBMisses, r.Committed)
	return r
}

// Metrics flattens the result into named scalar metrics, the form the
// sweep sinks (JSON Lines, CSV) serialize. Keys are stable across runs,
// so a results file is diffable and trackable over time.
func (r Result) Metrics() map[string]float64 {
	return map[string]float64{
		"cycles":              float64(r.Cycles),
		"committed":           float64(r.Committed),
		"user_ipc":            r.UserIPC,
		"committed_loads":     float64(r.CommittedLoads),
		"committed_stores":    float64(r.CommittedStores),
		"recoveries":          float64(r.Recoveries),
		"incoherence_events":  float64(r.IncoherenceEvents),
		"fault_events":        float64(r.FaultEvents),
		"sync_requests":       float64(r.SyncRequests),
		"phase2":              float64(r.Phase2),
		"failures":            float64(r.Failures),
		"compares":            float64(r.Compares),
		"timeouts":            float64(r.Timeouts),
		"tlb_misses":          float64(r.TLBMisses),
		"l1d_misses":          float64(r.L1DMisses),
		"l1d_hits":            float64(r.L1DHits),
		"l2_misses":           float64(r.L2Misses),
		"l2_hits":             float64(r.L2Hits),
		"phantom_garbage":     float64(r.PhantomGarbage),
		"mem_accesses":        float64(r.MemAccesses),
		"incoherence_per_m":   r.IncoherencePerM,
		"tlb_miss_per_m":      r.TLBMissPerM,
		"serializing":         float64(r.Serializing),
		"mispredicts":         float64(r.Mispredicts),
		"avg_rob_occupancy":   r.AvgROBOccupancy,
		"avg_check_occupancy": r.AvgCheckOccupancy,
		"ser_issue_stalls":    float64(r.SerIssueStalls),
		"compare_wait_vocal":  float64(r.CompareWaitVocal),
		"compare_wait_mute":   float64(r.CompareWaitMute),
	}
}

// Comparison is the outcome of a matched-pair normalized-performance
// measurement: the test mode's IPC relative to a baseline across seeds.
type Comparison struct {
	Workload   string
	Normalized float64 // mean test/baseline IPC ratio
	CI         float64 // 95% confidence half-width
	Base, Test []Result
}

// Compare measures test-vs-baseline normalized IPC over the given seeds
// using matched pairs (same seed, same workload in both runs), the
// paper's methodology.
func Compare(base, test Options, seeds []uint64) (Comparison, error) {
	var mp stats.MatchedPair
	cmp := Comparison{Workload: base.Workload.Name}
	for _, seed := range seeds {
		b := base
		b.Seed = seed
		t := test
		t.Seed = seed
		br, err := Run(b)
		if err != nil {
			return cmp, err
		}
		tr, err := Run(t)
		if err != nil {
			return cmp, err
		}
		mp.Add(br.UserIPC, tr.UserIPC)
		cmp.Base = append(cmp.Base, br)
		cmp.Test = append(cmp.Test, tr)
	}
	cmp.Normalized = mp.Mean()
	cmp.CI = mp.CI()
	return cmp, nil
}

// DefaultSeeds returns n distinct measurement seeds.
func DefaultSeeds(n int) []uint64 {
	s := make([]uint64, n)
	for i := range s {
		s[i] = 0x1234_5678_9abc_def0 + uint64(i)*0x1111
	}
	return s
}
