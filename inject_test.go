package reunion

import (
	"bytes"
	"context"
	"testing"

	"reunion/internal/campaign"
	"reunion/internal/fault"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

func injectTestOptions() Options {
	return Options{
		Workload:      mustWorkload("apache"),
		Seed:          1,
		WarmCycles:    5_000,
		CommitTarget:  500,
		TrialDeadline: 60_000,
	}
}

func mustWorkload(name string) workload.Params {
	p, ok := workload.ByName(name)
	if !ok {
		panic("unknown workload " + name)
	}
	return p
}

// TestCommitDigestDeterministic: the golden digest is a pure function of
// the options — two identical runs agree, a different seed disagrees.
func TestCommitDigestDeterministic(t *testing.T) {
	o := injectTestOptions()
	o.Mode = ModeNonRedundant
	a, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !a.DigestOK || !b.DigestOK {
		t.Fatalf("digests did not latch: %v %v", a.DigestOK, b.DigestOK)
	}
	if a.CommitDigest != b.CommitDigest {
		t.Fatalf("same options, different commit digests: %x vs %x", a.CommitDigest, b.CommitDigest)
	}
	if a.ArchDigest != b.ArchDigest {
		t.Fatalf("same options, different arch digests: %x vs %x", a.ArchDigest, b.ArchDigest)
	}
	o.Seed = 2
	c, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if c.CommitDigest == a.CommitDigest {
		t.Fatal("different seeds produced the same commit digest")
	}
}

// TestInjectedRunObservability: a single-shot injection under Reunion is
// fired, detected, recovered, and the committed stream still matches the
// fault-free golden at the same instruction boundary.
func TestInjectedRunObservability(t *testing.T) {
	o := injectTestOptions()
	o.Mode = ModeReunion
	golden, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	o.Inject = &fault.Injection{Core: 3, Cycle: 200, Bit: 17}
	r, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if !r.FaultArmed || !r.FaultFired {
		t.Fatalf("fault not consumed: armed=%v fired=%v", r.FaultArmed, r.FaultFired)
	}
	if !r.FaultDetected || r.DetectLatency < 0 {
		t.Fatalf("fault not detected: detected=%v latency=%d", r.FaultDetected, r.DetectLatency)
	}
	if r.FaultSquashed == 0 {
		t.Fatal("detected flip should have been squashed by rollback")
	}
	if !r.TrialComplete || !r.DigestOK {
		t.Fatalf("trial incomplete: complete=%v digestOK=%v", r.TrialComplete, r.DigestOK)
	}
	if r.CommitDigest != golden.CommitDigest {
		t.Fatalf("recovered run diverged from golden: %x vs %x", r.CommitDigest, golden.CommitDigest)
	}
	if campaign.Classify(campaign.Observation{
		Completed: r.TrialComplete, DigestOK: r.DigestOK,
		Armed: r.FaultArmed, Fired: r.FaultFired, Detected: r.FaultDetected,
		Digest: r.CommitDigest, GoldenDigest: golden.CommitDigest,
	}) != campaign.Detected {
		t.Fatal("classification disagrees")
	}
	// TrialMetrics is the library-surface encoding of the same
	// observability (for users streaming Results through sweep sinks).
	m := r.TrialMetrics()
	if m["fault_fired"] != 1 || m["fault_detected"] != 1 {
		t.Fatalf("TrialMetrics disagrees with Result: %v", m)
	}
	if m["detect_latency_cycles"] != float64(r.DetectLatency) ||
		m["fault_squashed"] != float64(r.FaultSquashed) ||
		m["trial_cycles"] != float64(r.TrialCycles) {
		t.Fatalf("TrialMetrics values drifted from Result fields: %v", m)
	}
	if _, ok := m["user_ipc"]; !ok {
		t.Fatal("TrialMetrics must extend the base Metrics map")
	}
}

// TestCampaignEndToEnd runs a small real campaign through the engine and
// checks the acceptance shape: every trial classified, Reunion free of
// SDCs, the non-redundant baseline corrupting under the same fault
// stream, detected trials carrying latencies.
func TestCampaignEndToEnd(t *testing.T) {
	model := campaign.FaultModel{WindowHi: 400}
	eng := campaign.Engine[Options]{
		Spec: campaign.Spec[Options]{
			Name: "e2e",
			Matrix: sweep.Spec[Options]{
				Name: "e2e",
				Base: injectTestOptions(),
				Axes: []sweep.Axis[Options]{
					sweep.NewAxis("mode", []Mode{ModeReunion, ModeNonRedundant}, Mode.String,
						func(o *Options, m Mode) { o.Mode = m }),
				},
			},
			Model:         model,
			Trials:        6,
			Seed:          0xfa017,
			StreamExclude: []string{"mode"},
		},
		RunTrial: TrialRunner(model),
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Total.Trials() != 12 {
		t.Fatalf("classified %d of 12 trials", rep.Total.Trials())
	}
	re := rep.CellBy(map[string]string{"mode": "reunion"})
	nr := rep.CellBy(map[string]string{"mode": "non-redundant"})
	if re == nil || nr == nil {
		t.Fatal("cells missing")
	}
	if re.Count(campaign.SDC) != 0 || re.Count(campaign.DUE) != 0 {
		t.Fatalf("reunion cell not clean: %+v", re.Counts)
	}
	if re.Count(campaign.Detected) == 0 {
		t.Fatalf("reunion detected nothing: %+v", re.Counts)
	}
	if nr.Count(campaign.SDC) == 0 {
		t.Fatalf("non-redundant baseline shows no SDCs under the same fault stream: %+v", nr.Counts)
	}
	if nr.Count(campaign.Detected) != 0 {
		t.Fatalf("non-redundant mode cannot detect faults: %+v", nr.Counts)
	}
	if n := re.LatencyCycles.N(); n != re.Count(campaign.Detected) {
		t.Fatalf("latency histogram %d entries for %d detected", n, re.Count(campaign.Detected))
	}
	var buf bytes.Buffer
	rep.WriteTable(&buf)
	if buf.Len() == 0 {
		t.Fatal("empty coverage table")
	}
}
