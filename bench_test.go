package reunion

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (§5), plus the §4.3 interval ablation and the §5.5
// sequential-consistency result. Each benchmark regenerates its result
// rows (visible with -v via b.Logf) and reports the headline number as a
// custom metric, so `go test -bench=. -benchmem` reproduces the whole
// evaluation at quick-campaign scale. cmd/reunion-bench runs the same
// experiments at paper scale.

import (
	"strings"
	"testing"

	"reunion/internal/workload"
)

// benchExp returns a campaign small enough for `go test -bench` while
// still resolving every qualitative shape.
func benchExp(logf func(string, ...any)) (ExpConfig, *logWriter) {
	w := &logWriter{logf: logf}
	cfg := ExpConfig{
		Seeds:         DefaultSeeds(1),
		WarmCycles:    20_000,
		MeasureCycles: 15_000,
		Table3Cycles:  60_000,
		Out:           w,
		base:          newMemo[Result](),
	}
	return cfg, w
}

type logWriter struct {
	logf func(string, ...any)
	buf  strings.Builder
}

func (w *logWriter) Write(p []byte) (int, error) {
	w.buf.Write(p)
	for {
		s := w.buf.String()
		i := strings.IndexByte(s, '\n')
		if i < 0 {
			break
		}
		w.logf("%s", s[:i])
		w.buf.Reset()
		w.buf.WriteString(s[i+1:])
	}
	return len(p), nil
}

// BenchmarkFigure5 regenerates Figure 5: Strict and Reunion normalized IPC
// per workload at a 10-cycle comparison latency.
func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.ClassMean(workload.OLTP, "reunion"), "reunionOLTP")
		b.ReportMetric(res.ClassMean(workload.Scientific, "reunion"), "reunionSci")
		b.ReportMetric(res.ClassMean(workload.OLTP, "strict"), "strictOLTP")
	}
}

// BenchmarkFigure6a regenerates Figure 6(a): Strict normalized IPC vs
// comparison latency by workload class.
func BenchmarkFigure6a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Figure6(ModeStrict)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series[workload.OLTP]
		b.ReportMetric(s[0], "OLTP@0c")
		b.ReportMetric(s[len(s)-1], "OLTP@40c")
	}
}

// BenchmarkFigure6b regenerates Figure 6(b): Reunion normalized IPC vs
// comparison latency by workload class.
func BenchmarkFigure6b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Figure6(ModeReunion)
		if err != nil {
			b.Fatal(err)
		}
		s := res.Series[workload.OLTP]
		b.ReportMetric(s[0], "OLTP@0c")
		b.ReportMetric(s[len(s)-1], "OLTP@40c")
	}
}

// BenchmarkTable3 regenerates Table 3: input incoherence events per
// million instructions at each phantom strength, with TLB misses as the
// reference event rate.
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Table3()
		if err != nil {
			b.Fatal(err)
		}
		var g, n float64
		for _, row := range res.Rows {
			g += row.IncoherencePerM["global"]
			n += row.IncoherencePerM["null"]
		}
		k := float64(len(res.Rows))
		b.ReportMetric(g/k, "globalInc/M")
		b.ReportMetric(n/k, "nullInc/M")
	}
}

// BenchmarkFigure7a regenerates Figure 7(a): Reunion normalized IPC per
// phantom request strength.
func BenchmarkFigure7a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Figure7a()
		if err != nil {
			b.Fatal(err)
		}
		var g, n float64
		for _, row := range res.Rows {
			g += row.Values["global"]
			n += row.Values["null"]
		}
		k := float64(len(res.Rows))
		b.ReportMetric(g/k, "global")
		b.ReportMetric(n/k, "null")
	}
}

// BenchmarkFigure7b regenerates Figure 7(b): commercial average with
// hardware- vs software-managed TLBs across comparison latencies.
func BenchmarkFigure7b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.Figure7b()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Hardware[len(res.Hardware)-1], "hw@40c")
		b.ReportMetric(res.Software[len(res.Software)-1], "sw@40c")
	}
}

// BenchmarkSequentialConsistency regenerates the §5.5 result: SC makes
// every store serializing, collapsing performance at large comparison
// latencies.
func BenchmarkSequentialConsistency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.SCExperiment()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.TSO[len(res.TSO)-1], "tso@40c")
		b.ReportMetric(res.SC[len(res.SC)-1], "sc@40c")
	}
}

// BenchmarkFingerprintInterval regenerates the §4.3 ablation: comparison
// intervals of 1 and 50 instructions perform indistinguishably.
func BenchmarkFingerprintInterval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.FPIntervalAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Reunion[0], "interval1")
		b.ReportMetric(res.Reunion[len(res.Reunion)-1], "interval50")
	}
}

// BenchmarkROBSweep regenerates the §5.2 speculation-window ablation:
// large windows eliminate the occupancy bottleneck for scientific
// workloads but cannot relieve serializing stalls for commercial ones.
func BenchmarkROBSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.ROBSweep()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Scientific[0], "sci@128")
		b.ReportMetric(res.Scientific[len(res.Scientific)-1], "sci@4096")
	}
}

// BenchmarkTopologyAblation regenerates the §4.1 ablation: Reunion at a
// snoopy cache interface vs the directory-based shared L2.
func BenchmarkTopologyAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg, _ := benchExp(b.Logf)
		res, err := cfg.TopologyAblation()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Commercial[0], "directory")
		b.ReportMetric(res.Commercial[1], "snoopy")
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed (cycles of
// the 8-core Reunion system simulated per wall-clock second).
func BenchmarkSimulatorThroughput(b *testing.B) {
	w := workload.Apache().Build(1, 4)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 1)
	sys.Prefill()
	sys.Run(5_000) // warm the structures
	b.ResetTimer()
	sys.Run(int64(b.N))
}

// BenchmarkPairTick measures one steady-state tick of a full vocal/mute
// Reunion pair system (8 cores, shared L2, fingerprint exchange): the
// inner loop every experiment amortizes. Cycles per second here is the
// ceiling on campaign throughput.
func BenchmarkPairTick(b *testing.B) {
	w := workload.Apache().Build(1, 4)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 1)
	sys.Prefill()
	sys.Run(20_000) // reach steady state: warm caches, full windows
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Step()
	}
}

// BenchmarkCheckpointRestore measures rewinding a warm 8-core system to
// an in-memory checkpoint, including rebuilding every derived issue-
// stage structure (active list, waiter chains, rename map) from the
// authoritative window state.
func BenchmarkCheckpointRestore(b *testing.B) {
	w := workload.Apache().Build(1, 4)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 1)
	sys.Prefill()
	sys.Run(20_000)
	cp := sys.Snapshot()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Restore(cp)
	}
}

// BenchmarkCheckpointSnapshot measures taking that checkpoint.
func BenchmarkCheckpointSnapshot(b *testing.B) {
	w := workload.Apache().Build(1, 4)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 1)
	sys.Prefill()
	sys.Run(20_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.Snapshot()
	}
}

// BenchmarkFingerprintGen measures fingerprint generation cost per
// instruction record (both compression modes).
func BenchmarkFingerprintGen(b *testing.B) {
	for _, mode := range []FingerprintMode{FPDirect, FPTwoStage} {
		b.Run(mode.String(), func(b *testing.B) {
			g := newFPGen(mode)
			for i := 0; i < b.N; i++ {
				g.Instruction(true, 5, int64(i), i%7 == 0, true, int64(i), i%3 == 0, uint64(i), uint64(i))
			}
			_ = g.Value()
		})
	}
}
