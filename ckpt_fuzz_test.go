package reunion

import (
	"sync"
	"testing"

	"reunion/internal/workload"
)

// FuzzCheckpointDecode holds the decoder to its hardening contract:
// arbitrary bytes — truncations, bit flips, hostile forgeries — must
// produce an error, never a panic, never unbounded allocation, and
// never a DecodedCheckpoint alongside an error. When a blob does decode
// (in practice only the seed corpus's genuine encodings and the
// fuzzer's recombinations of them), binding it against live machines
// must be equally panic-free: every structural hazard is a returned
// error.
func FuzzCheckpointDecode(f *testing.F) {
	seeds := fuzzSeedBlobs(f)
	for _, blob := range seeds {
		f.Add(blob)
		// Truncations at structurally interesting depths and a mid-payload
		// bit flip, so the fuzzer starts inside the decoder, not at the
		// magic check.
		f.Add(blob[:len(blob)-8])
		f.Add(blob[:len(blob)/2])
		f.Add(blob[:ckptHeaderBytes])
		flip := append([]byte(nil), blob...)
		flip[len(flip)/2] ^= 0x10
		f.Add(flip)
	}
	f.Add([]byte{})
	f.Add([]byte("RNCK"))
	f.Add([]byte("RNCK\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeCheckpoint(data)
		if err != nil {
			if d != nil {
				t.Fatal("DecodeCheckpoint returned a checkpoint alongside an error")
			}
			return
		}
		if d == nil {
			t.Fatal("DecodeCheckpoint returned neither checkpoint nor error")
		}
		// A decodable blob must survive Bind against machines of both
		// topologies without panicking; mismatches are returned errors.
		for _, sys := range fuzzBindTargets() {
			cp, err := d.Bind(sys, d.Key)
			if err == nil && cp == nil {
				t.Fatal("Bind returned neither checkpoint nor error")
			}
		}
	})
}

// fuzzSeedBlobs encodes genuine checkpoints across mode × topology ×
// kernel with tiny warm windows: the corpus exercises every descriptor
// tag and component codec.
func fuzzSeedBlobs(f *testing.F) [][]byte {
	f.Helper()
	var blobs [][]byte
	for _, topo := range []Topology{TopologyDirectory, TopologySnoopy} {
		for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
			for _, kern := range []Kernel{KernelNaive, KernelFastForward} {
				cfg := DefaultConfig()
				cfg.Topology = topo
				o := Options{
					Mode:       mode,
					Workload:   tinyWorkload(),
					Seed:       11,
					WarmCycles: 2_000,
					Config:     &cfg,
					Kernel:     kern,
				}.withDefaults()
				blob, err := EncodeCheckpoint(warmSystem(o).Snapshot(), CheckpointKey(o))
				if err != nil {
					f.Fatal(err)
				}
				blobs = append(blobs, blob)
			}
		}
	}
	return blobs
}

// fuzzBindTargets lazily builds one machine per topology for Bind
// probing (decode success is rare on mutated input, so the cost is paid
// once, not per execution).
var fuzzBindTargets = sync.OnceValue(func() []*System {
	var systems []*System
	for _, topo := range []Topology{TopologyDirectory, TopologySnoopy} {
		cfg := DefaultConfig()
		cfg.Topology = topo
		o := Options{
			Mode:       ModeReunion,
			Workload:   workload.Apache(),
			Seed:       11,
			WarmCycles: 2_000,
			Config:     &cfg,
		}.withDefaults()
		systems = append(systems, buildSystem(o))
	}
	return systems
})
