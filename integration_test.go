package reunion

import (
	"fmt"
	"testing"

	"reunion/internal/fault"
	"reunion/internal/workload"
)

// runToHalt drives a system to completion and fails the test on timeout or
// unrecoverable failure.
func runToHalt(t *testing.T, sys *System, maxCycles int64) int64 {
	t.Helper()
	cycles, halted := sys.RunUntilHalted(maxCycles)
	if !halted {
		for _, c := range sys.Cores {
			t.Log(c.DumpState())
		}
		for _, p := range sys.Pairs {
			t.Log(p.DebugString())
		}
		t.Fatalf("did not halt in %d cycles", maxCycles)
	}
	if sys.Failed() {
		t.Fatal("unrecoverable failure signalled")
	}
	return cycles
}

// TestCounterAllModes is the central safety/liveness test: the
// lock-protected shared counter must reach exactly n*iters under every
// execution model and every phantom strength. Under Reunion with weak
// phantoms this exercises constant input incoherence, rollback recovery,
// and the forward-progress guarantee of Lemma 2.
func TestCounterAllModes(t *testing.T) {
	type tc struct {
		name    string
		mode    Mode
		phantom Phantom
		iters   int
		budget  int64
	}
	cases := []tc{
		{"non-redundant", ModeNonRedundant, PhantomGlobal, 60, 3_000_000},
		{"strict", ModeStrict, PhantomGlobal, 60, 3_000_000},
		{"reunion/global", ModeReunion, PhantomGlobal, 60, 6_000_000},
		{"reunion/shared", ModeReunion, PhantomShared, 25, 12_000_000},
		{"reunion/null", ModeReunion, PhantomNull, 12, 20_000_000},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if testing.Short() && (c.phantom != PhantomGlobal) {
				t.Skip("short mode")
			}
			cfg := DefaultConfig()
			cfg.L2.Phantom = c.phantom
			w := workload.MicroCounter(4, c.iters)
			sys := NewSystem(cfg, c.mode, w, 11)
			cycles := runToHalt(t, sys, c.budget)
			got, _ := sys.CoherentWord(workload.CounterAddr)
			if want := int64(4 * c.iters); got != want {
				t.Fatalf("counter=%d want %d", got, want)
			}
			var rec int64
			for _, p := range sys.Pairs {
				rec += p.Stats.Recoveries
			}
			t.Logf("%d cycles, %d recoveries", cycles, rec)
		})
	}
}

// TestProducerConsumer checks cross-pair flag/data communication: the
// consumer must accumulate exactly 1+2+...+iters under every model.
func TestProducerConsumer(t *testing.T) {
	const iters = 40
	want := int64(iters * (iters + 1) / 2)
	for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
		t.Run(mode.String(), func(t *testing.T) {
			w := workload.MicroProducerConsumer(iters)
			sys := NewSystem(DefaultConfig(), mode, w, 5)
			runToHalt(t, sys, 20_000_000)
			got, _ := sys.CoherentWord(workload.ResultAddr(1))
			if got != want {
				t.Fatalf("consumer sum=%d want %d", got, want)
			}
		})
	}
}

// TestRacyFlags runs a deliberately racy program: there is no unique
// correct answer, but safe execution requires every observed value to be
// one that was coherently written (thread ids 1..n or the initial 0 —
// observed as a set bit 1..n or bit 0).
func TestRacyFlags(t *testing.T) {
	const n, iters = 4, 50
	for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
		t.Run(mode.String(), func(t *testing.T) {
			w := workload.MicroRacyFlags(n, iters)
			sys := NewSystem(DefaultConfig(), mode, w, 9)
			runToHalt(t, sys, 30_000_000)
			validMask := int64(0)
			for id := 0; id <= n; id++ {
				validMask |= 1 << id
			}
			for tid := 0; tid < n; tid++ {
				seen, _ := sys.CoherentWord(workload.ResultAddr(tid))
				if seen == 0 {
					t.Fatalf("thread %d observed nothing", tid)
				}
				if seen&^validMask != 0 {
					t.Fatalf("thread %d observed impossible values: mask %b", tid, seen)
				}
				// Every thread must at least have observed its own write.
				if seen&(1<<(tid+1)) == 0 {
					t.Fatalf("thread %d never observed its own store", tid)
				}
			}
		})
	}
}

// TestDeterminism: the simulator must be cycle-exact reproducible — two
// systems with identical seeds evolve identically.
func TestDeterminism(t *testing.T) {
	build := func() *System {
		w := workload.Apache().Build(123, 4)
		s := NewSystem(DefaultConfig(), ModeReunion, w, 123)
		s.Prefill()
		return s
	}
	a, b := build(), build()
	a.Run(30_000)
	b.Run(30_000)
	for i := range a.Cores {
		ca, cb := a.Cores[i], b.Cores[i]
		if ca.Stats.Committed != cb.Stats.Committed {
			t.Fatalf("core %d committed %d vs %d", i, ca.Stats.Committed, cb.Stats.Committed)
		}
		if ca.ARF() != cb.ARF() {
			t.Fatalf("core %d architectural state diverged", i)
		}
	}
	for i := range a.Pairs {
		if a.Pairs[i].Stats != b.Pairs[i].Stats {
			t.Fatalf("pair %d stats diverged: %+v vs %+v", i, a.Pairs[i].Stats, b.Pairs[i].Stats)
		}
	}
}

// TestStrictNeverRecovers: the strict input replication oracle by
// construction never observes input incoherence.
func TestStrictNeverRecovers(t *testing.T) {
	w := workload.Zeus().Build(7, 4)
	sys := NewSystem(DefaultConfig(), ModeStrict, w, 7)
	sys.Run(50_000)
	if len(sys.Pairs) != 0 {
		t.Fatal("strict mode must not build pairs")
	}
	var committed int64
	for _, c := range sys.Cores {
		committed += c.Stats.Committed
	}
	if committed == 0 {
		t.Fatal("no progress")
	}
}

// TestFingerprintIntervals: longer comparison intervals (the paper reports
// intervals of 1 and 50 are performance-equivalent) must preserve
// correctness, including recovery restart at interval granularity.
func TestFingerprintIntervals(t *testing.T) {
	for _, interval := range []int{1, 5, 50} {
		t.Run(fmt.Sprintf("interval=%d", interval), func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Core.FPInterval = interval
			w := workload.MicroCounter(4, 40)
			sys := NewSystem(cfg, ModeReunion, w, 3)
			runToHalt(t, sys, 10_000_000)
			got, _ := sys.CoherentWord(workload.CounterAddr)
			if got != 160 {
				t.Fatalf("counter=%d want 160", got)
			}
		})
	}
}

// TestForcedAliasingPhase2 drives the rare second recovery phase: forcing
// mismatching comparisons to pass emulates fingerprint aliasing, which
// corrupts the mute's architectural state; phase 1 re-execution then fails
// and phase 2 must copy the vocal's safe state into the mute (Definition 9)
// and still produce the correct result.
func TestForcedAliasingPhase2(t *testing.T) {
	cfg := DefaultConfig()
	w := workload.MicroCounter(4, 60)
	sys := NewSystem(cfg, ModeReunion, w, 13)
	for _, p := range sys.Pairs {
		p.ForceAlias = 2
	}
	runToHalt(t, sys, 20_000_000)
	got, _ := sys.CoherentWord(workload.CounterAddr)
	if got != 240 {
		t.Fatalf("counter=%d want 240", got)
	}
	var aliased, phase2 int64
	for _, p := range sys.Pairs {
		aliased += p.Stats.AliasForced
		phase2 += p.Stats.Phase2
	}
	t.Logf("aliased %d comparisons, %d phase-2 recoveries", aliased, phase2)
	if aliased == 0 {
		t.Skip("no comparison mismatched in this run; aliasing hook unexercised")
	}
}

// TestFaultInjection: every injected transient must be detected or masked,
// never corrupting architectural results (the paper's soft-error claim).
func TestFaultInjection(t *testing.T) {
	w := workload.MicroCounter(4, 100)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 21)
	campaign := fault.NewCampaign(77, 2_000, sys.Cores)
	var cycles int64
	for cycles = 0; cycles < 30_000_000; cycles++ {
		sys.Step()
		campaign.Tick(cycles)
		all := true
		for _, c := range sys.Cores {
			if !c.Halted() {
				all = false
				break
			}
		}
		if all {
			break
		}
	}
	if sys.Failed() {
		t.Fatal("unrecoverable failure on transient faults")
	}
	got, _ := sys.CoherentWord(workload.CounterAddr)
	if got != 400 {
		t.Fatalf("counter=%d want 400 (architectural corruption)", got)
	}
	var faults int64
	for _, p := range sys.Pairs {
		faults += p.Stats.FaultEvents
	}
	if campaign.Fired > 0 && faults == 0 {
		t.Fatalf("%d faults fired but none detected", campaign.Fired)
	}
	t.Logf("injected=%d fired=%d detected=%d", campaign.Injected, campaign.Fired, faults)
}

// TestSoftwareTLB: correctness is unaffected by the TLB discipline; the
// software handler only costs time.
func TestSoftwareTLB(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.TLB.Mode = TLBSoftware
	for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
		w := workload.MicroCounter(4, 40)
		sys := NewSystem(cfg, mode, w, 17)
		runToHalt(t, sys, 10_000_000)
		got, _ := sys.CoherentWord(workload.CounterAddr)
		if got != 160 {
			t.Fatalf("%v: counter=%d want 160", mode, got)
		}
	}
}

// TestSequentialConsistency: with every store serializing, results stay
// correct (and stores drain before anything younger retires).
func TestSequentialConsistency(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Core.Consistency = SC
	for _, mode := range []Mode{ModeNonRedundant, ModeReunion} {
		w := workload.MicroCounter(4, 30)
		sys := NewSystem(cfg, mode, w, 19)
		runToHalt(t, sys, 20_000_000)
		got, _ := sys.CoherentWord(workload.CounterAddr)
		if got != 120 {
			t.Fatalf("%v: counter=%d want 120", mode, got)
		}
	}
}

// TestMuteNeverLeaks: a mute core's stores must never become visible in
// the coherent memory image (Definition 2).
func TestMuteNeverLeaks(t *testing.T) {
	w := workload.MicroCounter(2, 30)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 23)
	runToHalt(t, sys, 10_000_000)
	// The counter reflects exactly the vocal executions.
	got, _ := sys.CoherentWord(workload.CounterAddr)
	if got != 60 {
		t.Fatalf("counter=%d want 60", got)
	}
	// Mute L1s may hold dirty lines, but the L2/memory view must match the
	// vocal's architecture. Spot-check: no mute writeback ever reached L2.
	for _, c := range sys.Cores {
		if !c.Vocal && c.L1D.WritebacksSent > 0 {
			t.Fatal("mute sent a writeback to the shared cache controller")
		}
	}
}

// TestRunAPI exercises the public entry points.
func TestRunAPI(t *testing.T) {
	p := workload.Sparse()
	r, err := Run(Options{Mode: ModeReunion, Workload: p, Seed: 3,
		WarmCycles: 5_000, MeasureCycles: 5_000})
	if err != nil {
		t.Fatal(err)
	}
	if r.Committed <= 0 || r.UserIPC <= 0 || r.Cycles != 5_000 {
		t.Fatalf("suspicious result: %+v", r)
	}
	if r.Workload != "sparse" || r.Mode != ModeReunion {
		t.Fatal("result identity fields wrong")
	}
	cmp, err := Compare(
		Options{Mode: ModeNonRedundant, Workload: p, WarmCycles: 5_000, MeasureCycles: 5_000},
		Options{Mode: ModeStrict, Workload: p, WarmCycles: 5_000, MeasureCycles: 5_000},
		DefaultSeeds(2))
	if err != nil {
		t.Fatal(err)
	}
	if cmp.Normalized <= 0 || cmp.Normalized > 1.2 {
		t.Fatalf("normalized IPC %v out of sane range", cmp.Normalized)
	}
	if len(cmp.Base) != 2 || len(cmp.Test) != 2 {
		t.Fatal("matched pairs missing")
	}
}

// TestZeroLatency: ZeroLatency must request a literal 0-cycle comparison
// and perform at least as well as 10 cycles.
func TestZeroLatency(t *testing.T) {
	p := workload.Moldyn()
	z, err := Run(Options{Mode: ModeStrict, Workload: p, CompareLatency: ZeroLatency,
		WarmCycles: 10_000, MeasureCycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	ten, err := Run(Options{Mode: ModeStrict, Workload: p, CompareLatency: 10,
		WarmCycles: 10_000, MeasureCycles: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	if z.UserIPC < ten.UserIPC*0.99 {
		t.Fatalf("zero latency (%.3f) slower than 10 cycles (%.3f)", z.UserIPC, ten.UserIPC)
	}
}

// TestAllWorkloadsAllModesSmoke: every suite workload makes progress and
// never signals failure under every mode (short windows).
func TestAllWorkloadsAllModesSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range workload.Suite() {
		for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
			r, err := Run(Options{Mode: mode, Workload: p, Seed: 2,
				WarmCycles: 5_000, MeasureCycles: 8_000})
			if err != nil {
				t.Fatalf("%s/%v: %v", p.Name, mode, err)
			}
			if r.Committed == 0 {
				t.Fatalf("%s/%v: no instructions committed", p.Name, mode)
			}
			if r.Failures != 0 {
				t.Fatalf("%s/%v: %d failures", p.Name, mode, r.Failures)
			}
		}
	}
}

// TestVocalMatchesGoldenUnderReunion: for a single-threaded (race-free)
// program, the Reunion vocal core must commit exactly the golden model's
// architectural results — redundant execution is transparent.
func TestVocalMatchesGoldenUnderReunion(t *testing.T) {
	w := workload.MicroCompute(300)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 31)
	runToHalt(t, sys, 10_000_000)

	w2 := workload.MicroCompute(300)
	m2 := newMemWrap(w2)
	// Reference result.
	want := int64(0)
	{
		res, err := interpRun(w2, m2)
		if err != nil {
			t.Fatal(err)
		}
		want = res
	}
	got, _ := sys.CoherentWord(workload.ResultAddr(0))
	if got != want {
		t.Fatalf("result %d want %d", got, want)
	}
	// The mute committed the same architectural state.
	v, m := sys.Cores[0], sys.Cores[1]
	if v.ARF() != m.ARF() {
		t.Fatal("vocal and mute architectural registers differ after race-free run")
	}
}

// TestExternalInterrupts: interrupts are replicated to both members of a
// pair and serviced at the same comparison boundary (§4.3): correctness is
// preserved, interrupts are counted, and the run is slower.
func TestExternalInterrupts(t *testing.T) {
	run := func(every int64) (int64, *System) {
		w := workload.MicroCounter(4, 50)
		sys := NewSystem(DefaultConfig(), ModeReunion, w, 7)
		sys.InterruptEvery = every
		sys.InterruptCost = 200
		cycles := runToHalt(t, sys, 20_000_000)
		got, _ := sys.CoherentWord(workload.CounterAddr)
		if got != 200 {
			t.Fatalf("counter=%d want 200", got)
		}
		return cycles, sys
	}
	base, _ := run(0)
	withInt, sys := run(500)
	if sys.InterruptsServiced() == 0 {
		t.Fatal("no interrupts serviced")
	}
	if withInt <= base {
		t.Fatalf("interrupt run (%d cycles) not slower than base (%d)", withInt, base)
	}
	t.Logf("base %d cycles, with interrupts %d (%d serviced)", base, withInt, sys.InterruptsServiced())
}

// TestTracing: the event ring records mismatches and recoveries under a
// recovery-heavy configuration.
func TestTracing(t *testing.T) {
	cfg := DefaultConfig()
	cfg.L2.Phantom = PhantomShared // frequent incoherence
	w := workload.MicroCounter(4, 15)
	sys := NewSystem(cfg, ModeReunion, w, 3)
	ring := sys.EnableTracing(256)
	runToHalt(t, sys, 20_000_000)
	if ring.Len() == 0 {
		t.Fatal("no events recorded under shared phantoms")
	}
	dump := ring.Dump()
	if dump == "" {
		t.Fatal("empty dump")
	}
	t.Logf("recorded %d events (last window %d)", ring.Recorded, ring.Len())
}

// TestSnoopyTopology: the Reunion execution model is independent of the
// memory-system organization (paper §4.1): the Montecito-style snoopy bus
// must deliver the same architectural results as the directory L2 under
// every execution model, with recoveries working end to end.
func TestSnoopyTopology(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Topology = TopologySnoopy
	for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
		t.Run(mode.String(), func(t *testing.T) {
			w := workload.MicroCounter(4, 40)
			sys := NewSystem(cfg, mode, w, 29)
			if sys.Bus == nil || sys.L2 != nil {
				t.Fatal("snoopy system built the wrong memory system")
			}
			runToHalt(t, sys, 30_000_000)
			got, _ := sys.CoherentWord(workload.CounterAddr)
			if got != 160 {
				t.Fatalf("counter=%d want 160", got)
			}
		})
	}
	t.Run("producer-consumer", func(t *testing.T) {
		w := workload.MicroProducerConsumer(30)
		sys := NewSystem(cfg, ModeReunion, w, 31)
		runToHalt(t, sys, 30_000_000)
		got, _ := sys.CoherentWord(workload.ResultAddr(1))
		if got != 465 {
			t.Fatalf("sum=%d want 465", got)
		}
	})
	t.Run("fuzz", func(t *testing.T) {
		for s := 0; s < 5; s++ {
			seed := uint64(777 + s*131)
			w := workload.RandomProgram(seed, 90, 0)
			mRef := newMemWrap(w)
			ref, err := interpRunRegs(w, mRef)
			if err != nil {
				t.Fatal(err)
			}
			w2 := workload.RandomProgram(seed, 90, 0)
			sys := NewSystem(cfg, ModeReunion, w2, seed)
			if _, halted := sys.RunUntilHalted(20_000_000); !halted {
				t.Fatalf("seed %d: did not halt", seed)
			}
			if sys.Cores[0].ARF() != ref {
				t.Fatalf("seed %d: snoopy vocal diverged from golden", seed)
			}
		}
	})
}
