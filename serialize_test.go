package reunion

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"strings"
	"testing"

	"reunion/internal/workload"
)

// resealCheckpoint applies mutate to a copy of blob's pre-footer bytes
// and recomputes the CRC footer, producing a well-sealed blob with
// altered content — for exercising the gates that stand behind the
// checksum.
func resealCheckpoint(t *testing.T, blob []byte, mutate func([]byte)) []byte {
	t.Helper()
	forged := append([]byte(nil), blob...)
	body := forged[:len(forged)-8]
	mutate(body)
	binary.LittleEndian.PutUint64(forged[len(forged)-8:], crc64.Checksum(body, ckptCRCTable))
	return forged
}

// The serialized-checkpoint contract: a cold process that fetches a
// checkpoint blob, builds a fresh system, binds and restores must be
// bit-identical — every statistic counter, the clock, the architectural
// digest — to the process that warmed the state and kept it in memory.
// These tests run the two paths side by side across mode × topology ×
// kernel, plus the format-level guarantees (deterministic bytes, key
// and version gates) the content-addressed store builds on.

// coldOpts is the matrix cell's options: small warm window, default
// machine otherwise.
func coldOpts(topo Topology, mode Mode, kern Kernel) Options {
	cfg := DefaultConfig()
	cfg.Topology = topo
	return Options{
		Mode:       mode,
		Workload:   workload.Apache(),
		Seed:       7,
		WarmCycles: 6_000,
		Config:     &cfg,
		Kernel:     kern,
	}.withDefaults()
}

// warmAndMeasure is the in-process reference: warm, snapshot, measure.
func warmAndMeasure(o Options) (*Checkpoint, map[string]int64) {
	sys := warmSystem(o)
	cp := sys.Snapshot()
	sys.ResetStats()
	sys.Run(6_000)
	return cp, systemStats(sys)
}

// coldRestoreMeasure is the cross-process path under test: decode the
// blob, build a cold machine, bind, restore, measure.
func coldRestoreMeasure(t *testing.T, blob []byte, o Options) map[string]int64 {
	t.Helper()
	d, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	sys := buildSystem(o)
	cp, err := d.Bind(sys, CheckpointKey(o))
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	sys.Restore(cp)
	sys.ResetStats()
	sys.Run(6_000)
	return systemStats(sys)
}

// TestCheckpointColdRestoreEquivalence proves the acceptance criterion:
// a cold worker restoring a fetched checkpoint matches the warming
// worker bit for bit, across topology × mode × kernel.
func TestCheckpointColdRestoreEquivalence(t *testing.T) {
	for _, topo := range []Topology{TopologyDirectory, TopologySnoopy} {
		for _, mode := range []Mode{ModeNonRedundant, ModeStrict, ModeReunion} {
			for _, kern := range []Kernel{KernelNaive, KernelFastForward} {
				label := fmt.Sprintf("%v/%v/%v", topo, mode, kern)
				o := coldOpts(topo, mode, kern)
				cp, want := warmAndMeasure(o)
				blob, err := EncodeCheckpoint(cp, CheckpointKey(o))
				if err != nil {
					t.Fatalf("%s: encode: %v", label, err)
				}
				got := coldRestoreMeasure(t, blob, o)
				diffStats(t, label, want, got)
			}
		}
	}
}

// TestCheckpointInterruptChain covers the self-rescheduling interrupt
// event across serialization: a pending evInterrupt must fire in the
// cold process at the same cycle with the same generation guard.
func TestCheckpointInterruptChain(t *testing.T) {
	o := coldOpts(TopologyDirectory, ModeReunion, KernelFastForward)
	run := func(cold bool) map[string]int64 {
		sys := buildSystem(o)
		sys.InterruptEvery = 293
		sys.InterruptCost = 77
		sys.Prefill()
		sys.Run(o.WarmCycles)
		cp := sys.Snapshot()
		if cold {
			blob, err := EncodeCheckpoint(cp, CheckpointKey(o))
			if err != nil {
				t.Fatalf("encode: %v", err)
			}
			d, err := DecodeCheckpoint(blob)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			sys = buildSystem(o)
			cp, err = d.Bind(sys, CheckpointKey(o))
			if err != nil {
				t.Fatalf("bind: %v", err)
			}
		}
		sys.Restore(cp)
		sys.ResetStats()
		sys.Run(6_000)
		return systemStats(sys)
	}
	warm := run(false)
	cold := run(true)
	diffStats(t, "interrupts", warm, cold)
	if warm["interrupts"] == 0 {
		t.Error("no interrupts serviced in the measured window")
	}
}

// TestCheckpointEncodeDeterministic proves the blob is a function of the
// machine state alone: encoding the same checkpoint twice, and encoding
// the checkpoint of a restored cold machine, all yield identical bytes —
// the property that makes content-addressed storage meaningful.
func TestCheckpointEncodeDeterministic(t *testing.T) {
	o := coldOpts(TopologySnoopy, ModeReunion, KernelFastForward)
	key := CheckpointKey(o)
	sys := warmSystem(o)
	cp := sys.Snapshot()
	a, err := EncodeCheckpoint(cp, key)
	if err != nil {
		t.Fatal(err)
	}
	b, err := EncodeCheckpoint(cp, key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of one checkpoint differ")
	}
	d, err := DecodeCheckpoint(a)
	if err != nil {
		t.Fatal(err)
	}
	cold := buildSystem(o)
	ccp, err := d.Bind(cold, key)
	if err != nil {
		t.Fatal(err)
	}
	cold.Restore(ccp)
	c, err := EncodeCheckpoint(cold.Snapshot(), key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, c) {
		t.Error("re-encoding a cold-restored machine's snapshot differs from the original blob")
	}
}

// TestCheckpointKeyZeroLatency pins the defaulting-idempotence contract
// behind CheckpointKey: the key is derived from re-defaulted options (a
// WarmCache sees them already defaulted), so applying defaults twice
// must be a no-op. The historical hazard: folding the ZeroLatency
// sentinel to a literal 0 made a second pass read it as "unset" and
// default it to 10 — a zero-latency cell's store key collided with its
// default-latency sibling, and a fetched checkpoint restored the wrong
// machine.
func TestCheckpointKeyZeroLatency(t *testing.T) {
	zero := coldOpts(TopologyDirectory, ModeReunion, KernelFastForward)
	zero.CompareLatency = ZeroLatency
	ten := coldOpts(TopologyDirectory, ModeReunion, KernelFastForward)
	if CheckpointKey(zero) == CheckpointKey(ten) {
		t.Error("zero-latency and default-latency cells share a checkpoint key")
	}
	once := zero.withDefaults()
	twice := once.withDefaults()
	if once != twice {
		t.Errorf("withDefaults is not idempotent:\nonce:  %+v\ntwice: %+v", once, twice)
	}
	if CheckpointKey(zero) != CheckpointKey(once) {
		t.Error("CheckpointKey of raw and defaulted options disagree")
	}
}

// TestCheckpointKeyGate proves Bind refuses a blob whose options
// fingerprint disagrees with the target system's — the guard against a
// store handing warm state to the wrong configuration.
func TestCheckpointKeyGate(t *testing.T) {
	o := coldOpts(TopologyDirectory, ModeNonRedundant, KernelFastForward)
	cp := warmSystem(o).Snapshot()
	blob, err := EncodeCheckpoint(cp, CheckpointKey(o))
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Bind(buildSystem(o), CheckpointKey(o)+1); err == nil {
		t.Error("Bind accepted a checkpoint keyed for different options")
	}
}

// TestCheckpointVersionGate proves a blob from a different format
// version is refused with a pointed diagnostic, not misparsed.
func TestCheckpointVersionGate(t *testing.T) {
	o := coldOpts(TopologyDirectory, ModeNonRedundant, KernelFastForward)
	cp := warmSystem(o).Snapshot()
	blob, err := EncodeCheckpoint(cp, CheckpointKey(o))
	if err != nil {
		t.Fatal(err)
	}
	forged := resealCheckpoint(t, blob, func(b []byte) {
		b[4]++ // version low byte
	})
	_, err = DecodeCheckpoint(forged)
	if err == nil {
		t.Fatal("decoder accepted a blob with a bumped format version")
	}
	if !strings.Contains(err.Error(), "version") {
		t.Errorf("version mismatch error %q does not name the version", err)
	}
}

// TestCheckpointTopologyGate proves Bind refuses a blob whose memory
// system does not match the target machine even when the caller passes a
// matching key (defense in depth below the key check).
func TestCheckpointTopologyGate(t *testing.T) {
	o := coldOpts(TopologySnoopy, ModeNonRedundant, KernelFastForward)
	cp := warmSystem(o).Snapshot()
	blob, err := EncodeCheckpoint(cp, CheckpointKey(o))
	if err != nil {
		t.Fatal(err)
	}
	d, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	other := coldOpts(TopologyDirectory, ModeNonRedundant, KernelFastForward)
	if _, err := d.Bind(buildSystem(other), d.Key); err == nil {
		t.Error("Bind restored a snoopy-bus checkpoint onto a directory machine")
	}
}
