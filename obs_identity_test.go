package reunion

// Observability acceptance: telemetry is a pure observer. For the sweep
// engine, the campaign engine, and the shard journal, the result bytes
// with a full scope attached (tracer + registry, plus the per-trial
// kernel-event ring) are byte-identical to the telemetry-off run — and
// the telemetry itself is well-formed: the trace parses as Chrome
// trace-event JSON with the required fields, the metrics parse under a
// strict Prometheus text-format check.

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"reunion/internal/campaign"
	"reunion/internal/dist"
	"reunion/internal/obs"
	"reunion/internal/sweep"
)

func obsTestScope() obs.Scope {
	return obs.Scope{Trace: obs.NewTracer(0), Metrics: obs.NewRegistry()}
}

// chromeTraceEvents unmarshals a tracer's output and checks the fields
// Perfetto requires on every event.
func chromeTraceEvents(t *testing.T, tr *obs.Tracer) []map[string]any {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		DisplayUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v", err)
	}
	for i, ev := range doc.TraceEvents {
		if ev["name"] == "" || ev["name"] == nil {
			t.Fatalf("event %d has no name: %v", i, ev)
		}
		ph, _ := ev["ph"].(string)
		if ph != "X" && ph != "i" {
			t.Fatalf("event %d has phase %q, want X or i", i, ph)
		}
		if _, ok := ev["ts"].(float64); !ok {
			t.Fatalf("event %d has no ts: %v", i, ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event %d has no pid: %v", i, ev)
		}
		if _, ok := ev["dur"].(float64); ph == "X" && !ok {
			t.Fatalf("complete event %d has no dur: %v", i, ev)
		}
	}
	return doc.TraceEvents
}

// promFamilies runs the registry through the strict text-format parser
// and indexes the result by family name.
func promFamilies(t *testing.T, reg *obs.Registry) map[string]obs.PromFamily {
	t.Helper()
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	fams, err := obs.ParsePrometheus(&buf)
	if err != nil {
		t.Fatalf("metrics failed the Prometheus text-format check: %v", err)
	}
	byName := make(map[string]obs.PromFamily, len(fams))
	for _, f := range fams {
		byName[f.Name] = f
	}
	return byName
}

func counterTotal(f obs.PromFamily) float64 {
	var sum float64
	for _, s := range f.Samples {
		sum += s.Value
	}
	return sum
}

func obsSweepSpec() sweep.Spec[Options] {
	return sweep.Spec[Options]{
		Name: "obs-sweep",
		Base: Options{WarmCycles: 2_000, MeasureCycles: 1_500},
		Axes: []sweep.Axis[Options]{
			sweep.NewAxis("workload", []string{"apache", "sparse"},
				func(s string) string { return s },
				func(o *Options, s string) { o.Workload = mustWorkload(s) }),
			sweep.NewAxis("mode", []Mode{ModeNonRedundant, ModeReunion}, Mode.String,
				func(o *Options, m Mode) { o.Mode = m }),
		},
	}
}

func runObsSweep(t *testing.T, spec sweep.Spec[Options], sc obs.Scope) []byte {
	t.Helper()
	var out bytes.Buffer
	r := sweep.Runner[Options, Result]{
		Parallelism: 2,
		Obs:         sc,
		Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
			return Run(p.Config)
		},
		Emit: sweepEmit(spec, sweep.NewJSONL(&out)),
	}
	if _, err := r.Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	return out.Bytes()
}

func TestTelemetrySweepByteIdentity(t *testing.T) {
	spec := obsSweepSpec()
	ref := runObsSweep(t, spec, obs.Scope{})
	sc := obsTestScope()
	got := runObsSweep(t, spec, sc)
	if !bytes.Equal(got, ref) {
		t.Fatal("sweep JSONL differs between telemetry on and off")
	}

	events := chromeTraceEvents(t, sc.Trace)
	if len(events) != spec.Size() {
		t.Fatalf("trace holds %d spans, want one per run (%d)", len(events), spec.Size())
	}
	fams := promFamilies(t, sc.Metrics)
	runs, ok := fams["sweep_runs_total"]
	if !ok {
		t.Fatal("metrics missing sweep_runs_total")
	}
	if got := counterTotal(runs); got != float64(spec.Size()) {
		t.Fatalf("sweep_runs_total = %v, want %d", got, spec.Size())
	}
	if _, ok := fams["sweep_run_duration_us"]; !ok {
		t.Fatal("metrics missing sweep_run_duration_us")
	}
}

func TestTelemetryJournalByteIdentity(t *testing.T) {
	spec := obsSweepSpec()
	dir := t.TempDir()

	// One 2-shard slice of the matrix, journaled twice: telemetry off and
	// a full scope through OpenOrCreateObs + Runner.Obs. The journal files
	// (header, records, checksummed footer) must be byte-identical.
	writeJournal := func(path string, sc obs.Scope) {
		t.Helper()
		plan, err := dist.NewPlan(spec.Name, spec.Size(), 0, 2)
		if err != nil {
			t.Fatal(err)
		}
		jnl, err := dist.OpenOrCreateObs(path, plan, false, sc)
		if err != nil {
			t.Fatal(err)
		}
		r := sweep.Runner[Options, Result]{
			Parallelism: 2,
			Obs:         sc,
			Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
				return Run(p.Config)
			},
			Emit: sweepEmit(spec, jnl),
		}
		if _, err := r.SweepIndices(context.Background(), spec, jnl.Remaining()); err != nil {
			t.Fatal(err)
		}
		if err := jnl.Finish(); err != nil {
			t.Fatal(err)
		}
	}

	refPath := filepath.Join(dir, "ref.jsonl")
	obsPath := filepath.Join(dir, "obs.jsonl")
	writeJournal(refPath, obs.Scope{})
	sc := obsTestScope()
	writeJournal(obsPath, sc)

	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	obsBytes, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(obsBytes, refBytes) {
		t.Fatal("journal bytes differ between telemetry on and off")
	}

	fams := promFamilies(t, sc.Metrics)
	recs, ok := fams["dist_journal_records_total"]
	if !ok {
		t.Fatal("metrics missing dist_journal_records_total")
	}
	if got := counterTotal(recs); got != 2 {
		t.Fatalf("dist_journal_records_total = %v, want the shard's 2", got)
	}
}

func TestTelemetryCampaignByteIdentity(t *testing.T) {
	spec := campaign.Spec[Options]{
		Name: "obs-campaign",
		Matrix: sweep.Spec[Options]{
			Name: "obs-campaign",
			Base: injectTestOptions(),
			Axes: []sweep.Axis[Options]{
				sweep.NewAxis("seed", []uint64{1}, func(s uint64) string { return strconv.FormatUint(s, 10) },
					func(o *Options, s uint64) { o.Seed = s }),
			},
		},
		Model:  campaign.FaultModel{WindowHi: 400},
		Trials: 3,
		Seed:   0xfa017,
	}
	run := func(sc obs.Scope, traceEvents int) []byte {
		t.Helper()
		var out bytes.Buffer
		eng := campaign.Engine[Options]{
			Spec:        spec,
			RunTrial:    TrialRunnerTraced(spec.Model, NewWarmCache(), traceEvents),
			Parallelism: 2,
			Sink:        sweep.NewJSONL(&out),
			Obs:         sc,
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}

	ref := run(obs.Scope{}, 0)
	// Full scope AND the per-trial kernel-event ring: neither the spans
	// and counters nor Observation.Diag may leak into the trial records.
	sc := obsTestScope()
	got := run(sc, 64)
	if !bytes.Equal(got, ref) {
		t.Fatal("campaign JSONL differs between telemetry+trace-dump on and off")
	}

	events := chromeTraceEvents(t, sc.Trace)
	if len(events) != spec.Trials {
		t.Fatalf("trace holds %d spans, want one per trial (%d)", len(events), spec.Trials)
	}
	fams := promFamilies(t, sc.Metrics)
	trialsFam, ok := fams["campaign_trials_total"]
	if !ok {
		t.Fatal("metrics missing campaign_trials_total")
	}
	if got := counterTotal(trialsFam); got != float64(spec.Trials) {
		t.Fatalf("campaign_trials_total = %v, want %d", got, spec.Trials)
	}
}
