// Package reunion is a cycle-level chip-multiprocessor simulator
// reproducing "Reunion: Complexity-Effective Multicore Redundancy"
// (Smolens, Gold, Falsafi, Hoe — MICRO-39, 2006).
//
// The library simulates a CMP of out-of-order cores with private L1
// caches, a shared banked L2 with directory coherence, TLBs and branch
// predictors, running multithreaded shared-memory programs with real
// values. On top of that substrate it implements three execution models:
//
//   - ModeNonRedundant: the baseline CMP (one core per logical processor).
//   - ModeStrict: the oracle model of strict input replication — output
//     comparison with a configurable comparison latency but zero input-
//     replication cost (an idealized LVQ).
//   - ModeReunion: the paper's execution model — each logical processor is
//     a vocal/mute core pair with relaxed input replication (phantom
//     requests), fingerprint-based output comparison, and the two-phase
//     re-execution protocol with synchronizing requests.
//
// Quick start:
//
//	w := workload.Apache()
//	res, err := reunion.Run(reunion.Options{
//		Mode:     reunion.ModeReunion,
//		Workload: w,
//	})
//	fmt.Println(res.UserIPC, res.IncoherenceEvents)
//
// See README.md for an overview and the CLI commands, DESIGN.md for the
// system inventory, and EXPERIMENTS.md for the reproduction of every
// table and figure in the paper's evaluation. The evaluation matrix runs
// in parallel through the internal/sweep engine (cmd/reunion-sweep), and
// the soft-error detection story the paper assumes is measured by the
// Monte-Carlo fault-injection campaign engine (internal/campaign,
// cmd/reunion-inject): single-bit datapath flips classified as masked,
// detected (with latency), SDC, or DUE against fault-free golden runs.
package reunion

import (
	"reunion/internal/coherence"
	"reunion/internal/cpu"
	"reunion/internal/fingerprint"
	"reunion/internal/tlb"
)

// Mode selects the execution model.
type Mode int

// Execution models.
const (
	// ModeNonRedundant runs one core per logical processor, no checking.
	ModeNonRedundant Mode = iota
	// ModeStrict runs the strict-input-replication oracle.
	ModeStrict
	// ModeReunion runs vocal/mute pairs under the Reunion model.
	ModeReunion
)

// String names the mode as in the paper's figures.
func (m Mode) String() string {
	switch m {
	case ModeNonRedundant:
		return "non-redundant"
	case ModeStrict:
		return "strict"
	case ModeReunion:
		return "reunion"
	}
	return "?"
}

// Phantom re-exports the phantom request strength (paper §4.2).
type Phantom = coherence.PhantomStrength

// Phantom request strengths.
const (
	PhantomNull   = coherence.PhantomNull
	PhantomShared = coherence.PhantomShared
	PhantomGlobal = coherence.PhantomGlobal
)

// TLBMode re-exports the TLB management discipline (paper §5.5).
type TLBMode = tlb.Mode

// TLB management modes.
const (
	TLBHardware = tlb.Hardware
	TLBSoftware = tlb.Software
)

// Consistency re-exports the memory consistency model.
type Consistency = cpu.Consistency

// Consistency models.
const (
	TSO = cpu.TSO
	SC  = cpu.SC
)

// ConsistencyName names the consistency model in the lowercase form the
// sweep labels and CLI flags use (Consistency.String names it uppercase).
func ConsistencyName(c Consistency) string {
	if c == SC {
		return "sc"
	}
	return "tso"
}

// FingerprintMode re-exports the fingerprint compression pipeline.
type FingerprintMode = fingerprint.Mode

// Fingerprint modes.
const (
	FPDirect   = fingerprint.Direct
	FPTwoStage = fingerprint.TwoStage
)

// Topology selects the memory-system organization.
type Topology int

// Memory-system topologies.
const (
	// TopologyDirectory is the Piranha-style baseline of Table 1: private
	// L1s behind an inclusive shared L2 with a directory (the default).
	TopologyDirectory Topology = iota
	// TopologySnoopy is the Montecito-style variant of §4.1: private
	// caches on a broadcast bus in front of memory, no shared cache.
	TopologySnoopy
)

// String names the topology.
func (t Topology) String() string {
	if t == TopologySnoopy {
		return "snoopy"
	}
	return "directory"
}

// Config holds the full machine configuration. DefaultConfig returns the
// paper's Table 1 parameters.
type Config struct {
	LogicalProcessors int

	// Topology selects directory (shared L2) or snoopy (bus) memory.
	Topology Topology

	// SnoopLatency is the bus transaction latency under TopologySnoopy.
	SnoopLatency int64

	Core cpu.Config

	L1Bytes int
	L1Ways  int
	L1MSHRs int

	L2 coherence.Config

	ITLBEntries, ITLBWays int
	DTLBEntries, DTLBWays int

	// CompareLatency is the one-way fingerprint exchange latency between
	// the members of a pair (the x-axis of Figure 6).
	CompareLatency int64
	// PairTimeout is the divergence watchdog: how long one side of a pair
	// may keep sending fingerprints with the partner silent before forced
	// recovery.
	PairTimeout int64
}

// DefaultConfig returns the simulated baseline CMP of Table 1: 4 logical
// processors, 4 GHz 12-stage 4-wide out-of-order cores with a 256-entry
// RUU and 64-entry store buffer; 64 KB 2-way L1s with 32 MSHRs; a 16 MB
// 4-bank 8-way shared L2 with 35-cycle hits; 60 ns memory; 128/512-entry
// 2-way I/D TLBs with 8 KB pages.
func DefaultConfig() Config {
	return Config{
		LogicalProcessors: 4,
		Core: cpu.Config{
			FetchWidth:    4,
			DispatchWidth: 4,
			IssueWidth:    4,
			RetireWidth:   4,
			ROBSize:       256,
			SBSize:        64,
			FetchQCap:     16,
			CheckQCap:     256, // checked instructions buffer in the RUU itself
			LoadToUse:     2,
			FrontDepth:    8, // 12-stage pipeline's fetch-to-dispatch depth
			L1LoadPorts:   2,
			L1StorePorts:  1,
			TrapLatency:   25,
			DevLatency:    20,
			Consistency:   cpu.TSO,
			FPMode:        fingerprint.TwoStage,
			FPInterval:    1, // the paper compares fingerprints every instruction
			TLB: cpu.TLBPolicy{
				Mode:               tlb.Hardware,
				WalkLatency:        30,
				HandlerBody:        30,
				HandlerSerializers: 5, // 2 traps + 3 non-idempotent MMU accesses
			},
		},
		L1Bytes: 64 << 10,
		L1Ways:  2,
		L1MSHRs: 32,
		L2: coherence.Config{
			CapacityBytes: 16 << 20,
			Ways:          8,
			Banks:         4,
			HitLatency:    35,
			XBarLatency:   4,
			RecallLatency: 16,
			MemLatency:    240, // 60 ns at 4 GHz
			MemBanks:      64,
			MemBankBusy:   24, // bank occupancy per access (row cycle time)
			MemMSHRs:      64,
			PortsPerBank:  1, // scaled with core count at system build
			Phantom:       coherence.PhantomGlobal,
		},
		ITLBEntries: 128, ITLBWays: 2,
		DTLBEntries: 512, DTLBWays: 2,
		SnoopLatency:   20,
		CompareLatency: 10,
		PairTimeout:    20000,
	}
}

// newFPGen exposes fingerprint generation to the benchmark harness.
func newFPGen(m FingerprintMode) *fingerprint.Gen { return fingerprint.NewGen(m) }
