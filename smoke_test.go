package reunion

import (
	"testing"

	"reunion/internal/workload"
)

// TestSmokeNonRedundantCounter runs the canonical lock-protected counter
// microbenchmark on the baseline CMP and checks the final memory value:
// end-to-end functional correctness of fetch, rename, OOO issue, the
// store buffer, coherence, and atomics.
func TestSmokeNonRedundantCounter(t *testing.T) {
	w := workload.MicroCounter(4, 50)
	sys := NewSystem(DefaultConfig(), ModeNonRedundant, w, 1)
	cycles, halted := sys.RunUntilHalted(3_000_000)
	if !halted {
		for _, c := range sys.Cores {
			t.Log(c.DumpState())
		}
		t.Fatalf("did not halt in %d cycles", cycles)
	}
	got := int64(sys.Mem.ReadWord(workload.CounterAddr))
	// The counter's final value lives in the owning L1 (write-back); read
	// through the coherent view.
	if v, ok := sys.CoherentWord(workload.CounterAddr); ok {
		got = v
	}
	if got != 4*50 {
		t.Fatalf("counter = %d, want %d", got, 4*50)
	}
	t.Logf("halted in %d cycles", cycles)
}

// TestSmokeReunionCounter runs the same microbenchmark under the Reunion
// execution model: vocal/mute pairs with relaxed input replication must
// produce the identical architectural result, recovering from any input
// incoherence the lock and counter races cause.
func TestSmokeReunionCounter(t *testing.T) {
	w := workload.MicroCounter(4, 50)
	sys := NewSystem(DefaultConfig(), ModeReunion, w, 1)
	cycles, halted := sys.RunUntilHalted(6_000_000)
	if !halted {
		for _, c := range sys.Cores {
			t.Log(c.DumpState())
		}
		for _, p := range sys.Pairs {
			t.Logf("%v: %+v stepping=%v", p, p.Stats, p.InRecovery())
		}
		t.Fatalf("did not halt in %d cycles", cycles)
	}
	if sys.Failed() {
		t.Fatal("unrecoverable failure")
	}
	got, _ := sys.CoherentWord(workload.CounterAddr)
	if got != 4*50 {
		t.Fatalf("counter = %d, want %d", got, 4*50)
	}
	var rec int64
	for _, p := range sys.Pairs {
		rec += p.Stats.Recoveries
	}
	t.Logf("halted in %d cycles, %d recoveries", cycles, rec)
}
