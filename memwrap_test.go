package reunion

import (
	"reunion/internal/interp"
	"reunion/internal/mem"
	"reunion/internal/workload"
)

// memWrap gives tests a fresh initialized memory image.
type memWrap = mem.Memory

func newMemWrap(w *workload.Workload) *mem.Memory {
	m := mem.New()
	w.Init(m)
	return m
}

// interpRun executes a single-thread workload on the golden interpreter
// and returns the word it stored to ResultAddr(0).
func interpRun(w *workload.Workload, m *mem.Memory) (int64, error) {
	_, err := interp.Run(w.Threads[0], m, 10_000_000, nil)
	if err != nil {
		return 0, err
	}
	return int64(m.ReadWord(workload.ResultAddr(0))), nil
}

// interpRunRegs executes a single-thread workload on the golden
// interpreter and returns the final architectural registers.
func interpRunRegs(w *workload.Workload, m *mem.Memory) ([32]int64, error) {
	res, err := interp.Run(w.Threads[0], m, 10_000_000, nil)
	if err != nil {
		return [32]int64{}, err
	}
	return res.Regs, nil
}
