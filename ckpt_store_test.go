package reunion

import (
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"

	"reunion/internal/ckptstore"
)

// WarmCache + persistent store integration: the fleet-wide reuse
// contract (one warmup per cell across all workers), the
// silent-recompute policy for anything the store hands back that cannot
// be restored, and Len's safety under concurrent sharded access.

// storeCell builds a small, fast cell keyed by seed.
func storeCell(seed uint64) Options {
	return Options{
		Mode:          ModeReunion,
		Workload:      tinyWorkload(),
		Seed:          seed,
		WarmCycles:    2_000,
		MeasureCycles: 2_000,
	}
}

// memStore is an in-test Store whose contents the tests poison at will.
type memStore struct {
	mu sync.Mutex
	m  map[uint64][]byte
}

func newMemStore() *memStore { return &memStore{m: make(map[uint64][]byte)} }

func (s *memStore) Get(key uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.m[key]
	if !ok {
		return nil, ckptstore.ErrNotFound
	}
	return blob, nil
}

func (s *memStore) Put(key uint64, blob []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), blob...)
	return nil
}

// TestWarmCacheStoreFleet is the fleet-reuse contract over both real
// backends: worker A warms every cell once and uploads; workers B (same
// disk) and C (over HTTP) restore every cell from the store, warm
// nothing, and produce bit-identical Results.
func TestWarmCacheStoreFleet(t *testing.T) {
	cells := []Options{storeCell(31), storeCell(32), storeCell(33)}
	want := make([]Result, len(cells))
	for i, o := range cells {
		r, err := Run(o)
		if err != nil {
			t.Fatalf("fresh cell %d: %v", i, err)
		}
		want[i] = r
	}

	disk, err := ckptstore.NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(ckptstore.Handler(disk))
	defer srv.Close()

	workers := []struct {
		name  string
		store ckptstore.Store
		hits  int64 // expected StoreHits
		warms int64 // expected Warmups
	}{
		{"warming-worker", disk, 0, int64(len(cells))},
		{"cold-worker-disk", disk, int64(len(cells)), 0},
		{"cold-worker-http", ckptstore.NewClient(srv.URL), int64(len(cells)), 0},
	}
	for _, wk := range workers {
		warm := NewWarmCache()
		warm.UseStore(wk.store)
		for i, o := range cells {
			o.Warm = warm
			got, err := Run(o)
			if err != nil {
				t.Fatalf("%s cell %d: %v", wk.name, i, err)
			}
			if !reflect.DeepEqual(got, want[i]) {
				t.Errorf("%s cell %d diverged from fresh run:\nfresh: %+v\nstore: %+v",
					wk.name, i, want[i], got)
			}
		}
		if h := warm.StoreHits(); h != wk.hits {
			t.Errorf("%s: %d store hits, want %d", wk.name, h, wk.hits)
		}
		if w := warm.Warmups(); w != wk.warms {
			t.Errorf("%s: %d local warmups, want %d", wk.name, w, wk.warms)
		}
	}
}

// TestWarmCacheStoreRecompute is the silent-fallback table: whatever
// the store returns — garbage, a truncated blob, a checkpoint for
// different options, a future format version — the run recomputes
// locally and matches the fresh result. A bad store costs time, never
// correctness, and never an error.
func TestWarmCacheStoreRecompute(t *testing.T) {
	o := storeCell(57)
	key := CheckpointKey(o)
	want, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	// A genuine blob for *different* options (another seed), filed under
	// our key — the fingerprint gate must reject it.
	other := storeCell(58).withDefaults()
	otherBlob, err := EncodeCheckpoint(warmSystem(other).Snapshot(), CheckpointKey(other))
	if err != nil {
		t.Fatal(err)
	}
	// A well-sealed blob claiming a future format version.
	ourBlob, err := EncodeCheckpoint(warmSystem(o.withDefaults()).Snapshot(), key)
	if err != nil {
		t.Fatal(err)
	}
	future := resealCheckpoint(t, ourBlob, func(b []byte) { b[4]++ })

	cases := []struct {
		name string
		blob []byte
	}{
		{"garbage", []byte("not a checkpoint at all")},
		{"truncated", ourBlob[:len(ourBlob)/3]},
		{"wrong-options", otherBlob},
		{"future-version", future},
	}
	for _, tc := range cases {
		store := newMemStore()
		store.m[key] = tc.blob
		warm := NewWarmCache()
		warm.UseStore(store)
		co := o
		co.Warm = warm
		got, err := Run(co)
		if err != nil {
			t.Fatalf("%s: run errored instead of recomputing: %v", tc.name, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: recomputed run diverged from fresh run", tc.name)
		}
		if warm.StoreHits() != 0 || warm.Warmups() != 1 {
			t.Errorf("%s: hits=%d warmups=%d, want 0/1 (poisoned blob must recompute)",
				tc.name, warm.StoreHits(), warm.Warmups())
		}
	}
}

// TestWarmCacheLenConcurrent hammers one store-backed cache from
// concurrent workers on distinct keys while polling Len — the sharded
// campaign's access pattern, run under -race in CI.
func TestWarmCacheLenConcurrent(t *testing.T) {
	warm := NewWarmCache()
	warm.UseStore(newMemStore())
	const workers = 8
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			o := storeCell(seed)
			o.WarmCycles, o.MeasureCycles = 1_000, 500
			o.Warm = warm
			if _, err := Run(o); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
			_ = warm.Len()
		}(uint64(100 + i))
	}
	done := make(chan struct{})
	go func() {
		for {
			select {
			case <-done:
				return
			default:
				_ = warm.Len()
			}
		}
	}()
	wg.Wait()
	close(done)
	if n := warm.Len(); n != workers {
		t.Errorf("cache holds %d keys, want %d", n, workers)
	}
}
