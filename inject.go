package reunion

import (
	"context"
	"fmt"

	"reunion/internal/campaign"
	"reunion/internal/fault"
	"reunion/internal/sweep"
)

// DefaultCommitTarget is the per-logical-processor committed-instruction
// boundary a fault-injection trial runs to when the cell options leave
// CommitTarget unset. Classification compares commit digests at this
// boundary, so it also bounds how far a fault can propagate before the
// verdict.
const DefaultCommitTarget = 2000

// CoresUnderTest returns the number of physical cores a run of these
// options simulates: one per logical processor, doubled under ModeReunion
// (each logical processor is a vocal/mute pair, and faults target both —
// a mute flip must be detected exactly like a vocal one).
func (o Options) CoresUnderTest() int {
	n := o.Threads
	if n == 0 {
		n = 4
	}
	if o.Mode == ModeReunion {
		n *= 2
	}
	return n
}

// trialKey fingerprints every option a golden (fault-free) trial run
// depends on, so one golden reference serves all trials of a cell. Like
// the sweep's baseline cache, distinct cells never share an entry and
// concurrent trials of one cell singleflight onto the same run.
func trialKey(o Options) string {
	cfgKey := ""
	if o.Config != nil {
		cfgKey = fmt.Sprintf("%+v", *o.Config)
	}
	return fmt.Sprintf("%v|%+v|%d|%d|%d|%d|%v|%v|%v|%d|%d|%d|%v|%s",
		o.Mode, o.Workload, o.Threads, o.Seed, o.CompareLatency, o.FPInterval,
		o.Phantom, o.TLB, o.Consistency, o.WarmCycles, o.CommitTarget,
		o.TrialDeadline, o.NoPrefill, cfgKey)
}

// TrialRunner returns the campaign trial-execution function over Run: it
// resolves each trial's draw against the cell's core count, arms the
// single-shot fault, and reports the observation the classifier needs,
// comparing against a memoized golden run of the same cell. The returned
// function is safe for concurrent use across trials; golden runs are
// computed once per cell behind a singleflight.
//
// Warm state is checkpointed per cell and shared campaign-wide: the
// golden run warms the cell's system once and snapshots it at the
// measurement boundary, and every injected trial of that cell restores
// the snapshot instead of re-warming from cycle 0 — bit-identical
// classification, several times less host time.
func TrialRunner(model campaign.FaultModel) func(ctx context.Context, cell sweep.Point[Options], t campaign.Trial) campaign.Observation {
	return TrialRunnerWarm(model, NewWarmCache())
}

// TrialRunnerWarm is TrialRunner over a caller-owned warm-state cache.
// Both caches are lazy — a cell's golden run and warm checkpoint are
// built the first time one of its trials executes — which is what makes
// sharded campaigns warm-local: under the dist layer's contiguous plans
// a shard's trials land on the fewest possible cells, so each worker
// process warms exactly the checkpoints its own cells need and no
// others (asserted via WarmCache.Len in the shard byte-identity tests).
// Passing the cache also lets one cache serve several engines of the
// same campaign, e.g. a resumed shard's second Engine run.
func TrialRunnerWarm(model campaign.FaultModel, warm *WarmCache) func(ctx context.Context, cell sweep.Point[Options], t campaign.Trial) campaign.Observation {
	return TrialRunnerTraced(model, warm, 0)
}

// TrialRunnerTraced is TrialRunnerWarm with per-trial kernel-event
// tracing: when traceEvents is positive, each injected run records its
// last traceEvents recovery/mismatch events and the formatted dump
// reaches the Observation's Diag field — where the inject CLI's
// -trace-dump flag prints it for SDC and unexpected-DUE trials. Golden
// runs stay untraced. Tracing is a pure observer (Options.TraceEvents is
// excluded from every cache key), so traced and untraced campaigns
// produce byte-identical result streams.
func TrialRunnerTraced(model campaign.FaultModel, warm *WarmCache, traceEvents int) func(ctx context.Context, cell sweep.Point[Options], t campaign.Trial) campaign.Observation {
	golden := newMemo[Result]()
	return func(_ context.Context, cell sweep.Point[Options], t campaign.Trial) campaign.Observation {
		o := cell.Config
		if o.CommitTarget <= 0 {
			o.CommitTarget = DefaultCommitTarget
		}
		o.Inject = nil
		o.Warm = warm
		g, err := golden.do(trialKey(o), func() (Result, error) {
			r, err := Run(o)
			if err == nil && !r.DigestOK {
				err = fmt.Errorf("reunion: golden run hit the trial deadline before commit target %d (unrecoverable=%v)",
					o.CommitTarget, r.Unrecoverable)
			}
			return r, err
		})
		if err != nil {
			return campaign.Observation{Err: fmt.Errorf("golden: %w", err)}
		}
		n := o.CoresUnderTest()
		if model.Cores > 0 && model.Cores < n {
			n = model.Cores
		}
		inj := fault.Injection{Core: t.Core(n), Cycle: t.Cycle, Bit: t.Bit}
		o.Inject = &inj
		o.TraceEvents = traceEvents
		res, err := Run(o)
		if err != nil {
			return campaign.Observation{Err: err}
		}
		return campaign.Observation{
			Diag:          res.TraceDump,
			Unrecoverable: res.Unrecoverable,
			Completed:     res.TrialComplete,
			Armed:         res.FaultArmed,
			Fired:         res.FaultFired,
			FireCycle:     res.FaultFireCycle,
			Detected:      res.FaultDetected,
			LatencyCycles: res.DetectLatency,
			LatencyInstrs: res.DetectLatencyInstr,
			Digest:        res.CommitDigest,
			GoldenDigest:  g.CommitDigest,
			DigestOK:      res.DigestOK && g.DigestOK,
			Core:          inj.Core,
			Retired:       res.FaultRetired,
			Squashed:      res.FaultSquashed,
		}
	}
}
