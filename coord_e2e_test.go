package reunion

// Coordinated-execution acceptance: a campaign dispatched dynamically by
// the coordinator — small index-range leases pulled by a fleet over real
// HTTP, including a worker killed mid-range — merges to a stream
// byte-identical to the single-process run. This drives the same
// internal/coord layer the reunion-coordinator daemon and the CLIs'
// -coordinator mode use, with real simulations producing the ranges.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"reunion/internal/coord"
	"reunion/internal/dist"
	"reunion/internal/sweep"
)

func TestCoordinatedSweepKilledWorkerByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("coordinated e2e runs real simulations")
	}
	spec := shardSweepSpec()
	total := spec.Size()
	ctx := context.Background()

	// Reference: the single-process stream.
	var ref bytes.Buffer
	refSink := sweep.NewJSONL(&ref)
	runner := sweep.Runner[Options, Result]{
		Parallelism: 2,
		Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
			return Run(p.Config)
		},
		Emit: sweepEmit(spec, refSink),
	}
	if _, err := runner.Sweep(ctx, spec); err != nil {
		t.Fatal(err)
	}

	// The coordinator, behind a real HTTP server.
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.jsonl")
	fp := dist.Fingerprint("coord-e2e")
	c, err := coord.New(coord.Config{
		RangeSize: 2,
		LeaseTTL:  500 * time.Millisecond,
		Dir:       filepath.Join(dir, "state"),
		Out:       out,
		Manifest:  filepath.Join(dir, "manifest.json"),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	watchCtx, cancelWatch := context.WithCancel(ctx)
	defer cancelWatch()
	go c.Watch(watchCtx)

	// The killed worker: leases a range and dies mid-run — no heartbeat,
	// no result, exactly what SIGKILL leaves behind. Its range must be
	// re-leased to the survivors after the TTL.
	killed := &coord.Client{Base: srv.URL, Worker: "killed"}
	if err := killed.Register(spec.Name, total, fp); err != nil {
		t.Fatal(err)
	}
	kres, err := killed.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if kres.Lease == nil {
		t.Fatalf("killed worker got no lease: %+v", kres)
	}

	// Two surviving workers running real simulations per leased range,
	// through the same Produce path as the CLIs' -coordinator mode.
	produce := func(ctx context.Context, lo, hi int) ([]byte, error) {
		indices := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			indices = append(indices, i)
		}
		var buf bytes.Buffer
		sink := sweep.NewJSONL(&buf)
		r := sweep.Runner[Options, Result]{
			Parallelism: 2,
			Run: func(_ context.Context, p sweep.Point[Options]) (Result, error) {
				return Run(p.Config)
			},
			Emit: sweepEmit(spec, sink),
		}
		if _, err := r.SweepIndices(ctx, spec, indices); err != nil {
			return nil, err
		}
		return buf.Bytes(), nil
	}
	var wg sync.WaitGroup
	outcomes := make([]string, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &coord.Worker{
				Client:  &coord.Client{Base: srv.URL, Worker: fmt.Sprintf("survivor-%d", i)},
				Produce: produce,
				Logf:    t.Logf,
			}
			outcomes[i], errs[i] = w.Run(ctx, spec.Name, total, fp)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("survivor %d: %v", i, err)
		}
		if outcomes[i] != coord.OutcomeSuccess {
			t.Fatalf("survivor %d outcome = %q", i, outcomes[i])
		}
	}

	merged, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, ref.Bytes()) {
		t.Errorf("coordinated merge differs from the single-process stream (%d vs %d bytes)",
			len(merged), ref.Len())
	}

	// The terminal manifest certifies full coverage.
	outcome, m, ferr := c.Outcome()
	if outcome != coord.OutcomeSuccess || ferr != nil {
		t.Fatalf("terminal outcome %q, err %v", outcome, ferr)
	}
	if m == nil || !m.Success() || m.Records != total {
		t.Fatalf("manifest: %+v", m)
	}
}
