package main

// Coordinated mode: instead of a fixed -shard slice, the process is a
// lease-pulling worker of a reunion-coordinator. Each leased index
// range is run through the same Runner as a local sweep and its record
// lines — exactly the bytes the single-process stream carries for those
// indices — are streamed back; the coordinator verifies and merges, so
// this process writes no results file of its own.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"time"

	"reunion"
	"reunion/internal/cliconf"
	"reunion/internal/coord"
	"reunion/internal/obs"
	"reunion/internal/sweep"
)

// workerName identifies this process in leases and coordinator logs.
func workerName(tool string) string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s-%s-%d", tool, host, os.Getpid())
}

// exitCode maps a coordinated run's terminal outcome to the process
// exit code shared with reunion-merge -manifest: 0 success, 3 partial,
// 1 failed.
func exitCode(outcome string) int {
	switch outcome {
	case coord.OutcomeSuccess:
		return 0
	case coord.OutcomePartial:
		return 3
	default:
		return 1
	}
}

func runCoordinated(url string, spec sweep.Spec[reunion.Options], fingerprint uint64,
	parallel int, quiet bool, sc obs.Scope, obsFlags *cliconf.ObsFlags) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	name := workerName("sweep")
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if quiet {
		logf = func(string, ...any) {}
	}

	w := &coord.Worker{
		Client: &coord.Client{Base: url, Worker: name},
		Produce: func(ctx context.Context, lo, hi int) ([]byte, error) {
			return produceSweepRange(ctx, spec, parallel, sc, lo, hi)
		},
		Obs:  sc,
		Logf: logf,
	}

	fmt.Fprintf(os.Stderr, "sweep: worker %s pulling leases from %s (%d runs total)\n",
		name, url, spec.Size())
	start := time.Now() //reunion:nondeterm-ok host wall-clock for the progress summary
	outcome, err := w.Run(ctx, spec.Name, spec.Size(), fingerprint)
	if werr := obsFlags.WriteFiles(sc); werr != nil {
		fmt.Fprintf(os.Stderr, "sweep: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: coordinated run: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "sweep: coordinated run terminal after %s: %s (merged results live with the coordinator)\n",
		time.Since(start).Round(time.Millisecond), outcome) //reunion:nondeterm-ok host wall-clock
	return exitCode(outcome)
}

// produceSweepRange runs matrix indices [lo, hi) and returns their
// JSONL record lines. The Runner emits in index order at any
// parallelism, so the buffer holds exactly the single-process stream's
// bytes for the range.
func produceSweepRange(ctx context.Context, spec sweep.Spec[reunion.Options],
	parallel int, sc obs.Scope, lo, hi int) ([]byte, error) {
	indices := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		indices = append(indices, i)
	}
	var buf bytes.Buffer
	sink := sweep.NewJSONL(&buf)
	runner := sweep.Runner[reunion.Options, reunion.Result]{
		Parallelism: parallel,
		Obs:         sc,
		Run: func(_ context.Context, p sweep.Point[reunion.Options]) (reunion.Result, error) {
			return reunion.Run(p.Config)
		},
		Emit: func(r sweep.Result[reunion.Options, reunion.Result]) error {
			if errors.Is(r.Err, sweep.ErrSkipped) {
				// A cancelled, never-executed run must not be uploaded as a
				// bogus error record; abort the range instead (the lease is
				// lost or the worker is shutting down).
				return r.Err
			}
			var metrics map[string]float64
			if r.Err == nil {
				metrics = r.Out.Metrics()
			}
			return sink.Write(sweep.NewRecord(spec.Name, r.Point.Index, r.Point.LabelMap(), metrics, r.Err))
		},
	}
	if _, err := runner.SweepIndices(ctx, spec, indices); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
