// Command reunion-sweep runs the paper's experiment matrix — or any
// filtered subset — in parallel on a worker pool and writes a
// machine-readable results file.
//
// The matrix is the cross product of every axis flag:
//
//	reunion-sweep -modes reunion,strict -parallel 4
//	reunion-sweep -workloads apache,ocean -latencies 0,10,40 -out lat.jsonl
//	reunion-sweep -modes reunion -phantoms global,shared,null -format csv -out table3.csv
//
// Results stream to the output file as JSON Lines (default) or CSV, one
// record per run, in matrix order: for a fixed seed the output is
// byte-identical at -parallel 1 and -parallel N, so results files are
// diffable and suitable for BENCH_*.json-style trajectory tracking. Live
// progress goes to stderr; pass -quiet to silence it. A summary with the
// matched-pair IPC aggregate is printed at the end.
//
// The matrix distributes across processes and machines: -shard i/n runs
// only the i-th of n deterministic contiguous slices, -journal writes
// the slice as a resumable shard journal (JSONL framed by a header and a
// checksummed footer), and -resume continues an interrupted journal from
// its last complete record. reunion-merge reassembles complete shard
// journals into a stream byte-identical to the single-process run:
//
//	reunion-sweep -shard 0/3 -journal shard-0.jsonl   # one per worker
//	reunion-merge -out sweep.jsonl shard-*.jsonl
//
// For dynamic dispatch — a fleet of identical workers pulling leases
// from a reunion-coordinator instead of fixed shard assignments — run
// workers with -coordinator:
//
//	reunion-coordinator -spec-cmd sweep ... &
//	reunion-sweep -coordinator http://host:8080 &   # any number of these
//
// Run with -list to enumerate workloads, and see EXPERIMENTS.md for the
// invocation reproducing each paper table and figure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"reunion"
	"reunion/internal/ckptstore"
	"reunion/internal/cliconf"
	"reunion/internal/dist"
	"reunion/internal/stats"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// warnOut receives axis-flag warnings (tests capture it).
var warnOut io.Writer = os.Stderr

func main() {
	modes := flag.String("modes", "non-redundant,strict,reunion", "execution models to sweep (csv)")
	workloads := flag.String("workloads", "all", "workloads to sweep (csv of names, or 'all')")
	latencies := flag.String("latencies", "10", "comparison latencies in cycles (csv; 0 = zero-cycle)")
	phantoms := flag.String("phantoms", "global", "phantom strengths (csv: global,shared,null)")
	tlbs := flag.String("tlbs", "hardware", "TLB disciplines (csv: hardware,software)")
	consistencies := flag.String("consistencies", "tso", "memory consistency models (csv: tso,sc)")
	intervals := flag.String("intervals", "1", "fingerprint comparison intervals (csv)")
	seeds := flag.String("seeds", "1", "workload seeds (csv of uint64)")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size")
	warm := flag.Int64("warm", 100_000, "warmup cycles per run")
	measure := flag.Int64("measure", 50_000, "measurement cycles per run")
	out := flag.String("out", "sweep.jsonl", "results file ('-' = stdout)")
	format := flag.String("format", "jsonl", "results format: jsonl | csv")
	kernelName := flag.String("kernel", "fastforward", "simulation kernel: fastforward | naive (results are bit-identical)")
	ckpt := cliconf.RegisterCkpt(flag.CommandLine)
	shardStr := flag.String("shard", "", "run only slice i/n of the matrix (e.g. 0/3; default: the whole matrix)")
	journal := flag.String("journal", "", "write the slice as a resumable shard journal (JSONL + checksummed footer; replaces -out, excludes -format csv)")
	resume := flag.Bool("resume", false, "resume an interrupted -journal from its last complete record")
	coordinator := flag.String("coordinator", "", "run as a lease-pulling worker of a reunion-coordinator at this base URL (excludes -shard/-journal/-resume/-out)")
	quiet := flag.Bool("quiet", false, "suppress per-run progress on stderr")
	obsFlags := cliconf.RegisterObs(flag.CommandLine).WithHeartbeat(flag.CommandLine)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		return
	}

	stopCPUProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "sweep: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "sweep: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		stopped := false
		stopCPUProfile = func() {
			if !stopped {
				stopped = true
				pprof.StopCPUProfile()
				f.Close()
			}
		}
		defer stopCPUProfile()
	}

	kern, err := parseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec, err := buildSpec(*modes, *workloads, *latencies, *phantoms, *tlbs,
		*consistencies, *intervals, *seeds, *warm, *measure, kern)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Telemetry is a pure observer: with or without these flags the
	// results stream and journal bytes are byte-identical (asserted in
	// tests and CI).
	sc := obsFlags.Scope()
	store, err := ckpt.Open()
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(2)
	}
	if store != nil {
		// Every point starts from a copy of Base, so one store-backed
		// cache serves the whole matrix: each cell fetches its own warm
		// checkpoint if a fleet-mate already paid for it, and uploads it
		// otherwise. Restores are bit-identical to local warmup, so the
		// results stream is unchanged.
		wc := reunion.NewWarmCache()
		wc.UseStore(ckptstore.Instrument(store, sc))
		wc.Observe(sc)
		spec.Base.Warm = wc
	}

	if *format != "jsonl" && *format != "csv" {
		fmt.Fprintf(os.Stderr, "unknown format %q (valid: jsonl, csv)\n", *format)
		os.Exit(2)
	}

	// Pin the journal to this exact run configuration, not just the
	// (constant) spec name and size: resuming or merging under different
	// flags must fail loudly instead of interleaving two experiments.
	// The kernel is deliberately excluded — its outputs are bit-identical
	// by contract, and CI byte-compares fastforward/naive journals. So is
	// the checkpoint store: it is a cache, not configuration (restores are
	// bit-identical to local warmup), and as a pointer it would render as
	// an address and ruin fingerprint determinism anyway.
	fpBase := spec.Base
	fpBase.Kernel = reunion.KernelFastForward
	fpBase.Warm = nil
	fingerprint := dist.Fingerprint(append(spec.FingerprintParts(),
		fmt.Sprintf("base:%+v", fpBase))...)

	if *coordinator != "" {
		os.Exit(runCoordinated(*coordinator, spec, fingerprint, *parallel, *quiet, sc, obsFlags))
	}

	shard, nshards, err := dist.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan, err := dist.NewPlan(spec.Name, spec.Size(), shard, nshards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan.Fingerprint = fingerprint

	if err := cliconf.CheckJournalFlags("sweep", *journal, *format, *resume, dist.FlagWasSet("out")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sink sweep.Sink
	var outFile *os.File
	var jnl *dist.Journal
	if *journal != "" {
		jnl, err = dist.OpenOrCreateObs(*journal, plan, *resume, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if jnl.Complete() {
			fmt.Fprintf(os.Stderr, "sweep: %s already complete (%d records, %d failed) — nothing to run\n",
				plan, jnl.Done(), jnl.Failed())
			jnl.Close()
			if jnl.Failed() > 0 {
				// The sealed slice contains failed runs: exit as the run
				// that produced them did.
				os.Exit(1)
			}
			return
		}
		sink = jnl
	} else {
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			outFile = f
			w = f
		}
		if *format == "csv" {
			sink = sweep.NewCSV(w)
		} else {
			sink = sweep.NewJSONL(w)
		}
	}

	indices := plan.Indices()
	if jnl != nil && jnl.Done() > 0 {
		fmt.Fprintf(os.Stderr, "sweep: resuming %s at record %d\n", plan, jnl.Done())
		indices = jnl.Remaining()
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	hbLabel := "sweep"
	if nshards > 1 {
		hbLabel = fmt.Sprintf("sweep shard %d/%d", shard, nshards)
	}
	hb := obsFlags.Heartbeat(hbLabel, int64(len(indices)))
	stopHeartbeat := hb.Start()

	var ipc stats.Online
	failures := 0
	start := time.Now() //reunion:nondeterm-ok host wall-clock for the progress summary
	runner := sweep.Runner[reunion.Options, reunion.Result]{
		Parallelism: *parallel,
		Obs:         sc,
		Run: func(_ context.Context, p sweep.Point[reunion.Options]) (reunion.Result, error) {
			return reunion.Run(p.Config)
		},
		Progress: func(done, total int, r sweep.Result[reunion.Options, reunion.Result]) {
			hb.Tick()
			if r.Err != nil {
				failures++
			} else {
				ipc.Add(r.Out.UserIPC)
			}
			if *quiet {
				return
			}
			status := "ok"
			if r.Err != nil {
				status = r.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %s: %s\n",
				len(strconv.Itoa(total)), done, total, r.Point.Name(), status)
		},
		Emit: func(r sweep.Result[reunion.Options, reunion.Result]) error {
			if jnl != nil && errors.Is(r.Err, sweep.ErrSkipped) {
				// A cancelled, never-executed run must not reach the
				// journal: it would be resumed past forever as a bogus
				// error record. Stop emission at the last executed run;
				// -resume recomputes from there.
				return r.Err
			}
			var metrics map[string]float64
			if r.Err == nil {
				metrics = r.Out.Metrics()
			}
			return sink.Write(sweep.NewRecord(spec.Name, r.Point.Index, r.Point.LabelMap(), metrics, r.Err))
		},
	}

	if nshards > 1 {
		fmt.Fprintf(os.Stderr, "sweep: %s: %d of %d runs (%d workers)\n", plan, len(indices), spec.Size(), *parallel)
	} else {
		fmt.Fprintf(os.Stderr, "sweep: %d runs (%d workers)\n", len(indices), *parallel)
	}
	if jnl != nil || nshards > 1 {
		_, err = runner.SweepIndices(ctx, spec, indices)
	} else {
		_, err = runner.Sweep(ctx, spec)
	}
	stopHeartbeat()
	if jnl != nil {
		// Seal the journal once every slice record is on disk (failed runs
		// journal deterministic error records, exactly as the single-process
		// file carries them; the exit code still reports them). An
		// interrupted or write-failed slice stays footerless — resumable.
		err = dist.SealOrClose(jnl, err)
	} else {
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
	}
	if outFile != nil {
		// A close error can carry a deferred write failure; it must fail
		// the sweep rather than vanish.
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	// Telemetry flushes even when the sweep failed — that is when the
	// trace is most wanted — but a flush error must not mask a run error.
	if werr := obsFlags.WriteFiles(sc); werr != nil {
		fmt.Fprintf(os.Stderr, "sweep: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sweep: %v\n", err)
		os.Exit(1)
	}
	if jnl != nil {
		// The exit code reflects the whole journaled slice: a failed run
		// journaled before a kill still fails the shard after -resume, as
		// it would have failed the uninterrupted run.
		failures = jnl.Failed()
	}
	fmt.Fprintf(os.Stderr, "sweep: %d runs in %s, user IPC %s, %d failed\n",
		len(indices), time.Since(start).Round(time.Millisecond), ipc.String(), failures) //reunion:nondeterm-ok host wall-clock
	if failures > 0 {
		stopCPUProfile()
		os.Exit(1)
	}
}

// parseKernel resolves the -kernel flag. Both kernels are bit-identical
// in results, which is what makes a per-shard fastforward-vs-naive byte
// comparison of journals a kernel-equivalence check (see CI).
func parseKernel(name string) (reunion.Kernel, error) { return cliconf.Kernel(name) }

// buildSpec assembles the matrix from the axis flags (validation and
// dedupe-warning rules live in cliconf, shared with the other CLIs).
// Axis order fixes the enumeration (and output) order: workload, mode,
// latency, phantom, tlb, consistency, interval, seed.
func buildSpec(modes, workloads, latencies, phantoms, tlbs, consistencies, intervals, seeds string, warm, measure int64, kern reunion.Kernel) (sweep.Spec[reunion.Options], error) {
	// No reunion.WarmCache here: every axis of this matrix shapes the
	// warmup itself, so no two cells could share a warm checkpoint —
	// caching would only pin warmed machines in memory. The caches live
	// where reuse is real: reunion-inject's per-cell trials and the
	// reunion-bench experiment campaigns.
	spec := sweep.Spec[reunion.Options]{
		Name: "paper-matrix",
		Base: reunion.Options{WarmCycles: warm, MeasureCycles: measure, Kernel: kern},
	}

	ps, err := cliconf.Workloads(warnOut, "sweep", workloads)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("workload", ps,
		func(p workload.Params) string { return p.Name },
		func(o *reunion.Options, p workload.Params) { o.Workload = p }))

	ms, err := cliconf.Modes(warnOut, "sweep", modes, true)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("mode", ms, reunion.Mode.String,
		func(o *reunion.Options, m reunion.Mode) { o.Mode = m }))

	lats, err := cliconf.Int64Axis(warnOut, "sweep", "latency", latencies)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("latency", lats,
		func(l int64) string { return strconv.FormatInt(l, 10) },
		func(o *reunion.Options, l int64) {
			if l == 0 {
				l = reunion.ZeroLatency
			}
			o.CompareLatency = l
		}))

	phs, err := cliconf.Phantoms(warnOut, "sweep", phantoms)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("phantom", phs, reunion.Phantom.String,
		func(o *reunion.Options, ph reunion.Phantom) { o.Phantom = ph }))

	ts, err := cliconf.TLBs(warnOut, "sweep", tlbs)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("tlb", ts, reunion.TLBMode.String,
		func(o *reunion.Options, m reunion.TLBMode) { o.TLB = m }))

	cs, err := cliconf.Consistencies(warnOut, "sweep", consistencies)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("consistency", cs, reunion.ConsistencyName,
		func(o *reunion.Options, m reunion.Consistency) { o.Consistency = m }))

	ivs, err := cliconf.Int64Axis(warnOut, "sweep", "interval", intervals)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("interval", ivs,
		func(iv int64) string { return strconv.FormatInt(iv, 10) },
		func(o *reunion.Options, iv int64) { o.FPInterval = int(iv) }))

	sds, err := cliconf.Seeds(warnOut, "sweep", seeds)
	if err != nil {
		return spec, err
	}
	spec.Axes = append(spec.Axes, sweep.NewAxis("seed", sds,
		func(s uint64) string { return strconv.FormatUint(s, 10) },
		func(o *reunion.Options, s uint64) { o.Seed = s }))

	if spec.Size() == 0 {
		return spec, fmt.Errorf("empty matrix: every axis needs at least one value")
	}
	return spec, nil
}

func splitCSV(s string) []string { return cliconf.SplitCSV(s) }
