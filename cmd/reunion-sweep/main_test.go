package main

import (
	"bytes"
	"strings"
	"testing"

	"reunion"
)

// The axis-flag parsers must reject malformed input and deduplicate
// repeated values (a duplicated seed or latency would silently run every
// matching cell twice and skew class averages).

func captureWarnings(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := warnOut
	warnOut = &buf
	t.Cleanup(func() { warnOut = old })
	return &buf
}

func TestBuildSpecDedupesAxisValues(t *testing.T) {
	warnings := captureWarnings(t)
	spec, err := buildSpec("reunion,reunion", "apache,apache,ocean", "10,10,20",
		"global,global", "hardware,hardware", "tso,tso", "1,1", "1,1,2", 100, 100, reunion.KernelFastForward)
	if err != nil {
		t.Fatal(err)
	}
	// workload {apache,ocean} × mode {reunion} × latency {10,20} ×
	// phantom {global} × tlb {hardware} × consistency {tso} ×
	// interval {1} × seed {1,2}
	if got, want := spec.Size(), 2*1*2*1*1*1*1*2; got != want {
		t.Errorf("matrix size %d, want %d", got, want)
	}
	for _, axis := range []string{"mode", "workload", "latency", "phantom", "tlb", "consistency", "interval", "seed"} {
		if !strings.Contains(warnings.String(), "duplicate "+axis) {
			t.Errorf("no duplicate warning for axis %s in %q", axis, warnings.String())
		}
	}
}

func TestBuildSpecNoWarningsWithoutDuplicates(t *testing.T) {
	warnings := captureWarnings(t)
	spec, err := buildSpec("reunion,strict", "apache", "0,10", "global", "hardware", "tso", "1", "1,2", 100, 100, reunion.KernelFastForward)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := spec.Size(), 1*2*2*1*1*1*1*2; got != want {
		t.Errorf("matrix size %d, want %d", got, want)
	}
	if warnings.Len() != 0 {
		t.Errorf("unexpected warnings: %q", warnings.String())
	}
}

func TestBuildSpecRejectsBadValues(t *testing.T) {
	cases := []struct {
		name                                                                    string
		modes, workloads, lats, phantoms, tlbs, consistencies, intervals, seeds string
	}{
		{"mode", "warp", "apache", "10", "global", "hardware", "tso", "1", "1"},
		{"workload", "reunion", "nope", "10", "global", "hardware", "tso", "1", "1"},
		{"latency", "reunion", "apache", "ten", "global", "hardware", "tso", "1", "1"},
		{"phantom", "reunion", "apache", "10", "ghost", "hardware", "tso", "1", "1"},
		{"tlb", "reunion", "apache", "10", "global", "firmware", "tso", "1", "1"},
		{"consistency", "reunion", "apache", "10", "global", "hardware", "weak", "1", "1"},
		{"interval", "reunion", "apache", "10", "global", "hardware", "tso", "one", "1"},
		{"seed", "reunion", "apache", "10", "global", "hardware", "tso", "1", "-1x"},
	}
	for _, c := range cases {
		if _, err := buildSpec(c.modes, c.workloads, c.lats, c.phantoms, c.tlbs,
			c.consistencies, c.intervals, c.seeds, 100, 100, reunion.KernelFastForward); err == nil {
			t.Errorf("%s: bad value accepted", c.name)
		}
	}
}

func TestSplitCSV(t *testing.T) {
	got := splitCSV(" a, ,b,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitCSV = %v", got)
	}
	if out := splitCSV(""); len(out) != 0 {
		t.Fatalf("splitCSV(\"\") = %v", out)
	}
}

// An unknown axis value must fail fast with the list of valid names —
// not silently run a partial matrix, and not leave the user guessing.
func TestBuildSpecErrorsListValidNames(t *testing.T) {
	_, err := buildSpec("warp", "apache", "10", "global", "hardware", "tso", "1", "1", 100, 100, reunion.KernelFastForward)
	if err == nil || !strings.Contains(err.Error(), "non-redundant, strict, reunion") {
		t.Errorf("mode error does not list valid names: %v", err)
	}
	_, err = buildSpec("reunion", "nope", "10", "global", "hardware", "tso", "1", "1", 100, 100, reunion.KernelFastForward)
	if err == nil || !strings.Contains(err.Error(), "apache") || !strings.Contains(err.Error(), "sparse") {
		t.Errorf("workload error does not list valid names: %v", err)
	}
	_, err = buildSpec("reunion", "apache", "10", "ghost", "hardware", "tso", "1", "1", 100, 100, reunion.KernelFastForward)
	if err == nil || !strings.Contains(err.Error(), "global, shared, null") {
		t.Errorf("phantom error does not list valid names: %v", err)
	}
}

func TestParseKernel(t *testing.T) {
	for in, want := range map[string]reunion.Kernel{
		"fastforward":  reunion.KernelFastForward,
		"fast-forward": reunion.KernelFastForward,
		"naive":        reunion.KernelNaive,
	} {
		got, err := parseKernel(in)
		if err != nil || got != want {
			t.Errorf("parseKernel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := parseKernel("warp"); err == nil || !strings.Contains(err.Error(), "fastforward, naive") {
		t.Errorf("parseKernel error does not list valid kernels: %v", err)
	}
}
