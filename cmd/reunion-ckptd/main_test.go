package main

import (
	"bytes"
	"encoding/binary"
	"hash/crc64"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reunion/internal/ckptstore"
	"reunion/internal/obs"
)

func newTestServer(t *testing.T) (*httptest.Server, *obs.Registry, string) {
	t.Helper()
	root := t.TempDir()
	disk, err := ckptstore.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv := httptest.NewServer(newHandler(disk, root, reg))
	t.Cleanup(srv.Close)
	return srv, reg, root
}

func seal(payload []byte) []byte {
	crc := crc64.Checksum(payload, crc64.MakeTable(crc64.ECMA))
	return binary.LittleEndian.AppendUint64(payload, crc)
}

func TestStoreRoundTripAndMetrics(t *testing.T) {
	srv, _, _ := newTestServer(t)
	blob := seal([]byte("checkpoint bytes"))
	url := srv.URL + "/ckpt/00000000deadbeef"

	// Miss first.
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET before PUT: %d, want 404", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, url, bytes.NewReader(blob))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT: %d", resp.StatusCode)
	}

	resp, err = http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !bytes.Equal(got, blob) {
		t.Fatalf("GET after PUT: %d, %d bytes", resp.StatusCode, len(got))
	}

	// /metrics must round-trip through the independent parser and
	// reflect the traffic just generated.
	resp, err = http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content-type: %q", ct)
	}
	fams, err := obs.ParsePrometheus(resp.Body)
	if err != nil {
		t.Fatalf("/metrics failed Prometheus parse: %v", err)
	}
	byName := map[string]obs.PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	reqs, ok := byName["http_requests_total"]
	if !ok {
		t.Fatal("/metrics missing http_requests_total")
	}
	var getOK, getMiss, put float64
	for _, s := range reqs.Samples {
		switch {
		case s.Labels["method"] == "GET" && s.Labels["code"] == "200":
			getOK = s.Value
		case s.Labels["method"] == "GET" && s.Labels["code"] == "404":
			getMiss = s.Value
		case s.Labels["method"] == "PUT":
			put = s.Value
		}
	}
	if getOK != 1 || getMiss != 1 || put != 1 {
		t.Fatalf("request counters: GET200=%v GET404=%v PUT=%v, want 1/1/1", getOK, getMiss, put)
	}
	if _, ok := byName["ckptstore_ops_total"]; !ok {
		t.Fatal("/metrics missing store-level ckptstore_ops_total")
	}
	if _, ok := byName["http_request_duration_us"]; !ok {
		t.Fatal("/metrics missing http_request_duration_us")
	}
}

func TestHealthz(t *testing.T) {
	srv, _, root := newTestServer(t)
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("/healthz: %d %q", resp.StatusCode, body)
	}

	// Deleting the root must flip the probe to 503.
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		os.RemoveAll(filepath.Join(root, e.Name()))
	}
	if err := os.Remove(root); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("/healthz with deleted root: %d, want 503", resp.StatusCode)
	}
}

func TestPprofEndpoints(t *testing.T) {
	srv, _, _ := newTestServer(t)
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: %d, want 200", path, resp.StatusCode)
		}
	}
	// goroutine profile via the index handler's name dispatch
	resp, err := http.Get(srv.URL + "/debug/pprof/goroutine?debug=1")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("goroutine profile: %d", resp.StatusCode)
	}
}

func TestStoreBytesUnperturbedByMiddleware(t *testing.T) {
	// The instrumented, middleware-wrapped daemon must store the exact
	// blob bytes a bare Disk would: write through the server, read from
	// a second bare Disk on the same root.
	srv, _, root := newTestServer(t)
	blob := seal([]byte("identical bytes"))
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/ckpt/0123456789abcdef", bytes.NewReader(blob))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	bare, err := ckptstore.NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bare.Get(0x0123456789abcdef)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("blob bytes differ between instrumented server path and bare disk")
	}
}
