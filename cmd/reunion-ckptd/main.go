// reunion-ckptd serves a content-addressed checkpoint store over HTTP,
// so the workers of a distributed sweep or fault campaign share warm
// state across machines: the first worker to warm a cell uploads its
// checkpoint, every later worker (or a restarted one) fetches and
// restores it instead of re-warming — bit-identical results, one warmup
// per cell fleet-wide.
//
//	reunion-ckptd -addr :9347 -root /var/tmp/reunion-ckpts
//
// Workers point at it with -ckpt-url http://host:9347 (reunion-sweep,
// reunion-inject).
//
// Besides the store endpoints (/ckpt/<key>), the daemon serves its own
// operational surface:
//
//	/metrics       Prometheus text exposition (request counts/latency/
//	               bytes by handler, method, and status; store op stats)
//	/healthz       liveness: 200 "ok" while the store root is writable
//	/debug/pprof/  the standard net/http/pprof profiling endpoints
//
// Metrics are always on — the daemon is a server, not a measured run, so
// the pure-observer budget of the engines does not apply here.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"

	"reunion/internal/ckptstore"
	"reunion/internal/obs"
)

func main() {
	addr := flag.String("addr", ":9347", "listen address")
	root := flag.String("root", "reunion-ckpts", "checkpoint storage directory")
	flag.Parse()

	disk, err := ckptstore.NewDisk(*root)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("reunion-ckptd: serving %s on %s", *root, *addr)
	log.Fatal(http.ListenAndServe(*addr, newHandler(disk, *root, obs.NewRegistry())))
}

// newHandler assembles the daemon's full mux: the instrumented store
// API plus /metrics, /healthz, and /debug/pprof. Split from main so the
// httptest-based tests drive exactly what the daemon serves. The tracer
// is deliberately absent: a daemon runs indefinitely and a span buffer
// would only ever grow or drop; the registry plus pprof cover a server's
// observability needs.
func newHandler(store ckptstore.Store, root string, reg *obs.Registry) http.Handler {
	mux := http.NewServeMux()
	api := ckptstore.Handler(ckptstore.Instrument(store, obs.Scope{Metrics: reg}))
	mux.Handle("/ckpt/", obs.Middleware("ckpt", reg, api))
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.Handle("/healthz", obs.HealthzHandler(func() error { return checkRoot(root) }))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// checkRoot is the health probe: the storage root must exist and be a
// writable directory — the two failure modes (deleted root, full or
// read-only filesystem) that turn a running daemon into a silent
// recompute-everything fallback for the whole fleet.
func checkRoot(root string) error {
	st, err := os.Stat(root)
	if err != nil {
		return err
	}
	if !st.IsDir() {
		return fmt.Errorf("%s is not a directory", root)
	}
	probe, err := os.CreateTemp(root, ".healthz-*")
	if err != nil {
		return fmt.Errorf("root not writable: %w", err)
	}
	name := probe.Name()
	probe.Close()
	return os.Remove(filepath.Clean(name))
}
