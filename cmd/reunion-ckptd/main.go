// reunion-ckptd serves a content-addressed checkpoint store over HTTP,
// so the workers of a distributed sweep or fault campaign share warm
// state across machines: the first worker to warm a cell uploads its
// checkpoint, every later worker (or a restarted one) fetches and
// restores it instead of re-warming — bit-identical results, one warmup
// per cell fleet-wide.
//
//	reunion-ckptd -addr :9347 -root /var/tmp/reunion-ckpts
//
// Workers point at it with -ckpt-url http://host:9347 (reunion-sweep,
// reunion-inject).
//
// Besides the store endpoints (/ckpt/<key>), the daemon serves the
// shared operational surface of internal/serve:
//
//	/metrics       Prometheus text exposition (request counts/latency/
//	               bytes by handler, method, and status; store op stats)
//	/healthz       liveness: 200 "ok" while the store root is writable
//	/debug/pprof/  the standard net/http/pprof profiling endpoints
//
// Metrics are always on — the daemon is a server, not a measured run, so
// the pure-observer budget of the engines does not apply here. The
// daemon drains in-flight requests and exits cleanly on SIGINT/SIGTERM.
package main

import (
	"flag"
	"log"
	"net/http"

	"reunion/internal/ckptstore"
	"reunion/internal/obs"
	"reunion/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9347", "listen address")
	root := flag.String("root", "reunion-ckpts", "checkpoint storage directory")
	flag.Parse()

	disk, err := ckptstore.NewDisk(*root)
	if err != nil {
		log.Fatal(err)
	}
	ctx, stop := serve.SignalContext()
	defer stop()
	log.Printf("reunion-ckptd: serving %s on %s", *root, *addr)
	if err := serve.ListenAndServe(ctx, *addr, newHandler(disk, *root, obs.NewRegistry()), log.Printf); err != nil {
		log.Fatal(err)
	}
}

// newHandler assembles the daemon's full mux on the serve scaffold: the
// instrumented store API plus the scaffold's /metrics, /healthz, and
// /debug/pprof. Split from main so the httptest-based tests drive
// exactly what the daemon serves.
func newHandler(store ckptstore.Store, root string, reg *obs.Registry) http.Handler {
	api := ckptstore.Handler(ckptstore.Instrument(store, obs.Scope{Metrics: reg}))
	return serve.NewMux(reg, serve.DirHealth(root),
		serve.Route{Pattern: "/ckpt/", Name: "ckpt", Handler: api})
}
