// reunion-ckptd serves a content-addressed checkpoint store over HTTP,
// so the workers of a distributed sweep or fault campaign share warm
// state across machines: the first worker to warm a cell uploads its
// checkpoint, every later worker (or a restarted one) fetches and
// restores it instead of re-warming — bit-identical results, one warmup
// per cell fleet-wide.
//
//	reunion-ckptd -addr :9347 -root /var/tmp/reunion-ckpts
//
// Workers point at it with -ckpt-url http://host:9347 (reunion-sweep,
// reunion-inject).
package main

import (
	"flag"
	"log"
	"net/http"

	"reunion/internal/ckptstore"
)

func main() {
	addr := flag.String("addr", ":9347", "listen address")
	root := flag.String("root", "reunion-ckpts", "checkpoint storage directory")
	flag.Parse()

	disk, err := ckptstore.NewDisk(*root)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("reunion-ckptd: serving %s on %s", *root, *addr)
	log.Fatal(http.ListenAndServe(*addr, ckptstore.Handler(disk)))
}
