// Command reunion-merge validates and reassembles the shard journals of
// a distributed reunion-sweep or reunion-inject run into one results
// stream byte-identical to the single-process run.
//
//	reunion-merge -out sweep.jsonl shard-0.jsonl shard-1.jsonl shard-2.jsonl
//	reunion-merge -out - shard-*.jsonl > merged.jsonl
//
// The journals may be given in any order but must form exactly one
// complete shard set: the same spec and matrix size, every shard present
// once, each sealed by its checksummed footer (an interrupted shard must
// be finished with -resume first). Every record is verified as it is
// copied — index sequence against the shard's slice, payload bytes
// against the footer CRC — so a merge that exits 0 has proven the output
// is the exact single-process stream, record by record. File output goes
// through a temporary file and a rename, so a failed merge never leaves
// a half-written results file. The merged stream's SHA-256 is printed to
// stderr for comparison against a reference run's digest.
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"reunion/internal/dist"
	"reunion/internal/obs"
)

func main() {
	out := flag.String("out", "merged.jsonl", "merged results file ('-' = stdout)")
	quiet := flag.Bool("quiet", false, "suppress the summary on stderr")
	traceOut := flag.String("trace-out", "", "write spans as Chrome trace-event JSON to this file at exit ('-' = stdout; open in Perfetto)")
	metricsOut := flag.String("metrics-out", "", "write metrics in Prometheus text format to this file at exit ('-' = stdout)")
	flag.Parse()

	paths := append([]string(nil), flag.Args()...)
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "merge: no shard journals given\nusage: reunion-merge -out merged.jsonl shard-0.jsonl shard-1.jsonl ...")
		os.Exit(2)
	}
	// Stable order for globbed inputs; Merge itself accepts any order.
	sort.Strings(paths)

	// Telemetry is a pure observer: the merged stream (and its digest) is
	// byte-identical with or without these flags.
	sc := obs.NewScope(*traceOut, *metricsOut)

	digest := sha256.New()
	var info *dist.MergeInfo
	var err error
	if *out == "-" {
		w := bufio.NewWriter(os.Stdout)
		info, err = dist.MergeObs(io.MultiWriter(w, digest), paths, sc)
		if err == nil {
			err = w.Flush()
		}
	} else {
		info, err = dist.MergeFileObs(*out, paths, digest, sc)
	}
	if werr := sc.WriteFiles(*traceOut, *metricsOut); werr != nil {
		fmt.Fprintf(os.Stderr, "merge: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "merge: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "merge: %s: %d records from %d shards, sha256 %x\n",
			info.Spec, info.Records, info.NShards, digest.Sum(nil))
	}
}
