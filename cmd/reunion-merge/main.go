// Command reunion-merge validates and reassembles the shard journals of
// a distributed reunion-sweep or reunion-inject run into one results
// stream byte-identical to the single-process run.
//
//	reunion-merge -out sweep.jsonl shard-0.jsonl shard-1.jsonl shard-2.jsonl
//	reunion-merge -out - shard-*.jsonl > merged.jsonl
//
// The journals may be given in any order but must form exactly one
// complete shard set: the same spec and matrix size, every shard present
// once, each sealed by its checksummed footer (an interrupted shard must
// be finished with -resume first). Every record is verified as it is
// copied — index sequence against the shard's slice, payload bytes
// against the footer CRC — so a merge that exits 0 has proven the output
// is the exact single-process stream, record by record. File output goes
// through a temporary file and a rename, so a failed merge never leaves
// a half-written results file. The merged stream's SHA-256 is printed to
// stderr for comparison against a reference run's digest.
//
// With -manifest the strict completeness requirement is relaxed to the
// partial-merge discipline: every journal that verifies is merged (any
// mix of shard and ranged journals from one run), and a machine-readable
// manifest accounting for every index — merged, missing, or failed and
// why — is written to the given file. The exit code distinguishes the
// three verdicts an operator acts on:
//
//	0  every index verified and merged (the manifest says "success")
//	3  a verified subset was merged (the manifest lists the holes)
//	1  nothing trustworthy: journals from different runs, overlapping
//	   verified slices, or an I/O failure — corrupt, not partial
package main

import (
	"bufio"
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"reunion/internal/cliconf"
	"reunion/internal/dist"
)

func main() {
	out := flag.String("out", "merged.jsonl", "merged results file ('-' = stdout)")
	manifest := flag.String("manifest", "", "partial mode: merge every journal that verifies and write the index-accounting manifest to this file (exit 0 complete, 3 partial, 1 corrupt)")
	quiet := flag.Bool("quiet", false, "suppress the summary on stderr")
	obsFlags := cliconf.RegisterObs(flag.CommandLine)
	flag.Parse()

	paths := append([]string(nil), flag.Args()...)
	if len(paths) == 0 {
		fmt.Fprintln(os.Stderr, "merge: no shard journals given\nusage: reunion-merge -out merged.jsonl shard-0.jsonl shard-1.jsonl ...")
		os.Exit(2)
	}
	// Stable order for globbed inputs; Merge itself accepts any order.
	sort.Strings(paths)

	// Telemetry is a pure observer: the merged stream (and its digest) is
	// byte-identical with or without these flags.
	sc := obsFlags.Scope()

	if *manifest != "" {
		os.Exit(mergePartial(*out, *manifest, paths, *quiet))
	}

	digest := sha256.New()
	var info *dist.MergeInfo
	var err error
	if *out == "-" {
		w := bufio.NewWriter(os.Stdout)
		info, err = dist.MergeObs(io.MultiWriter(w, digest), paths, sc)
		if err == nil {
			err = w.Flush()
		}
	} else {
		info, err = dist.MergeFileObs(*out, paths, digest, sc)
	}
	if werr := obsFlags.WriteFiles(sc); werr != nil {
		fmt.Fprintf(os.Stderr, "merge: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "merge: %v\n", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Fprintf(os.Stderr, "merge: %s: %d records from %d shards, sha256 %x\n",
			info.Spec, info.Records, info.NShards, digest.Sum(nil))
	}
}

// mergePartial is the -manifest mode: merge what verifies, account for
// the rest, and return the exit code (0 complete, 3 partial, 1 corrupt).
func mergePartial(out, manifestPath string, paths []string, quiet bool) int {
	var m *dist.Manifest
	var err error
	if out == "-" {
		w := bufio.NewWriter(os.Stdout)
		m, err = dist.MergePartial(w, paths)
		if err == nil {
			err = w.Flush()
		}
		if err == nil {
			err = m.WriteFile(manifestPath)
		}
	} else {
		m, err = dist.MergePartialFile(out, manifestPath, paths, nil)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "merge: %v\n", err)
		return 1
	}
	if !quiet {
		fmt.Fprintf(os.Stderr, "merge: %s: %s — %d of %d records merged, %d journals failed verification, manifest %s\n",
			m.Spec, m.Outcome, m.Records, m.Total, len(m.Failed), manifestPath)
		for _, f := range m.Failed {
			fmt.Fprintf(os.Stderr, "merge:   %s [%d,%d): %s\n", f.Path, f.Slic.Lo, f.Slic.Hi, f.Err)
		}
		for _, r := range m.Missing {
			fmt.Fprintf(os.Stderr, "merge:   missing [%d,%d)\n", r.Lo, r.Hi)
		}
	}
	if m.Success() {
		return 0
	}
	return 3
}
