// Command reunion-sim runs one simulation configuration and prints its
// measured statistics.
//
// Usage:
//
//	reunion-sim -workload apache -mode reunion -latency 10 -phantom global \
//	            -tlb hardware -consistency tso -warm 100000 -measure 50000
//
// Run with -list to enumerate workloads.
package main

import (
	"flag"
	"fmt"
	"os"

	"reunion"
	"reunion/internal/workload"
)

func main() {
	wl := flag.String("workload", "apache", "workload name (-list to enumerate)")
	mode := flag.String("mode", "reunion", "non-redundant | strict | reunion")
	latency := flag.Int64("latency", 10, "comparison latency in cycles")
	phantom := flag.String("phantom", "global", "phantom strength: global | shared | null")
	tlbMode := flag.String("tlb", "hardware", "TLB discipline: hardware | software")
	consistency := flag.String("consistency", "tso", "memory consistency: tso | sc")
	interval := flag.Int("interval", 1, "fingerprint comparison interval (instructions)")
	warm := flag.Int64("warm", 100_000, "warmup cycles")
	measure := flag.Int64("measure", 50_000, "measurement cycles")
	seed := flag.Uint64("seed", 1, "workload seed")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		return
	}

	p, ok := workload.ByName(*wl)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown workload %q (use -list)\n", *wl)
		os.Exit(2)
	}

	opts := reunion.Options{
		Workload:      p,
		Seed:          *seed,
		FPInterval:    *interval,
		WarmCycles:    *warm,
		MeasureCycles: *measure,
	}
	switch *mode {
	case "non-redundant":
		opts.Mode = reunion.ModeNonRedundant
	case "strict":
		opts.Mode = reunion.ModeStrict
	case "reunion":
		opts.Mode = reunion.ModeReunion
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}
	switch *phantom {
	case "global":
		opts.Phantom = reunion.PhantomGlobal
	case "shared":
		opts.Phantom = reunion.PhantomShared
	case "null":
		opts.Phantom = reunion.PhantomNull
	default:
		fmt.Fprintf(os.Stderr, "unknown phantom strength %q\n", *phantom)
		os.Exit(2)
	}
	if *tlbMode == "software" {
		opts.TLB = reunion.TLBSoftware
	}
	if *consistency == "sc" {
		opts.Consistency = reunion.SC
	}
	if *latency == 0 {
		opts.CompareLatency = reunion.ZeroLatency
	} else {
		opts.CompareLatency = *latency
	}

	res, err := reunion.Run(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload            %s\n", res.Workload)
	fmt.Printf("mode                %v\n", res.Mode)
	fmt.Printf("cycles measured     %d\n", res.Cycles)
	fmt.Printf("user instructions   %d\n", res.Committed)
	fmt.Printf("aggregate user IPC  %.3f\n", res.UserIPC)
	fmt.Printf("loads / stores      %d / %d\n", res.CommittedLoads, res.CommittedStores)
	fmt.Printf("serializing instrs  %d\n", res.Serializing)
	fmt.Printf("branch mispredicts  %d\n", res.Mispredicts)
	fmt.Printf("TLB misses          %d (%.0f /M)\n", res.TLBMisses, res.TLBMissPerM)
	fmt.Printf("L1D hit rate        %.1f%%\n",
		100*float64(res.L1DHits)/float64(max(int64(1), res.L1DHits+res.L1DMisses)))
	fmt.Printf("L2 hits / misses    %d / %d\n", res.L2Hits, res.L2Misses)
	fmt.Printf("memory accesses     %d\n", res.MemAccesses)
	fmt.Printf("avg RUU occupancy   %.1f entries (%.1f in check)\n",
		res.AvgROBOccupancy, res.AvgCheckOccupancy)
	fmt.Printf("serializing stalls  %d issue-slot cycles\n", res.SerIssueStalls)
	if res.Mode == reunion.ModeReunion {
		fmt.Printf("fingerprint compares %d\n", res.Compares)
		fmt.Printf("compare slack       vocal waited %d cycles, mute waited %d\n",
			res.CompareWaitVocal, res.CompareWaitMute)
		fmt.Printf("input incoherence   %d (%.1f /M)\n", res.IncoherenceEvents, res.IncoherencePerM)
		fmt.Printf("recoveries          %d (sync requests %d, phase-2 %d, failures %d)\n",
			res.Recoveries, res.SyncRequests, res.Phase2, res.Failures)
		fmt.Printf("phantom garbage     %d\n", res.PhantomGarbage)
	}
}
