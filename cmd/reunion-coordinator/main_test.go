package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reunion/internal/coord"
	"reunion/internal/obs"
)

// The daemon mux serves the worker protocol and the shared operational
// surface, and a campaign driven through it reaches a terminal outcome.
func TestHandlerServesProtocolAndOperationalSurface(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	out := filepath.Join(dir, "merged.jsonl")
	reg := obs.NewRegistry()
	c, err := coord.New(coord.Config{
		RangeSize: 4,
		LeaseTTL:  time.Minute,
		Dir:       state,
		Out:       out,
		Obs:       obs.Scope{Metrics: reg},
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(c, state, reg))
	defer srv.Close()

	cl := &coord.Client{Base: srv.URL, Worker: "w1"}
	if err := cl.Register("daemon-test", 4, 0xabc); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if res.Lease == nil {
		t.Fatalf("no lease: %+v", res)
	}
	var body bytes.Buffer
	for i := res.Lease.Lo; i < res.Lease.Hi; i++ {
		fmt.Fprintf(&body, "{\"index\":%d}\n", i)
	}
	if err := cl.Complete(res.Lease.ID, body.Bytes()); err != nil {
		t.Fatal(err)
	}
	st, err := cl.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Outcome != coord.OutcomeSuccess || st.Done != 1 {
		t.Fatalf("status: %+v", st)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatal(err)
	}

	// The operational endpoints of the serve scaffold are mounted too.
	for _, path := range []string{"/healthz", "/metrics"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("%s: %s", path, resp.Status)
		}
	}

	// The protocol routes are metered through the scaffold middleware.
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `handler="coord"`) {
		t.Fatal("coord route requests are not metered")
	}
	if !strings.Contains(string(b), "coord_ranges_done") {
		t.Fatal("coordinator state gauges are not exported")
	}
}
