// reunion-coordinator dispatches one experiment campaign across a fleet
// of lease-pulling workers. Start it with the merged-output destination,
// point any number of reunion-sweep or reunion-inject workers at it with
// -coordinator, and let them pull: each worker leases a small index
// range of the flattened run, streams the completed range's record lines
// back, and takes the next. A worker that dies mid-range simply stops
// heartbeating; its lease expires and the range goes to someone else.
// The merged output is byte-identical to the single-process run — every
// range payload is verified with the journal discipline before it
// counts, and the terminal merge re-verifies the set.
//
//	reunion-coordinator -addr :9344 -state coord-state -out sweep.jsonl &
//	reunion-sweep -coordinator http://host:9344 &   # any number, any machines
//
// The coordinator always reaches a terminal outcome: success (all ranges
// verified, strict merge), partial (verified subset merged, manifest
// accounting for the holes), or failed. Per-range retry budgets
// distinguish lease expiries (dead workers — retried generously) from
// reported failures and verification-rejected payloads (systematic —
// retried stingily). With -once the process exits at the terminal
// outcome with the merge exit-code convention (0 success, 3 partial,
// 1 failed), lingering one lease TTL first so polling workers learn the
// outcome instead of finding a dead socket.
//
// Besides the worker protocol under /v1/, the daemon serves the shared
// operational surface of internal/serve:
//
//	/metrics       Prometheus text exposition (lease/range state,
//	               request counts and latency by handler)
//	/healthz       liveness: 200 "ok" while the state dir is writable
//	/debug/pprof/  the standard net/http/pprof profiling endpoints
//
// Restarts are cheap: sealed range journals in -state are re-verified
// and credited at adoption, so a restarted coordinator resumes the
// campaign instead of re-running it.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"time"

	"reunion/internal/coord"
	"reunion/internal/obs"
	"reunion/internal/serve"
)

func main() {
	addr := flag.String("addr", ":9344", "listen address")
	state := flag.String("state", "coord-state", "directory for per-range journals (restart state)")
	out := flag.String("out", "coord.jsonl", "merged results file written at the terminal outcome")
	manifest := flag.String("manifest", "", "write the terminal manifest (success or partial) to this file")
	rangeSize := flag.Int("range-size", 16, "lease granularity in indices")
	leaseTTL := flag.Duration("lease-ttl", 10*time.Second, "lease lifetime without a heartbeat")
	timeoutBudget := flag.Int("timeout-budget", 3, "lease expiries a range tolerates before it is declared failed")
	failBudget := flag.Int("fail-budget", 2, "reported/verification failures a range tolerates before it is declared failed")
	stallTimeout := flag.Duration("stall-timeout", 0, "force a terminal outcome after this long without worker activity (default 10× lease-ttl)")
	once := flag.Bool("once", false, "exit at the terminal outcome: 0 success, 3 partial, 1 failed")
	flag.Parse()

	reg := obs.NewRegistry()
	c, err := coord.New(coord.Config{
		RangeSize:     *rangeSize,
		LeaseTTL:      *leaseTTL,
		TimeoutBudget: *timeoutBudget,
		FailBudget:    *failBudget,
		StallTimeout:  *stallTimeout,
		Dir:           *state,
		Out:           *out,
		Manifest:      *manifest,
		Obs:           obs.Scope{Metrics: reg},
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := serve.SignalContext()
	defer stop()
	srvCtx, srvCancel := context.WithCancel(ctx)
	defer srvCancel()
	go c.Watch(srvCtx)

	log.Printf("reunion-coordinator: state %s, merged output %s", *state, *out)
	errc := make(chan error, 1)
	go func() {
		errc <- serve.ListenAndServe(srvCtx, *addr, newHandler(c, *state, reg), log.Printf)
	}()

	if *once {
		select {
		case <-c.Done():
			// Linger one lease TTL so workers polling for leases get a
			// terminal answer instead of a connection error.
			outcome, _, _ := c.Outcome()
			log.Printf("reunion-coordinator: terminal outcome %q — draining for %s", outcome, *leaseTTL)
			select {
			case <-time.After(*leaseTTL):
			case <-ctx.Done():
			}
			srvCancel()
		case <-ctx.Done():
		}
	}
	if err := <-errc; err != nil {
		log.Fatal(err)
	}
	outcome, _, ferr := c.Outcome()
	if ferr != nil {
		log.Printf("reunion-coordinator: %v", ferr)
	}
	switch outcome {
	case coord.OutcomeSuccess, "":
		// "" = interrupted before terminal; the signal is the exit reason,
		// not a campaign verdict.
	case coord.OutcomePartial:
		os.Exit(3)
	default:
		os.Exit(1)
	}
}

// newHandler assembles the daemon's mux on the serve scaffold: the
// instrumented worker protocol plus the scaffold's /metrics, /healthz,
// and /debug/pprof. Split from main so tests drive exactly what the
// daemon serves.
func newHandler(c *coord.Coordinator, state string, reg *obs.Registry) http.Handler {
	return serve.NewMux(reg, serve.DirHealth(state),
		serve.Route{Pattern: "/v1/", Name: "coord", Handler: c.Handler()})
}
