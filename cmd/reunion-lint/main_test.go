package main

import (
	"bytes"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestLintBadFixture: the deliberately-bad module must fail with exit 1
// and name both planted violations.
func TestLintBadFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main([]string{"-C", "testdata/lintbad", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	for _, needle := range []string{"ungated", "snapshot path", "[obsgated]", "[snapshotcomplete]"} {
		if !strings.Contains(out.String(), needle) {
			t.Errorf("output missing %q:\n%s", needle, out.String())
		}
	}
}

// TestRepoIsClean: the acceptance criterion — the final tree passes the
// full suite with exit 0.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main([]string{"-C", "../.."}, &out, &errb)
	if code != 0 {
		t.Fatalf("reunion-lint on the repo: exit %d\nstdout: %s\nstderr: %s",
			code, out.String(), errb.String())
	}
}

// TestWirePin: -wirepin prints a 16-hex digest.
func TestWirePin(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main([]string{"-C", "../..", "-wirepin"}, &out, &errb)
	if code != 0 {
		t.Fatalf("-wirepin: exit %d, stderr: %s", code, errb.String())
	}
	digest := strings.TrimSpace(out.String())
	if len(digest) != 16 {
		t.Fatalf("-wirepin printed %q, want 16 hex chars", digest)
	}
}

// TestUsageErrors: unknown analyzers and unloadable directories are
// usage errors (exit 2), not findings.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-run", "nosuch", "./..."}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer: exit %d, want 2", code)
	}
	if code := Main([]string{"-C", "testdata/nosuchdir", "./..."}, &out, &errb); code != 2 {
		t.Errorf("bad directory: exit %d, want 2", code)
	}
}

// TestVersionHandshake: the -V=full protocol line go vet requires.
func TestVersionHandshake(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main([]string{"-V=full"}, &out, &errb); code != 0 {
		t.Fatalf("-V=full: exit %d", code)
	}
	if got := strings.TrimSpace(out.String()); got != "reunion-lint version v1" {
		t.Fatalf("-V=full printed %q", got)
	}
}

// TestGoVetVettool drives the real go vet protocol end to end: build
// the binary, point go vet at it inside the bad fixture module, and
// require the planted obsgated violation to fail the vet run.
func TestGoVetVettool(t *testing.T) {
	bin := filepath.Join(t.TempDir(), "reunion-lint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building reunion-lint: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = "testdata/lintbad"
	out, err := vet.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet -vettool passed on lintbad; output:\n%s", out)
	}
	if !strings.Contains(string(out), "ungated") {
		t.Fatalf("go vet output missing the obsgated finding:\n%s", out)
	}
}
