// Package snap carries a deliberately incomplete snapshot: the lost
// slice is neither captured nor annotated.
package snap

type Core struct {
	tick uint64
	buf  []int
	lost []int // deliberately uncaptured
}

type CoreState struct {
	core Core
}

func (c *Core) Snapshot() *CoreState {
	s := &CoreState{core: *c}
	s.core.buf = append([]int(nil), c.buf...)
	return s
}
