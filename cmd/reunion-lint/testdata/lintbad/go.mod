module lintbad

go 1.24
