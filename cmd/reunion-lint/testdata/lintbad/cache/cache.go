// Package cache carries a deliberately ungated trace call: the CI gate
// proof runs reunion-lint here and requires a nonzero exit.
package cache

import "lintbad/trace"

type L1 struct {
	tr   *trace.Ring
	tick uint64
}

func (l *L1) Lookup(addr uint64) {
	l.tick++
	l.tr.Addf(l.tick, 1, "lookup %x", addr) // deliberately ungated
}
