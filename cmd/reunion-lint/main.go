// Command reunion-lint runs the repository's invariant lint suite: the
// four analyzers in internal/lint (snapshotcomplete, determinism,
// obsgated, wireversion). It is a blocking CI step and a local
// pre-commit check:
//
//	reunion-lint ./...             # whole module, all analyzers
//	reunion-lint -run obsgated ./internal/cache/...
//	reunion-lint -wirepin          # print the wire-schema digest to re-pin
//	go vet -vettool=$(which reunion-lint) ./...
//
// Under go vet only the per-package analyzers run (obsgated,
// snapshotcomplete); determinism and wireversion need the whole
// program, which vet's per-package protocol does not provide — run the
// standalone form for those.
//
// Exit codes: 0 clean, 1 diagnostics reported, 2 usage or load error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"reunion/internal/lint"
	"reunion/internal/lint/analysis"
	"reunion/internal/lint/wireversion"
)

func main() { os.Exit(Main(os.Args[1:], os.Stdout, os.Stderr)) }

// Main is the testable entry point.
func Main(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("reunion-lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		vFlag     = fs.String("V", "", "version handshake for the go vet -vettool protocol")
		flagsDump = fs.Bool("flags", false, "describe flags as JSON for the go vet -vettool protocol")
		dir       = fs.String("C", ".", "change to `dir` before loading packages")
		runNames  = fs.String("run", "", "comma-separated `subset` of analyzers to run")
		wirePin   = fs.Bool("wirepin", false, "print the current wire-schema digest and exit")
		list      = fs.Bool("list", false, "list the analyzers and exit")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: reunion-lint [flags] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *vFlag != "" {
		// The go command requires "<name> version <non-devel>".
		fmt.Fprintln(stdout, "reunion-lint version v1")
		return 0
	}
	if *flagsDump {
		// go vet asks for the tool's extra flags; this suite exposes none
		// to vet (use the standalone form for -run/-wirepin).
		fmt.Fprintln(stdout, "[]")
		return 0
	}
	if *list {
		for _, a := range lint.Analyzers {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	// go vet mode: a single .cfg argument describing one package.
	if rest := fs.Args(); len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg") {
		return vetMode(rest[0], stderr)
	}

	selected, err := selectAnalyzers(*runNames, false)
	if err != nil {
		fmt.Fprintln(stderr, "reunion-lint:", err)
		return 2
	}
	prog, err := analysis.LoadModule(*dir, fs.Args()...)
	if err != nil {
		fmt.Fprintln(stderr, "reunion-lint:", err)
		return 2
	}
	if *wirePin {
		digest, ok := wireversion.Digest(prog)
		if !ok {
			fmt.Fprintln(stderr, "reunion-lint: no checkpoint payload root in these packages")
			return 2
		}
		fmt.Fprintln(stdout, digest)
		return 0
	}
	diags, err := analysis.Run(prog, selected)
	if err != nil {
		fmt.Fprintln(stderr, "reunion-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// vetMode runs the per-package analyzers over one vet unit.
func vetMode(cfgPath string, stderr io.Writer) int {
	unit, err := analysis.LoadUnit(cfgPath)
	if err != nil {
		fmt.Fprintln(stderr, "reunion-lint:", err)
		return 2
	}
	if unit.VetxOutput != "" {
		// The go command expects the facts file regardless of outcome.
		if err := os.WriteFile(unit.VetxOutput, []byte("reunion-lint has no facts\n"), 0o666); err != nil {
			fmt.Fprintln(stderr, "reunion-lint:", err)
			return 2
		}
	}
	if unit.VetxOnly || unit.Prog == nil {
		return 0
	}
	perPkg, _ := selectAnalyzers("", true)
	diags, err := analysis.Run(unit.Prog, perPkg)
	if err != nil {
		fmt.Fprintln(stderr, "reunion-lint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}

// selectAnalyzers resolves a -run subset (empty = all), optionally
// restricted to per-package analyzers for vet mode.
func selectAnalyzers(names string, perPackageOnly bool) ([]*analysis.Analyzer, error) {
	want := map[string]bool{}
	if names != "" {
		for _, n := range strings.Split(names, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	var out []*analysis.Analyzer
	for _, a := range lint.Analyzers {
		if perPackageOnly && a.WholeProgram {
			continue
		}
		if len(want) > 0 && !want[a.Name] {
			continue
		}
		delete(want, a.Name)
		out = append(out, a)
	}
	for n := range want {
		return nil, fmt.Errorf("unknown analyzer %q (use -list)", n)
	}
	return out, nil
}
