package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseKernelJSON = `{
  "schema": "reunion-bench/kernel-throughput/v1",
  "entries": [
    {"workload": "apache", "mode": "reunion", "kernel": "naive", "kinstr_per_sec": 300.0},
    {"workload": "apache", "mode": "reunion", "kernel": "fastforward", "kinstr_per_sec": 500.0},
    {"workload": "ocean", "mode": "reunion", "kernel": "fastforward", "kinstr_per_sec": 600.0}
  ]
}`

func TestCompareIdentical(t *testing.T) {
	results, geomean, err := compareTrajectories([]byte(baseKernelJSON), []byte(baseKernelJSON), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	for _, r := range results {
		if r.Regression {
			t.Errorf("%s: identical trajectories flagged as regression", r.Name)
		}
		if r.Ratio != 1.0 {
			t.Errorf("%s: ratio %v, want 1.0", r.Name, r.Ratio)
		}
	}
	if geomean != 1.0 {
		t.Errorf("geomean %v, want 1.0", geomean)
	}
}

// TestCompareDoctoredRegression is the CI gate's own gate: a synthetically
// doctored trajectory with one entry >10% slower must fail the comparison.
func TestCompareDoctoredRegression(t *testing.T) {
	doctored := strings.Replace(baseKernelJSON, `"kinstr_per_sec": 500.0`, `"kinstr_per_sec": 430.0`, 1) // -14%
	if doctored == baseKernelJSON {
		t.Fatal("doctoring failed")
	}
	results, _, err := compareTrajectories([]byte(baseKernelJSON), []byte(doctored), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var flagged int
	for _, r := range results {
		if r.Regression {
			flagged++
			if !strings.Contains(r.Name, "apache/reunion/fastforward") {
				t.Errorf("wrong entry flagged: %s", r.Name)
			}
			if math.Abs(r.Ratio-0.86) > 0.001 {
				t.Errorf("ratio %v, want 0.86", r.Ratio)
			}
		}
	}
	if flagged != 1 {
		t.Fatalf("%d entries flagged, want exactly 1", flagged)
	}
}

func TestCompareWithinThreshold(t *testing.T) {
	wobble := strings.Replace(baseKernelJSON, `"kinstr_per_sec": 500.0`, `"kinstr_per_sec": 460.0`, 1) // -8%
	results, geomean, err := compareTrajectories([]byte(baseKernelJSON), []byte(wobble), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if r.Regression {
			t.Errorf("%s: -8%% flagged at a 10%% threshold", r.Name)
		}
	}
	if geomean >= 1.0 {
		t.Errorf("geomean %v should reflect the slowdown", geomean)
	}
}

func TestCompareMissingEntryIsRegression(t *testing.T) {
	shrunk := `{
  "schema": "reunion-bench/kernel-throughput/v1",
  "entries": [
    {"workload": "apache", "mode": "reunion", "kernel": "naive", "kinstr_per_sec": 300.0}
  ]
}`
	results, _, err := compareTrajectories([]byte(baseKernelJSON), []byte(shrunk), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var missing int
	for _, r := range results {
		if math.IsNaN(r.New) {
			missing++
			if !r.Regression {
				t.Errorf("%s: coverage loss not flagged as regression", r.Name)
			}
		}
	}
	if missing != 2 {
		t.Fatalf("%d missing entries, want 2", missing)
	}
}

func TestCompareSchemaMismatch(t *testing.T) {
	other := `{"schema": "reunion-bench/ckptstore-fleet/v1", "local_seconds": 1, "store_seconds": 1}`
	if _, _, err := compareTrajectories([]byte(baseKernelJSON), []byte(other), 0.10); err == nil {
		t.Fatal("schema mismatch not rejected")
	}
	if _, _, err := compareTrajectories([]byte(`{"schema": "bogus/v9"}`), []byte(baseKernelJSON), 0.10); err == nil {
		t.Fatal("unknown schema not rejected")
	}
}

func TestCompareSnapshotSchema(t *testing.T) {
	old := `{"schema": "reunion-bench/snapshot-reuse/v1",
		"entries": [{"workload": "apache", "mode": "reunion", "speedup": 3.0}]}`
	slower := `{"schema": "reunion-bench/snapshot-reuse/v1",
		"entries": [{"workload": "apache", "mode": "reunion", "speedup": 2.0}]}`
	results, _, err := compareTrajectories([]byte(old), []byte(slower), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || !results[0].Regression {
		t.Fatalf("speedup 3.0 -> 2.0 must regress: %+v", results)
	}
}

func TestCompareCkptstoreSchema(t *testing.T) {
	old := `{"schema": "reunion-bench/ckptstore-fleet/v1", "local_seconds": 4.0, "store_seconds": 6.0}`
	slower := `{"schema": "reunion-bench/ckptstore-fleet/v1", "local_seconds": 4.0, "store_seconds": 7.5}`
	results, _, err := compareTrajectories([]byte(old), []byte(slower), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	var flagged []string
	for _, r := range results {
		if r.Regression {
			flagged = append(flagged, r.Name)
		}
	}
	if len(flagged) != 1 || flagged[0] != "fleet store_seconds" {
		t.Fatalf("flagged %v, want [fleet store_seconds]", flagged)
	}
}

// TestRunCompareExitCodes drives the command-level wrapper end to end
// against files on disk, the way CI invokes it.
func TestRunCompareExitCodes(t *testing.T) {
	dir := t.TempDir()
	oldPath := filepath.Join(dir, "old.json")
	newPath := filepath.Join(dir, "new.json")
	if err := os.WriteFile(oldPath, []byte(baseKernelJSON), 0o644); err != nil {
		t.Fatal(err)
	}

	doctored := strings.Replace(baseKernelJSON, `"kinstr_per_sec": 600.0`, `"kinstr_per_sec": 100.0`, 1)
	if err := os.WriteFile(newPath, []byte(doctored), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := runCompare(oldPath, newPath, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Errorf("doctored regression: exit %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("output lacks REGRESSION marker:\n%s", out.String())
	}

	if err := os.WriteFile(newPath, []byte(baseKernelJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	code, err = runCompare(oldPath, newPath, 0.10, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Errorf("identical trajectories: exit %d, want 0\n%s", code, out.String())
	}

	if code, _ := runCompare(filepath.Join(dir, "absent.json"), newPath, 0.10, &out); code != 2 {
		t.Errorf("unreadable old file: exit %d, want 2", code)
	}
}
