package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// Trajectory comparison: `reunion-bench -compare old.json new.json` diffs
// two benchmark trajectory files of the same schema, printing a per-entry
// delta table and the geomean improvement ratio, and exits non-zero when
// any entry regresses by more than -threshold (fractional, default 0.10).
// CI runs this against the committed BENCH_*.json baselines so a
// performance regression fails the build the same way a correctness
// regression does; see DESIGN.md "Performance" for how to read the output
// and the baseline-update procedure.

// cmpMetric is one comparable scalar extracted from a trajectory file.
type cmpMetric struct {
	Name         string
	Value        float64
	HigherBetter bool
}

// extractMetrics pulls the comparable scalars out of a trajectory file,
// keyed by the schema string the bench writers stamp into every report.
func extractMetrics(data []byte) (schema string, ms []cmpMetric, err error) {
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return "", nil, fmt.Errorf("not a trajectory file: %w", err)
	}
	switch head.Schema {
	case "reunion-bench/kernel-throughput/v1":
		var rep throughputReport
		if err := json.Unmarshal(data, &rep); err != nil {
			return head.Schema, nil, err
		}
		for _, e := range rep.Entries {
			ms = append(ms, cmpMetric{
				Name:         e.Workload + "/" + e.Mode + "/" + e.Kernel + " kinstr/s",
				Value:        e.KInstrPerSec,
				HigherBetter: true,
			})
		}
	case "reunion-bench/snapshot-reuse/v1":
		var rep struct {
			Entries []struct {
				Workload string  `json:"workload"`
				Mode     string  `json:"mode"`
				Speedup  float64 `json:"speedup"`
			} `json:"entries"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return head.Schema, nil, err
		}
		for _, e := range rep.Entries {
			ms = append(ms, cmpMetric{
				Name:         e.Workload + "/" + e.Mode + " reuse-speedup",
				Value:        e.Speedup,
				HigherBetter: true,
			})
		}
	case "reunion-bench/ckptstore-fleet/v1":
		var rep struct {
			LocalSeconds float64 `json:"local_seconds"`
			StoreSeconds float64 `json:"store_seconds"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return head.Schema, nil, err
		}
		ms = append(ms,
			cmpMetric{Name: "fleet local_seconds", Value: rep.LocalSeconds, HigherBetter: false},
			cmpMetric{Name: "fleet store_seconds", Value: rep.StoreSeconds, HigherBetter: false})
	case "":
		return "", nil, fmt.Errorf("no \"schema\" field")
	default:
		return head.Schema, nil, fmt.Errorf("unknown trajectory schema %q", head.Schema)
	}
	return head.Schema, ms, nil
}

// compareResult is one matched old/new metric pair.
type compareResult struct {
	Name     string
	Old, New float64
	// Ratio is the improvement factor (>1 is better regardless of metric
	// direction: new/old for higher-is-better, old/new for lower-is-better).
	Ratio      float64
	Regression bool
}

// compareTrajectories matches metrics by name and flags any entry whose
// improvement ratio falls below 1-threshold as a regression.
func compareTrajectories(oldData, newData []byte, threshold float64) (results []compareResult, geomean float64, err error) {
	oldSchema, oldMs, err := extractMetrics(oldData)
	if err != nil {
		return nil, 0, fmt.Errorf("old: %w", err)
	}
	newSchema, newMs, err := extractMetrics(newData)
	if err != nil {
		return nil, 0, fmt.Errorf("new: %w", err)
	}
	if oldSchema != newSchema {
		return nil, 0, fmt.Errorf("schema mismatch: old %q vs new %q", oldSchema, newSchema)
	}
	oldBy := make(map[string]cmpMetric, len(oldMs))
	for _, m := range oldMs {
		oldBy[m.Name] = m
	}
	logSum, n := 0.0, 0
	for _, m := range newMs {
		o, ok := oldBy[m.Name]
		if !ok {
			continue // new coverage has no baseline yet
		}
		delete(oldBy, m.Name)
		r := compareResult{Name: m.Name, Old: o.Value, New: m.Value}
		switch {
		case o.Value <= 0 || m.Value <= 0:
			r.Ratio = math.NaN() // degenerate baseline; report, never gate
		case m.HigherBetter:
			r.Ratio = m.Value / o.Value
		default:
			r.Ratio = o.Value / m.Value
		}
		if !math.IsNaN(r.Ratio) {
			r.Regression = r.Ratio < 1-threshold
			logSum += math.Log(r.Ratio)
			n++
		}
		results = append(results, r)
	}
	// A metric present in the baseline but missing from the new run is a
	// coverage loss, reported as a regression (ratio 0) so it cannot pass
	// silently.
	for name := range oldBy {
		results = append(results, compareResult{
			Name: name, Old: oldBy[name].Value, New: math.NaN(),
			Ratio: 0, Regression: true,
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	if len(results) == 0 {
		return nil, 0, fmt.Errorf("no comparable metrics (schema %s)", oldSchema)
	}
	if n > 0 {
		geomean = math.Exp(logSum / float64(n))
	} else {
		geomean = math.NaN()
	}
	return results, geomean, nil
}

// runCompare loads both files, prints the delta table to w, and returns
// the process exit code: 0 when no entry regresses past the threshold,
// 1 otherwise.
func runCompare(oldPath, newPath string, threshold float64, w io.Writer) (int, error) {
	oldData, err := os.ReadFile(oldPath)
	if err != nil {
		return 2, err
	}
	newData, err := os.ReadFile(newPath)
	if err != nil {
		return 2, err
	}
	results, geomean, err := compareTrajectories(oldData, newData, threshold)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(w, "Trajectory comparison: %s -> %s (threshold %.0f%%)\n",
		oldPath, newPath, threshold*100)
	nameW := 4
	for _, r := range results {
		if len(r.Name) > nameW {
			nameW = len(r.Name)
		}
	}
	fmt.Fprintf(w, "  %-*s %14s %14s %9s\n", nameW, "entry", "old", "new", "delta")
	regressions := 0
	for _, r := range results {
		switch {
		case math.IsNaN(r.New):
			fmt.Fprintf(w, "  %-*s %14.1f %14s %9s  MISSING\n", nameW, r.Name, r.Old, "-", "-")
		case math.IsNaN(r.Ratio):
			fmt.Fprintf(w, "  %-*s %14.1f %14.1f %9s  (non-positive baseline; not gated)\n",
				nameW, r.Name, r.Old, r.New, "-")
		default:
			flag := ""
			if r.Regression {
				flag = "  REGRESSION"
			}
			fmt.Fprintf(w, "  %-*s %14.1f %14.1f %+8.1f%%%s\n",
				nameW, r.Name, r.Old, r.New, (r.Ratio-1)*100, flag)
		}
		if r.Regression {
			regressions++
		}
	}
	if math.IsNaN(geomean) {
		fmt.Fprintf(w, "  geomean: n/a\n")
	} else {
		fmt.Fprintf(w, "  geomean: %+.1f%% (improvement ratio %.3fx)\n", (geomean-1)*100, geomean)
	}
	if regressions > 0 {
		fmt.Fprintf(w, "  FAIL: %d %s past the %.0f%% threshold\n",
			regressions, plural(regressions, "regression"), threshold*100)
		return 1, nil
	}
	fmt.Fprintf(w, "  OK: no entry regresses past the %.0f%% threshold\n", threshold*100)
	return 0, nil
}

func plural(n int, s string) string {
	if n == 1 {
		return s
	}
	return s + "s"
}
