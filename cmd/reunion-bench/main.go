// Command reunion-bench regenerates every table and figure of the paper's
// evaluation section (plus the §4.3 fingerprint-interval ablation and the
// §5.5 sequential-consistency result).
//
// Usage:
//
//	reunion-bench [-experiment all|config|workloads|fig5|fig6a|fig6b|table3|fig7a|fig7b|sc|interval|rob|topology|throughput|snapshot|ckptstore] [-full] [-bench-out BENCH_kernel.json] [-snapshot-out BENCH_snapshot.json] [-ckptstore-out BENCH_ckptstore.json]
//	reunion-bench -compare [-threshold 0.10] OLD.json NEW.json
//
// -full uses the paper-scale sampling methodology (3 matched seeds,
// 100k/50k-cycle windows, 400k-cycle event windows); the default quick
// campaign finishes in a few minutes.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"reunion"
	"reunion/internal/cliconf"
	"reunion/internal/obs"
	"reunion/internal/workload"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment to run")
	full := flag.Bool("full", false, "paper-scale campaign (slower)")
	benchOut := flag.String("bench-out", "BENCH_kernel.json",
		"throughput trajectory file written by -experiment throughput")
	snapOut := flag.String("snapshot-out", "BENCH_snapshot.json",
		"warm-reuse trajectory file written by -experiment snapshot")
	ckptOut := flag.String("ckptstore-out", "BENCH_ckptstore.json",
		"shared-store fleet trajectory file written by -experiment ckptstore")
	obsFlags := cliconf.RegisterObs(flag.CommandLine).WithHeartbeat(flag.CommandLine)
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit (go tool pprof)")
	compare := flag.Bool("compare", false,
		"compare two trajectory files: reunion-bench -compare OLD.json NEW.json (exits 1 on regression)")
	threshold := flag.Float64("threshold", 0.10,
		"with -compare, the fractional regression that fails the comparison")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: reunion-bench -compare [-threshold 0.10] OLD.json NEW.json")
			os.Exit(2)
		}
		code, err := runCompare(flag.Arg(0), flag.Arg(1), *threshold, os.Stdout)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: compare: %v\n", err)
		}
		os.Exit(code)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "bench: cpuprofile: %v\n", err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "bench: memprofile: %v\n", err)
			}
		}()
	}

	cfg := reunion.QuickExp(os.Stdout)
	if *full {
		cfg = reunion.FullExp(os.Stdout)
	}
	// Telemetry is a pure observer: experiment tables and trajectory files
	// are byte-identical with or without these flags.
	sc := obsFlags.Scope()
	cfg.Observe(sc)

	hb := obsFlags.Heartbeat("bench", 0)
	stopHeartbeat := hb.Start()

	exitErr := func(name string, err error) {
		stopHeartbeat()
		pprof.StopCPUProfile() // flush a partial profile before exiting (no-op if not started)
		if werr := obsFlags.WriteFiles(sc); werr != nil {
			fmt.Fprintf(os.Stderr, "bench: telemetry: %v\n", werr)
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		os.Exit(1)
	}

	run := func(name string, fn func() error) {
		if *exp != "all" && *exp != name {
			return
		}
		sp := sc.Trace.StartSpan("bench", name)
		start := time.Now() //reunion:nondeterm-ok host wall-clock for bench reporting
		if err := fn(); err != nil {
			sp.End(obs.Arg{Key: "err", Val: err.Error()})
			exitErr(name, err)
		}
		sp.End()
		hb.Tick()
		//reunion:nondeterm-ok host wall-clock for bench reporting
		fmt.Printf("(%s finished in %v)\n\n", name, time.Since(start).Round(time.Millisecond))
	}

	run("config", func() error { printConfig(); return nil })
	run("workloads", func() error { printWorkloads(); return nil })
	run("fig5", func() error { _, err := cfg.Figure5(); return err })
	run("fig6a", func() error { _, err := cfg.Figure6(reunion.ModeStrict); return err })
	run("fig6b", func() error { _, err := cfg.Figure6(reunion.ModeReunion); return err })
	run("table3", func() error { _, err := cfg.Table3(); return err })
	run("fig7a", func() error { _, err := cfg.Figure7a(); return err })
	run("fig7b", func() error { _, err := cfg.Figure7b(); return err })
	run("sc", func() error { _, err := cfg.SCExperiment(); return err })
	run("interval", func() error { _, err := cfg.FPIntervalAblation(); return err })
	run("rob", func() error { _, err := cfg.ROBSweep(); return err })
	run("topology", func() error { _, err := cfg.TopologyAblation(); return err })
	run("throughput", func() error { return runThroughput(*full, *benchOut) })
	run("snapshot", func() error { return runSnapshot(*full, *snapOut) })
	run("ckptstore", func() error { return runCkptStore(*full, *ckptOut) })

	stopHeartbeat()
	if err := obsFlags.WriteFiles(sc); err != nil {
		fmt.Fprintf(os.Stderr, "bench: telemetry: %v\n", err)
		pprof.StopCPUProfile()
		os.Exit(1)
	}
}

func printConfig() {
	c := reunion.DefaultConfig()
	fmt.Println("Table 1: simulated baseline CMP parameters")
	fmt.Printf("  logical processors   %d (+%d mute cores under Reunion)\n",
		c.LogicalProcessors, c.LogicalProcessors)
	fmt.Printf("  pipeline             %d-wide dispatch/retire, %d-entry RUU, %d-entry store buffer\n",
		c.Core.DispatchWidth, c.Core.ROBSize, c.Core.SBSize)
	fmt.Printf("  L1 I/D               %d KB, %d-way, %d-cycle load-to-use, %d MSHRs, %d rd / %d wr ports\n",
		c.L1Bytes>>10, c.L1Ways, c.Core.LoadToUse, c.L1MSHRs, c.Core.L1LoadPorts, c.Core.L1StorePorts)
	fmt.Printf("  shared L2            %d MB, %d banks, %d-way, %d-cycle hit\n",
		c.L2.CapacityBytes>>20, c.L2.Banks, c.L2.Ways, c.L2.HitLatency)
	fmt.Printf("  memory               %d-cycle access, %d banks\n", c.L2.MemLatency, c.L2.MemBanks)
	fmt.Printf("  ITLB/DTLB            %d / %d entries, %d-way, 8K pages\n",
		c.ITLBEntries, c.DTLBEntries, c.ITLBWays)
	fmt.Printf("  comparison latency   %d cycles (default)\n", c.CompareLatency)
	fmt.Println()
}

func printWorkloads() {
	fmt.Println("Table 2: application suite (synthetic profiles; see DESIGN.md)")
	fmt.Printf("  %-12s %-10s %10s %10s %8s %8s %8s\n",
		"workload", "class", "private", "scan", "locks", "crit", "traps")
	for _, p := range workload.Suite() {
		fmt.Printf("  %-12s %-10s %9dK %9dK %8d 1/%-6d 1/%-6d\n",
			p.Name, p.Class, p.PrivateBytes>>10, p.ScanBytes>>10,
			p.Locks, p.CritEvery, p.TrapEvery)
	}
	fmt.Println()
}
