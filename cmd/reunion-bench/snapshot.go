package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"reunion"
	"reunion/internal/fault"
	"reunion/internal/workload"
)

// Checkpointed-warm-state benchmark: host time of the fault-campaign
// trial path with per-trial re-warming from cycle 0 versus snapshot-keyed
// warm reuse (one warmup per cell, one Restore per trial). Every trial's
// Result is compared across the two paths — the speedup only counts if
// classification stays bit-identical. The results go to stdout as a table
// and to a BENCH_snapshot.json trajectory file, alongside the kernel
// throughput baseline in BENCH_kernel.json.

type snapshotEntry struct {
	Workload     string  `json:"workload"`
	Mode         string  `json:"mode"`
	Trials       int     `json:"trials"`
	RewarmSecs   float64 `json:"rewarm_seconds"`
	ReuseSecs    float64 `json:"reuse_seconds"`
	Speedup      float64 `json:"speedup"`
	BitIdentical bool    `json:"bit_identical"`
}

type snapshotReport struct {
	Schema       string          `json:"schema"`
	Full         bool            `json:"full"`
	WarmCycles   int64           `json:"warm_cycles"`
	CommitTarget int64           `json:"commit_target"`
	Entries      []snapshotEntry `json:"entries"`
	TotalSpeedup float64         `json:"total_speedup"` // summed re-warm / summed reuse host time
}

func runSnapshot(full bool, outPath string) error {
	warm, target, trials := int64(40_000), int64(800), 12
	if full {
		warm, trials = 100_000, 24
	}
	cells := []struct {
		p    workload.Params
		mode reunion.Mode
	}{
		{workload.Apache(), reunion.ModeReunion},
		{workload.OracleOLTP(), reunion.ModeReunion},
		{workload.Ocean(), reunion.ModeNonRedundant},
	}

	rep := snapshotReport{
		Schema:       "reunion-bench/snapshot-reuse/v1",
		Full:         full,
		WarmCycles:   warm,
		CommitTarget: target,
	}
	fmt.Println("Fault-campaign trial path: per-trial re-warm vs checkpointed warm reuse")
	fmt.Printf("  %-12s %-14s %7s %10s %10s %9s %10s\n",
		"workload", "mode", "trials", "rewarm(s)", "reuse(s)", "speedup", "identical")

	var sumRewarm, sumReuse float64
	for _, cell := range cells {
		base := reunion.Options{
			Mode:         cell.mode,
			Workload:     cell.p,
			Seed:         3,
			WarmCycles:   warm,
			CommitTarget: target,
		}
		cores := base.CoresUnderTest()
		trialOpts := func(i int) reunion.Options {
			o := base
			if i > 0 { // trial 0 is the cell's fault-free golden run
				o.Inject = &fault.Injection{
					Core:  (i - 1) % cores,
					Cycle: int64(100 + 37*i),
					Bit:   uint(i * 7 % 64),
				}
			}
			return o
		}

		runAll := func(warmCache *reunion.WarmCache) ([]reunion.Result, float64, error) {
			results := make([]reunion.Result, trials)
			start := time.Now() //reunion:nondeterm-ok host wall-clock for bench reporting
			for i := 0; i < trials; i++ {
				o := trialOpts(i)
				o.Warm = warmCache
				r, err := reunion.Run(o)
				if err != nil {
					return nil, 0, fmt.Errorf("%s/%v trial %d: %w", cell.p.Name, cell.mode, i, err)
				}
				results[i] = r
			}
			//reunion:nondeterm-ok host wall-clock for bench reporting
			return results, time.Since(start).Seconds(), nil
		}

		rewarmRes, rewarmSecs, err := runAll(nil)
		if err != nil {
			return err
		}
		reuseRes, reuseSecs, err := runAll(reunion.NewWarmCache())
		if err != nil {
			return err
		}

		identical := reflect.DeepEqual(rewarmRes, reuseRes)
		if !identical {
			return fmt.Errorf("%s/%v: warm reuse diverged from re-warm baseline", cell.p.Name, cell.mode)
		}
		e := snapshotEntry{
			Workload: cell.p.Name, Mode: cell.mode.String(), Trials: trials,
			RewarmSecs: rewarmSecs, ReuseSecs: reuseSecs,
			Speedup: rewarmSecs / reuseSecs, BitIdentical: identical,
		}
		rep.Entries = append(rep.Entries, e)
		sumRewarm += rewarmSecs
		sumReuse += reuseSecs
		fmt.Printf("  %-12s %-14s %7d %10.3f %10.3f %8.2fx %10v\n",
			e.Workload, e.Mode, e.Trials, e.RewarmSecs, e.ReuseSecs, e.Speedup, e.BitIdentical)
	}
	rep.TotalSpeedup = sumRewarm / sumReuse
	fmt.Printf("  total: %.3fs re-warm vs %.3fs reuse — %.2fx\n", sumRewarm, sumReuse, rep.TotalSpeedup)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	return nil
}
