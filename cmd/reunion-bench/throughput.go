package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"reunion"
	"reunion/internal/workload"
)

// Kernel-throughput benchmark: simulated cycles and committed user
// instructions per host-second, per paper workload and execution model,
// under both the naive per-cycle kernel and the quiescence-aware
// fast-forward kernel. The results go to stdout as a table and to a
// BENCH_kernel.json trajectory file so successive PRs can track
// simulator performance (the repo keeps a committed snapshot as the
// baseline; CI uploads a fresh one per run).

type throughputEntry struct {
	Workload      string  `json:"workload"`
	Mode          string  `json:"mode"`
	Kernel        string  `json:"kernel"`
	SimCycles     int64   `json:"sim_cycles"`
	Committed     int64   `json:"committed"`
	SkippedCycles int64   `json:"skipped_cycles"`
	HostSeconds   float64 `json:"host_seconds"`
	KCyclesPerSec float64 `json:"kcycles_per_sec"`
	KInstrPerSec  float64 `json:"kinstr_per_sec"`
}

type throughputReport struct {
	Schema    string             `json:"schema"`
	Full      bool               `json:"full"`
	SimCycles int64              `json:"sim_cycles"`
	Entries   []throughputEntry  `json:"entries"`
	Speedups  map[string]float64 `json:"speedups"` // workload/mode -> naive/fastforward wall ratio
}

func runThroughput(full bool, outPath string) error {
	warm, cycles := int64(20_000), int64(200_000)
	if full {
		cycles = 500_000
	}
	workloads := []workload.Params{
		workload.Apache(), workload.OracleOLTP(), workload.DSSQ1(), workload.Ocean(),
	}
	modes := []reunion.Mode{reunion.ModeNonRedundant, reunion.ModeReunion}
	kernels := []reunion.Kernel{reunion.KernelNaive, reunion.KernelFastForward}

	rep := throughputReport{
		Schema:    "reunion-bench/kernel-throughput/v1",
		Full:      full,
		SimCycles: cycles,
		Speedups:  map[string]float64{},
	}
	fmt.Println("Simulator throughput: naive vs fast-forward kernel")
	fmt.Printf("  %-12s %-14s %-12s %12s %12s %12s %10s\n",
		"workload", "mode", "kernel", "kcycles/s", "kinstr/s", "skipped", "speedup")
	for _, p := range workloads {
		for _, mode := range modes {
			var wall [2]float64
			for ki, kern := range kernels {
				w := p.Build(3, 4)
				sys := reunion.NewSystem(reunion.DefaultConfig(), mode, w, 3)
				sys.Kernel = kern
				sys.Prefill()
				sys.Run(warm)
				sys.ResetStats()    // also zeroes the scheduler's skip/jump counters
				start := time.Now() //reunion:nondeterm-ok host wall-clock for bench reporting
				sys.Run(cycles)
				host := time.Since(start).Seconds() //reunion:nondeterm-ok host wall-clock
				wall[ki] = host
				var committed int64
				for _, c := range sys.VocalCores() {
					committed += c.Stats.Committed
				}
				e := throughputEntry{
					Workload:      p.Name,
					Mode:          mode.String(),
					Kernel:        kern.String(),
					SimCycles:     cycles,
					Committed:     committed,
					SkippedCycles: sys.Sched.SkippedCycles,
					HostSeconds:   host,
					KCyclesPerSec: float64(cycles) / host / 1e3,
					KInstrPerSec:  float64(committed) / host / 1e3,
				}
				rep.Entries = append(rep.Entries, e)
				speed := ""
				if kern == reunion.KernelFastForward && wall[1] > 0 {
					ratio := wall[0] / wall[1]
					rep.Speedups[p.Name+"/"+mode.String()] = ratio
					speed = fmt.Sprintf("%.2fx", ratio)
				}
				fmt.Printf("  %-12s %-14s %-12s %12.0f %12.0f %12d %10s\n",
					p.Name, mode, kern, e.KCyclesPerSec, e.KInstrPerSec, e.SkippedCycles, speed)
			}
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	return nil
}
