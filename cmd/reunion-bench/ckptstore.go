package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"time"

	"reunion"
	"reunion/internal/ckptstore"
	"reunion/internal/fault"
	"reunion/internal/workload"
)

// Persistent checkpoint-store benchmark: a sharded fault campaign where
// every shard (a worker process stand-in with its own WarmCache) runs
// trials over the same cells. Without a shared store each shard pays for
// every cell's warmup itself; with one, the fleet pays one warmup per
// cell total — the first shard uploads, the rest restore from the
// fetched blob. Trial results must stay bit-identical between the two
// fleets; the warmup counts and host times go to BENCH_ckptstore.json.

type ckptReport struct {
	Schema         string  `json:"schema"`
	Full           bool    `json:"full"`
	Shards         int     `json:"shards"`
	Cells          int     `json:"cells"`
	TrialsPerCell  int     `json:"trials_per_cell"` // per shard
	WarmCycles     int64   `json:"warm_cycles"`
	CommitTarget   int64   `json:"commit_target"`
	LocalWarmups   int64   `json:"local_warmups"` // fleet total, no store (= shards × cells)
	StoreWarmups   int64   `json:"store_warmups"` // fleet total, shared store (= cells)
	StoreHits      int64   `json:"store_hits"`    // (= (shards-1) × cells)
	LocalSecs      float64 `json:"local_seconds"`
	StoreSecs      float64 `json:"store_seconds"`
	WarmupsSkipped int64   `json:"warmups_skipped"`
	BitIdentical   bool    `json:"bit_identical"`
}

func runCkptStore(full bool, outPath string) error {
	const shards = 3
	warm, target, trials := int64(40_000), int64(800), 4
	if full {
		warm, trials = 100_000, 8
	}
	cells := []struct {
		p    workload.Params
		mode reunion.Mode
	}{
		{workload.Apache(), reunion.ModeReunion},
		{workload.OracleOLTP(), reunion.ModeReunion},
		{workload.Ocean(), reunion.ModeNonRedundant},
	}

	baseOpts := func(c int) reunion.Options {
		return reunion.Options{
			Mode:         cells[c].mode,
			Workload:     cells[c].p,
			Seed:         3,
			WarmCycles:   warm,
			CommitTarget: target,
		}
	}

	// runFleet runs the 3-shard campaign sequentially (each shard is a
	// fresh worker: its own WarmCache, optionally sharing store) and
	// returns every trial result in fleet order plus warmup/hit totals.
	runFleet := func(store ckptstore.Store) ([]reunion.Result, int64, int64, float64, error) {
		var results []reunion.Result
		var warmups, hits int64
		start := time.Now() //reunion:nondeterm-ok host wall-clock for bench reporting
		for s := 0; s < shards; s++ {
			wc := reunion.NewWarmCache()
			if store != nil {
				wc.UseStore(store)
			}
			for c := range cells {
				cores := baseOpts(c).CoresUnderTest()
				for i := 0; i < trials; i++ {
					o := baseOpts(c)
					o.Warm = wc
					if t := s*trials + i; t > 0 { // fleet trial 0 is the golden run
						o.Inject = &fault.Injection{
							Core:  (t - 1) % cores,
							Cycle: int64(100 + 37*t),
							Bit:   uint(t * 7 % 64),
						}
					}
					r, err := reunion.Run(o)
					if err != nil {
						return nil, 0, 0, 0, fmt.Errorf("shard %d %s/%v trial %d: %w",
							s, cells[c].p.Name, cells[c].mode, i, err)
					}
					results = append(results, r)
				}
			}
			warmups += wc.Warmups()
			hits += wc.StoreHits()
		}
		//reunion:nondeterm-ok host wall-clock for bench reporting
		return results, warmups, hits, time.Since(start).Seconds(), nil
	}

	fmt.Println("Sharded fault campaign: per-shard local warmup vs shared checkpoint store")

	localRes, localWarm, _, localSecs, err := runFleet(nil)
	if err != nil {
		return err
	}

	root, err := os.MkdirTemp("", "reunion-ckpts-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(root)
	disk, err := ckptstore.NewDisk(root)
	if err != nil {
		return err
	}
	storeRes, storeWarm, hits, storeSecs, err := runFleet(disk)
	if err != nil {
		return err
	}

	identical := reflect.DeepEqual(localRes, storeRes)
	if !identical {
		return fmt.Errorf("store-backed fleet diverged from locally-warming fleet")
	}
	if want := int64(len(cells)); storeWarm != want {
		return fmt.Errorf("store-backed fleet warmed %d times, want one per cell (%d)", storeWarm, want)
	}

	rep := ckptReport{
		Schema:        "reunion-bench/ckptstore-fleet/v1",
		Full:          full,
		Shards:        shards,
		Cells:         len(cells),
		TrialsPerCell: trials,
		WarmCycles:    warm, CommitTarget: target,
		LocalWarmups: localWarm, StoreWarmups: storeWarm, StoreHits: hits,
		LocalSecs: localSecs, StoreSecs: storeSecs,
		WarmupsSkipped: localWarm - storeWarm,
		BitIdentical:   identical,
	}
	fmt.Printf("  %d shards × %d cells × %d trials\n", shards, len(cells), trials)
	fmt.Printf("  no store:     %3d warmups  %8.3fs\n", localWarm, localSecs)
	fmt.Printf("  shared store: %3d warmups  %8.3fs  (%d store hits, results bit-identical)\n",
		storeWarm, storeSecs, hits)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("  wrote %s\n", outPath)
	return nil
}
