package main

import (
	"bytes"
	"strings"
	"testing"
)

// The campaign flag parsers must reject malformed input and deduplicate
// repeated axis values (e.g. -seeds 1,1 would run every cell's trials
// twice and skew the coverage averages).

func captureWarnings(t *testing.T) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	old := warnOut
	warnOut = &buf
	t.Cleanup(func() { warnOut = old })
	return &buf
}

func TestBuildSpecDedupesAxisValues(t *testing.T) {
	warnings := captureWarnings(t)
	spec, err := buildSpec("reunion,reunion", "apache,apache,ocean", "global,global",
		"1,1,2", "0-63", "", 1000, 500, 60000, 40, 0xfa017)
	if err != nil {
		t.Fatal(err)
	}
	// mode {reunion} × phantom {global} × seed {1,2} × workload {apache,ocean}
	if got, want := spec.Matrix.Size(), 1*1*2*2; got != want {
		t.Errorf("matrix size %d, want %d", got, want)
	}
	if got, want := spec.Trials, 40/4; got != want {
		t.Errorf("trials per cell %d, want %d", got, want)
	}
	for _, axis := range []string{"mode", "phantom", "seed", "workload"} {
		if !strings.Contains(warnings.String(), "duplicate "+axis) {
			t.Errorf("no duplicate warning for axis %s in %q", axis, warnings.String())
		}
	}
}

func TestBuildSpecRejectsBadValues(t *testing.T) {
	cases := []struct {
		name                                            string
		modes, workloads, phantoms, seeds, bits, window string
	}{
		{"mode", "warp", "apache", "global", "1", "0-63", ""},
		{"strict mode", "strict", "apache", "global", "1", "0-63", ""},
		{"workload", "reunion", "nope", "global", "1", "0-63", ""},
		{"phantom", "reunion", "apache", "ghost", "1", "0-63", ""},
		{"seed", "reunion", "apache", "global", "x", "0-63", ""},
		{"bits", "reunion", "apache", "global", "1", "63-0", ""},
		{"window", "reunion", "apache", "global", "1", "0-63", "50-10"},
	}
	for _, c := range cases {
		if _, err := buildSpec(c.modes, c.workloads, c.phantoms, c.seeds, c.bits,
			c.window, 1000, 500, 60000, 40, 1); err == nil {
			t.Errorf("%s: bad value accepted", c.name)
		}
	}
}

func TestParseRange(t *testing.T) {
	lo, hi, err := parseRange("3-9", 0, 63)
	if err != nil || lo != 3 || hi != 9 {
		t.Fatalf("parseRange(3-9) = %d,%d,%v", lo, hi, err)
	}
	lo, hi, err = parseRange("5", 0, 63)
	if err != nil || lo != 5 || hi != 5 {
		t.Fatalf("parseRange(5) = %d,%d,%v", lo, hi, err)
	}
	lo, hi, err = parseRange("", 2, 7)
	if err != nil || lo != 2 || hi != 7 {
		t.Fatalf("parseRange(\"\") = %d,%d,%v", lo, hi, err)
	}
	if _, _, err := parseRange("9-3", 0, 63); err == nil {
		t.Fatal("empty range accepted")
	}
}

// An unknown axis value must fail fast with the list of valid names —
// not silently run a partial campaign matrix.
func TestBuildSpecErrorsListValidNames(t *testing.T) {
	_, err := buildSpec("warp", "apache", "global", "1", "0-63", "", 100, 100, 1000, 10, 1)
	if err == nil || !strings.Contains(err.Error(), "reunion, non-redundant") {
		t.Errorf("mode error does not list valid names: %v", err)
	}
	_, err = buildSpec("reunion", "nope", "global", "1", "0-63", "", 100, 100, 1000, 10, 1)
	if err == nil || !strings.Contains(err.Error(), "apache") || !strings.Contains(err.Error(), "sparse") {
		t.Errorf("workload error does not list valid names: %v", err)
	}
	_, err = buildSpec("reunion", "apache", "ghost", "1", "0-63", "", 100, 100, 1000, 10, 1)
	if err == nil || !strings.Contains(err.Error(), "global, shared, null") {
		t.Errorf("phantom error does not list valid names: %v", err)
	}
}
