package main

// Coordinated mode: the process is a lease-pulling worker of a
// reunion-coordinator. Each leased range of the flattened cells×trials
// space runs through the same campaign Engine as a local shard and its
// trial record lines are streamed back for the coordinator to verify
// and merge. One warm-checkpoint cache is shared across every lease
// this worker runs — the whole point of leasing small ranges is that a
// worker keeps its warmed cells hot from one lease to the next.

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"os/signal"
	"time"

	"reunion"
	"reunion/internal/campaign"
	"reunion/internal/ckptstore"
	"reunion/internal/cliconf"
	"reunion/internal/coord"
	"reunion/internal/obs"
	"reunion/internal/sweep"
)

// workerName identifies this process in leases and coordinator logs.
func workerName(tool string) string {
	host, err := os.Hostname()
	if err != nil {
		host = "unknown"
	}
	return fmt.Sprintf("%s-%s-%d", tool, host, os.Getpid())
}

// exitCode maps a coordinated run's terminal outcome to the process
// exit code shared with reunion-merge -manifest: 0 success, 3 partial,
// 1 failed.
func exitCode(outcome string) int {
	switch outcome {
	case coord.OutcomeSuccess:
		return 0
	case coord.OutcomePartial:
		return 3
	default:
		return 1
	}
}

func runCoordinated(url string, spec campaign.Spec[reunion.Options], fingerprint uint64,
	parallel, traceDump int, quiet bool, sc obs.Scope,
	ckpt *cliconf.CkptFlags, obsFlags *cliconf.ObsFlags) int {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	warmCache := reunion.NewWarmCache()
	warmCache.Observe(sc)
	store, err := ckpt.Open()
	if err != nil {
		fmt.Fprintf(os.Stderr, "inject: %v\n", err)
		return 2
	}
	if store != nil {
		warmCache.UseStore(ckptstore.Instrument(store, sc))
	}
	runTrial := reunion.TrialRunnerTraced(spec.Model, warmCache, traceDump)

	name := workerName("inject")
	logf := func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
	if quiet {
		logf = func(string, ...any) {}
	}

	total := spec.Matrix.Size() * spec.Trials
	w := &coord.Worker{
		Client: &coord.Client{Base: url, Worker: name},
		Produce: func(ctx context.Context, lo, hi int) ([]byte, error) {
			return produceInjectRange(ctx, spec, runTrial, parallel, sc, lo, hi)
		},
		Obs:  sc,
		Logf: logf,
	}

	fmt.Fprintf(os.Stderr, "inject: worker %s pulling leases from %s (%d trials total, %d per cell × %d cells)\n",
		name, url, total, spec.Trials, spec.Matrix.Size())
	start := time.Now() //reunion:nondeterm-ok host wall-clock for the progress summary
	outcome, err := w.Run(ctx, spec.Name, total, fingerprint)
	if werr := obsFlags.WriteFiles(sc); werr != nil {
		fmt.Fprintf(os.Stderr, "inject: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inject: coordinated run: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "inject: coordinated run terminal after %s: %s (merged results and coverage statistics live with the coordinator's output file)\n",
		time.Since(start).Round(time.Millisecond), outcome) //reunion:nondeterm-ok host wall-clock
	return exitCode(outcome)
}

// produceInjectRange runs trial indices [lo, hi) and returns their JSONL
// record lines. The Engine emits in index order at any parallelism, so
// the buffer holds exactly the single-process stream's bytes for the
// range. Trial failures journal deterministic DUE records rather than
// failing the range — exactly as the single-process stream carries them.
func produceInjectRange(ctx context.Context, spec campaign.Spec[reunion.Options],
	runTrial func(ctx context.Context, cell sweep.Point[reunion.Options], t campaign.Trial) campaign.Observation,
	parallel int, sc obs.Scope, lo, hi int) ([]byte, error) {
	indices := make([]int, 0, hi-lo)
	for i := lo; i < hi; i++ {
		indices = append(indices, i)
	}
	var buf bytes.Buffer
	sink := sweep.NewJSONL(&buf)
	eng := campaign.Engine[reunion.Options]{
		Spec:        spec,
		RunTrial:    runTrial,
		Parallelism: parallel,
		Sink:        sink,
		Indices:     indices,
		Obs:         sc,
	}
	if _, err := eng.Run(ctx); err != nil {
		return nil, err
	}
	if err := sink.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
