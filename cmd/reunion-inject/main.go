// Command reunion-inject runs a Monte-Carlo fault-injection campaign:
// single-bit transient flips in the unprotected datapath, one per trial,
// each classified against a fault-free golden run of the same seed as
// masked, detected (with detection latency), SDC (silent data
// corruption), or DUE (detected-unrecoverable or lost to the trial
// deadline).
//
//	reunion-inject -trials 200 -mode reunion
//	reunion-inject -trials 500 -mode reunion,non-redundant -workloads apache,ocean
//	reunion-inject -trials 100 -phantoms global,null -out coverage.jsonl
//
// The campaign matrix is mode × phantom × seed × workload; -trials is the
// total trial budget, split evenly across cells. The fault stream —
// which bit, which cycle, which core — is drawn per (workload, seed,
// trial) and deliberately excludes the mode and phantom axes, so cells
// differing only in execution model face identical fault streams: the
// Reunion/non-redundant comparison is controlled, not anecdotal.
//
// Trial records stream to -out as JSON Lines (or CSV), one per trial in
// matrix order — byte-identical at any -parallel value. The coverage
// summary table (outcome counts, detection coverage with 95% Wilson
// intervals, latency quantiles) prints to stdout at the end; live
// progress goes to stderr (-quiet silences it).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"time"

	"reunion"
	"reunion/internal/campaign"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// warnOut receives axis-flag warnings (tests capture it).
var warnOut io.Writer = os.Stderr

// dedupe warns about and drops duplicate axis values (sweep.Dedupe).
func dedupe[V comparable](axis string, vals []V, format func(V) string) []V {
	return sweep.Dedupe(warnOut, "inject", axis, vals, format)
}

func main() {
	trials := flag.Int("trials", 200, "total trial budget, split evenly across cells (min 1 per cell)")
	modes := flag.String("mode", "reunion,non-redundant", "execution models (csv: reunion,strict,non-redundant)")
	workloads := flag.String("workloads", "all", "workloads (csv of names, or 'all')")
	phantoms := flag.String("phantoms", "global", "phantom strengths (csv: global,shared,null)")
	seeds := flag.String("seeds", "1", "workload seeds (csv of uint64)")
	bits := flag.String("bits", "0-63", "inclusive flip-bit range lo-hi")
	window := flag.String("window", "", "injection cycle window lo-hi, measured from measurement start (default 0-target)")
	warm := flag.Int64("warm", 10_000, "warmup cycles per run")
	target := flag.Int64("target", 2_000, "committed instructions per logical processor per trial (classification boundary)")
	deadline := flag.Int64("deadline", 150_000, "trial deadline in cycles (past it a trial is a terminal DUE)")
	campSeed := flag.Uint64("campaign-seed", 0xfa017, "seed for the Monte-Carlo fault draws")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size")
	out := flag.String("out", "inject.jsonl", "per-trial results file ('-' = stdout, '' = none)")
	format := flag.String("format", "jsonl", "results format: jsonl | csv")
	quiet := flag.Bool("quiet", false, "suppress per-trial progress on stderr")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		return
	}

	spec, err := buildSpec(*modes, *workloads, *phantoms, *seeds, *bits, *window,
		*warm, *target, *deadline, *trials, *campSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	var sink sweep.Sink
	var outFile *os.File
	switch {
	case *out == "":
	case *format == "jsonl" || *format == "csv":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			outFile = f
			w = f
		}
		if *format == "csv" {
			sink = sweep.NewCSV(w)
		} else {
			sink = sweep.NewJSONL(w)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (jsonl | csv)\n", *format)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	total := spec.Matrix.Size() * spec.Trials
	fmt.Fprintf(os.Stderr, "inject: %d trials (%d per cell × %d cells, %d workers)\n",
		total, spec.Trials, spec.Matrix.Size(), *parallel)

	start := time.Now()
	eng := campaign.Engine[reunion.Options]{
		Spec:        spec,
		RunTrial:    reunion.TrialRunner(spec.Model),
		Parallelism: *parallel,
		Sink:        sink,
	}
	if !*quiet {
		eng.Progress = func(done, total int, cell sweep.Point[reunion.Options], t campaign.Trial, o campaign.Observation, out campaign.Outcome) {
			status := out.String()
			if o.Err != nil {
				status = o.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %s,trial=%d bit=%d cycle=%d: %s\n",
				len(strconv.Itoa(total)), done, total, cell.Name(), t.Index, t.Bit, t.Cycle, status)
		}
	}
	rep, err := eng.Run(ctx)
	if sink != nil {
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
	}
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inject: %v\n", err)
		os.Exit(1)
	}

	rep.WriteTable(os.Stdout)
	fmt.Fprintf(os.Stderr, "inject: %d trials in %s\n",
		rep.Total.Trials(), time.Since(start).Round(time.Millisecond))
	if rep.Total.Count(campaign.DUE) > 0 {
		fmt.Fprintf(os.Stderr, "inject: %d DUE trials (deadline/unrecoverable) — inspect the results file\n",
			rep.Total.Count(campaign.DUE))
	}
}

// buildSpec assembles the campaign from the flags. Axis order fixes the
// enumeration (and results-file) order: mode, phantom, seed, workload,
// trial.
func buildSpec(modes, workloads, phantoms, seeds, bits, window string,
	warm, target, deadline int64, totalTrials int, campSeed uint64) (campaign.Spec[reunion.Options], error) {
	spec := campaign.Spec[reunion.Options]{
		Name: "inject",
		Seed: campSeed,
		// Cells differing only in execution model or phantom strength face
		// the same fault stream.
		StreamExclude: []string{"mode", "phantom"},
	}

	bitLo, bitHi, err := parseRange(bits, 0, 63)
	if err != nil {
		return spec, fmt.Errorf("bits: %w", err)
	}
	if window == "" {
		window = fmt.Sprintf("0-%d", target)
	}
	winLo, winHi, err := parseRange(window, 0, target)
	if err != nil {
		return spec, fmt.Errorf("window: %w", err)
	}
	spec.Model = campaign.FaultModel{
		BitLo: uint(bitLo), BitHi: uint(bitHi),
		WindowLo: winLo, WindowHi: winHi,
	}

	matrix := sweep.Spec[reunion.Options]{
		Name: "inject",
		Base: reunion.Options{
			WarmCycles:    warm,
			CommitTarget:  target,
			TrialDeadline: deadline,
		},
	}

	var ms []reunion.Mode
	for _, name := range splitCSV(modes) {
		switch name {
		case "non-redundant":
			ms = append(ms, reunion.ModeNonRedundant)
		case "strict":
			// The strict oracle simulates a single core whose partner is
			// idealized away: it models comparison *timing*, so a fault
			// campaign against it would just re-measure the unprotected
			// substrate and mislabel it.
			return spec, fmt.Errorf("mode strict models comparison timing only (no simulated partner); inject supports reunion,non-redundant")
		case "reunion":
			ms = append(ms, reunion.ModeReunion)
		default:
			return spec, fmt.Errorf("unknown mode %q", name)
		}
	}
	ms = dedupe("mode", ms, reunion.Mode.String)
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("mode", ms, reunion.Mode.String,
		func(o *reunion.Options, m reunion.Mode) { o.Mode = m }))

	var phs []reunion.Phantom
	for _, name := range splitCSV(phantoms) {
		switch name {
		case "global":
			phs = append(phs, reunion.PhantomGlobal)
		case "shared":
			phs = append(phs, reunion.PhantomShared)
		case "null":
			phs = append(phs, reunion.PhantomNull)
		default:
			return spec, fmt.Errorf("unknown phantom strength %q", name)
		}
	}
	phs = dedupe("phantom", phs, reunion.Phantom.String)
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("phantom", phs, reunion.Phantom.String,
		func(o *reunion.Options, ph reunion.Phantom) { o.Phantom = ph }))

	var sds []uint64
	for _, f := range splitCSV(seeds) {
		v, err := strconv.ParseUint(f, 0, 64)
		if err != nil {
			return spec, fmt.Errorf("seeds: %w", err)
		}
		sds = append(sds, v)
	}
	sds = dedupe("seed", sds, func(s uint64) string { return strconv.FormatUint(s, 10) })
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("seed", sds,
		func(s uint64) string { return strconv.FormatUint(s, 10) },
		func(o *reunion.Options, s uint64) { o.Seed = s }))

	var ps []workload.Params
	if workloads == "all" {
		ps = workload.Suite()
	} else {
		for _, name := range splitCSV(workloads) {
			p, ok := workload.ByName(name)
			if !ok {
				return spec, fmt.Errorf("unknown workload %q (use -list)", name)
			}
			ps = append(ps, p)
		}
	}
	ps = dedupe("workload", ps, func(p workload.Params) string { return p.Name })
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("workload", ps,
		func(p workload.Params) string { return p.Name },
		func(o *reunion.Options, p workload.Params) { o.Workload = p }))

	spec.Matrix = matrix
	cells := matrix.Size()
	if cells == 0 {
		return spec, fmt.Errorf("empty matrix: every axis needs at least one value")
	}
	spec.Trials = totalTrials / cells
	if spec.Trials < 1 {
		spec.Trials = 1
	}
	return spec, spec.Validate()
}

func splitCSV(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// parseRange parses "lo-hi" (inclusive) or a single value "n" (= n-n).
func parseRange(s string, defLo, defHi int64) (lo, hi int64, err error) {
	if s == "" {
		return defLo, defHi, nil
	}
	parts := strings.SplitN(s, "-", 2)
	lo, err = strconv.ParseInt(strings.TrimSpace(parts[0]), 10, 64)
	if err != nil {
		return 0, 0, err
	}
	hi = lo
	if len(parts) == 2 {
		hi, err = strconv.ParseInt(strings.TrimSpace(parts[1]), 10, 64)
		if err != nil {
			return 0, 0, err
		}
	}
	if hi < lo {
		return 0, 0, fmt.Errorf("range %q is empty", s)
	}
	return lo, hi, nil
}
