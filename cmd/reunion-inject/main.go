// Command reunion-inject runs a Monte-Carlo fault-injection campaign:
// single-bit transient flips in the unprotected datapath, one per trial,
// each classified against a fault-free golden run of the same seed as
// masked, detected (with detection latency), SDC (silent data
// corruption), or DUE (detected-unrecoverable or lost to the trial
// deadline).
//
//	reunion-inject -trials 200 -mode reunion
//	reunion-inject -trials 500 -mode reunion,non-redundant -workloads apache,ocean
//	reunion-inject -trials 100 -phantoms global,null -out coverage.jsonl
//
// The campaign matrix is mode × phantom × seed × workload; -trials is the
// total trial budget, split evenly across cells. The fault stream —
// which bit, which cycle, which core — is drawn per (workload, seed,
// trial) and deliberately excludes the mode and phantom axes, so cells
// differing only in execution model face identical fault streams: the
// Reunion/non-redundant comparison is controlled, not anecdotal.
//
// Trial records stream to -out as JSON Lines (or CSV), one per trial in
// matrix order — byte-identical at any -parallel value. The coverage
// summary table (outcome counts, detection coverage with 95% Wilson
// intervals, latency quantiles) prints to stdout at the end; live
// progress goes to stderr (-quiet silences it).
//
// Long campaigns distribute and resume: -shard i/n runs only the i-th of
// n contiguous slices of the flattened cells×trials space (each worker
// warms only its own cells' checkpoints), -journal records the slice
// resumably (JSONL + checksummed footer), -resume continues a killed
// shard from its last complete trial record, and reunion-merge
// reassembles the shard journals into a stream byte-identical to the
// single-process campaign:
//
//	reunion-inject -trials 3000 -shard 0/3 -journal shard-0.jsonl
//	reunion-merge -out inject.jsonl shard-*.jsonl
//
// With -coordinator the worker instead pulls small index-range leases
// from a reunion-coordinator and streams each completed range back —
// dynamic dispatch for heterogeneous fleets, same byte-identical merged
// stream (the coordinator does the merging):
//
//	reunion-inject -trials 3000 -coordinator http://host:8080
//
// A sharded run's coverage table covers only that shard's trials — and
// a resumed run's, only the trials executed in that invocation (a
// stderr note says so); the journal always holds the full shard stream,
// and the merged file is the campaign's source of truth.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"time"

	"reunion"
	"reunion/internal/campaign"
	"reunion/internal/ckptstore"
	"reunion/internal/cliconf"
	"reunion/internal/dist"
	"reunion/internal/sweep"
	"reunion/internal/workload"
)

// warnOut receives axis-flag warnings (tests capture it).
var warnOut io.Writer = os.Stderr

func main() {
	trials := flag.Int("trials", 200, "total trial budget, split evenly across cells (min 1 per cell)")
	modes := flag.String("mode", "reunion,non-redundant", "execution models (csv: reunion,strict,non-redundant)")
	workloads := flag.String("workloads", "all", "workloads (csv of names, or 'all')")
	phantoms := flag.String("phantoms", "global", "phantom strengths (csv: global,shared,null)")
	seeds := flag.String("seeds", "1", "workload seeds (csv of uint64)")
	bits := flag.String("bits", "0-63", "inclusive flip-bit range lo-hi")
	window := flag.String("window", "", "injection cycle window lo-hi, measured from measurement start (default 0-target)")
	warm := flag.Int64("warm", 10_000, "warmup cycles per run")
	target := flag.Int64("target", 2_000, "committed instructions per logical processor per trial (classification boundary)")
	deadline := flag.Int64("deadline", 150_000, "trial deadline in cycles (past it a trial is a terminal DUE)")
	campSeed := flag.Uint64("campaign-seed", 0xfa017, "seed for the Monte-Carlo fault draws")
	parallel := flag.Int("parallel", runtime.GOMAXPROCS(0), "worker pool size")
	out := flag.String("out", "inject.jsonl", "per-trial results file ('-' = stdout, '' = none)")
	format := flag.String("format", "jsonl", "results format: jsonl | csv")
	shardStr := flag.String("shard", "", "run only slice i/n of the flattened trial matrix (e.g. 0/3; default: all trials)")
	journal := flag.String("journal", "", "write the slice as a resumable shard journal (JSONL + checksummed footer; replaces -out, excludes -format csv)")
	resume := flag.Bool("resume", false, "resume an interrupted -journal from its last complete trial record")
	coordinator := flag.String("coordinator", "", "run as a lease-pulling worker of a reunion-coordinator at this base URL (excludes -shard/-journal/-resume/-out)")
	quiet := flag.Bool("quiet", false, "suppress per-trial progress on stderr")
	ckpt := cliconf.RegisterCkpt(flag.CommandLine)
	obsFlags := cliconf.RegisterObs(flag.CommandLine).WithHeartbeat(flag.CommandLine)
	traceDump := flag.Int("trace-dump", 0, "record the last N kernel events of each injected run and print them to stderr for SDC and DUE trials (0 = off; prints even under -quiet)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file (go tool pprof)")
	list := flag.Bool("list", false, "list workloads and exit")
	flag.Parse()

	if *list {
		for _, p := range workload.Suite() {
			fmt.Printf("%-12s %s\n", p.Name, p.Class)
		}
		return
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "inject: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "inject: cpuprofile: %v\n", err)
			os.Exit(2)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	spec, err := buildSpec(*modes, *workloads, *phantoms, *seeds, *bits, *window,
		*warm, *target, *deadline, *trials, *campSeed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	// Telemetry is a pure observer: with or without these flags the trial
	// stream and journal bytes are byte-identical (asserted in tests and
	// CI). The per-trial kernel-event ring behind -trace-dump is too —
	// Options.TraceEvents is excluded from every cache and checkpoint key.
	sc := obsFlags.Scope()

	total := spec.Matrix.Size() * spec.Trials
	// Pin the journal to this exact campaign configuration — matrix
	// axes, base options (warm/target/deadline), trial budget, fault
	// model, and draw seed — so resuming or merging under different
	// flags that happen to yield the same name and trial count fails
	// loudly instead of interleaving two campaigns.
	fingerprint := dist.Fingerprint(append(spec.Matrix.FingerprintParts(),
		fmt.Sprintf("base:%+v", spec.Matrix.Base),
		fmt.Sprintf("trials:%d", spec.Trials),
		fmt.Sprintf("campaign-seed:%d", spec.Seed),
		fmt.Sprintf("model:%+v", spec.Model),
		fmt.Sprintf("exclude:%v", spec.StreamExclude))...)

	if *coordinator != "" {
		os.Exit(runCoordinated(*coordinator, spec, fingerprint, *parallel, *traceDump, *quiet, sc, ckpt, obsFlags))
	}

	shard, nshards, err := dist.ParseShard(*shardStr)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan, err := dist.NewPlan(spec.Name, total, shard, nshards)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	plan.Fingerprint = fingerprint

	if err := cliconf.CheckJournalFlags("inject", *journal, *format, *resume, dist.FlagWasSet("out")); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var sink sweep.Sink
	var outFile *os.File
	var jnl *dist.Journal
	switch {
	case *journal != "":
		jnl, err = dist.OpenOrCreateObs(*journal, plan, *resume, sc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if jnl.Complete() {
			fmt.Fprintf(os.Stderr, "inject: %s already complete (%d trials) — nothing to do\n", plan, jnl.Done())
			jnl.Close()
			return
		}
		sink = jnl
	case *out == "":
	case *format == "jsonl" || *format == "csv":
		w := os.Stdout
		if *out != "-" {
			f, err := os.Create(*out)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			outFile = f
			w = f
		}
		if *format == "csv" {
			sink = sweep.NewCSV(w)
		} else {
			sink = sweep.NewJSONL(w)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (valid: jsonl, csv)\n", *format)
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	indices := plan.Indices()
	resumedAt := 0
	if jnl != nil && jnl.Done() > 0 {
		resumedAt = jnl.Done()
		fmt.Fprintf(os.Stderr, "inject: resuming %s at trial record %d\n", plan, resumedAt)
		indices = jnl.Remaining()
	}
	if nshards > 1 {
		fmt.Fprintf(os.Stderr, "inject: %s: %d of %d trials (%d per cell × %d cells, %d workers)\n",
			plan, len(indices), total, spec.Trials, spec.Matrix.Size(), *parallel)
	} else {
		fmt.Fprintf(os.Stderr, "inject: %d trials (%d per cell × %d cells, %d workers)\n",
			len(indices), spec.Trials, spec.Matrix.Size(), *parallel)
	}

	// A sharded worker warms only its own cells' checkpoints; with a
	// shared store it also skips the ones a fleet-mate (or a previous,
	// killed incarnation of this shard resuming via -journal) already
	// warmed. Restores are bit-identical to local warmup, so trial
	// records are unchanged.
	warmCache := reunion.NewWarmCache()
	warmCache.Observe(sc)
	store, err := ckpt.Open()
	if err != nil {
		fmt.Fprintf(os.Stderr, "inject: %v\n", err)
		os.Exit(2)
	}
	if store != nil {
		warmCache.UseStore(ckptstore.Instrument(store, sc))
	}

	hbLabel := "inject"
	if nshards > 1 {
		hbLabel = fmt.Sprintf("inject shard %d/%d", shard, nshards)
	}
	hb := obsFlags.Heartbeat(hbLabel, int64(len(indices)))
	stopHeartbeat := hb.Start()

	start := time.Now() //reunion:nondeterm-ok host wall-clock for the progress summary
	eng := campaign.Engine[reunion.Options]{
		Spec:        spec,
		RunTrial:    reunion.TrialRunnerTraced(spec.Model, warmCache, *traceDump),
		Parallelism: *parallel,
		Sink:        sink,
		Obs:         sc,
	}
	if jnl != nil || nshards > 1 {
		eng.Indices = indices
	}
	eng.Progress = func(done, total int, cell sweep.Point[reunion.Options], t campaign.Trial, o campaign.Observation, out campaign.Outcome) {
		hb.Tick()
		if !*quiet {
			status := out.String()
			if o.Err != nil {
				status = o.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%*d/%d] %s,trial=%d bit=%d cycle=%d: %s\n",
				len(strconv.Itoa(total)), done, total, cell.Name(), t.Index, t.Bit, t.Cycle, status)
		}
		// The diagnostic dump prints even under -quiet: SDC and DUE are
		// exactly the trials one runs a campaign to find, and the last
		// kernel events before the verdict are the first clue to why.
		if *traceDump > 0 && o.Diag != "" && (out == campaign.SDC || out == campaign.DUE) {
			fmt.Fprintf(os.Stderr, "inject: %s trial: %s,trial=%d bit=%d cycle=%d — last kernel events:\n%s",
				out, cell.Name(), t.Index, t.Bit, t.Cycle, o.Diag)
		}
	}
	rep, err := eng.Run(ctx)
	stopHeartbeat()
	if jnl != nil {
		// Seal the journal once every slice record is on disk (lost trials
		// journal deterministic DUE records, exactly as the single-process
		// stream carries them). An interrupted or write-failed slice stays
		// footerless — resumable with -resume.
		err = dist.SealOrClose(jnl, err)
	} else if sink != nil {
		if cerr := sink.Close(); err == nil {
			err = cerr
		}
	}
	if outFile != nil {
		if cerr := outFile.Close(); err == nil {
			err = cerr
		}
	}
	// Telemetry flushes even when the campaign failed — that is when the
	// trace is most wanted — but a flush error must not mask a run error.
	if werr := obsFlags.WriteFiles(sc); werr != nil {
		fmt.Fprintf(os.Stderr, "inject: telemetry: %v\n", werr)
		if err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "inject: %v\n", err)
		os.Exit(1)
	}

	if resumedAt > 0 {
		fmt.Fprintf(os.Stderr, "inject: resumed run: the table covers only the %d trials executed in this invocation; all %d shard records are in the journal (merge for whole-campaign statistics)\n",
			len(indices), jnl.Done())
	}
	rep.WriteTable(os.Stdout)
	fmt.Fprintf(os.Stderr, "inject: %d trials in %s\n",
		rep.Total.Trials(), time.Since(start).Round(time.Millisecond)) //reunion:nondeterm-ok host wall-clock
	if rep.Total.Count(campaign.DUE) > 0 {
		fmt.Fprintf(os.Stderr, "inject: %d DUE trials (deadline/unrecoverable) — inspect the results file\n",
			rep.Total.Count(campaign.DUE))
	}
}

// buildSpec assembles the campaign from the flags (validation and
// dedupe-warning rules live in cliconf, shared with the other CLIs).
// Axis order fixes the enumeration (and results-file) order: mode,
// phantom, seed, workload, trial.
func buildSpec(modes, workloads, phantoms, seeds, bits, window string,
	warm, target, deadline int64, totalTrials int, campSeed uint64) (campaign.Spec[reunion.Options], error) {
	spec := campaign.Spec[reunion.Options]{
		Name: "inject",
		Seed: campSeed,
		// Cells differing only in execution model or phantom strength face
		// the same fault stream.
		StreamExclude: []string{"mode", "phantom"},
	}

	bitLo, bitHi, err := parseRange(bits, 0, 63)
	if err != nil {
		return spec, fmt.Errorf("bits: %w", err)
	}
	if window == "" {
		window = fmt.Sprintf("0-%d", target)
	}
	winLo, winHi, err := parseRange(window, 0, target)
	if err != nil {
		return spec, fmt.Errorf("window: %w", err)
	}
	spec.Model = campaign.FaultModel{
		BitLo: uint(bitLo), BitHi: uint(bitHi),
		WindowLo: winLo, WindowHi: winHi,
	}

	matrix := sweep.Spec[reunion.Options]{
		Name: "inject",
		Base: reunion.Options{
			WarmCycles:    warm,
			CommitTarget:  target,
			TrialDeadline: deadline,
		},
	}

	ms, err := cliconf.Modes(warnOut, "inject", modes, false)
	if err != nil {
		return spec, err
	}
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("mode", ms, reunion.Mode.String,
		func(o *reunion.Options, m reunion.Mode) { o.Mode = m }))

	phs, err := cliconf.Phantoms(warnOut, "inject", phantoms)
	if err != nil {
		return spec, err
	}
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("phantom", phs, reunion.Phantom.String,
		func(o *reunion.Options, ph reunion.Phantom) { o.Phantom = ph }))

	sds, err := cliconf.Seeds(warnOut, "inject", seeds)
	if err != nil {
		return spec, fmt.Errorf("seeds: %w", err)
	}
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("seed", sds,
		func(s uint64) string { return strconv.FormatUint(s, 10) },
		func(o *reunion.Options, s uint64) { o.Seed = s }))

	ps, err := cliconf.Workloads(warnOut, "inject", workloads)
	if err != nil {
		return spec, err
	}
	matrix.Axes = append(matrix.Axes, sweep.NewAxis("workload", ps,
		func(p workload.Params) string { return p.Name },
		func(o *reunion.Options, p workload.Params) { o.Workload = p }))

	spec.Matrix = matrix
	cells := matrix.Size()
	if cells == 0 {
		return spec, fmt.Errorf("empty matrix: every axis needs at least one value")
	}
	spec.Trials = totalTrials / cells
	if spec.Trials < 1 {
		spec.Trials = 1
	}
	return spec, spec.Validate()
}

// parseRange parses "lo-hi" (inclusive) or a single value "n" (= n-n).
func parseRange(s string, defLo, defHi int64) (lo, hi int64, err error) {
	return cliconf.ParseRange(s, defLo, defHi)
}
