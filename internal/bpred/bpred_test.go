package bpred

import "testing"

func TestLearnsAlwaysTaken(t *testing.T) {
	p := New(10, 6)
	pc := int64(100)
	for i := 0; i < 8; i++ {
		p.Update(pc, true, 5, true)
	}
	taken, target, ok := p.Predict(pc)
	if !taken || !ok || target != 5 {
		t.Fatalf("taken=%v target=%d ok=%v", taken, target, ok)
	}
}

func TestLearnsNotTaken(t *testing.T) {
	p := New(10, 6)
	pc := int64(200)
	for i := 0; i < 8; i++ {
		p.Update(pc, false, 0, true)
	}
	if taken, _, _ := p.Predict(pc); taken {
		t.Fatal("predicted taken after not-taken training")
	}
}

func TestHysteresis(t *testing.T) {
	p := New(10, 6)
	pc := int64(300)
	for i := 0; i < 8; i++ {
		p.Update(pc, true, 7, true)
	}
	p.Update(pc, false, 0, true) // one not-taken shouldn't flip a saturated counter
	if taken, _, _ := p.Predict(pc); !taken {
		t.Fatal("2-bit counter flipped after one contrary outcome")
	}
}

func TestLoopPattern(t *testing.T) {
	// A loop branch (taken N-1 times, not-taken once) should be mostly
	// predicted correctly after warmup.
	p := New(12, 8)
	pc := int64(400)
	correct, total := 0, 0
	// Use a stable history: single static branch.
	for iter := 0; iter < 50; iter++ {
		for i := 0; i < 10; i++ {
			actual := i != 9
			pred, _, _ := p.Predict(pc)
			if iter > 5 {
				total++
				if pred == actual {
					correct++
				}
			}
			p.Update(pc, actual, 4, true)
		}
	}
	if rate := float64(correct) / float64(total); rate < 0.7 {
		t.Fatalf("loop accuracy %.2f", rate)
	}
}

func TestBTBIndirect(t *testing.T) {
	p := New(10, 6)
	pc := int64(500)
	if _, _, ok := p.Predict(pc); ok {
		t.Fatal("BTB hit before training")
	}
	p.Update(pc, true, 1234, false) // unconditional indirect
	_, target, ok := p.Predict(pc)
	if !ok || target != 1234 {
		t.Fatalf("BTB target=%d ok=%v", target, ok)
	}
	// Retarget.
	p.Update(pc, true, 99, false)
	if _, target, _ := p.Predict(pc); target != 99 {
		t.Fatal("BTB retarget failed")
	}
}

func TestStatsCount(t *testing.T) {
	p := New(10, 6)
	p.Predict(1)
	p.Predict(2)
	if p.Lookups != 2 {
		t.Fatalf("lookups=%d", p.Lookups)
	}
}
