package bpred

import "reunion/internal/bin"

// Wire codec for predictor snapshots (checkpoint serialization).

// Encode writes the snapshot.
func (s *PredictorState) Encode(w *bin.Writer) {
	w.Bytes64(s.counters)
	w.Uvarint(uint64(len(s.btbTags)))
	for _, t := range s.btbTags {
		w.U64(t)
	}
	for _, t := range s.btbTargets {
		w.I64(t)
	}
	w.I64(s.lookups)
	w.I64(s.mispredicts)
}

// DecodePredictorState reads a snapshot written by Encode.
func DecodePredictorState(r *bin.Reader) *PredictorState {
	s := &PredictorState{counters: r.Bytes64()}
	n := r.Len(16) // every tag is paired with a target
	for i := 0; i < n; i++ {
		s.btbTags = append(s.btbTags, r.U64())
	}
	for i := 0; i < n; i++ {
		s.btbTargets = append(s.btbTargets, r.I64())
	}
	s.lookups = r.I64()
	s.mispredicts = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// Geometry returns the snapshotted table sizes (bind-time check).
func (s *PredictorState) Geometry() (counters, btb int) {
	return len(s.counters), len(s.btbTags)
}
