// Package bpred implements the branch predictor used by the simulated
// out-of-order cores: a bimodal (per-PC 2-bit saturating counter)
// direction predictor with a direct-mapped branch target buffer.
//
// Reunion explicitly does not require predictor state to match across a
// logical pair (unlike lockstep, which needs determinism even in
// structures that do not affect architectural correctness — paper §2.2).
// The vocal and mute predictors evolve independently; divergent predictions
// only perturb timing, which is exactly the loose coupling the execution
// model tolerates.
package bpred

// Predictor is a bimodal + BTB branch predictor.
type Predictor struct {
	counters []uint8 // 2-bit saturating counters
	mask     uint64

	btbTags    []uint64
	btbTargets []int64
	btbMask    uint64

	Lookups, Mispredicts int64
}

// New builds a predictor with 2^dirBits direction counters and 2^btbBits
// BTB entries.
func New(dirBits, btbBits uint) *Predictor {
	return &Predictor{
		counters:   make([]uint8, 1<<dirBits),
		mask:       1<<dirBits - 1,
		btbTags:    make([]uint64, 1<<btbBits),
		btbTargets: make([]int64, 1<<btbBits),
		btbMask:    1<<btbBits - 1,
	}
}

func (p *Predictor) dirIndex(pc int64) uint64 { return uint64(pc) & p.mask }

// Predict returns the predicted direction and target for the branch at pc.
// For unconditional branches callers should treat taken as true and use
// the target only when targetValid.
func (p *Predictor) Predict(pc int64) (taken bool, target int64, targetValid bool) {
	p.Lookups++
	taken = p.counters[p.dirIndex(pc)] >= 2
	slot := uint64(pc) & p.btbMask
	if p.btbTags[slot] == uint64(pc)|1<<63 {
		return taken, p.btbTargets[slot], true
	}
	return taken, 0, false
}

// PredictorState is a checkpoint of the predictor tables and counters.
type PredictorState struct {
	counters             []uint8
	btbTags              []uint64
	btbTargets           []int64
	lookups, mispredicts int64
}

// Snapshot captures the predictor state. Read-only.
func (p *Predictor) Snapshot() *PredictorState {
	return &PredictorState{
		counters:   append([]uint8(nil), p.counters...),
		btbTags:    append([]uint64(nil), p.btbTags...),
		btbTargets: append([]int64(nil), p.btbTargets...),
		lookups:    p.Lookups, mispredicts: p.Mispredicts,
	}
}

// Restore rewrites the predictor from a snapshot.
func (p *Predictor) Restore(s *PredictorState) {
	copy(p.counters, s.counters)
	copy(p.btbTags, s.btbTags)
	copy(p.btbTargets, s.btbTargets)
	p.Lookups, p.Mispredicts = s.lookups, s.mispredicts
}

// Update trains the predictor with the resolved outcome.
func (p *Predictor) Update(pc int64, taken bool, target int64, conditional bool) {
	if conditional {
		idx := p.dirIndex(pc)
		c := p.counters[idx]
		if taken && c < 3 {
			p.counters[idx] = c + 1
		} else if !taken && c > 0 {
			p.counters[idx] = c - 1
		}
	}
	if taken {
		slot := uint64(pc) & p.btbMask
		p.btbTags[slot] = uint64(pc) | 1<<63
		p.btbTargets[slot] = target
	}
}
