package cpu

// Completion-callback factories. The pipeline registers these closures with
// the L1s (and, via the gate, with the pair's synchronizing-request path);
// the checkpoint decoder rebuilds the very same closures from their CB
// descriptors. Keeping one factory per closure shape is what makes a
// restored machine bit-identical to the live one: there is no second
// implementation to drift.

// IfetchDoneFn returns the instruction-cache miss completion for a fetch
// issued in the given fetch epoch: clear the icache wait unless fetch has
// since been redirected.
func (c *Core) IfetchDoneFn(epoch int64) func() {
	return func() {
		c.dirty = true
		if c.fetchEpoch == epoch {
			c.icacheWait = false
		}
	}
}

// LoadDoneFn returns the load-miss completion for ROB slot idx, guarded by
// (seq, epoch) against slot reuse and squash.
func (c *Core) LoadDoneFn(idx int, seq, epoch int64) func(uint64) {
	return func(v uint64) {
		c.dirty = true
		if ee := &c.rob[idx]; ee.Seq == seq && ee.Epoch == epoch && ee.state == stIssued {
			ee.Result = int64(v)
			ee.doneAt, ee.hasDoneAt = c.EQ.Now()+1, true
		}
	}
}

// AtomicFinishFn returns the CAS completion for ROB slot idx: record the
// old value and CAS outcome, or — when the entry was squashed mid-flight —
// release the line lock the fill just took.
func (c *Core) AtomicFinishFn(idx int, seq, epoch int64, block uint64, word int) func(uint64) {
	return func(old uint64) {
		c.dirty = true
		ee := &c.rob[idx]
		if ee.Seq != seq || ee.Epoch != epoch {
			c.L1D.AtomicEnd(block, word, 0, false)
			return
		}
		ee.Result = int64(old)
		ee.casSuccess = int64(old) == ee.src3
		ee.casNew = ee.src2
		ee.doneAt, ee.hasDoneAt = c.EQ.Now()+1, true
	}
}

// StoreDoneFn returns the store-drain completion for the store buffer head
// holding seq.
func (c *Core) StoreDoneFn(seq int64) func() {
	return func() { c.storeDone(seq) }
}

// storeDone pops the drained store buffer head. The drain hit path calls
// it directly; misses go through the StoreDoneFn closure.
func (c *Core) storeDone(seq int64) {
	c.dirty = true
	if len(c.sb) == 0 || c.sb[0].seq != seq {
		panic("cpu: store buffer drained out of order")
	}
	copy(c.sb, c.sb[1:])
	c.sb = c.sb[:len(c.sb)-1]
	c.sbNonspec--
	c.sbDraining = false
	c.noteWake() // a serializing entry may be waiting on sb drain
}

// ROBLen returns the reorder-buffer capacity. The checkpoint binder
// bounds-checks decoded callback descriptors' ROB slots against it before
// building closures that index the buffer.
func (c *Core) ROBLen() int { return len(c.rob) }
