package cpu_test

import (
	"testing"

	"reunion/internal/cache"
	"reunion/internal/core"
	"reunion/internal/cpu"
	"reunion/internal/fingerprint"
	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
	"reunion/internal/tlb"
)

// instantBelow replies to every L1 request after a fixed delay from a flat
// memory image — a minimal memory system for single-core pipeline tests.
type instantBelow struct {
	eq    *sim.EventQueue
	mem   *mem.Memory
	delay int64
}

func (b *instantBelow) Request(r *cache.Req) {
	switch r.Kind {
	case cache.Writeback:
		b.mem.WriteBlock(r.Block, r.Data)
	default:
		block := r.Block
		done := r.Done
		b.eq.After(b.delay, func() {
			var d mem.Block
			b.mem.ReadBlock(block, &d)
			done(cache.Resp{Data: d, Exclusive: true})
		})
	}
}

type rig struct {
	eq   *sim.EventQueue
	mem  *mem.Memory
	core *cpu.Core
}

func testCfg() *cpu.Config {
	return &cpu.Config{
		FetchWidth: 4, DispatchWidth: 4, IssueWidth: 4, RetireWidth: 4,
		ROBSize: 64, SBSize: 16, FetchQCap: 8, CheckQCap: 64,
		LoadToUse: 2, FrontDepth: 4, L1LoadPorts: 2, L1StorePorts: 1,
		TrapLatency: 10, DevLatency: 10,
		FPMode: fingerprint.Direct, FPInterval: 1,
		TLB: cpu.TLBPolicy{Mode: tlb.Hardware, WalkLatency: 10, HandlerBody: 20, HandlerSerializers: 5},
	}
}

func newRig(t *testing.T, th *program.Thread, gate cpu.Gate) *rig {
	t.Helper()
	r := &rig{eq: sim.NewEventQueue(), mem: mem.New()}
	below := &instantBelow{eq: r.eq, mem: r.mem, delay: 20}
	l1d := cache.NewL1("d", 0, 0, true, 8<<10, 2, 8, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 8<<10, 2, 8, below, true)
	if gate == nil {
		gate = &core.NonRedundantGate{EQ: r.eq}
	}
	r.core = cpu.New(0, 0, true, testCfg(), r.eq, th,
		l1d, l1i, tlb.New(64, 2), tlb.New(64, 2), gate)
	return r
}

func (r *rig) runToHalt(t *testing.T, max int64) int64 {
	t.Helper()
	for i := int64(0); i < max; i++ {
		r.eq.Advance(r.eq.Now() + 1)
		r.core.Tick()
		if r.core.Halted() {
			return i
		}
	}
	t.Fatalf("core did not halt; %s", r.core.DumpState())
	return 0
}

func TestALUDependencyChain(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 5)
	b.Addi(2, 1, 3)         // 8
	b.Op3(isa.Mul, 3, 2, 1) // 40
	b.Op3(isa.Sub, 4, 3, 2) // 32
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	arf := r.core.ARF()
	if arf[4] != 32 {
		t.Fatalf("r4=%d want 32", arf[4])
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A load must forward from an older in-flight store to the same word
	// without waiting for the drain.
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x1000)
	b.Li(2, 77)
	b.St(1, 0, 2)
	b.Ld(3, 1, 0)
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	if r.core.ARF()[3] != 77 {
		t.Fatalf("forwarded %d want 77", r.core.ARF()[3])
	}
}

func TestStoreDrainsToCache(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x2000)
	b.Li(2, 9)
	b.St(1, 0, 2)
	b.Membar() // forces the drain before retiring
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	st, v := r.core.L1D.Load(mem.BlockAddr(0x2000), 0, nil)
	if st != cache.Hit || v != 9 {
		t.Fatalf("drained store not in L1: st=%v v=%d", st, v)
	}
}

func TestBranchMispredictRecovery(t *testing.T) {
	// A data-dependent unpredictable branch: results must still be exact.
	b := program.NewBuilder("t", 0)
	b.Li(1, 0)  // i
	b.Li(2, 20) // n
	b.Li(3, 0)  // acc
	b.Label("loop")
	b.OpI(isa.Andi, 4, 1, 1)
	b.Bne(4, 0, "odd")
	b.Addi(3, 3, 10) // even: +10
	b.Jmp("next")
	b.Label("odd")
	b.Addi(3, 3, 1) // odd: +1
	b.Label("next")
	b.Addi(1, 1, 1)
	b.Blt(1, 2, "loop")
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 50_000)
	if got := r.core.ARF()[3]; got != 110 {
		t.Fatalf("acc=%d want 110", got)
	}
	if r.core.Stats.Mispredicts == 0 {
		t.Fatal("expected at least one misprediction")
	}
}

func TestJrIndirect(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 4) // target index of "land"
	b.Emit(isa.Instr{Op: isa.Jr, Rs1: 1})
	b.Li(2, 111) // skipped
	b.Halt()     // skipped
	b.Label("land")
	b.Li(2, 222)
	b.Halt()
	th := b.Build()
	if th.Code[4].Op != isa.Li {
		t.Fatalf("label layout changed: %v", th.Code[4])
	}
	r := newRig(t, th, nil)
	r.runToHalt(t, 10_000)
	if r.core.ARF()[2] != 222 {
		t.Fatalf("r2=%d want 222 (jr fell through)", r.core.ARF()[2])
	}
}

func TestCASSerializesAndWorks(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x3000)
	b.Li(2, 0) // expected
	b.Li(3, 7) // new
	b.Cas(2, 1, 3)
	b.Ld(4, 1, 0)
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	arf := r.core.ARF()
	if arf[2] != 0 || arf[4] != 7 {
		t.Fatalf("cas old=%d readback=%d", arf[2], arf[4])
	}
	if r.core.Stats.Serializing == 0 {
		t.Fatal("CAS not counted as serializing")
	}
}

func TestWAWAndWARHazards(t *testing.T) {
	// Two writes to the same register with an interleaved reader: the
	// reader must capture the first value (RUU operand copy), and the
	// final architectural value is the last write.
	b := program.NewBuilder("t", 0)
	b.Li(1, 1)
	b.Add(2, 1, 1)          // r2 = 2  (first write)
	b.Op3(isa.Mul, 3, 2, 2) // r3 = 4  (reads first r2)
	b.Li(2, 100)            // second write (WAW over r2, WAR vs the mul)
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	arf := r.core.ARF()
	if arf[3] != 4 || arf[2] != 100 {
		t.Fatalf("r3=%d r2=%d want 4,100", arf[3], arf[2])
	}
}

func TestHardwareTLBWalkCharged(t *testing.T) {
	// Touch many pages: misses must be counted and walk latency charged.
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x10000)
	for i := 0; i < 8; i++ {
		b.Ld(2, 1, int64(i)*int64(mem.PageBytes))
	}
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 50_000)
	if r.core.Stats.DTLBMisses != 8 {
		t.Fatalf("DTLB misses %d want 8", r.core.Stats.DTLBMisses)
	}
}

func TestR0NeverWritten(t *testing.T) {
	b := program.NewBuilder("t", 0)
	b.Li(0, 55)
	b.Add(1, 0, 0)
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	if r.core.ARF()[0] != 0 || r.core.ARF()[1] != 0 {
		t.Fatalf("r0=%d r1=%d", r.core.ARF()[0], r.core.ARF()[1])
	}
}

func TestSCMakesStoresSerializing(t *testing.T) {
	cfgSC := testCfg()
	cfgSC.Consistency = cpu.SC
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x4000)
	for i := 0; i < 10; i++ {
		b.St(1, int64(i*8), 1)
	}
	b.Halt()
	th := b.Build()

	eq := sim.NewEventQueue()
	memi := mem.New()
	below := &instantBelow{eq: eq, mem: memi, delay: 20}
	l1d := cache.NewL1("d", 0, 0, true, 8<<10, 2, 8, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 8<<10, 2, 8, below, true)
	c := cpu.New(0, 0, true, cfgSC, eq, th, l1d, l1i, tlb.New(64, 2), tlb.New(64, 2),
		&core.NonRedundantGate{EQ: eq})
	for i := 0; i < 100_000 && !c.Halted(); i++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
	}
	if !c.Halted() {
		t.Fatal("SC run did not halt")
	}
	if c.Stats.Serializing < 10 {
		t.Fatalf("SC stores serializing=%d want >=10", c.Stats.Serializing)
	}

	// TSO run of the same program must be faster (stores drain lazily).
	r := newRig(t, th, nil)
	tsoCycles := r.runToHalt(t, 100_000)
	if scCycles := c.Stats.Cycles; scCycles <= tsoCycles {
		t.Fatalf("SC (%d cycles) not slower than TSO (%d)", scCycles, tsoCycles)
	}
}

func TestMLPOverlapsMisses(t *testing.T) {
	// Independent loads to distinct blocks must overlap their miss
	// latency: 8 independent misses at delay 20 should take far less than
	// 8*20 cycles beyond the pipeline fill.
	b := program.NewBuilder("t", 0)
	b.Li(1, 0x8000)
	for i := 0; i < 8; i++ {
		b.Ld(uint8(2+i), 1, int64(i)*mem.BlockBytes)
	}
	b.Halt()
	r := newRig(t, b.Build(), nil)
	cycles := r.runToHalt(t, 10_000)
	if cycles > 120 {
		t.Fatalf("8 independent misses took %d cycles; MLP broken", cycles)
	}
}

func TestDependentLoadsSerialize(t *testing.T) {
	// A pointer chase cannot overlap: each load needs the previous value.
	m := mem.New()
	base := uint64(0x9000)
	for i := uint64(0); i < 8; i++ {
		m.WriteWord(base+i*mem.BlockBytes, uint64(base+(i+1)*mem.BlockBytes))
	}
	b := program.NewBuilder("t", 0)
	b.Li(1, int64(base))
	for i := 0; i < 7; i++ {
		b.Ld(1, 1, 0)
	}
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.mem = m
	// rebuild rig with the prepared memory
	eq := sim.NewEventQueue()
	below := &instantBelow{eq: eq, mem: m, delay: 20}
	l1d := cache.NewL1("d", 0, 0, true, 8<<10, 2, 8, below, false)
	l1i := cache.NewL1("i", 0, 0, true, 8<<10, 2, 8, below, true)
	c := cpu.New(0, 0, true, testCfg(), eq, b.Build(), l1d, l1i,
		tlb.New(64, 2), tlb.New(64, 2), &core.NonRedundantGate{EQ: eq})
	var cycles int64
	for ; cycles < 10_000 && !c.Halted(); cycles++ {
		eq.Advance(eq.Now() + 1)
		c.Tick()
	}
	if cycles < 7*20 {
		t.Fatalf("dependent chain finished in %d cycles (< serial latency)", cycles)
	}
}

func TestROBOccupancyTracked(t *testing.T) {
	b := program.NewBuilder("t", 0)
	for i := 0; i < 50; i++ {
		b.Addi(1, 1, 1)
	}
	b.Halt()
	r := newRig(t, b.Build(), nil)
	r.runToHalt(t, 10_000)
	if r.core.Stats.ROBOccupancy == 0 || r.core.Stats.Committed != 51 {
		t.Fatalf("occupancy=%d committed=%d", r.core.Stats.ROBOccupancy, r.core.Stats.Committed)
	}
}
