package cpu

import (
	"fmt"

	"reunion/internal/bin"
	"reunion/internal/bpred"
	"reunion/internal/cache"
	"reunion/internal/fingerprint"
	"reunion/internal/isa"
	"reunion/internal/tlb"
)

// Wire codec for core snapshots (checkpoint serialization). The encoding
// walks every mutable field of Core in declaration order; pointer fields
// (config, thread, caches, gate, hooks) are identity, not state — a
// decoded snapshot carries nil there until BindTo fixes them from the live
// core the checkpoint restores onto.

func encodeInstr(w *bin.Writer, in isa.Instr) {
	w.U8(uint8(in.Op))
	w.U8(in.Rd)
	w.U8(in.Rs1)
	w.U8(in.Rs2)
	w.I64(in.Imm)
}

func decodeInstr(r *bin.Reader) isa.Instr {
	in := isa.Instr{Op: isa.Op(r.U8()), Rd: r.U8(), Rs1: r.U8(), Rs2: r.U8(), Imm: r.I64()}
	if !in.Op.Valid() {
		r.Fail(fmt.Errorf("cpu: invalid opcode %d", in.Op))
	}
	if in.Rd >= isa.NumRegs || in.Rs1 >= isa.NumRegs || in.Rs2 >= isa.NumRegs {
		r.Fail(fmt.Errorf("cpu: register index out of range in %v", in))
	}
	return in
}

func encodeEntry(w *bin.Writer, e *Entry) {
	w.I64(e.Seq)
	w.I64(e.PC)
	encodeInstr(w, e.In)
	w.I64(e.Epoch)
	w.U8(uint8(e.state))
	w.I64(e.src1)
	w.I64(e.src2)
	w.I64(e.src3)
	w.Int(e.src1Rob)
	w.Int(e.src2Rob)
	w.Int(e.src3Rob)
	w.I64(e.src1Seq)
	w.I64(e.src2Seq)
	w.I64(e.src3Seq)
	w.U8(e.src1Reg)
	w.U8(e.src2Reg)
	w.U8(e.src3Reg)
	w.Bool(e.src1Ready)
	w.Bool(e.src2Ready)
	w.Bool(e.src3Ready)
	w.Bool(e.predTaken)
	w.I64(e.predTarget)
	w.I64(e.Result)
	w.Bool(e.Taken)
	w.I64(e.Target)
	w.U64(e.EA)
	w.I64(e.doneAt)
	w.Bool(e.hasDoneAt)
	w.Bool(e.casSuccess)
	w.I64(e.casNew)
	w.Bool(e.syncIssued)
	w.Bool(e.Serializing)
	w.I64(e.IntervalID)
	w.I64(e.ExtraCheck)
	w.Int(e.SerialCount)
	w.I64(e.OfferedAt)
	w.Bool(e.tlbChecked)
	w.I64(e.offerAfter)
}

func decodeEntry(r *bin.Reader) Entry {
	var e Entry
	e.Seq = r.I64()
	e.PC = r.I64()
	e.In = decodeInstr(r)
	e.Epoch = r.I64()
	e.state = entryState(r.U8())
	if e.state > stOffered {
		r.Fail(fmt.Errorf("cpu: invalid ROB entry state %d", e.state))
		return Entry{}
	}
	e.src1 = r.I64()
	e.src2 = r.I64()
	e.src3 = r.I64()
	e.src1Rob = r.Int()
	e.src2Rob = r.Int()
	e.src3Rob = r.Int()
	e.src1Seq = r.I64()
	e.src2Seq = r.I64()
	e.src3Seq = r.I64()
	e.src1Reg = r.U8()
	e.src2Reg = r.U8()
	e.src3Reg = r.U8()
	e.src1Ready = r.Bool()
	e.src2Ready = r.Bool()
	e.src3Ready = r.Bool()
	e.predTaken = r.Bool()
	e.predTarget = r.I64()
	e.Result = r.I64()
	e.Taken = r.Bool()
	e.Target = r.I64()
	e.EA = r.U64()
	e.doneAt = r.I64()
	e.hasDoneAt = r.Bool()
	e.casSuccess = r.Bool()
	e.casNew = r.I64()
	e.syncIssued = r.Bool()
	e.Serializing = r.Bool()
	e.IntervalID = r.I64()
	e.ExtraCheck = r.I64()
	e.SerialCount = r.Int()
	e.OfferedAt = r.I64()
	e.tlbChecked = r.Bool()
	e.offerAfter = r.I64()
	return e
}

// entryWireBytes is a conservative lower bound on an encoded Entry.
const entryWireBytes = 100

// Encode writes the core snapshot.
func (s *CoreState) Encode(w *bin.Writer) error {
	c := &s.core
	w.Int(c.ID)
	w.Int(c.Pair)
	w.Bool(c.Vocal)
	for _, v := range c.arf {
		w.I64(v)
	}
	w.I64(c.commitSeq)
	w.I64(c.commitPC)
	w.I64(c.fetchPC)
	w.I64(c.fetchSeq)
	w.Bool(c.fetchHalted)
	w.Bool(c.icacheWait)
	w.U64(c.curIBlock)
	w.Bool(c.haveIBlock)
	w.I64(c.fetchEpoch)
	w.Uvarint(uint64(len(c.fq)))
	for i := range c.fq {
		f := &c.fq[i]
		w.I64(f.seq)
		w.I64(f.pc)
		encodeInstr(w, f.in)
		w.Bool(f.predTaken)
		w.I64(f.predTarget)
		w.I64(f.readyAt)
	}
	w.Uvarint(uint64(len(c.rob)))
	for i := range c.rob {
		encodeEntry(w, &c.rob[i])
	}
	w.Int(c.robHead)
	w.Int(c.robCount)
	w.Int(c.offerIdx)
	for _, ref := range c.rename {
		w.Bool(ref.valid)
		w.Int(ref.rob)
		w.I64(ref.seq)
	}
	w.Uvarint(uint64(len(c.inExec)))
	for _, idx := range c.inExec {
		w.Int(idx)
	}
	w.Uvarint(uint64(len(c.sb)))
	for i := range c.sb {
		sb := &c.sb[i]
		w.I64(sb.seq)
		w.U64(sb.block)
		w.Int(sb.word)
		w.U64(sb.data)
		w.Bool(sb.addrReady)
		w.Bool(sb.nonspec)
		w.Bool(sb.draining)
	}
	w.Bool(c.sbDraining)
	w.Uvarint(uint64(len(c.serQ)))
	for _, seq := range c.serQ {
		w.I64(seq)
	}
	w.I64(c.epoch)
	w.Bool(c.halted)
	w.Bool(c.failed)
	w.Bool(c.faultArmed)
	w.U64(uint64(c.faultBit))
	w.I64(c.faultSeq)
	w.I64(c.FaultRetired)
	w.I64(c.FaultSquashed)
	w.Bool(c.digestOn)
	w.I64(c.digestCount)
	w.I64(c.digestTarget)
	w.U64(c.digestVal)
	w.U64(c.digestLatched)
	w.Bool(c.digestDone)
	w.Int(c.intervalCount)
	w.I64(c.intervalID)
	w.Int(c.loadsThisCycle)
	w.Int(c.storesThisCycle)
	w.Bool(c.progress)
	w.Bool(c.volatileStall)
	w.I64(c.idleSerStalls)
	w.I64(c.idleSBFull)
	w.I64(c.execStamp)
	w.Bool(c.pollEvery)
	w.Bool(c.dirty)
	w.Bool(c.selfQuiet)
	w.I64(c.selfWake)
	w.I64(c.devCount)
	st := &c.Stats
	for _, v := range []int64{st.Committed, st.CommittedLoads, st.CommittedStores,
		st.Mispredicts, st.Serializing, st.ITLBMisses, st.DTLBMisses,
		st.ROBOccupancy, st.CheckOccupancy, st.Cycles, st.IssueStallSer,
		st.SBFullStalls, st.DevReads} {
		w.I64(v)
	}
	if err := s.l1d.Encode(w); err != nil {
		return fmt.Errorf("core %d L1D: %w", c.ID, err)
	}
	if err := s.l1i.Encode(w); err != nil {
		return fmt.Errorf("core %d L1I: %w", c.ID, err)
	}
	s.itlb.Encode(w)
	s.dtlb.Encode(w)
	s.bp.Encode(w)
	w.U16(s.fp.CRC())
	return nil
}

// DecodeCoreState reads a core snapshot written by Encode. Pointer fields
// are nil until BindTo.
func DecodeCoreState(r *bin.Reader) *CoreState {
	s := &CoreState{}
	c := &s.core
	c.ID = r.Int()
	c.Pair = r.Int()
	c.Vocal = r.Bool()
	for i := range c.arf {
		c.arf[i] = r.I64()
	}
	c.commitSeq = r.I64()
	c.commitPC = r.I64()
	c.fetchPC = r.I64()
	c.fetchSeq = r.I64()
	c.fetchHalted = r.Bool()
	c.icacheWait = r.Bool()
	c.curIBlock = r.U64()
	c.haveIBlock = r.Bool()
	c.fetchEpoch = r.I64()
	nfq := r.Len(8 + 8 + 12 + 1 + 8 + 8)
	for i := 0; i < nfq; i++ {
		c.fq = append(c.fq, fqSlot{
			seq: r.I64(), pc: r.I64(), in: decodeInstr(r),
			predTaken: r.Bool(), predTarget: r.I64(), readyAt: r.I64(),
		})
	}
	nrob := r.Len(entryWireBytes)
	for i := 0; i < nrob; i++ {
		c.rob = append(c.rob, decodeEntry(r))
	}
	c.robHead = r.Int()
	c.robCount = r.Int()
	c.offerIdx = r.Int()
	if r.Err() == nil {
		if nrob == 0 || c.robHead < 0 || c.robHead >= nrob ||
			c.robCount < 0 || c.robCount > nrob ||
			c.offerIdx < 0 || c.offerIdx > c.robCount {
			r.Fail(fmt.Errorf("cpu: ROB bookkeeping out of range (head=%d count=%d offered=%d size=%d)",
				c.robHead, c.robCount, c.offerIdx, nrob))
			return nil
		}
	}
	for i := range c.rename {
		ref := renameRef{valid: r.Bool(), rob: r.Int(), seq: r.I64()}
		if ref.valid && (ref.rob < 0 || ref.rob >= nrob) {
			r.Fail(fmt.Errorf("cpu: rename reference %d out of range", ref.rob))
			return nil
		}
		c.rename[i] = ref
	}
	nexec := r.Len(8)
	for i := 0; i < nexec; i++ {
		idx := r.Int()
		if idx < 0 || idx >= nrob {
			r.Fail(fmt.Errorf("cpu: in-exec index %d out of range", idx))
			return nil
		}
		c.inExec = append(c.inExec, idx)
	}
	nsb := r.Len(8 + 8 + 8 + 8 + 3)
	for i := 0; i < nsb; i++ {
		c.sb = append(c.sb, sbEntry{
			seq: r.I64(), block: r.U64(), word: r.Int(), data: r.U64(),
			addrReady: r.Bool(), nonspec: r.Bool(), draining: r.Bool(),
		})
	}
	c.sbDraining = r.Bool()
	nser := r.Len(8)
	for i := 0; i < nser; i++ {
		c.serQ = append(c.serQ, r.I64())
	}
	c.epoch = r.I64()
	c.halted = r.Bool()
	c.failed = r.Bool()
	c.faultArmed = r.Bool()
	c.faultBit = uint(r.U64())
	c.faultSeq = r.I64()
	c.FaultRetired = r.I64()
	c.FaultSquashed = r.I64()
	c.digestOn = r.Bool()
	c.digestCount = r.I64()
	c.digestTarget = r.I64()
	c.digestVal = r.U64()
	c.digestLatched = r.U64()
	c.digestDone = r.Bool()
	c.intervalCount = r.Int()
	c.intervalID = r.I64()
	c.loadsThisCycle = r.Int()
	c.storesThisCycle = r.Int()
	c.progress = r.Bool()
	c.volatileStall = r.Bool()
	c.idleSerStalls = r.I64()
	c.idleSBFull = r.I64()
	c.execStamp = r.I64()
	c.pollEvery = r.Bool()
	c.dirty = r.Bool()
	c.selfQuiet = r.Bool()
	c.selfWake = r.I64()
	c.devCount = r.I64()
	st := &c.Stats
	for _, v := range []*int64{&st.Committed, &st.CommittedLoads, &st.CommittedStores,
		&st.Mispredicts, &st.Serializing, &st.ITLBMisses, &st.DTLBMisses,
		&st.ROBOccupancy, &st.CheckOccupancy, &st.Cycles, &st.IssueStallSer,
		&st.SBFullStalls, &st.DevReads} {
		*v = r.I64()
	}
	s.l1d = cache.DecodeL1State(r)
	s.l1i = cache.DecodeL1State(r)
	s.itlb = tlb.DecodeTLBState(r)
	s.dtlb = tlb.DecodeTLBState(r)
	s.bp = bpred.DecodePredictorState(r)
	s.fp = fingerprint.NewGenState(r.U16())
	if r.Err() != nil {
		return nil
	}
	return s
}

// ResolveWaiters rebinds the decoded L1 MSHR waiters' completion closures
// (see cache.L1State.ResolveWaiters).
func (s *CoreState) ResolveWaiters(resolve func(*cache.CB) (func(uint64), func())) {
	s.l1d.ResolveWaiters(resolve)
	s.l1i.ResolveWaiters(resolve)
}

// BindTo fixes the snapshot's pointer fields from the live core and
// cross-checks identity and geometry, so Restore writes a struct whose
// wiring matches the system it restores onto.
func (s *CoreState) BindTo(live *Core) error {
	c := &s.core
	if c.ID != live.ID || c.Pair != live.Pair || c.Vocal != live.Vocal {
		return fmt.Errorf("cpu: core snapshot identity (%d,%d,%v) does not match core (%d,%d,%v)",
			c.ID, c.Pair, c.Vocal, live.ID, live.Pair, live.Vocal)
	}
	if len(c.rob) != len(live.rob) {
		return fmt.Errorf("cpu: core %d snapshot ROB size %d, live %d", c.ID, len(c.rob), len(live.rob))
	}
	if err := s.l1d.Validate(live.L1D); err != nil {
		return fmt.Errorf("core %d L1D: %w", c.ID, err)
	}
	if err := s.l1i.Validate(live.L1I); err != nil {
		return fmt.Errorf("core %d L1I: %w", c.ID, err)
	}
	if got, want := s.itlb.Entries(), live.ITLB.Snapshot().Entries(); got != want {
		return fmt.Errorf("cpu: core %d ITLB snapshot has %d entries, live %d", c.ID, got, want)
	}
	if got, want := s.dtlb.Entries(), live.DTLB.Snapshot().Entries(); got != want {
		return fmt.Errorf("cpu: core %d DTLB snapshot has %d entries, live %d", c.ID, got, want)
	}
	gc, gb := s.bp.Geometry()
	lc, lb := live.BP.Snapshot().Geometry()
	if gc != lc || gb != lb {
		return fmt.Errorf("cpu: core %d predictor snapshot geometry (%d,%d), live (%d,%d)", c.ID, gc, gb, lc, lb)
	}
	c.Cfg = live.Cfg
	c.EQ = live.EQ
	c.Thread = live.Thread
	c.L1D = live.L1D
	c.L1I = live.L1I
	c.ITLB = live.ITLB
	c.DTLB = live.DTLB
	c.BP = live.BP
	c.Gate = live.Gate
	c.fpGen = live.fpGen
	c.OnFaultFired = live.OnFaultFired
	return nil
}
