package cpu

import (
	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/tlb"
)

// offer moves executed instructions, in order, into the check stage: the
// TLB is consulted on the committed path, the fingerprint of the
// instruction's architectural updates is accumulated, and the gate is
// notified. Offered instructions keep their ROB entry until the gate
// releases them (the check-occupancy overhead of §5.2).
func (c *Core) offer() {
	now := c.EQ.Now()
	for n := 0; n < c.Cfg.RetireWidth; n++ {
		if c.offerIdx >= c.robCount || c.offerIdx >= c.Cfg.CheckQCap {
			return
		}
		e := &c.rob[c.robIdx(c.offerIdx)]
		if e.state != stDone {
			if e.state == stDispatched && e.Serializing {
				// The serializing instruction cannot even execute until
				// everything older retires; end the interval now.
				c.flushInterval(e.Seq - 1)
			}
			return
		}
		if !e.tlbChecked && !c.checkTLB(e, now) {
			// Stalled waiting to become the commit head (software TLB
			// handler): end the open interval so older instructions can
			// compare and retire.
			c.flushInterval(e.Seq - 1)
			return
		}
		if now < e.offerAfter {
			return
		}
		if e.Serializing && e.Seq != c.commitSeq {
			// A serializing instruction (including one made serializing by
			// a software TLB miss) enters check only once it is the
			// oldest unretired instruction; flush the interval ahead of it.
			c.flushInterval(e.Seq - 1)
			return
		}

		// Soft-error injection point: a transient flips a result bit in
		// the unprotected datapath before it reaches the check stage.
		if c.faultArmed && e.In.WritesReg() {
			e.Result ^= 1 << c.faultBit
			c.faultArmed = false
			c.faultSeq = e.Seq
			if c.OnFaultFired != nil {
				c.OnFaultFired()
			}
		}

		// Fingerprint the architectural updates (paper §4.3).
		in := e.In
		isStore := in.IsStore() || (in.IsAtomic() && e.casSuccess) || in.IsNonIdempotent()
		var stAddr, stData uint64
		switch {
		case in.IsStore():
			stAddr, stData = e.EA, uint64(e.src2)
		case in.IsAtomic():
			stAddr, stData = e.EA, uint64(e.casNew)
		case in.IsNonIdempotent():
			// Uncacheable accesses contribute their address (paper §4.4).
			stAddr, stData = e.EA, uint64(e.Result)
		}
		c.fpGen.Instruction(in.WritesReg(), in.Rd, e.Result,
			in.IsBranch(), e.Taken, e.Target, isStore, stAddr, stData)

		c.intervalCount++
		e.IntervalID = c.intervalID
		send := c.intervalCount >= c.Cfg.FPInterval ||
			e.Serializing || in.Op == isa.Halt || c.Gate.Stepping(c)
		var fp uint16
		if send {
			fp = c.fpGen.Value()
			c.fpGen.Reset()
			c.intervalCount = 0
			c.intervalID++
		}
		e.state = stOffered
		e.OfferedAt = now
		c.offerIdx++
		c.noteProgress()
		c.Gate.Offer(c, e, send, fp)
	}
}

// flushInterval ends the open comparison interval at endSeq (§4.4).
func (c *Core) flushInterval(endSeq int64) {
	if c.intervalCount == 0 {
		return
	}
	c.noteProgress()
	fp := c.fpGen.Value()
	c.fpGen.Reset()
	c.intervalCount = 0
	c.intervalID++
	c.Gate.FlushInterval(c, endSeq, fp)
}

// checkTLB performs the committed-path TLB inspection for an entry.
// Returns false if the offer must stall this cycle.
//
// TLB state is maintained on the committed stream so the vocal and mute
// TLBs of a pair stay exactly identical and software handlers fire at the
// same instruction on both cores (see package tlb). Hardware-managed
// misses charge a walk latency; software-managed misses make the
// instruction serializing and add the handler's compare exposures.
func (c *Core) checkTLB(e *Entry, now int64) bool {
	ipage := mem.PageOf(c.Thread.PCAddr(e.PC))
	var dpage uint64
	isMem := e.In.IsMem()
	if isMem {
		dpage = mem.PageOf(e.EA)
	}
	// The side-effect-free Probe pre-pass only matters under software
	// TLB management (a would-miss must stall until the entry is the
	// commit head); hardware walks never stall here, so skip the probes.
	if c.Cfg.TLB.Mode == tlb.Software && e.Seq != c.commitSeq {
		if !c.ITLB.Probe(ipage) || (isMem && !c.DTLB.Probe(dpage)) {
			// The software handler traps; it runs only with all older
			// instructions compared and retired.
			return false
		}
	}
	// Past the software-handler stall check, the entry's TLB state mutates
	// exactly once (tlbChecked latches below).
	c.noteProgress()
	misses := 0
	if !c.ITLB.Access(ipage) {
		c.Stats.ITLBMisses++
		misses++
	}
	if isMem && !c.DTLB.Access(dpage) {
		c.Stats.DTLBMisses++
		misses++
	}
	e.tlbChecked = true
	if misses == 0 {
		return true
	}
	if c.Cfg.TLB.Mode == tlb.Software {
		// UltraSPARC III fast miss handler: 2 traps + 3 non-idempotent MMU
		// accesses + handler body, all before this instruction retires.
		// The serializing compare exposures are charged by the gate; the
		// trap also flushes the pipeline, so younger instructions must not
		// issue until this instruction retires — raise the issue fence
		// (discovered at check time, so already-executing instructions
		// legitimately drain).
		e.SerialCount += c.Cfg.TLB.HandlerSerializers * misses
		e.ExtraCheck += c.Cfg.TLB.HandlerBody * int64(misses)
		// The trap flushes the pipeline: younger work is squashed and
		// refetched, and nothing younger issues until this retires.
		c.squashYounger(e)
		if !e.Serializing {
			e.Serializing = true
			if len(c.serQ) == 0 || c.serQ[0] != e.Seq {
				c.serQ = append([]int64{e.Seq}, c.serQ...)
			}
		}
		return true
	}
	// Hardware walk: fixed-latency refill delays the check.
	e.offerAfter = now + c.Cfg.TLB.WalkLatency*int64(misses)
	return now >= e.offerAfter
}

// finalize retires offered head instructions whose comparison the gate has
// released: results reach the architectural register file and stores move
// to the non-speculative store buffer (safe state, §4.3).
func (c *Core) finalize() {
	for n := 0; n < c.Cfg.RetireWidth; n++ {
		e := c.head()
		if e == nil || e.state != stOffered {
			return
		}
		if !c.Gate.FinalizeReady(c, e) {
			return
		}
		c.noteProgress()
		// Retirement changes everything a blocked evaluation can depend
		// on: architectural values, the serialize fence, the commit point.
		c.noteWake()
		in := e.In
		if in.WritesReg() && in.Rd != 0 {
			c.arf[in.Rd] = e.Result
		}
		switch {
		case in.IsStore():
			if s := c.sbFind(e.Seq); s != nil {
				s.nonspec = true
				c.sbNonspec++
			}
			c.Stats.CommittedStores++
		case in.IsAtomic():
			c.L1D.AtomicEnd(mem.BlockAddr(e.EA), wordIndex(e.EA), uint64(e.casNew), e.casSuccess)
		case in.IsLoad():
			c.Stats.CommittedLoads++
		case in.Op == isa.DevLd:
			c.Stats.DevReads++
			c.devCount++
		case in.Op == isa.Halt:
			c.halted = true
		}
		if e.Serializing {
			c.Stats.Serializing++
		}
		if in.Rd != 0 && in.WritesReg() {
			if ref := c.rename[in.Rd]; ref.valid && ref.seq == e.Seq {
				c.rename[in.Rd] = renameRef{}
			}
		}
		if len(c.serQ) > 0 && c.serQ[0] == e.Seq {
			c.serQ = c.serQ[1:]
		}
		if in.IsBranch() {
			c.commitPC = e.Target
		} else {
			c.commitPC = e.PC + 1
		}
		c.commitSeq = e.Seq + 1
		c.Stats.Committed++
		c.digestCommit(e)
		if c.faultSeq == e.Seq {
			c.FaultRetired++
			c.faultSeq = -1
		}

		e.state = stFree
		c.robHead = c.robIdx(1)
		c.robCount--
		c.offerIdx--
		if c.halted {
			return
		}
	}
}

// squashYounger flushes everything younger than e (branch misprediction,
// or a trap such as the software TLB miss handler) and redirects fetch to
// e's successor: the resolved target for branches, the next sequential
// instruction otherwise.
func (c *Core) squashYounger(e *Entry) {
	pos := -1
	for i := 0; i < c.robCount; i++ {
		if c.rob[c.robIdx(i)].Seq == e.Seq {
			pos = i
			break
		}
	}
	if pos < 0 {
		panic("cpu: squashYounger on entry not in ROB")
	}
	for i := pos + 1; i < c.robCount; i++ {
		idx := c.robIdx(i)
		c.rob[idx].state = stFree
		// A squashed consumer parked in the waiter chains must unlink
		// before its slot (or a surviving producer's chain) is reused.
		c.unregisterAll(idx)
	}
	c.robCount = pos + 1
	// The active list is seq-ordered, so the squashed entries form a
	// suffix. (Seq survives the state clear above; when called from the
	// issue scan the list may hold already-compacted duplicates below the
	// current position, but the backward scan stops at e before reaching
	// them.)
	n := len(c.active)
	for n > 0 && c.active[n-1].seq > e.Seq {
		n--
	}
	c.active = c.active[:n]
	c.noteWake() // squashed producers resolve dependents to the ARF
	if c.faultSeq > e.Seq {
		c.FaultSquashed++
		c.faultSeq = -1
	}
	c.rebuildRename()
	// Drop younger speculative stores.
	for i := 0; i < len(c.sb); i++ {
		if c.sb[i].seq > e.Seq {
			c.sb = c.sb[:i]
			break
		}
	}
	// Drop younger serializing fences.
	for i, s := range c.serQ {
		if s > e.Seq {
			c.serQ = c.serQ[:i]
			break
		}
	}
	c.fq = c.fq[:0]
	if e.In.IsBranch() {
		c.fetchPC = e.Target
	} else {
		c.fetchPC = e.PC + 1
	}
	c.fetchSeq = e.Seq + 1
	c.fetchHalted = false
	c.icacheWait = false
	c.haveIBlock = false
	c.fetchEpoch++
	c.epoch++
}

func (c *Core) rebuildRename() {
	c.rename = [isa.NumRegs]renameRef{}
	for i := 0; i < c.robCount; i++ {
		idx := c.robIdx(i)
		e := &c.rob[idx]
		if e.state != stFree && e.In.WritesReg() && e.In.Rd != 0 {
			c.rename[e.In.Rd] = renameRef{valid: true, rob: idx, seq: e.Seq}
		}
	}
}

// SquashAll performs precise-exception rollback to the committed state:
// the pipeline empties, speculative stores are discarded, and fetch
// restarts at the commit point. The non-speculative store buffer (safe
// state) is preserved and continues draining. Used by rollback recovery
// (Definition 8).
func (c *Core) SquashAll() {
	c.dirty = true // invoked from recovery (event context)
	c.noteWake()
	for i := 0; i < c.robCount; i++ {
		c.rob[c.robIdx(i)].state = stFree
	}
	if c.faultSeq >= 0 {
		c.FaultSquashed++
		c.faultSeq = -1
	}
	c.robCount = 0
	c.offerIdx = 0
	c.active = c.active[:0]
	c.initWaiters() // the whole window is gone; empty every chain
	c.rename = [isa.NumRegs]renameRef{}
	// Keep only non-speculative stores.
	keep := c.sb[:0]
	for i := range c.sb {
		if c.sb[i].nonspec {
			keep = append(keep, c.sb[i])
		}
	}
	c.sb = keep
	c.sbNonspec = len(keep)
	c.fq = c.fq[:0]
	c.inExec = c.inExec[:0]
	c.serQ = c.serQ[:0]
	c.fetchPC = c.commitPC
	c.fetchSeq = c.commitSeq
	c.fetchHalted = false
	c.icacheWait = false
	c.haveIBlock = false
	c.fetchEpoch++
	c.epoch++
	c.L1D.UnlockAll()
	c.fpGen.Reset()
	c.intervalCount = 0
	c.intervalID++
}
