package cpu

// This file implements the core's side of the sim.Tickable quiescence
// contract. The invariant the fast-forward kernel relies on: after a Tick
// in which no stage changed state (progress false) and no self-clearing
// structural blocker was seen (volatileStall false), re-ticking the core
// is a no-op except for the per-cycle accounting AccountIdle replays —
// until either a scheduled event fires (a cache fill, a comparison
// decision, an interrupt boundary) or one of the known latencies below
// expires. Every time-dependent condition in the pipeline is enumerated
// here; anything not enumerated must resolve through an event or through
// another component's activity, both of which end a fast-forward.

// QuiesceWake implements sim.Tickable: the verdict latched by the last
// full Tick (still valid across self-tick short-circuits, which change
// nothing).
func (c *Core) QuiesceWake() (int64, bool) {
	if c.halted {
		return 0, true // Tick returns immediately on a halted core
	}
	return c.selfWake, c.selfQuiet
}

// computeWake enumerates the pipeline's time-triggered conditions after a
// tick with no progress and no volatile blocker, returning the earliest
// future cycle one of them fires (0 = only an event can wake the core).
func (c *Core) computeWake() int64 {
	now := c.EQ.Now()
	wake := int64(0)
	upd := func(t int64) {
		if t > now && (wake == 0 || t < wake) {
			wake = t
		}
	}

	// Execution completions: entries with a known finish cycle transition
	// to Done in completeExec at that cycle. Entries without one wait on a
	// fill callback (an event).
	for _, idx := range c.inExec {
		e := &c.rob[idx]
		if e.state == stIssued && e.hasDoneAt {
			upd(e.doneAt)
		}
	}

	// Front end: the oldest fetched slot dispatches once its front-depth
	// delay elapses. A stale readyAt with dispatch structurally blocked is
	// filtered by upd (waking early would only hit a no-op tick anyway).
	if len(c.fq) > 0 {
		upd(c.fq[0].readyAt)
	}

	// Check entry: a hardware TLB walk delays the offer to a known cycle.
	if c.offerIdx < c.robCount && c.offerIdx < c.Cfg.CheckQCap {
		if e := &c.rob[c.robIdx(c.offerIdx)]; e.state == stDone && e.tlbChecked {
			upd(e.offerAfter)
		}
	}

	// Retirement: the gate knows when a pending comparison decision
	// completes. 0 means the decision itself waits on an event.
	if h := c.head(); h != nil && h.state == stOffered {
		upd(c.Gate.RetireWake(c, h))
	}

	return wake
}

// AccountIdle implements sim.Tickable: the per-cycle accounting n skipped
// quiescent cycles would have accrued. The occupancy integrals use the
// current (frozen) window state; the stall rates were recorded by the last
// real Tick and are constant while the core is quiescent.
func (c *Core) AccountIdle(n int64) {
	if c.halted {
		return
	}
	c.Stats.Cycles += n
	c.Stats.ROBOccupancy += n * int64(c.robCount)
	c.Stats.CheckOccupancy += n * int64(c.offerIdx)
	c.Stats.IssueStallSer += n * c.idleSerStalls
	c.Stats.SBFullStalls += n * c.idleSBFull
}
