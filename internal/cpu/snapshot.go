package cpu

import (
	"reunion/internal/bpred"
	"reunion/internal/cache"
	"reunion/internal/fingerprint"
	"reunion/internal/tlb"
)

// This file implements the core's side of the checkpoint subsystem (see
// the reunion package's System.Snapshot). The pattern used throughout the
// simulator: a snapshot is a shallow copy of the component struct — which
// automatically captures every scalar field, present and future — plus
// explicit deep copies of the reference-typed fields (slices, maps,
// nested components). Restore writes the shallow copy back into the same
// object (pointer fields carry the same pointers, so identity is
// preserved) and then re-copies every reference field out of the
// snapshot, so one snapshot restores any number of times.
//
// When adding a field to Core: a scalar needs nothing; a slice, map, or
// mutable pointee must be added to both the deep-copy list in Snapshot
// and the copy-out list in Restore (the snapshot equivalence tests catch
// a forgotten one as a bit-level divergence).

// CoreState is a checkpoint of one core and the private structures it
// owns: pipeline and architectural state, both L1s, both TLBs, the branch
// predictor, and the fingerprint generator.
type CoreState struct {
	core Core // shallow copy; slices fixed up below

	l1d, l1i   *cache.L1State
	itlb, dtlb *tlb.TLBState
	bp         *bpred.PredictorState
	fp         fingerprint.GenState
}

// Snapshot captures the core's complete mutable state. Read-only.
func (c *Core) Snapshot() *CoreState {
	s := &CoreState{
		core: *c,
		l1d:  c.L1D.Snapshot(),
		l1i:  c.L1I.Snapshot(),
		itlb: c.ITLB.Snapshot(),
		dtlb: c.DTLB.Snapshot(),
		bp:   c.BP.Snapshot(),
		fp:   c.fpGen.Snapshot(),
	}
	s.core.fq = append([]fqSlot(nil), c.fq...)
	s.core.rob = append([]Entry(nil), c.rob...)
	s.core.inExec = append([]int(nil), c.inExec...)
	s.core.sb = append([]sbEntry(nil), c.sb...)
	s.core.serQ = append([]int64(nil), c.serQ...)
	// Derived issue-stage state: rebuilt from the ROB on restore.
	s.core.active = nil
	s.core.waiterHead = nil
	s.core.wNext = nil
	s.core.wPrev = nil
	s.core.wProd = nil
	s.core.wakeBuf = nil
	return s
}

// Restore rewrites the core from a snapshot. The in-flight completion
// callbacks held by the restored L1 MSHRs (and by pending events) capture
// only ROB indices, seq/epoch guard values, and the core pointer itself,
// so they remain valid against the restored window.
func (c *Core) Restore(s *CoreState) {
	*c = s.core
	c.fq = append([]fqSlot(nil), s.core.fq...)
	c.rob = append([]Entry(nil), s.core.rob...)
	c.inExec = append([]int(nil), s.core.inExec...)
	c.sb = append([]sbEntry(nil), s.core.sb...)
	c.serQ = append([]int64(nil), s.core.serQ...)
	c.rebuildDerived()
	c.L1D.Restore(s.l1d)
	c.L1I.Restore(s.l1i)
	c.ITLB.Restore(s.itlb)
	c.DTLB.Restore(s.dtlb)
	c.BP.Restore(s.bp)
	c.fpGen.Restore(s.fp)
}
