package cpu

import (
	"reunion/internal/cache"
	"reunion/internal/isa"
	"reunion/internal/mem"
)

// Tick advances the core by one cycle. Stages run back-to-front so an
// instruction moves at most one stage per cycle.
//
// Under the fast-forward kernel a core that proved itself quiescent on
// its previous full tick — and has not been dirtied by an event or
// reached its self-wake cycle since — short-circuits to the idle
// accounting a full quiescent tick would perform. This is what makes a
// one-active-core phase cheap: the stalled cores tick in O(1) instead of
// re-scanning their windows.
func (c *Core) Tick() {
	if c.halted {
		return
	}
	if c.selfQuiet && !c.pollEvery && !c.dirty &&
		(c.selfWake == 0 || c.EQ.Now() < c.selfWake) {
		c.AccountIdle(1)
		return
	}
	c.dirty = false
	c.Stats.Cycles++
	c.Stats.ROBOccupancy += int64(c.robCount)
	c.Stats.CheckOccupancy += int64(c.offerIdx)
	c.loadsThisCycle, c.storesThisCycle = 0, 0
	c.progress, c.volatileStall = false, false
	c.idleSerStalls, c.idleSBFull = 0, 0

	c.finalize()
	c.offer()
	c.completeExec()
	c.issue()
	c.drainSB()
	c.dispatch()
	c.fetch()

	c.selfQuiet = !c.progress && !c.volatileStall
	if c.selfQuiet {
		c.selfWake = c.computeWake()
	}
}

// --- fetch ----------------------------------------------------------------

func (c *Core) fetch() {
	if c.fetchHalted || c.icacheWait {
		return
	}
	stepping := c.Gate.Stepping(c)
	if stepping && (c.robCount > 0 || len(c.fq) > 0 || len(c.sb) > 0) {
		// Single-step: one instruction in flight at a time, and the store
		// buffer fully drained between steps. Draining keeps the two
		// cores' forwarding state identical, so both members of the pair
		// make the same synchronizing-request decision at the first load.
		return
	}
	now := c.EQ.Now()
	width := c.Cfg.FetchWidth
	if stepping {
		width = 1
	}
	for n := 0; n < width && len(c.fq) < c.Cfg.FetchQCap; n++ {
		in, ok := c.Thread.Fetch(c.fetchPC)
		if !ok {
			return // wild PC (divergent speculation); stall until redirect
		}
		// Instruction cache access, one lookup per block transition.
		block := mem.BlockAddr(c.Thread.PCAddr(c.fetchPC))
		if !c.haveIBlock || block != c.curIBlock {
			// Hit fast path first: the descriptor and completion closure
			// are only needed when a miss leaves a callback behind.
			if _, hit := c.L1I.TryLoad(block, 0); !hit {
				epoch := c.fetchEpoch
				cb := &cache.CB{Kind: cache.CBIfetchDone, Core: c.ID, Epoch: epoch}
				switch c.L1I.IfetchD(block, cb, c.IfetchDoneFn(epoch)) {
				case cacheRetry:
					c.volatileStall = true
					return
				case cacheMiss:
					c.icacheWait = true
					c.noteProgress()
					return
				}
			}
			c.curIBlock = block
			c.haveIBlock = true
			c.noteProgress()
		}
		slot := fqSlot{seq: c.fetchSeq, pc: c.fetchPC, in: in, readyAt: now + c.Cfg.FrontDepth}
		taken := false
		switch {
		case in.IsCondBranch():
			t, _, _ := c.BP.Predict(c.fetchPC)
			slot.predTaken = t
			slot.predTarget = in.Imm // direct target, known at decode
			taken = t
		case in.Op == isa.Jmp:
			slot.predTaken = true
			slot.predTarget = in.Imm
			taken = true
		case in.Op == isa.Jr:
			_, tgt, ok := c.BP.Predict(c.fetchPC)
			slot.predTaken = true
			if ok {
				slot.predTarget = tgt
			} else {
				slot.predTarget = -1 // unknown; resolves as mispredict
			}
			taken = true
		}
		c.fq = append(c.fq, slot)
		c.fetchSeq++
		c.noteProgress()
		if in.Op == isa.Halt {
			c.fetchHalted = true
			return
		}
		if taken {
			if slot.predTarget < 0 {
				// Unknown indirect target: stall fetch; the branch
				// resolves as a mispredict and redirects.
				c.fetchPC = -1
				c.haveIBlock = false
				return
			}
			c.fetchPC = slot.predTarget
			c.haveIBlock = false
			return // taken branch ends the fetch group
		}
		c.fetchPC++
	}
}

// --- dispatch ---------------------------------------------------------------

func (c *Core) dispatch() {
	now := c.EQ.Now()
	for n := 0; n < c.Cfg.DispatchWidth; n++ {
		if len(c.fq) == 0 || c.fq[0].readyAt > now {
			return
		}
		if c.robCount >= len(c.rob) {
			return
		}
		slot := c.fq[0]
		if slot.in.IsStore() && !c.sbHasRoom() {
			c.Stats.SBFullStalls++
			c.idleSBFull++
			return
		}
		copy(c.fq, c.fq[1:])
		c.fq = c.fq[:len(c.fq)-1]
		c.noteProgress()

		idx := c.robIdx(c.robCount)
		e := &c.rob[idx]
		*e = Entry{
			Seq: slot.seq, PC: slot.pc, In: slot.in, Epoch: c.epoch,
			state:      stDispatched,
			predTaken:  slot.predTaken,
			predTarget: slot.predTarget,
			src1Rob:    -1, src2Rob: -1, src3Rob: -1,
		}
		c.robCount++

		in := slot.in
		if in.ReadsRs1() {
			c.captureSource(e, in.Rs1, &e.src1, &e.src1Rob, &e.src1Seq, &e.src1Reg, &e.src1Ready)
		} else {
			e.src1Ready = true
		}
		if in.ReadsRs2() {
			c.captureSource(e, in.Rs2, &e.src2, &e.src2Rob, &e.src2Seq, &e.src2Reg, &e.src2Ready)
		} else {
			e.src2Ready = true
		}
		if in.ReadsRdAsSource() {
			c.captureSource(e, in.Rd, &e.src3, &e.src3Rob, &e.src3Seq, &e.src3Reg, &e.src3Ready)
		} else {
			e.src3Ready = true
		}
		if in.WritesReg() && in.Rd != 0 {
			c.rename[in.Rd] = renameRef{valid: true, rob: idx, seq: e.Seq}
		}
		if in.IsStore() {
			c.sb = append(c.sb, sbEntry{seq: e.Seq})
		}
		e.Serializing = in.IsSerializing() || (c.Cfg.Consistency == SC && in.IsStore())
		if e.Serializing {
			c.serQ = append(c.serQ, e.Seq)
		}
		// A fresh entry carries no park memo, so the first scan always
		// evaluates it. It is the youngest in flight, so appending keeps
		// the list seq-ordered.
		c.active = append(c.active, dispEntry{seq: e.Seq, stamp: -1, idx: int32(idx)})
	}
}

func (c *Core) sbHasRoom() bool { return len(c.sb) < c.Cfg.SBSize }

func (c *Core) captureSource(e *Entry, reg uint8, val *int64, rob *int, seq *int64, regOut *uint8, ready *bool) {
	*regOut = reg
	if reg == 0 {
		*val, *ready = 0, true
		return
	}
	ref := c.rename[reg]
	if !ref.valid {
		*val, *ready = c.arf[reg], true
		return
	}
	p := &c.rob[ref.rob]
	if p.Seq == ref.seq && (p.state == stDone || p.state == stOffered) {
		*val, *ready = p.Result, true
		return
	}
	if p.Seq != ref.seq || p.state == stFree {
		// Producer already retired; the value is architectural.
		*val, *ready = c.arf[reg], true
		return
	}
	*rob, *seq, *ready = ref.rob, ref.seq, false
}

// --- issue and execute ------------------------------------------------------

// serializeFence returns the seq of the oldest in-flight serializing
// instruction, or -1.
func (c *Core) serializeFence() int64 {
	if len(c.serQ) == 0 {
		return -1
	}
	return c.serQ[0]
}

// issue walks the active list (the stDispatched entries the scan can act
// on, in age order) rather than the whole ROB ring: in reunion mode the
// window is dominated by offered entries awaiting comparison, and under
// the fast-forward kernel operand-blocked entries sit in the waiter
// chains rather than the list. The list is compacted in place; entries
// that begin execution drop out, entries that park on pending operands
// drop into the waiter chains, and a tail cut off by the serialize fence
// or the issue width is preserved unexamined.
func (c *Core) issue() {
	if len(c.active) == 0 {
		return
	}
	// Whole-scan memo: a previous scan proved every entry parked at this
	// wake stamp, and the list has not changed since — nothing to do.
	if !c.pollEvery && c.issueIdleLen == len(c.active) && c.issueIdleStamp == c.execStamp {
		return
	}
	now := c.EQ.Now()
	fence := c.serializeFence()
	issued := 0
	allParked := true
	keep, i := 0, 0
	for ; i < len(c.active) && issued < c.Cfg.IssueWidth; i++ {
		d := c.active[i]
		if fence >= 0 && d.seq > fence {
			break // nothing younger than an unretired serializing instr executes
		}
		// Quiet-park memo (fast-forward kernel): a listed entry blocked on
		// memory disambiguation is skipped — without touching its ROB
		// entry — until any wake-worthy state change. Ready-but-stalled
		// serializing entries carry no memo (their stall accrues a
		// per-cycle statistic below).
		if !c.pollEvery && d.stamp == c.execStamp {
			if keep != i {
				c.active[keep] = d
			}
			keep++
			continue
		}
		idx := int(d.idx)
		e := &c.rob[idx]
		if e.state != stDispatched {
			allParked = false // the list shrinks; revalidate next scan
			continue          // left the dispatched state mid-scan; drop
		}
		// Operand poll, inlined (this is the hottest code in the core).
		if !e.src1Ready {
			p := &c.rob[e.src1Rob]
			if p.Seq == e.src1Seq && (p.state == stDone || p.state == stOffered) {
				e.src1, e.src1Ready = p.Result, true
			} else if p.Seq != e.src1Seq || p.state == stFree {
				e.src1, e.src1Ready = c.arf[e.src1Reg], true
			}
		}
		if !e.src2Ready {
			p := &c.rob[e.src2Rob]
			if p.Seq == e.src2Seq && (p.state == stDone || p.state == stOffered) {
				e.src2, e.src2Ready = p.Result, true
			} else if p.Seq != e.src2Seq || p.state == stFree {
				e.src2, e.src2Ready = c.arf[e.src2Reg], true
			}
		}
		if !e.src3Ready {
			p := &c.rob[e.src3Rob]
			if p.Seq == e.src3Seq && (p.state == stDone || p.state == stOffered) {
				e.src3, e.src3Ready = p.Result, true
			} else if p.Seq != e.src3Seq || p.state == stFree {
				e.src3, e.src3Ready = c.arf[e.src3Reg], true
			}
		}
		if !e.src1Ready || !e.src2Ready || !e.src3Ready {
			// Operand park: every still-unready producer is pending (the
			// poll above would have captured any other), so the entry
			// leaves the list and chains onto each of them; the first
			// completion re-inserts it — exactly when a re-poll would
			// first capture a value. Parking writes nothing to the ROB
			// entry, so it still counts toward an all-parked idle scan.
			// The naive kernel parks nothing and re-polls next cycle.
			if !c.pollEvery {
				if !e.src1Ready {
					c.register(idx, e.src1Rob, 0)
				}
				if !e.src2Ready {
					c.register(idx, e.src2Rob, 1)
				}
				if !e.src3Ready {
					c.register(idx, e.src3Rob, 2)
				}
				continue // dropped from the list
			}
			if keep != i {
				c.active[keep] = d
			}
			keep++
			continue
		}
		if e.Serializing {
			// Serializing semantics: execute only at the head, after all
			// older instructions have been compared and retired, with the
			// non-speculative store buffer drained.
			if e.Seq != c.commitSeq || c.sbNonspec > 0 {
				c.Stats.IssueStallSer++
				c.idleSerStalls++
				allParked = false // the stall statistic accrues per cycle
				if keep != i {
					c.active[keep] = d
				}
				keep++
				continue
			}
		}
		allParked = false
		res := c.execute(idx, e, now)
		// execute can squash: a mispredicted branch prunes the list's
		// suffix (leaving this entry at position i), and a rollback
		// recovery reached through the gate's synchronizing-request path
		// clears the whole window — and with it this list — out from
		// under the scan. In the latter case the cleared list is already
		// authoritative: apply the result's side effects and stop.
		cleared := len(c.active) <= i
		switch res {
		case execOK:
			// Began execution: drop from the list.
			issued++
			c.noteProgress()
		case execQuiet:
			if !cleared {
				d.stamp = c.execStamp
				c.active[keep] = d
				keep++
			}
		case execVolatile:
			c.volatileStall = true
			if !cleared {
				c.active[keep] = d
				keep++
			}
		}
		if cleared {
			return
		}
	}
	// Preserve the unexamined tail, shifted left over dropped entries.
	keep += copy(c.active[keep:], c.active[i:])
	c.active = c.active[:keep]
	// Record a proven-idle scan: every examined entry is parked on the
	// current wake stamp and nothing mutated core state, so the scan can be
	// skipped wholesale until the stamp or the list changes. A tail cut off
	// by the serialize fence stays blocked until a retire bumps the stamp,
	// so it does not invalidate the memo.
	if !c.pollEvery && allParked {
		c.issueIdleLen = len(c.active)
		c.issueIdleStamp = c.execStamp
	} else {
		c.issueIdleLen = -1
	}
}

func (c *Core) sbSpecCount() int { return len(c.sb) - c.sbNonspec }

// execResult classifies an execute attempt for the issue stage.
type execResult uint8

const (
	// execOK: the entry consumed an issue slot and began execution.
	execOK execResult = iota
	// execQuiet: blocked on a condition only another state change can
	// cure (memory disambiguation); skip until the core's state changes.
	execQuiet
	// execVolatile: blocked on a per-cycle structural resource (a cache
	// port or an L1 retry); must be re-attempted next cycle.
	execVolatile
)

// execute begins execution of a ready entry.
func (c *Core) execute(idx int, e *Entry, now int64) execResult {
	in := e.In
	switch {
	case in.IsBranch():
		e.Taken = in.BranchTaken(e.src1, e.src2)
		switch in.Op {
		case isa.Jmp:
			e.Target = in.Imm
		case isa.Jr:
			e.Target = e.src1
		default:
			e.Target = in.Imm
		}
		if !e.Taken {
			e.Target = e.PC + 1
		}
		c.BP.Update(e.PC, e.Taken, e.Target, in.IsCondBranch())
		mispred := e.Taken != e.predTaken || (e.Taken && e.Target != e.predTarget)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+1, true
		c.inExec = append(c.inExec, idx)
		if mispred {
			c.Stats.Mispredicts++
			c.BP.Mispredicts++
			c.squashYounger(e)
		}
		return execOK

	case in.IsLoad():
		return c.executeLoad(idx, e, now)

	case in.IsStore():
		if c.storesThisCycle >= c.Cfg.L1StorePorts {
			return execVolatile
		}
		addr := uint64(e.src1 + in.Imm)
		e.EA = addr
		sbe := c.sbFind(e.Seq)
		if sbe == nil {
			panic("cpu: store without SB entry")
		}
		sbe.block = mem.BlockAddr(addr)
		sbe.word = wordIndex(addr)
		sbe.data = uint64(e.src2)
		sbe.addrReady = true
		c.noteWake() // younger loads blocked on disambiguation may proceed
		e.Result = 0
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+1, true
		c.inExec = append(c.inExec, idx)
		return execOK

	case in.IsAtomic():
		return c.executeAtomic(idx, e, now)

	case in.Op == isa.Trap:
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.TrapLatency, true
		c.inExec = append(c.inExec, idx)
		return execOK

	case in.Op == isa.DevLd:
		addr := uint64(e.src1 + in.Imm)
		e.EA = addr
		e.Result = c.Gate.DeviceRead(c, addr, c.devCount)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.DevLatency, true
		c.inExec = append(c.inExec, idx)
		return execOK

	case in.Op == isa.DevSt:
		e.EA = uint64(e.src1 + in.Imm)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.DevLatency, true
		c.inExec = append(c.inExec, idx)
		return execOK

	case in.Op == isa.Membar, in.Op == isa.Nop, in.Op == isa.Halt:
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+1, true
		c.inExec = append(c.inExec, idx)
		return execOK

	default: // ALU
		e.Result = in.ALUResult(e.src1, e.src2)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+in.ExecLatency(), true
		c.inExec = append(c.inExec, idx)
		return execOK
	}
}

func (c *Core) executeLoad(idx int, e *Entry, now int64) execResult {
	addr := uint64(e.src1 + e.In.Imm)
	e.EA = addr
	block := mem.BlockAddr(addr)
	word := wordIndex(addr)

	// Memory disambiguation (conservative): wait until every older store
	// has computed its address, then forward from the youngest matching
	// store-buffer entry if any.
	youngest := -1
	for i := range c.sb {
		s := &c.sb[i]
		if s.seq >= e.Seq {
			break
		}
		if !s.addrReady {
			// An older store's address is pending; only that store's
			// execution (a state change) can unblock this load.
			return execQuiet
		}
		if s.block == block && s.word == word {
			youngest = i
		}
	}
	if youngest >= 0 {
		e.Result = int64(c.sb[youngest].data)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+1, true
		c.inExec = append(c.inExec, idx)
		return execOK
	}

	if c.loadsThisCycle >= c.Cfg.L1LoadPorts {
		return execVolatile
	}

	// Re-execution protocol: the first load after rollback issues a
	// synchronizing request instead of a normal access (Definition 11).
	if c.Gate.SyncArmed(c) && !e.syncIssued {
		sseq, sepoch := e.Seq, e.Epoch
		scb := &cache.CB{Kind: cache.CBLoadDone, Core: c.ID, Idx: idx, Seq: sseq, Epoch: sepoch}
		if !c.Gate.SyncIssue(c, block, word, false, scb, c.LoadDoneFn(idx, sseq, sepoch)) {
			return execVolatile
		}
		e.syncIssued = true
		e.state = stIssued
		e.hasDoneAt = false
		c.inExec = append(c.inExec, idx)
		return execOK
	}

	c.loadsThisCycle++
	// Hit fast path: no descriptor or completion closure to build.
	if val, hit := c.L1D.TryLoad(block, word); hit {
		e.Result = int64(val)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.LoadToUse, true
		c.inExec = append(c.inExec, idx)
		return execOK
	}
	seq, epoch := e.Seq, e.Epoch
	cb := &cache.CB{Kind: cache.CBLoadDone, Core: c.ID, Idx: idx, Seq: seq, Epoch: epoch}
	status, val := c.L1D.LoadD(block, word, cb, c.LoadDoneFn(idx, seq, epoch))
	switch status {
	case cacheHit:
		e.Result = int64(val)
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.LoadToUse, true
		c.inExec = append(c.inExec, idx)
	case cacheMiss:
		e.state = stIssued
		e.hasDoneAt = false
		c.inExec = append(c.inExec, idx)
	case cacheRetry:
		return execVolatile
	}
	return execOK
}

func (c *Core) executeAtomic(idx int, e *Entry, now int64) execResult {
	addr := uint64(e.src1)
	e.EA = addr
	block := mem.BlockAddr(addr)
	word := wordIndex(addr)

	seq, epoch := e.Seq, e.Epoch

	// Re-execution protocol: an atomic as the first memory operation after
	// rollback uses the synchronizing request (Definition 11).
	if c.Gate.SyncArmed(c) && !e.syncIssued {
		scb := &cache.CB{Kind: cache.CBAtomicFin, Core: c.ID, Idx: idx, Seq: seq, Epoch: epoch, Block: block, Word: word}
		if !c.Gate.SyncIssue(c, block, word, true, scb, c.AtomicFinishFn(idx, seq, epoch, block, word)) {
			return execVolatile
		}
		e.syncIssued = true
		e.state = stIssued
		e.hasDoneAt = false
		c.inExec = append(c.inExec, idx)
		return execOK
	}

	// Hit fast path: no descriptor or completion closure to build.
	if old, hit := c.L1D.TryAtomicBegin(block, word); hit {
		e.Result = int64(old)
		e.casSuccess = int64(old) == e.src3
		e.casNew = e.src2
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.LoadToUse, true
		c.inExec = append(c.inExec, idx)
		return execOK
	}

	cb := &cache.CB{Kind: cache.CBAtomicBegin, Core: c.ID, Idx: idx, Seq: seq, Epoch: epoch, Block: block, Word: word}
	status, old := c.L1D.AtomicBeginD(block, word, cb, c.AtomicFinishFn(idx, seq, epoch, block, word))
	switch status {
	case cacheHit:
		e.Result = int64(old)
		e.casSuccess = int64(old) == e.src3
		e.casNew = e.src2
		e.state = stIssued
		e.doneAt, e.hasDoneAt = now+c.Cfg.LoadToUse, true
		c.inExec = append(c.inExec, idx)
	case cacheMiss:
		e.state = stIssued
		e.hasDoneAt = false
		c.inExec = append(c.inExec, idx)
	case cacheRetry:
		return execVolatile
	}
	return execOK
}

// completeExec moves executing entries whose latency elapsed to Done.
func (c *Core) completeExec() {
	now := c.EQ.Now()
	out := c.inExec[:0]
	for _, idx := range c.inExec {
		e := &c.rob[idx]
		if e.state != stIssued {
			continue // squashed
		}
		if e.hasDoneAt && e.doneAt <= now {
			e.state = stDone
			c.wakeWaiters(idx) // relist operand-parked dependents
			c.noteProgress()
			c.noteWake() // dependents' operands may now be ready
			continue
		}
		out = append(out, idx)
	}
	c.inExec = out
}

// --- store buffer -----------------------------------------------------------

func (c *Core) sbFind(seq int64) *sbEntry {
	for i := range c.sb {
		if c.sb[i].seq == seq {
			return &c.sb[i]
		}
	}
	return nil
}

// drainSB writes the oldest non-speculative store to the L1D (TSO: in
// order, one outstanding).
func (c *Core) drainSB() {
	if c.sbDraining || len(c.sb) == 0 || c.storesThisCycle >= c.Cfg.L1StorePorts {
		return
	}
	s := &c.sb[0]
	if !s.nonspec || s.draining {
		return
	}
	c.storesThisCycle++
	seq := s.seq
	// Hit fast path: complete synchronously, no closure or descriptor.
	if c.L1D.TryStore(s.block, s.word, s.data) {
		c.storeDone(seq)
		c.noteProgress()
		return
	}
	cb := &cache.CB{Kind: cache.CBStoreDone, Core: c.ID, Seq: seq}
	switch c.L1D.StoreD(s.block, s.word, s.data, cb, c.StoreDoneFn(seq)) {
	case cacheHit:
		c.storeDone(seq)
		c.noteProgress()
	case cacheMiss:
		s.draining = true
		c.sbDraining = true
		c.noteProgress()
	case cacheRetry:
		// try again next cycle
		c.volatileStall = true
	}
}

// Aliases to keep cache package names short here.
const (
	cacheHit   = 0
	cacheMiss  = 1
	cacheRetry = 2
)
