// Package cpu implements the out-of-order processor core of the simulated
// CMP: the simplified pipeline of the paper's Figure 3 — in-order fetch and
// decode, out-of-order issue/execute/writeback against a 256-entry RUU-style
// reorder buffer, a two-region (speculative/non-speculative) store buffer,
// and in-order retirement stages.
//
// For redundant execution models, retirement is split exactly as in
// Figure 3(b): instructions first pass mis-speculation detection, then
// enter an in-order *check* stage where a fingerprint of their
// architectural updates is generated and exchanged with the partner core,
// and only after a matching comparison do they retire to the architectural
// register file and non-speculative store buffer. Instructions occupy
// their ROB entry until the comparison completes, which is the resource-
// occupancy overhead the paper measures; serializing instructions stall
// issue of younger instructions until they retire, which is the
// serializing overhead.
//
// The core is fully functional: register values, memory values and branch
// outcomes are real, so a vocal/mute pair detects genuine divergence.
package cpu

import (
	"fmt"

	"reunion/internal/bpred"
	"reunion/internal/cache"
	"reunion/internal/fingerprint"
	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
	"reunion/internal/tlb"
)

// Consistency selects the memory consistency model.
type Consistency uint8

// Consistency models.
const (
	// TSO (Sun total store order): stores drain lazily from the
	// non-speculative store buffer; MEMBAR drains and serializes.
	TSO Consistency = iota
	// SC (sequential consistency): every store carries memory-barrier
	// semantics and therefore serializes retirement (paper §5.5).
	SC
)

// String names the consistency model.
func (c Consistency) String() string {
	if c == SC {
		return "SC"
	}
	return "TSO"
}

// Config holds per-core microarchitecture parameters (defaults per
// Table 1 live in the public reunion package).
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	RetireWidth   int
	ROBSize       int
	SBSize        int
	FetchQCap     int
	CheckQCap     int   // max instructions in check (offered, unretired)
	LoadToUse     int64 // L1D hit latency
	FrontDepth    int64 // fetch-to-dispatch stages (redirect penalty)
	L1LoadPorts   int
	L1StorePorts  int
	TrapLatency   int64 // trap service body
	DevLatency    int64 // uncached device access latency
	Consistency   Consistency
	FPMode        fingerprint.Mode
	FPInterval    int // instructions per fingerprint/comparison interval

	TLB TLBPolicy
}

// TLBPolicy configures TLB management (paper §5.5).
type TLBPolicy struct {
	Mode        tlb.Mode
	WalkLatency int64 // hardware-managed page walk
	HandlerBody int64 // software handler non-serializing work
	// HandlerSerializers counts serializing events inside the software
	// handler: trap entry + three non-idempotent MMU accesses + trap
	// return = 5 for the UltraSPARC III fast miss handler.
	HandlerSerializers int
}

type entryState uint8

const (
	stFree entryState = iota
	stDispatched
	stIssued
	stDone
	stOffered
)

// Entry is one ROB (RUU) entry.
type Entry struct {
	Seq   int64
	PC    int64
	In    isa.Instr
	Epoch int64

	state entryState

	// Operand capture (RUU style): each source is either a ready value or
	// a reference to the producing ROB entry, guarded by the producer's
	// Seq against slot reuse.
	src1, src2, src3                int64
	src1Rob, src2Rob, src3Rob       int
	src1Seq, src2Seq, src3Seq       int64
	src1Reg, src2Reg, src3Reg       uint8
	src1Ready, src2Ready, src3Ready bool

	// Branch prediction state.
	predTaken  bool
	predTarget int64

	// Execution results.
	Result    int64
	Taken     bool
	Target    int64
	EA        uint64
	doneAt    int64
	hasDoneAt bool

	// CAS bookkeeping.
	casSuccess bool
	casNew     int64

	// Synchronizing-request bookkeeping (re-execution protocol).
	syncIssued bool

	// Check-stage state.
	Serializing bool  // ISA- or consistency-model-serializing
	IntervalID  int64 // comparison interval this entry belongs to
	ExtraCheck  int64 // additional compare exposure (software TLB handler)
	SerialCount int   // serializing compare exposures beyond the first
	OfferedAt   int64 // cycle the entry entered check
	tlbChecked  bool
	offerAfter  int64
}

type fqSlot struct {
	seq        int64
	pc         int64
	in         isa.Instr
	predTaken  bool
	predTarget int64
	readyAt    int64
}

type sbEntry struct {
	seq       int64
	block     uint64
	word      int
	data      uint64
	addrReady bool
	nonspec   bool
	draining  bool
}

// Stats are per-core counters. Reset at measurement boundaries.
type Stats struct {
	Committed       int64 // user instructions retired to architectural state
	CommittedLoads  int64
	CommittedStores int64
	Mispredicts     int64
	Serializing     int64 // serializing instructions committed
	ITLBMisses      int64
	DTLBMisses      int64
	ROBOccupancy    int64 // summed per cycle
	CheckOccupancy  int64 // offered-unretired summed per cycle
	Cycles          int64
	IssueStallSer   int64 // cycles an issuable instruction waited on a serializing fence
	SBFullStalls    int64
	DevReads        int64
}

// Gate decides when offered instructions may architecturally retire. It is
// the seam between the core pipeline and the execution model (non-
// redundant, strict, or Reunion pair) implemented in internal/core.
type Gate interface {
	// Offer is called once per instruction, in order, when it enters the
	// check stage. send is true when this instruction closes a comparison
	// interval; fp is then the interval fingerprint.
	Offer(c *Core, e *Entry, send bool, fp uint16)
	// FlushInterval closes the open comparison interval early, ending at
	// endSeq: a serializing instruction is next, and all older
	// instructions must compare and retire before it executes (§4.4:
	// "the fingerprint interval immediately ends").
	FlushInterval(c *Core, endSeq int64, fp uint16)
	// FinalizeReady reports whether the head entry may retire now.
	FinalizeReady(c *Core, e *Entry) bool
	// Stepping reports whether the core is in re-execution single-step mode.
	Stepping(c *Core) bool
	// SyncArmed reports whether the next load/atomic must use a
	// synchronizing request.
	SyncArmed(c *Core) bool
	// SyncIssue sends the synchronizing request for this core; done fires
	// with the coherent word value once the block has been filled into the
	// core's L1 (locked and Modified when atomic is set). cb is the
	// serializable descriptor for done (the gate wraps both together before
	// registering them with the L1). It returns false if the request could
	// not be sent yet.
	SyncIssue(c *Core, block uint64, word int, atomic bool, cb *cache.CB, done func(old uint64)) bool
	// DeviceRead returns the value of the n-th committed non-idempotent
	// device read at addr for this logical processor (replicated so both
	// members of a pair observe identical device values).
	DeviceRead(c *Core, addr uint64, n int64) int64
	// RetireWake reports the earliest future cycle at which FinalizeReady
	// for the (currently not-ready) head entry could turn true purely by
	// time passing — a pending comparison decision's completion cycle, or
	// the check-latency expiry. 0 means retirement waits on a scheduled
	// event or on other pipeline activity, either of which wakes the core
	// through the kernel anyway. Queried only after a Tick in which the
	// head did not retire, so gate-internal decision queues are settled.
	RetireWake(c *Core, e *Entry) int64
}

// Core is one simulated processor core.
type Core struct {
	ID    int
	Pair  int
	Vocal bool
	// Identity wiring, not wire state: a decoded snapshot carries nil in
	// these until BindTo rebinds them from the live core (see wire.go).
	Cfg *Config         //reunion:shared
	EQ  *sim.EventQueue //reunion:shared

	Thread *program.Thread  //reunion:shared
	L1D    *cache.L1        //reunion:shared
	L1I    *cache.L1        //reunion:shared
	ITLB   *tlb.TLB         //reunion:shared
	DTLB   *tlb.TLB         //reunion:shared
	BP     *bpred.Predictor //reunion:shared
	Gate   Gate             //reunion:shared

	// Architectural state.
	arf       [isa.NumRegs]int64
	commitSeq int64
	commitPC  int64

	// Front end.
	fetchPC     int64
	fetchSeq    int64
	fetchHalted bool
	icacheWait  bool
	curIBlock   uint64
	haveIBlock  bool
	fetchEpoch  int64
	fq          []fqSlot

	// Window.
	rob      []Entry
	robHead  int
	robCount int
	offerIdx int // entries [head, head+offerIdx) are offered
	rename   [isa.NumRegs]renameRef
	inExec   []int // ROB indices executing or awaiting memory

	// active lists, in age (seq) order, the stDispatched entries the issue
	// scan must examine: entries that are ready (or whose readiness the
	// scan has not yet established), quiet-parked on memory
	// disambiguation, or stalled on a serializing fence. Entries blocked
	// on pending operands leave the list entirely — they park in the
	// waiter chains below and are re-inserted (in age position) when a
	// waited producer completes. Under the naive poll-every-cycle kernel
	// nothing parks, so active is simply every dispatched entry. Derived
	// state: rebuilt from the ROB on restore, never in a checkpoint.
	active []dispEntry //reunion:derived

	// Producer-indexed waiter chains (fast-forward kernel): an
	// operand-blocked entry registers on each source whose producer has
	// not yet completed, and completeExec wakes the chain of the slot it
	// completes. A consumer occupies up to three chain nodes — one per
	// source position — linked intrusively through the flat wNext/wPrev
	// arrays (node ref = consumer slot * 3 + source position).
	// waiterHead is indexed by producer slot; wProd records, per node,
	// the producer slot the node is chained on (-1 = unregistered). All
	// derived state, reconstructed on restore from the authoritative
	// unready flags and producer states.
	waiterHead []int32 //reunion:derived
	wNext      []int32 //reunion:derived
	wPrev      []int32 //reunion:derived
	wProd      []int32 //reunion:derived
	wakeBuf    []int32 // scratch for wakeWaiters (chain is read, then edited) //reunion:derived

	// Whole-scan issue memo (fast-forward kernel): after a scan in which
	// every examined entry was (or became) memo-parked — nothing issued,
	// no statistic accrued, no volatile blocker, no list mutation — the
	// next scan is provably a no-op until the wake stamp or the list
	// itself changes. issueIdleLen is -1 when no such proof is held.
	issueIdleLen   int   //reunion:derived
	issueIdleStamp int64 //reunion:derived

	// Store buffer (ordered by seq; spec entries follow non-spec).
	sb         []sbEntry
	sbDraining bool
	// sbNonspec counts non-speculative (retired, still draining) entries
	// in sb; derived state maintained by finalize/drain/squash and
	// rebuilt on restore.
	sbNonspec int //reunion:derived

	// Serializing fences: seqs of in-flight serializing instructions.
	serQ []int64

	epoch  int64
	halted bool
	failed bool

	// Soft-error injection: when armed, the next register-writing
	// instruction entering check has the given bit of its result flipped
	// (a datapath transient caught by output comparison).
	faultArmed   bool
	faultBit     uint
	OnFaultFired func()

	// Fault-consumption tracking: faultSeq is the seq of the instruction a
	// fired fault flipped, until that instruction either retires (the flip
	// reached architectural state) or is squashed (the flip was discarded —
	// architecturally masked by rollback or a pipeline flush).
	faultSeq      int64
	FaultRetired  int64
	FaultSquashed int64

	// Commit digest (fault-injection observability): a running hash of
	// every retired instruction's architectural updates — register writes,
	// store address/data, branch targets — latched exactly when the
	// committed count since EnableCommitDigest reaches its target (or the
	// core halts). Comparing latched digests against a fault-free golden
	// run of the same seed classifies silent data corruption at a precise
	// instruction boundary, which a fixed-cycle snapshot cannot (a
	// recovered run loses cycles to rollback, not correctness).
	digestOn      bool
	digestCount   int64
	digestTarget  int64
	digestVal     uint64
	digestLatched uint64
	digestDone    bool

	// Fingerprinting.
	fpGen         *fingerprint.Gen
	intervalCount int
	intervalID    int64

	// Per-cycle structural ports.
	loadsThisCycle  int
	storesThisCycle int

	// Quiescence tracking for the fast-forward kernel (see QuiesceWake).
	// progress marks any state change during the current Tick; a
	// volatileStall is a structural blocker that can clear by itself next
	// cycle (issue width, a cache port, an L1 retry), so the core must
	// keep ticking. idleSerStalls and idleSBFull record the per-cycle stat
	// increments a fully stalled core still accrues; AccountIdle replays
	// them for skipped cycles. execStamp versions the quiet-park and
	// whole-scan memos in the issue stage; it increments on every state
	// change that can unblock a dispatched entry (see noteWake).
	// pollEvery disables the memos, restoring the naive kernel's
	// poll-everything issue loop.
	progress      bool
	volatileStall bool
	idleSerStalls int64
	idleSBFull    int64
	execStamp     int64
	pollEvery     bool

	// Self-tick short-circuit (fast-forward kernel): after a tick with no
	// progress and no volatile blocker, selfQuiet latches with selfWake
	// (the earliest time-triggered work, 0 = event-driven only). While
	// quiet, not dirty, and before the wake cycle, Tick reduces to the
	// idle accounting a full quiescent tick would perform. dirty is set
	// by every event-context callback that touches core state (cache
	// fills, store-drain completions, pair comparison decisions, squash/
	// recovery, fault arming) and forces the next Tick to run in full.
	dirty     bool
	selfQuiet bool
	selfWake  int64

	// devCount numbers committed device reads; unlike Stats it is never
	// reset, so the replicated device values of a pair stay aligned across
	// measurement boundaries.
	devCount int64

	Stats Stats
}

type renameRef struct {
	valid bool
	rob   int
	seq   int64
}

// dispEntry is one issue-stage candidate: a dispatched ROB entry with the
// scan-relevant fields mirrored into a compact record. Under the
// fast-forward kernel the active list holds only entries the scan can do
// something with; an entry whose operands are still in flight is not in
// any list — it sits in the waiter chains of its pending producers and
// completeExec re-inserts it (in age position) on the first completion.
// That wake fires exactly when a poll would first capture a value, so
// the scan never wastes a read on a provably blocked entry. Entries the
// scan must keep polling stay in the list with a quiet-park memo
// (stamp == execStamp): blocked on memory disambiguation or a
// serializing fence, re-evaluated on any wake-worthy state change.
// Stamps are monotonic, so a stale stamp can never match again.
//
// Every park structure is derived state: parking writes nothing to the
// ROB entry, so a spurious re-evaluation (the memos do not survive a
// restore) is invisible — an evaluation only mutates state when a
// producer has actually completed, and then the reconstruction routes
// the entry to the active list anyway.
type dispEntry struct {
	seq   int64
	stamp int64 // quiet-park memo: skip while equal to execStamp (-1 = none)
	idx   int32
}

// New builds a core bound to a thread and its private caches.
func New(id, pair int, vocal bool, cfg *Config, eq *sim.EventQueue,
	th *program.Thread, l1d, l1i *cache.L1, itlb, dtlb *tlb.TLB, gate Gate) *Core {
	c := &Core{
		ID: id, Pair: pair, Vocal: vocal, Cfg: cfg, EQ: eq,
		Thread: th, L1D: l1d, L1I: l1i, ITLB: itlb, DTLB: dtlb,
		BP:    bpred.New(12, 10),
		Gate:  gate,
		rob:   make([]Entry, cfg.ROBSize),
		fpGen: fingerprint.NewGen(cfg.FPMode),
	}
	c.arf = th.InitRegs
	c.fetchPC = th.Entry
	c.commitPC = th.Entry
	c.faultSeq = -1
	c.execStamp = 1
	c.issueIdleLen = -1
	c.initWaiters()
	return c
}

// initWaiters (re)allocates the waiter-chain arrays, empty. One chain
// head per ROB slot; one (next, prev, producer) node triple per ROB slot
// and source position.
func (c *Core) initWaiters() {
	n := len(c.rob)
	if len(c.waiterHead) != n {
		c.waiterHead = make([]int32, n)
		c.wNext = make([]int32, 3*n)
		c.wPrev = make([]int32, 3*n)
		c.wProd = make([]int32, 3*n)
	}
	for i := range c.waiterHead {
		c.waiterHead[i] = -1
	}
	for i := range c.wNext {
		c.wNext[i], c.wPrev[i], c.wProd[i] = -1, -1, -1
	}
}

// SetPollEveryCycle selects the issue-stage polling policy: true restores
// the naive kernel's re-poll-every-entry-every-cycle loop; false (the
// fast-forward kernel) skips dispatched entries whose blocking condition
// cannot have changed since they were last evaluated. Both policies are
// bit-identical in every architectural and statistical outcome.
func (c *Core) SetPollEveryCycle(poll bool) {
	if c.pollEvery != poll {
		c.pollEvery = poll
		// Membership in the active list vs the waiter chains depends on
		// the policy; re-derive it so a mid-run toggle stays sound.
		c.rebuildDerived()
	}
}

// noteProgress records a state change in the current Tick: the core is
// not quiescent.
func (c *Core) noteProgress() {
	c.progress = true
}

// noteWake records a state change that can alter the outcome of a
// blocked issue-stage evaluation, invalidating the entry-level skip
// memo. The set of such changes is exactly: a producer completing
// (completeExec), an instruction retiring (architectural values, the
// serialize fence, the commit point), a store's address becoming known
// (memory disambiguation), a non-speculative store draining (the
// serializing sbNonspec condition), and any squash. Fetch, dispatch,
// offer and comparison traffic cannot unblock a dispatched entry, so
// they mark progress without touching the memo.
func (c *Core) noteWake() {
	c.execStamp++
}

// rebuildDerived recomputes the redundant issue-stage structures — the
// active list, the waiter chains and the non-speculative store count —
// from the authoritative window state. Called after a snapshot restore or
// a checkpoint decode, where only the authoritative state is
// materialized.
func (c *Core) rebuildDerived() {
	c.initWaiters()
	c.active = c.active[:0]
	for i := 0; i < c.robCount; i++ {
		idx := c.robIdx(i)
		e := &c.rob[idx]
		if e.state != stDispatched {
			continue
		}
		// Route the entry exactly as the live run had it. An unready
		// source whose producer is still in flight means the entry was
		// (or next scan would be) parked in the waiter chains; an unready
		// source whose producer already completed, retired, or left the
		// slot means the wake has fired (or a first examination would
		// capture a value), so the entry belongs in the active list. An
		// entry the scan had not yet examined may be parked here though
		// the live run still had it listed, but that evaluation could not
		// have captured anything, so the difference is unobservable.
		if !c.pollEvery {
			unready := !e.src1Ready || !e.src2Ready || !e.src3Ready
			allPending := unready &&
				(e.src1Ready || c.producerPending(e.src1Rob, e.src1Seq)) &&
				(e.src2Ready || c.producerPending(e.src2Rob, e.src2Seq)) &&
				(e.src3Ready || c.producerPending(e.src3Rob, e.src3Seq))
			if allPending {
				if !e.src1Ready {
					c.register(idx, e.src1Rob, 0)
				}
				if !e.src2Ready {
					c.register(idx, e.src2Rob, 1)
				}
				if !e.src3Ready {
					c.register(idx, e.src3Rob, 2)
				}
				continue // parked: no poll can capture anything yet
			}
		}
		c.active = append(c.active, dispEntry{seq: e.Seq, stamp: -1, idx: int32(idx)})
	}
	c.issueIdleLen = -1 // the scan memo does not survive a restore
	c.sbNonspec = 0
	for i := range c.sb {
		if c.sb[i].nonspec {
			c.sbNonspec++
		}
	}
}

// producerPending reports whether the producer identified by (slot, seq)
// has yet to complete: the slot still holds that very instruction and it
// is still dispatched or executing. Any other state — completed, offered,
// freed, reused — means a poll of this source would capture a value.
func (c *Core) producerPending(slot int, seq int64) bool {
	if slot < 0 {
		return false
	}
	p := &c.rob[slot]
	return p.Seq == seq && (p.state == stDispatched || p.state == stIssued)
}

// register chains consumer slot cidx, source position k, onto producer
// slot pidx's waiter list. The consumer must not already be registered at
// that position.
func (c *Core) register(cidx, pidx, k int) {
	n := int32(cidx*3 + k)
	h := c.waiterHead[pidx]
	c.wProd[n], c.wNext[n], c.wPrev[n] = int32(pidx), h, -1
	if h >= 0 {
		c.wPrev[h] = n
	}
	c.waiterHead[pidx] = n
}

// unregisterAll unlinks every chain node of consumer slot cidx. Safe to
// call when none are registered.
func (c *Core) unregisterAll(cidx int) {
	for k := 0; k < 3; k++ {
		n := int32(cidx*3 + k)
		p := c.wProd[n]
		if p < 0 {
			continue
		}
		if prev := c.wPrev[n]; prev >= 0 {
			c.wNext[prev] = c.wNext[n]
		} else {
			c.waiterHead[p] = c.wNext[n]
		}
		if next := c.wNext[n]; next >= 0 {
			c.wPrev[next] = c.wPrev[n]
		}
		c.wProd[n], c.wNext[n], c.wPrev[n] = -1, -1, -1
	}
}

// registered reports whether consumer slot cidx holds any chain node.
func (c *Core) registered(cidx int32) bool {
	n := cidx * 3
	return c.wProd[n] >= 0 || c.wProd[n+1] >= 0 || c.wProd[n+2] >= 0
}

// wakeWaiters moves every consumer chained on producer slot pidx back
// into the active list, in age position. Called by completeExec; the
// first completion of any waited producer is exactly when a poll of the
// consumer would first capture a value. A consumer waiting on the same
// producer through two source positions appears twice in the chain; the
// registered() guard inserts it once.
func (c *Core) wakeWaiters(pidx int) {
	h := c.waiterHead[pidx]
	if h < 0 {
		return
	}
	// Snapshot the chain first: unregisterAll edits it mid-walk.
	buf := c.wakeBuf[:0]
	for n := h; n >= 0; n = c.wNext[n] {
		buf = append(buf, n/3)
	}
	for _, cidx := range buf {
		if !c.registered(cidx) {
			continue // duplicate node for a consumer already woken
		}
		c.unregisterAll(int(cidx))
		e := &c.rob[cidx]
		c.activeInsert(dispEntry{seq: e.Seq, stamp: -1, idx: cidx})
	}
	c.wakeBuf = buf[:0]
}

// activeInsert places d into the seq-ordered active list. Woken entries
// are usually older than everything listed (their producers dispatched
// before the list's stalled tail), so the shift is short.
func (c *Core) activeInsert(d dispEntry) {
	a := c.active
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid].seq < d.seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	c.active = append(c.active, dispEntry{})
	copy(c.active[lo+1:], c.active[lo:])
	c.active[lo] = d
}

// MarkDirty invalidates the core's self-tick short-circuit. Every
// event-context mutation of core-visible state must call it (directly or
// through the closures the core registers); a missed mark would leave
// the core asleep on work the naive kernel would have seen.
func (c *Core) MarkDirty() { c.dirty = true }

// ARF returns a copy of the committed architectural register file.
func (c *Core) ARF() [isa.NumRegs]int64 { return c.arf }

// SetARF overwrites the committed register file (mute register
// initialization, Definition 9 / re-execution phase 2).
func (c *Core) SetARF(r [isa.NumRegs]int64) { c.arf = r }

// CommitPoint returns the seq and pc of the next instruction to retire.
func (c *Core) CommitPoint() (seq, pc int64) { return c.commitSeq, c.commitPC }

// SetCommitPoint overwrites the restart point (phase-2 recovery: the mute
// adopts the vocal's).
func (c *Core) SetCommitPoint(seq, pc int64) { c.commitSeq, c.commitPC = seq, pc }

// Halted reports whether the core has retired a Halt.
func (c *Core) Halted() bool { return c.halted }

// MarkFailed permanently stops the core (unrecoverable error, paper §4.3).
func (c *Core) MarkFailed() { c.failed = true; c.halted = true }

// Failed reports whether the core was stopped by an unrecoverable error.
func (c *Core) Failed() bool { return c.failed }

func (c *Core) robIdx(offset int) int { return (c.robHead + offset) % len(c.rob) }

func (c *Core) head() *Entry {
	if c.robCount == 0 {
		return nil
	}
	return &c.rob[c.robHead]
}

// ArmFault schedules a single-bit transient fault: the next register-
// writing instruction to enter the check stage has bit b of its result
// flipped before fingerprinting. Because the flip happens before
// retirement, detection-and-recovery machinery must catch it for the
// program to stay architecturally correct.
func (c *Core) ArmFault(b uint) { c.faultArmed, c.faultBit, c.dirty = true, b%64, true }

// FaultPending reports whether an armed fault has not yet fired.
func (c *Core) FaultPending() bool { return c.faultArmed }

// DisarmFault clears an armed-but-unfired fault, reporting whether one was
// pending. A disarmed fault never reached the datapath, so it is
// architecturally masked by definition (e.g., armed on a core that halted).
func (c *Core) DisarmFault() bool {
	pending := c.faultArmed
	c.faultArmed = false
	c.dirty = true
	return pending
}

// EnableCommitDigest starts the running commit digest and arms its latch
// at target committed instructions from now. Call at a measurement
// boundary (alongside stats reset); the digest then covers exactly the
// next target retirements.
func (c *Core) EnableCommitDigest(target int64) {
	c.dirty = true
	c.digestOn = true
	c.digestCount = 0
	c.digestTarget = target
	c.digestVal = sim.Mix64(0xd16e57 ^ uint64(c.Pair))
	c.digestLatched = 0
	c.digestDone = c.halted // nothing will ever commit on a halted core
	if c.digestDone {
		c.digestLatched = c.digestVal
	}
}

// CommitDigest returns the latched commit digest and whether the latch has
// closed (the commit target was reached, or the core halted).
func (c *Core) CommitDigest() (uint64, bool) { return c.digestLatched, c.digestDone }

func (c *Core) digestFold(x uint64) { c.digestVal = sim.Mix64(c.digestVal ^ x) }

// digestCommit folds one retiring instruction's architectural updates into
// the running digest and closes the latch at the target boundary.
func (c *Core) digestCommit(e *Entry) {
	if !c.digestOn || c.digestDone {
		return
	}
	in := e.In
	c.digestFold(uint64(e.PC))
	if in.WritesReg() && in.Rd != 0 {
		c.digestFold(uint64(in.Rd))
		c.digestFold(uint64(e.Result))
	}
	switch {
	case in.IsStore():
		c.digestFold(e.EA)
		c.digestFold(uint64(e.src2))
	case in.IsAtomic():
		c.digestFold(e.EA)
		if e.casSuccess {
			c.digestFold(uint64(e.casNew))
		}
	}
	if in.IsBranch() {
		c.digestFold(uint64(e.Target))
	}
	c.digestCount++
	if c.digestCount >= c.digestTarget || in.Op == isa.Halt {
		c.digestLatched = c.digestVal
		c.digestDone = true
	}
}

// String identifies the core in diagnostics.
func (c *Core) String() string {
	role := "mute"
	if c.Vocal {
		role = "vocal"
	}
	return fmt.Sprintf("core%d(%s,pair%d)", c.ID, role, c.Pair)
}

// DumpState formats a short pipeline summary for debugging.
func (c *Core) DumpState() string {
	h := c.head()
	hs := "-"
	if h != nil {
		hs = fmt.Sprintf("seq=%d pc=%d %v st=%d", h.Seq, h.PC, h.In, h.state)
	}
	return fmt.Sprintf("%s commitSeq=%d commitPC=%d fetchPC=%d rob=%d offered=%d sb=%d head[%s] halted=%v",
		c, c.commitSeq, c.commitPC, c.fetchPC, c.robCount, c.offerIdx, len(c.sb), hs, c.halted)
}

func wordIndex(addr uint64) int { return int(addr%mem.BlockBytes) / 8 }
