// Package cpu implements the out-of-order processor core of the simulated
// CMP: the simplified pipeline of the paper's Figure 3 — in-order fetch and
// decode, out-of-order issue/execute/writeback against a 256-entry RUU-style
// reorder buffer, a two-region (speculative/non-speculative) store buffer,
// and in-order retirement stages.
//
// For redundant execution models, retirement is split exactly as in
// Figure 3(b): instructions first pass mis-speculation detection, then
// enter an in-order *check* stage where a fingerprint of their
// architectural updates is generated and exchanged with the partner core,
// and only after a matching comparison do they retire to the architectural
// register file and non-speculative store buffer. Instructions occupy
// their ROB entry until the comparison completes, which is the resource-
// occupancy overhead the paper measures; serializing instructions stall
// issue of younger instructions until they retire, which is the
// serializing overhead.
//
// The core is fully functional: register values, memory values and branch
// outcomes are real, so a vocal/mute pair detects genuine divergence.
package cpu

import (
	"fmt"

	"reunion/internal/bpred"
	"reunion/internal/cache"
	"reunion/internal/fingerprint"
	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
	"reunion/internal/tlb"
)

// Consistency selects the memory consistency model.
type Consistency uint8

// Consistency models.
const (
	// TSO (Sun total store order): stores drain lazily from the
	// non-speculative store buffer; MEMBAR drains and serializes.
	TSO Consistency = iota
	// SC (sequential consistency): every store carries memory-barrier
	// semantics and therefore serializes retirement (paper §5.5).
	SC
)

// String names the consistency model.
func (c Consistency) String() string {
	if c == SC {
		return "SC"
	}
	return "TSO"
}

// Config holds per-core microarchitecture parameters (defaults per
// Table 1 live in the public reunion package).
type Config struct {
	FetchWidth    int
	DispatchWidth int
	IssueWidth    int
	RetireWidth   int
	ROBSize       int
	SBSize        int
	FetchQCap     int
	CheckQCap     int   // max instructions in check (offered, unretired)
	LoadToUse     int64 // L1D hit latency
	FrontDepth    int64 // fetch-to-dispatch stages (redirect penalty)
	L1LoadPorts   int
	L1StorePorts  int
	TrapLatency   int64 // trap service body
	DevLatency    int64 // uncached device access latency
	Consistency   Consistency
	FPMode        fingerprint.Mode
	FPInterval    int // instructions per fingerprint/comparison interval

	TLB TLBPolicy
}

// TLBPolicy configures TLB management (paper §5.5).
type TLBPolicy struct {
	Mode        tlb.Mode
	WalkLatency int64 // hardware-managed page walk
	HandlerBody int64 // software handler non-serializing work
	// HandlerSerializers counts serializing events inside the software
	// handler: trap entry + three non-idempotent MMU accesses + trap
	// return = 5 for the UltraSPARC III fast miss handler.
	HandlerSerializers int
}

type entryState uint8

const (
	stFree entryState = iota
	stDispatched
	stIssued
	stDone
	stOffered
)

// Entry is one ROB (RUU) entry.
type Entry struct {
	Seq   int64
	PC    int64
	In    isa.Instr
	Epoch int64

	state entryState

	// Operand capture (RUU style): each source is either a ready value or
	// a reference to the producing ROB entry, guarded by the producer's
	// Seq against slot reuse.
	src1, src2, src3                int64
	src1Rob, src2Rob, src3Rob       int
	src1Seq, src2Seq, src3Seq       int64
	src1Reg, src2Reg, src3Reg       uint8
	src1Ready, src2Ready, src3Ready bool

	// Branch prediction state.
	predTaken  bool
	predTarget int64

	// Execution results.
	Result    int64
	Taken     bool
	Target    int64
	EA        uint64
	doneAt    int64
	hasDoneAt bool

	// CAS bookkeeping.
	casSuccess bool
	casNew     int64

	// Synchronizing-request bookkeeping (re-execution protocol).
	syncIssued bool

	// pollStamp is the core's execStamp value when this dispatched entry
	// last failed to issue for a reason only another state change can
	// cure (operands pending, memory disambiguation). While the stamp is
	// unchanged the issue stage skips the entry without re-polling — the
	// entry has no combinational work. Never consulted under the
	// poll-every-cycle (naive) kernel.
	pollStamp int64

	// Check-stage state.
	Serializing bool  // ISA- or consistency-model-serializing
	IntervalID  int64 // comparison interval this entry belongs to
	ExtraCheck  int64 // additional compare exposure (software TLB handler)
	SerialCount int   // serializing compare exposures beyond the first
	OfferedAt   int64 // cycle the entry entered check
	tlbChecked  bool
	offerAfter  int64
}

type fqSlot struct {
	seq        int64
	pc         int64
	in         isa.Instr
	predTaken  bool
	predTarget int64
	readyAt    int64
}

type sbEntry struct {
	seq       int64
	block     uint64
	word      int
	data      uint64
	addrReady bool
	nonspec   bool
	draining  bool
}

// Stats are per-core counters. Reset at measurement boundaries.
type Stats struct {
	Committed       int64 // user instructions retired to architectural state
	CommittedLoads  int64
	CommittedStores int64
	Mispredicts     int64
	Serializing     int64 // serializing instructions committed
	ITLBMisses      int64
	DTLBMisses      int64
	ROBOccupancy    int64 // summed per cycle
	CheckOccupancy  int64 // offered-unretired summed per cycle
	Cycles          int64
	IssueStallSer   int64 // cycles an issuable instruction waited on a serializing fence
	SBFullStalls    int64
	DevReads        int64
}

// Gate decides when offered instructions may architecturally retire. It is
// the seam between the core pipeline and the execution model (non-
// redundant, strict, or Reunion pair) implemented in internal/core.
type Gate interface {
	// Offer is called once per instruction, in order, when it enters the
	// check stage. send is true when this instruction closes a comparison
	// interval; fp is then the interval fingerprint.
	Offer(c *Core, e *Entry, send bool, fp uint16)
	// FlushInterval closes the open comparison interval early, ending at
	// endSeq: a serializing instruction is next, and all older
	// instructions must compare and retire before it executes (§4.4:
	// "the fingerprint interval immediately ends").
	FlushInterval(c *Core, endSeq int64, fp uint16)
	// FinalizeReady reports whether the head entry may retire now.
	FinalizeReady(c *Core, e *Entry) bool
	// Stepping reports whether the core is in re-execution single-step mode.
	Stepping(c *Core) bool
	// SyncArmed reports whether the next load/atomic must use a
	// synchronizing request.
	SyncArmed(c *Core) bool
	// SyncIssue sends the synchronizing request for this core; done fires
	// with the coherent word value once the block has been filled into the
	// core's L1 (locked and Modified when atomic is set). cb is the
	// serializable descriptor for done (the gate wraps both together before
	// registering them with the L1). It returns false if the request could
	// not be sent yet.
	SyncIssue(c *Core, block uint64, word int, atomic bool, cb *cache.CB, done func(old uint64)) bool
	// DeviceRead returns the value of the n-th committed non-idempotent
	// device read at addr for this logical processor (replicated so both
	// members of a pair observe identical device values).
	DeviceRead(c *Core, addr uint64, n int64) int64
	// RetireWake reports the earliest future cycle at which FinalizeReady
	// for the (currently not-ready) head entry could turn true purely by
	// time passing — a pending comparison decision's completion cycle, or
	// the check-latency expiry. 0 means retirement waits on a scheduled
	// event or on other pipeline activity, either of which wakes the core
	// through the kernel anyway. Queried only after a Tick in which the
	// head did not retire, so gate-internal decision queues are settled.
	RetireWake(c *Core, e *Entry) int64
}

// Core is one simulated processor core.
type Core struct {
	ID    int
	Pair  int
	Vocal bool
	Cfg   *Config
	EQ    *sim.EventQueue

	Thread *program.Thread
	L1D    *cache.L1
	L1I    *cache.L1
	ITLB   *tlb.TLB
	DTLB   *tlb.TLB
	BP     *bpred.Predictor
	Gate   Gate

	// Architectural state.
	arf       [isa.NumRegs]int64
	commitSeq int64
	commitPC  int64

	// Front end.
	fetchPC     int64
	fetchSeq    int64
	fetchHalted bool
	icacheWait  bool
	curIBlock   uint64
	haveIBlock  bool
	fetchEpoch  int64
	fq          []fqSlot

	// Window.
	rob      []Entry
	robHead  int
	robCount int
	offerIdx int // entries [head, head+offerIdx) are offered
	rename   [isa.NumRegs]renameRef
	inExec   []int // ROB indices executing or awaiting memory

	// Store buffer (ordered by seq; spec entries follow non-spec).
	sb         []sbEntry
	sbDraining bool

	// Serializing fences: seqs of in-flight serializing instructions.
	serQ []int64

	epoch  int64
	halted bool
	failed bool

	// Soft-error injection: when armed, the next register-writing
	// instruction entering check has the given bit of its result flipped
	// (a datapath transient caught by output comparison).
	faultArmed   bool
	faultBit     uint
	OnFaultFired func()

	// Fault-consumption tracking: faultSeq is the seq of the instruction a
	// fired fault flipped, until that instruction either retires (the flip
	// reached architectural state) or is squashed (the flip was discarded —
	// architecturally masked by rollback or a pipeline flush).
	faultSeq      int64
	FaultRetired  int64
	FaultSquashed int64

	// Commit digest (fault-injection observability): a running hash of
	// every retired instruction's architectural updates — register writes,
	// store address/data, branch targets — latched exactly when the
	// committed count since EnableCommitDigest reaches its target (or the
	// core halts). Comparing latched digests against a fault-free golden
	// run of the same seed classifies silent data corruption at a precise
	// instruction boundary, which a fixed-cycle snapshot cannot (a
	// recovered run loses cycles to rollback, not correctness).
	digestOn      bool
	digestCount   int64
	digestTarget  int64
	digestVal     uint64
	digestLatched uint64
	digestDone    bool

	// Fingerprinting.
	fpGen         *fingerprint.Gen
	intervalCount int
	intervalID    int64

	// Per-cycle structural ports.
	loadsThisCycle  int
	storesThisCycle int

	// Quiescence tracking for the fast-forward kernel (see QuiesceWake).
	// progress marks any state change during the current Tick; a
	// volatileStall is a structural blocker that can clear by itself next
	// cycle (issue width, a cache port, an L1 retry), so the core must
	// keep ticking. idleSerStalls and idleSBFull record the per-cycle stat
	// increments a fully stalled core still accrues; AccountIdle replays
	// them for skipped cycles. execStamp counts state changes (it
	// increments with every progress mark), versioning the entry-level
	// pollStamp memo in the issue stage. pollEvery disables that memo,
	// restoring the naive kernel's poll-everything issue loop.
	progress      bool
	volatileStall bool
	idleSerStalls int64
	idleSBFull    int64
	execStamp     int64
	pollEvery     bool

	// Self-tick short-circuit (fast-forward kernel): after a tick with no
	// progress and no volatile blocker, selfQuiet latches with selfWake
	// (the earliest time-triggered work, 0 = event-driven only). While
	// quiet, not dirty, and before the wake cycle, Tick reduces to the
	// idle accounting a full quiescent tick would perform. dirty is set
	// by every event-context callback that touches core state (cache
	// fills, store-drain completions, pair comparison decisions, squash/
	// recovery, fault arming) and forces the next Tick to run in full.
	dirty     bool
	selfQuiet bool
	selfWake  int64

	// devCount numbers committed device reads; unlike Stats it is never
	// reset, so the replicated device values of a pair stay aligned across
	// measurement boundaries.
	devCount int64

	Stats Stats
}

type renameRef struct {
	valid bool
	rob   int
	seq   int64
}

// New builds a core bound to a thread and its private caches.
func New(id, pair int, vocal bool, cfg *Config, eq *sim.EventQueue,
	th *program.Thread, l1d, l1i *cache.L1, itlb, dtlb *tlb.TLB, gate Gate) *Core {
	c := &Core{
		ID: id, Pair: pair, Vocal: vocal, Cfg: cfg, EQ: eq,
		Thread: th, L1D: l1d, L1I: l1i, ITLB: itlb, DTLB: dtlb,
		BP:    bpred.New(12, 10),
		Gate:  gate,
		rob:   make([]Entry, cfg.ROBSize),
		fpGen: fingerprint.NewGen(cfg.FPMode),
	}
	c.arf = th.InitRegs
	c.fetchPC = th.Entry
	c.commitPC = th.Entry
	c.faultSeq = -1
	c.execStamp = 1 // fresh entries (pollStamp 0) always evaluate once
	return c
}

// SetPollEveryCycle selects the issue-stage polling policy: true restores
// the naive kernel's re-poll-every-entry-every-cycle loop; false (the
// fast-forward kernel) skips dispatched entries whose blocking condition
// cannot have changed since they were last evaluated. Both policies are
// bit-identical in every architectural and statistical outcome.
func (c *Core) SetPollEveryCycle(poll bool) { c.pollEvery = poll }

// noteProgress records a state change in the current Tick: the core is
// not quiescent, and any issue-stage skip memo is invalidated.
func (c *Core) noteProgress() {
	c.progress = true
	c.execStamp++
}

// MarkDirty invalidates the core's self-tick short-circuit. Every
// event-context mutation of core-visible state must call it (directly or
// through the closures the core registers); a missed mark would leave
// the core asleep on work the naive kernel would have seen.
func (c *Core) MarkDirty() { c.dirty = true }

// ARF returns a copy of the committed architectural register file.
func (c *Core) ARF() [isa.NumRegs]int64 { return c.arf }

// SetARF overwrites the committed register file (mute register
// initialization, Definition 9 / re-execution phase 2).
func (c *Core) SetARF(r [isa.NumRegs]int64) { c.arf = r }

// CommitPoint returns the seq and pc of the next instruction to retire.
func (c *Core) CommitPoint() (seq, pc int64) { return c.commitSeq, c.commitPC }

// SetCommitPoint overwrites the restart point (phase-2 recovery: the mute
// adopts the vocal's).
func (c *Core) SetCommitPoint(seq, pc int64) { c.commitSeq, c.commitPC = seq, pc }

// Halted reports whether the core has retired a Halt.
func (c *Core) Halted() bool { return c.halted }

// MarkFailed permanently stops the core (unrecoverable error, paper §4.3).
func (c *Core) MarkFailed() { c.failed = true; c.halted = true }

// Failed reports whether the core was stopped by an unrecoverable error.
func (c *Core) Failed() bool { return c.failed }

func (c *Core) robIdx(offset int) int { return (c.robHead + offset) % len(c.rob) }

func (c *Core) head() *Entry {
	if c.robCount == 0 {
		return nil
	}
	return &c.rob[c.robHead]
}

// ArmFault schedules a single-bit transient fault: the next register-
// writing instruction to enter the check stage has bit b of its result
// flipped before fingerprinting. Because the flip happens before
// retirement, detection-and-recovery machinery must catch it for the
// program to stay architecturally correct.
func (c *Core) ArmFault(b uint) { c.faultArmed, c.faultBit, c.dirty = true, b%64, true }

// FaultPending reports whether an armed fault has not yet fired.
func (c *Core) FaultPending() bool { return c.faultArmed }

// DisarmFault clears an armed-but-unfired fault, reporting whether one was
// pending. A disarmed fault never reached the datapath, so it is
// architecturally masked by definition (e.g., armed on a core that halted).
func (c *Core) DisarmFault() bool {
	pending := c.faultArmed
	c.faultArmed = false
	c.dirty = true
	return pending
}

// EnableCommitDigest starts the running commit digest and arms its latch
// at target committed instructions from now. Call at a measurement
// boundary (alongside stats reset); the digest then covers exactly the
// next target retirements.
func (c *Core) EnableCommitDigest(target int64) {
	c.dirty = true
	c.digestOn = true
	c.digestCount = 0
	c.digestTarget = target
	c.digestVal = sim.Mix64(0xd16e57 ^ uint64(c.Pair))
	c.digestLatched = 0
	c.digestDone = c.halted // nothing will ever commit on a halted core
	if c.digestDone {
		c.digestLatched = c.digestVal
	}
}

// CommitDigest returns the latched commit digest and whether the latch has
// closed (the commit target was reached, or the core halted).
func (c *Core) CommitDigest() (uint64, bool) { return c.digestLatched, c.digestDone }

func (c *Core) digestFold(x uint64) { c.digestVal = sim.Mix64(c.digestVal ^ x) }

// digestCommit folds one retiring instruction's architectural updates into
// the running digest and closes the latch at the target boundary.
func (c *Core) digestCommit(e *Entry) {
	if !c.digestOn || c.digestDone {
		return
	}
	in := e.In
	c.digestFold(uint64(e.PC))
	if in.WritesReg() && in.Rd != 0 {
		c.digestFold(uint64(in.Rd))
		c.digestFold(uint64(e.Result))
	}
	switch {
	case in.IsStore():
		c.digestFold(e.EA)
		c.digestFold(uint64(e.src2))
	case in.IsAtomic():
		c.digestFold(e.EA)
		if e.casSuccess {
			c.digestFold(uint64(e.casNew))
		}
	}
	if in.IsBranch() {
		c.digestFold(uint64(e.Target))
	}
	c.digestCount++
	if c.digestCount >= c.digestTarget || in.Op == isa.Halt {
		c.digestLatched = c.digestVal
		c.digestDone = true
	}
}

// String identifies the core in diagnostics.
func (c *Core) String() string {
	role := "mute"
	if c.Vocal {
		role = "vocal"
	}
	return fmt.Sprintf("core%d(%s,pair%d)", c.ID, role, c.Pair)
}

// DumpState formats a short pipeline summary for debugging.
func (c *Core) DumpState() string {
	h := c.head()
	hs := "-"
	if h != nil {
		hs = fmt.Sprintf("seq=%d pc=%d %v st=%d", h.Seq, h.PC, h.In, h.state)
	}
	return fmt.Sprintf("%s commitSeq=%d commitPC=%d fetchPC=%d rob=%d offered=%d sb=%d head[%s] halted=%v",
		c, c.commitSeq, c.commitPC, c.fetchPC, c.robCount, c.offerIdx, len(c.sb), hs, c.halted)
}

func wordIndex(addr uint64) int { return int(addr%mem.BlockBytes) / 8 }
