package workload

import (
	"fmt"

	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
)

// Microbenchmarks: small, bounded programs used by integration tests and
// examples to verify end-to-end correctness of the execution models
// (shared-memory results, forward progress under races, recovery).

// CounterAddr is the shared counter used by the lock-based micros.
const CounterAddr = SharedBase

// MicroCounter builds n threads that each acquire a spinlock and increment
// a shared counter iters times, then halt. Any correct execution model
// must leave CounterAddr == n*iters: this is the canonical race-free
// critical-section test (and, under Reunion, a natural generator of input
// incoherence on the lock and counter blocks).
func MicroCounter(n, iters int) *Workload {
	w := &Workload{Name: fmt.Sprintf("micro-counter(%dx%d)", n, iters), Class: "micro"}
	for t := 0; t < n; t++ {
		b := program.NewBuilder(fmt.Sprintf("counter.t%d", t), uint64(CodeBase+t*CodeStride))
		b.Li(1, LockBase)     // r1 = lock address
		b.Li(2, CounterAddr)  // r2 = counter address
		b.Li(7, 0)            // r7 = i
		b.Li(8, int64(iters)) // r8 = iters
		b.Label("loop")
		b.Spinlock(1, 11)
		b.Ld(3, 2, 0)
		b.Addi(3, 3, 1)
		b.St(2, 0, 3)
		b.Unlock(1)
		b.Addi(7, 7, 1)
		b.Blt(7, 8, "loop")
		b.Membar()
		b.Halt()
		w.Threads = append(w.Threads, b.Build())
	}
	w.Init = func(m *mem.Memory) {
		m.WriteWord(LockBase, 0)
		m.WriteWord(CounterAddr, 0)
	}
	return w
}

// MicroRacyFlags builds n threads that repeatedly write their id to a
// shared word and read it back — a deliberately racy program. It has no
// single correct final value, but safe execution (Definition 3) requires
// that every committed load observed *some* coherently written value.
// Each thread records the set of values it saw by OR-ing a bitmask into
// its private result word at ResultAddr(t).
func MicroRacyFlags(n, iters int) *Workload {
	w := &Workload{Name: fmt.Sprintf("micro-racy(%dx%d)", n, iters), Class: "micro"}
	for t := 0; t < n; t++ {
		b := program.NewBuilder(fmt.Sprintf("racy.t%d", t), uint64(CodeBase+t*CodeStride))
		b.Li(1, SharedBase+1024) // contended word
		b.Li(2, int64(t)+1)      // my id
		b.Li(4, 0)               // seen mask
		b.Li(7, 0)
		b.Li(8, int64(iters))
		b.Label("loop")
		b.St(1, 0, 2) // racy store
		b.Ld(3, 1, 0) // racy load
		// seen |= 1 << value  (values are small ids)
		b.Li(11, 1)
		b.Op3(isa.Shl, 11, 11, 3)
		b.Op3(isa.Or, 4, 4, 11)
		b.Addi(7, 7, 1)
		b.Blt(7, 8, "loop")
		b.Li(5, int64(ResultAddr(t)))
		b.St(5, 0, 4)
		b.Membar()
		b.Halt()
		w.Threads = append(w.Threads, b.Build())
	}
	w.Init = func(m *mem.Memory) { m.WriteWord(SharedBase+1024, 0) }
	return w
}

// ResultAddr is where micro thread t deposits its result word.
func ResultAddr(t int) uint64 { return SharedBase + 4096 + uint64(t)*mem.BlockBytes }

// MicroCompute builds a single-thread, memory-light program computing a
// deterministic function into r4, then storing it to ResultAddr(0). Used
// to cross-check the pipeline against the reference interpreter.
func MicroCompute(iters int) *Workload {
	w := &Workload{Name: fmt.Sprintf("micro-compute(%d)", iters), Class: "micro"}
	b := program.NewBuilder("compute.t0", CodeBase)
	b.Li(1, 0x9e3779b9)
	b.Li(4, 0)
	b.Li(7, 0)
	b.Li(8, int64(iters))
	b.Label("loop")
	b.Op3(isa.Mul, 1, 1, 1)
	b.Addi(1, 1, 12345)
	b.OpI(isa.Shri, 2, 1, 7)
	b.Op3(isa.Xor, 4, 4, 2)
	b.OpI(isa.Andi, 3, 1, 63)
	b.Op3(isa.Add, 4, 4, 3)
	b.OpI(isa.Slti, 5, 4, 0)
	b.Beq(5, 0, "pos")
	b.OpI(isa.Xori, 4, 4, -1)
	b.Label("pos")
	b.Addi(7, 7, 1)
	b.Blt(7, 8, "loop")
	b.Li(5, int64(ResultAddr(0)))
	b.St(5, 0, 4)
	b.Membar()
	b.Halt()
	w.Threads = append(w.Threads, b.Build())
	w.Init = func(m *mem.Memory) {}
	return w
}

// MicroProducerConsumer builds two threads communicating through a
// flag-guarded mailbox: thread 0 writes values and sets a flag; thread 1
// spins on the flag, reads the value, accumulates it, and acknowledges.
// Exercises cross-pair invalidations and (under Reunion) mute staleness on
// actively ping-ponging blocks. Thread 1 stores the sum to ResultAddr(1).
func MicroProducerConsumer(iters int) *Workload {
	w := &Workload{Name: fmt.Sprintf("micro-prodcons(%d)", iters), Class: "micro"}
	const (
		flag = SharedBase + 8192
		data = SharedBase + 8192 + mem.BlockBytes
	)

	p := program.NewBuilder("prod.t0", CodeBase)
	p.Li(1, flag)
	p.Li(2, data)
	p.Li(7, 1)
	p.Li(8, int64(iters))
	p.Label("loop")
	p.Label("wait") // wait for flag == 0 (consumer done)
	p.Ld(3, 1, 0)
	p.Bne(3, 0, "wait")
	p.St(2, 0, 7) // data = i
	p.Membar()
	p.Li(11, 1)
	p.St(1, 0, 11) // flag = 1
	p.Addi(7, 7, 1)
	p.Bge(8, 7, "loop")
	p.Membar()
	p.Halt()
	w.Threads = append(w.Threads, p.Build())

	c := program.NewBuilder("cons.t1", CodeBase+CodeStride)
	c.Li(1, flag)
	c.Li(2, data)
	c.Li(4, 0) // sum
	c.Li(7, 1)
	c.Li(8, int64(iters))
	c.Label("loop")
	c.Label("wait") // wait for flag == 1
	c.Ld(3, 1, 0)
	c.Beq(3, 0, "wait")
	c.Ld(5, 2, 0)
	c.Op3(isa.Add, 4, 4, 5)
	c.Membar()
	c.St(1, 0, 0) // flag = 0 (store r0)
	c.Addi(7, 7, 1)
	c.Bge(8, 7, "loop")
	c.Li(5, int64(ResultAddr(1)))
	c.St(5, 0, 4)
	c.Membar()
	c.Halt()
	w.Threads = append(w.Threads, c.Build())

	w.Init = func(m *mem.Memory) {
		m.WriteWord(flag, 0)
		m.WriteWord(data, 0)
	}
	return w
}
