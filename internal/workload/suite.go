package workload

// The application suite of Table 2, as synthetic profiles. Each profile is
// tuned toward the published characteristics that drive the paper's
// results: footprint vs. cache/TLB reach, serializing-event rate,
// write-sharing, and memory-level parallelism. See DESIGN.md for the
// substitution rationale and EXPERIMENTS.md for the calibration outcome.

// Suite returns the 11 named workload profiles in the paper's order.
func Suite() []Params {
	return []Params{
		Apache(), Zeus(),
		DB2OLTP(), OracleOLTP(),
		DSSQ1(), DSSQ2(), DSSQ17(),
		EM3D(), Moldyn(), Ocean(), Sparse(),
	}
}

// ByName returns the named profile, or false.
func ByName(name string) (Params, bool) {
	for _, p := range Suite() {
		if p.Name == name {
			return p, true
		}
	}
	return Params{}, false
}

// Names lists the suite's workload names in order.
func Names() []string {
	var ns []string
	for _, p := range Suite() {
		ns = append(ns, p.Name)
	}
	return ns
}

// Classes lists the distinct workload classes in figure order.
func Classes() []Class { return []Class{Web, OLTP, DSS, Scientific} }

// Apache models SPECweb99 on Apache: many small lock-protected critical
// sections (connection/queue handling), frequent syscalls, a working set
// well beyond the L1 but mostly inside the L2.
func Apache() Params {
	return Params{
		Name: "apache", Class: Web,
		PrivateBytes: 8 << 20, HotBytes: 256 << 10, ColdEvery: 24,
		SharedCtrs: 256, Locks: 256,
		LoadsPerIter: 12, StoresPerIter: 4, ALUPerIter: 24,
		CritEvery: 4, CritLen: 2, SharedReadEvery: 16, TrapEvery: 8,
		UnrollCode: 4,
	}
}

// Zeus models SPECweb99 on Zeus: similar to Apache with a leaner event
// loop (fewer traps, slightly fewer loads).
func Zeus() Params {
	return Params{
		Name: "zeus", Class: Web,
		PrivateBytes: 8 << 20, HotBytes: 512 << 10, ColdEvery: 32,
		SharedCtrs: 256, Locks: 256,
		LoadsPerIter: 10, StoresPerIter: 3, ALUPerIter: 24,
		CritEvery: 4, CritLen: 1, SharedReadEvery: 32, TrapEvery: 8,
		UnrollCode: 4,
	}
}

// DB2OLTP models TPC-C on DB2: pointer-chasing B-tree descent over a large
// buffer pool, heavy locking, frequent syscalls, and a data TLB footprint
// beyond the 4 MB TLB reach.
func DB2OLTP() Params {
	return Params{
		Name: "db2-oltp", Class: OLTP,
		PrivateBytes: 16 << 20, HotBytes: 1 << 20, ColdEvery: 24,
		SharedCtrs: 512, Locks: 512,
		LoadsPerIter: 10, StoresPerIter: 4, ALUPerIter: 16, PointerChase: true,
		CritEvery: 8, CritLen: 2, SharedReadEvery: 32, TrapEvery: 8,
		UnrollCode: 4,
	}
}

// OracleOLTP models TPC-C on Oracle: like DB2 with a larger SGA-style hot
// region and even more TLB pressure.
func OracleOLTP() Params {
	return Params{
		Name: "oracle-oltp", Class: OLTP,
		PrivateBytes: 16 << 20, HotBytes: 2 << 20, ColdEvery: 16,
		SharedCtrs: 512, Locks: 512,
		LoadsPerIter: 10, StoresPerIter: 4, ALUPerIter: 14, PointerChase: true,
		CritEvery: 8, CritLen: 2, SharedReadEvery: 32, TrapEvery: 8,
		UnrollCode: 4,
	}
}

// DSSQ1 models TPC-H query 1 (scan-dominated): a streaming aggregate over
// a table that far exceeds the shared cache, with shared aggregation
// buckets updated under locks — the source of its comparatively high
// input-incoherence rate in Table 3.
func DSSQ1() Params {
	return Params{
		Name: "dss-q1", Class: DSS,
		PrivateBytes: 1 << 20, HotBytes: 256 << 10, ColdEvery: 0,
		SharedCtrs: 16, Locks: 16,
		LoadsPerIter: 2, StoresPerIter: 1, ALUPerIter: 20,
		ScanBytes: 32 << 20, ScanPerIter: 16, ScanStride: 8,
		CritEvery: 8, CritLen: 1, SharedReadEvery: 2, TrapEvery: 32,
		UnrollCode: 2,
	}
}

// DSSQ2 models TPC-H query 2 (join-dominated): random hash-table probes
// over a multi-megabyte build side.
func DSSQ2() Params {
	return Params{
		Name: "dss-q2", Class: DSS,
		PrivateBytes: 8 << 20, HotBytes: 1 << 20, ColdEvery: 12,
		SharedCtrs: 128, Locks: 128,
		LoadsPerIter: 14, StoresPerIter: 2, ALUPerIter: 18,
		CritEvery: 16, CritLen: 1, SharedReadEvery: 64, TrapEvery: 16,
		UnrollCode: 4,
	}
}

// DSSQ17 models TPC-H query 17 (balanced): a scan feeding random probes.
func DSSQ17() Params {
	return Params{
		Name: "dss-q17", Class: DSS,
		PrivateBytes: 8 << 20, HotBytes: 1 << 20, ColdEvery: 12,
		SharedCtrs: 128, Locks: 128,
		LoadsPerIter: 8, StoresPerIter: 2, ALUPerIter: 16,
		ScanBytes: 16 << 20, ScanPerIter: 8, ScanStride: 8,
		CritEvery: 16, CritLen: 1, SharedReadEvery: 32, TrapEvery: 16,
		UnrollCode: 2,
	}
}

// EM3D models the em3d electromagnetic kernel: streaming node sweeps whose
// aggregate working set exceeds the 16 MB shared cache (the property that
// makes shared-strength phantom requests collapse in Figure 7a), with 15%
// of reads hitting a neighbour thread's partition.
func EM3D() Params {
	return Params{
		Name: "em3d", Class: Scientific,
		PrivateBytes: 1 << 20, HotBytes: 1 << 20, ColdEvery: 0,
		SharedCtrs: 64, Locks: 64,
		LoadsPerIter: 3, StoresPerIter: 2, ALUPerIter: 8, RemoteSixteenths: 2,
		ScanBytes: 24 << 20, ScanPerIter: 12, ScanStride: 8,
		CritEvery: 64, CritLen: 1, BarEvery: 64,
		UnrollCode: 2,
	}
}

// Moldyn models the moldyn molecular-dynamics kernel: neighbour-list force
// computation with high memory-level parallelism, read-mostly sharing of
// positions, and lock-protected force reductions at phase ends.
func Moldyn() Params {
	return Params{
		Name: "moldyn", Class: Scientific,
		PrivateBytes: 2 << 20, HotBytes: 2 << 20, ColdEvery: 0,
		SharedCtrs: 64, Locks: 64,
		LoadsPerIter: 12, StoresPerIter: 4, ALUPerIter: 20, RemoteSixteenths: 1,
		CritEvery: 64, CritLen: 1, BarEvery: 32,
		UnrollCode: 2,
	}
}

// Ocean models the SPLASH-2 ocean kernel: grid stencil sweeps (streaming)
// with boundary-row sharing between neighbouring threads.
func Ocean() Params {
	return Params{
		Name: "ocean", Class: Scientific,
		PrivateBytes: 1 << 20, HotBytes: 1 << 20, ColdEvery: 0,
		SharedCtrs: 64, Locks: 64,
		LoadsPerIter: 4, StoresPerIter: 3, ALUPerIter: 16, RemoteSixteenths: 1,
		ScanBytes: 8 << 20, ScanPerIter: 12, ScanStride: 8,
		CritEvery: 32, CritLen: 1, BarEvery: 16,
		UnrollCode: 2,
	}
}

// Sparse models sparse matrix-vector multiply: streaming matrix data with
// indirect gathers from a small, cache-resident x vector.
func Sparse() Params {
	return Params{
		Name: "sparse", Class: Scientific,
		PrivateBytes: 256 << 10, HotBytes: 64 << 10, ColdEvery: 8,
		SharedCtrs: 16, Locks: 16,
		LoadsPerIter: 6, StoresPerIter: 2, ALUPerIter: 12,
		ScanBytes: 16 << 20, ScanPerIter: 12, ScanStride: 8,
		CritEvery: 32, CritLen: 1, BarEvery: 16,
		UnrollCode: 2,
	}
}
