// Package workload generates the multithreaded shared-memory programs the
// simulator runs: synthetic stand-ins for the paper's Table 2 application
// suite (TPC-C OLTP on DB2 and Oracle, TPC-H DSS queries, SPECweb on
// Apache and Zeus, and the em3d/moldyn/ocean/sparse scientific kernels).
//
// We cannot run Solaris database binaries, so each generator reproduces
// the *statistical shape* that drives Reunion's results instead: working-
// set size relative to the L1/L2/TLB reach, the rate of serializing
// instructions (traps, memory barriers, atomics), the amount of write-
// shared data (which creates the data races behind input incoherence),
// memory-level parallelism (independent vs. pointer-chasing loads), and
// streaming vs. random access. Every program is built deterministically
// from a seed; the vocal and mute core of a pair run the same thread.
//
// Address-space layout (identity-mapped virtual = physical):
//
//	0x0040_0000 + t*0x0020_0000  code, per thread
//	0x0800_0000                  lock words, one per cache block
//	0x0900_0000                  shared data (counters, tables)
//	0x2000_0000 + t*0x0400_0000  private working set, per thread (64MB apart)
//	0xf000_0000                  device registers (uncached)
package workload

import (
	"fmt"

	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
)

// Layout constants.
const (
	CodeBase    = 0x0040_0000
	CodeStride  = 0x0020_0000
	LockBase    = 0x0800_0000
	SharedBase  = 0x0900_0000
	PrivateBase = 0x2000_0000
	PrivStride  = 0x0400_0000
	DeviceBase  = 0xf000_0000
)

// Class groups workloads the way the paper's figures do.
type Class string

// Workload classes.
const (
	Web        Class = "Web"
	OLTP       Class = "OLTP"
	DSS        Class = "DSS"
	Scientific Class = "Scientific"
)

// Range is a byte range of the address space (cache/TLB warmup).
type Range struct {
	Base uint64
	Len  uint64
}

// Workload is a ready-to-run multithreaded program.
type Workload struct {
	Name    string
	Class   Class
	Threads []*program.Thread
	// Init populates initial memory contents (pointer-chase tables, scan
	// arrays, zeroed locks).
	Init func(m *mem.Memory)
	// WarmRanges lists data to prefill into the shared cache, emulating
	// measurement from a warmed checkpoint as the paper does.
	WarmRanges []Range
	// HotPages lists per-thread pages to preload into the DTLB.
	HotPages [][]uint64
}

// Params tunes the parameterized transaction generator. All sizes are
// powers of two.
type Params struct {
	Name  string
	Class Class

	PrivateBytes uint64 // per-thread working set
	HotBytes     uint64 // hot subset of the private set
	ColdEvery    int    // one cold (full-working-set) load per this many hot loads
	SharedCtrs   int    // shared counter blocks (write-shared data)
	Locks        int    // lock words (each protects one counter block)

	LoadsPerIter  int  // random-access loads per transaction
	StoresPerIter int  // private stores per transaction (SB and writeback traffic)
	ALUPerIter    int  // ALU ops per transaction
	PointerChase  bool // dependent loads (low MLP) vs independent (high MLP)

	ScanBytes   uint64 // streaming region (0 = none); shared read-only
	ScanPerIter int    // sequential loads per transaction
	ScanStride  int64  // bytes between scan loads (0 = one cache block)

	RemoteSixteenths int // fraction (x/16) of loads targeting another thread's region

	CritEvery int // transactions between critical sections (power of two)
	CritLen   int // shared stores inside the critical section
	// SharedReadEvery makes every n-th critical section also read-modify-
	// write its shared counter. Reading data another logical processor
	// recently wrote is what exposes a mute's stale copy, so this knob
	// controls the workload's input-incoherence rate (Table 3).
	SharedReadEvery int
	TrapEvery       int // transactions between traps (power of two; 0 = never)
	BarEvery        int // transactions between membar "barriers" (power of two; 0 = never)

	UnrollCode int // extra code replication (I-footprint); >= 1
}

// Registers used by the generator. r28-r31 are reserved scratch for
// program idioms (Spinlock/Unlock).
const (
	rLCG   = 1  // PRNG state
	rAddr  = 2  // address scratch
	rVal   = 3  // load destination / chase pointer
	rAcc   = 4  // accumulator
	rScanP = 5  // scan pointer
	rScanE = 6  // scan end
	rIter  = 7  // transaction counter
	rPriv  = 8  // private base
	rShare = 9  // shared base
	rLockB = 10 // lock base
	rT1    = 11
	rT2    = 12
	rRem   = 13 // remote base
	rCtr   = 14 // counter block address
	rScanB = 15 // scan base
)

// Build generates the workload for n threads from the given seed.
func (p Params) Build(seed uint64, n int) *Workload {
	if p.UnrollCode < 1 {
		p.UnrollCode = 1
	}
	w := &Workload{Name: p.Name, Class: p.Class}
	rng := sim.NewRand(seed ^ 0x3019_77d4_6b3c_55aa)
	for t := 0; t < n; t++ {
		w.Threads = append(w.Threads, p.buildThread(t, n, rng.Uint64()|1))
	}
	w.Init = func(m *mem.Memory) { p.initMemory(m, n, seed) }
	// Warm ranges in priority order: the prefill budget is one L2's worth
	// of blocks, so the actively shared data and per-thread hot regions
	// come first, then streaming/cold regions until the budget runs out.
	w.WarmRanges = append(w.WarmRanges,
		Range{LockBase, uint64(p.Locks) * mem.BlockBytes},
		Range{SharedBase, uint64(p.SharedCtrs) * mem.BlockBytes},
	)
	for t := 0; t < n; t++ {
		base := uint64(PrivateBase + t*PrivStride)
		w.WarmRanges = append(w.WarmRanges, Range{base, p.HotBytes})
		var hot []uint64
		hotPages := p.HotBytes / mem.PageBytes
		for pg := uint64(0); pg < hotPages && pg < 384; pg++ {
			hot = append(hot, mem.PageOf(base)+pg)
		}
		w.HotPages = append(w.HotPages, hot)
	}
	if p.ScanBytes > 0 {
		w.WarmRanges = append(w.WarmRanges, Range{scanBase(), p.ScanBytes})
	}
	if p.PrivateBytes > p.HotBytes {
		for t := 0; t < n; t++ {
			base := uint64(PrivateBase+t*PrivStride) + p.HotBytes
			w.WarmRanges = append(w.WarmRanges, Range{base, p.PrivateBytes - p.HotBytes})
		}
	}
	return w
}

func scanBase() uint64 { return SharedBase + 0x0100_0000 }

func (p Params) initMemory(m *mem.Memory, n int, seed uint64) {
	r := sim.NewRand(seed ^ 0x1717_beef)
	for t := 0; t < n; t++ {
		base := uint64(PrivateBase + t*PrivStride)
		// Pointer-chase-safe contents: any word, masked into the working
		// set, lands on a valid word address.
		for off := uint64(0); off < p.PrivateBytes; off += 8 {
			m.WriteWord(base+off, r.Uint64())
		}
	}
	if p.ScanBytes > 0 {
		for off := uint64(0); off < p.ScanBytes; off += 8 {
			m.WriteWord(scanBase()+off, r.Uint64())
		}
	}
	// Locks and counters start zeroed; mem reads unmapped as zero, but map
	// them so they are warmable.
	for i := 0; i < p.Locks; i++ {
		m.WriteWord(LockBase+uint64(i)*mem.BlockBytes, 0)
	}
	for i := 0; i < p.SharedCtrs; i++ {
		m.WriteWord(SharedBase+uint64(i)*mem.BlockBytes, 0)
	}
}

func (p Params) buildThread(t, n int, seed uint64) *program.Thread {
	b := program.NewBuilder(fmt.Sprintf("%s.t%d", p.Name, t), uint64(CodeBase+t*CodeStride))
	b.InitReg(rLCG, int64(seed))
	b.InitReg(rPriv, PrivateBase+int64(t)*PrivStride)
	b.InitReg(rShare, SharedBase)
	b.InitReg(rLockB, LockBase)
	b.InitReg(rScanB, int64(scanBase()))
	b.InitReg(rScanP, int64(scanBase())+int64(t)*int64(p.ScanBytes)/int64(max(n, 1)))
	b.InitReg(rScanE, int64(scanBase()+p.ScanBytes))
	b.InitReg(rRem, PrivateBase+int64((t+1)%n)*PrivStride)
	b.InitReg(rVal, int64(seed)*3)

	b.Label("loop")
	for u := 0; u < p.UnrollCode; u++ {
		p.emitTransaction(b, u)
	}
	b.Jmp("loop")
	return b.Build()
}

// emitTransaction emits one transaction body (one "iteration").
func (p Params) emitTransaction(b *program.Builder, u int) {
	hotMask := int64(p.HotBytes - 8)
	coldMask := int64(p.PrivateBytes - 8)

	// Transaction counter.
	b.Addi(rIter, rIter, 1)

	loads := 0
	emitLoad := func(base uint8, mask int64) {
		if p.PointerChase {
			// Dependent chain: next address derives from the last value.
			b.OpI(isa.Andi, rAddr, rVal, mask)
			b.Add(rAddr, rAddr, base)
			b.Ld(rVal, rAddr, 0)
			b.Add(rAcc, rAcc, rVal)
		} else {
			// Independent: a cheap LCG step per load keeps MLP high.
			b.OpI(isa.Xori, rLCG, rLCG, 0x5bd1)
			b.OpI(isa.Shli, rT1, rLCG, 13)
			b.Op3(isa.Xor, rLCG, rLCG, rT1)
			b.OpI(isa.Shri, rT1, rLCG, 7)
			b.Op3(isa.Xor, rLCG, rLCG, rT1)
			b.OpI(isa.Andi, rAddr, rLCG, mask)
			b.Add(rAddr, rAddr, base)
			b.Ld(rT2, rAddr, 0)
			b.Add(rAcc, rAcc, rT2)
		}
		loads++
	}

	for i := 0; i < p.LoadsPerIter; i++ {
		base := uint8(rPriv)
		mask := hotMask
		// Bresenham spread across the whole unrolled body: RemoteSixteenths
		// of every 16 loads go to the neighbour thread's region. Bodies
		// with fewer than 16/R loads still get one remote load so the
		// sharing pattern exists at all.
		g := u*p.LoadsPerIter + i
		total := p.UnrollCode * p.LoadsPerIter
		remote := p.RemoteSixteenths > 0 &&
			((g+1)*p.RemoteSixteenths/16 > g*p.RemoteSixteenths/16 ||
				(g == 0 && total*p.RemoteSixteenths < 16))
		if remote {
			base, mask = rRem, coldMask
		} else if p.ColdEvery > 0 && i%p.ColdEvery == p.ColdEvery-1 {
			mask = coldMask
		}
		emitLoad(base, mask)
	}

	// Streaming scan (DSS, em3d flavor): independent sequential loads.
	if p.ScanPerIter > 0 {
		stride := p.ScanStride
		if stride == 0 {
			stride = mem.BlockBytes
		}
		for i := 0; i < p.ScanPerIter; i++ {
			b.Ld(rT2, rScanP, int64(i)*stride)
			b.Add(rAcc, rAcc, rT2)
		}
		b.Addi(rScanP, rScanP, int64(p.ScanPerIter)*stride)
		skip := fmt.Sprintf(".sc%d_%d", u, b.PC())
		b.Blt(rScanP, rScanE, skip)
		b.Op3(isa.Add, rScanP, rScanB, 0) // wrap to scan base
		b.Label(skip)
	}

	// Private stores (write-back and store-buffer traffic; under SC every
	// one of these serializes retirement — §5.5).
	for i := 0; i < p.StoresPerIter; i++ {
		b.OpI(isa.Xori, rLCG, rLCG, 0x7a11)
		b.OpI(isa.Shli, rT1, rLCG, 11)
		b.Op3(isa.Xor, rLCG, rLCG, rT1)
		b.OpI(isa.Andi, rAddr, rLCG, hotMask)
		b.Add(rAddr, rAddr, rPriv)
		b.St(rAddr, 0, rIter)
	}

	// Compute.
	for i := 0; i < p.ALUPerIter; i++ {
		switch i % 4 {
		case 0:
			b.Add(rAcc, rAcc, rIter)
		case 1:
			b.OpI(isa.Xori, rAcc, rAcc, 0x2d)
		case 2:
			b.OpI(isa.Shri, rT1, rAcc, 3)
		case 3:
			b.Add(rAcc, rAcc, rT1)
		}
	}

	// Critical section: lock -> shared read-modify-writes -> unlock.
	// This is the write-sharing that makes input incoherence possible.
	if p.CritEvery > 0 {
		skip := fmt.Sprintf(".cs%d_%d", u, b.PC())
		b.OpI(isa.Andi, rT1, rIter, int64(p.CritEvery-1))
		b.Bne(rT1, 0, skip)
		// lock index from the accumulator (varies across transactions)
		b.OpI(isa.Shri, rT1, rLCG, 9)
		b.OpI(isa.Andi, rT1, rT1, int64(p.Locks-1))
		b.OpI(isa.Shli, rT1, rT1, 6) // one lock per block
		b.Add(rT1, rT1, rLockB)
		b.Spinlock(rT1, rT2)
		// counter block shares the lock's index
		b.Op3(isa.Sub, rCtr, rT1, rLockB)
		b.Add(rCtr, rCtr, rShare)
		for i := 0; i < p.CritLen; i++ {
			off := int64(i%7+1) * 8
			b.St(rCtr, off, rIter)
		}
		if p.SharedReadEvery > 0 {
			skipRd := fmt.Sprintf(".sr%d_%d", u, b.PC())
			b.OpI(isa.Andi, rT2, rIter, int64(p.SharedReadEvery-1))
			b.Bne(rT2, 0, skipRd)
			b.Ld(rT2, rCtr, 0)
			b.Addi(rT2, rT2, 1)
			b.St(rCtr, 0, rT2)
			b.Label(skipRd)
		}
		b.Unlock(rT1)
		b.Label(skip)
	}

	// Traps (syscalls).
	if p.TrapEvery > 0 {
		skip := fmt.Sprintf(".tr%d_%d", u, b.PC())
		b.OpI(isa.Andi, rT1, rIter, int64(p.TrapEvery-1))
		b.Bne(rT1, 0, skip)
		b.Trap(1)
		b.Label(skip)
	}

	// Barrier-ish phase boundary (scientific): drain the store buffer.
	if p.BarEvery > 0 {
		skip := fmt.Sprintf(".ba%d_%d", u, b.PC())
		b.OpI(isa.Andi, rT1, rIter, int64(p.BarEvery-1))
		b.Bne(rT1, 0, skip)
		b.Membar()
		b.Label(skip)
	}
}
