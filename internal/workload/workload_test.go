package workload

import (
	"testing"

	"reunion/internal/interp"
	"reunion/internal/isa"
	"reunion/internal/mem"
)

func TestSuiteCompleteness(t *testing.T) {
	s := Suite()
	if len(s) != 11 {
		t.Fatalf("suite has %d workloads, Table 2 lists 11", len(s))
	}
	classes := map[Class]int{}
	for _, p := range s {
		classes[p.Class]++
	}
	if classes[Web] != 2 || classes[OLTP] != 2 || classes[DSS] != 3 || classes[Scientific] != 4 {
		t.Fatalf("class distribution %v", classes)
	}
	if _, ok := ByName("apache"); !ok {
		t.Fatal("ByName apache")
	}
	if _, ok := ByName("nope"); ok {
		t.Fatal("ByName accepted unknown name")
	}
	if len(Names()) != 11 || len(Classes()) != 4 {
		t.Fatal("Names/Classes")
	}
}

func TestBuildDeterminism(t *testing.T) {
	for _, p := range Suite() {
		a := p.Build(7, 4)
		b := p.Build(7, 4)
		if len(a.Threads) != 4 {
			t.Fatalf("%s: %d threads", p.Name, len(a.Threads))
		}
		for i := range a.Threads {
			ta, tb := a.Threads[i], b.Threads[i]
			if len(ta.Code) != len(tb.Code) {
				t.Fatalf("%s t%d code lengths differ", p.Name, i)
			}
			for j := range ta.Code {
				if ta.Code[j] != tb.Code[j] {
					t.Fatalf("%s t%d instr %d differs", p.Name, i, j)
				}
			}
			if ta.InitRegs != tb.InitRegs {
				t.Fatalf("%s t%d init regs differ", p.Name, i)
			}
		}
		c := p.Build(8, 4)
		same := true
		for i := range a.Threads {
			if a.Threads[i].InitRegs != c.Threads[i].InitRegs {
				same = false
			}
		}
		if same {
			t.Errorf("%s: different seeds produced identical register seeds", p.Name)
		}
	}
}

func TestThreadsRunOnInterpreter(t *testing.T) {
	// Every generated thread must execute indefinitely without undefined
	// behaviour (wild PCs, invalid ops) on the golden interpreter.
	for _, p := range Suite() {
		w := p.Build(3, 4)
		m := mem.New()
		w.Init(m)
		for i, th := range w.Threads {
			res, err := interp.Run(th, m, 20_000, func(addr uint64, n int64) int64 { return 0 })
			if err != nil {
				t.Fatalf("%s thread %d: %v", p.Name, i, err)
			}
			if res.Halted {
				t.Fatalf("%s thread %d halted; workload threads must loop forever", p.Name, i)
			}
		}
	}
}

func TestAddressDiscipline(t *testing.T) {
	// Interpret each thread and verify every load/store address stays in
	// the declared regions (private, shared, lock, scan) — the workload
	// layout contract.
	for _, p := range Suite() {
		w := p.Build(5, 4)
		m := mem.New()
		w.Init(m)
		th := w.Threads[1]
		privLo := uint64(PrivateBase + 1*PrivStride)
		remoteLo := uint64(PrivateBase + 2*PrivStride)
		// Run an instrumented interpreter loop.
		regs := th.InitRegs
		pc := th.Entry
		for step := 0; step < 30_000; step++ {
			in, ok := th.Fetch(pc)
			if !ok {
				t.Fatalf("%s: wild pc", p.Name)
			}
			next := pc + 1
			s1, s2 := regs[in.Rs1], regs[in.Rs2]
			switch {
			case in.IsMem():
				addr := uint64(s1 + in.Imm)
				if in.IsAtomic() {
					addr = uint64(s1)
				}
				inPriv := addr >= privLo && addr < privLo+p.PrivateBytes
				inRemote := addr >= remoteLo && addr < remoteLo+p.PrivateBytes
				inLock := addr >= LockBase && addr < LockBase+uint64(p.Locks)*mem.BlockBytes
				inShared := addr >= SharedBase && addr < SharedBase+uint64(p.SharedCtrs)*mem.BlockBytes
				inScan := p.ScanBytes > 0 && addr >= scanBase() && addr < scanBase()+p.ScanBytes+uint64(p.ScanPerIter)*64
				if !inPriv && !inRemote && !inLock && !inShared && !inScan {
					t.Fatalf("%s: access to %#x outside declared regions (op %v)", p.Name, addr, in.Op)
				}
				switch {
				case in.IsLoad():
					regs[in.Rd] = int64(m.ReadWord(addr))
				case in.IsStore():
					m.WriteWord(addr, uint64(s2))
				case in.IsAtomic():
					old := int64(m.ReadWord(addr))
					if old == regs[in.Rd] {
						m.WriteWord(addr, uint64(s2))
					}
					regs[in.Rd] = old
				}
			case in.IsBranch():
				if in.BranchTaken(s1, s2) {
					if in.Op == isa.Jr {
						next = s1
					} else {
						next = in.Imm
					}
				}
			case in.WritesReg():
				regs[in.Rd] = in.ALUResult(s1, s2)
			}
			regs[0] = 0
			pc = next
		}
	}
}

func TestWarmRangesAndHotPages(t *testing.T) {
	p := Apache()
	w := p.Build(1, 4)
	if len(w.WarmRanges) == 0 {
		t.Fatal("no warm ranges")
	}
	// Locks and shared data come first (prefill priority).
	if w.WarmRanges[0].Base != LockBase || w.WarmRanges[1].Base != SharedBase {
		t.Fatal("warm priority order wrong")
	}
	if len(w.HotPages) != 4 {
		t.Fatalf("hot pages for %d threads", len(w.HotPages))
	}
	for tid, pages := range w.HotPages {
		base := uint64(PrivateBase + tid*PrivStride)
		if len(pages) == 0 || pages[0] != mem.PageOf(base) {
			t.Fatalf("thread %d hot pages start wrong", tid)
		}
	}
}

func TestMicroCounterShape(t *testing.T) {
	w := MicroCounter(4, 10)
	if len(w.Threads) != 4 {
		t.Fatal("threads")
	}
	m := mem.New()
	w.Init(m)
	// Single-threaded run must deliver exactly iters increments.
	res, err := interp.Run(w.Threads[0], m, 10_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("did not halt")
	}
	if got := m.ReadWord(CounterAddr); got != 10 {
		t.Fatalf("counter=%d want 10", got)
	}
}

func TestMicroComputeMatchesInterpreterTwice(t *testing.T) {
	w := MicroCompute(50)
	m1, m2 := mem.New(), mem.New()
	w.Init(m1)
	w.Init(m2)
	r1, err := interp.Run(w.Threads[0], m1, 100_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := interp.Run(w.Threads[0], m2, 100_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Regs != r2.Regs || !r1.Halted {
		t.Fatal("MicroCompute not deterministic")
	}
	if m1.ReadWord(ResultAddr(0)) != m2.ReadWord(ResultAddr(0)) {
		t.Fatal("results differ")
	}
}

func TestProducerConsumerSingleThreadedPieces(t *testing.T) {
	// The producer alone (consumer never acks) must stall on the flag,
	// not run away.
	w := MicroProducerConsumer(5)
	m := mem.New()
	w.Init(m)
	m.WriteWord(SharedBase+8192, 1) // flag stuck at 1: producer must spin
	res, err := interp.Run(w.Threads[0], m, 1000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Halted {
		t.Fatal("producer ignored the flag")
	}
}

func TestRemoteFraction(t *testing.T) {
	p := EM3D() // RemoteSixteenths: 2
	w := p.Build(1, 4)
	th := w.Threads[0]
	remoteBase := int64(PrivateBase + 1*PrivStride)
	// Count loads whose base register is the remote base by scanning for
	// the address-add of rRem.
	remoteAdds, totalAdds := 0, 0
	for _, in := range th.Code {
		if in.Op == isa.Add && in.Rd == rAddr {
			totalAdds++
			if in.Rs2 == rRem {
				remoteAdds++
			}
		}
	}
	if remoteAdds == 0 {
		t.Fatal("no remote loads emitted")
	}
	frac := float64(remoteAdds) / float64(totalAdds)
	if frac < 0.05 || frac > 0.30 {
		t.Fatalf("remote fraction %.2f, want ~2/16", frac)
	}
	_ = remoteBase
}

func TestStoresEmitted(t *testing.T) {
	for _, p := range Suite() {
		w := p.Build(1, 4)
		stores := 0
		for _, in := range w.Threads[0].Code {
			if in.IsStore() {
				stores++
			}
		}
		if stores == 0 {
			t.Errorf("%s emits no stores (SC experiment needs store traffic)", p.Name)
		}
	}
}

func TestRandomProgramDeterministicAndBounded(t *testing.T) {
	a := RandomProgram(42, 150, 0)
	b := RandomProgram(42, 150, 0)
	if len(a.Threads[0].Code) != len(b.Threads[0].Code) {
		t.Fatal("random program not deterministic")
	}
	for i := range a.Threads[0].Code {
		if a.Threads[0].Code[i] != b.Threads[0].Code[i] {
			t.Fatal("random program instruction differs")
		}
	}
	// Must halt on the interpreter within a generous budget.
	m := mem.New()
	a.Init(m)
	res, err := interp.Run(a.Threads[0], m, 5_000_000, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatal("random program did not halt")
	}
	// Distinct seeds produce distinct programs.
	c := RandomProgram(43, 150, 0)
	same := len(c.Threads[0].Code) == len(a.Threads[0].Code)
	if same {
		diff := false
		for i := range a.Threads[0].Code {
			if a.Threads[0].Code[i] != c.Threads[0].Code[i] {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Fatal("different seeds produced identical programs")
	}
}
