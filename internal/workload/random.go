package workload

import (
	"fmt"

	"reunion/internal/isa"
	"reunion/internal/mem"
	"reunion/internal/program"
	"reunion/internal/sim"
)

// RandomProgram generates a terminating random program for differential
// testing: the cycle-level pipeline must produce exactly the golden
// interpreter's architectural results for any of these. The generator
// emits random ALU dataflow, loads and stores over a small private
// region, forward skip branches, counted loops, CAS, membars and traps —
// everything except device ops (whose values depend on the gate) — and
// ends in Halt.
//
// Registers r1-r12 are random dataflow; r13 holds the region base; r14/r15
// are loop counters; r16+ scratch.
func RandomProgram(seed uint64, length int, threadID int) *Workload {
	r := sim.NewRand(seed)
	base := uint64(PrivateBase + threadID*PrivStride)
	const regionBytes = 4096

	b := program.NewBuilder(fmt.Sprintf("random-%d", seed), uint64(CodeBase+threadID*CodeStride))
	b.InitReg(13, int64(base))
	for reg := uint8(1); reg <= 12; reg++ {
		b.InitReg(reg, r.Int63()>>8)
	}

	reg := func() uint8 { return uint8(1 + r.Intn(12)) }
	// addrInto leaves a valid region word address in register 16.
	addrInto := func(src uint8) {
		b.OpI(isa.Andi, 16, src, regionBytes-8)
		b.Add(16, 16, 13)
	}

	labels := 0
	for i := 0; i < length; i++ {
		switch r.Intn(20) {
		case 0, 1, 2, 3, 4, 5: // reg-reg ALU
			ops := []isa.Op{isa.Add, isa.Sub, isa.Mul, isa.Div, isa.And, isa.Or, isa.Xor, isa.Shl, isa.Shr, isa.Slt}
			b.Op3(ops[r.Intn(len(ops))], reg(), reg(), reg())
		case 6, 7, 8: // reg-imm ALU
			ops := []isa.Op{isa.Addi, isa.Andi, isa.Ori, isa.Xori, isa.Slti, isa.Shli, isa.Shri}
			imm := r.Int63() % 4096
			op := ops[r.Intn(len(ops))]
			if op == isa.Shli || op == isa.Shri {
				imm = int64(r.Intn(63))
			}
			b.OpI(op, reg(), reg(), imm)
		case 9:
			b.Li(reg(), r.Int63()>>16)
		case 10, 11, 12: // load
			addrInto(reg())
			b.Ld(reg(), 16, 0)
		case 13, 14: // store
			addrInto(reg())
			b.St(16, 0, reg())
		case 15: // CAS
			addrInto(reg())
			b.Cas(reg(), 16, reg())
		case 16: // forward skip branch over 1-2 instructions
			skip := fmt.Sprintf(".s%d", labels)
			labels++
			b.Branch([]isa.Op{isa.Beq, isa.Bne, isa.Blt, isa.Bge}[r.Intn(4)], reg(), reg(), skip)
			b.Op3(isa.Add, reg(), reg(), reg())
			if r.Intn(2) == 0 {
				b.OpI(isa.Xori, reg(), reg(), 0x55)
			}
			b.Label(skip)
		case 17: // small counted loop (3-6 iterations) of 1-2 body ops
			loop := fmt.Sprintf(".l%d", labels)
			labels++
			n := 3 + r.Intn(4)
			b.Li(14, 0)
			b.Li(15, int64(n))
			b.Label(loop)
			b.Op3(isa.Add, reg(), reg(), reg())
			if r.Intn(2) == 0 {
				addrInto(reg())
				b.Ld(reg(), 16, 0)
			}
			b.Addi(14, 14, 1)
			b.Blt(14, 15, loop)
		case 18:
			b.Membar()
		case 19:
			if r.Intn(3) == 0 {
				b.Trap(1)
			} else {
				b.Nop()
			}
		}
	}
	b.Membar()
	b.Halt()

	w := &Workload{Name: fmt.Sprintf("random-%d", seed), Class: "fuzz"}
	w.Threads = append(w.Threads, b.Build())
	w.Init = func(m *mem.Memory) {
		ri := sim.NewRand(seed ^ 0xfeed)
		for off := uint64(0); off < regionBytes; off += 8 {
			m.WriteWord(base+off, ri.Uint64())
		}
	}
	return w
}
