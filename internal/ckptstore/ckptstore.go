// Package ckptstore is the persistent, content-addressed checkpoint
// store: serialized warm-state blobs filed under their options
// fingerprint, shared across processes (local disk) or across machines
// (a reunion-ckptd server over HTTP).
//
// The store is format-agnostic: a blob is opaque bytes whose last eight
// bytes are a little-endian CRC-64 (ECMA) of everything before them —
// the same footer discipline the checkpoint encoder and the dist
// journal use. Every backend verifies that seal on both read and write,
// so a torn file, a truncated response body, or a corrupted byte never
// crosses a store boundary; semantic validation (format version, key
// match, structural invariants) belongs to the checkpoint decoder
// above.
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
)

// ErrNotFound reports a key the store has no checkpoint for. Callers
// treat it as "warm locally", never as a failure.
var ErrNotFound = errors.New("ckptstore: checkpoint not found")

// Store is a content-addressed blob store keyed by the checkpoint's
// options fingerprint. Implementations must be safe for concurrent use.
type Store interface {
	// Get returns the blob stored under key, or ErrNotFound.
	Get(key uint64) ([]byte, error)
	// Put stores blob under key. Storing the same key again overwrites;
	// content-addressing makes that idempotent (same key, same bytes).
	Put(key uint64, blob []byte) error
}

var crcTable = crc64.MakeTable(crc64.ECMA)

// minBlobBytes is the smallest sealed blob: an empty payload plus the
// CRC footer.
const minBlobBytes = 8

// Verify checks a blob's CRC-64 footer. Backends call it on every read
// and write path.
func Verify(blob []byte) error {
	if len(blob) < minBlobBytes {
		return fmt.Errorf("ckptstore: blob of %d bytes is shorter than its checksum footer", len(blob))
	}
	body := blob[:len(blob)-8]
	want := binary.LittleEndian.Uint64(blob[len(blob)-8:])
	if got := crc64.Checksum(body, crcTable); got != want {
		return fmt.Errorf("ckptstore: blob checksum mismatch (footer %016x, computed %016x)", want, got)
	}
	return nil
}

// KeyName renders a key as the fixed-width hex string used in disk
// paths and HTTP URLs.
func KeyName(key uint64) string { return fmt.Sprintf("%016x", key) }

// ParseKey parses a KeyName back to a key.
func ParseKey(name string) (uint64, error) {
	if len(name) != 16 {
		return 0, fmt.Errorf("ckptstore: key %q is not 16 hex digits", name)
	}
	var key uint64
	for _, c := range []byte(name) {
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, fmt.Errorf("ckptstore: key %q is not 16 hex digits", name)
		}
		key = key<<4 | d
	}
	return key, nil
}
