package ckptstore

import (
	"fmt"
	"os"
	"path/filepath"
)

// Disk is the local filesystem backend: one file per checkpoint at
// <root>/<kk>/<keyname>.ckpt, fanned out by the key's leading byte so a
// campaign's store never piles thousands of files into one directory.
//
// Writes are atomic — blob bytes land in a temp file in the final
// directory, then rename into place — so a crash mid-write leaves only
// a *.tmp orphan that Get never reads, never a torn checkpoint. Reads
// re-verify the CRC footer so a blob corrupted at rest is an error, not
// a restore.
type Disk struct {
	root string
}

// NewDisk opens (creating if needed) a disk store rooted at dir.
func NewDisk(dir string) (*Disk, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	return &Disk{root: dir}, nil
}

func (d *Disk) path(key uint64) string {
	name := KeyName(key)
	return filepath.Join(d.root, name[:2], name+".ckpt")
}

// Get reads and verifies the blob stored under key.
func (d *Disk) Get(key uint64) ([]byte, error) {
	blob, err := os.ReadFile(d.path(key))
	if os.IsNotExist(err) {
		return nil, ErrNotFound
	}
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	if err := Verify(blob); err != nil {
		return nil, err
	}
	return blob, nil
}

// Put verifies blob and writes it under key via temp-file + rename.
func (d *Disk) Put(key uint64, blob []byte) error {
	if err := Verify(blob); err != nil {
		return err
	}
	final := d.path(key)
	if err := os.MkdirAll(filepath.Dir(final), 0o755); err != nil {
		return fmt.Errorf("ckptstore: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(final), filepath.Base(final)+".tmp")
	if err != nil {
		return fmt.Errorf("ckptstore: %w", err)
	}
	if _, err := tmp.Write(blob); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("ckptstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckptstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), final); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("ckptstore: %w", err)
	}
	return nil
}
