package ckptstore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
)

// seal wraps a payload in the store's CRC-64 footer, producing a valid
// blob without involving the checkpoint encoder.
func seal(payload []byte) []byte {
	sum := crc64.Checksum(payload, crc64.MakeTable(crc64.ECMA))
	return binary.LittleEndian.AppendUint64(append([]byte(nil), payload...), sum)
}

func TestVerify(t *testing.T) {
	good := seal([]byte("machine state"))
	if err := Verify(good); err != nil {
		t.Fatalf("valid blob rejected: %v", err)
	}
	bad := append([]byte(nil), good...)
	bad[3] ^= 0x40
	if Verify(bad) == nil {
		t.Error("bit-flipped blob passed verification")
	}
	if Verify(good[:len(good)-1]) == nil {
		t.Error("truncated blob passed verification")
	}
	if Verify([]byte{1, 2, 3}) == nil {
		t.Error("blob shorter than its footer passed verification")
	}
}

func TestKeyNameRoundTrip(t *testing.T) {
	for _, key := range []uint64{0, 1, 0xdeadbeefcafe0123, ^uint64(0)} {
		got, err := ParseKey(KeyName(key))
		if err != nil || got != key {
			t.Errorf("ParseKey(KeyName(%#x)) = %#x, %v", key, got, err)
		}
	}
	for _, bad := range []string{"", "xyz", "00112233445566", "00112233445566778", "0011223344556G77"} {
		if _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestDiskRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(0x1122334455667788)
	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	blob := seal([]byte("warm state"))
	if err := d.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get after Put: %q, %v", got, err)
	}
	// Overwrite with identical content is idempotent.
	if err := d.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	if err := d.Put(key, []byte("unsealed")); err == nil {
		t.Error("Put accepted a blob without a valid footer")
	}
}

// TestDiskCrashDuringPut simulates a writer dying between temp-file
// write and rename: the orphaned temp file must be invisible to Get,
// and a later Put of the same key must still land atomically.
func TestDiskCrashDuringPut(t *testing.T) {
	root := t.TempDir()
	d, err := NewDisk(root)
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(0xabcdef)
	blob := seal([]byte("complete checkpoint"))

	// The crash: a torn temp file sits in the final directory, holding a
	// prefix of the blob, never renamed.
	dir := filepath.Dir(d.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	torn := filepath.Join(dir, filepath.Base(d.path(key))+".tmp123456")
	if err := os.WriteFile(torn, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	if _, err := d.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get with only a torn temp file present: %v, want ErrNotFound", err)
	}
	if err := d.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := d.Get(key)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get after recovery Put: %v", err)
	}
}

// TestDiskCorruptAtRest proves a blob corrupted on disk is an error at
// Get, never handed to the decoder.
func TestDiskCorruptAtRest(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := uint64(42)
	if err := d.Put(key, seal([]byte("pristine"))); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(d.path(key))
	if err != nil {
		t.Fatal(err)
	}
	raw[0] ^= 0x01
	if err := os.WriteFile(d.path(key), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(key); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of corrupted blob: %v, want checksum error", err)
	}
}

func newTestClient(url string) *Client {
	c := NewClient(url)
	c.retryWait = 0
	return c
}

func TestHTTPRoundTrip(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()
	c := newTestClient(srv.URL)

	key := uint64(0x5ca1ab1e)
	if _, err := c.Get(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get on empty store: %v, want ErrNotFound", err)
	}
	blob := seal([]byte("over the wire"))
	if err := c.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get(key)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get after Put: %v", err)
	}
	// The server's copy is the disk store's copy.
	onDisk, err := d.Get(key)
	if err != nil || string(onDisk) != string(blob) {
		t.Fatalf("server-side store: %v", err)
	}
}

// TestHTTPRetryOnce proves the client's transient-failure policy: a 503
// answered by a 200 succeeds after exactly one retry; persistent 503s
// fail after exactly two attempts total.
func TestHTTPRetryOnce(t *testing.T) {
	blob := seal([]byte("flaky"))
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if gets.Add(1) == 1 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		w.Write(blob)
	}))
	defer srv.Close()
	c := newTestClient(srv.URL)
	got, err := c.Get(1)
	if err != nil || string(got) != string(blob) {
		t.Fatalf("Get through one 503: %v", err)
	}
	if n := gets.Load(); n != 2 {
		t.Errorf("server saw %d requests, want exactly 2 (one retry)", n)
	}

	var always atomic.Int64
	down := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		always.Add(1)
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer down.Close()
	if _, err := newTestClient(down.URL).Get(1); err == nil {
		t.Error("Get from a persistently failing server succeeded")
	}
	if n := always.Load(); n != 2 {
		t.Errorf("server saw %d requests, want exactly 2 (one retry, then give up)", n)
	}
}

// TestHTTPChecksumRejection proves the client re-verifies fetched
// bodies: a corrupted response is an immediate error with no retry
// (the server's copy is bad; re-fetching cannot help).
func TestHTTPChecksumRejection(t *testing.T) {
	blob := seal([]byte("will be corrupted"))
	var gets atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		bad := append([]byte(nil), blob...)
		bad[2] ^= 0x80
		w.Write(bad)
	}))
	defer srv.Close()
	_, err := newTestClient(srv.URL).Get(1)
	if err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Get of checksum-mismatched body: %v, want checksum error", err)
	}
	if n := gets.Load(); n != 1 {
		t.Errorf("server saw %d requests, want 1 (checksum mismatch is not retried)", n)
	}
}

// TestHTTPTruncatedBody proves a response cut short mid-body fails
// verification client-side.
func TestHTTPTruncatedBody(t *testing.T) {
	blob := seal(make([]byte, 4096))
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(blob[:1000])
	}))
	defer srv.Close()
	if _, err := newTestClient(srv.URL).Get(1); err == nil {
		t.Error("Get of truncated body succeeded")
	}
}

// TestHandlerBadRequests covers the server's input validation.
func TestHandlerBadRequests(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler(d))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/ckpt/nothex")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("GET bad key: status %d, want 400", resp.StatusCode)
	}

	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/ckpt/"+KeyName(7),
		bytes.NewReader([]byte("not a sealed blob")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("PUT unsealed blob: status %d, want 400", resp.StatusCode)
	}
}
