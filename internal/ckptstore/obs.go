package ckptstore

import (
	"errors"
	"time"

	"reunion/internal/obs"
)

// Instrument wraps a store with telemetry under the given scope: a span
// per Get/Put ("store" category) and counters/histograms for operations,
// misses, errors, bytes, and latency. With a disabled scope it returns
// the store unchanged, so the uninstrumented path pays nothing. The
// wrapper is a pure observer — blobs, keys, and errors pass through
// byte-for-byte, and it composes over any backend (Disk, Client, or a
// test double).
func Instrument(s Store, sc obs.Scope) Store {
	if !sc.Enabled() {
		return s
	}
	is := &instrumented{inner: s, trace: sc.Trace}
	if m := sc.Metrics; m != nil {
		is.gets = m.Counter("ckptstore_ops_total", "Checkpoint store operations.", obs.L("op", "get"))
		is.puts = m.Counter("ckptstore_ops_total", "Checkpoint store operations.", obs.L("op", "put"))
		is.misses = m.Counter("ckptstore_misses_total", "Get operations that found no checkpoint.")
		is.getErrs = m.Counter("ckptstore_errors_total", "Failed store operations (misses excluded).", obs.L("op", "get"))
		is.putErrs = m.Counter("ckptstore_errors_total", "Failed store operations (misses excluded).", obs.L("op", "put"))
		is.getBytes = m.Counter("ckptstore_bytes_total", "Blob bytes transferred.", obs.L("op", "get"))
		is.putBytes = m.Counter("ckptstore_bytes_total", "Blob bytes transferred.", obs.L("op", "put"))
		is.getTime = m.Histogram("ckptstore_op_duration_us", "Store operation latency in microseconds.", obs.L("op", "get"))
		is.putTime = m.Histogram("ckptstore_op_duration_us", "Store operation latency in microseconds.", obs.L("op", "put"))
	}
	return is
}

type instrumented struct {
	inner Store
	trace *obs.Tracer

	gets, puts         *obs.Counter
	misses             *obs.Counter
	getErrs, putErrs   *obs.Counter
	getBytes, putBytes *obs.Counter
	getTime, putTime   *obs.Histogram
}

func (s *instrumented) Get(key uint64) ([]byte, error) {
	sp := s.trace.StartSpan("store", "get", obs.Arg{Key: "key", Val: KeyName(key)})
	begin := time.Now() //reunion:nondeterm-ok store latency histogram is host telemetry
	blob, err := s.inner.Get(key)
	s.getTime.Observe(time.Since(begin).Microseconds()) //reunion:nondeterm-ok
	s.gets.Inc()
	outcome := "hit"
	switch {
	case errors.Is(err, ErrNotFound):
		s.misses.Inc()
		outcome = "miss"
	case err != nil:
		s.getErrs.Inc()
		outcome = "error"
	default:
		s.getBytes.Add(int64(len(blob)))
	}
	sp.End(obs.Arg{Key: "outcome", Val: outcome}, obs.Arg{Key: "bytes", Val: len(blob)})
	return blob, err
}

func (s *instrumented) Put(key uint64, blob []byte) error {
	sp := s.trace.StartSpan("store", "put",
		obs.Arg{Key: "key", Val: KeyName(key)}, obs.Arg{Key: "bytes", Val: len(blob)})
	begin := time.Now() //reunion:nondeterm-ok store latency histogram is host telemetry
	err := s.inner.Put(key, blob)
	s.putTime.Observe(time.Since(begin).Microseconds()) //reunion:nondeterm-ok
	s.puts.Inc()
	if err != nil {
		s.putErrs.Inc()
	} else {
		s.putBytes.Add(int64(len(blob)))
	}
	sp.End(obs.Arg{Key: "err", Val: err != nil})
	return err
}
