package ckptstore

import (
	"bytes"
	"testing"

	"reunion/internal/obs"
)

func TestInstrumentDisabledScopePassthrough(t *testing.T) {
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if got := Instrument(d, obs.Scope{}); got != Store(d) {
		t.Fatal("disabled scope must return the store unchanged")
	}
}

func TestInstrumentObservesWithoutPerturbing(t *testing.T) {
	sc := obs.Scope{Trace: obs.NewTracer(0), Metrics: obs.NewRegistry()}
	d, err := NewDisk(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	s := Instrument(d, sc)

	key := uint64(0xfeedface)
	blob := seal([]byte("warm state"))

	// Miss, put, hit — blobs must round-trip byte-identically.
	if _, err := s.Get(key); err != ErrNotFound {
		t.Fatalf("Get before Put: %v, want ErrNotFound", err)
	}
	if err := s.Put(key, blob); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(key)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatal("instrumented store perturbed the blob bytes")
	}

	m := sc.Metrics
	if v := m.Counter("ckptstore_ops_total", "", obs.L("op", "get")).Value(); v != 2 {
		t.Fatalf("get ops = %d, want 2", v)
	}
	if v := m.Counter("ckptstore_ops_total", "", obs.L("op", "put")).Value(); v != 1 {
		t.Fatalf("put ops = %d, want 1", v)
	}
	if v := m.Counter("ckptstore_misses_total", "").Value(); v != 1 {
		t.Fatalf("misses = %d, want 1", v)
	}
	if v := m.Counter("ckptstore_bytes_total", "", obs.L("op", "get")).Value(); v != int64(len(blob)) {
		t.Fatalf("get bytes = %d, want %d", v, len(blob))
	}
	if v := m.Counter("ckptstore_errors_total", "", obs.L("op", "get")).Value(); v != 0 {
		t.Fatalf("a miss must not count as an error, got %d", v)
	}
	if sc.Trace.Len() != 3 {
		t.Fatalf("trace events = %d, want 3 (get, put, get)", sc.Trace.Len())
	}
}
