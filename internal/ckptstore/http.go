package ckptstore

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// The HTTP backend: Handler serves any Store over a two-verb protocol
// (GET/PUT /ckpt/<keyname>), and Client is the matching Store
// implementation a sweep or campaign worker points at a reunion-ckptd.
//
// The client never trusts the wire: every fetched body is re-verified
// against its CRC footer before it is returned, so a truncated or
// bit-flipped response is an error the caller handles by re-warming —
// exactly like a local miss. Transient server errors (5xx) and
// transport failures are retried exactly once after a short backoff;
// 404 maps to ErrNotFound and is never retried.

// Handler serves s over HTTP. Routes:
//
//	GET /ckpt/<16-hex-key>  -> 200 blob | 404 | 500
//	PUT /ckpt/<16-hex-key>  -> 204     | 400 (bad key/blob) | 500
func Handler(s Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/ckpt/", func(w http.ResponseWriter, r *http.Request) {
		key, err := ParseKey(strings.TrimPrefix(r.URL.Path, "/ckpt/"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		switch r.Method {
		case http.MethodGet:
			blob, err := s.Get(key)
			switch {
			case errors.Is(err, ErrNotFound):
				http.Error(w, err.Error(), http.StatusNotFound)
			case err != nil:
				http.Error(w, err.Error(), http.StatusInternalServerError)
			default:
				w.Header().Set("Content-Type", "application/octet-stream")
				w.Write(blob)
			}
		case http.MethodPut:
			blob, err := io.ReadAll(r.Body)
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := Verify(blob); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			if err := s.Put(key, blob); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.WriteHeader(http.StatusNoContent)
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// Client is the Store a worker points at a checkpoint server.
type Client struct {
	base string
	hc   *http.Client

	// retryWait is the backoff before the single retry of a transient
	// failure (tests shrink it).
	retryWait time.Duration
}

// NewClient returns a client for a server at base (e.g.
// "http://ckpt-host:9347"). Requests time out after a bound suited to
// multi-megabyte machine images on a LAN.
func NewClient(base string) *Client {
	return &Client{
		base:      strings.TrimRight(base, "/"),
		hc:        &http.Client{Timeout: 30 * time.Second},
		retryWait: 250 * time.Millisecond,
	}
}

func (c *Client) url(key uint64) string { return c.base + "/ckpt/" + KeyName(key) }

// retryable reports whether a failed attempt is worth one retry:
// transport errors and 5xx responses are transient; 4xx are not.
func retryable(status int, err error) bool {
	return err != nil || status >= 500
}

// Get fetches and re-verifies the blob stored under key. A transient
// failure is retried exactly once; a checksum-mismatched body is an
// immediate error (the server's copy is bad — re-fetching cannot fix
// it).
func (c *Client) Get(key uint64) ([]byte, error) {
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			time.Sleep(c.retryWait)
		}
		resp, err := c.hc.Get(c.url(key))
		if err != nil {
			lastErr = fmt.Errorf("ckptstore: %w", err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusNotFound:
			return nil, ErrNotFound
		case retryable(resp.StatusCode, err):
			lastErr = fmt.Errorf("ckptstore: GET %s: status %d, %v", KeyName(key), resp.StatusCode, err)
			continue
		case resp.StatusCode != http.StatusOK:
			return nil, fmt.Errorf("ckptstore: GET %s: status %d", KeyName(key), resp.StatusCode)
		}
		if err := Verify(body); err != nil {
			return nil, err
		}
		return body, nil
	}
	return nil, lastErr
}

// Put verifies blob and uploads it under key, retrying a transient
// failure exactly once.
func (c *Client) Put(key uint64, blob []byte) error {
	if err := Verify(blob); err != nil {
		return err
	}
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if attempt > 0 {
			time.Sleep(c.retryWait)
		}
		req, err := http.NewRequest(http.MethodPut, c.url(key), bytes.NewReader(blob))
		if err != nil {
			return fmt.Errorf("ckptstore: %w", err)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("ckptstore: %w", err)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if retryable(resp.StatusCode, nil) {
			lastErr = fmt.Errorf("ckptstore: PUT %s: status %d", KeyName(key), resp.StatusCode)
			continue
		}
		if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
			return fmt.Errorf("ckptstore: PUT %s: status %d", KeyName(key), resp.StatusCode)
		}
		return nil
	}
	return lastErr
}
