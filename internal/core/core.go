package core
