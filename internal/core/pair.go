package core

import (
	"fmt"
	"os"

	"reunion/internal/cache"
	"reunion/internal/cpu"
	"reunion/internal/sim"
	"reunion/internal/trace"
)

// Debug enables recovery/compare tracing to stderr (tests and debugging).
var Debug = false

func debugf(format string, args ...any) {
	if Debug {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// SyncTarget is the shared cache controller surface the pair needs: it
// can cancel stale synchronizing requests during recovery escalation
// (the requests themselves travel through the cores' L1s, like misses).
type SyncTarget interface {
	CancelSync(pair int, minToken int64)
}

// PairStats counts Reunion execution-model events.
type PairStats struct {
	Recoveries        int64 // rollback recoveries (fingerprint mismatches)
	IncoherenceEvents int64 // recoveries attributed to input incoherence
	FaultEvents       int64 // recoveries attributed to injected soft errors
	Phase2            int64 // re-execution phase-2 escalations (ARF copy)
	Failures          int64 // unrecoverable (phase-2 mismatch)
	SyncRequests      int64 // synchronizing requests issued (per pair-op)
	AliasForced       int64 // comparisons force-matched by the alias hook
	Timeouts          int64 // divergence watchdog firings
	CompareWaitVocal  int64 // cycles the vocal's interval waited for the mute
	CompareWaitMute   int64
	Compares          int64
}

type sentInterval struct {
	endSeq  int64
	fp      uint16
	at      int64
	extra   int64
	serial  int
	endsMem bool
	dbg     string // populated only when Debug is set
}

// pairSide holds one core's comparison FIFOs. Both queues are consumed
// from a head index instead of re-slicing, so the backing arrays are
// reused across the steady push/pop traffic of the compare loop (a
// re-sliced head loses its capacity forever and forces an allocation on
// every later push). Live elements are sent[sentHead:] and
// decided[decidedHead:]; snapshots store the queues normalized (head 0).
type pairSide struct {
	sent          []sentInterval
	sentHead      int
	decided       []decidedInterval
	decidedHead   int
	pendingExtra  int64
	pendingSerial int
}

// pushSent appends to the sent FIFO, compacting the consumed prefix
// away when the queue is empty (the common steady state).
func (s *pairSide) pushSent(si sentInterval) {
	if s.sentHead == len(s.sent) {
		s.sent, s.sentHead = s.sent[:0], 0
	}
	s.sent = append(s.sent, si)
}

// pushDecided appends to the decided FIFO, compacting likewise.
func (s *pairSide) pushDecided(d decidedInterval) {
	if s.decidedHead == len(s.decided) {
		s.decided, s.decidedHead = s.decided[:0], 0
	}
	s.decided = append(s.decided, d)
}

// Pair implements the Reunion execution model for one logical processor
// pair (Definitions 1-11): a vocal and a mute core compare fingerprints at
// every comparison-interval boundary, retire only on a match, and on a
// mismatch run rollback recovery followed by the two-phase re-execution
// protocol with a synchronizing request at the first memory operation.
type Pair struct {
	ID      int
	VocalC  *cpu.Core       //reunion:shared
	MuteC   *cpu.Core       //reunion:shared
	EQ      *sim.EventQueue //reunion:shared
	L2      SyncTarget      //reunion:shared
	Lat     int64           // one-way comparison latency between the cores
	Timeout int64           // divergence watchdog (cycles one side may run lonely)
	DevSalt uint64

	sides [2]pairSide
	gen   int64

	stepping  bool
	syncArmed bool
	phase     int

	syncBlockSet bool
	syncBlock    uint64
	syncIssued   [2]bool
	syncDone     int

	lonelySince int64

	// pendingFault is set when an injected fault fires on either core so
	// the next recovery is attributed to a soft error, not incoherence.
	pendingFault bool

	// OnFaultDetected, if set, observes every recovery attributed to an
	// injected fault, at the cycle the recovery starts (fault-injection
	// campaigns latch detection latency here).
	OnFaultDetected func()

	// ForceAlias makes the next n mismatching comparisons pass, emulating
	// fingerprint aliasing (drives the phase-2 path in tests).
	ForceAlias int

	intPending  int64
	intServiced int64

	// Trace optionally records recovery/compare events (nil = off).
	Trace *trace.Ring //reunion:shared

	Stats PairStats
}

// RaiseInterrupt implements InterruptSink: the interrupt is replicated to
// both cores and serviced at the next comparison boundary — fingerprint
// comparison synchronizes the pair on a single instruction (paper §4.3).
func (p *Pair) RaiseInterrupt(cost int64) { p.intPending += cost }

// InterruptsServiced implements InterruptSink.
func (p *Pair) InterruptsServiced() int64 { return p.intServiced }

// ResetInterruptStats implements InterruptSink.
func (p *Pair) ResetInterruptStats() { p.intServiced = 0 }

// NewPair wires a vocal and mute core into a logical processor pair.
// Call Bind afterwards (or let the system do it) to install the gate.
func NewPair(id int, eq *sim.EventQueue, l2 SyncTarget, lat, timeout int64, devSalt uint64) *Pair {
	return &Pair{
		ID: id, EQ: eq, L2: l2, Lat: lat, Timeout: timeout, DevSalt: devSalt,
		lonelySince: -1,
	}
}

// Bind attaches the two cores. The pair is their cpu.Gate.
func (p *Pair) Bind(vocal, mute *cpu.Core) {
	if !vocal.Vocal || mute.Vocal {
		panic("core: pair Bind roles reversed")
	}
	p.VocalC, p.MuteC = vocal, mute
	vocal.OnFaultFired = func() { p.pendingFault = true }
	mute.OnFaultFired = func() { p.pendingFault = true }
}

func (p *Pair) sideOf(c *cpu.Core) int {
	if c.Vocal {
		return 0
	}
	return 1
}

// Offer implements cpu.Gate: record the interval fingerprint send.
func (p *Pair) Offer(c *cpu.Core, e *cpu.Entry, send bool, fp uint16) {
	s := &p.sides[p.sideOf(c)]
	s.pendingExtra += e.ExtraCheck
	s.pendingSerial += e.SerialCount
	if !send {
		return
	}
	si := sentInterval{
		endSeq:  e.Seq,
		fp:      fp,
		at:      p.EQ.Now(),
		extra:   s.pendingExtra,
		serial:  s.pendingSerial,
		endsMem: e.In.IsMem(),
	}
	if Debug {
		si.dbg = fmt.Sprintf("pc=%d %v res=%d ea=%#x tk=%v tg=%d", e.PC, e.In, e.Result, e.EA, e.Taken, e.Target)
	}
	s.pushSent(si)
	s.pendingExtra, s.pendingSerial = 0, 0
}

// FlushInterval implements cpu.Gate: an early-ended interval is exchanged
// and compared like any other; both cores flush at the same committed
// position, so the FIFO matching stays aligned.
func (p *Pair) FlushInterval(c *cpu.Core, endSeq int64, fp uint16) {
	s := &p.sides[p.sideOf(c)]
	s.pushSent(sentInterval{
		endSeq: endSeq,
		fp:     fp,
		at:     p.EQ.Now(),
		extra:  s.pendingExtra,
		serial: s.pendingSerial,
	})
	s.pendingExtra, s.pendingSerial = 0, 0
}

// Tick matches fingerprint sends from the two sides and schedules the
// comparison decisions. Call once per cycle.
func (p *Pair) Tick() {
	v, m := &p.sides[0], &p.sides[1]
	for v.sentHead < len(v.sent) && m.sentHead < len(m.sent) {
		a, b := v.sent[v.sentHead], m.sent[m.sentHead]
		v.sentHead++
		m.sentHead++
		p.Stats.Compares++
		// Loose coupling: the comparison completes one comparison latency
		// after the *later* send (the cores swap fingerprints, §4.3).
		send := a.at
		if b.at > send {
			send = b.at
			p.Stats.CompareWaitVocal += b.at - a.at
		} else {
			p.Stats.CompareWaitMute += a.at - b.at
		}
		at := send + p.Lat + a.extra + int64(a.serial)*p.Lat
		if p.intPending > 0 {
			// Service the replicated external interrupt at this boundary:
			// both cores retire the preceding instructions, then handle it.
			at += p.intPending
			p.intPending = 0
			p.intServiced++
		}
		match := a.fp == b.fp
		if !match && p.ForceAlias > 0 {
			p.ForceAlias--
			p.Stats.AliasForced++
			match = true
		}
		gen := p.gen
		aEnd, bEnd, endsMem := a.endSeq, b.endSeq, a.endsMem
		if !match {
			debugf("[%d] %v compare MISMATCH endSeq v=%d m=%d fp %04x/%04x endsMem=%v stepping=%v\n    vocal: %s\n    mute:  %s",
				p.EQ.Now(), p, aEnd, bEnd, a.fp, b.fp, endsMem, p.stepping, a.dbg, b.dbg)
			// Gated at the call site: Addf formats lazily, but its variadic
			// args would still be boxed on every mismatch of every untraced
			// recovery-heavy run.
			if p.Trace.Enabled(trace.Compare) {
				p.Trace.Addf(p.EQ.Now(), p.VocalC.ID, trace.Compare,
					"mismatch endSeq=%d fp=%04x/%04x stepping=%v", aEnd, a.fp, b.fp, p.stepping)
			}
		}
		desc := &EvDecide{PairID: p.ID, Gen: gen, Match: match, AEnd: aEnd, BEnd: bEnd, EndsMem: endsMem}
		p.EQ.AtR(at, desc, p)
	}
	// Divergence watchdog: if one side keeps sending while the other is
	// silent (e.g., the mute wandered off a garbage-value branch with a
	// comparison interval longer than one instruction), force recovery.
	lonely := (v.sentHead < len(v.sent)) != (m.sentHead < len(m.sent))
	switch {
	case !lonely:
		p.lonelySince = -1
	case p.lonelySince < 0:
		p.lonelySince = p.EQ.Now()
	case p.EQ.Now()-p.lonelySince > p.Timeout:
		p.Stats.Timeouts++
		p.recover()
	}
}

// fireDecide is the comparison-decision event body for one matched
// interval: generation-guarded, it either commits the decided interval to
// both sides or starts recovery.
func (p *Pair) fireDecide(gen int64, match bool, aEnd, bEnd int64, endsMem bool) {
	if p.gen != gen {
		return
	}
	// Event-context mutation of the cores' retirement state: both
	// must leave their self-tick short-circuit.
	p.VocalC.MarkDirty()
	p.MuteC.MarkDirty()
	if !match {
		p.recover()
		return
	}
	now := p.EQ.Now()
	p.sides[0].pushDecided(decidedInterval{endSeq: aEnd, at: now})
	p.sides[1].pushDecided(decidedInterval{endSeq: bEnd, at: now})
	if p.stepping && endsMem {
		// Re-execution protocol complete: the first memory
		// operation after rollback compared successfully; normal
		// execution resumes (Definition 11).
		p.stepping = false
		p.syncArmed = false
		p.phase = 0
	}
}

// RunEvent implements sim.EventRunner: the live compare loop schedules
// decisions as descriptor-driven events (no per-event closure).
func (p *Pair) RunEvent(desc any) {
	d := desc.(*EvDecide)
	p.fireDecide(d.Gen, d.Match, d.AEnd, d.BEnd, d.EndsMem)
}

// FireDecide returns the comparison-decision event body for one matched
// interval. The checkpoint decoder rebuilds scheduled decisions from
// their EvDecide descriptors through this factory; the live scheduling
// path (Tick) goes through RunEvent instead, with identical behavior.
func (p *Pair) FireDecide(gen int64, match bool, aEnd, bEnd int64, endsMem bool) func() {
	return func() { p.fireDecide(gen, match, aEnd, bEnd, endsMem) }
}

// QuiesceWake implements sim.Tickable. After a Tick the matching loop has
// drained at least one side, so the only remaining self-driven work is
// the divergence watchdog: with one side lonely and the stamp taken, the
// forced recovery fires at a known cycle. A fresh send since the last
// Tick (either side) means matching or stamping work remains next cycle.
func (p *Pair) QuiesceWake() (int64, bool) {
	v := p.sides[0].sentHead < len(p.sides[0].sent)
	m := p.sides[1].sentHead < len(p.sides[1].sent)
	switch {
	case v && m:
		return 0, false // unmatched sends on both sides: match next tick
	case v != m && p.lonelySince >= 0:
		return p.lonelySince + p.Timeout + 1, true
	case v != m:
		return 0, false // lonely but not yet stamped: tick to stamp
	}
	return 0, true
}

// AccountIdle implements sim.Tickable: the pair keeps no per-cycle
// counters.
func (p *Pair) AccountIdle(int64) {}

// recover performs rollback recovery (Definition 8) and arms the
// re-execution protocol (Definition 11). Called at fingerprint mismatch,
// sync-address divergence, or watchdog timeout.
func (p *Pair) recover() {
	if p.VocalC.Failed() {
		return
	}
	p.gen++
	if p.stepping {
		p.phase++
	} else {
		p.phase = 1
	}
	p.Stats.Recoveries++
	if p.pendingFault {
		p.Stats.FaultEvents++
		p.pendingFault = false
		if p.OnFaultDetected != nil {
			p.OnFaultDetected()
		}
	} else {
		p.Stats.IncoherenceEvents++
	}
	p.sides[0] = pairSide{}
	p.sides[1] = pairSide{}
	// Outstanding synchronizing requests from before this recovery will
	// never be answered (the controller drops stale tokens): abort their
	// L1-side MSHRs and invalidate them at the controller.
	p.L2.CancelSync(p.ID, p.gen)
	if p.syncIssued[0] {
		p.VocalC.L1D.AbortMiss(p.syncBlock)
	}
	if p.syncIssued[1] {
		p.MuteC.L1D.AbortMiss(p.syncBlock)
	}
	p.syncBlockSet = false
	p.syncIssued = [2]bool{}
	p.syncDone = 0
	p.lonelySince = -1

	if p.phase > 2 {
		// Phase 2 already copied the vocal's safe state and comparison
		// still fails: the error is in safe state (e.g., aliased past the
		// fingerprint). Signal a detected, unrecoverable error (§4.3).
		p.Stats.Failures++
		p.VocalC.MarkFailed()
		p.MuteC.MarkFailed()
		return
	}
	if p.phase == 2 {
		// Mute register initialization from the vocal (Definition 9).
		p.Stats.Phase2++
		p.MuteC.SetARF(p.VocalC.ARF())
		seq, pc := p.VocalC.CommitPoint()
		p.MuteC.SetCommitPoint(seq, pc)
	}
	p.VocalC.SquashAll()
	p.MuteC.SquashAll()
	p.stepping = true
	p.syncArmed = true
	if Debug {
		vs, vp := p.VocalC.CommitPoint()
		ms, mp := p.MuteC.CommitPoint()
		debugf("[%d] %v RECOVER phase=%d vocal@(%d,%d) mute@(%d,%d)", p.EQ.Now(), p, p.phase, vs, vp, ms, mp)
	}
	if p.Trace.Enabled(trace.Recovery) {
		seq, pc := p.VocalC.CommitPoint()
		p.Trace.Addf(p.EQ.Now(), p.VocalC.ID, trace.Recovery,
			"phase=%d restart seq=%d pc=%d", p.phase, seq, pc)
	}
}

// DebugString dumps pair internals for wedge diagnosis.
func (p *Pair) DebugString() string {
	return fmt.Sprintf("%v gen=%d phase=%d stepping=%v armed=%v syncIssued=%v syncDone=%d sent=[%d,%d] decided=[%d,%d] stats=%+v",
		p, p.gen, p.phase, p.stepping, p.syncArmed, p.syncIssued, p.syncDone,
		len(p.sides[0].sent)-p.sides[0].sentHead, len(p.sides[1].sent)-p.sides[1].sentHead,
		len(p.sides[0].decided)-p.sides[0].decidedHead, len(p.sides[1].decided)-p.sides[1].decidedHead, p.Stats)
}

// FinalizeReady implements cpu.Gate.
func (p *Pair) FinalizeReady(c *cpu.Core, e *cpu.Entry) bool {
	s := &p.sides[p.sideOf(c)]
	for s.decidedHead < len(s.decided) && e.Seq > s.decided[s.decidedHead].endSeq {
		s.decidedHead++
	}
	if s.decidedHead == len(s.decided) {
		return false
	}
	d := s.decided[s.decidedHead]
	if p.EQ.Now() < d.at {
		return false
	}
	if e.Seq == d.endSeq {
		s.decidedHead++
	}
	return true
}

// RetireWake implements cpu.Gate: pair retirement is purely
// event-driven. Decisions are appended by the comparison event at its
// own fire cycle (their `at` is never in the future), and that event
// marks both cores dirty — so an offered head blocked on an undecided
// interval has no self-wake to report.
func (p *Pair) RetireWake(*cpu.Core, *cpu.Entry) int64 { return 0 }

// Stepping implements cpu.Gate.
func (p *Pair) Stepping(*cpu.Core) bool { return p.stepping }

// SyncArmed implements cpu.Gate.
func (p *Pair) SyncArmed(*cpu.Core) bool { return p.syncArmed }

// SyncIssue implements cpu.Gate: route this side's synchronizing request
// through its L1 to the shared cache controller, which combines the
// pair's two requests into one coherent transaction and replies to both
// atomically (Definition 10).
func (p *Pair) SyncIssue(c *cpu.Core, block uint64, word int, atomic bool, cb *cache.CB, done func(old uint64)) bool {
	side := p.sideOf(c)
	if p.syncIssued[side] {
		return false
	}
	if p.syncBlockSet && p.syncBlock != block {
		// The two sides disagree on the first memory address after
		// rollback: architectural state diverged (possible only past a
		// fingerprint alias). Escalate instead of deadlocking.
		p.recover()
		return false
	}
	gen := p.gen
	wcb := &cache.CB{Kind: cache.CBSyncWrap, Pair: p.ID, Gen: gen, Inner: cb}
	if !c.L1D.SyncFillD(block, word, atomic, gen, wcb, p.SyncDoneFn(gen, done)) {
		return false
	}
	p.syncBlock, p.syncBlockSet = block, true
	p.syncIssued[side] = true
	if c.Vocal {
		p.Stats.SyncRequests++
	}
	return true
}

// SyncDoneFn returns the pair-level wrapper around one side's
// synchronizing-fill completion: under the generation guard it counts the
// pair's completed fills (both done resets the sync bookkeeping), then runs
// the core's own completion. The checkpoint decoder rebuilds CBSyncWrap
// waiters through this same factory.
func (p *Pair) SyncDoneFn(gen int64, done func(uint64)) func(uint64) {
	return func(v uint64) {
		if p.gen == gen {
			p.syncDone++
			if p.syncDone == 2 {
				p.syncBlockSet = false
				p.syncIssued = [2]bool{}
				p.syncDone = 0
			}
		}
		done(v)
	}
}

// DeviceRead implements cpu.Gate: device values are replicated to both
// members of the pair (the vocal issues the real uncached access; the mute
// observes the same value after output comparison of the address).
func (p *Pair) DeviceRead(c *cpu.Core, addr uint64, n int64) int64 {
	return deviceValue(p.DevSalt^uint64(p.ID), addr, n)
}

// InRecovery reports whether the pair is currently re-executing.
func (p *Pair) InRecovery() bool { return p.stepping }

// String identifies the pair.
func (p *Pair) String() string { return fmt.Sprintf("pair%d", p.ID) }
