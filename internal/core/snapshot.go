package core

// Checkpoint support for the execution-model gates (see the reunion
// package's System.Snapshot). Snapshots are shallow struct copies plus
// deep copies of slice fields; Restore writes the copy back into the same
// object, preserving the core/EQ/controller pointers, and re-copies the
// slices so one snapshot restores any number of times.
//
// The comparison-decision events a Pair scheduled before a snapshot are
// restored by the system alongside the event queue; their descriptors
// carry value copies (gen guard, end seqs, match verdict) and the runner
// rebinds to the pair, so they replay exactly against the restored state.
//
// The pair's sent/decided queues are head-indexed in the live struct; a
// snapshot stores only the live region with the heads reset to zero, so
// the serialized form is independent of how far the consumer advanced.

// PairState is a checkpoint of a pair's execution-model state.
type PairState struct {
	pair Pair // shallow copy; side slices fixed up below
}

// Snapshot captures the pair state. Read-only.
func (p *Pair) Snapshot() *PairState {
	s := &PairState{pair: *p}
	for i := range s.pair.sides {
		side := &p.sides[i]
		s.pair.sides[i].sent = append([]sentInterval(nil), side.sent[side.sentHead:]...)
		s.pair.sides[i].decided = append([]decidedInterval(nil), side.decided[side.decidedHead:]...)
		s.pair.sides[i].sentHead = 0
		s.pair.sides[i].decidedHead = 0
	}
	return s
}

// Restore rewrites the pair from a snapshot.
func (p *Pair) Restore(s *PairState) {
	*p = s.pair
	for i := range p.sides {
		p.sides[i].sent = append([]sentInterval(nil), s.pair.sides[i].sent...)
		p.sides[i].decided = append([]decidedInterval(nil), s.pair.sides[i].decided...)
	}
}

// NonRedundantGateState is a checkpoint of the non-redundant gate.
type NonRedundantGateState struct {
	gate NonRedundantGate
}

// Snapshot captures the gate state. Read-only.
func (g *NonRedundantGate) Snapshot() *NonRedundantGateState {
	return &NonRedundantGateState{gate: *g}
}

// Restore rewrites the gate from a snapshot.
func (g *NonRedundantGate) Restore(s *NonRedundantGateState) { *g = s.gate }

// StrictGateState is a checkpoint of the strict-input-replication gate.
type StrictGateState struct {
	gate StrictGate // shallow copy; decided slice fixed up below
}

// Snapshot captures the gate state. Read-only.
func (g *StrictGate) Snapshot() *StrictGateState {
	s := &StrictGateState{gate: *g}
	s.gate.decided = append([]decidedInterval(nil), g.decided...)
	return s
}

// Restore rewrites the gate from a snapshot.
func (g *StrictGate) Restore(s *StrictGateState) {
	*g = s.gate
	g.decided = append([]decidedInterval(nil), s.gate.decided...)
}
