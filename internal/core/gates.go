// Package core implements the paper's primary contribution: the Reunion
// execution model (§3) and its microarchitectural realization (§4), plus
// the two reference execution models the evaluation compares against —
// the non-redundant baseline and the Strict oracle model of strict input
// replication.
//
// The execution models plug into the processor pipeline through the
// cpu.Gate seam, which mediates the in-order check stage: when an
// instruction may architecturally retire, when the pair is single-stepping
// under the re-execution protocol, and when the next load must issue a
// synchronizing request.
package core

import (
	"reunion/internal/cache"
	"reunion/internal/cpu"
	"reunion/internal/sim"
)

func deviceValue(salt, addr uint64, n int64) int64 {
	return int64(sim.Mix64(addr ^ uint64(n)*0x9e3779b97f4a7c15 ^ salt))
}

// InterruptSink is implemented by every execution-model gate: an external
// interrupt is scheduled and handled at the same point in program
// execution on every core of a logical processor (paper §4.3 — fingerprint
// comparison provides the synchronization point for pairs).
type InterruptSink interface {
	// RaiseInterrupt requests interrupt service; the gate charges cost
	// cycles at the next comparison-interval boundary.
	RaiseInterrupt(cost int64)
	// InterruptsServiced reports how many interrupts have been charged.
	InterruptsServiced() int64
	// ResetInterruptStats zeroes the interrupts-serviced counter at a
	// measurement boundary. A pending-but-unserviced interrupt is live
	// state, not a statistic, and survives the reset.
	ResetInterruptStats()
}

// NonRedundantGate retires instructions as soon as they pass check entry:
// no output comparison, no redundancy. Software TLB handlers still cost
// their body (but no comparison exposure).
type NonRedundantGate struct {
	EQ      *sim.EventQueue //reunion:shared
	DevSalt uint64

	intPending  int64
	intServiced int64
}

// Offer implements cpu.Gate: a pending external interrupt is serviced at
// the next retirement boundary.
func (g *NonRedundantGate) Offer(_ *cpu.Core, e *cpu.Entry, send bool, _ uint16) {
	if send && g.intPending > 0 {
		e.ExtraCheck += g.intPending
		g.intPending = 0
		g.intServiced++
	}
}

// FlushInterval implements cpu.Gate.
func (*NonRedundantGate) FlushInterval(*cpu.Core, int64, uint16) {}

// RaiseInterrupt implements InterruptSink.
func (g *NonRedundantGate) RaiseInterrupt(cost int64) { g.intPending += cost }

// InterruptsServiced implements InterruptSink.
func (g *NonRedundantGate) InterruptsServiced() int64 { return g.intServiced }

// ResetInterruptStats implements InterruptSink.
func (g *NonRedundantGate) ResetInterruptStats() { g.intServiced = 0 }

// FinalizeReady implements cpu.Gate.
func (g *NonRedundantGate) FinalizeReady(_ *cpu.Core, e *cpu.Entry) bool {
	return g.EQ.Now() >= e.OfferedAt+e.ExtraCheck
}

// Stepping implements cpu.Gate.
func (*NonRedundantGate) Stepping(*cpu.Core) bool { return false }

// SyncArmed implements cpu.Gate.
func (*NonRedundantGate) SyncArmed(*cpu.Core) bool { return false }

// SyncIssue implements cpu.Gate.
func (*NonRedundantGate) SyncIssue(*cpu.Core, uint64, int, bool, *cache.CB, func(uint64)) bool {
	panic("core: synchronizing request without redundancy")
}

// DeviceRead implements cpu.Gate.
func (g *NonRedundantGate) DeviceRead(c *cpu.Core, addr uint64, n int64) int64 {
	return deviceValue(g.DevSalt^uint64(c.Pair), addr, n)
}

// RetireWake implements cpu.Gate: the head retires exactly when its check
// exposure elapses.
func (g *NonRedundantGate) RetireWake(_ *cpu.Core, e *cpu.Entry) int64 {
	return e.OfferedAt + e.ExtraCheck
}

type decidedInterval struct {
	endSeq int64
	at     int64
}

// StrictGate is the oracle model of strict input replication (paper §5.1):
// fingerprint comparison with a given comparison latency, but zero input-
// replication cost and zero slack between the executions — as if an ideal
// LVQ fed a perfectly synchronized partner. Only one core is simulated;
// the partner's fingerprint send time equals the core's own.
//
// It models exactly the two costs the paper attributes to checking:
// instructions occupy their window entry for the comparison latency after
// entering check, and serializing instructions stall issue until their
// comparison completes (both emerge from the pipeline's gating rules).
type StrictGate struct {
	EQ         *sim.EventQueue //reunion:shared
	CompareLat int64
	DevSalt    uint64

	pendingExtra  int64
	pendingSerial int
	decided       []decidedInterval

	intPending  int64
	intServiced int64
}

// RaiseInterrupt implements InterruptSink.
func (g *StrictGate) RaiseInterrupt(cost int64) { g.intPending += cost }

// InterruptsServiced implements InterruptSink.
func (g *StrictGate) InterruptsServiced() int64 { return g.intServiced }

// ResetInterruptStats implements InterruptSink.
func (g *StrictGate) ResetInterruptStats() { g.intServiced = 0 }

// Offer implements cpu.Gate: an interval's comparison completes a full
// comparison latency after it is sent (plus any software-TLB-handler
// exposures accumulated by its instructions).
func (g *StrictGate) Offer(_ *cpu.Core, e *cpu.Entry, send bool, _ uint16) {
	g.pendingExtra += e.ExtraCheck
	g.pendingSerial += e.SerialCount
	if !send {
		return
	}
	if g.intPending > 0 {
		g.pendingExtra += g.intPending
		g.intPending = 0
		g.intServiced++
	}
	at := g.EQ.Now() + g.CompareLat + g.pendingExtra + int64(g.pendingSerial)*g.CompareLat
	g.decided = append(g.decided, decidedInterval{endSeq: e.Seq, at: at})
	g.pendingExtra, g.pendingSerial = 0, 0
}

// FlushInterval implements cpu.Gate: the early-ended interval compares
// like any other.
func (g *StrictGate) FlushInterval(_ *cpu.Core, endSeq int64, _ uint16) {
	at := g.EQ.Now() + g.CompareLat + g.pendingExtra + int64(g.pendingSerial)*g.CompareLat
	g.decided = append(g.decided, decidedInterval{endSeq: endSeq, at: at})
	g.pendingExtra, g.pendingSerial = 0, 0
}

// FinalizeReady implements cpu.Gate.
func (g *StrictGate) FinalizeReady(_ *cpu.Core, e *cpu.Entry) bool {
	if len(g.decided) == 0 {
		return false
	}
	d := g.decided[0]
	if e.Seq > d.endSeq {
		// Stale decision from before a squash; discard and retry.
		g.decided = g.decided[1:]
		return g.FinalizeReady(nil, e)
	}
	if g.EQ.Now() < d.at {
		return false
	}
	if e.Seq == d.endSeq {
		g.decided = g.decided[1:]
	}
	return true
}

// Stepping implements cpu.Gate.
func (*StrictGate) Stepping(*cpu.Core) bool { return false }

// SyncArmed implements cpu.Gate.
func (*StrictGate) SyncArmed(*cpu.Core) bool { return false }

// SyncIssue implements cpu.Gate. Strict input replication never sees input
// incoherence, so the re-execution protocol is never invoked.
func (*StrictGate) SyncIssue(*cpu.Core, uint64, int, bool, *cache.CB, func(uint64)) bool {
	panic("core: synchronizing request under strict input replication")
}

// DeviceRead implements cpu.Gate.
func (g *StrictGate) DeviceRead(c *cpu.Core, addr uint64, n int64) int64 {
	return deviceValue(g.DevSalt^uint64(c.Pair), addr, n)
}

// RetireWake implements cpu.Gate: the earliest non-stale pending decision
// completes at its scheduled cycle; with no pending decision the head
// waits for a younger instruction to close the interval (other pipeline
// activity, which ends any fast-forward by itself).
func (g *StrictGate) RetireWake(_ *cpu.Core, e *cpu.Entry) int64 {
	for _, d := range g.decided {
		if e.Seq <= d.endSeq {
			return d.at
		}
	}
	return 0
}

// Reset clears gate state after a pipeline squash in tests.
func (g *StrictGate) Reset() {
	g.decided = g.decided[:0]
	g.pendingExtra, g.pendingSerial = 0, 0
}
