package core

import (
	"testing"

	"reunion/internal/cpu"
	"reunion/internal/isa"
	"reunion/internal/sim"
)

func entry(seq int64, op isa.Op) *cpu.Entry {
	return &cpu.Entry{Seq: seq, In: isa.Instr{Op: op}}
}

func TestNonRedundantGateImmediate(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &NonRedundantGate{EQ: eq}
	e := entry(0, isa.Add)
	e.OfferedAt = eq.Now()
	g.Offer(nil, e, true, 0)
	if !g.FinalizeReady(nil, e) {
		t.Fatal("non-redundant retirement must be immediate")
	}
	if g.Stepping(nil) || g.SyncArmed(nil) {
		t.Fatal("no re-execution machinery without redundancy")
	}
}

func TestNonRedundantGateChargesHandlerBody(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &NonRedundantGate{EQ: eq}
	e := entry(0, isa.Ld)
	e.OfferedAt = eq.Now()
	e.ExtraCheck = 30 // software TLB handler body
	g.Offer(nil, e, true, 0)
	if g.FinalizeReady(nil, e) {
		t.Fatal("handler body must delay retirement")
	}
	eq.Advance(30)
	if !g.FinalizeReady(nil, e) {
		t.Fatal("retirement after handler body")
	}
}

func TestStrictGateComparisonLatency(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &StrictGate{EQ: eq, CompareLat: 10}
	e := entry(5, isa.Add)
	e.OfferedAt = eq.Now()
	g.Offer(nil, e, true, 0x1234)
	if g.FinalizeReady(nil, e) {
		t.Fatal("retired before the comparison latency elapsed")
	}
	eq.Advance(9)
	if g.FinalizeReady(nil, e) {
		t.Fatal("retired one cycle early")
	}
	eq.Advance(10)
	if !g.FinalizeReady(nil, e) {
		t.Fatal("not retired at send + latency")
	}
}

func TestStrictGateIntervalGrouping(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &StrictGate{EQ: eq, CompareLat: 10}
	// Three instructions, one interval ending at seq 2.
	e0, e1, e2 := entry(0, isa.Add), entry(1, isa.Add), entry(2, isa.Add)
	g.Offer(nil, e0, false, 0)
	g.Offer(nil, e1, false, 0)
	g.Offer(nil, e2, true, 0xbeef)
	if g.FinalizeReady(nil, e0) {
		t.Fatal("interval member retired before the interval compared")
	}
	eq.Advance(10)
	for _, e := range []*cpu.Entry{e0, e1, e2} {
		if !g.FinalizeReady(nil, e) {
			t.Fatalf("seq %d not released after interval compare", e.Seq)
		}
	}
	// The decision is consumed by the endSeq entry.
	if g.FinalizeReady(nil, entry(3, isa.Add)) {
		t.Fatal("released an instruction from an uncompared interval")
	}
}

func TestStrictGateSerialExposures(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &StrictGate{EQ: eq, CompareLat: 10}
	e := entry(0, isa.Trap)
	e.SerialCount = 4 // software TLB handler: 4 extra exposures
	e.ExtraCheck = 30
	g.Offer(nil, e, true, 0)
	// decision at 10 + 30 + 4*10 = 80
	eq.Advance(79)
	if g.FinalizeReady(nil, e) {
		t.Fatal("serial exposures not charged")
	}
	eq.Advance(80)
	if !g.FinalizeReady(nil, e) {
		t.Fatal("not released after full exposure")
	}
}

func TestStrictGateStaleDecisionDiscarded(t *testing.T) {
	eq := sim.NewEventQueue()
	g := &StrictGate{EQ: eq, CompareLat: 0}
	g.Offer(nil, entry(0, isa.Add), true, 0)
	eq.Advance(5)
	// An entry with a larger seq arrives (post-squash seq reuse pattern):
	// the stale decision must be discarded, not wedge the gate.
	e := entry(9, isa.Add)
	g.Offer(nil, e, true, 0)
	eq.Advance(10)
	if !g.FinalizeReady(nil, e) {
		t.Fatal("stale decision wedged the gate")
	}
}

func TestDeviceValueDeterminism(t *testing.T) {
	a := deviceValue(1, 0x100, 0)
	if a != deviceValue(1, 0x100, 0) {
		t.Fatal("device values must be deterministic")
	}
	if a == deviceValue(1, 0x100, 1) {
		t.Fatal("successive device reads must differ")
	}
	if a == deviceValue(2, 0x100, 0) {
		t.Fatal("different salts must differ")
	}
}
