package core

import (
	"fmt"

	"reunion/internal/bin"
	"reunion/internal/trace"
)

// Wire codecs for the execution-model gates, plus the serializable
// descriptor for the pair's scheduled comparison decisions.

// EvDecide is the event descriptor for one scheduled comparison decision
// (the closure Pair.FireDecide builds, reified).
type EvDecide struct {
	PairID  int
	Gen     int64
	Match   bool
	AEnd    int64
	BEnd    int64
	EndsMem bool
}

// Encode writes the descriptor.
func (d *EvDecide) Encode(w *bin.Writer) {
	w.Int(d.PairID)
	w.I64(d.Gen)
	w.Bool(d.Match)
	w.I64(d.AEnd)
	w.I64(d.BEnd)
	w.Bool(d.EndsMem)
}

// DecodeEvDecide reads a descriptor written by Encode.
func DecodeEvDecide(r *bin.Reader) *EvDecide {
	d := &EvDecide{
		PairID:  r.Int(),
		Gen:     r.I64(),
		Match:   r.Bool(),
		AEnd:    r.I64(),
		BEnd:    r.I64(),
		EndsMem: r.Bool(),
	}
	if r.Err() != nil {
		return nil
	}
	return d
}

func encodeSentInterval(w *bin.Writer, si *sentInterval) {
	w.I64(si.endSeq)
	w.U16(si.fp)
	w.I64(si.at)
	w.I64(si.extra)
	w.Int(si.serial)
	w.Bool(si.endsMem)
	w.String(si.dbg)
}

func decodeSentInterval(r *bin.Reader) sentInterval {
	return sentInterval{
		endSeq:  r.I64(),
		fp:      r.U16(),
		at:      r.I64(),
		extra:   r.I64(),
		serial:  r.Int(),
		endsMem: r.Bool(),
		dbg:     r.String(),
	}
}

const sentIntervalWireBytes = 8 + 2 + 8 + 8 + 8 + 1 + 1

func encodeDecided(w *bin.Writer, ds []decidedInterval) {
	w.Uvarint(uint64(len(ds)))
	for _, d := range ds {
		w.I64(d.endSeq)
		w.I64(d.at)
	}
}

func decodeDecided(r *bin.Reader) []decidedInterval {
	n := r.Len(16)
	var ds []decidedInterval
	for i := 0; i < n; i++ {
		ds = append(ds, decidedInterval{endSeq: r.I64(), at: r.I64()})
	}
	return ds
}

// Encode writes the pair snapshot.
func (s *PairState) Encode(w *bin.Writer) {
	p := &s.pair
	w.Int(p.ID)
	w.I64(p.Lat)
	w.I64(p.Timeout)
	w.U64(p.DevSalt)
	for i := range p.sides {
		side := &p.sides[i]
		w.Uvarint(uint64(len(side.sent)))
		for j := range side.sent {
			encodeSentInterval(w, &side.sent[j])
		}
		encodeDecided(w, side.decided)
		w.I64(side.pendingExtra)
		w.Int(side.pendingSerial)
	}
	w.I64(p.gen)
	w.Bool(p.stepping)
	w.Bool(p.syncArmed)
	w.Int(p.phase)
	w.Bool(p.syncBlockSet)
	w.U64(p.syncBlock)
	w.Bool(p.syncIssued[0])
	w.Bool(p.syncIssued[1])
	w.Int(p.syncDone)
	w.I64(p.lonelySince)
	w.Bool(p.pendingFault)
	w.Int(p.ForceAlias)
	w.I64(p.intPending)
	w.I64(p.intServiced)
	st := &p.Stats
	for _, v := range []int64{st.Recoveries, st.IncoherenceEvents, st.FaultEvents,
		st.Phase2, st.Failures, st.SyncRequests, st.AliasForced, st.Timeouts,
		st.CompareWaitVocal, st.CompareWaitMute, st.Compares} {
		w.I64(v)
	}
}

// DecodePairState reads a pair snapshot written by Encode. Pointer fields
// (cores, event queue, controller, hooks) are nil until BindTo.
func DecodePairState(r *bin.Reader) *PairState {
	s := &PairState{}
	p := &s.pair
	p.ID = r.Int()
	p.Lat = r.I64()
	p.Timeout = r.I64()
	p.DevSalt = r.U64()
	for i := range p.sides {
		side := &p.sides[i]
		n := r.Len(sentIntervalWireBytes)
		for j := 0; j < n; j++ {
			side.sent = append(side.sent, decodeSentInterval(r))
		}
		side.decided = decodeDecided(r)
		side.pendingExtra = r.I64()
		side.pendingSerial = r.Int()
	}
	p.gen = r.I64()
	p.stepping = r.Bool()
	p.syncArmed = r.Bool()
	p.phase = r.Int()
	p.syncBlockSet = r.Bool()
	p.syncBlock = r.U64()
	p.syncIssued[0] = r.Bool()
	p.syncIssued[1] = r.Bool()
	p.syncDone = r.Int()
	p.lonelySince = r.I64()
	p.pendingFault = r.Bool()
	p.ForceAlias = r.Int()
	p.intPending = r.I64()
	p.intServiced = r.I64()
	st := &p.Stats
	for _, v := range []*int64{&st.Recoveries, &st.IncoherenceEvents, &st.FaultEvents,
		&st.Phase2, &st.Failures, &st.SyncRequests, &st.AliasForced, &st.Timeouts,
		&st.CompareWaitVocal, &st.CompareWaitMute, &st.Compares} {
		*v = r.I64()
	}
	if r.Err() != nil {
		return nil
	}
	return s
}

// BindTo fixes the snapshot's pointer fields from the live pair so Restore
// (which writes the whole struct back) preserves the live wiring. It
// rejects a snapshot whose identity does not match the pair it is being
// bound to.
func (s *PairState) BindTo(live *Pair) error {
	if s.pair.ID != live.ID {
		return fmt.Errorf("core: pair snapshot for pair %d bound to pair %d", s.pair.ID, live.ID)
	}
	s.pair.VocalC = live.VocalC
	s.pair.MuteC = live.MuteC
	s.pair.EQ = live.EQ
	s.pair.L2 = live.L2
	s.pair.OnFaultDetected = live.OnFaultDetected
	s.pair.Trace = live.Trace
	return nil
}

// Trace returns the trace ring pointer carried by the snapshot (System
// restore plumbing; a decoded snapshot carries nil until BindTo).
func (s *PairState) TraceRing() *trace.Ring { return s.pair.Trace }

// Encode writes the non-redundant-gate snapshot.
func (s *NonRedundantGateState) Encode(w *bin.Writer) {
	w.U64(s.gate.DevSalt)
	w.I64(s.gate.intPending)
	w.I64(s.gate.intServiced)
}

// DecodeNonRedundantGateState reads a snapshot written by Encode.
func DecodeNonRedundantGateState(r *bin.Reader) *NonRedundantGateState {
	s := &NonRedundantGateState{}
	s.gate.DevSalt = r.U64()
	s.gate.intPending = r.I64()
	s.gate.intServiced = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// BindTo fixes the snapshot's event-queue pointer from the live gate.
func (s *NonRedundantGateState) BindTo(live *NonRedundantGate) { s.gate.EQ = live.EQ }

// Encode writes the strict-gate snapshot.
func (s *StrictGateState) Encode(w *bin.Writer) {
	w.I64(s.gate.CompareLat)
	w.U64(s.gate.DevSalt)
	w.I64(s.gate.pendingExtra)
	w.Int(s.gate.pendingSerial)
	encodeDecided(w, s.gate.decided)
	w.I64(s.gate.intPending)
	w.I64(s.gate.intServiced)
}

// DecodeStrictGateState reads a snapshot written by Encode.
func DecodeStrictGateState(r *bin.Reader) *StrictGateState {
	s := &StrictGateState{}
	s.gate.CompareLat = r.I64()
	s.gate.DevSalt = r.U64()
	s.gate.pendingExtra = r.I64()
	s.gate.pendingSerial = r.Int()
	s.gate.decided = decodeDecided(r)
	s.gate.intPending = r.I64()
	s.gate.intServiced = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// BindTo fixes the snapshot's event-queue pointer from the live gate.
func (s *StrictGateState) BindTo(live *StrictGate) { s.gate.EQ = live.EQ }
