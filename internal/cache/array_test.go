package cache

import (
	"testing"
	"testing/quick"

	"reunion/internal/mem"
)

func blk(n uint64) uint64 { return n * mem.BlockBytes }

func TestArrayGeometry(t *testing.T) {
	a := NewArray(64<<10, 2) // 64KB 2-way: 512 sets
	if a.Sets() != 512 || a.Ways() != 2 {
		t.Fatalf("sets=%d ways=%d", a.Sets(), a.Ways())
	}
}

func TestArrayPanicsOnBadGeometry(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewArray(3*64, 1) // 3 sets: not a power of two
}

func TestLookupInstall(t *testing.T) {
	a := NewArray(1024, 2) // 8 sets
	var d mem.Block
	d[0] = 7
	if a.Lookup(blk(1)) != nil {
		t.Fatal("hit in empty cache")
	}
	line, _, evicted := a.Install(blk(1), &d, Shared)
	if evicted {
		t.Fatal("eviction from empty set")
	}
	if line.Data[0] != 7 || line.State != Shared {
		t.Fatal("install contents wrong")
	}
	got := a.Lookup(blk(1))
	if got == nil || got.Data[0] != 7 {
		t.Fatal("lookup after install failed")
	}
}

func TestLRUVictimSelection(t *testing.T) {
	a := NewArray(2*64, 2) // 1 set, 2 ways
	var d mem.Block
	a.Install(blk(0), &d, Shared)
	a.Install(blk(1), &d, Shared)
	a.Lookup(blk(0)) // touch 0: 1 is now LRU
	_, victim, evicted := a.Install(blk(2), &d, Shared)
	if !evicted || victim.Block != blk(1) {
		t.Fatalf("victim=%#x evicted=%v, want block 1", victim.Block, evicted)
	}
	if a.Peek(blk(0)) == nil || a.Peek(blk(2)) == nil || a.Peek(blk(1)) != nil {
		t.Fatal("post-eviction contents wrong")
	}
}

func TestLockedLinesNeverVictims(t *testing.T) {
	a := NewArray(2*64, 2)
	var d mem.Block
	l0, _, _ := a.Install(blk(0), &d, Modified)
	a.Install(blk(1), &d, Shared)
	l0.Locked = true
	a.Lookup(blk(1)) // make block 1 MRU; LRU is the locked line
	_, victim, evicted := a.Install(blk(2), &d, Shared)
	if !evicted || victim.Block != blk(1) {
		t.Fatalf("victimized %#x; must skip locked line", victim.Block)
	}
}

func TestVictimNilWhenAllLocked(t *testing.T) {
	a := NewArray(2*64, 2)
	var d mem.Block
	l0, _, _ := a.Install(blk(0), &d, Modified)
	l1, _, _ := a.Install(blk(1), &d, Modified)
	l0.Locked, l1.Locked = true, true
	if a.Victim(blk(2)) != nil {
		t.Fatal("victim from fully locked set")
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	a := NewArray(1024, 2)
	var d mem.Block
	d[3] = 99
	line, _, _ := a.Install(blk(5), &d, Modified)
	line.Dirty = true

	prior, ok, busy := a.Downgrade(blk(5))
	if !ok || busy || prior.Data[3] != 99 || !prior.Dirty {
		t.Fatalf("downgrade: ok=%v busy=%v", ok, busy)
	}
	if got := a.Peek(blk(5)); got.State != Shared || got.Dirty {
		t.Fatal("downgrade left wrong state")
	}

	prior, ok, busy = a.Invalidate(blk(5))
	if !ok || busy || prior.State != Shared {
		t.Fatalf("invalidate: ok=%v busy=%v", ok, busy)
	}
	if a.Peek(blk(5)) != nil {
		t.Fatal("line survived invalidate")
	}

	_, ok, _ = a.Invalidate(blk(5))
	if ok {
		t.Fatal("invalidate of absent line reported ok")
	}
}

func TestLockedProbesReportBusy(t *testing.T) {
	a := NewArray(1024, 2)
	var d mem.Block
	line, _, _ := a.Install(blk(5), &d, Modified)
	line.Locked = true
	if _, ok, busy := a.Invalidate(blk(5)); ok || !busy {
		t.Fatal("locked invalidate must report busy")
	}
	if _, ok, busy := a.Downgrade(blk(5)); ok || !busy {
		t.Fatal("locked downgrade must report busy")
	}
	if a.Peek(blk(5)) == nil {
		t.Fatal("busy probe must not remove the line")
	}
}

func TestInstallRefreshesResidentLine(t *testing.T) {
	a := NewArray(1024, 2)
	var d1, d2 mem.Block
	d1[0], d2[0] = 1, 2
	a.Install(blk(7), &d1, Shared)
	line, _, evicted := a.Install(blk(7), &d2, Exclusive)
	if evicted {
		t.Fatal("refill of resident line must not evict")
	}
	if line.Data[0] != 2 || line.State != Exclusive {
		t.Fatal("refill did not update in place")
	}
}

func TestStateString(t *testing.T) {
	for s, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M", State(9): "?"} {
		if s.String() != want {
			t.Errorf("%d -> %q want %q", s, s.String(), want)
		}
	}
}

// Property: against a map oracle, a single-master cache (install on miss,
// write through Lookup) always returns the data last written per block.
func TestArrayVsOracle(t *testing.T) {
	a := NewArray(4<<10, 4)
	oracle := make(map[uint64]uint64) // block -> word0 value
	backing := make(map[uint64]uint64)
	f := func(ops []struct {
		N     uint16
		Val   uint64
		Write bool
	}) bool {
		for _, op := range ops {
			b := blk(uint64(op.N % 256))
			line := a.Lookup(b)
			if line == nil {
				var d mem.Block
				d[0] = backing[b]
				var victim Line
				var ev bool
				line, victim, ev = a.Install(b, &d, Shared)
				if ev {
					backing[victim.Block] = victim.Data[0] // write back
				}
			}
			if op.Write {
				line.Data[0] = op.Val
				line.Dirty = true
				oracle[b] = op.Val
			} else if line.Data[0] != oracle[b] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestForEachValid(t *testing.T) {
	a := NewArray(1024, 2)
	var d mem.Block
	a.Install(blk(1), &d, Shared)
	a.Install(blk(2), &d, Modified)
	n := 0
	a.ForEachValid(func(l *Line) { n++ })
	if n != 2 {
		t.Fatalf("visited %d lines, want 2", n)
	}
}
