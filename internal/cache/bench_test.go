package cache

import "testing"

// BenchmarkL1ProbeHit measures the L1 hit fast path the issue stage
// leans on: TryLoad against a resident line. This is the probe the tick
// path batches per issue window, so its cost (and allocation behavior)
// is directly on the kinstr/s critical path.
func BenchmarkL1ProbeHit(b *testing.B) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	// Warm 8 lines, batched to fit the test cache's 4 MSHRs.
	for batch := 0; batch < 2; batch++ {
		for i := batch * 4; i < batch*4+4; i++ {
			c.Load(blk(uint64(i)), 0, func(uint64) {})
		}
		fb.replyAll(42, false)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, ok := c.TryLoad(blk(uint64(i&7)), i&3); !ok {
			b.Fatal("warm line missed")
		}
	}
}

// BenchmarkL1StoreHit measures the store fast path (hit in Modified or
// Exclusive state, completing synchronously).
func BenchmarkL1StoreHit(b *testing.B) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	c.Store(blk(1), 0, 7, func() {})
	fb.replyAll(0, true)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !c.TryStore(blk(1), i&3, uint64(i)) {
			b.Fatal("warm store missed")
		}
	}
}

// TestL1ProbeHitZeroAlloc pins the hit paths at zero allocations: a
// simulated L1 probe must never touch the Go heap, or a reunion-mode
// pair tick (dozens of probes) turns into allocator traffic.
func TestL1ProbeHitZeroAlloc(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	c.Load(blk(1), 0, nil)
	c.Store(blk(2), 0, 7, func() {})
	fb.replyAll(42, true)
	if a := testing.AllocsPerRun(1000, func() {
		c.TryLoad(blk(1), 2)
		c.TryStore(blk(2), 3, 9)
	}); a != 0 {
		t.Fatalf("L1 hit probes allocate %v per run, want 0", a)
	}
}
