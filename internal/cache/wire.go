package cache

import (
	"errors"
	"fmt"

	"reunion/internal/bin"
	"reunion/internal/mem"
)

// This file is the cache package's half of checkpoint serialization: wire
// codecs for the array, the L1 (including MSHR waiters), and request
// bodies, plus the CB descriptor that reifies waiter completion callbacks
// into plain data a checkpoint can carry across a process boundary.

// CBKind identifies which completion callback a CB describes.
type CBKind uint8

// Callback descriptor kinds. Each corresponds to exactly one closure shape
// in the pipeline/pair layer; the checkpoint decoder rebuilds the closure
// from the descriptor's fields via the same factory the live pipeline used.
const (
	// CBIfetchDone completes an instruction-cache miss: clears the core's
	// icacheWait if the fetch epoch still matches.
	CBIfetchDone CBKind = iota + 1
	// CBLoadDone completes a load (normal or synchronizing): writes the
	// value into ROB entry Idx if (Seq, Epoch) still match.
	CBLoadDone
	// CBStoreDone completes a store-buffer drain for Seq.
	CBStoreDone
	// CBAtomicBegin completes an atomic-begin miss: locks the filled line
	// (AtomicFillWrap) and then finishes the CAS in ROB entry Idx.
	CBAtomicBegin
	// CBAtomicFin finishes a CAS in ROB entry Idx without the line-locking
	// wrapper (synchronizing fills lock in the fill path itself).
	CBAtomicFin
	// CBSyncWrap is the pair-level wrapper around a synchronizing fill's
	// completion: counts the pair's done fills under a generation guard,
	// then runs Inner.
	CBSyncWrap
)

// CB is a serializable callback descriptor: the captures of one completion
// closure, reified. Which fields are meaningful depends on Kind.
type CB struct {
	Kind  CBKind
	Core  int   // global core index (owner of the ROB/fetch state)
	Idx   int   // ROB slot
	Seq   int64 // instruction sequence number guard
	Epoch int64 // squash epoch guard
	Block uint64
	Word  int
	Pair  int   // logical pair index (CBSyncWrap)
	Gen   int64 // recovery generation guard (CBSyncWrap)
	Inner *CB   // wrapped callback (CBSyncWrap)
}

// maxCBDepth bounds Inner nesting on decode; the deepest real chain is a
// CBSyncWrap around a leaf.
const maxCBDepth = 4

// Encode writes the descriptor.
func (cb *CB) Encode(w *bin.Writer) {
	w.U8(uint8(cb.Kind))
	w.Int(cb.Core)
	w.Int(cb.Idx)
	w.I64(cb.Seq)
	w.I64(cb.Epoch)
	w.U64(cb.Block)
	w.Int(cb.Word)
	w.Int(cb.Pair)
	w.I64(cb.Gen)
	w.Bool(cb.Inner != nil)
	if cb.Inner != nil {
		cb.Inner.Encode(w)
	}
}

// DecodeCB reads a descriptor written by Encode.
func DecodeCB(r *bin.Reader) *CB {
	return decodeCB(r, 0)
}

func decodeCB(r *bin.Reader, depth int) *CB {
	if depth >= maxCBDepth {
		r.Fail(errors.New("cache: callback descriptor nested too deeply"))
		return nil
	}
	cb := &CB{
		Kind:  CBKind(r.U8()),
		Core:  r.Int(),
		Idx:   r.Int(),
		Seq:   r.I64(),
		Epoch: r.I64(),
		Block: r.U64(),
		Word:  r.Int(),
		Pair:  r.Int(),
		Gen:   r.I64(),
	}
	if cb.Kind < CBIfetchDone || cb.Kind > CBSyncWrap {
		r.Fail(fmt.Errorf("cache: unknown callback kind %d", cb.Kind))
		return nil
	}
	if r.Bool() {
		cb.Inner = decodeCB(r, depth+1)
	}
	if r.Err() != nil {
		return nil
	}
	return cb
}

// --- request bodies ---

// EncodeBody writes every Req field except Done (which the checkpoint
// rebinds from (Kind, Core) on decode: all live fill completions are
// L1.FillFn closures, and writebacks carry no completion at all).
func (r *Req) EncodeBody(w *bin.Writer) {
	w.U8(uint8(r.Kind))
	w.U64(r.Block)
	w.Int(r.Core)
	w.Int(r.Pair)
	w.Bool(r.Vocal)
	w.I64(r.Token)
	w.Bool(r.Data != nil)
	if r.Data != nil {
		for _, word := range r.Data {
			w.U64(word)
		}
	}
}

// DecodeReqBody reads a request body; Done is left nil for the checkpoint
// binder to fill in.
func DecodeReqBody(rd *bin.Reader) *Req {
	r := &Req{
		Kind:  ReqKind(rd.U8()),
		Block: rd.U64(),
		Core:  rd.Int(),
		Pair:  rd.Int(),
		Vocal: rd.Bool(),
		Token: rd.I64(),
	}
	if r.Kind > Sync {
		rd.Fail(fmt.Errorf("cache: unknown request kind %d", r.Kind))
		return nil
	}
	if rd.Bool() {
		var data mem.Block
		for i := range data {
			data[i] = rd.U64()
		}
		r.Data = &data
	}
	if rd.Err() != nil {
		return nil
	}
	return r
}

// --- array ---

func encodeLine(w *bin.Writer, l *Line) {
	w.U64(l.Block)
	w.U8(uint8(l.State))
	w.Bool(l.Dirty)
	w.Bool(l.Locked)
	for _, word := range l.Data {
		w.U64(word)
	}
	w.I64(l.lru)
}

func decodeLine(r *bin.Reader) Line {
	var l Line
	l.Block = r.U64()
	l.State = State(r.U8())
	if l.State > Modified {
		r.Fail(fmt.Errorf("cache: unknown line state %d", l.State))
		return Line{}
	}
	l.Dirty = r.Bool()
	l.Locked = r.Bool()
	for i := range l.Data {
		l.Data[i] = r.U64()
	}
	l.lru = r.I64()
	return l
}

// lineWireBytes is a conservative lower bound on an encoded Line, used to
// bound decoded lengths against remaining input.
const lineWireBytes = 8 + 1 + 1 + 1 + mem.BlockWords*8 + 8

// Encode writes the array snapshot.
func (s *ArrayState) Encode(w *bin.Writer) {
	w.I64(s.tick)
	w.Uvarint(uint64(len(s.idx)))
	for i, flat := range s.idx {
		w.U32(uint32(flat))
		encodeLine(w, &s.lines[i])
	}
}

// DecodeArrayState reads an array snapshot written by Encode.
func DecodeArrayState(r *bin.Reader) ArrayState {
	var s ArrayState
	s.tick = r.I64()
	n := r.Len(4 + lineWireBytes)
	for i := 0; i < n; i++ {
		flat := int32(r.U32())
		line := decodeLine(r)
		if i > 0 && flat <= s.idx[len(s.idx)-1] {
			r.Fail(errors.New("cache: array snapshot indices not strictly increasing"))
			return ArrayState{}
		}
		s.idx = append(s.idx, flat)
		s.lines = append(s.lines, line)
	}
	if r.Err() != nil {
		return ArrayState{}
	}
	return s
}

// --- L1 ---

// ErrUnserializableWaiter reports an MSHR waiter whose completion closure
// was registered without a CB descriptor (test-only entry points); such a
// cache cannot cross a process boundary.
var ErrUnserializableWaiter = errors.New("cache: MSHR waiter has no callback descriptor")

// Encode writes the L1 snapshot. It fails when a waiter carries a live
// completion callback but no descriptor to rebuild it from.
func (s *L1State) Encode(w *bin.Writer) error {
	s.arr.Encode(w)
	w.Uvarint(uint64(len(s.mshrs)))
	for i := range s.mshrs {
		m := &s.mshrs[i]
		w.Bool(m.valid)
		w.U64(m.block)
		w.Bool(m.forX)
		w.Uvarint(uint64(len(m.waiters)))
		for j := range m.waiters {
			wt := &m.waiters[j]
			if wt.cb == nil && (wt.loadFn != nil || wt.storeFn != nil) {
				return ErrUnserializableWaiter
			}
			w.Bool(wt.isStore)
			w.Bool(wt.isAtomic)
			w.Int(wt.word)
			w.U64(wt.data)
			w.Bool(wt.cb != nil)
			if wt.cb != nil {
				wt.cb.Encode(w)
			}
		}
	}
	w.Int(s.free)
	w.I64(s.hits)
	w.I64(s.misses)
	w.I64(s.merged)
	w.I64(s.fills)
	w.I64(s.wbSent)
	w.I64(s.muteDrops)
	w.I64(s.retries)
	return nil
}

// DecodeL1State reads an L1 snapshot written by Encode. Waiter completion
// callbacks are left nil; ResolveWaiters rebinds them from descriptors.
func DecodeL1State(r *bin.Reader) *L1State {
	s := &L1State{arr: DecodeArrayState(r)}
	nm := r.Len(1 + 8 + 1 + 1)
	for i := 0; i < nm; i++ {
		var m mshr
		m.valid = r.Bool()
		m.block = r.U64()
		m.forX = r.Bool()
		nw := r.Len(1 + 1 + 8 + 8 + 1)
		for j := 0; j < nw; j++ {
			var wt mshrWaiter
			wt.isStore = r.Bool()
			wt.isAtomic = r.Bool()
			wt.word = r.Int()
			if wt.word < 0 || wt.word >= mem.BlockWords {
				r.Fail(fmt.Errorf("cache: waiter word %d out of range", wt.word))
				return nil
			}
			wt.data = r.U64()
			if r.Bool() {
				wt.cb = DecodeCB(r)
			}
			m.waiters = append(m.waiters, wt)
		}
		s.mshrs = append(s.mshrs, m)
	}
	s.free = r.Int()
	s.hits = r.I64()
	s.misses = r.I64()
	s.merged = r.I64()
	s.fills = r.I64()
	s.wbSent = r.I64()
	s.muteDrops = r.I64()
	s.retries = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// ResolveWaiters rebinds every decoded waiter's completion callbacks from
// its descriptor. resolve maps a descriptor to the (loadFn, storeFn) pair
// the live pipeline would have registered.
func (s *L1State) ResolveWaiters(resolve func(*CB) (loadFn func(uint64), storeFn func())) {
	for i := range s.mshrs {
		for j := range s.mshrs[i].waiters {
			if wt := &s.mshrs[i].waiters[j]; wt.cb != nil {
				wt.loadFn, wt.storeFn = resolve(wt.cb)
			}
		}
	}
}

// Validate cross-checks decoded L1 invariants against the live cache
// geometry so a hostile blob cannot restore out-of-range structure.
func (s *L1State) Validate(c *L1) error {
	if len(s.mshrs) != len(c.mshrs) {
		return fmt.Errorf("cache: snapshot has %d MSHRs, cache has %d", len(s.mshrs), len(c.mshrs))
	}
	used := 0
	for i := range s.mshrs {
		if s.mshrs[i].valid {
			used++
		}
	}
	if s.free != len(s.mshrs)-used {
		return fmt.Errorf("cache: snapshot free count %d inconsistent with %d valid MSHRs", s.free, used)
	}
	total := int32(c.Arr.Sets() * c.Arr.Ways())
	for _, flat := range s.arr.idx {
		if flat < 0 || flat >= total {
			return fmt.Errorf("cache: snapshot line index %d out of range [0,%d)", flat, total)
		}
	}
	for i := range s.arr.lines {
		l := &s.arr.lines[i]
		if int((l.Block>>mem.BlockShift)&uint64(c.Arr.Sets()-1)) != int(s.arr.idx[i])/c.Arr.Ways() {
			return fmt.Errorf("cache: snapshot line for block %#x mapped to wrong set", l.Block)
		}
	}
	return nil
}
