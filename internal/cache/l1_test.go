package cache

import (
	"testing"

	"reunion/internal/mem"
)

// fakeBelow records requests and lets tests reply on demand.
type fakeBelow struct {
	reqs []*Req
}

func (f *fakeBelow) Request(r *Req) { f.reqs = append(f.reqs, r) }

func (f *fakeBelow) replyAll(val uint64, exclusive bool) {
	reqs := f.reqs
	f.reqs = nil
	for _, r := range reqs {
		if r.Done == nil {
			continue
		}
		var d mem.Block
		for i := range d {
			d[i] = val
		}
		r.Done(Resp{Data: d, Exclusive: exclusive})
	}
}

func newTestL1(b Below) *L1 {
	return NewL1("l1", 0, 0, true, 4<<10, 2, 4, b, false)
}

func TestLoadMissFillHit(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var got uint64
	st, _ := c.Load(blk(3), 2, func(v uint64) { got = v })
	if st != Miss || len(fb.reqs) != 1 || fb.reqs[0].Kind != GetS {
		t.Fatalf("st=%v reqs=%d", st, len(fb.reqs))
	}
	fb.replyAll(77, false)
	if got != 77 {
		t.Fatalf("fill value %d", got)
	}
	st, v := c.Load(blk(3), 2, nil)
	if st != Hit || v != 77 {
		t.Fatalf("post-fill load st=%v v=%d", st, v)
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestMissMerging(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var a, b uint64
	c.Load(blk(3), 0, func(v uint64) { a = v })
	st, _ := c.Load(blk(3), 1, func(v uint64) { b = v })
	if st != Miss || len(fb.reqs) != 1 {
		t.Fatalf("merge failed: %d requests", len(fb.reqs))
	}
	if c.MergedMisses != 1 {
		t.Fatalf("MergedMisses=%d", c.MergedMisses)
	}
	fb.replyAll(5, false)
	if a != 5 || b != 5 {
		t.Fatalf("waiters got %d,%d", a, b)
	}
}

func TestMSHRExhaustionRetries(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb) // 4 MSHRs
	for i := 0; i < 4; i++ {
		c.Load(blk(uint64(i)), 0, nil)
	}
	st, _ := c.Load(blk(9), 0, nil)
	if st != Retry {
		t.Fatalf("5th miss st=%v want Retry", st)
	}
	if c.Retries != 1 {
		t.Fatalf("Retries=%d", c.Retries)
	}
}

func TestStoreHitStates(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var d mem.Block
	c.Arr.Install(blk(1), &d, Exclusive)
	if st := c.Store(blk(1), 0, 42, nil); st != Hit {
		t.Fatalf("store on E: %v", st)
	}
	l := c.Arr.Peek(blk(1))
	if l.State != Modified || !l.Dirty || l.Data[0] != 42 {
		t.Fatal("store on E must silently upgrade to M")
	}
}

func TestStoreUpgradeFromShared(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var d mem.Block
	c.Arr.Install(blk(1), &d, Shared)
	done := false
	if st := c.Store(blk(1), 3, 9, func() { done = true }); st != Miss {
		t.Fatalf("store on S must upgrade, got %v", st)
	}
	if len(fb.reqs) != 1 || fb.reqs[0].Kind != GetX {
		t.Fatal("upgrade must send GetX")
	}
	fb.replyAll(0, true)
	if !done {
		t.Fatal("store completion not signalled")
	}
	l := c.Arr.Peek(blk(1))
	if l.State != Modified || l.Data[3] != 9 {
		t.Fatal("upgraded store not applied")
	}
}

func TestStoreIntoPendingReadRetries(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	c.Load(blk(1), 0, nil) // GetS outstanding
	if st := c.Store(blk(1), 0, 1, nil); st != Retry {
		t.Fatalf("store into GetS-pending block: %v want Retry", st)
	}
}

func TestStoreMergesIntoPendingWrite(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	c.Store(blk(1), 0, 1, nil) // GetX outstanding
	if st := c.Store(blk(1), 1, 2, nil); st != Miss {
		t.Fatalf("store into GetX-pending block: %v want Miss (merge)", st)
	}
	fb.replyAll(0, true)
	l := c.Arr.Peek(blk(1))
	if l.Data[0] != 1 || l.Data[1] != 2 {
		t.Fatal("merged stores not both applied")
	}
}

func TestAtomicLifecycle(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var old uint64
	st, _ := c.AtomicBegin(blk(2), 0, func(v uint64) { old = v })
	if st != Miss || fb.reqs[0].Kind != GetX {
		t.Fatalf("atomic miss: %v", st)
	}
	fb.replyAll(7, true)
	if old != 7 {
		t.Fatalf("atomic old=%d", old)
	}
	l := c.Arr.Peek(blk(2))
	if !l.Locked || l.State != Modified {
		t.Fatal("atomic fill must lock the line in M")
	}
	// Probes against the locked line are deferred.
	if _, _, _, busy := c.ProbeInvalidate(blk(2)); !busy {
		t.Fatal("probe of locked line must be busy")
	}
	c.AtomicEnd(blk(2), 0, 9, true)
	l = c.Arr.Peek(blk(2))
	if l.Locked || l.Data[0] != 9 || !l.Dirty {
		t.Fatal("AtomicEnd write/unlock failed")
	}
	// Failed CAS: no write.
	st, v := c.AtomicBegin(blk(2), 0, nil)
	if st != Hit || v != 9 {
		t.Fatalf("atomic hit st=%v v=%d", st, v)
	}
	c.AtomicEnd(blk(2), 0, 55, false)
	if c.Arr.Peek(blk(2)).Data[0] != 9 {
		t.Fatal("failed CAS must not write")
	}
}

func TestVocalDirtyEvictionWritesBack(t *testing.T) {
	fb := &fakeBelow{}
	c := NewL1("l1", 0, 0, true, 2*64, 2, 4, fb, false) // 1 set, 2 ways
	var d mem.Block
	l, _, _ := c.Arr.Install(blk(0), &d, Modified)
	l.Dirty = true
	l.Data[0] = 123
	c.Arr.Install(blk(1), &d, Shared)
	// Fill a third block into the full set via the miss path.
	c.Load(blk(2), 0, nil)
	// Make block 1 MRU so the dirty block 0 is the victim.
	c.Arr.Lookup(blk(1))
	fb.reqs = fb.reqs[:0+1] // keep the GetS
	getS := fb.reqs[0]
	fb.reqs = nil
	var fill mem.Block
	getS.Done(Resp{Data: fill})
	if len(fb.reqs) != 1 || fb.reqs[0].Kind != Writeback {
		t.Fatalf("dirty eviction sent %d reqs", len(fb.reqs))
	}
	if fb.reqs[0].Data[0] != 123 {
		t.Fatal("writeback data wrong")
	}
	if c.WritebacksSent != 1 {
		t.Fatalf("WritebacksSent=%d", c.WritebacksSent)
	}
}

func TestMuteDirtyEvictionDropped(t *testing.T) {
	fb := &fakeBelow{}
	c := NewL1("l1m", 1, 0, false, 2*64, 2, 4, fb, false)
	var d mem.Block
	l, _, _ := c.Arr.Install(blk(0), &d, Modified)
	l.Dirty = true
	c.Arr.Install(blk(1), &d, Shared)
	c.Load(blk(2), 0, nil)
	c.Arr.Lookup(blk(1))
	getS := fb.reqs[0]
	fb.reqs = nil
	getS.Done(Resp{})
	if len(fb.reqs) != 0 {
		t.Fatal("mute eviction must not reach the shared cache controller")
	}
	if c.MuteDropsWB != 1 {
		t.Fatalf("MuteDropsWB=%d", c.MuteDropsWB)
	}
}

func TestSyncFillAtomicAndAbort(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var old uint64
	if !c.SyncFill(blk(4), 1, true, 7, func(v uint64) { old = v }) {
		t.Fatal("SyncFill rejected")
	}
	if len(fb.reqs) != 1 || fb.reqs[0].Kind != Sync || fb.reqs[0].Token != 7 {
		t.Fatalf("sync request malformed: %+v", fb.reqs)
	}
	if c.SyncFill(blk(4), 1, true, 7, nil) {
		t.Fatal("second SyncFill on pending block must be refused")
	}
	if !c.HasPendingFill(blk(4)) {
		t.Fatal("sync fill must be visible as pending")
	}
	fb.replyAll(11, true)
	if old != 11 {
		t.Fatalf("sync old=%d", old)
	}
	l := c.Arr.Peek(blk(4))
	if !l.Locked || l.State != Modified {
		t.Fatal("atomic sync fill must lock M")
	}
	c.AtomicEnd(blk(4), 1, 0, false)

	// Abort path: MSHR freed, no completion.
	called := false
	c.SyncFill(blk(8), 0, false, 9, func(uint64) { called = true })
	c.AbortMiss(blk(8))
	if c.HasPendingFill(blk(8)) {
		t.Fatal("aborted miss still pending")
	}
	if c.OutstandingMisses() != 0 {
		t.Fatalf("outstanding=%d", c.OutstandingMisses())
	}
	if called {
		t.Fatal("aborted waiter ran")
	}
}

func TestProbeDowngradeReturnsDirtyData(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var d mem.Block
	l, _, _ := c.Arr.Install(blk(6), &d, Modified)
	l.Dirty = true
	l.Data[0] = 5
	data, dirty, had, busy := c.ProbeDowngrade(blk(6))
	if !had || busy || !dirty || data[0] != 5 {
		t.Fatalf("downgrade: had=%v busy=%v dirty=%v", had, busy, dirty)
	}
	if c.Arr.Peek(blk(6)).State != Shared {
		t.Fatal("line not downgraded")
	}
	if _, _, had, _ := c.ProbeInvalidate(blk(99)); had {
		t.Fatal("probe of absent block reported had")
	}
}

func TestUnlockAll(t *testing.T) {
	fb := &fakeBelow{}
	c := newTestL1(fb)
	var d mem.Block
	l, _, _ := c.Arr.Install(blk(1), &d, Modified)
	l.Locked = true
	c.UnlockAll()
	if c.Arr.Peek(blk(1)).Locked {
		t.Fatal("UnlockAll left a lock")
	}
}

func TestIfetchUsesIfetchKind(t *testing.T) {
	fb := &fakeBelow{}
	ic := NewL1("l1i", 0, 0, true, 4<<10, 2, 4, fb, true)
	done := false
	if st := ic.Ifetch(blk(1), func() { done = true }); st != Miss {
		t.Fatalf("ifetch st=%v", st)
	}
	if fb.reqs[0].Kind != Ifetch {
		t.Fatalf("kind=%v", fb.reqs[0].Kind)
	}
	fb.replyAll(0, false)
	if !done {
		t.Fatal("ifetch completion not signalled")
	}
}
