// Package cache implements the set-associative cache structures of the
// simulated CMP: a generic LRU array used by both L1s and the shared L2,
// and the private write-back L1 controller with MSHRs that cores issue
// loads, stores and instruction fetches through.
//
// Lines carry real data. This matters: Reunion's input incoherence is a
// value phenomenon — a mute core holding a stale copy of a block while its
// vocal partner refetches a fresh one — so the caches must be functional,
// not just timing structures.
package cache

import (
	"reunion/internal/mem"
)

// State is a line's coherence state (MESI-style; the directory in the L2
// tracks sharers and owners among vocal L1s).
type State uint8

// Line coherence states.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String returns a one-letter state name.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return "?"
}

// Line is one cache line: tag (full block address), state, and data.
// Locked marks a line held by an in-flight atomic (CAS) between execute
// and retirement; locked lines are never victimized and coherence probes
// against them are deferred.
type Line struct {
	Block  uint64 // block-aligned address; valid only when State != Invalid
	State  State
	Dirty  bool
	Locked bool
	Data   mem.Block
	lru    int64
}

// Array is a set-associative cache array with true-LRU replacement.
type Array struct {
	sets    [][]Line
	setMask uint64
	ways    int
	tick    int64
}

// NewArray builds an array with the given total capacity in bytes and
// associativity. Capacity must be a power-of-two multiple of
// ways*mem.BlockBytes.
func NewArray(capacityBytes, ways int) *Array {
	numLines := capacityBytes / mem.BlockBytes
	numSets := numLines / ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("cache: capacity/ways must give a power-of-two set count")
	}
	sets := make([][]Line, numSets)
	backing := make([]Line, numLines)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &Array{sets: sets, setMask: uint64(numSets - 1), ways: ways}
}

// Sets returns the number of sets.
func (a *Array) Sets() int { return len(a.sets) }

// Ways returns the associativity.
func (a *Array) Ways() int { return a.ways }

func (a *Array) set(block uint64) []Line {
	return a.sets[(block>>mem.BlockShift)&a.setMask]
}

// Lookup returns the line holding block, touching LRU, or nil on miss.
func (a *Array) Lookup(block uint64) *Line {
	set := a.set(block)
	for i := range set {
		if set[i].State != Invalid && set[i].Block == block {
			a.tick++
			set[i].lru = a.tick
			return &set[i]
		}
	}
	return nil
}

// Touch refreshes a line's LRU stamp exactly as a Lookup hit would. Hit
// fast paths locate the line with Peek and call this on success, so a
// failed fast path followed by the full Lookup bumps the LRU clock once,
// same as the full path alone.
func (a *Array) Touch(l *Line) {
	a.tick++
	l.lru = a.tick
}

// Peek returns the line holding block without touching LRU, or nil.
func (a *Array) Peek(block uint64) *Line {
	set := a.set(block)
	for i := range set {
		if set[i].State != Invalid && set[i].Block == block {
			return &set[i]
		}
	}
	return nil
}

// Victim selects the replacement victim for block: an invalid way if one
// exists, else the least recently used unlocked line. It returns nil if
// every way is locked (callers retry later; at most one line per core is
// ever locked, so this can only happen transiently in degenerate configs).
func (a *Array) Victim(block uint64) *Line {
	set := a.set(block)
	var victim *Line
	for i := range set {
		l := &set[i]
		if l.State == Invalid {
			return l
		}
		if l.Locked {
			continue
		}
		if victim == nil || l.lru < victim.lru {
			victim = l
		}
	}
	return victim
}

// Install places block into the array, evicting if needed. It returns the
// installed line and, when a valid line was displaced, a copy of the
// victim for writeback handling. Install panics if no victim is available.
func (a *Array) Install(block uint64, data *mem.Block, state State) (line *Line, victim Line, evicted bool) {
	if l := a.Lookup(block); l != nil {
		// Refill of a present line: update data/state in place.
		l.Data = *data
		l.State = state
		return l, Line{}, false
	}
	v := a.Victim(block)
	if v == nil {
		panic("cache: all ways locked")
	}
	if v.State != Invalid {
		victim = *v
		evicted = true
	}
	a.tick++
	*v = Line{Block: block, State: state, Data: *data, lru: a.tick}
	return v, victim, evicted
}

// Invalidate drops the line for block if present, returning its prior
// contents for recall handling. ok is false if the block was absent and
// busy is true (with ok false) if the line is locked by an atomic.
func (a *Array) Invalidate(block uint64) (prior Line, ok, busy bool) {
	l := a.Peek(block)
	if l == nil {
		return Line{}, false, false
	}
	if l.Locked {
		return Line{}, false, true
	}
	prior = *l
	l.State = Invalid
	l.Dirty = false
	return prior, true, false
}

// Downgrade moves an E/M line to Shared, returning its data (for
// writeback when it was dirty). Same busy semantics as Invalidate.
func (a *Array) Downgrade(block uint64) (prior Line, ok, busy bool) {
	l := a.Peek(block)
	if l == nil {
		return Line{}, false, false
	}
	if l.Locked {
		return Line{}, false, true
	}
	prior = *l
	l.State = Shared
	l.Dirty = false
	return prior, true, false
}

// ForEachValid calls fn for every valid line (stats, warmup checks).
func (a *Array) ForEachValid(fn func(*Line)) {
	for s := range a.sets {
		for w := range a.sets[s] {
			if a.sets[s][w].State != Invalid {
				fn(&a.sets[s][w])
			}
		}
	}
}

// ArrayState is a checkpoint of the array: the LRU clock and a sparse
// copy of the valid lines (flat index = set*ways + way). Invalid lines
// carry no state the replacement policy or lookups can observe, so only
// valid lines are stored — which keeps a checkpoint of a mostly-empty
// shared cache small.
type ArrayState struct {
	tick  int64
	idx   []int32
	lines []Line
}

// Snapshot captures the array contents. Read-only.
func (a *Array) Snapshot() ArrayState {
	s := ArrayState{tick: a.tick}
	flat := int32(0)
	for si := range a.sets {
		for wi := range a.sets[si] {
			if l := &a.sets[si][wi]; l.State != Invalid {
				s.idx = append(s.idx, flat)
				s.lines = append(s.lines, *l)
			}
			flat++
		}
	}
	return s
}

// Restore rewrites the array from a snapshot: every line is invalidated,
// then the snapshotted valid lines are written back into their exact
// ways. The backing storage is reused, so *Line pointers taken before the
// snapshot keep pointing at the restored lines.
func (a *Array) Restore(s ArrayState) {
	a.tick = s.tick
	for si := range a.sets {
		for wi := range a.sets[si] {
			a.sets[si][wi] = Line{}
		}
	}
	for i, flat := range s.idx {
		a.sets[int(flat)/a.ways][int(flat)%a.ways] = s.lines[i]
	}
}
