package cache

import (
	"reunion/internal/mem"
)

// ReqKind distinguishes request types sent from an L1 to the shared cache
// controller.
type ReqKind uint8

// Request kinds.
const (
	// GetS requests read permission (coherent for vocal cores; transformed
	// into a phantom read for mute cores by the shared cache controller).
	GetS ReqKind = iota
	// GetX requests write permission and data.
	GetX
	// Ifetch requests instruction data (read-only, never exclusive).
	Ifetch
	// Writeback pushes a dirty evicted line down (vocal only; the
	// controller ignores mute writebacks per the Reunion model).
	Writeback
	// Sync is a synchronizing request (Reunion re-execution protocol):
	// the controller collects one from each member of a logical pair,
	// flushes the block from both private hierarchies, performs a coherent
	// transaction, and replies to both atomically.
	Sync
)

// String names the request kind.
func (k ReqKind) String() string {
	switch k {
	case GetS:
		return "GetS"
	case GetX:
		return "GetX"
	case Ifetch:
		return "Ifetch"
	case Writeback:
		return "WB"
	case Sync:
		return "Sync"
	}
	return "?"
}

// Req is a request from an L1 (or a logical pair, for Sync) to the shared
// cache controller.
type Req struct {
	Kind  ReqKind
	Block uint64
	Core  int   // global core index
	Pair  int   // logical processor index
	Vocal bool  // vocal (coherent) or mute (phantom) requester
	Token int64 // recovery generation for Sync requests; stale ones are dropped
	Data  *mem.Block
	Done  func(Resp)
}

// Resp is the shared cache controller's reply.
type Resp struct {
	Data      mem.Block
	Exclusive bool
}

// Below is the downstream port an L1 sends requests into.
type Below interface {
	Request(*Req)
}

// AccessStatus is the result of a core-side L1 access attempt.
type AccessStatus uint8

// Access statuses.
const (
	// Hit: the access completed against the array; for loads the value is
	// valid now (the core applies its load-to-use latency).
	Hit AccessStatus = iota
	// Miss: the access was accepted and will complete via callback when
	// the fill arrives.
	Miss
	// Retry: a structural hazard (MSHRs full, or an incompatible request
	// pending on the same block); the core should retry next cycle.
	Retry
)

type mshrWaiter struct {
	isStore  bool
	isAtomic bool
	word     int
	data     uint64
	cb       *CB // serializable descriptor for the callbacks (nil from the plain entry points)
	loadFn   func(val uint64)
	storeFn  func()
}

type mshr struct {
	valid   bool
	block   uint64
	forX    bool
	waiters []mshrWaiter
}

// L1 is a private write-back L1 cache with MSHRs. One instance serves data
// accesses and a second (read-only) instance serves instruction fetches.
type L1 struct {
	Name  string
	Core  int
	Pair  int
	Vocal bool

	Arr     *Array
	below   Below
	mshrs   []mshr
	free    int // count of free MSHRs
	iscache bool

	// Stats
	Hits, Misses, MergedMisses int64
	Fills                      int64
	WritebacksSent             int64
	MuteDropsWB                int64
	Retries                    int64
}

// NewL1 builds an L1 data or instruction cache.
func NewL1(name string, core, pair int, vocal bool, capacityBytes, ways, mshrs int, below Below, instruction bool) *L1 {
	return &L1{
		Name:    name,
		Core:    core,
		Pair:    pair,
		Vocal:   vocal,
		Arr:     NewArray(capacityBytes, ways),
		below:   below,
		mshrs:   make([]mshr, mshrs),
		free:    mshrs,
		iscache: instruction,
	}
}

func (c *L1) findMSHR(block uint64) *mshr {
	for i := range c.mshrs {
		if c.mshrs[i].valid && c.mshrs[i].block == block {
			return &c.mshrs[i]
		}
	}
	return nil
}

func (c *L1) allocMSHR(block uint64, forX bool) *mshr {
	if c.free == 0 {
		return nil
	}
	for i := range c.mshrs {
		if !c.mshrs[i].valid {
			c.free--
			c.mshrs[i] = mshr{valid: true, block: block, forX: forX}
			return &c.mshrs[i]
		}
	}
	return nil
}

// sendMiss issues the downstream request for a freshly allocated MSHR.
func (c *L1) sendMiss(m *mshr, kind ReqKind) {
	c.below.Request(&Req{
		Kind:  kind,
		Block: m.block,
		Core:  c.Core,
		Pair:  c.Pair,
		Vocal: c.Vocal,
		Done:  c.FillFn(m.block),
	})
}

// FillFn returns the downstream completion callback for a miss on block —
// the Done every request this cache issues carries. Exposed so the
// checkpoint decoder can rebind a deserialized in-flight request to the
// same closure the live cache registered.
func (c *L1) FillFn(block uint64) func(Resp) {
	return func(r Resp) { c.fill(block, r) }
}

// fill completes an outstanding miss: installs the line, performs waiting
// stores, and wakes waiting loads.
func (c *L1) fill(block uint64, r Resp) {
	m := c.findMSHR(block)
	if m == nil {
		// The MSHR can never disappear: squashes cancel core-side
		// completions, not the cache fill itself.
		panic("cache: fill without MSHR: " + c.Name)
	}
	state := Shared
	if r.Exclusive {
		state = Exclusive
	}
	line, victim, evicted := c.Arr.Install(block, &r.Data, state)
	c.Fills++
	if evicted {
		c.evict(victim)
	}
	waiters := m.waiters
	m.valid = false
	m.waiters = nil
	c.free++
	for i := range waiters {
		w := &waiters[i]
		switch {
		case w.isStore:
			line.Data[w.word] = w.data
			line.State = Modified
			line.Dirty = true
			if w.storeFn != nil {
				w.storeFn()
			}
		case w.isAtomic:
			line.Locked = true
			line.State = Modified
			if w.loadFn != nil {
				w.loadFn(line.Data[w.word])
			}
		default:
			if w.loadFn != nil {
				w.loadFn(line.Data[w.word])
			}
		}
	}
}

func (c *L1) evict(victim Line) {
	if victim.Dirty {
		if c.Vocal {
			data := victim.Data
			c.WritebacksSent++
			c.below.Request(&Req{
				Kind:  Writeback,
				Block: victim.Block,
				Core:  c.Core,
				Pair:  c.Pair,
				Vocal: true,
				Data:  &data,
			})
		} else {
			// The shared cache controller ignores mute evictions and
			// writebacks (paper §4.2); we drop them at the source.
			c.MuteDropsWB++
		}
	}
}

// Load attempts to read the 64-bit word at block + 8*word.
func (c *L1) Load(block uint64, word int, done func(val uint64)) (AccessStatus, uint64) {
	return c.LoadD(block, word, nil, done)
}

// TryLoad is the hit-only fast path of Load: on a hit it completes the
// access (including the Hits counter) and returns the value; on anything
// else it returns ok=false with no side effects, and the caller falls back
// to LoadD with its callback and descriptor. Exists so hot callers build
// the completion closure and CB only when a miss actually needs them.
func (c *L1) TryLoad(block uint64, word int) (val uint64, ok bool) {
	if l := c.Arr.Peek(block); l != nil {
		c.Arr.Touch(l)
		c.Hits++
		return l.Data[word], true
	}
	return 0, false
}

// LoadD is Load with a serializable descriptor for done (see CB). Callers
// whose caches get checkpointed must use the D entry points; the plain ones
// register callbacks no checkpoint can carry.
func (c *L1) LoadD(block uint64, word int, cb *CB, done func(val uint64)) (AccessStatus, uint64) {
	if l := c.Arr.Lookup(block); l != nil {
		c.Hits++
		return Hit, l.Data[word]
	}
	if m := c.findMSHR(block); m != nil {
		m.waiters = append(m.waiters, mshrWaiter{word: word, cb: cb, loadFn: done})
		c.MergedMisses++
		return Miss, 0
	}
	m := c.allocMSHR(block, false)
	if m == nil {
		c.Retries++
		return Retry, 0
	}
	m.waiters = append(m.waiters, mshrWaiter{word: word, cb: cb, loadFn: done})
	c.Misses++
	kind := GetS
	if c.iscache {
		kind = Ifetch
	}
	c.sendMiss(m, kind)
	return Miss, 0
}

// Ifetch attempts to fetch the instruction block (timing only; instruction
// bytes themselves come from the Thread).
func (c *L1) Ifetch(block uint64, done func()) AccessStatus {
	return c.IfetchD(block, nil, done)
}

// IfetchD is Ifetch with a serializable descriptor for done.
func (c *L1) IfetchD(block uint64, cb *CB, done func()) AccessStatus {
	st, _ := c.LoadD(block, 0, cb, func(uint64) {
		if done != nil {
			done()
		}
	})
	return st
}

// Store attempts to write the 64-bit word at block + 8*word. On a hit with
// write permission the store completes immediately; otherwise the line is
// (re)fetched exclusively and the store is applied at fill time.
func (c *L1) Store(block uint64, word int, val uint64, done func()) AccessStatus {
	return c.StoreD(block, word, val, nil, done)
}

// TryStore is the hit-only fast path of Store: it completes a store that
// hits with write permission (M/E) and returns true; a Shared hit, miss,
// or hazard returns false with no side effects so the caller falls back
// to StoreD (which re-runs the lookup and takes the upgrade/miss path).
func (c *L1) TryStore(block uint64, word int, val uint64) bool {
	if l := c.Arr.Peek(block); l != nil && (l.State == Modified || l.State == Exclusive) {
		c.Arr.Touch(l)
		l.Data[word] = val
		l.State = Modified
		l.Dirty = true
		c.Hits++
		return true
	}
	return false
}

// StoreD is Store with a serializable descriptor for done.
func (c *L1) StoreD(block uint64, word int, val uint64, cb *CB, done func()) AccessStatus {
	if l := c.Arr.Lookup(block); l != nil {
		switch l.State {
		case Modified, Exclusive:
			l.Data[word] = val
			l.State = Modified
			l.Dirty = true
			c.Hits++
			return Hit
		case Shared:
			// Upgrade: refetch exclusively. The S copy stays readable
			// until the fill replaces it.
		}
	}
	if m := c.findMSHR(block); m != nil {
		if !m.forX {
			// A read fill is in flight; the store must wait for it to
			// resolve and then upgrade. Rare; retry is simplest.
			c.Retries++
			return Retry
		}
		m.waiters = append(m.waiters, mshrWaiter{isStore: true, word: word, data: val, cb: cb, storeFn: done})
		c.MergedMisses++
		return Miss
	}
	m := c.allocMSHR(block, true)
	if m == nil {
		c.Retries++
		return Retry
	}
	m.waiters = append(m.waiters, mshrWaiter{isStore: true, word: word, data: val, cb: cb, storeFn: done})
	c.Misses++
	c.sendMiss(m, GetX)
	return Miss
}

// AtomicBegin obtains the block in Modified state, locks the line against
// replacement and probes, and returns the current word value. The core
// calls AtomicEnd at retirement to apply (or discard) the write and
// unlock. Used by CAS.
func (c *L1) AtomicBegin(block uint64, word int, done func(old uint64)) (AccessStatus, uint64) {
	return c.AtomicBeginD(block, word, nil, done)
}

// TryAtomicBegin is the hit-only fast path of AtomicBegin: a hit with
// write permission locks the line and returns the word; anything else
// returns ok=false with no side effects (caller falls back to
// AtomicBeginD).
func (c *L1) TryAtomicBegin(block uint64, word int) (old uint64, ok bool) {
	if l := c.Arr.Peek(block); l != nil && (l.State == Modified || l.State == Exclusive) {
		c.Arr.Touch(l)
		l.Locked = true
		c.Hits++
		return l.Data[word], true
	}
	return 0, false
}

// AtomicBeginD is AtomicBegin with a serializable descriptor for done.
func (c *L1) AtomicBeginD(block uint64, word int, cb *CB, done func(old uint64)) (AccessStatus, uint64) {
	if l := c.Arr.Lookup(block); l != nil && (l.State == Modified || l.State == Exclusive) {
		l.Locked = true
		c.Hits++
		return Hit, l.Data[word]
	}
	if m := c.findMSHR(block); m != nil {
		// Atomic to a block with an outstanding miss: retry until it
		// resolves (the atomic is serializing, so the core is quiet).
		c.Retries++
		return Retry, 0
	}
	m := c.allocMSHR(block, true)
	if m == nil {
		c.Retries++
		return Retry, 0
	}
	m.waiters = append(m.waiters, mshrWaiter{word: word, cb: cb, loadFn: c.AtomicFillWrap(block, done)})
	c.Misses++
	c.sendMiss(m, GetX)
	return Miss, 0
}

// AtomicFillWrap returns the fill completion an AtomicBegin miss registers:
// lock the just-filled line (write permission was granted by the GetX),
// then finish the atomic. Exposed so the checkpoint decoder can rebuild the
// exact waiter closure from a CBAtomicBegin descriptor.
func (c *L1) AtomicFillWrap(block uint64, done func(old uint64)) func(uint64) {
	return func(v uint64) {
		if l := c.Arr.Peek(block); l != nil {
			l.Locked = true
			l.State = Modified
		}
		if done != nil {
			done(v)
		}
	}
}

// AtomicEnd completes an atomic: optionally writes the new value, marks
// dirty, and unlocks the line.
func (c *L1) AtomicEnd(block uint64, word int, val uint64, write bool) {
	l := c.Arr.Peek(block)
	if l == nil {
		// The line must be present: it was locked. Tolerate anyway
		// (recovery can reset state between begin and end).
		return
	}
	if write {
		l.Data[word] = val
		l.State = Modified
		l.Dirty = true
	}
	l.Locked = false
}

// SyncFill issues a synchronizing request (Reunion re-execution protocol,
// Definition 10) for this cache. The fill travels through a normal MSHR so
// the coherence protocol sees it in flight — the shared cache controller
// combines the pair's two requests and replies to both atomically. For
// atomics the filled line is locked and left Modified, as AtomicBegin
// would. done receives the coherent word value. Returns false while a
// prior miss on the block is still outstanding or MSHRs are exhausted.
func (c *L1) SyncFill(block uint64, word int, atomic bool, token int64, done func(old uint64)) bool {
	return c.SyncFillD(block, word, atomic, token, nil, done)
}

// SyncFillD is SyncFill with a serializable descriptor for done.
func (c *L1) SyncFillD(block uint64, word int, atomic bool, token int64, cb *CB, done func(old uint64)) bool {
	if c.findMSHR(block) != nil {
		return false
	}
	m := c.allocMSHR(block, true)
	if m == nil {
		return false
	}
	m.waiters = append(m.waiters, mshrWaiter{isAtomic: atomic, word: word, cb: cb, loadFn: done})
	c.below.Request(&Req{
		Kind:  Sync,
		Block: block,
		Core:  c.Core,
		Pair:  c.Pair,
		Vocal: c.Vocal,
		Token: token,
		Done:  c.FillFn(block),
	})
	return true
}

// AbortMiss drops an outstanding MSHR whose reply will never arrive (a
// synchronizing request cancelled by recovery escalation). Waiters are
// discarded without completion.
func (c *L1) AbortMiss(block uint64) {
	if m := c.findMSHR(block); m != nil {
		m.valid = false
		m.waiters = nil
		c.free++
	}
}

// UnlockAll clears any lock left by a squashed in-flight atomic.
func (c *L1) UnlockAll() {
	c.Arr.ForEachValid(func(l *Line) { l.Locked = false })
}

// ProbeInvalidate removes the block on behalf of the coherence protocol,
// returning prior data for dirty recall. busy reports a locked line (the
// controller retries).
func (c *L1) ProbeInvalidate(block uint64) (data mem.Block, dirty, had, busy bool) {
	prior, ok, bsy := c.Arr.Invalidate(block)
	if bsy {
		return mem.Block{}, false, false, true
	}
	if !ok {
		return mem.Block{}, false, false, false
	}
	return prior.Data, prior.Dirty, true, false
}

// ProbeDowngrade demotes the block to Shared, returning data when it was
// dirty. busy reports a locked line.
func (c *L1) ProbeDowngrade(block uint64) (data mem.Block, dirty, had, busy bool) {
	prior, ok, bsy := c.Arr.Downgrade(block)
	if bsy {
		return mem.Block{}, false, false, true
	}
	if !ok {
		return mem.Block{}, false, false, false
	}
	return prior.Data, prior.Dirty, true, false
}

// PeekWord returns the current value of a word if the block is present
// (used by global phantom requests to read a vocal owner's copy without
// changing coherence state).
func (c *L1) PeekWord(block uint64) (data mem.Block, ok bool) {
	l := c.Arr.Peek(block)
	if l == nil {
		return mem.Block{}, false
	}
	return l.Data, true
}

// InstallDirect places a block into the cache outside the normal miss
// path. Used for warmup prefill and for synchronizing-request fills.
func (c *L1) InstallDirect(block uint64, data *mem.Block, state State) {
	_, victim, evicted := c.Arr.Install(block, data, state)
	if evicted {
		c.evict(victim)
	}
}

// ResetStats zeroes every counter (measurement-window boundary).
func (c *L1) ResetStats() {
	c.Hits, c.Misses, c.MergedMisses = 0, 0, 0
	c.Fills = 0
	c.WritebacksSent = 0
	c.MuteDropsWB = 0
	c.Retries = 0
}

// OutstandingMisses reports the number of MSHRs in use.
func (c *L1) OutstandingMisses() int { return len(c.mshrs) - c.free }

// L1State is a checkpoint of the cache: array contents, MSHRs (waiter
// callbacks are shared — they capture only values and the cache/core
// pointers, whose state is itself checkpointed), and statistics.
type L1State struct {
	arr   ArrayState
	mshrs []mshr
	free  int

	hits, misses, merged int64
	fills                int64
	wbSent               int64
	muteDrops            int64
	retries              int64
}

// Snapshot captures the cache state. Read-only.
func (c *L1) Snapshot() *L1State {
	s := &L1State{
		arr:   c.Arr.Snapshot(),
		mshrs: append([]mshr(nil), c.mshrs...),
		free:  c.free,
		hits:  c.Hits, misses: c.Misses, merged: c.MergedMisses,
		fills: c.Fills, wbSent: c.WritebacksSent, muteDrops: c.MuteDropsWB,
		retries: c.Retries,
	}
	for i := range s.mshrs {
		s.mshrs[i].waiters = append([]mshrWaiter(nil), s.mshrs[i].waiters...)
	}
	return s
}

// Restore rewrites the cache from a snapshot. MSHR slots keep their
// backing array (outstanding-fill callbacks find their MSHR by block, not
// by pointer, but identity costs nothing to preserve); waiter slices are
// copied out so post-restore appends never touch the snapshot.
func (c *L1) Restore(s *L1State) {
	c.Arr.Restore(s.arr)
	copy(c.mshrs, s.mshrs)
	for i := range c.mshrs {
		c.mshrs[i].waiters = append([]mshrWaiter(nil), s.mshrs[i].waiters...)
	}
	c.free = s.free
	c.Hits, c.Misses, c.MergedMisses = s.hits, s.misses, s.merged
	c.Fills = s.fills
	c.WritebacksSent = s.wbSent
	c.MuteDropsWB = s.muteDrops
	c.Retries = s.retries
}

// HasPendingFill reports whether a miss for block is outstanding (the
// shared cache controller uses this to distinguish an in-flight fill from
// a silently evicted clean line when its directory looks stale).
func (c *L1) HasPendingFill(block uint64) bool { return c.findMSHR(block) != nil }
