package snoop

import (
	"fmt"
	"sort"

	"reunion/internal/bin"
	"reunion/internal/cache"
	"reunion/internal/interconnect"
	"reunion/internal/mem"
)

// Checkpoint serialization for the snoopy bus: plain-data descriptors for
// its scheduled events and a wire codec for BusState. Like the directory
// controller's codec, requests are never serialized inline — the root
// checkpoint encoder interns every *cache.Req and passes reqID/req
// translation hooks down so shared pointers stay shared on decode.

// EvReply describes a scheduled reply delivery (rebind via
// Bus.DeliverReply). Release retires the fill-tracking entry keyed by the
// reply target's {core, block}; the increment is already in the
// snapshotted map.
type EvReply struct {
	R         *cache.Req
	Data      mem.Block
	Exclusive bool
	Release   bool
}

// EvMemFetch describes a pending coherent memory fetch (rebind via
// Bus.MemFetchDone).
type EvMemFetch struct {
	R         *cache.Req
	Exclusive bool
	Release   bool
}

// EvPhantomMem describes a pending phantom off-chip read (rebind via
// Bus.PhantomMemDone).
type EvPhantomMem struct{ R *cache.Req }

// EvSyncMem describes a pair's pending combined synchronizing fetch
// (rebind via Bus.SyncMemDone).
type EvSyncMem struct{ V, M *cache.Req }

// --- event descriptor codecs ---

var errBadReqRef = errSnoop("snoop: bad interned request reference")

type errSnoop string

func (e errSnoop) Error() string { return string(e) }

// Encode writes the descriptor; reqID interns the request.
func (d *EvReply) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
	for _, word := range d.Data {
		w.U64(word)
	}
	w.Bool(d.Exclusive)
	w.Bool(d.Release)
}

// DecodeEvReply reads a descriptor written by Encode; req resolves
// interned request indices.
func DecodeEvReply(r *bin.Reader, req func(int) *cache.Req) *EvReply {
	d := &EvReply{R: req(r.Int())}
	for i := range d.Data {
		d.Data[i] = r.U64()
	}
	d.Exclusive = r.Bool()
	d.Release = r.Bool()
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns the request.
func (d *EvMemFetch) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
	w.Bool(d.Exclusive)
	w.Bool(d.Release)
}

// DecodeEvMemFetch reads a descriptor written by Encode.
func DecodeEvMemFetch(r *bin.Reader, req func(int) *cache.Req) *EvMemFetch {
	d := &EvMemFetch{R: req(r.Int()), Exclusive: r.Bool(), Release: r.Bool()}
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns the request.
func (d *EvPhantomMem) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
}

// DecodeEvPhantomMem reads a descriptor written by Encode.
func DecodeEvPhantomMem(r *bin.Reader, req func(int) *cache.Req) *EvPhantomMem {
	d := &EvPhantomMem{R: req(r.Int())}
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns both requests.
func (d *EvSyncMem) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.V))
	w.Int(reqID(d.M))
}

// DecodeEvSyncMem reads a descriptor written by Encode.
func DecodeEvSyncMem(r *bin.Reader, req func(int) *cache.Req) *EvSyncMem {
	d := &EvSyncMem{V: req(r.Int()), M: req(r.Int())}
	if r.Err() != nil || d.V == nil || d.M == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// --- BusState ---

// VisitReqs calls fn for every request the snapshot references, in
// deterministic order (bus queue FIFO, then parked sync requests by pair
// id). The root encoder builds its interning table with this.
func (s *BusState) VisitReqs(fn func(*cache.Req)) {
	s.q.Each(func(it interconnect.Item, _ int64) {
		fn(it.(*cache.Req))
	})
	pairs := make([]int, 0, len(s.bus.pendingSync))
	for p := range s.bus.pendingSync {
		pairs = append(pairs, p)
	}
	sort.Ints(pairs)
	for _, p := range pairs {
		fn(s.bus.pendingSync[p])
	}
}

// Encode writes the snapshot; reqID interns queued and parked requests.
// Maps are written in sorted key order so the encoding is deterministic.
func (s *BusState) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	lastSrv, served, arrivals, totWait, maxDepth := s.q.Meta()
	w.I64(lastSrv)
	w.Int(served)
	w.I64(arrivals)
	w.I64(totWait)
	w.Int(maxDepth)
	w.Uvarint(uint64(s.q.Len()))
	s.q.Each(func(it interconnect.Item, arrived int64) {
		w.Int(reqID(it.(*cache.Req)))
		w.I64(arrived)
	})

	w.Uvarint(uint64(len(s.bus.memBankFree)))
	for _, t := range s.bus.memBankFree {
		w.I64(t)
	}
	w.Int(s.bus.memInFlight)

	pairs := make([]int, 0, len(s.bus.pendingSync))
	for p := range s.bus.pendingSync {
		pairs = append(pairs, p)
	}
	sort.Ints(pairs)
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.Int(p)
		w.Int(reqID(s.bus.pendingSync[p]))
	}
	pairs = pairs[:0]
	for p := range s.bus.syncMinToken {
		pairs = append(pairs, p)
	}
	sort.Ints(pairs)
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.Int(p)
		w.I64(s.bus.syncMinToken[p])
	}

	keys := make([]flightKey, 0, len(s.bus.fillsInFlight))
	for k := range s.bus.fillsInFlight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].core != keys[j].core {
			return keys[i].core < keys[j].core
		}
		return keys[i].block < keys[j].block
	})
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k.core)
		w.U64(k.block)
		w.Int(s.bus.fillsInFlight[k])
	}

	w.I64(s.bus.Transactions)
	w.I64(s.bus.Reads)
	w.I64(s.bus.ReadX)
	w.I64(s.bus.Ifetches)
	w.I64(s.bus.SnoopHits)
	w.I64(s.bus.MemAccesses)
	w.I64(s.bus.WritebacksRecv)
	w.I64(s.bus.PhantomReqs)
	w.I64(s.bus.PhantomGarbage)
	w.I64(s.bus.PhantomPeeks)
	w.I64(s.bus.PhantomMemReads)
	w.I64(s.bus.SyncRequests)
	w.I64(s.bus.Retries)
	w.I64(s.bus.MemQueueWait)
}

// DecodeBusState reads a snapshot written by Encode; req resolves
// interned request indices. Pointer fields are left nil for BindTo.
func DecodeBusState(r *bin.Reader, req func(int) *cache.Req) *BusState {
	s := &BusState{}
	lastSrv := r.I64()
	served := r.Int()
	arrivals := r.I64()
	totWait := r.I64()
	maxDepth := r.Int()
	nq := r.Len(1 + 8)
	items := make([]interconnect.Item, 0, nq)
	arrived := make([]int64, 0, nq)
	for i := 0; i < nq; i++ {
		rq := req(r.Int())
		at := r.I64()
		if r.Err() == nil && rq == nil {
			r.Fail(errBadReqRef)
			return nil
		}
		items = append(items, rq)
		arrived = append(arrived, at)
	}
	s.q = interconnect.NewBankQueueState(items, arrived, lastSrv, served, arrivals, totWait, maxDepth)

	nf := r.Len(8)
	for i := 0; i < nf; i++ {
		s.bus.memBankFree = append(s.bus.memBankFree, r.I64())
	}
	s.bus.memInFlight = r.Int()
	if r.Err() == nil && s.bus.memInFlight < 0 {
		r.Fail(fmt.Errorf("snoop: snapshot memInFlight %d negative", s.bus.memInFlight))
		return nil
	}

	np := r.Len(1 + 1)
	s.bus.pendingSync = make(map[int]*cache.Req, np)
	prevPair := -1
	for i := 0; i < np; i++ {
		p := r.Int()
		rq := req(r.Int())
		if r.Err() == nil && (p <= prevPair || rq == nil) {
			r.Fail(errSnoop("snoop: snapshot pendingSync malformed"))
			return nil
		}
		prevPair = p
		s.bus.pendingSync[p] = rq
	}
	np = r.Len(1 + 8)
	s.bus.syncMinToken = make(map[int]int64, np)
	prevPair = -1
	for i := 0; i < np; i++ {
		p := r.Int()
		if r.Err() == nil && p <= prevPair {
			r.Fail(errSnoop("snoop: snapshot syncMinToken not in sorted order"))
			return nil
		}
		prevPair = p
		s.bus.syncMinToken[p] = r.I64()
	}

	nk := r.Len(1 + 8 + 1)
	s.bus.fillsInFlight = make(map[flightKey]int, nk)
	prev := flightKey{core: -1}
	for i := 0; i < nk; i++ {
		k := flightKey{core: r.Int(), block: r.U64()}
		n := r.Int()
		if r.Err() == nil &&
			(n <= 0 || k.core < 0 ||
				(i > 0 && (k.core < prev.core || (k.core == prev.core && k.block <= prev.block)))) {
			r.Fail(errSnoop("snoop: snapshot fillsInFlight malformed"))
			return nil
		}
		prev = k
		s.bus.fillsInFlight[k] = n
	}

	s.bus.Transactions = r.I64()
	s.bus.Reads = r.I64()
	s.bus.ReadX = r.I64()
	s.bus.Ifetches = r.I64()
	s.bus.SnoopHits = r.I64()
	s.bus.MemAccesses = r.I64()
	s.bus.WritebacksRecv = r.I64()
	s.bus.PhantomReqs = r.I64()
	s.bus.PhantomGarbage = r.I64()
	s.bus.PhantomPeeks = r.I64()
	s.bus.PhantomMemReads = r.I64()
	s.bus.SyncRequests = r.I64()
	s.bus.Retries = r.I64()
	s.bus.MemQueueWait = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// BindTo validates the decoded snapshot against the live bus geometry and
// fixes up the pointer fields Restore carries over, so Restore on a
// decoded snapshot behaves exactly like Restore on a live one.
func (s *BusState) BindTo(live *Bus) error {
	if len(s.bus.memBankFree) != len(live.memBankFree) {
		return fmt.Errorf("snoop: snapshot has %d memory banks, bus has %d",
			len(s.bus.memBankFree), len(live.memBankFree))
	}
	n := len(live.l1d)
	for k := range s.bus.fillsInFlight {
		if k.core >= n {
			return fmt.Errorf("snoop: snapshot in-flight fill core %d out of range for %d cores", k.core, n)
		}
	}
	s.bus.cfg = live.cfg
	s.bus.eq = live.eq
	s.bus.mem = live.mem
	s.bus.q = live.q
	s.bus.l1d = live.l1d
	return nil
}
