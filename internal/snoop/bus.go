// Package snoop implements the alternative memory-system topology the
// paper sketches in §4.1: "The Reunion execution model can also be
// implemented at a snoopy cache interface for microarchitectures with
// private caches, such as Montecito."
//
// Instead of an inclusive shared L2 with a directory, cores' private
// caches sit on a broadcast bus in front of memory. Every coherent
// transaction snoops all other vocal caches: an exclusive owner supplies
// data and downgrades or invalidates; otherwise memory supplies it. The
// bus serializes transactions, which makes the protocol a total order —
// considerably simpler than the banked directory.
//
// The three Reunion mechanisms translate naturally:
//
//   - Vocal/mute semantics: mute caches never assert snoop responses and
//     their writebacks are dropped at the source; the bus behaves as if
//     mute cores were absent.
//   - Phantom requests: a mute request rides the bus without changing any
//     coherence state. Its strengths become: null (arbitrary data
//     immediately), shared (peek other caches only — the analog of "check
//     the shared cache" when there is none — arbitrary data on a snoop
//     miss), and global (peek caches, then read memory).
//   - Synchronizing requests: both members of the pair arrive at the bus,
//     the block is flushed from their private caches, one coherent bus
//     transaction obtains the data, and both receive it atomically.
package snoop

import (
	"fmt"

	"reunion/internal/cache"
	"reunion/internal/interconnect"
	"reunion/internal/mem"
	"reunion/internal/sim"
)

// Config parameterizes the bus and memory.
type Config struct {
	SnoopLatency int64 // request issue + snoop response combining
	BusPerCycle  int   // transactions started per cycle
	MemLatency   int64 // memory access latency
	MemBanks     int
	MemBankBusy  int64
	MemMSHRs     int // outstanding memory fetches
	Phantom      PhantomStrength
}

// PhantomStrength aliases the shared definition so callers configure one
// notion of strength for either topology.
type PhantomStrength = int

// Phantom strengths (numeric values match coherence.PhantomStrength).
const (
	PhantomGlobal PhantomStrength = iota
	PhantomShared
	PhantomNull
)

// Bus is the snoopy interconnect plus memory controller. It implements
// the same downstream surface as the directory L2 (cache.Below plus sync
// cancellation), so the system can swap topologies.
type Bus struct {
	cfg Config
	// Identity wiring: preserved across Restore, never serialized.
	eq  *sim.EventQueue //reunion:shared
	mem *mem.Memory     //reunion:shared

	q   *interconnect.BankQueue //reunion:shared
	l1d []*cache.L1             //reunion:shared

	memInFlight  int
	memBankFree  []int64
	MemQueueWait int64

	pendingSync  map[int]*cache.Req
	syncMinToken map[int]int64

	fillsInFlight map[flightKey]int

	// Stats
	Transactions    int64
	Reads, ReadX    int64
	Ifetches        int64
	SnoopHits       int64 // supplied by another cache
	MemAccesses     int64
	WritebacksRecv  int64
	PhantomReqs     int64
	PhantomGarbage  int64
	PhantomPeeks    int64
	PhantomMemReads int64
	SyncRequests    int64
	Retries         int64
}

type flightKey struct {
	core  int
	block uint64
}

// NewBus builds the snoopy memory system for numCores private caches.
func NewBus(cfg Config, eq *sim.EventQueue, m *mem.Memory, numCores int) *Bus {
	if cfg.BusPerCycle < 1 {
		cfg.BusPerCycle = 1
	}
	b := &Bus{
		cfg:           cfg,
		eq:            eq,
		mem:           m,
		q:             interconnect.NewBankQueue(cfg.BusPerCycle),
		l1d:           make([]*cache.L1, numCores),
		pendingSync:   make(map[int]*cache.Req),
		syncMinToken:  make(map[int]int64),
		fillsInFlight: make(map[flightKey]int),
	}
	if cfg.MemBanks > 0 {
		b.memBankFree = make([]int64, cfg.MemBanks)
	}
	return b
}

// RegisterL1D attaches a core's data cache for snooping.
func (b *Bus) RegisterL1D(core int, c *cache.L1) { b.l1d[core] = c }

// Request implements cache.Below.
func (b *Bus) Request(r *cache.Req) { b.q.Push(b.eq.Now(), r) }

// Tick arbitrates and processes bus transactions. Call once per cycle.
func (b *Bus) Tick() {
	now := b.eq.Now()
	for {
		it := b.q.Pop(now)
		if it == nil {
			return
		}
		b.process(it.(*cache.Req))
	}
}

// QuiesceWake implements sim.Tickable: the bus has work exactly when its
// queue holds a transaction (memory completions and reply deliveries
// travel through scheduled events).
func (b *Bus) QuiesceWake() (int64, bool) {
	return 0, b.q.Len() == 0
}

// AccountIdle implements sim.Tickable: the bus keeps no per-cycle
// counters.
func (b *Bus) AccountIdle(int64) {}

// ResetStats zeroes every bus statistic, including queue contention and
// memory-queue wait (measurement-window boundary).
func (b *Bus) ResetStats() {
	b.Transactions = 0
	b.Reads, b.ReadX, b.Ifetches = 0, 0, 0
	b.SnoopHits = 0
	b.MemAccesses = 0
	b.WritebacksRecv = 0
	b.PhantomReqs, b.PhantomGarbage, b.PhantomPeeks, b.PhantomMemReads = 0, 0, 0, 0
	b.SyncRequests = 0
	b.Retries = 0
	b.MemQueueWait = 0
	b.q.ResetStats()
}

func (b *Bus) requeue(r *cache.Req) {
	b.Retries++
	b.q.Push(b.eq.Now(), r)
}

// trackFill marks a granted-but-undelivered fill. A matching releaseFill
// must run after the fill lands. Grants are tracked from the moment the
// bus transaction decides them — the decision's side effects (snoops,
// invalidations) happen at process time, so later transactions must see
// the grant immediately or they would re-grant exclusivity.
func (b *Bus) trackFill(core int, block uint64) {
	b.fillsInFlight[flightKey{core: core, block: block}]++
}

func (b *Bus) releaseFill(core int, block uint64) {
	key := flightKey{core: core, block: block}
	if b.fillsInFlight[key]--; b.fillsInFlight[key] == 0 {
		delete(b.fillsInFlight, key)
	}
}

// reply delivers a response after lat cycles. release selects whether the
// delivery retires a tracked fill; the tracking key is always the reply
// target's {core, block}, which is what lets the event survive checkpoint
// serialization as plain data.
func (b *Bus) reply(r *cache.Req, data *mem.Block, exclusive bool, lat int64, release bool) {
	if lat < 1 {
		lat = 1
	}
	d := &EvReply{R: r, Data: *data, Exclusive: exclusive, Release: release}
	b.eq.AfterR(lat, d, b)
}

// RunEvent implements sim.EventRunner: the bus schedules its events with
// descriptors and dispatches on their type here, so the hot paths build
// no per-event closures. The checkpoint decoder still rebinds decoded
// events through the closure factories (Fn takes precedence over the
// runner), keeping one implementation per action.
func (b *Bus) RunEvent(desc any) {
	switch d := desc.(type) {
	case *EvReply:
		b.deliverReply(d)
	case *EvMemFetch:
		b.memFetchDone(d)
	case *EvPhantomMem:
		b.phantomMemDone(d.R)
	case *EvSyncMem:
		b.syncMemDone(d)
	default:
		panic(fmt.Sprintf("snoop: Bus.RunEvent on unknown descriptor %T", desc))
	}
}

// DeliverReply returns the fire closure for a scheduled reply: deliver
// the response, then retire the fill-tracking entry. The tracking
// increment happened at schedule time and is captured in the snapshotted
// fillsInFlight map, so a checkpoint rebind must only attach this
// closure — never re-increment.
func (b *Bus) DeliverReply(d *EvReply) func() {
	return func() { b.deliverReply(d) }
}

func (b *Bus) deliverReply(d *EvReply) {
	d.R.Done(cache.Resp{Data: d.Data, Exclusive: d.Exclusive})
	if d.Release {
		b.releaseFill(d.R.Core, d.R.Block)
	}
}

func (b *Bus) fillInFlight(core int, block uint64) bool {
	return b.fillsInFlight[flightKey{core: core, block: block}] > 0
}

func (b *Bus) memLatency(block uint64) int64 {
	if b.memBankFree == nil {
		return b.cfg.MemLatency
	}
	bank := (block >> mem.BlockShift) % uint64(len(b.memBankFree))
	now := b.eq.Now()
	start := now
	if b.memBankFree[bank] > start {
		start = b.memBankFree[bank]
		b.MemQueueWait += start - now
	}
	b.memBankFree[bank] = start + b.cfg.MemBankBusy
	return start - now + b.cfg.MemLatency
}

func garbageBlock(block uint64) mem.Block {
	var g mem.Block
	for i := range g {
		g[i] = sim.Mix64(block ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ 0x5160_0b5c_bad5_eed5)
	}
	return g
}

// snoopOthers probes every other vocal cache. invalidate selects
// invalidation vs downgrade. It returns the freshest data found (if any)
// and whether the transaction must retry (an in-flight grant or locked
// line).
func (b *Bus) snoopOthers(r *cache.Req, invalidate bool) (data mem.Block, supplied bool, retry bool) {
	for c := 0; c < len(b.l1d); c++ {
		l1 := b.l1d[c]
		if l1 == nil || c == r.Core || !l1.Vocal {
			continue
		}
		if b.fillInFlight(c, r.Block) {
			return mem.Block{}, false, true
		}
		line := l1.Arr.Peek(r.Block)
		if line == nil {
			continue
		}
		switch line.State {
		case cache.Modified, cache.Exclusive:
			var d mem.Block
			var dirty, had, busy bool
			if invalidate {
				d, dirty, had, busy = l1.ProbeInvalidate(r.Block)
			} else {
				d, dirty, had, busy = l1.ProbeDowngrade(r.Block)
			}
			if busy {
				return mem.Block{}, false, true
			}
			if had {
				data = d
				supplied = true
				b.SnoopHits++
				if dirty {
					// Snoop supply writes the dirty data home too
					// (write-back on ownership transfer).
					b.mem.WriteBlock(r.Block, &d)
				}
			}
		case cache.Shared:
			if invalidate {
				if _, _, _, busy := l1.ProbeInvalidate(r.Block); busy {
					return mem.Block{}, false, true
				}
			}
		}
	}
	return data, supplied, false
}

func (b *Bus) process(r *cache.Req) {
	b.Transactions++
	switch r.Kind {
	case cache.Writeback:
		if !r.Vocal {
			panic("snoop: mute writeback reached the bus")
		}
		b.WritebacksRecv++
		if r.Data != nil {
			b.mem.WriteBlock(r.Block, r.Data)
		}
	case cache.Sync:
		b.processSync(r)
	default:
		if r.Vocal {
			b.processVocal(r)
		} else {
			b.processPhantom(r)
		}
	}
}

// fetchAndReply supplies r from snooped data or memory. Tracking of the
// granted fill begins now, before any latency elapses.
func (b *Bus) fetchAndReply(r *cache.Req, data mem.Block, supplied, exclusive bool) bool {
	if !supplied && b.memInFlight >= b.cfg.MemMSHRs {
		b.requeue(r)
		return false
	}
	release := r.Kind != cache.Ifetch
	if release {
		b.trackFill(r.Core, r.Block)
	}
	if supplied {
		b.reply(r, &data, exclusive, b.cfg.SnoopLatency, release)
		return true
	}
	b.MemAccesses++
	b.memInFlight++
	d := &EvMemFetch{R: r, Exclusive: exclusive, Release: release}
	b.eq.AfterR(b.memLatency(r.Block), d, b)
	return true
}

// MemFetchDone returns the fire closure for a memory fetch completion:
// read the block and schedule the reply. The memInFlight and fill-tracking
// increments happened at schedule time and are captured in the snapshot,
// so a checkpoint rebind must only attach this closure.
func (b *Bus) MemFetchDone(d *EvMemFetch) func() {
	return func() { b.memFetchDone(d) }
}

func (b *Bus) memFetchDone(d *EvMemFetch) {
	b.memInFlight--
	var data mem.Block
	b.mem.ReadBlock(d.R.Block, &data)
	b.reply(d.R, &data, d.Exclusive, b.cfg.SnoopLatency, d.Release)
}

func (b *Bus) processVocal(r *cache.Req) {
	switch r.Kind {
	case cache.Ifetch:
		b.Ifetches++
		// Code is immutable; no snoop needed. Pays memory latency (there
		// is no shared cache at a snoopy interface).
		b.fetchAndReply(r, mem.Block{}, false, false)
	case cache.GetS:
		b.Reads++
		data, supplied, retry := b.snoopOthers(r, false)
		if retry {
			b.requeue(r)
			return
		}
		// Exclusive grant when no other cache holds a copy.
		exclusive := !supplied && !b.anySharer(r)
		b.fetchAndReply(r, data, supplied, exclusive)
	case cache.GetX:
		b.ReadX++
		data, supplied, retry := b.snoopOthers(r, true)
		if retry {
			b.requeue(r)
			return
		}
		b.fetchAndReply(r, data, supplied, true)
	default:
		panic(fmt.Sprintf("snoop: unexpected vocal request %v", r.Kind))
	}
}

// anySharer reports whether any other vocal cache holds the block Shared.
func (b *Bus) anySharer(r *cache.Req) bool {
	for c := 0; c < len(b.l1d); c++ {
		l1 := b.l1d[c]
		if l1 == nil || c == r.Core || !l1.Vocal {
			continue
		}
		if l1.Arr.Peek(r.Block) != nil {
			return true
		}
	}
	return false
}

// peekVocal returns the freshest vocal copy without changing any state
// (the snoopy analog of the global phantom's owner peek).
func (b *Bus) peekVocal(block uint64) (mem.Block, bool) {
	var best mem.Block
	found := false
	for c := 0; c < len(b.l1d); c++ {
		l1 := b.l1d[c]
		if l1 == nil || !l1.Vocal {
			continue
		}
		if line := l1.Arr.Peek(block); line != nil {
			best = line.Data
			found = true
			if line.State == cache.Modified || line.State == cache.Exclusive {
				return line.Data, true // unique freshest copy
			}
		}
	}
	return best, found
}

func (b *Bus) processPhantom(r *cache.Req) {
	b.PhantomReqs++
	switch b.cfg.Phantom {
	case PhantomNull:
		g := garbageBlock(r.Block)
		b.PhantomGarbage++
		b.trackFill(r.Core, r.Block)
		b.reply(r, &g, true, b.cfg.SnoopLatency, true)
	case PhantomShared:
		// No shared cache exists at a snoopy interface; the comparable
		// strength peeks the other private caches without going off-chip.
		if d, ok := b.peekVocal(r.Block); ok {
			b.PhantomPeeks++
			b.trackFill(r.Core, r.Block)
			b.reply(r, &d, true, b.cfg.SnoopLatency, true)
			return
		}
		g := garbageBlock(r.Block)
		b.PhantomGarbage++
		b.trackFill(r.Core, r.Block)
		b.reply(r, &g, true, b.cfg.SnoopLatency, true)
	default: // PhantomGlobal
		if d, ok := b.peekVocal(r.Block); ok {
			b.PhantomPeeks++
			b.trackFill(r.Core, r.Block)
			b.reply(r, &d, true, b.cfg.SnoopLatency, true)
			return
		}
		if b.memInFlight >= b.cfg.MemMSHRs {
			b.requeue(r)
			return
		}
		b.PhantomMemReads++
		b.MemAccesses++
		b.memInFlight++
		b.trackFill(r.Core, r.Block)
		b.eq.AfterR(b.memLatency(r.Block), &EvPhantomMem{R: r}, b)
	}
}

// PhantomMemDone returns the fire closure for a phantom off-chip read.
// The memInFlight and fill-tracking increments happened at schedule time
// and are captured in the snapshot, so a checkpoint rebind must only
// attach this closure.
func (b *Bus) PhantomMemDone(r *cache.Req) func() {
	return func() { b.phantomMemDone(r) }
}

func (b *Bus) phantomMemDone(r *cache.Req) {
	b.memInFlight--
	var data mem.Block
	b.mem.ReadBlock(r.Block, &data)
	b.reply(r, &data, true, b.cfg.SnoopLatency, true)
}

func (b *Bus) processSync(r *cache.Req) {
	if r.Token < b.syncMinToken[r.Pair] {
		return // cancelled by recovery escalation
	}
	first, ok := b.pendingSync[r.Pair]
	if !ok {
		b.pendingSync[r.Pair] = r
		return
	}
	if first.Token != r.Token {
		if first.Token < r.Token {
			b.pendingSync[r.Pair] = r
		}
		return
	}
	if first.Block != r.Block {
		panic(fmt.Sprintf("snoop: pair %d sync blocks disagree: %#x vs %#x", r.Pair, first.Block, r.Block))
	}
	vocal, mute := first, r
	if !vocal.Vocal {
		vocal, mute = r, first
	}
	if b.fillInFlight(vocal.Core, r.Block) || b.fillInFlight(mute.Core, r.Block) {
		b.pendingSync[r.Pair] = first
		b.requeue(r)
		return
	}
	delete(b.pendingSync, r.Pair)
	b.SyncRequests++

	// Flush the pair's own copies; the vocal's dirty data goes home.
	if vd, vdirty, vhad, vbusy := b.l1d[vocal.Core].ProbeInvalidate(r.Block); !vbusy && vhad && vdirty {
		b.mem.WriteBlock(r.Block, &vd)
	}
	b.l1d[mute.Core].ProbeInvalidate(r.Block)

	// One coherent write transaction on behalf of the pair.
	data, supplied, retry := b.snoopOthers(vocal, true)
	if retry {
		b.pendingSync[r.Pair] = first
		b.requeue(r)
		return
	}
	if supplied {
		b.trackFill(vocal.Core, r.Block)
		b.trackFill(mute.Core, r.Block)
		b.reply(vocal, &data, true, b.cfg.SnoopLatency, true)
		b.reply(mute, &data, true, b.cfg.SnoopLatency, true)
		return
	}
	if b.memInFlight >= b.cfg.MemMSHRs {
		b.pendingSync[r.Pair] = first
		b.requeue(r)
		return
	}
	b.MemAccesses++
	b.memInFlight++
	b.trackFill(vocal.Core, r.Block)
	b.trackFill(mute.Core, r.Block)
	d := &EvSyncMem{V: vocal, M: mute}
	b.eq.AfterR(b.memLatency(r.Block), d, b)
}

// SyncMemDone returns the fire closure for a pair's combined off-chip
// synchronizing fetch: both members receive the same data atomically. The
// memInFlight and fill-tracking increments happened at schedule time and
// are captured in the snapshot, so a checkpoint rebind must only attach
// this closure.
func (b *Bus) SyncMemDone(d *EvSyncMem) func() {
	return func() { b.syncMemDone(d) }
}

func (b *Bus) syncMemDone(d *EvSyncMem) {
	b.memInFlight--
	var data mem.Block
	b.mem.ReadBlock(d.V.Block, &data)
	b.reply(d.V, &data, true, b.cfg.SnoopLatency, true)
	b.reply(d.M, &data, true, b.cfg.SnoopLatency, true)
}

// CancelSync invalidates stale synchronizing requests (recovery
// escalation), mirroring the directory controller's contract.
func (b *Bus) CancelSync(pair int, minToken int64) {
	if r := b.pendingSync[pair]; r != nil && r.Token < minToken {
		delete(b.pendingSync, pair)
	}
	if b.syncMinToken[pair] < minToken {
		b.syncMinToken[pair] = minToken
	}
}

// DebugRead returns the coherent view of a block (owner copy, else memory).
func (b *Bus) DebugRead(block uint64) mem.Block {
	for c := 0; c < len(b.l1d); c++ {
		l1 := b.l1d[c]
		if l1 == nil || !l1.Vocal {
			continue
		}
		if line := l1.Arr.Peek(block); line != nil &&
			(line.State == cache.Modified || line.State == cache.Exclusive) {
			return line.Data
		}
	}
	var d mem.Block
	b.mem.ReadBlock(block, &d)
	return d
}
