package snoop

import (
	"testing"
	"testing/quick"

	"reunion/internal/cache"
	"reunion/internal/mem"
	"reunion/internal/sim"
)

type rig struct {
	eq  *sim.EventQueue
	mem *mem.Memory
	bus *Bus
	l1  []*cache.L1
}

func testConfig() Config {
	return Config{
		SnoopLatency: 20,
		BusPerCycle:  1,
		MemLatency:   240,
		MemBanks:     8,
		MemBankBusy:  24,
		MemMSHRs:     32,
		Phantom:      PhantomGlobal,
	}
}

func newRig(t *testing.T, cfg Config, vocal, mute int) *rig {
	t.Helper()
	r := &rig{eq: sim.NewEventQueue(), mem: mem.New()}
	r.bus = NewBus(cfg, r.eq, r.mem, vocal+mute)
	for i := 0; i < vocal+mute; i++ {
		isVocal := i < vocal
		pair := i
		if !isVocal {
			pair = i - vocal
		}
		l1 := cache.NewL1("l1", i, pair, isVocal, 8<<10, 2, 8, r.bus, false)
		r.bus.RegisterL1D(i, l1)
		r.l1 = append(r.l1, l1)
	}
	return r
}

func (r *rig) drain(t *testing.T) {
	t.Helper()
	for i := 0; i < 200_000; i++ {
		r.eq.Advance(r.eq.Now() + 1)
		r.bus.Tick()
		if r.eq.Pending() == 0 && r.bus.q.Len() == 0 {
			return
		}
	}
	t.Fatal("bus did not drain")
}

func blockN(n uint64) uint64 { return n * mem.BlockBytes }

func (r *rig) load(t *testing.T, core int, block uint64) uint64 {
	t.Helper()
	var got uint64
	ok := false
	st, v := r.l1[core].Load(block, 0, func(x uint64) { got, ok = x, true })
	if st == cache.Hit {
		return v
	}
	if st == cache.Retry {
		t.Fatal("retry in quiet system")
	}
	r.drain(t)
	if !ok {
		t.Fatal("load never completed")
	}
	return got
}

func (r *rig) store(t *testing.T, core int, block uint64, val uint64) {
	t.Helper()
	for i := 0; i < 100; i++ {
		done := false
		switch r.l1[core].Store(block, 0, val, func() { done = true }) {
		case cache.Hit:
			return
		case cache.Miss:
			r.drain(t)
			if !done {
				t.Fatal("store never completed")
			}
			return
		case cache.Retry:
			r.drain(t)
		}
	}
	t.Fatal("store retried forever")
}

func TestSnoopReadYourWrites(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(3)
	r.mem.WriteWord(b, 5)
	if got := r.load(t, 0, b); got != 5 {
		t.Fatalf("initial %d", got)
	}
	r.store(t, 0, b, 6)
	if got := r.load(t, 0, b); got != 6 {
		t.Fatalf("readback %d", got)
	}
}

func TestSnoopSupplyAndInvalidate(t *testing.T) {
	r := newRig(t, testConfig(), 3, 0)
	b := blockN(9)
	r.store(t, 0, b, 11) // core 0 M
	if got := r.load(t, 1, b); got != 11 {
		t.Fatalf("snoop supply %d", got)
	}
	if r.bus.SnoopHits == 0 {
		t.Fatal("snoop hit not counted")
	}
	if st := r.l1[0].Arr.Peek(b).State; st != cache.Shared {
		t.Fatalf("owner not downgraded: %v", st)
	}
	r.store(t, 2, b, 12) // invalidates both sharers
	if r.l1[0].Arr.Peek(b) != nil || r.l1[1].Arr.Peek(b) != nil {
		t.Fatal("sharers not invalidated by GetX")
	}
	for c := 0; c < 3; c++ {
		if got := r.load(t, c, b); got != 12 {
			t.Fatalf("core %d sees %d", c, got)
		}
	}
}

func TestSnoopDirtySupplyWritesHome(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(4)
	r.store(t, 0, b, 77)
	r.load(t, 1, b) // snoop supply from M; dirty data written home
	if r.mem.ReadWord(b) != 77 {
		t.Fatal("dirty snoop supply not written home")
	}
}

func TestSnoopExclusiveGrant(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(5)
	r.load(t, 0, b)
	if st := r.l1[0].Arr.Peek(b).State; st != cache.Exclusive {
		t.Fatalf("solo reader got %v", st)
	}
	r.load(t, 1, b)
	if st := r.l1[1].Arr.Peek(b).State; st != cache.Shared {
		t.Fatalf("second reader got %v", st)
	}
}

func TestSnoopPhantomStrengths(t *testing.T) {
	// Global: peeks vocal caches, then memory.
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(7)
	r.store(t, 0, b, 42)
	if got := r.load(t, 1, b); got != 42 {
		t.Fatalf("global phantom peek %d", got)
	}
	if st := r.l1[0].Arr.Peek(b).State; st != cache.Modified {
		t.Fatal("phantom peek changed owner state")
	}
	b2 := blockN(8)
	r.mem.WriteWord(b2, 9)
	if got := r.load(t, 1, b2); got != 9 {
		t.Fatalf("global phantom memory read %d", got)
	}

	// Null: garbage always.
	cfg := testConfig()
	cfg.Phantom = PhantomNull
	r2 := newRig(t, cfg, 1, 1)
	r2.mem.WriteWord(b, 3)
	r2.load(t, 0, b)
	if got := r2.load(t, 1, b); got == 3 {
		t.Fatal("null phantom returned coherent data")
	}

	// Shared-analog: cache peek works, memory path returns garbage.
	cfg.Phantom = PhantomShared
	r3 := newRig(t, cfg, 1, 1)
	r3.store(t, 0, b, 8)
	if got := r3.load(t, 1, b); got != 8 {
		t.Fatalf("shared phantom peek %d", got)
	}
	missing := blockN(60)
	r3.mem.WriteWord(missing, 4)
	if got := r3.load(t, 1, missing); got == 4 {
		t.Fatal("shared phantom off-chip read returned coherent data")
	}
}

func TestSnoopMuteIsolation(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(12)
	r.load(t, 1, b)
	r.store(t, 1, b, 999) // mute store: local only
	if r.mem.ReadWord(b) == 999 {
		t.Fatal("mute store reached memory")
	}
	if got := r.bus.DebugRead(b); got[0] == 999 {
		t.Fatal("mute store in coherent view")
	}
}

func TestSnoopSyncCombines(t *testing.T) {
	r := newRig(t, testConfig(), 2, 2) // pairs (0,2) and (1,3)
	b := blockN(20)
	r.mem.WriteWord(b, 3)
	r.load(t, 2, b)     // mute 0 caches it
	r.store(t, 1, b, 9) // other pair's vocal owns it dirty
	var vGot, mGot uint64
	vDone, mDone := false, false
	if !r.l1[0].SyncFill(b, 0, false, 1, func(v uint64) { vGot, vDone = v, true }) {
		t.Fatal("vocal sync rejected")
	}
	r.drain(t)
	if vDone {
		t.Fatal("sync completed one-sided")
	}
	if !r.l1[2].SyncFill(b, 0, false, 1, func(v uint64) { mGot, mDone = v, true }) {
		t.Fatal("mute sync rejected")
	}
	r.drain(t)
	if !vDone || !mDone || vGot != 9 || mGot != 9 {
		t.Fatalf("sync results %v/%v %d/%d", vDone, mDone, vGot, mGot)
	}
	if r.bus.SyncRequests != 1 {
		t.Fatalf("SyncRequests=%d", r.bus.SyncRequests)
	}
}

func TestSnoopSyncCancel(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(25)
	called := false
	r.l1[0].SyncFill(b, 0, false, 1, func(uint64) { called = true })
	r.drain(t)
	r.bus.CancelSync(0, 2)
	r.l1[0].AbortMiss(b)
	vDone, mDone := false, false
	r.l1[0].SyncFill(b, 0, false, 2, func(uint64) { vDone = true })
	r.l1[1].SyncFill(b, 0, false, 2, func(uint64) { mDone = true })
	r.drain(t)
	if called || !vDone || !mDone {
		t.Fatalf("cancel semantics: called=%v v=%v m=%v", called, vDone, mDone)
	}
}

// TestSnoopVsSerialOracle: the bus preserves sequential memory semantics
// for serialized operations — same property as the directory.
func TestSnoopVsSerialOracle(t *testing.T) {
	r := newRig(t, testConfig(), 4, 0)
	oracle := make(map[uint64]uint64)
	f := func(ops []struct {
		Core  uint8
		Block uint8
		Val   uint64
		Store bool
	}) bool {
		for _, op := range ops {
			core := int(op.Core) % 4
			b := blockN(uint64(op.Block) % 48)
			if op.Store {
				r.store(t, core, b, op.Val)
				oracle[b] = op.Val
			} else if got := r.load(t, core, b); got != oracle[b] {
				t.Logf("core %d read %d from %#x want %d", core, got, b, oracle[b])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSnoopConcurrentConvergence mirrors the directory stress test:
// overlapping operations must converge to a single-writer state holding a
// value some store actually wrote.
func TestSnoopConcurrentConvergence(t *testing.T) {
	r := newRig(t, testConfig(), 4, 0)
	rnd := sim.NewRand(5)
	const blocks = 24
	written := make(map[uint64]map[uint64]bool)
	outstanding := 0
	for step := 0; step < 3000; step++ {
		core := rnd.Intn(4)
		b := blockN(uint64(rnd.Intn(blocks)))
		if rnd.Intn(2) == 0 {
			val := uint64(step)<<8 | uint64(core)
			st := r.l1[core].Store(b, 0, val, func() { outstanding-- })
			if st != cache.Retry {
				if st == cache.Miss {
					outstanding++
				}
				if written[b] == nil {
					written[b] = map[uint64]bool{}
				}
				written[b][val] = true
			}
		} else {
			if st, _ := r.l1[core].Load(b, 0, func(uint64) { outstanding-- }); st == cache.Miss {
				outstanding++
			}
		}
		for i := 0; i < rnd.Intn(4); i++ {
			r.eq.Advance(r.eq.Now() + 1)
			r.bus.Tick()
		}
	}
	r.drain(t)
	if outstanding != 0 {
		t.Fatalf("%d operations incomplete", outstanding)
	}
	for i := 0; i < blocks; i++ {
		b := blockN(uint64(i))
		if len(written[b]) == 0 {
			continue
		}
		got := r.bus.DebugRead(b)[0]
		if !written[b][got] {
			t.Fatalf("block %d converged to unwritten value %d", i, got)
		}
		exclusive := 0
		for c := 0; c < 4; c++ {
			if l := r.l1[c].Arr.Peek(b); l != nil && l.State != cache.Shared {
				exclusive++
			}
		}
		if exclusive > 1 {
			t.Fatalf("block %d: %d exclusive copies", i, exclusive)
		}
	}
}
