package snoop

import (
	"maps"

	"reunion/internal/interconnect"
)

// Checkpoint support for the snoopy bus (see the reunion package's
// System.Snapshot and the matching coherence controller snapshot).
// Queued and parked *cache.Req values are shared between snapshot and
// live state: a request is immutable after creation and its completion
// callback resolves the L1 MSHR by block at fire time.

// BusState is a checkpoint of the bus and memory controller.
type BusState struct {
	bus Bus // shallow copy; reference fields fixed up below
	q   interconnect.BankQueueState
}

// Snapshot captures the bus state. Read-only.
func (b *Bus) Snapshot() *BusState {
	s := &BusState{bus: *b, q: b.q.Snapshot()}
	s.bus.memBankFree = append([]int64(nil), b.memBankFree...)
	s.bus.pendingSync = maps.Clone(b.pendingSync)
	s.bus.syncMinToken = maps.Clone(b.syncMinToken)
	s.bus.fillsInFlight = maps.Clone(b.fillsInFlight)
	return s
}

// Restore rewrites the bus from a snapshot.
func (b *Bus) Restore(s *BusState) {
	q, l1d := b.q, b.l1d
	*b = s.bus
	b.q, b.l1d = q, l1d
	b.q.Restore(s.q)
	b.memBankFree = append([]int64(nil), s.bus.memBankFree...)
	b.pendingSync = maps.Clone(s.bus.pendingSync)
	b.syncMinToken = maps.Clone(s.bus.syncMinToken)
	b.fillsInFlight = maps.Clone(s.bus.fillsInFlight)
}
