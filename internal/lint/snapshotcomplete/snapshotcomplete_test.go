package snapshotcomplete_test

import (
	"testing"

	"reunion/internal/lint/linttest"
	"reunion/internal/lint/snapshotcomplete"
)

func TestSnapshotComplete(t *testing.T) {
	linttest.Run(t, "testdata", snapshotcomplete.Analyzer)
}
