// Package snapshotcomplete enforces the checkpoint-capture contract in
// every package that has a snapshot path (a snapshot.go, wire.go, or
// serialize.go file): a struct that participates in snapshotting may
// not grow a field the snapshot path silently loses.
//
// Two capture idioms exist in this repository, and the check follows
// both:
//
//   - Shallow-copy snapshots (snapshot.go): `s.core = *c` captures every
//     scalar automatically, so only reference-typed fields (slices,
//     maps, pointers, chans, funcs, interfaces) can be lost — each must
//     be mentioned somewhere in the snapshot path (deep-copied, fixed
//     up, or nil'd) or annotated. Struct values captured by the copy
//     (including slice/array elements) are checked recursively the same
//     way: a reference inside a copied element leaks identity just as
//     surely.
//
//   - Field-by-field wire encoding (wire.go Encode/Decode): nothing is
//     automatic, so every field of an encoded struct must be mentioned
//     in the snapshot path or annotated. Struct-typed constituents
//     (slice elements, nested values) are checked recursively with the
//     same all-fields rule.
//
// Escapes: `//reunion:derived` on a field declares rebuilt-on-restore
// state (never captured, reconstructed from serialized state — PR 8's
// waiter chains); `//reunion:shared` declares a reference intentionally
// shared between snapshot and live machine (identity-preserved
// component wiring, immutable-once-created values). Both annotations
// are also load-bearing for the wireversion analyzer, which excludes
// annotated fields from the pinned payload digest.
package snapshotcomplete

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"

	"reunion/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapshotcomplete",
	Doc: "every field of a snapshotted or wire-encoded struct must be captured by " +
		"its package's snapshot path (snapshot.go/wire.go/serialize.go) or annotated " +
		"//reunion:derived (rebuilt on restore) or //reunion:shared (identity-preserved)",
	Run: run,
}

// snapshotFiles are the per-package files that constitute the snapshot
// path.
var snapshotFiles = map[string]bool{
	"snapshot.go": true, "wire.go": true, "serialize.go": true,
}

// captureMode says which fields of a serialized struct need evidence.
type captureMode int

const (
	modeRefsOnly  captureMode = iota // shallow-copied: scalars are automatic
	modeAllFields                    // wire-encoded: nothing is automatic
)

func run(pass *analysis.Pass) error {
	var snapFiles []*ast.File
	for _, f := range pass.Pkg.Files {
		name := filepath.Base(pass.Prog.Fset.Position(f.Package).Filename)
		if snapshotFiles[name] {
			snapFiles = append(snapFiles, f)
		}
	}
	if len(snapFiles) == 0 {
		return nil
	}
	info := pass.Pkg.Info

	// Pass 1 over the snapshot path: which fields are mentioned, which
	// structs are shallow-copied, which are snapshot/encode receivers.
	referenced := map[*types.Var]bool{}
	shallow := map[*types.Named]bool{}
	serialized := map[*types.Named]captureMode{}

	noteNamed := func(t types.Type, mode captureMode) {
		if n := localNamedStruct(pass.Pkg.Types, t); n != nil {
			if cur, ok := serialized[n]; !ok || mode > cur {
				serialized[n] = mode
			}
		}
	}

	for _, f := range snapFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 {
				continue
			}
			recv := info.Defs[fd.Name].(*types.Func).Signature().Recv()
			switch fd.Name.Name {
			case "Snapshot":
				noteNamed(recv.Type(), modeRefsOnly)
				if res := info.Defs[fd.Name].(*types.Func).Signature().Results(); res.Len() == 1 {
					noteNamed(res.At(0).Type(), modeAllFields)
				}
			case "Encode":
				noteNamed(recv.Type(), modeAllFields)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if s := info.Selections[n]; s != nil && s.Kind() == types.FieldVal {
					referenced[s.Obj().(*types.Var)] = true
				}
			case *ast.KeyValueExpr:
				if id, ok := n.Key.(*ast.Ident); ok {
					if v, ok := info.Uses[id].(*types.Var); ok && v.IsField() {
						referenced[v] = true
					}
				}
			case *ast.StarExpr:
				// `*b` copying a whole struct value marks the shallow-copy
				// idiom (both `x := *b` and `*b = snap` directions).
				tv, ok := info.Types[n.X]
				if !ok || !tv.IsValue() {
					return true
				}
				ptr, ok := tv.Type.Underlying().(*types.Pointer)
				if !ok {
					return true
				}
				if named := localNamedStruct(pass.Pkg.Types, ptr.Elem()); named != nil {
					shallow[named] = true
				}
			}
			return true
		})
	}
	// Shallow-copied structs are checked refs-only even when they also
	// have a Snapshot/Encode method.
	for n := range shallow {
		serialized[n] = modeRefsOnly
	}

	// Close over struct-typed constituents: a value struct reachable
	// from a serialized struct's fields is captured (or encoded) with
	// it, so its fields face the same rule.
	worklist := make([]*types.Named, 0, len(serialized))
	for n := range serialized {
		worklist = append(worklist, n)
	}
	for len(worklist) > 0 {
		n := worklist[0]
		worklist = worklist[1:]
		mode := serialized[n]
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			for _, elem := range valueConstituents(st.Field(i).Type()) {
				child := localNamedStruct(pass.Pkg.Types, elem)
				if child == nil || shallow[child] {
					continue
				}
				if cur, ok := serialized[child]; !ok || mode > cur {
					serialized[child] = mode
					worklist = append(worklist, child)
				}
			}
		}
	}

	// Report: deterministic order over the serialized structs.
	var names []*types.Named
	for n := range serialized {
		names = append(names, n)
	}
	sort.Slice(names, func(i, j int) bool {
		return names[i].Obj().Name() < names[j].Obj().Name()
	})
	for _, n := range names {
		mode := serialized[n]
		st := n.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if f.Name() == "_" || referenced[f] {
				continue
			}
			if mode == modeRefsOnly && !isRefType(f.Type()) {
				continue
			}
			if pass.Pkg.FieldMarked(f, analysis.MarkDerived) ||
				pass.Pkg.FieldMarked(f, analysis.MarkShared) {
				continue
			}
			what := "captured by the snapshot path"
			if mode == modeRefsOnly {
				what = "deep-copied, fixed up, or nil'd in the snapshot path"
			}
			pass.Reportf(f.Pos(),
				"field %s.%s is neither %s (snapshot.go/wire.go/serialize.go) nor annotated "+
					"//reunion:derived or //reunion:shared — a checkpoint would silently lose it",
				n.Obj().Name(), f.Name(), what)
		}
	}
	return nil
}

// localNamedStruct returns t as a named struct type defined in pkg, or
// nil.
func localNamedStruct(pkg *types.Package, t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
			continue
		case *types.Named:
			if u.Obj().Pkg() != pkg {
				return nil
			}
			if _, ok := u.Underlying().(*types.Struct); ok {
				return u
			}
			return nil
		default:
			return nil
		}
	}
}

// valueConstituents returns the struct-valued types captured wholesale
// when a field of type t is copied: t itself, slice/array elements, and
// map values. Pointees are not included — a pointer field is itself the
// reference needing evidence, and its target has its own snapshot.
func valueConstituents(t types.Type) []types.Type {
	switch u := t.Underlying().(type) {
	case *types.Struct:
		return []types.Type{t}
	case *types.Slice:
		return valueConstituents(u.Elem())
	case *types.Array:
		return valueConstituents(u.Elem())
	case *types.Map:
		return valueConstituents(u.Elem())
	}
	return nil
}

// isRefType reports whether a field of this type can escape a shallow
// struct copy: anything that aliases or is rebuilt rather than copied.
func isRefType(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Array:
		return isRefType(u.Elem())
	case *types.Struct:
		// A nested value struct is captured by the copy, but any
		// reference fields inside it are handled via the constituent
		// closure — the field itself is not a reference.
		return false
	}
	return false
}
