// Package snap exercises the shallow-copy snapshot idiom: `*c` captures
// scalars, reference fields need explicit treatment or an annotation.
package snap

type Config struct{ Ways int }

type inner struct {
	id  uint32
	ptr *uint32 // want `inner\.ptr`
}

type Core struct {
	tick uint64
	buf  []int
	lost []int // want `Core\.lost`
	// wake chains are rebuilt from serialized queue state on restore.
	// //reunion:derived
	wake []int
	cfg  *Config //reunion:shared config is immutable once built
	sets [2]inner
}

type CoreState struct {
	core Core
}

func (c *Core) Snapshot() *CoreState {
	s := &CoreState{core: *c}
	s.core.buf = append([]int(nil), c.buf...)
	return s
}
