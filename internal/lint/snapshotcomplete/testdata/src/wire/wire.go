// Package wire exercises the field-by-field encode idiom: nothing is
// captured automatically, so even scalars need evidence.
package wire

type Entry struct {
	Tag  uint64
	Data uint64
}

type TLBState struct {
	Entries []Entry
	Tick    uint64
	Hits    uint64 // want `TLBState\.Hits`
}

func (s *TLBState) Encode(buf []byte) []byte {
	for _, e := range s.Entries {
		buf = append(buf, byte(e.Tag), byte(e.Data))
	}
	return append(buf, byte(s.Tick))
}
