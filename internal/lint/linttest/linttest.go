// Package linttest is an analysistest-style harness for the lint suite:
// it loads a GOPATH-style testdata tree, runs one analyzer, and checks
// its diagnostics against `// want` expectations in the fixture source.
//
// Expectation syntax, on the line the diagnostic is expected at:
//
//	r.Addf(now, 0, trace.Compare, "x") // want `ungated`
//
// The backquoted (or double-quoted) string is an anchored-nowhere
// regular expression matched against the diagnostic message; several
// patterns on one line expect several diagnostics. A line with no
// `// want` comment expects none.
package linttest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"reunion/internal/lint/analysis"
)

// Run loads root (a testdata dir containing src/) with the given target
// patterns, runs the analyzer, and reports any mismatch between its
// diagnostics and the tree's // want comments on t.
func Run(t *testing.T, root string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.LoadTree(root, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	type key struct {
		file string
		line int
	}
	pending := map[key][]string{} // unmatched diagnostic messages
	for _, d := range diags {
		k := key{d.Pos.Filename, d.Pos.Line}
		pending[k] = append(pending[k], d.Message)
	}

	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			filename := prog.Fset.Position(f.Package).Filename
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					wants := parseWants(t, c.Text)
					if wants == nil {
						continue
					}
					k := key{filename, prog.Fset.Position(c.Pos()).Line}
					for _, re := range wants {
						if !takeMatch(pending, k, re) {
							t.Errorf("%s:%d: no diagnostic matching %q (have %v)",
								filename, k.line, re.String(), pending[k])
						}
					}
				}
			}
		}
	}
	for k, msgs := range pending {
		for _, m := range msgs {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, m)
		}
	}
}

// takeMatch removes and reports the first pending diagnostic at k
// matching re.
func takeMatch[K comparable](pending map[K][]string, k K, re *regexp.Regexp) bool {
	msgs := pending[k]
	for i, m := range msgs {
		if re.MatchString(m) {
			pending[k] = append(msgs[:i:i], msgs[i+1:]...)
			if len(pending[k]) == 0 {
				delete(pending, k)
			}
			return true
		}
	}
	return false
}

// parseWants extracts the expectation regexps from one comment, or nil
// if it is not a want comment.
func parseWants(t *testing.T, text string) []*regexp.Regexp {
	t.Helper()
	body, ok := strings.CutPrefix(strings.TrimSpace(strings.TrimPrefix(text, "//")), "want ")
	if !ok {
		return nil
	}
	var wants []*regexp.Regexp
	rest := strings.TrimSpace(body)
	for rest != "" {
		var raw string
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", text)
			}
			raw = rest[1 : 1+end]
			rest = rest[2+end:]
		case '"':
			var err error
			end := strings.IndexByte(rest[1:], '"') // no escaped quotes in fixtures
			if end < 0 {
				t.Fatalf("unterminated want pattern: %s", text)
			}
			raw, err = strconv.Unquote(rest[:2+end])
			if err != nil {
				t.Fatalf("bad want pattern %s: %v", rest[:2+end], err)
			}
			rest = rest[2+end:]
		default:
			t.Fatalf("want pattern must be quoted or backquoted: %s", text)
		}
		re, err := regexp.Compile(raw)
		if err != nil {
			t.Fatalf("bad want regexp %q: %v", raw, err)
		}
		wants = append(wants, re)
		rest = strings.TrimSpace(rest)
	}
	if wants == nil {
		t.Fatalf("want comment with no patterns: %s", text)
	}
	return wants
}
