package determinism_test

import (
	"testing"

	"reunion/internal/lint/determinism"
	"reunion/internal/lint/linttest"
)

func TestDeterminism(t *testing.T) {
	linttest.Run(t, "testdata", determinism.Analyzer)
}
