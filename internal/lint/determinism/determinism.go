// Package determinism flags host-nondeterminism in code that can reach
// a deterministic sink: a sweep result Sink, the distributed journal,
// or the fingerprint/digest pipeline. The simulator's contract is that
// identical configs produce bit-identical results across hosts and
// runs; one time.Now() or unsorted map range on any path into those
// sinks breaks replayability in ways no unit test reliably catches.
//
// The analyzer builds a whole-program callgraph over the module's
// function declarations (call edges plus function-value references,
// with interface calls resolved against every module type that
// implements the interface) and reverse-taints from the sinks. Within
// tainted functions it reports:
//
//   - time.Now / time.Since calls — use the simulated tick;
//   - package-level math/rand draws (seeded *rand.Rand instances and
//     constructors are fine);
//   - range over a map whose body neither only deletes nor is followed
//     by a sort in the same function — iteration order leaks.
//
// Escape hatch: `//reunion:nondeterm-ok` on the statement, the
// function declaration, or the file's package clause, for code whose
// host-time use is intentional (bench harnesses, latency telemetry).
package determinism

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"

	"reunion/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "functions that can reach a sweep Sink, dist.Journal, or fingerprint/digest " +
		"sink must not call time.Now/Since, draw from global math/rand, or range over " +
		"maps unsorted; annotate intentional host-time code //reunion:nondeterm-ok",
	WholeProgram: true,
	Run:          run,
}

// randConstructors are math/rand package-level functions that build
// seeded instances rather than drawing from the global source.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

type declSite struct {
	pkg *analysis.Package
	fd  *ast.FuncDecl
}

func run(pass *analysis.Pass) error {
	prog := pass.Prog

	// Deterministic package order so edge lists, BFS order, and witness
	// choices are stable run to run.
	paths := make([]string, 0, len(prog.Pkgs))
	for path := range prog.Pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	// Nodes: every function declaration in the analysis domain.
	decls := map[*types.Func]declSite{}
	var order []*types.Func
	for _, path := range paths {
		pkg := prog.Pkgs[path]
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					decls[fn] = declSite{pkg, fd}
					order = append(order, fn)
				}
			}
		}
	}

	// All module named types, for interface-call resolution and sink
	// interface discovery.
	var namedTypes []*types.Named
	var sinkIfaces []*types.Interface
	for _, path := range paths {
		scope := prog.Pkgs[path].Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			n, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			namedTypes = append(namedTypes, n)
			if iface, ok := n.Underlying().(*types.Interface); ok && tn.Name() == "Sink" {
				sinkIfaces = append(sinkIfaces, iface)
			}
		}
	}

	// Reverse edges: callee -> callers. A reference counts as an edge —
	// function values flow to their eventual call sites conservatively.
	callers := map[*types.Func][]*types.Func{}
	addEdge := func(caller, callee *types.Func) {
		callers[callee] = append(callers[callee], caller)
	}
	resolveIface := func(caller, m *types.Func) {
		iface, ok := m.Signature().Recv().Type().Underlying().(*types.Interface)
		if !ok {
			return
		}
		for _, n := range namedTypes {
			if !types.Implements(n, iface) && !types.Implements(types.NewPointer(n), iface) {
				continue
			}
			obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(n), true, m.Pkg(), m.Name())
			if impl, ok := obj.(*types.Func); ok {
				if _, isDecl := decls[impl]; isDecl {
					addEdge(caller, impl)
				}
			}
		}
	}
	for _, fn := range order {
		site := decls[fn]
		if site.fd.Body == nil {
			continue
		}
		info := site.pkg.Info
		ast.Inspect(site.fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			callee, ok := info.Uses[id].(*types.Func)
			if !ok {
				return true
			}
			if _, isDecl := decls[callee]; isDecl {
				addEdge(fn, callee)
			} else if recv := callee.Signature().Recv(); recv != nil {
				if _, ok := recv.Type().Underlying().(*types.Interface); ok {
					resolveIface(fn, callee)
				}
			}
			return true
		})
	}

	// Reverse BFS from the sinks; each tainted function remembers one
	// sink it can reach, for the diagnostic.
	witness := map[*types.Func]*types.Func{}
	var queue []*types.Func
	for _, fn := range order {
		if isSink(fn, decls[fn], sinkIfaces) {
			witness[fn] = fn
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		callee := queue[0]
		queue = queue[1:]
		w := witness[callee]
		for _, caller := range callers[callee] {
			if _, seen := witness[caller]; !seen {
				witness[caller] = w
				queue = append(queue, caller)
			}
		}
	}

	// Scan tainted target functions for violations.
	for _, pkg := range prog.Targets {
		for _, f := range pkg.Files {
			if pkg.FileMarked(f, analysis.MarkNondetermOK) {
				continue
			}
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				sink, tainted := witness[fn]
				if !tainted || pkg.FuncMarked(fd, analysis.MarkNondetermOK) {
					continue
				}
				checkBody(pass, pkg, fd, fullName(fn), fullName(sink))
			}
		}
	}
	return nil
}

// isSink reports whether fn is a deterministic-output sink: an Emit
// method on a type implementing a module Sink interface, any method of
// dist's Journal, anything in a fingerprint package, or a function
// whose name marks it as part of the digest pipeline.
func isSink(fn *types.Func, site declSite, sinkIfaces []*types.Interface) bool {
	pkgBase := analysis.Basename(site.pkg.Path)
	if pkgBase == "fingerprint" {
		return true
	}
	name := fn.Name()
	if strings.Contains(name, "Digest") || name == "Fingerprint" {
		return true
	}
	recv := fn.Signature().Recv()
	if recv == nil {
		return false
	}
	named := namedOf(recv.Type())
	if named == nil {
		return false
	}
	if pkgBase == "dist" && named.Obj().Name() == "Journal" {
		return true
	}
	if name == "Emit" {
		for _, iface := range sinkIfaces {
			if types.Implements(named, iface) || types.Implements(types.NewPointer(named), iface) {
				return true
			}
		}
	}
	return false
}

// checkBody reports nondeterminism inside one tainted function.
func checkBody(pass *analysis.Pass, pkg *analysis.Package, fd *ast.FuncDecl, where, sink string) {
	info := pkg.Info
	var stack []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			callee, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || callee.Pkg() == nil || pkg.MarkedAt(n.Pos(), analysis.MarkNondetermOK) {
				return true
			}
			switch callee.Pkg().Path() {
			case "time":
				if callee.Name() == "Now" || callee.Name() == "Since" {
					pass.Reportf(n.Pos(),
						"%s calls time.%s but can reach deterministic sink %s: "+
							"use the simulated tick, or annotate //reunion:nondeterm-ok if host-time-only",
						where, callee.Name(), sink)
				}
			case "math/rand", "math/rand/v2":
				if callee.Signature().Recv() == nil && !randConstructors[callee.Name()] {
					pass.Reportf(n.Pos(),
						"%s draws from global math/rand (%s) but can reach deterministic sink %s: "+
							"use a seeded *rand.Rand, or annotate //reunion:nondeterm-ok",
						where, callee.Name(), sink)
				}
			}
		case *ast.RangeStmt:
			tv, ok := info.Types[n.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if pkg.MarkedAt(n.Pos(), analysis.MarkNondetermOK) ||
				deleteOnly(n.Body) || sortedLater(stack) {
				return true
			}
			pass.Reportf(n.Pos(),
				"%s ranges over map %s in nondeterministic order and can reach deterministic sink %s: "+
					"sort the keys first, or annotate //reunion:nondeterm-ok",
				where, types.ExprString(n.X), sink)
		}
		return true
	})
}

// deleteOnly reports whether a range body only deletes from maps —
// order-insensitive, the one idiomatic unsorted map range.
func deleteOnly(body *ast.BlockStmt) bool {
	if len(body.List) == 0 {
		return false
	}
	for _, stmt := range body.List {
		es, ok := stmt.(*ast.ExprStmt)
		if !ok {
			return false
		}
		call, ok := es.X.(*ast.CallExpr)
		if !ok {
			return false
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "delete" {
			return false
		}
	}
	return true
}

// sortedLater reports whether a sort.* or slices.Sort* call follows the
// innermost stack node in any enclosing block of the same function —
// the collect-keys-then-sort idiom.
func sortedLater(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch node := stack[i].(type) {
		case *ast.BlockStmt:
			child := stack[i+1]
			after := false
			for _, stmt := range node.List {
				if after && containsSortCall(stmt) {
					return true
				}
				if stmt == child {
					after = true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			return false
		}
	}
	return false
}

func containsSortCall(n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if x, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if x.Name == "sort" || (x.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort")) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// namedOf unwraps pointers to a named type, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// fullName renders a function for diagnostics: Type.Method or pkg.Func.
func fullName(fn *types.Func) string {
	if recv := fn.Signature().Recv(); recv != nil {
		if n := namedOf(recv.Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
