// Package sweep is a fixture stand-in: the Sink interface marks the
// deterministic-output boundary.
package sweep

type Sink interface {
	Emit(row string)
}
