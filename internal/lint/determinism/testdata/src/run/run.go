// Package run exercises taint propagation into the Sink boundary: the
// flagged functions reach a sink, the clean ones either do not or use
// one of the accepted idioms.
package run

import (
	"math/rand"
	"sort"
	"time"

	"res"
	"sweep"
)

// emitAll reaches the sink through the interface: every implementation
// of sweep.Sink is a resolution candidate.
func emitAll(s sweep.Sink, rows []string) {
	for _, r := range rows {
		s.Emit(r)
	}
}

func runner(c *res.Collector, counts map[string]int) {
	start := time.Now() // want `time\.Now`
	_ = start
	seed := rand.Intn(10) // want `math/rand`
	_ = seed
	rng := rand.New(rand.NewSource(1))
	_ = rng.Intn(10)
	for k := range counts { // want `map`
		c.Emit(k)
	}
}

func sortedRunner(s sweep.Sink, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s.Emit(k)
	}
}

func pruneRunner(c *res.Collector, m map[string]int) {
	for k := range m {
		delete(m, k)
	}
	c.Emit("pruned")
}

// hostOnly never reaches a sink, so host time is fine here.
func hostOnly() time.Time { return time.Now() }

// timedEmit measures wall-clock latency around the emit by design.
// //reunion:nondeterm-ok host latency telemetry only
func timedEmit(c *res.Collector) {
	t0 := time.Now()
	c.Emit(time.Since(t0).String())
}

func mixedEmit(c *res.Collector) {
	t0 := time.Now() //reunion:nondeterm-ok host latency, not emitted
	_ = t0
	c.Emit("row")
}

// deferredEmit hides the violation in a closure; the body is still
// attributed to the declaring function.
func deferredEmit(c *res.Collector) {
	f := func() { _ = time.Now() } // want `time\.Now`
	f()
	c.Emit("row")
}

func computeDigest(rows []string) uint64 {
	var h uint64
	for _, r := range rows {
		h = h*131 + uint64(len(r))
	}
	return h
}

func digestCaller(rows map[string]string) uint64 {
	for k := range rows { // want `map`
		_ = k
	}
	return computeDigest(nil)
}

var _ = emitAll
var _ = runner
var _ = sortedRunner
var _ = pruneRunner
var _ = hostOnly
var _ = timedEmit
var _ = mixedEmit
var _ = deferredEmit
var _ = digestCaller
