package res

type Collector struct{ rows []string }

func (c *Collector) Emit(row string) { c.rows = append(c.rows, row) }
