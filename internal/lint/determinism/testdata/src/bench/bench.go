// Package bench is a benchmark harness: measuring host time is its
// whole point, so the file is annotated wholesale.
// //reunion:nondeterm-ok benchmark harness measures host time by design
package bench

import (
	"time"

	"res"
)

func Measure(c *res.Collector) {
	t0 := time.Now()
	c.Emit(time.Since(t0).String())
}
