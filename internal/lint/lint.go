// Package lint registers the repository's invariant analyzers — the
// checks that encode contracts no unit test can hold by itself. See
// cmd/reunion-lint for the CLI and DESIGN.md ("Static analysis") for
// the rationale behind each analyzer.
package lint

import (
	"reunion/internal/lint/analysis"
	"reunion/internal/lint/determinism"
	"reunion/internal/lint/obsgated"
	"reunion/internal/lint/snapshotcomplete"
	"reunion/internal/lint/wireversion"
)

// Analyzers is the full suite, in documentation order.
var Analyzers = []*analysis.Analyzer{
	snapshotcomplete.Analyzer,
	determinism.Analyzer,
	obsgated.Analyzer,
	wireversion.Analyzer,
}
