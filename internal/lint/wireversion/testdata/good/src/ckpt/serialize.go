// Package ckpt is a miniature checkpoint payload: the root struct, a
// descriptor type switch, an annotated derived field, and the pins.
package ckpt

type DecodedCheckpoint struct {
	Version uint16
	Cores   []CoreState
	Events  []EventDesc
}

type EventDesc struct {
	Tag     uint8
	Payload any
}

type CoreState struct {
	Tick uint64
	// scratch is rebuilt after restore. //reunion:derived
	scratch []uint64
}

type EvDecide struct{ Core int }

type EvReply struct{ Addr uint64 }

const ckptFormatVersion uint16 = 3

func decodeEvent(payload any) any {
	switch p := payload.(type) {
	case *EvDecide:
		return p
	case *EvReply:
		return p
	}
	return nil
}

var _ = decodeEvent
var _ = ckptFormatVersion
var _ = CoreState{}.scratch
