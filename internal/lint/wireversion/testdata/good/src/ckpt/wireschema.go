package ckpt

const (
	wireSchemaPinVersion uint16 = 3
	wireSchemaPinDigest         = "87966ecb9791e956"
)

var _ = wireSchemaPinVersion
var _ = wireSchemaPinDigest
