package ckpt

const (
	wireSchemaPinVersion uint16 = 2                  // want `does not match`
	wireSchemaPinDigest         = "0000000000000000" // want `wire schema changed`
)

var _ = wireSchemaPinVersion
var _ = wireSchemaPinDigest
