package ckpt

const (
	wireSchemaPinVersion uint16 = 3
	wireSchemaPinDigest         = "PLACEHOLDER"
)

var _ = wireSchemaPinVersion
var _ = wireSchemaPinDigest
