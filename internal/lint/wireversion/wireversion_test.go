package wireversion_test

import (
	"testing"

	"reunion/internal/lint/analysis"
	"reunion/internal/lint/linttest"
	"reunion/internal/lint/wireversion"
)

// TestGoodTree: correctly pinned payload, annotated derived field — no
// diagnostics.
func TestGoodTree(t *testing.T) {
	linttest.Run(t, "testdata/good", wireversion.Analyzer)
}

// TestBadTree: stale digest pin and a pin version that trails the
// format version — both flagged at the pin site.
func TestBadTree(t *testing.T) {
	linttest.Run(t, "testdata/bad", wireversion.Analyzer)
}

// TestAnnotationsAreLoadBearing: removing a //reunion:derived
// annotation pulls the field into the digest, so the digest moves and
// the pin check fails — the acceptance property that deleting any one
// annotation makes the lint exit nonzero.
func TestAnnotationsAreLoadBearing(t *testing.T) {
	good := digestOf(t, "testdata/good")
	unannot := digestOf(t, "testdata/unannot")
	if good == unannot {
		t.Fatalf("digest unchanged (%s) after deleting a //reunion:derived annotation", good)
	}
}

func digestOf(t *testing.T, root string) string {
	t.Helper()
	prog, err := analysis.LoadTree(root)
	if err != nil {
		t.Fatalf("loading %s: %v", root, err)
	}
	d, ok := wireversion.Digest(prog)
	if !ok {
		t.Fatalf("no payload root in %s", root)
	}
	return d
}
