// Package wireversion makes checkpoint-format drift a build-time
// error. PR 6's incident class — an edit to a serialized type that
// silently changes the payload while ckptFormatVersion stays put — is
// invisible to tests that encode and decode with the same binary, so
// the invariant is enforced structurally:
//
//  1. The analyzer computes a canonical digest of every named type
//     reachable from the checkpoint payload root (DecodedCheckpoint,
//     plus the descriptor types named in serialize.go's decode type
//     switches), traversing only wire-capable packages (those with a
//     snapshot.go, wire.go, or serialize.go).
//  2. The digest is pinned in wireschema.go next to ckptFormatVersion
//     (wireSchemaPinVersion / wireSchemaPinDigest).
//  3. Any change to a reachable type changes the digest and fails the
//     lint until the author either bumps ckptFormatVersion and re-pins
//     (acknowledging the break) or annotates the edited field
//     `//reunion:wire-compat <why>` (asserting the encoding is
//     unchanged — e.g. a rename, or a field the encoder skips).
//
// Fields annotated //reunion:derived or //reunion:shared are excluded
// from the digest — they never hit the wire — which also makes those
// annotations load-bearing: deleting one changes the digest and trips
// this analyzer until the field's snapshot treatment is reconsidered.
package wireversion

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strings"

	"reunion/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "wireversion",
	Doc: "the canonical digest of all types reachable from the checkpoint payload " +
		"must match the wireSchemaPinDigest pinned beside ckptFormatVersion; edits " +
		"require a version bump + re-pin, or a //reunion:wire-compat justification",
	WholeProgram: true,
	Run:          run,
}

// payloadRoot is the type the reachability walk starts from: the pure
// wire-data form of a checkpoint, before it is bound to a System.
const payloadRoot = "DecodedCheckpoint"

// Pin constant names, expected in the package declaring the root.
const (
	pinVersionConst = "wireSchemaPinVersion"
	pinDigestConst  = "wireSchemaPinDigest"
	formatConst     = "ckptFormatVersion"
)

func run(pass *analysis.Pass) error {
	root := findRoot(pass.Prog)
	if root == nil {
		return nil // no checkpoint payload in this tree
	}
	digest, _ := Digest(pass.Prog)

	scope := root.Types.Scope()
	pinDigest, digestPos, ok := lookupString(scope, pinDigestConst)
	if !ok {
		pass.Reportf(scope.Lookup(payloadRoot).Pos(),
			"package %s declares %s but no %s pin: add a wireschema.go pinning the "+
				"payload digest (currently %s) beside %s",
			root.Name, payloadRoot, pinDigestConst, digest, formatConst)
		return nil
	}
	if pinDigest != digest {
		pass.Reportf(digestPos,
			"checkpoint wire schema changed: payload digest is %s but %s pins %s — "+
				"bump %s and re-pin (reunion-lint -wirepin prints the digest), or annotate "+
				"the edited field //reunion:wire-compat if the encoding is truly unchanged",
			digest, pinDigestConst, pinDigest, formatConst)
	}
	pinVersion, pinPos, okPin := lookupInt(scope, pinVersionConst)
	format, _, okFmt := lookupInt(scope, formatConst)
	if okPin && okFmt && pinVersion != format {
		pass.Reportf(pinPos,
			"%s (%d) does not match %s (%d): the digest pin must be refreshed in the "+
				"same change that bumps the format version",
			pinVersionConst, pinVersion, formatConst, format)
	}
	return nil
}

// Digest computes the canonical wire-schema digest for the program and
// reports whether a payload root was found. Exported for the
// reunion-lint -wirepin re-pinning helper and the tests.
func Digest(prog *analysis.Program) (string, bool) {
	root := findRoot(prog)
	if root == nil {
		return "", false
	}

	// Wire-capable packages: only their types are described internally;
	// a reference to a type elsewhere is digested as an opaque name.
	wireCapable := map[*types.Package]bool{}
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			name := filepath.Base(prog.Fset.Position(f.Package).Filename)
			if name == "snapshot.go" || name == "wire.go" || name == "serialize.go" {
				wireCapable[pkg.Types] = true
				break
			}
		}
	}

	// Roots: the payload struct plus every concrete type named in a
	// serialize.go decode type switch (descriptor payloads reached only
	// through interface fields).
	var roots []types.Type
	roots = append(roots, root.Types.Scope().Lookup(payloadRoot).Type())
	for _, f := range root.Files {
		if filepath.Base(prog.Fset.Position(f.Package).Filename) != "serialize.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			cc, ok := n.(*ast.CaseClause)
			if !ok {
				return true
			}
			for _, e := range cc.List {
				if tv, ok := root.Info.Types[e]; ok && tv.IsType() {
					roots = append(roots, tv.Type)
				}
			}
			return true
		})
	}

	entries := map[string]string{} // "path.Name" -> canonical description
	var visit func(t types.Type)
	visit = func(t types.Type) {
		switch u := t.(type) {
		case *types.Pointer:
			visit(u.Elem())
		case *types.Slice:
			visit(u.Elem())
		case *types.Array:
			visit(u.Elem())
		case *types.Map:
			visit(u.Key())
			visit(u.Elem())
		case *types.Chan, *types.Signature, *types.Interface, *types.Basic:
			// Opaque for digest purposes: chans and funcs never hit the
			// wire, interfaces are covered by the type-switch roots.
		case *types.Struct:
			// Unnamed struct: digest its fields in place via the parent's
			// field type string; still traverse for reachability.
			for i := 0; i < u.NumFields(); i++ {
				visit(u.Field(i).Type())
			}
		case *types.Named:
			obj := u.Obj()
			if obj.Pkg() == nil || !wireCapable[obj.Pkg()] {
				return
			}
			key := obj.Pkg().Path() + "." + obj.Name()
			if _, seen := entries[key]; seen {
				return
			}
			entries[key] = "" // reserve before recursing: cycles terminate
			entries[key] = describe(prog, u)
			switch under := u.Underlying().(type) {
			case *types.Struct:
				pkg := prog.PkgOf(obj.Pkg())
				for i := 0; i < under.NumFields(); i++ {
					f := under.Field(i)
					if excluded(prog, pkg, f) {
						continue
					}
					visit(f.Type())
				}
			default:
				visit(under)
			}
		}
	}
	for _, r := range roots {
		visit(r)
	}

	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	h := sha256.New()
	for _, k := range keys {
		fmt.Fprintf(h, "%s\n%s\n", k, entries[k])
	}
	return hex.EncodeToString(h.Sum(nil)[:8]), true
}

// describe renders one named type's wire-relevant shape canonically.
func describe(prog *analysis.Program, n *types.Named) string {
	qual := func(p *types.Package) string { return p.Path() }
	var b strings.Builder
	switch under := n.Underlying().(type) {
	case *types.Struct:
		pkg := prog.PkgOf(n.Obj().Pkg())
		b.WriteString("struct {\n")
		for i := 0; i < under.NumFields(); i++ {
			f := under.Field(i)
			if excluded(prog, pkg, f) {
				continue
			}
			fmt.Fprintf(&b, "\t%s %s\n", f.Name(), types.TypeString(f.Type(), qual))
		}
		b.WriteString("}")
	default:
		fmt.Fprintf(&b, "= %s", types.TypeString(under, qual))
	}
	return b.String()
}

// excluded reports whether a field does not participate in the wire
// digest: blanks, funcs (never serialized), and fields annotated
// derived, shared, or wire-compat.
func excluded(prog *analysis.Program, pkg *analysis.Package, f *types.Var) bool {
	if f.Name() == "_" {
		return true
	}
	if _, isFunc := f.Type().Underlying().(*types.Signature); isFunc {
		return true
	}
	if pkg == nil {
		return false
	}
	return pkg.FieldMarked(f, analysis.MarkDerived) ||
		pkg.FieldMarked(f, analysis.MarkShared) ||
		pkg.FieldMarked(f, analysis.MarkWireCompat)
}

// findRoot locates the package declaring the payload root struct.
func findRoot(prog *analysis.Program) *analysis.Package {
	var found *analysis.Package
	for _, pkg := range prog.Pkgs {
		obj := pkg.Types.Scope().Lookup(payloadRoot)
		if obj == nil {
			continue
		}
		if tn, ok := obj.(*types.TypeName); ok {
			if _, isStruct := tn.Type().Underlying().(*types.Struct); isStruct {
				if found == nil || pkg.Path < found.Path {
					found = pkg
				}
			}
		}
	}
	return found
}

func lookupString(scope *types.Scope, name string) (string, token.Pos, bool) {
	c, ok := scope.Lookup(name).(*types.Const)
	if !ok || c.Val().Kind() != constant.String {
		return "", token.NoPos, false
	}
	return constant.StringVal(c.Val()), c.Pos(), true
}

func lookupInt(scope *types.Scope, name string) (int64, token.Pos, bool) {
	c, ok := scope.Lookup(name).(*types.Const)
	if !ok {
		return 0, token.NoPos, false
	}
	v, ok := constant.Int64Val(constant.ToInt(c.Val()))
	if !ok {
		return 0, c.Pos(), false
	}
	return v, c.Pos(), true
}
