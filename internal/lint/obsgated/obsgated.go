// Package obsgated enforces PR 7's fix as an invariant: observability
// calls (trace ring, metrics, spans) inside tick-path packages must be
// dominated by an Enabled() or nil guard, so a disabled scope costs
// nothing on the hot path — no variadic boxing, no closure allocation,
// no map lookup per tick.
package obsgated

import (
	"go/ast"
	"go/types"

	"reunion/internal/lint/analysis"
)

// tickPackages names the packages whose every function is assumed to be
// on (or one call from) the per-cycle tick path. Matched by package
// name so linttest fixtures can stand in for the real packages.
var tickPackages = map[string]bool{
	"cpu": true, "core": true, "sim": true, "cache": true,
	"tlb": true, "coherence": true, "snoop": true, "mem": true,
	"interconnect": true,
}

// obsPackages names the packages whose methods are observability
// entry points needing a gate.
var obsPackages = map[string]bool{"trace": true, "obs": true}

// exempt are observability methods that are themselves guards or are
// guaranteed allocation-free when disabled.
var exempt = map[string]bool{"Enabled": true, "String": true}

var Analyzer = &analysis.Analyzer{
	Name: "obsgated",
	Doc: "calls to trace/obs helpers in tick-path packages (cpu, core, sim, cache, " +
		"tlb, coherence, snoop, mem, interconnect) must be dominated by an " +
		"Enabled() or nil-scope guard; there is no annotation escape — gate the call",
	Run: run,
}

func run(pass *analysis.Pass) error {
	if !tickPackages[pass.Pkg.Name] {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		analysis.WithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := obsMethod(info, call)
			if fn == nil || exempt[fn.Name()] {
				return true
			}
			if guarded(stack) {
				return true
			}
			recv := "?"
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				recv = types.ExprString(sel.X)
			}
			pass.Reportf(call.Pos(),
				"ungated %s.%s call on the tick path: dominate it with an Enabled() or nil check on %s",
				fn.Pkg().Name(), fn.Name(), recv)
			return true
		})
	}
	return nil
}

// obsMethod returns the called observability method, or nil if the call
// is not one: a method (or method value) whose defining package is an
// obs/trace package.
func obsMethod(info *types.Info, call *ast.CallExpr) *types.Func {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	var obj types.Object
	if s := info.Selections[sel]; s != nil {
		obj = s.Obj()
	} else {
		obj = info.Uses[sel.Sel] // qualified identifier: pkg.Func
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || !obsPackages[fn.Pkg().Name()] {
		return nil
	}
	return fn
}

// guarded reports whether the innermost node of stack is dominated by
// an observability guard: an enclosing if whose condition tests
// Enabled() or non-nilness, an else branch of a nil test, or an earlier
// early-exit statement in an enclosing block of the same function
// (`if !x.Enabled() { return }`, `if x == nil { return }`).
func guarded(stack []ast.Node) bool {
	for i := len(stack) - 2; i >= 0; i-- {
		switch node := stack[i].(type) {
		case *ast.IfStmt:
			child := stack[i+1]
			if child == ast.Node(node.Body) && condHasGuard(node.Cond, false) {
				return true
			}
			if child == node.Else && condHasGuard(node.Cond, true) {
				return true
			}
		case *ast.BlockStmt:
			child := stack[i+1]
			for _, stmt := range node.List {
				if stmt == child {
					break
				}
				if earlyExitGuard(stmt) {
					return true
				}
			}
		case *ast.FuncDecl, *ast.FuncLit:
			// A guard outside the enclosing function does not dominate
			// the function's own body (closures run later).
			return false
		}
	}
	return false
}

// condHasGuard reports whether cond contains a guard of the requested
// polarity: positive — an Enabled() call or an `x != nil` comparison;
// negated — an `x == nil` comparison (whose else branch is then safe).
func condHasGuard(cond ast.Expr, negated bool) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Enabled" && !negated {
				found = true
			}
		case *ast.BinaryExpr:
			if isNilCheck(n, negated) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isNilCheck matches `x != nil` (negated=false) or `x == nil`
// (negated=true).
func isNilCheck(b *ast.BinaryExpr, wantEq bool) bool {
	op := "!="
	if wantEq {
		op = "=="
	}
	if b.Op.String() != op {
		return false
	}
	return isNil(b.X) || isNil(b.Y)
}

func isNil(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// earlyExitGuard matches a preceding `if <!x.Enabled() | x == nil> {
// ... return/continue/break/panic }` statement.
func earlyExitGuard(stmt ast.Stmt) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || len(ifs.Body.List) == 0 {
		return false
	}
	if !terminates(ifs.Body.List[len(ifs.Body.List)-1]) {
		return false
	}
	found := false
	ast.Inspect(ifs.Cond, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op.String() == "!" {
				if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
					if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok &&
						sel.Sel.Name == "Enabled" {
						found = true
					}
				}
			}
		case *ast.BinaryExpr:
			if isNilCheck(n, true) {
				found = true
			}
		}
		return !found
	})
	return found
}

// terminates reports whether stmt unconditionally leaves the block.
func terminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
