// Package util is not a tick-path package: host-side tooling may trace
// unconditionally without a gate.
package util

import "trace"

func Dump(r *trace.Ring) {
	r.Addf(0, 1, "dump")
}
