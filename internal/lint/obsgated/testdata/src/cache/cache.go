// Package cache exercises every guard form obsgated must accept, and
// the bare and closure-hidden calls it must flag.
package cache

import "trace"

type L1 struct {
	tr   *trace.Ring
	tick uint64
}

func (l *L1) lookupGated() {
	if l.tr.Enabled(1) {
		l.tr.Addf(l.tick, 1, "hit %d", l.tick)
	}
}

func (l *L1) lookupBare() {
	l.tr.Addf(l.tick, 1, "hit %d", l.tick) // want `ungated`
}

func (l *L1) lookupNilGuard() {
	if l.tr != nil {
		l.tr.Add(l.tick, 1, "hit")
	}
}

func (l *L1) lookupEarlyNil() {
	if l.tr == nil {
		return
	}
	l.tr.Add(l.tick, 1, "hit")
}

func (l *L1) lookupEarlyDisabled() {
	if !l.tr.Enabled(1) {
		return
	}
	l.tr.Addf(l.tick, 1, "miss %d", l.tick)
}

func (l *L1) lookupElseBranch() {
	if l.tr == nil {
		l.tick++
	} else {
		l.tr.Add(l.tick, 1, "hit")
	}
}

// A guard outside a closure does not dominate the closure body: the
// closure may run after the scope is swapped out.
func (l *L1) lookupClosure() {
	if l.tr.Enabled(1) {
		f := func() {
			l.tr.Add(l.tick, 1, "deferred") // want `ungated`
		}
		f()
	}
}

func (l *L1) enabledItself() bool { return l.tr.Enabled(1) }
