// Package trace is a fixture stand-in for the real trace ring: same
// shape (nil-safe Enabled guard, variadic Addf), none of the content.
package trace

type Category uint32

type Ring struct{ mask Category }

func (r *Ring) Enabled(c Category) bool { return r != nil && r.mask&c != 0 }

func (r *Ring) Addf(tick uint64, c Category, format string, args ...any) {}

func (r *Ring) Add(tick uint64, c Category, msg string) {}
