package obsgated_test

import (
	"testing"

	"reunion/internal/lint/linttest"
	"reunion/internal/lint/obsgated"
)

func TestObsGated(t *testing.T) {
	linttest.Run(t, "testdata", obsgated.Analyzer)
}
