// Package analysis is a self-contained, stdlib-only equivalent of the
// golang.org/x/tools/go/analysis framework, sized for this repository's
// invariant lint suite (cmd/reunion-lint). It loads packages through the
// go command (`go list -deps -json`), type-checks them from source with
// go/types, and runs Analyzer values over the result.
//
// Why not x/tools: the module is deliberately dependency-free (go.mod
// has no requires), and the lint suite must run in the same offline
// environments the simulator does. The subset implemented here — typed
// packages, per-package and whole-program passes, diagnostics, and an
// analysistest-style harness (internal/lint/linttest) — is all four
// analyzers need.
//
// Annotation vocabulary: analyzers honor `//reunion:<marker>` comments
// (see the Mark* constants) placed on the flagged line, the line above
// it, a field's doc or trailing comment, an enclosing function's
// declaration, or the file's package clause. The marker may be followed
// by free text justifying it: `//reunion:derived rebuilt by
// rebuildDerived on restore`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Markers recognized in //reunion:<marker> annotation comments.
const (
	// MarkDerived names snapshot-skipped state that a restore rebuilds
	// from authoritative serialized state (waiter chains, memo lists).
	MarkDerived = "derived"
	// MarkShared names reference fields intentionally shared between a
	// snapshot and the live machine: identity-preserved component wiring
	// or immutable-once-created values.
	MarkShared = "shared"
	// MarkNondetermOK marks host-time-only code (latency telemetry,
	// benchmark harnesses) that a deterministic-output path may contain.
	MarkNondetermOK = "nondeterm-ok"
	// MarkWireCompat justifies a checkpoint-payload type edit as
	// wire-compatible, excluding the field from the wireversion digest.
	MarkWireCompat = "wire-compat"
)

// An Analyzer describes one invariant check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and -run filters.
	Name string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc string
	// WholeProgram analyzers run once per load with Pass.Pkg == nil and
	// walk Pass.Prog themselves (cross-package callgraphs, type-graph
	// digests). Per-package analyzers run once per target package.
	WholeProgram bool
	// Run reports diagnostics through the pass.
	Run func(*Pass) error
}

// A Diagnostic is one finding, with its position already resolved.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Package is one type-checked package under analysis, with syntax.
type Package struct {
	Path  string // import path
	Name  string // package name
	Dir   string // source directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	fset *token.FileSet
	// markers: file name -> line -> markers present on that line.
	markers map[string]map[int][]string
	// fieldAt maps a struct field object's Pos to its declaration.
	fieldAt map[token.Pos]*ast.Field
}

// A Program is one load: the analysis-domain packages (the module's or
// testdata tree's own packages — never the standard library) plus
// which of them are analysis targets.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	// Pkgs holds every analysis-domain package by import path,
	// dependencies included, so whole-program analyzers see the
	// complete callgraph and type graph.
	Pkgs map[string]*Package
	// Targets are the packages named by the load patterns, in load
	// (dependency-first) order. Diagnostics are only wanted here.
	Targets []*Package

	byTypes map[*types.Package]*Package
}

// PkgOf returns the analysis-domain package for a types.Package, or nil
// for standard-library and otherwise unloaded packages.
func (p *Program) PkgOf(tp *types.Package) *Package {
	return p.byTypes[tp]
}

// IsTarget reports whether pkg is one of the load's analysis targets.
func (p *Program) IsTarget(pkg *Package) bool {
	for _, t := range p.Targets {
		if t == pkg {
			return true
		}
	}
	return false
}

// A Pass carries one analyzer invocation's inputs and its report sink.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package // nil for WholeProgram analyzers
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Prog.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run executes the analyzers over the program and returns all
// diagnostics sorted by position. Per-package analyzers visit every
// target; whole-program analyzers run once.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.WholeProgram {
			pass := &Pass{Analyzer: a, Prog: prog, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Targets {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// finish indexes a freshly type-checked package: annotation markers by
// line and struct fields by position.
func (p *Package) finish(fset *token.FileSet) {
	p.fset = fset
	p.markers = make(map[string]map[int][]string)
	p.fieldAt = make(map[token.Pos]*ast.Field)
	for _, f := range p.Files {
		name := fset.Position(f.Package).Filename
		lines := make(map[int][]string)
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range markersIn(c.Text) {
					line := fset.Position(c.Pos()).Line
					lines[line] = append(lines[line], m)
				}
			}
		}
		p.markers[name] = lines
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if len(field.Names) == 0 {
					// Embedded: the field object's Pos is the type's.
					p.fieldAt[embeddedPos(field.Type)] = field
					continue
				}
				for _, id := range field.Names {
					p.fieldAt[id.Pos()] = field
				}
			}
			return true
		})
	}
}

// embeddedPos returns the position go/types assigns an embedded field:
// the position of its (possibly qualified, possibly dereferenced) name.
func embeddedPos(t ast.Expr) token.Pos {
	switch t := t.(type) {
	case *ast.StarExpr:
		return embeddedPos(t.X)
	case *ast.SelectorExpr:
		return t.Sel.Pos()
	case *ast.IndexExpr: // generic instantiation
		return embeddedPos(t.X)
	}
	return t.Pos()
}

// markersIn extracts reunion annotation markers from one comment's text.
func markersIn(text string) []string {
	var out []string
	rest := text
	for {
		i := strings.Index(rest, "//reunion:")
		if i < 0 {
			return out
		}
		rest = rest[i+len("//reunion:"):]
		end := strings.IndexFunc(rest, func(r rune) bool {
			return r == ' ' || r == '\t' || r == '\n'
		})
		if end < 0 {
			end = len(rest)
		}
		if m := rest[:end]; m != "" {
			out = append(out, m)
		}
	}
}

// MarkedAt reports whether a //reunion:<marker> annotation covers pos:
// on the same line or on the line immediately above it.
func (p *Package) MarkedAt(pos token.Pos, marker string) bool {
	position := p.fset.Position(pos)
	lines := p.markers[position.Filename]
	for _, m := range lines[position.Line] {
		if m == marker {
			return true
		}
	}
	for _, m := range lines[position.Line-1] {
		if m == marker {
			return true
		}
	}
	return false
}

// FuncMarked reports whether the function declaration carries the
// marker: in its doc comment or on/above its declaration line.
func (p *Package) FuncMarked(fd *ast.FuncDecl, marker string) bool {
	if fd == nil {
		return false
	}
	if commentHasMarker(fd.Doc, marker) {
		return true
	}
	return p.MarkedAt(fd.Pos(), marker)
}

// FileMarked reports whether the file carries the marker at file scope:
// in any comment on or above the package clause.
func (p *Package) FileMarked(f *ast.File, marker string) bool {
	position := p.fset.Position(f.Name.Pos())
	for line, ms := range p.markers[position.Filename] {
		if line > position.Line {
			continue
		}
		for _, m := range ms {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// FieldMarked reports whether a struct field's declaration carries the
// marker, via its doc comment, trailing line comment, or a marker
// line directly above it.
func (p *Package) FieldMarked(fv *types.Var, marker string) bool {
	if f := p.fieldAt[fv.Pos()]; f != nil {
		if commentHasMarker(f.Doc, marker) || commentHasMarker(f.Comment, marker) {
			return true
		}
	}
	return p.MarkedAt(fv.Pos(), marker)
}

func commentHasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		for _, m := range markersIn(c.Text) {
			if m == marker {
				return true
			}
		}
	}
	return false
}

// FileOf returns the syntax file containing pos, or nil.
func (p *Package) FileOf(pos token.Pos) *ast.File {
	for _, f := range p.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			return f
		}
	}
	return nil
}

// Basename returns the last element of the package path — the name the
// analyzers use to recognize role packages (trace, obs, sweep, dist) so
// the linttest trees can stand in for the real ones.
func Basename(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// WithStack walks the file like ast.Inspect but hands fn the stack of
// enclosing nodes, outermost first; the visited node is stack's last
// element. Returning false prunes the subtree.
func WithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if !fn(n, stack) {
			stack = stack[:len(stack)-1] // Inspect will not send the pop
			return false
		}
		return true
	})
}
