package analysis

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// go vet -vettool support. The go command invokes the tool once per
// package with a JSON config file (see cmd/go/internal/work.vetConfig):
// source files plus gc export data for every import, already built. A
// Unit is that invocation, loaded into the same Program shape the
// standalone path produces — except dependencies are export data only
// (no syntax, no bodies), so only per-package analyzers can run here.
// The whole-program analyzers (determinism, wireversion) need the
// standalone `reunion-lint ./...` entry point.

// vetConfig mirrors the fields of the go command's vet config that the
// loader consumes.
type vetConfig struct {
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// A Unit is one vettool invocation. Prog is nil when type-checking
// failed and the config says to succeed anyway (the go command sets
// SucceedOnTypecheckFailure when the compiler will report the errors
// itself).
type Unit struct {
	Prog       *Program
	VetxOnly   bool
	VetxOutput string
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// LoadUnit parses a vet config and type-checks its package against the
// export data of its dependencies.
func LoadUnit(cfgPath string) (*Unit, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, fmt.Errorf("reading vet config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing vet config %s: %v", cfgPath, err)
	}
	u := &Unit{VetxOnly: cfg.VetxOnly, VetxOutput: cfg.VetxOutput}
	if cfg.VetxOnly {
		// Facts-only request; this suite computes no facts.
		return u, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return u, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	gc := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		path, ok := cfg.ImportMap[importPath]
		if !ok {
			path = importPath
		}
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		return gc.Import(path)
	})

	var tcErr error
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			if tcErr == nil {
				tcErr = err
			}
		},
	}
	info := newInfo()
	typed, _ := conf.Check(cfg.ImportPath, fset, files, info)
	if tcErr != nil {
		if cfg.SucceedOnTypecheckFailure {
			return u, nil
		}
		return nil, fmt.Errorf("%s: %v", cfg.ImportPath, tcErr)
	}

	pkg := &Package{
		Path: cfg.ImportPath, Name: typed.Name(), Dir: cfg.Dir,
		Files: files, Types: typed, Info: info,
	}
	pkg.finish(fset)
	u.Prog = &Program{
		Fset:    fset,
		Pkgs:    map[string]*Package{pkg.Path: pkg},
		Targets: []*Package{pkg},
		byTypes: map[*types.Package]*Package{typed: pkg},
	}
	return u, nil
}
