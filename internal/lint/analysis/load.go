package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package loading. Two entry points share one machinery:
//
//   - LoadModule: the production path. `go list -e -deps -json` under a
//     module directory enumerates the packages and their complete
//     dependency closure in dependency-first order; everything is
//     type-checked from source (CGO_ENABLED=0, so the pure-Go variants
//     of net, os/user, etc. are selected and no cgo-generated code is
//     needed). Standard-library packages are checked once per process
//     with IgnoreFuncBodies and cached — only their exported API matters.
//
//   - LoadTree: the analysistest path. A GOPATH-style testdata tree
//     (root/src/<importpath>/*.go) is discovered by walking, topo-sorted
//     by its internal imports, and type-checked against the same shared
//     standard-library cache, so analyzer test fixtures can stand in
//     for real packages without a go.mod.

// sharedFset is the process-wide FileSet: the standard-library cache is
// shared across loads, so every Program must resolve positions through
// one FileSet.
var sharedFset = token.NewFileSet()

var loadMu sync.Mutex // guards stdCache and sharedFset growth

// stdCache holds type-checked standard-library packages by ImportPath
// (GOROOT-vendored packages under their "vendor/"-prefixed path).
var stdCache = map[string]*types.Package{"unsafe": types.Unsafe}

// listedPkg is the subset of `go list -json` output the loader reads.
type listedPkg struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// goList runs the go command's lister in dir.
func goList(dir string, args ...string) ([]*listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list", "-e",
		"-json=ImportPath,Dir,Name,GoFiles,Imports,Standard,DepOnly,Module,Error"}, args...)...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0", "GOPROXY=off", "GOWORK=off", "GOFLAGS=")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []*listedPkg
	for dec.More() {
		p := new(listedPkg)
		if err := dec.Decode(p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// cacheImporter resolves imports from the standard-library cache plus an
// optional load-local package map, handling GOROOT vendoring.
type cacheImporter struct {
	local map[string]*types.Package
}

func (ci cacheImporter) Import(path string) (*types.Package, error) {
	if p, ok := ci.local[path]; ok {
		return p, nil
	}
	if p, ok := stdCache[path]; ok {
		return p, nil
	}
	if p, ok := stdCache["vendor/"+path]; ok {
		return p, nil
	}
	return nil, fmt.Errorf("package %q has not been loaded", path)
}

// parseFiles parses the named files in dir.
func parseFiles(dir string, names []string, mode parser.Mode) ([]*ast.File, error) {
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(sharedFset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// checkStd type-checks one standard-library package into the cache.
// Callers present packages in dependency-first order.
func checkStd(lp *listedPkg) error {
	if _, ok := stdCache[lp.ImportPath]; ok {
		return nil
	}
	if lp.Error != nil {
		return fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
	}
	files, err := parseFiles(lp.Dir, lp.GoFiles, parser.SkipObjectResolution)
	if err != nil {
		return err
	}
	conf := types.Config{
		Importer:         cacheImporter{},
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // API surface is all that matters
	}
	tp, err := conf.Check(lp.ImportPath, sharedFset, files, nil)
	if tp == nil {
		return fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
	}
	stdCache[lp.ImportPath] = tp
	return nil
}

// newInfo allocates the full types.Info the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
}

// LoadModule loads the module rooted at dir: every package matching the
// patterns plus the full dependency closure, type-checked from source.
// The returned Program's Pkgs are the module's own packages; Targets are
// the pattern matches.
func LoadModule(dir string, patterns ...string) (*Program, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, append([]string{"-deps", "--"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    sharedFset,
		Pkgs:    map[string]*Package{},
		byTypes: map[*types.Package]*Package{},
	}
	local := map[string]*types.Package{}
	var loadErrs []string
	for _, lp := range listed {
		if lp.ImportPath == "unsafe" {
			continue
		}
		if lp.Standard {
			if err := checkStd(lp); err != nil {
				loadErrs = append(loadErrs, err.Error())
			}
			continue
		}
		if lp.Error != nil {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, lp.Error.Err))
			continue
		}
		if prog.ModulePath == "" && lp.Module != nil {
			prog.ModulePath = lp.Module.Path
		}
		files, err := parseFiles(lp.Dir, lp.GoFiles, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			loadErrs = append(loadErrs, err.Error())
			continue
		}
		var tcErrs []string
		conf := types.Config{
			Importer: cacheImporter{local: local},
			Error:    func(err error) { tcErrs = append(tcErrs, err.Error()) },
		}
		info := newInfo()
		tp, _ := conf.Check(lp.ImportPath, sharedFset, files, info)
		if len(tcErrs) > 0 {
			loadErrs = append(loadErrs, fmt.Sprintf("%s: %s", lp.ImportPath, strings.Join(tcErrs, "; ")))
			continue
		}
		local[lp.ImportPath] = tp
		pkg := &Package{
			Path: lp.ImportPath, Name: lp.Name, Dir: lp.Dir,
			Files: files, Types: tp, Info: info,
		}
		pkg.finish(sharedFset)
		prog.Pkgs[lp.ImportPath] = pkg
		prog.byTypes[tp] = pkg
		if !lp.DepOnly {
			prog.Targets = append(prog.Targets, pkg)
		}
	}
	if len(loadErrs) > 0 {
		return nil, fmt.Errorf("load: %s", strings.Join(loadErrs, "\n"))
	}
	return prog, nil
}

// LoadTree loads a GOPATH-style source tree: root/src/<importpath>/*.go.
// Patterns are import paths within the tree ("snap", "det/..."); with
// none given, every package in the tree is a target.
func LoadTree(root string, patterns ...string) (*Program, error) {
	loadMu.Lock()
	defer loadMu.Unlock()

	src := filepath.Join(root, "src")
	byDir := map[string][]string{} // import path -> go files
	err := filepath.WalkDir(src, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		rel, err := filepath.Rel(src, filepath.Dir(path))
		if err != nil {
			return err
		}
		ip := filepath.ToSlash(rel)
		byDir[ip] = append(byDir[ip], d.Name())
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("walking %s: %v", src, err)
	}
	if len(byDir) == 0 {
		return nil, fmt.Errorf("no packages under %s", src)
	}

	type treePkg struct {
		path    string
		dir     string
		files   []*ast.File
		imports []string
	}
	parsed := map[string]*treePkg{}
	var external []string
	seenExt := map[string]bool{}
	for ip, names := range byDir {
		sort.Strings(names)
		dir := filepath.Join(src, filepath.FromSlash(ip))
		files, err := parseFiles(dir, names, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		tp := &treePkg{path: ip, dir: dir, files: files}
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				tp.imports = append(tp.imports, p)
				if _, inTree := byDir[p]; !inTree && !seenExt[p] {
					seenExt[p] = true
					external = append(external, p)
				}
			}
		}
		parsed[ip] = tp
	}

	// Resolve external (standard-library) imports through the shared
	// cache, fetching any missing closure in one go list call.
	var missing []string
	for _, p := range external {
		if _, ok := stdCache[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		listed, err := goList("", append([]string{"-deps", "--"}, missing...)...)
		if err != nil {
			return nil, err
		}
		for _, lp := range listed {
			if lp.ImportPath == "unsafe" {
				continue
			}
			if !lp.Standard {
				return nil, fmt.Errorf("tree %s imports non-standard package %s", root, lp.ImportPath)
			}
			if err := checkStd(lp); err != nil {
				return nil, err
			}
		}
	}

	// Topological order over tree-internal imports.
	var order []string
	state := map[string]int{} // 0 unvisited, 1 visiting, 2 done
	var visit func(string) error
	visit = func(ip string) error {
		switch state[ip] {
		case 1:
			return fmt.Errorf("import cycle through %s", ip)
		case 2:
			return nil
		}
		state[ip] = 1
		for _, dep := range parsed[ip].imports {
			if _, inTree := parsed[dep]; inTree {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[ip] = 2
		order = append(order, ip)
		return nil
	}
	var roots []string
	for ip := range parsed {
		roots = append(roots, ip)
	}
	sort.Strings(roots)
	for _, ip := range roots {
		if err := visit(ip); err != nil {
			return nil, err
		}
	}

	prog := &Program{
		Fset:    sharedFset,
		Pkgs:    map[string]*Package{},
		byTypes: map[*types.Package]*Package{},
	}
	local := map[string]*types.Package{}
	for _, ip := range order {
		tp := parsed[ip]
		var tcErrs []string
		conf := types.Config{
			Importer: cacheImporter{local: local},
			Error:    func(err error) { tcErrs = append(tcErrs, err.Error()) },
		}
		info := newInfo()
		typed, _ := conf.Check(ip, sharedFset, tp.files, info)
		if len(tcErrs) > 0 {
			return nil, fmt.Errorf("%s: %s", ip, strings.Join(tcErrs, "; "))
		}
		local[ip] = typed
		pkg := &Package{
			Path: ip, Name: typed.Name(), Dir: tp.dir,
			Files: tp.files, Types: typed, Info: info,
		}
		pkg.finish(sharedFset)
		prog.Pkgs[ip] = pkg
		prog.byTypes[typed] = pkg
	}

	match := func(ip string) bool {
		if len(patterns) == 0 {
			return true
		}
		for _, pat := range patterns {
			if pat == ip || pat == "./..." {
				return true
			}
			if prefix, ok := strings.CutSuffix(pat, "/..."); ok &&
				(ip == prefix || strings.HasPrefix(ip, prefix+"/")) {
				return true
			}
		}
		return false
	}
	for _, ip := range order {
		if match(ip) {
			prog.Targets = append(prog.Targets, prog.Pkgs[ip])
		}
	}
	if len(prog.Targets) == 0 {
		return nil, fmt.Errorf("no packages in %s match %v", root, patterns)
	}
	return prog, nil
}
