package coord

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"reunion/internal/dist"
)

// fakeClock is a hand-cranked wall clock for exercising lease expiry
// without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Unix(1_000_000, 0)}
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

// line is the deterministic record carried by index i — the stand-in
// for a simulation record, shaped like one (a JSONL line with an index
// field) so the journal verifier accepts it.
func line(i int) []byte {
	return []byte(fmt.Sprintf(`{"index":%d,"v":"r%d"}`+"\n", i, i))
}

// slice returns the concatenated record lines of [lo, hi).
func slice(lo, hi int) []byte {
	var b bytes.Buffer
	for i := lo; i < hi; i++ {
		b.Write(line(i))
	}
	return b.Bytes()
}

const (
	testSpec = "coord-test"
	testFP   = uint64(0xfeed)
)

func newTestCoord(t *testing.T, clk *fakeClock, mutate func(*Config)) (*Coordinator, string) {
	t.Helper()
	dir := t.TempDir()
	cfg := Config{
		RangeSize: 4,
		LeaseTTL:  10 * time.Second,
		Dir:       filepath.Join(dir, "state"),
		Out:       filepath.Join(dir, "merged.jsonl"),
		Manifest:  filepath.Join(dir, "manifest.json"),
		Logf:      t.Logf,
	}
	if clk != nil {
		cfg.Now = clk.Now
	}
	if mutate != nil {
		mutate(&cfg)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, dir
}

func mustLease(t *testing.T, c *Coordinator, worker string) *Lease {
	t.Helper()
	res := c.Lease(worker)
	if res.Lease == nil {
		t.Fatalf("no lease for %s: %+v", worker, res)
	}
	return res.Lease
}

// The happy path: grant → complete for every range, terminal success,
// merged output byte-identical to the single-process stream.
func TestGrantCompleteSuccess(t *testing.T) {
	clk := newFakeClock()
	c, dir := newTestCoord(t, clk, nil)
	if err := c.Register("w1", testSpec, 10, testFP); err != nil {
		t.Fatal(err)
	}
	for {
		res := c.Lease("w1")
		if res.Outcome != "" {
			if res.Outcome != OutcomeSuccess {
				t.Fatalf("outcome = %q", res.Outcome)
			}
			break
		}
		l := res.Lease
		if l == nil {
			t.Fatalf("unexpected wait: %+v", res)
		}
		if err := c.Complete("w1", l.ID, slice(l.Lo, l.Hi)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("Done not closed at terminal outcome")
	}
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, slice(0, 10)) {
		t.Fatalf("merged stream:\n%s\nwant:\n%s", got, slice(0, 10))
	}
	outcome, m, ferr := c.Outcome()
	if outcome != OutcomeSuccess || ferr != nil || m == nil || !m.Success() || m.Records != 10 {
		t.Fatalf("Outcome() = %q, %+v, %v", outcome, m, ferr)
	}
}

// Leases are granted lowest-range-first, and a second worker is told to
// wait while everything is leased out.
func TestLeaseOrderAndWait(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoord(t, clk, nil)
	if err := c.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	l1 := mustLease(t, c, "w1")
	l2 := mustLease(t, c, "w2")
	if l1.Lo != 0 || l1.Hi != 4 || l2.Lo != 4 || l2.Hi != 8 {
		t.Fatalf("grants: [%d,%d) then [%d,%d)", l1.Lo, l1.Hi, l2.Lo, l2.Hi)
	}
	res := c.Lease("w3")
	if res.Lease != nil || res.Outcome != "" || res.Wait <= 0 {
		t.Fatalf("third lease was not a wait: %+v", res)
	}
}

// A heartbeat keeps a lease alive past its original TTL; silence lets
// it expire, and the range is re-leased to whoever asks next.
func TestHeartbeatExpiryRelease(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoord(t, clk, nil)
	if err := c.Register("w1", testSpec, 4, testFP); err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")

	clk.Advance(8 * time.Second)
	if err := c.Heartbeat("w1", l.ID); err != nil {
		t.Fatal(err)
	}
	clk.Advance(8 * time.Second) // 16s total: dead without renewal
	if res := c.Lease("w2"); res.Lease != nil {
		t.Fatalf("renewed lease was reclaimed: %+v", res.Lease)
	}

	clk.Advance(11 * time.Second) // now past the renewed expiry
	l2 := mustLease(t, c, "w2")
	if l2.Lo != l.Lo || l2.Hi != l.Hi || l2.ID == l.ID {
		t.Fatalf("re-lease: %+v vs %+v", l2, l)
	}
	// The dead worker's late result must be refused — w2 owns the range.
	if err := c.Heartbeat("w1", l.ID); err != ErrLeaseLost {
		t.Fatalf("stale heartbeat: %v", err)
	}
	if err := c.Complete("w1", l.ID, slice(0, 4)); err != ErrLeaseLost {
		t.Fatalf("stale complete: %v", err)
	}
	// The live lease still works.
	if err := c.Complete("w2", l2.ID, slice(0, 4)); err != nil {
		t.Fatal(err)
	}
}

// Exhausting the timeout budget fails the range; with nothing
// completed the run's terminal outcome is failed, with a manifest
// accounting for every index.
func TestTimeoutBudgetExhausted(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoord(t, clk, nil)
	if err := c.Register("w1", testSpec, 4, testFP); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if l := mustLease(t, c, "w1"); l.Lo != 0 {
			t.Fatalf("round %d: lease %+v", i, l)
		}
		clk.Advance(11 * time.Second)
	}
	res := c.Lease("w1")
	if res.Outcome != OutcomeFailed {
		t.Fatalf("after 3 expiries: %+v", res)
	}
	outcome, m, _ := c.Outcome()
	if outcome != OutcomeFailed || m == nil {
		t.Fatalf("Outcome() = %q, %+v", outcome, m)
	}
	if len(m.Missing) != 1 || m.Missing[0] != (dist.IndexRange{Lo: 0, Hi: 4}) {
		t.Fatalf("manifest missing = %+v", m.Missing)
	}
	if len(m.Failed) != 1 {
		t.Fatalf("manifest failed = %+v", m.Failed)
	}
}

// A bad payload charges the failure budget (not the timeout budget) and
// the range is retried until that budget is spent; with one good range
// done the terminal outcome is partial, and the merged file holds
// exactly the verified slice.
func TestFailureBudgetAndPartialOutcome(t *testing.T) {
	clk := newFakeClock()
	c, dir := newTestCoord(t, clk, nil)
	if err := c.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1") // [0,4)
	if err := c.Complete("w1", l.ID, slice(0, 4)); err != nil {
		t.Fatal(err)
	}

	// Garbage payload: wrong indices for the range.
	l = mustLease(t, c, "w1") // [4,8)
	if err := c.Complete("w1", l.ID, slice(0, 4)); err == nil {
		t.Fatal("mis-indexed payload accepted")
	}
	// First failure re-queues; the second (default FailBudget 2) fails
	// the range for good.
	l = mustLease(t, c, "w1")
	if l.Lo != 4 {
		t.Fatalf("range not re-queued after one failure: %+v", l)
	}
	if err := c.Fail("w1", l.ID, "simulated crash"); err != nil {
		t.Fatal(err)
	}

	res := c.Lease("w1")
	if res.Outcome != OutcomePartial {
		t.Fatalf("outcome: %+v", res)
	}
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, slice(0, 4)) {
		t.Fatalf("partial merge:\n%s\nwant:\n%s", got, slice(0, 4))
	}
	_, m, _ := c.Outcome()
	if m == nil || len(m.Missing) != 1 || m.Missing[0] != (dist.IndexRange{Lo: 4, Hi: 8}) {
		t.Fatalf("manifest: %+v", m)
	}
	if len(m.Failed) != 1 || m.Failed[0].Err != "simulated crash" {
		t.Fatalf("manifest failed entries: %+v", m.Failed)
	}
	// The manifest landed on disk too.
	if _, err := os.Stat(filepath.Join(dir, "manifest.json")); err != nil {
		t.Fatal(err)
	}
}

// A worker offering different flags (fingerprint) than the adopted run
// must be turned away, same as a journal from a different run.
func TestRegisterMismatch(t *testing.T) {
	c, _ := newTestCoord(t, newFakeClock(), nil)
	if err := c.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	if err := c.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatalf("re-register of the same run: %v", err)
	}
	if err := c.Register("w2", testSpec, 8, 0xbad); err == nil {
		t.Fatal("fingerprint mismatch accepted")
	}
	if err := c.Register("w2", testSpec, 12, testFP); err == nil {
		t.Fatal("total mismatch accepted")
	}
}

// A restarted coordinator adopts the sealed range journals of its
// predecessor: already-completed work is credited, not re-run.
func TestRestartAdoptsSealedRanges(t *testing.T) {
	clk := newFakeClock()
	c1, dir := newTestCoord(t, clk, nil)
	if err := c1.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c1, "w1")
	if err := c1.Complete("w1", l.ID, slice(0, 4)); err != nil {
		t.Fatal(err)
	}

	// "Restart": a fresh coordinator over the same state dir.
	cfg := Config{
		RangeSize: 4, LeaseTTL: 10 * time.Second, Now: clk.Now, Logf: t.Logf,
		Dir: filepath.Join(dir, "state"),
		Out: filepath.Join(dir, "merged.jsonl"),
	}
	c2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.Register("w2", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	l2 := mustLease(t, c2, "w2")
	if l2.Lo != 4 {
		t.Fatalf("adopted run re-leased a sealed range: %+v", l2)
	}
	if err := c2.Complete("w2", l2.ID, slice(4, 8)); err != nil {
		t.Fatal(err)
	}
	if res := c2.Lease("w2"); res.Outcome != OutcomeSuccess {
		t.Fatalf("outcome: %+v", res)
	}
	got, err := os.ReadFile(cfg.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, slice(0, 8)) {
		t.Fatal("restarted run's merge is not the single-process stream")
	}
}

// The stall watchdog forces a terminal outcome when every worker is
// gone and no lease is left to expire.
func TestStallWatchdog(t *testing.T) {
	clk := newFakeClock()
	c, _ := newTestCoord(t, clk, func(cfg *Config) {
		cfg.StallTimeout = 30 * time.Second
	})
	if err := c.Register("w1", testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	l := mustLease(t, c, "w1")
	if err := c.Complete("w1", l.ID, slice(0, 4)); err != nil {
		t.Fatal(err)
	}
	// Nobody ever leases [4,8). Crank the clock past the stall window
	// and let the watchdog body run once (driven directly, not via the
	// ticker, to keep the test clock-deterministic).
	clk.Advance(31 * time.Second)
	c.mu.Lock()
	c.expireStale(c.clock())
	if c.clock().Sub(c.lastAct) >= c.cfg.StallTimeout {
		c.stallOut()
	}
	c.maybeFinalize()
	c.mu.Unlock()

	outcome, m, _ := c.Outcome()
	if outcome != OutcomePartial {
		t.Fatalf("stalled outcome = %q", outcome)
	}
	if len(m.Missing) != 1 || m.Missing[0] != (dist.IndexRange{Lo: 4, Hi: 8}) {
		t.Fatalf("stalled manifest: %+v", m)
	}
}

// Concurrent workers hammering the state machine stay consistent: every
// range is completed exactly once and the merge is byte-identical.
// (Run under -race in CI.)
func TestConcurrentWorkersRace(t *testing.T) {
	c, dir := newTestCoord(t, nil, func(cfg *Config) {
		cfg.RangeSize = 2
		cfg.LeaseTTL = time.Minute
	})
	const total = 40
	if err := c.Register("w0", testSpec, total, testFP); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			worker := fmt.Sprintf("w%d", id)
			for {
				res := c.Lease(worker)
				if res.Outcome != "" {
					return
				}
				if res.Lease == nil {
					time.Sleep(time.Millisecond)
					continue
				}
				if err := c.Complete(worker, res.Lease.ID, slice(res.Lease.Lo, res.Lease.Hi)); err != nil {
					t.Errorf("%s: %v", worker, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	outcome, _, ferr := c.Outcome()
	if outcome != OutcomeSuccess || ferr != nil {
		t.Fatalf("outcome = %q, %v", outcome, ferr)
	}
	got, err := os.ReadFile(filepath.Join(dir, "merged.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, slice(0, total)) {
		t.Fatal("concurrent run's merge is not the single-process stream")
	}
}
