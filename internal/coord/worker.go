package coord

import (
	"context"
	"errors"
	"fmt"
	"time"

	"reunion/internal/obs"
)

// RunRange produces the record lines of index range [lo, hi) of the
// run — exactly the bytes the single-process stream carries for those
// indices, one newline-terminated JSONL record per index, in order.
// The simulation itself is deterministic, so the same range always
// yields the same bytes no matter which worker runs it.
type RunRange func(ctx context.Context, lo, hi int) ([]byte, error)

// Worker is the lease-pulling loop around a Produce function. It registers the
// run with the coordinator, then leases ranges until the run is
// terminal: each lease gets a heartbeat goroutine renewing at TTL/3,
// the produced lines are uploaded with Complete, and the coordinator's
// verdicts steer the loop — a lost lease (410) is discarded silently
// because the range belongs to someone else now, a rejected payload
// (422) moves on because the coordinator already charged the budget,
// and a local run error is reported with Fail.
type Worker struct {
	Client  *Client
	Produce RunRange
	Obs     obs.Scope
	Logf    func(format string, args ...any)
}

// Run drives the worker until the coordinated run reaches a terminal
// outcome (returned), ctx is cancelled, or the coordinator becomes
// unreachable for good.
func (w *Worker) Run(ctx context.Context, spec string, total int, fingerprint uint64) (string, error) {
	logf := w.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	var mLeases, mDone, mLost, mFailed *obs.Counter
	if m := w.Obs.Metrics; m != nil {
		mLeases = m.Counter("worker_leases_total", "Leases accepted from the coordinator.")
		mDone = m.Counter("worker_ranges_completed_total", "Ranges completed and accepted.")
		mLost = m.Counter("worker_leases_lost_total", "Leases lost to expiry before the result was accepted.")
		mFailed = m.Counter("worker_ranges_failed_total", "Ranges this worker failed to produce or upload.")
	}

	// The coordinator may not be up yet, or may be briefly unreachable;
	// registration retries with backoff before giving up.
	if err := w.retry(ctx, "register", func() error {
		return w.Client.Register(spec, total, fingerprint)
	}); err != nil {
		return "", err
	}

	for {
		if err := ctx.Err(); err != nil {
			return "", err
		}
		var res LeaseResult
		if err := w.retry(ctx, "lease", func() (lerr error) {
			res, lerr = w.Client.Lease()
			return lerr
		}); err != nil {
			return "", err
		}
		switch {
		case res.Outcome != "":
			return res.Outcome, nil
		case res.Lease == nil:
			select {
			case <-ctx.Done():
				return "", ctx.Err()
			case <-time.After(res.Wait):
			}
			continue
		}

		lease := res.Lease
		mLeases.Inc()
		logf("worker %s: leased [%d,%d)", w.Client.Worker, lease.Lo, lease.Hi)

		// The heartbeat goroutine renews the lease while the range runs;
		// if a renewal comes back ErrLeaseLost the coordinator has given
		// the range away, so the run is cancelled — its result would be
		// discarded anyway.
		runCtx, cancelRun := context.WithCancel(ctx)
		lost := make(chan struct{})
		hbDone := make(chan struct{})
		go func() {
			defer close(hbDone)
			interval := lease.TTL / 3
			if interval <= 0 {
				interval = time.Second
			}
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-runCtx.Done():
					return
				case <-t.C:
					if err := w.Client.Heartbeat(lease.ID); errors.Is(err, ErrLeaseLost) {
						close(lost)
						cancelRun()
						return
					}
					// Transient heartbeat errors are ignored: the lease
					// survives until its TTL, and the next tick retries.
				}
			}
		}()

		sp := w.Obs.Trace.StartSpan("worker", "run_range",
			obs.Arg{Key: "lo", Val: lease.Lo}, obs.Arg{Key: "hi", Val: lease.Hi})
		body, runErr := w.Produce(runCtx, lease.Lo, lease.Hi)
		sp.End(obs.Arg{Key: "err", Val: runErr != nil})
		cancelRun()
		<-hbDone

		select {
		case <-lost:
			mLost.Inc()
			logf("worker %s: lease on [%d,%d) lost mid-run — discarding", w.Client.Worker, lease.Lo, lease.Hi)
			continue
		default:
		}
		if ctx.Err() != nil {
			return "", ctx.Err()
		}

		if runErr != nil {
			mFailed.Inc()
			logf("worker %s: range [%d,%d) failed: %v", w.Client.Worker, lease.Lo, lease.Hi, runErr)
			if err := w.Client.Fail(lease.ID, runErr.Error()); err != nil && !errors.Is(err, ErrLeaseLost) {
				logf("worker %s: fail report: %v", w.Client.Worker, err)
			}
			continue
		}

		err := w.retry(ctx, "complete", func() error {
			cerr := w.Client.Complete(lease.ID, body)
			if errors.Is(cerr, ErrLeaseLost) || errors.Is(cerr, ErrBadPayload) {
				// Terminal verdicts must not be retried.
				return &noRetry{cerr}
			}
			return cerr
		})
		switch {
		case err == nil:
			mDone.Inc()
			logf("worker %s: range [%d,%d) accepted", w.Client.Worker, lease.Lo, lease.Hi)
		case errors.Is(err, ErrLeaseLost):
			mLost.Inc()
			logf("worker %s: lease on [%d,%d) lost at upload — discarding", w.Client.Worker, lease.Lo, lease.Hi)
		case errors.Is(err, ErrBadPayload):
			mFailed.Inc()
			logf("worker %s: range [%d,%d) rejected: %v", w.Client.Worker, lease.Lo, lease.Hi, err)
		default:
			return "", fmt.Errorf("coord: uploading range [%d,%d): %w", lease.Lo, lease.Hi, err)
		}
	}
}

// retry runs op with exponential backoff until it succeeds, returns a
// noRetry verdict, ctx ends, or ~30s of attempts are spent — a worker
// that cannot reach its coordinator for that long is better off dead
// (the lease machinery was built for exactly that).
func (w *Worker) retry(ctx context.Context, what string, op func() error) error {
	delay := 100 * time.Millisecond
	var err error
	for attempt := 0; attempt < 9; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if nr, ok := err.(*noRetry); ok {
			return nr
		}
		if w.Logf != nil {
			w.Logf("worker %s: %s: %v (retrying in %s)", w.Client.Worker, what, err, delay)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
		if delay *= 2; delay > 5*time.Second {
			delay = 5 * time.Second
		}
	}
	return fmt.Errorf("coord: %s: giving up: %w", what, err)
}

// noRetry wraps an error the retry loop must surface immediately.
type noRetry struct{ err error }

func (n *noRetry) Error() string { return n.err.Error() }
func (n *noRetry) Unwrap() error { return n.err }
