package coord

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// End-to-end over real HTTP: a coordinator behind httptest, two honest
// Workers pulling leases concurrently, and one saboteur that leases a
// range and vanishes without heartbeating — the coordinated run must
// still terminate successfully with output byte-identical to the
// single-process stream.
func TestHTTPEndToEndWithAbandoningWorker(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "merged.jsonl")
	c, err := New(Config{
		RangeSize: 3,
		LeaseTTL:  300 * time.Millisecond,
		Dir:       filepath.Join(dir, "state"),
		Out:       out,
		Manifest:  filepath.Join(dir, "manifest.json"),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go c.Watch(ctx)

	const total = 20

	// The saboteur: registers, takes the first lease, and dies — no
	// heartbeat, no result. Its range must come back and be re-run.
	saboteur := &Client{Base: srv.URL, Worker: "saboteur"}
	if err := saboteur.Register(testSpec, total, testFP); err != nil {
		t.Fatal(err)
	}
	sres, err := saboteur.Lease()
	if err != nil {
		t.Fatal(err)
	}
	if sres.Lease == nil {
		t.Fatalf("saboteur got no lease: %+v", sres)
	}

	produce := func(ctx context.Context, lo, hi int) ([]byte, error) {
		var b bytes.Buffer
		for i := lo; i < hi; i++ {
			b.Write(line(i))
		}
		return b.Bytes(), nil
	}

	var wg sync.WaitGroup
	outcomes := make([]string, 2)
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				Client:  &Client{Base: srv.URL, Worker: fmt.Sprintf("honest-%d", i)},
				Produce: produce,
				Logf:    t.Logf,
			}
			outcomes[i], errs[i] = w.Run(ctx, testSpec, total, testFP)
		}(i)
	}
	wg.Wait()
	for i := 0; i < 2; i++ {
		if errs[i] != nil {
			t.Fatalf("worker %d: %v", i, errs[i])
		}
		if outcomes[i] != OutcomeSuccess {
			t.Fatalf("worker %d outcome = %q", i, outcomes[i])
		}
	}

	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, slice(0, total)) {
		t.Fatalf("coordinated merge differs from the single-process stream:\n%s", got)
	}

	// The saboteur's stale lease must be refused if it ever comes back.
	if err := saboteur.Heartbeat(sres.Lease.ID); err != ErrLeaseLost {
		t.Fatalf("stale heartbeat over HTTP: %v", err)
	}
	if err := saboteur.Complete(sres.Lease.ID, slice(sres.Lease.Lo, sres.Lease.Hi)); err != ErrLeaseLost {
		t.Fatalf("stale complete over HTTP: %v", err)
	}
}

// The HTTP surface maps run mismatches to 409 and decodes the
// coordinator's refusal into a client error.
func TestHTTPRegisterMismatch(t *testing.T) {
	c, _ := newTestCoord(t, nil, nil)
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	a := &Client{Base: srv.URL, Worker: "a"}
	if err := a.Register(testSpec, 8, testFP); err != nil {
		t.Fatal(err)
	}
	b := &Client{Base: srv.URL, Worker: "b"}
	if err := b.Register(testSpec, 8, 0xdead); err == nil {
		t.Fatal("mismatched fingerprint accepted over HTTP")
	}
}

// A worker whose Produce errors reports Fail; the budgets turn that
// into a partial outcome that the Worker loop surfaces.
func TestHTTPWorkerProduceFailure(t *testing.T) {
	dir := t.TempDir()
	c, err := New(Config{
		RangeSize: 4,
		LeaseTTL:  time.Minute,
		Dir:       filepath.Join(dir, "state"),
		Out:       filepath.Join(dir, "merged.jsonl"),
		Logf:      t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	w := &Worker{
		Client: &Client{Base: srv.URL, Worker: "crashy"},
		Produce: func(ctx context.Context, lo, hi int) ([]byte, error) {
			if lo >= 4 {
				return nil, fmt.Errorf("injected fault at %d", lo)
			}
			return slice(lo, hi), nil
		},
		Logf: t.Logf,
	}
	outcome, err := w.Run(context.Background(), testSpec, 8, testFP)
	if err != nil {
		t.Fatal(err)
	}
	if outcome != OutcomePartial {
		t.Fatalf("outcome = %q", outcome)
	}
	_, m, _ := c.Outcome()
	if m == nil || len(m.Failed) != 1 || m.Failed[0].Err != "injected fault at 4" {
		t.Fatalf("manifest: %+v", m)
	}
	if !bytes.Equal(mustRead(t, filepath.Join(dir, "merged.jsonl")), slice(0, 4)) {
		t.Fatal("partial merge is not the verified prefix")
	}
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
