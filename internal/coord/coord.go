// Package coord is the campaign coordinator: lease-based dynamic
// dispatch of one experiment run across a fleet of workers.
//
// The static alternative already exists — -shard i/n slices the
// flattened cell×trial space into n fixed contiguous pieces — but fixed
// slicing couples the campaign to the fleet: a slow machine stretches
// the whole run to its pace, and a dead one leaves a hole no other
// worker will fill. The coordinator decouples them. It holds the run's
// index space as a grid of small ranges; identical workers pull a
// leased range each, stream the completed range's record lines back,
// and pull the next. A lease carries a TTL renewed by heartbeats; a
// worker that dies simply stops renewing, and its range goes back to
// the grid for someone else. Dispatch order is dynamic, but the result
// is not: every range journal is verified with the same discipline as a
// -shard journal (index order, checksummed footer, fingerprint-pinned
// header), and the terminal merge is byte-identical to the
// single-process run.
//
// The coordinator always reaches a terminal outcome. Each range has two
// bounded budgets that distinguish the transient from the systematic:
// a lease expiry (worker died, network hiccup) charges the timeout
// budget, while a reported failure or a payload that fails verification
// charges the failure budget — a range that keeps crashing its workers
// is declared failed rather than retried forever. When no range is
// pending or leased, the run finalizes: all done → "success" (strict
// merge); some done → "partial" (verified subset merged, manifest
// accounting for the holes); none → "failed". A stall watchdog bounds
// the no-progress case so an abandoned coordinator terminates too.
package coord

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"reunion/internal/dist"
	"reunion/internal/obs"
)

// Outcome values of a coordinated run. Success and partial are the
// dist merge outcomes; failed is the coordinator's own terminal state
// for a run that produced no verified records at all.
const (
	OutcomeSuccess = dist.OutcomeSuccess
	OutcomePartial = dist.OutcomePartial
	OutcomeFailed  = "failed"
)

// ErrLeaseLost reports that the presented lease no longer exists: it
// expired and the range was re-leased, completed by another worker, or
// the whole run went terminal. The worker discards its result silently
// — someone else owns those indices now.
var ErrLeaseLost = errors.New("coord: lease lost")

// ErrBadPayload reports that a completed range's payload failed journal
// verification (malformed line, index out of order, wrong count). The
// failure is charged against the range's failure budget.
var ErrBadPayload = errors.New("coord: range payload failed verification")

// errMismatch reports a worker registering a different run than the one
// the coordinator adopted.
var errMismatch = errors.New("coord: run mismatch")

// Config parameterizes a Coordinator. The zero value of every field has
// a usable default except Dir and Out, which are required.
type Config struct {
	// RangeSize is the lease granularity in indices (default 16).
	// Smaller ranges lose less work per dead worker but cost more
	// round-trips.
	RangeSize int
	// LeaseTTL is how long a lease lives without a heartbeat
	// (default 10s). Workers renew at TTL/3.
	LeaseTTL time.Duration
	// TimeoutBudget is how many lease expiries a single range tolerates
	// before it is declared failed (default 3). Expiries are the
	// transient failure mode — a dead worker, a partitioned network —
	// so the budget is looser than FailBudget.
	TimeoutBudget int
	// FailBudget is how many reported failures or verification-failed
	// payloads a single range tolerates before it is declared failed
	// (default 2). A range that crashes every worker it meets is
	// systematic; retrying it forever would deny the run a terminal
	// outcome.
	FailBudget int
	// StallTimeout forces a terminal outcome after this long without
	// any worker activity (default 10×LeaseTTL). It bounds the case
	// where every worker is gone and no lease is left to expire.
	StallTimeout time.Duration
	// Dir holds the per-range journals (required). Sealed range
	// journals found here at adoption are re-verified and credited, so
	// a restarted coordinator resumes instead of re-running.
	Dir string
	// Out is the merged results file written at the terminal outcome
	// (required).
	Out string
	// Manifest, when non-empty, is where the terminal manifest is
	// written (success and partial runs both get one; see dist.Manifest).
	Manifest string

	Obs  obs.Scope
	Logf func(format string, args ...any)
	// Now overrides the wall clock (tests).
	Now func() time.Time
}

// Range states.
const (
	statePending = iota
	stateLeased
	stateDone
	stateFailed
)

// rng is one leaseable range of the index grid.
type rng struct {
	lo, hi    int
	state     int
	worker    string
	leaseID   string
	expiry    time.Time
	timeouts  int // lease expiries charged so far
	failures  int // reported/verification failures charged so far
	path      string
	failedErr string // last failure reason, for the manifest
}

// Lease is a granted range lease.
type Lease struct {
	ID     string
	Lo, Hi int
	TTL    time.Duration
}

// LeaseResult is the outcome of a lease request: exactly one of Lease
// (work granted), Wait (all ranges busy; retry after the duration), or
// Terminal (the run is over; Outcome says how it ended) is meaningful.
type LeaseResult struct {
	Lease   *Lease
	Wait    time.Duration
	Outcome string
}

// Status is a point-in-time snapshot of the run.
type Status struct {
	Adopted     bool   `json:"adopted"`
	Spec        string `json:"spec,omitempty"`
	Total       int    `json:"total,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Ranges      int    `json:"ranges"`
	Pending     int    `json:"pending"`
	Leased      int    `json:"leased"`
	Done        int    `json:"done"`
	Failed      int    `json:"failed"`
	Outcome     string `json:"outcome,omitempty"`
}

// Coordinator is the lease state machine. All exported methods are
// safe for concurrent use.
type Coordinator struct {
	cfg Config

	mu       sync.Mutex
	adopted  bool
	spec     string
	total    int
	fp       uint64
	ranges   []*rng // ordered by lo; never reordered
	leaseSeq int
	outcome  string // "" until terminal
	manifest *dist.Manifest
	finalErr error
	lastAct  time.Time
	done     chan struct{}

	mGranted, mExpired, mCompleted, mFailed, mHeartbeats, mRejected *obs.Counter
	gPending, gLeased, gDone, gFailed                               *obs.Gauge
}

// New builds a Coordinator, applying defaults. Dir and Out are
// required.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Dir == "" || cfg.Out == "" {
		return nil, errors.New("coord: Config.Dir and Config.Out are required")
	}
	if cfg.RangeSize <= 0 {
		cfg.RangeSize = 16
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 10 * time.Second
	}
	if cfg.TimeoutBudget <= 0 {
		cfg.TimeoutBudget = 3
	}
	if cfg.FailBudget <= 0 {
		cfg.FailBudget = 2
	}
	if cfg.StallTimeout <= 0 {
		cfg.StallTimeout = 10 * cfg.LeaseTTL
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	c := &Coordinator{cfg: cfg, done: make(chan struct{})}
	if m := cfg.Obs.Metrics; m != nil {
		c.mGranted = m.Counter("coord_leases_granted_total", "Range leases granted to workers.")
		c.mExpired = m.Counter("coord_leases_expired_total", "Leases that died without a heartbeat and were reclaimed.")
		c.mCompleted = m.Counter("coord_ranges_completed_total", "Ranges completed and verified.")
		c.mFailed = m.Counter("coord_ranges_failed_total", "Ranges declared failed after exhausting a retry budget.")
		c.mHeartbeats = m.Counter("coord_heartbeats_total", "Lease renewals received.")
		c.mRejected = m.Counter("coord_payloads_rejected_total", "Completed payloads that failed journal verification.")
		c.gPending = m.Gauge("coord_ranges_pending", "Ranges awaiting a lease.")
		c.gLeased = m.Gauge("coord_ranges_leased", "Ranges currently leased.")
		c.gDone = m.Gauge("coord_ranges_done", "Ranges completed and verified.")
		c.gFailed = m.Gauge("coord_ranges_failed", "Ranges declared failed.")
	}
	c.lastAct = c.clock()
	return c, nil
}

//reunion:nondeterm-ok coordinator wall clock drives lease expiry and stall detection, never result bytes
func (c *Coordinator) clock() time.Time {
	if c.cfg.Now != nil {
		return c.cfg.Now()
	}
	return time.Now()
}

// Done is closed when the run reaches its terminal outcome.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// Outcome returns the terminal outcome, its manifest (nil until
// terminal; also nil for a failed run that never adopted a campaign),
// and the finalization error if the terminal merge itself failed.
func (c *Coordinator) Outcome() (string, *dist.Manifest, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.outcome, c.manifest, c.finalErr
}

// Status snapshots the run.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Adopted: c.adopted, Spec: c.spec, Total: c.total, Ranges: len(c.ranges), Outcome: c.outcome}
	if c.adopted {
		st.Fingerprint = fmt.Sprintf("%016x", c.fp)
	}
	for _, r := range c.ranges {
		switch r.state {
		case statePending:
			st.Pending++
		case stateLeased:
			st.Leased++
		case stateDone:
			st.Done++
		case stateFailed:
			st.Failed++
		}
	}
	return st
}

// Register adopts the run on first call and verifies every later call
// against it: spec, total, and fingerprint must match exactly, for the
// same reason a journal header must — two workers with subtly different
// flags would interleave two experiments. Adoption also rescans Dir and
// credits any sealed range journal from a previous coordinator
// incarnation.
func (c *Coordinator) Register(worker, spec string, total int, fp uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	if !c.adopted {
		if total <= 0 {
			return fmt.Errorf("coord: register with total %d", total)
		}
		c.adopted, c.spec, c.total, c.fp = true, spec, total, fp
		for lo := 0; lo < total; lo += c.cfg.RangeSize {
			hi := lo + c.cfg.RangeSize
			if hi > total {
				hi = total
			}
			c.ranges = append(c.ranges, &rng{lo: lo, hi: hi})
		}
		c.adoptSealed()
		c.updateGauges()
		c.cfg.Logf("coord: adopted %s: %d indices in %d ranges (%d already sealed)",
			spec, total, len(c.ranges), c.countState(stateDone))
		c.maybeFinalize()
		return nil
	}
	if spec != c.spec || total != c.total || fp != c.fp {
		return fmt.Errorf("%w: worker %s offers spec=%q total=%d fingerprint=%016x, run is spec=%q total=%d fingerprint=%016x",
			errMismatch, worker, spec, total, fp, c.spec, c.total, c.fp)
	}
	return nil
}

// adoptSealed credits ranges whose journal already exists sealed in
// Dir — the restart path. A journal that does not verify is removed
// (uploads are atomic, so leftovers are from torn crashes) and its
// range re-runs. Called with mu held.
func (c *Coordinator) adoptSealed() {
	for _, r := range c.ranges {
		path := c.rangePath(r)
		if _, err := os.Stat(path); err != nil {
			continue
		}
		if err := c.verifySealed(path, r); err != nil {
			c.cfg.Logf("coord: discarding unverifiable %s: %v", path, err)
			os.Remove(path)
			continue
		}
		r.state, r.path = stateDone, path
	}
}

// verifySealed checks that path is a sealed, fingerprint-matching
// journal of exactly r's range.
func (c *Coordinator) verifySealed(path string, r *rng) error {
	plan, err := dist.NewRange(c.spec, c.total, r.lo, r.hi)
	if err != nil {
		return err
	}
	plan.Fingerprint = c.fp
	j, err := dist.Open(path, plan)
	if err != nil {
		return err
	}
	defer j.Close()
	if !j.Complete() {
		return errors.New("journal is not sealed")
	}
	return nil
}

func (c *Coordinator) rangePath(r *rng) string {
	return filepath.Join(c.cfg.Dir, fmt.Sprintf("range-%08d-%08d.jsonl", r.lo, r.hi))
}

// Lease grants the lowest pending range to worker, or says how long to
// wait, or reports the terminal outcome. Stale leases are reclaimed
// here as well as in Watch, so a busy run needs no background ticker.
func (c *Coordinator) Lease(worker string) LeaseResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	now := c.clock()
	c.expireStale(now)
	c.maybeFinalize()
	if c.outcome != "" {
		return LeaseResult{Outcome: c.outcome}
	}
	if !c.adopted {
		return LeaseResult{Wait: 250 * time.Millisecond}
	}
	for _, r := range c.ranges {
		if r.state != statePending {
			continue
		}
		c.leaseSeq++
		r.state = stateLeased
		r.worker = worker
		r.leaseID = fmt.Sprintf("l%08d", c.leaseSeq)
		r.expiry = now.Add(c.cfg.LeaseTTL)
		c.mGranted.Inc()
		c.updateGauges()
		c.cfg.Obs.Trace.Instant("coord", "lease_grant",
			obs.Arg{Key: "worker", Val: worker}, obs.Arg{Key: "lo", Val: r.lo}, obs.Arg{Key: "hi", Val: r.hi})
		return LeaseResult{Lease: &Lease{ID: r.leaseID, Lo: r.lo, Hi: r.hi, TTL: c.cfg.LeaseTTL}}
	}
	// Nothing pending but leases are in flight: the caller should ask
	// again when the earliest one can have expired.
	wait := c.cfg.LeaseTTL
	for _, r := range c.ranges {
		if r.state == stateLeased {
			if d := r.expiry.Sub(now); d < wait {
				wait = d
			}
		}
	}
	if wait < 50*time.Millisecond {
		wait = 50 * time.Millisecond
	}
	return LeaseResult{Wait: wait}
}

// Heartbeat renews a live lease; ErrLeaseLost if it is gone.
func (c *Coordinator) Heartbeat(worker, leaseID string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	r := c.findLease(worker, leaseID)
	if r == nil {
		return ErrLeaseLost
	}
	r.expiry = c.clock().Add(c.cfg.LeaseTTL)
	c.mHeartbeats.Inc()
	return nil
}

// Complete accepts a finished range: body must be the range's record
// lines, exactly as the single-process stream carries them. They are
// written through a ranged journal — which enforces index order, line
// framing, and the checksummed footer — and the sealed file lands in
// Dir atomically. A payload that does not verify charges the range's
// failure budget and returns ErrBadPayload.
func (c *Coordinator) Complete(worker, leaseID string, body []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	r := c.findLease(worker, leaseID)
	if r == nil {
		return ErrLeaseLost
	}
	sp := c.cfg.Obs.Trace.StartSpan("coord", "verify_range",
		obs.Arg{Key: "lo", Val: r.lo}, obs.Arg{Key: "hi", Val: r.hi}, obs.Arg{Key: "worker", Val: worker})
	err := c.sealRange(r, body)
	sp.End(obs.Arg{Key: "err", Val: err != nil})
	if err != nil {
		c.cfg.Logf("coord: range [%d,%d) from %s rejected: %v", r.lo, r.hi, worker, err)
		c.mRejected.Inc()
		c.chargeFailure(r, err.Error())
		c.maybeFinalize()
		return fmt.Errorf("%w: %v", ErrBadPayload, err)
	}
	r.state, r.path = stateDone, c.rangePath(r)
	r.worker, r.leaseID = "", ""
	c.mCompleted.Inc()
	c.updateGauges()
	c.maybeFinalize()
	return nil
}

// sealRange writes body's lines through a fresh ranged journal into a
// temp file and renames it into place. Any verification error leaves
// nothing behind.
func (c *Coordinator) sealRange(r *rng, body []byte) error {
	plan, err := dist.NewRange(c.spec, c.total, r.lo, r.hi)
	if err != nil {
		return err
	}
	plan.Fingerprint = c.fp
	tmp, err := os.CreateTemp(c.cfg.Dir, ".range-*.tmp")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	tmp.Close()
	defer os.Remove(tmpName)
	j, err := dist.Create(tmpName, plan)
	if err != nil {
		return err
	}
	for len(body) > 0 {
		nl := bytes.IndexByte(body, '\n')
		if nl < 0 {
			j.Close()
			return errors.New("payload ends without a newline")
		}
		if err := j.WriteLine(body[:nl+1]); err != nil {
			j.Close()
			return err
		}
		body = body[nl+1:]
	}
	if err := j.Finish(); err != nil {
		j.Close()
		return err
	}
	if err := j.Close(); err != nil {
		return err
	}
	return os.Rename(tmpName, c.rangePath(r))
}

// Fail reports that the worker could not produce the range (the run
// itself errored). It charges the failure budget.
func (c *Coordinator) Fail(worker, leaseID, reason string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touch()
	r := c.findLease(worker, leaseID)
	if r == nil {
		return ErrLeaseLost
	}
	c.cfg.Logf("coord: range [%d,%d) failed on %s: %s", r.lo, r.hi, worker, reason)
	c.chargeFailure(r, reason)
	c.maybeFinalize()
	return nil
}

// Watch drives the clock-dependent transitions — lease expiry, the
// stall watchdog, and the finalization they can unblock — while no
// worker requests arrive. It returns when the run is terminal or ctx
// is cancelled.
func (c *Coordinator) Watch(ctx context.Context) {
	tick := c.cfg.LeaseTTL / 2
	if tick > time.Second {
		tick = time.Second
	}
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-c.done:
			return
		case <-t.C:
			c.mu.Lock()
			now := c.clock()
			c.expireStale(now)
			if now.Sub(c.lastAct) >= c.cfg.StallTimeout {
				c.stallOut()
			}
			c.maybeFinalize()
			c.mu.Unlock()
		}
	}
}

// touch records worker activity for the stall watchdog. Called with mu
// held.
func (c *Coordinator) touch() { c.lastAct = c.clock() }

// findLease returns the range currently leased as (worker, leaseID),
// or nil. Called with mu held.
func (c *Coordinator) findLease(worker, leaseID string) *rng {
	for _, r := range c.ranges {
		if r.state == stateLeased && r.leaseID == leaseID && r.worker == worker {
			return r
		}
	}
	return nil
}

// expireStale reclaims leases past their TTL, charging the timeout
// budget. Called with mu held.
func (c *Coordinator) expireStale(now time.Time) {
	for _, r := range c.ranges {
		if r.state != stateLeased || now.Before(r.expiry) {
			continue
		}
		c.mExpired.Inc()
		c.cfg.Logf("coord: lease %s on range [%d,%d) expired (worker %s, expiry %d/%d)",
			r.leaseID, r.lo, r.hi, r.worker, r.timeouts+1, c.cfg.TimeoutBudget)
		c.cfg.Obs.Trace.Instant("coord", "lease_expired",
			obs.Arg{Key: "worker", Val: r.worker}, obs.Arg{Key: "lo", Val: r.lo}, obs.Arg{Key: "hi", Val: r.hi})
		r.worker, r.leaseID = "", ""
		r.timeouts++
		if r.timeouts >= c.cfg.TimeoutBudget {
			r.state = stateFailed
			r.failedErr = fmt.Sprintf("lease expired %d times", r.timeouts)
			c.mFailed.Inc()
		} else {
			r.state = statePending
		}
	}
	c.updateGauges()
}

// chargeFailure books one failure against r, failing it when the
// budget is spent and re-queuing it otherwise. Called with mu held.
func (c *Coordinator) chargeFailure(r *rng, reason string) {
	r.worker, r.leaseID = "", ""
	r.failures++
	r.failedErr = reason
	if r.failures >= c.cfg.FailBudget {
		r.state = stateFailed
		c.mFailed.Inc()
	} else {
		r.state = statePending
	}
	c.updateGauges()
}

// stallOut forces every non-done range to failed so the run can
// finalize — the watchdog path when all workers are gone. Called with
// mu held.
func (c *Coordinator) stallOut() {
	if c.outcome != "" {
		return
	}
	c.cfg.Logf("coord: no worker activity for %s — forcing a terminal outcome", c.cfg.StallTimeout)
	for _, r := range c.ranges {
		if r.state == statePending || r.state == stateLeased {
			r.state = stateFailed
			r.failedErr = "stalled: no worker activity"
			c.mFailed.Inc()
		}
	}
	if !c.adopted {
		// Nothing was ever registered; there is no campaign to account
		// for, only a failed coordination.
		c.outcome = OutcomeFailed
		c.finalErr = errors.New("coord: stalled before any worker registered")
		close(c.done)
	}
	c.updateGauges()
}

// maybeFinalize declares the terminal outcome once no range is pending
// or leased. Called with mu held.
func (c *Coordinator) maybeFinalize() {
	if c.outcome != "" || !c.adopted {
		return
	}
	var paths []string
	nDone, nFailed := 0, 0
	for _, r := range c.ranges {
		switch r.state {
		case statePending, stateLeased:
			return // work remains
		case stateDone:
			nDone++
			paths = append(paths, r.path)
		case stateFailed:
			nFailed++
		}
	}
	switch {
	case nFailed == 0:
		info, err := dist.MergeFileObs(c.cfg.Out, paths, nil, c.cfg.Obs)
		if err != nil {
			// The sealed journals contradict each other or the disk went
			// bad — nothing merged, nothing trustworthy.
			c.outcome, c.finalErr = OutcomeFailed, err
		} else {
			c.outcome = OutcomeSuccess
			c.manifest = &dist.Manifest{
				Spec: c.spec, Fingerprint: fmt.Sprintf("%016x", c.fp),
				Total: c.total, Records: info.Records, Outcome: dist.OutcomeSuccess,
			}
		}
	case nDone > 0:
		m, err := dist.MergePartialFile(c.cfg.Out, "", paths, nil)
		if err != nil {
			c.outcome, c.finalErr = OutcomeFailed, err
		} else {
			c.outcome, c.manifest = OutcomePartial, m
			c.fillFailed(m)
		}
	default:
		c.outcome = OutcomeFailed
		c.manifest = &dist.Manifest{
			Spec: c.spec, Fingerprint: fmt.Sprintf("%016x", c.fp),
			Total: c.total, Outcome: OutcomeFailed,
			Missing: []dist.IndexRange{{Lo: 0, Hi: c.total}},
		}
		c.fillFailed(c.manifest)
	}
	if c.manifest != nil && c.cfg.Manifest != "" {
		if err := c.manifest.WriteFile(c.cfg.Manifest); err != nil && c.finalErr == nil {
			c.finalErr = err
		}
	}
	c.cfg.Logf("coord: terminal outcome %q (%d ranges done, %d failed)", c.outcome, nDone, nFailed)
	close(c.done)
}

// fillFailed records the failed ranges' reasons in the manifest, so a
// partial outcome says not just which indices are missing but why.
// Called with mu held.
func (c *Coordinator) fillFailed(m *dist.Manifest) {
	for _, r := range c.ranges {
		if r.state == stateFailed {
			m.Failed = append(m.Failed, dist.JournalFailure{
				Slic: dist.IndexRange{Lo: r.lo, Hi: r.hi}, Err: r.failedErr,
			})
		}
	}
}

func (c *Coordinator) countState(st int) int {
	n := 0
	for _, r := range c.ranges {
		if r.state == st {
			n++
		}
	}
	return n
}

// updateGauges refreshes the state gauges. Called with mu held.
func (c *Coordinator) updateGauges() {
	if c.gPending == nil {
		return
	}
	c.gPending.Set(int64(c.countState(statePending)))
	c.gLeased.Set(int64(c.countState(stateLeased)))
	c.gDone.Set(int64(c.countState(stateDone)))
	c.gFailed.Set(int64(c.countState(stateFailed)))
}
