package coord

// The wire protocol. One coordinator, any number of workers, five
// POST endpoints plus a status probe — all JSON except the completed
// range payload, which travels as raw JSONL body bytes so the exact
// producer bytes reach the journal verifier (a decode/re-encode round
// trip could normalize them and break byte-identity).
//
//	POST /v1/register   {worker, spec, total, fingerprint}      409 on run mismatch
//	POST /v1/lease      {worker}                                → lease | wait | terminal
//	POST /v1/heartbeat  {worker, lease}                         410 when the lease is gone
//	POST /v1/complete   raw JSONL; X-Reunion-Worker/-Lease      410 lease gone, 422 bad payload
//	POST /v1/fail       {worker, lease, reason}                 410 when the lease is gone
//	GET  /v1/status     run snapshot
//
// 410 Gone is load-bearing: it tells a worker its result belongs to no
// one — the range was re-leased after an expiry — so the worker must
// discard silently, not retry. 422 tells it the payload itself was
// rejected and the coordinator has already charged the failure budget.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"
)

const (
	headerWorker = "X-Reunion-Worker"
	headerLease  = "X-Reunion-Lease"
	// maxPayload bounds a completed range's body (64 MiB) — a runaway
	// worker must not OOM the coordinator.
	maxPayload = 64 << 20
)

type registerReq struct {
	Worker      string `json:"worker"`
	Spec        string `json:"spec"`
	Total       int    `json:"total"`
	Fingerprint string `json:"fingerprint"` // %016x
}

type leaseReq struct {
	Worker string `json:"worker"`
}

type leaseResp struct {
	Status  string `json:"status"` // "lease" | "wait" | "terminal"
	Lease   string `json:"lease,omitempty"`
	Lo      int    `json:"lo,omitempty"`
	Hi      int    `json:"hi,omitempty"`
	TTLMs   int64  `json:"ttl_ms,omitempty"`
	RetryMs int64  `json:"retry_ms,omitempty"`
	Outcome string `json:"outcome,omitempty"`
}

type leaseRef struct {
	Worker string `json:"worker"`
	Lease  string `json:"lease"`
	Reason string `json:"reason,omitempty"`
}

type errResp struct {
	Error string `json:"error"`
}

// Handler serves the coordinator protocol under /v1/.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/register", c.handleRegister)
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("/v1/complete", c.handleComplete)
	mux.HandleFunc("/v1/fail", c.handleFail)
	mux.HandleFunc("/v1/status", c.handleStatus)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func decodeInto(w http.ResponseWriter, r *http.Request, v any) bool {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResp{"POST only"})
		return false
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(v); err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{err.Error()})
		return false
	}
	return true
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerReq
	if !decodeInto(w, r, &req) {
		return
	}
	fp, err := strconv.ParseUint(req.Fingerprint, 16, 64)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{fmt.Sprintf("bad fingerprint %q", req.Fingerprint)})
		return
	}
	if err := c.Register(req.Worker, req.Spec, req.Total, fp); err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errMismatch) {
			code = http.StatusConflict
		}
		writeJSON(w, code, errResp{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseReq
	if !decodeInto(w, r, &req) {
		return
	}
	res := c.Lease(req.Worker)
	switch {
	case res.Lease != nil:
		writeJSON(w, http.StatusOK, leaseResp{
			Status: "lease", Lease: res.Lease.ID,
			Lo: res.Lease.Lo, Hi: res.Lease.Hi, TTLMs: res.Lease.TTL.Milliseconds(),
		})
	case res.Outcome != "":
		writeJSON(w, http.StatusOK, leaseResp{Status: "terminal", Outcome: res.Outcome})
	default:
		writeJSON(w, http.StatusOK, leaseResp{Status: "wait", RetryMs: res.Wait.Milliseconds()})
	}
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req leaseRef
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.Heartbeat(req.Worker, req.Lease); err != nil {
		writeJSON(w, http.StatusGone, errResp{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errResp{"POST only"})
		return
	}
	worker, lease := r.Header.Get(headerWorker), r.Header.Get(headerLease)
	if worker == "" || lease == "" {
		writeJSON(w, http.StatusBadRequest, errResp{"missing " + headerWorker + " or " + headerLease})
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPayload+1))
	if err != nil {
		writeJSON(w, http.StatusBadRequest, errResp{err.Error()})
		return
	}
	if len(body) > maxPayload {
		writeJSON(w, http.StatusRequestEntityTooLarge, errResp{"payload exceeds limit"})
		return
	}
	switch err := c.Complete(worker, lease, body); {
	case err == nil:
		writeJSON(w, http.StatusOK, struct{}{})
	case errors.Is(err, ErrLeaseLost):
		writeJSON(w, http.StatusGone, errResp{err.Error()})
	case errors.Is(err, ErrBadPayload):
		writeJSON(w, http.StatusUnprocessableEntity, errResp{err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, errResp{err.Error()})
	}
}

func (c *Coordinator) handleFail(w http.ResponseWriter, r *http.Request) {
	var req leaseRef
	if !decodeInto(w, r, &req) {
		return
	}
	if err := c.Fail(req.Worker, req.Lease, req.Reason); err != nil {
		writeJSON(w, http.StatusGone, errResp{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct{}{})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

// Client is the worker side of the protocol.
type Client struct {
	// Base is the coordinator's base URL (http://host:port).
	Base string
	// Worker identifies this worker in leases and logs.
	Worker string
	// HTTP overrides the transport (default http.DefaultClient).
	HTTP *http.Client
}

func (cl *Client) client() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return http.DefaultClient
}

// post sends v as JSON and decodes the response into out when the
// status matches okCode; other statuses map to errors (410 →
// ErrLeaseLost, 422 → ErrBadPayload).
func (cl *Client) post(path string, v, out any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	resp, err := cl.client().Post(cl.Base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return cl.finish(resp, out)
}

func (cl *Client) finish(resp *http.Response, out any) error {
	switch resp.StatusCode {
	case http.StatusOK:
		if out == nil {
			io.Copy(io.Discard, resp.Body)
			return nil
		}
		return json.NewDecoder(resp.Body).Decode(out)
	case http.StatusGone:
		io.Copy(io.Discard, resp.Body)
		return ErrLeaseLost
	case http.StatusUnprocessableEntity:
		var e errResp
		json.NewDecoder(resp.Body).Decode(&e)
		return fmt.Errorf("%w: %s", ErrBadPayload, e.Error)
	default:
		var e errResp
		json.NewDecoder(resp.Body).Decode(&e)
		if e.Error == "" {
			e.Error = resp.Status
		}
		return fmt.Errorf("coord: %s: %s", resp.Request.URL.Path, e.Error)
	}
}

// Register announces the worker's run identity; the first registration
// adopts the run on the coordinator.
func (cl *Client) Register(spec string, total int, fingerprint uint64) error {
	return cl.post("/v1/register", registerReq{
		Worker: cl.Worker, Spec: spec, Total: total,
		Fingerprint: fmt.Sprintf("%016x", fingerprint),
	}, nil)
}

// Lease asks for work.
func (cl *Client) Lease() (LeaseResult, error) {
	var resp leaseResp
	if err := cl.post("/v1/lease", leaseReq{Worker: cl.Worker}, &resp); err != nil {
		return LeaseResult{}, err
	}
	switch resp.Status {
	case "lease":
		return LeaseResult{Lease: &Lease{
			ID: resp.Lease, Lo: resp.Lo, Hi: resp.Hi,
			TTL: time.Duration(resp.TTLMs) * time.Millisecond,
		}}, nil
	case "terminal":
		return LeaseResult{Outcome: resp.Outcome}, nil
	case "wait":
		return LeaseResult{Wait: time.Duration(resp.RetryMs) * time.Millisecond}, nil
	}
	return LeaseResult{}, fmt.Errorf("coord: unknown lease status %q", resp.Status)
}

// Heartbeat renews the lease; ErrLeaseLost means stop working on it.
func (cl *Client) Heartbeat(leaseID string) error {
	return cl.post("/v1/heartbeat", leaseRef{Worker: cl.Worker, Lease: leaseID}, nil)
}

// Complete uploads the finished range's record lines.
func (cl *Client) Complete(leaseID string, body []byte) error {
	req, err := http.NewRequest(http.MethodPost, cl.Base+"/v1/complete", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/jsonl")
	req.Header.Set(headerWorker, cl.Worker)
	req.Header.Set(headerLease, leaseID)
	resp, err := cl.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return cl.finish(resp, nil)
}

// Fail reports that the range could not be produced.
func (cl *Client) Fail(leaseID, reason string) error {
	return cl.post("/v1/fail", leaseRef{Worker: cl.Worker, Lease: leaseID, Reason: reason}, nil)
}

// Status fetches the coordinator's run snapshot.
func (cl *Client) Status() (Status, error) {
	resp, err := cl.client().Get(cl.Base + "/v1/status")
	if err != nil {
		return Status{}, err
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("coord: status: %s", resp.Status)
	}
	return st, json.NewDecoder(resp.Body).Decode(&st)
}
