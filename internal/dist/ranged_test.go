package dist

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// mustRange builds a ranged plan or fails the test.
func mustRange(t *testing.T, total, lo, hi int) Plan {
	t.Helper()
	p, err := NewRange("t", total, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// writeRange journals [lo,hi) of a total-index run and seals it.
func writeRange(t *testing.T, path string, total, lo, hi int, fp uint64) {
	t.Helper()
	p := mustRange(t, total, lo, hi)
	p.Fingerprint = fp
	writeShard(t, path, p)
}

func TestNewRangeValidates(t *testing.T) {
	for _, bad := range []struct{ total, lo, hi int }{
		{-1, 0, 1}, {10, -1, 3}, {10, 3, 11}, {10, 5, 5}, {10, 7, 3},
	} {
		if _, err := NewRange("t", bad.total, bad.lo, bad.hi); err == nil {
			t.Errorf("NewRange(total=%d, [%d,%d)) accepted", bad.total, bad.lo, bad.hi)
		}
	}
	p := mustRange(t, 10, 3, 7)
	if p.Lo() != 3 || p.Hi() != 7 || p.Count() != 4 || p.Index(0) != 3 || !p.Owns(6) || p.Owns(7) {
		t.Fatalf("ranged plan arithmetic wrong: %+v", p)
	}
	if got := p.String(); got != "range [3,7)" {
		t.Fatalf("String() = %q", got)
	}
}

// A set of ranged journals tiling [0,Total) merges to the exact
// single-process stream — the coordinator's terminal byte-identity
// invariant, at the dist layer.
func TestRangedMergeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	const total = 11
	bounds := [][2]int{{0, 4}, {4, 5}, {5, 9}, {9, 11}}
	var paths []string
	for _, b := range bounds {
		path := filepath.Join(dir, fmt.Sprintf("r-%d-%d.jsonl", b[0], b[1]))
		writeRange(t, path, total, b[0], b[1], 7)
		paths = append(paths, path)
	}
	// Shuffle the order: merge must order by range, not by argument.
	paths[0], paths[2] = paths[2], paths[0]

	var got bytes.Buffer
	info, err := Merge(&got, paths)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != total || info.NShards != len(bounds) {
		t.Fatalf("info = %+v", info)
	}
	if want := refBytes(t, total); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("ranged merge differs from single-process stream:\n%s\nwant:\n%s", got.Bytes(), want)
	}
}

func TestRangedMergeRejectsGapsOverlapsAndMixes(t *testing.T) {
	dir := t.TempDir()
	const total = 10
	mk := func(name string, lo, hi int) string {
		path := filepath.Join(dir, name)
		writeRange(t, path, total, lo, hi, 7)
		return path
	}
	a := mk("a.jsonl", 0, 4)
	b := mk("b.jsonl", 4, 10)
	overlap := mk("o.jsonl", 3, 6)
	short := mk("s.jsonl", 4, 9)

	if _, err := Merge(io.Discard, []string{a, short}); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("gap accepted: %v", err)
	}
	if _, err := Merge(io.Discard, []string{a, overlap, b}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlap accepted: %v", err)
	}

	// Mixing a ranged journal into a classic shard set must fail.
	classic := filepath.Join(dir, "shard.jsonl")
	p, err := NewPlan("t", total, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	p.Fingerprint = 7
	writeShard(t, classic, p)
	if _, err := Merge(io.Discard, []string{classic, b}); err == nil || !strings.Contains(err.Error(), "different run") {
		t.Errorf("classic/ranged mix accepted: %v", err)
	}

	// A ranged journal from a differently-configured run must fail.
	alien := filepath.Join(dir, "alien.jsonl")
	writeRange(t, alien, total, 0, 4, 8)
	if _, err := Merge(io.Discard, []string{alien, b}); err == nil || !strings.Contains(err.Error(), "fingerprint") {
		t.Errorf("fingerprint mismatch accepted: %v", err)
	}
}

// WriteLine appends exactly the producer's bytes under the same
// index-order discipline as Write: the journal it seals is
// indistinguishable from one written record by record.
func TestWriteLineByteIdenticalAndOrdered(t *testing.T) {
	dir := t.TempDir()
	p := mustRange(t, 9, 3, 7)

	// Reference: the same range journaled via Write.
	ref := filepath.Join(dir, "ref.jsonl")
	writeShard(t, ref, p)

	// Lines as a worker would stream them: the slice of the
	// single-process stream.
	all := refBytes(t, 9)
	lines := bytes.SplitAfter(all, []byte("\n"))

	got := filepath.Join(dir, "got.jsonl")
	j, err := Create(got, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.WriteLine(lines[2]); err == nil {
		t.Fatal("out-of-order line accepted")
	}
	if err := j.WriteLine([]byte("not json\n")); err == nil {
		t.Fatal("non-record line accepted")
	}
	if err := j.WriteLine(append(append([]byte{}, lines[3]...), lines[4]...)); err == nil {
		t.Fatal("multi-line payload accepted")
	}
	for i := 3; i < 7; i++ {
		if err := j.WriteLine(lines[i]); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
	}
	if err := j.WriteLine(lines[7]); err == nil {
		t.Fatal("line past the slice accepted")
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}

	rb, _ := os.ReadFile(ref)
	gb, _ := os.ReadFile(got)
	if !bytes.Equal(rb, gb) {
		t.Fatalf("WriteLine journal differs from Write journal:\n%s\nvs:\n%s", gb, rb)
	}
}

// The partial merge writes every verified slice, and the manifest
// accounts for exactly the rest.
func TestMergePartialManifest(t *testing.T) {
	dir := t.TempDir()
	const total = 12
	a := filepath.Join(dir, "a.jsonl")
	c := filepath.Join(dir, "c.jsonl")
	bad := filepath.Join(dir, "bad.jsonl")
	writeRange(t, a, total, 0, 4, 7)
	writeRange(t, c, total, 8, 10, 7)
	writeRange(t, bad, total, 10, 12, 7)
	// Corrupt the sealed journal: flip a payload byte so the footer CRC
	// contradicts it.
	blob, err := os.ReadFile(bad)
	if err != nil {
		t.Fatal(err)
	}
	blob[bytes.IndexByte(blob, '\n')+5] ^= 1
	if err := os.WriteFile(bad, blob, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	m, err := MergePartial(&out, []string{a, c, bad})
	if err != nil {
		t.Fatal(err)
	}
	if m.Outcome != OutcomePartial || m.Success() {
		t.Fatalf("outcome = %q", m.Outcome)
	}
	if m.Records != 6 {
		t.Errorf("records = %d, want 6", m.Records)
	}
	wantMissing := []IndexRange{{4, 8}, {10, 12}}
	if len(m.Missing) != 2 || m.Missing[0] != wantMissing[0] || m.Missing[1] != wantMissing[1] {
		t.Errorf("missing = %+v, want %+v", m.Missing, wantMissing)
	}
	if len(m.Failed) != 1 || m.Failed[0].Path != bad || m.Failed[0].Slic != (IndexRange{10, 12}) {
		t.Errorf("failed = %+v", m.Failed)
	}

	// The output holds exactly the verified slices, in index order.
	var want bytes.Buffer
	all := refBytes(t, total)
	lines := bytes.SplitAfter(all, []byte("\n"))
	for _, i := range []int{0, 1, 2, 3, 8, 9} {
		want.Write(lines[i])
	}
	if !bytes.Equal(out.Bytes(), want.Bytes()) {
		t.Fatalf("partial output:\n%s\nwant:\n%s", out.Bytes(), want.Bytes())
	}

	// A complete set reports success with an empty accounting.
	b := filepath.Join(dir, "b.jsonl")
	d := filepath.Join(dir, "d.jsonl")
	writeRange(t, b, total, 4, 8, 7)
	writeRange(t, d, total, 10, 12, 7)
	out.Reset()
	m, err = MergePartial(&out, []string{a, b, c, d})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Success() || m.Records != total || len(m.Missing) != 0 || len(m.Failed) != 0 {
		t.Fatalf("complete set: %+v", m)
	}
	if !bytes.Equal(out.Bytes(), all) {
		t.Fatal("complete partial merge is not the single-process stream")
	}

	// Overlapping verified journals are a corrupt set, not a partial one.
	o := filepath.Join(dir, "o.jsonl")
	writeRange(t, o, total, 2, 6, 7)
	if _, err := MergePartial(io.Discard, []string{a, o}); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("overlapping set: %v", err)
	}
}

func TestMergePartialFileWritesManifest(t *testing.T) {
	dir := t.TempDir()
	const total = 6
	a := filepath.Join(dir, "a.jsonl")
	writeRange(t, a, total, 0, 4, 7)

	out := filepath.Join(dir, "merged.jsonl")
	manifest := filepath.Join(dir, "merged.manifest.json")
	m, err := MergePartialFile(out, manifest, []string{a}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Outcome != OutcomePartial || m.Records != 4 {
		t.Fatalf("manifest = %+v", m)
	}
	ob, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if want := refBytes(t, total)[:lenOfLines(t, total, 4)]; !bytes.Equal(ob, want) {
		t.Fatalf("partial file content:\n%s\nwant:\n%s", ob, want)
	}
	mb, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}
	var back Manifest
	if err := json.Unmarshal(mb, &back); err != nil {
		t.Fatalf("manifest is not JSON: %v\n%s", err, mb)
	}
	if back.Outcome != OutcomePartial || len(back.Missing) != 1 || back.Missing[0] != (IndexRange{4, 6}) {
		t.Fatalf("manifest round trip: %+v", back)
	}
}

// lenOfLines returns the byte length of the first n lines of the
// single-process stream for [0,total).
func lenOfLines(t *testing.T, total, n int) int {
	t.Helper()
	lines := bytes.SplitAfter(refBytes(t, total), []byte("\n"))
	sum := 0
	for i := 0; i < n; i++ {
		sum += len(lines[i])
	}
	return sum
}
