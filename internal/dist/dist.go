// Package dist shards the experiment matrices across processes and
// machines and makes long campaigns resumable.
//
// The sweep and campaign engines flatten their matrices into one index
// space — cells for a sweep, cells × trials for a fault campaign — where
// every index is a pure function of the spec, never of scheduling. That
// purity is what makes distribution trivial to get right: a Plan
// partitions [0, Total) into contiguous slices by a pure function of
// (total, shard, nshards), so any worker can claim its slice with no
// coordination beyond agreeing on the spec and the shard count.
//
// Each shard streams its records through a Journal: a JSONL file framed
// by a header (identifying the plan slice) and a footer (record count +
// CRC-64 of the payload bytes). Appends happen in index order, so an
// interrupted shard resumes from its last complete record — a torn final
// line is discarded and recomputed, which is safe because every record
// is a deterministic function of its index.
//
// Merge reassembles complete shard journals into one stream that is
// byte-identical to the single-process run, verifying record-by-record:
// per-record index sequence, per-shard payload checksum, and exact
// shard-set coverage of the plan. The merged bytes carry no trace of how
// many shards produced them.
package dist

import (
	"flag"
	"fmt"
	"hash/fnv"
	"strconv"
	"strings"
)

// Plan assigns one shard its contiguous slice of a flattened run matrix.
// The slice bounds are a pure function of (Total, Shard, NShards):
// shard s owns [Total*s/NShards, Total*(s+1)/NShards), so the shards
// partition [0, Total) exactly, with sizes differing by at most one.
//
// Contiguity is deliberate: the matrices enumerate trials of a cell (and
// cells of a workload) adjacently, so a contiguous slice keeps a shard's
// trials on as few cells as possible — each worker warms only the
// checkpoints its own cells need — and lets Merge reassemble the
// single-process stream by validated concatenation.
type Plan struct {
	// Spec names the run (sweep or campaign spec name); journals refuse
	// to resume under a different spec name.
	Spec string
	// Fingerprint pins the run's full configuration — everything that
	// determines the record bytes, not just the spec's (often constant)
	// name. Journals and merges refuse to mix plans whose fingerprints
	// differ, so a shard resumed or merged under different flags that
	// happen to produce the same name and total fails loudly instead of
	// silently interleaving records from two different experiments. Set
	// it with Fingerprint over the run's defining strings; zero means
	// "unpinned" (library callers that construct specs in one process).
	Fingerprint uint64
	// Total is the size of the flattened index space.
	Total int
	// Shard/NShards select this worker's slice.
	Shard, NShards int
	// Ranged marks a plan whose slice is the explicit [RangeLo, RangeHi)
	// instead of the shard arithmetic — the coordinator's lease granule.
	// Ranged journals record their bounds in the header, so a range
	// journal can only be resumed or merged as that exact range.
	Ranged           bool
	RangeLo, RangeHi int
}

// NewPlan validates and returns the plan for one shard.
func NewPlan(spec string, total, shard, nshards int) (Plan, error) {
	if total < 0 {
		return Plan{}, fmt.Errorf("dist: negative total %d", total)
	}
	if nshards < 1 {
		return Plan{}, fmt.Errorf("dist: nshards %d, need at least 1", nshards)
	}
	if shard < 0 || shard >= nshards {
		return Plan{}, fmt.Errorf("dist: shard %d out of range [0,%d)", shard, nshards)
	}
	return Plan{Spec: spec, Total: total, Shard: shard, NShards: nshards}, nil
}

// NewRange validates and returns a ranged plan for the explicit slice
// [lo, hi) of a total-index space — the coordinator's lease unit. The
// slice must be non-empty: an empty lease has nothing to journal, and a
// footer over zero records could not distinguish "done" from "never
// ran".
func NewRange(spec string, total, lo, hi int) (Plan, error) {
	if total < 0 {
		return Plan{}, fmt.Errorf("dist: negative total %d", total)
	}
	if lo < 0 || hi > total || lo >= hi {
		return Plan{}, fmt.Errorf("dist: range [%d,%d) invalid for total %d", lo, hi, total)
	}
	return Plan{Spec: spec, Total: total, NShards: 1, Ranged: true, RangeLo: lo, RangeHi: hi}, nil
}

// Lo returns the first global index of the shard's slice.
func (p Plan) Lo() int {
	if p.Ranged {
		return p.RangeLo
	}
	return p.Total * p.Shard / p.NShards
}

// Hi returns one past the last global index of the shard's slice.
func (p Plan) Hi() int {
	if p.Ranged {
		return p.RangeHi
	}
	return p.Total * (p.Shard + 1) / p.NShards
}

// Count returns the number of indices in the shard's slice.
func (p Plan) Count() int { return p.Hi() - p.Lo() }

// Index returns the k-th global index of the slice (k in [0, Count)).
func (p Plan) Index(k int) int { return p.Lo() + k }

// Owns reports whether the shard's slice contains global index i.
func (p Plan) Owns(i int) bool { return i >= p.Lo() && i < p.Hi() }

// Indices enumerates the shard's global indices in ascending order — the
// order the shard runs and journals them.
func (p Plan) Indices() []int {
	out := make([]int, p.Count())
	for k := range out {
		out[k] = p.Lo() + k
	}
	return out
}

// String renders the slice for progress messages: "shard 1/3 [8,16)",
// or "range [8,16)" for a ranged plan.
func (p Plan) String() string {
	if p.Ranged {
		return fmt.Sprintf("range [%d,%d)", p.RangeLo, p.RangeHi)
	}
	return fmt.Sprintf("shard %d/%d [%d,%d)", p.Shard, p.NShards, p.Lo(), p.Hi())
}

// Fingerprint hashes the given strings (FNV-1a 64, length-delimited)
// into a Plan.Fingerprint. Callers pass every run parameter that shapes
// the record stream — the spec's axes and values, the base
// configuration, campaign draw parameters — but nothing that provably
// does not (e.g. the simulation kernel, whose outputs are bit-identical
// by contract and A/B-compared through equal journals in CI).
func Fingerprint(parts ...string) uint64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0}) // delimit, so ("ab","c") != ("a","bc")
	}
	return h.Sum64()
}

// FlagWasSet reports whether the named command-line flag was passed
// explicitly. CLI support for the shard flag wiring both shard-aware
// CLIs share: -journal must reject an explicit -out, but -out also has
// a non-empty default, so presence can't be read from the value.
func FlagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// ParseShard parses a -shard flag value "i/n" (e.g. "0/3"). The empty
// string means unsharded: 0/1.
func ParseShard(s string) (shard, nshards int, err error) {
	if s == "" {
		return 0, 1, nil
	}
	lo, hi, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("dist: shard %q is not of the form i/n", s)
	}
	shard, err = strconv.Atoi(strings.TrimSpace(lo))
	if err != nil {
		return 0, 0, fmt.Errorf("dist: shard %q: %w", s, err)
	}
	nshards, err = strconv.Atoi(strings.TrimSpace(hi))
	if err != nil {
		return 0, 0, fmt.Errorf("dist: shard %q: %w", s, err)
	}
	if nshards < 1 {
		return 0, 0, fmt.Errorf("dist: shard %q: need at least 1 shard", s)
	}
	if shard < 0 || shard >= nshards {
		return 0, 0, fmt.Errorf("dist: shard %q: index out of range [0,%d)", s, nshards)
	}
	return shard, nshards, nil
}
