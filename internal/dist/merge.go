package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"reunion/internal/obs"
)

// MergeInfo summarizes a successful merge.
type MergeInfo struct {
	Spec    string
	NShards int
	// Records is the number of payload records written — always the
	// plan's Total on success.
	Records int
}

// Merge validates the shard journals at paths and writes their records
// to w in global index order, producing a stream byte-identical to the
// single-process run. Paths may arrive in any order; the journals must
// form exactly one complete shard set — same spec and total, nshards
// equal to the number of paths, every shard present once, every journal
// sealed by a verified footer. Ranged journals (coordinator leases) are
// accepted under the same discipline: all journals must then be ranged,
// from one run, and their ranges must tile [0, Total) exactly — no gap,
// no overlap. Each record is verified as it is copied: the payload
// index sequence must match the journal's slice and the payload bytes
// must reproduce the footer checksum. On error the bytes already
// written to w are meaningless; merge to a temporary destination.
func Merge(w io.Writer, paths []string) (*MergeInfo, error) {
	return MergeObs(w, paths, obs.Scope{})
}

// MergeObs is Merge with telemetry: the scope, when enabled, wraps each
// shard's verified copy in a "replay_shard" span and counts merged
// records — it never touches the merged bytes. With a disabled scope it
// is exactly Merge.
func MergeObs(w io.Writer, paths []string, sc obs.Scope) (*MergeInfo, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dist: merge of zero journals")
	}
	shards := make([]*shardFile, 0, len(paths))
	defer func() {
		for _, s := range shards {
			s.f.Close()
		}
	}()
	for _, path := range paths {
		s, err := openShard(path)
		if err != nil {
			return nil, err
		}
		shards = append(shards, s)
	}

	first := shards[0].head
	for _, s := range shards {
		if err := sameRun(s, first); err != nil {
			return nil, err
		}
	}
	var bySlot []*shardFile
	var err error
	if first.Ranged {
		bySlot, err = orderRanged(shards, first.Total)
	} else {
		bySlot, err = orderShards(shards, first.NShards, len(paths))
	}
	if err != nil {
		return nil, err
	}

	var recCounter *obs.Counter
	if m := sc.Metrics; m != nil {
		recCounter = m.Counter("dist_merge_records_total", "Records copied into the merged stream.")
	}
	records := 0
	for _, s := range bySlot {
		sp := sc.Trace.StartSpan("merge", "replay_shard",
			obs.Arg{Key: "path", Val: s.path}, obs.Arg{Key: "shard", Val: s.head.Shard})
		n, err := s.copyVerified(w)
		sp.End(obs.Arg{Key: "records", Val: n}, obs.Arg{Key: "err", Val: err != nil})
		if err != nil {
			return nil, fmt.Errorf("dist: %s: %w", s.path, err)
		}
		recCounter.Add(int64(n))
		records += n
	}
	if records != first.Total {
		// Unreachable if every per-shard verification passed (the plans
		// tile [0,Total)), kept as a last-line invariant check.
		return nil, fmt.Errorf("dist: merged %d records, plan total is %d", records, first.Total)
	}
	nshards := first.NShards
	if first.Ranged {
		nshards = len(bySlot)
	}
	return &MergeInfo{Spec: first.Spec, NShards: nshards, Records: records}, nil
}

// sameRun rejects a journal from a different run than the reference
// header — merging streams of two experiments must fail loudly.
func sameRun(s *shardFile, first header) error {
	if s.head.Spec != first.Spec || s.head.Total != first.Total ||
		s.head.Ranged != first.Ranged || (!first.Ranged && s.head.NShards != first.NShards) {
		return fmt.Errorf("dist: %s is from a different run: spec=%q shards=%d total=%d, want spec=%q shards=%d total=%d",
			s.path, s.head.Spec, s.head.NShards, s.head.Total, first.Spec, first.NShards, first.Total)
	}
	if s.head.Fingerprint != first.Fingerprint {
		return fmt.Errorf("dist: %s was written by a run with a different configuration (fingerprint %016x vs %016x) — same spec name and size, different flags",
			s.path, s.head.Fingerprint, first.Fingerprint)
	}
	return nil
}

// orderShards places classic shard journals into their slots: nshards
// journals, every shard present exactly once.
func orderShards(shards []*shardFile, nshards, given int) ([]*shardFile, error) {
	// The shard-count check precedes the slot allocation: NShards comes
	// from a file header, so it must bound the journals actually given
	// before it sizes anything.
	if given != nshards {
		return nil, fmt.Errorf("dist: run has %d shards but %d journals given", nshards, given)
	}
	bySlot := make([]*shardFile, nshards)
	for _, s := range shards {
		if s.head.Shard < 0 || s.head.Shard >= nshards {
			return nil, fmt.Errorf("dist: %s claims shard %d of %d", s.path, s.head.Shard, nshards)
		}
		if bySlot[s.head.Shard] != nil {
			return nil, fmt.Errorf("dist: shard %d appears twice: %s and %s",
				s.head.Shard, bySlot[s.head.Shard].path, s.path)
		}
		bySlot[s.head.Shard] = s
	}
	for i, s := range bySlot {
		if s == nil {
			return nil, fmt.Errorf("dist: shard %d journal missing", i)
		}
	}
	return bySlot, nil
}

// orderRanged sorts ranged journals by their lower bound and requires
// them to tile [0, total) exactly: the first range starts at 0, each
// range starts where the previous ended, the last ends at total. A gap
// means a lease never completed; an overlap means two leases claim the
// same records — both must fail the merge, never silently drop or
// duplicate records.
func orderRanged(shards []*shardFile, total int) ([]*shardFile, error) {
	ordered := append([]*shardFile(nil), shards...)
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].head.RangeLo != ordered[j].head.RangeLo {
			return ordered[i].head.RangeLo < ordered[j].head.RangeLo
		}
		return ordered[i].head.RangeHi < ordered[j].head.RangeHi
	})
	next := 0
	for _, s := range ordered {
		lo, hi := s.head.RangeLo, s.head.RangeHi
		if lo < 0 || hi > total || lo >= hi {
			return nil, fmt.Errorf("dist: %s claims invalid range [%d,%d) of total %d", s.path, lo, hi, total)
		}
		if lo < next {
			return nil, fmt.Errorf("dist: %s range [%d,%d) overlaps the previous range ending at %d", s.path, lo, hi, next)
		}
		if lo > next {
			return nil, fmt.Errorf("dist: range [%d,%d) journal missing", next, lo)
		}
		next = hi
	}
	if next != total {
		return nil, fmt.Errorf("dist: range [%d,%d) journal missing", next, total)
	}
	return ordered, nil
}

// MergeFile merges into outPath via a temporary file in the same
// directory, renaming over the destination only on success, so a failed
// merge never leaves a truncated or half-verified results file behind.
// A non-nil tee additionally receives the merged bytes as they are
// written (a digest, a progress meter) without a second read of the
// output file.
func MergeFile(outPath string, paths []string, tee io.Writer) (*MergeInfo, error) {
	return MergeFileObs(outPath, paths, tee, obs.Scope{})
}

// MergeFileObs is MergeFile with telemetry: the whole merge runs inside
// a "merge" span and each shard's verified copy gets its own span (see
// MergeObs). With a disabled scope it is exactly MergeFile.
func MergeFileObs(outPath string, paths []string, tee io.Writer, sc obs.Scope) (*MergeInfo, error) {
	sp := sc.Trace.StartSpan("merge", "merge",
		obs.Arg{Key: "out", Val: outPath}, obs.Arg{Key: "shards", Val: len(paths)})
	info, err := mergeFileObs(outPath, paths, tee, sc)
	sp.End(obs.Arg{Key: "err", Val: err != nil})
	return info, err
}

func mergeFileObs(outPath string, paths []string, tee io.Writer, sc obs.Scope) (*MergeInfo, error) {
	tmp, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".merge-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	bw := bufio.NewWriter(tmp)
	var w io.Writer = bw
	if tee != nil {
		w = io.MultiWriter(bw, tee)
	}
	info, err := MergeObs(w, paths, sc)
	if err == nil {
		err = bw.Flush()
	}
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if err := os.Rename(tmp.Name(), outPath); err != nil {
		return nil, err
	}
	return info, nil
}

// shardFile is one journal being merged: header parsed, reader
// positioned at the first payload line.
type shardFile struct {
	path string
	f    *os.File
	r    *bufio.Reader
	head header
}

func openShard(path string) (*shardFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReader(f)
	line, err := r.ReadBytes('\n')
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: %s: reading header: %w", path, err)
	}
	var hl headerLine
	if err := json.Unmarshal(line, &hl); err != nil || hl.Header == nil {
		f.Close()
		return nil, fmt.Errorf("dist: %s is not a shard journal (bad header line)", path)
	}
	if hl.Header.Format != FormatV1 {
		f.Close()
		return nil, fmt.Errorf("dist: %s: unsupported journal format %q", path, hl.Header.Format)
	}
	return &shardFile{path: path, f: f, r: r, head: *hl.Header}, nil
}

// copyVerified streams the shard's payload to w through the shared
// journal verifier (replay in strict mode): every record's index is
// checked against the shard's plan slice, the whole payload against the
// footer checksum, and a missing or short footer is an error. It
// returns the number of records copied.
func (s *shardFile) copyVerified(w io.Writer) (int, error) {
	st, err := replay(s.r, 0, s.head.plan(), true, func(line []byte) error {
		_, werr := w.Write(line)
		return werr
	})
	return st.done, err
}
