// Partial merge: reassemble what a run actually produced, and say
// precisely what is missing. The strict Merge is the right tool for a
// finished run — one incomplete shard fails the whole merge — but an
// operator (or the coordinator's terminal state) also needs the other
// answer: "merge everything that verifies, and give me a machine-
// readable account of the holes". MergePartial is that answer, and the
// Manifest is the account.

package dist

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// Manifest outcome values.
const (
	// OutcomeSuccess: every record of the run verified and was written.
	OutcomeSuccess = "success"
	// OutcomePartial: the verified subset was written; Missing/Failed
	// say which index ranges are not in the output and why.
	OutcomePartial = "partial"
)

// IndexRange is a half-open [Lo, Hi) slice of the flattened index
// space.
type IndexRange struct {
	Lo int `json:"lo"`
	Hi int `json:"hi"`
}

// JournalFailure records one journal that was given to the partial
// merge but did not survive verification — a torn file, a missing or
// contradicted footer, an index-sequence break. Its slice counts as
// missing from the output.
type JournalFailure struct {
	Path string     `json:"path"`
	Slic IndexRange `json:"range"`
	Err  string     `json:"err"`
}

// Manifest is the machine-readable result of a partial merge: which
// slices of the run made it into the output, which did not, and why.
// The coordinator writes one for its partial terminal state, and
// reunion-merge -manifest emits one for operators reassembling an
// interrupted fleet's journals by hand.
type Manifest struct {
	Spec        string `json:"spec"`
	Fingerprint string `json:"fingerprint"`
	Total       int    `json:"total"`
	// Records is the number of verified records written to the output.
	Records int    `json:"records"`
	Outcome string `json:"outcome"` // "success" | "partial"
	// Missing lists the index ranges absent from the output, coalesced
	// and in ascending order — no journal covered them, or the covering
	// journal failed verification.
	Missing []IndexRange `json:"missing,omitempty"`
	// Failed lists the given journals that failed verification.
	Failed []JournalFailure `json:"failed,omitempty"`
}

// Success reports whether the merge covered the whole run.
func (m *Manifest) Success() bool { return m.Outcome == OutcomeSuccess }

// WriteFile writes the manifest as indented JSON via a temporary file
// and rename, so a crashed writer never leaves a torn manifest — the
// file's whole point is to be trusted by tooling.
func (m *Manifest) WriteFile(path string) error {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// MergePartial merges whatever verifies. It accepts any mix of shard
// and ranged journals from one run (same spec, total, fingerprint),
// verifies each journal fully before a single byte of it is written,
// copies the verified slices to w in global index order, and returns a
// Manifest accounting for every index of [0, Total).
//
// The error split is deliberate: journals that are individually broken
// (torn, unsealed, checksum-contradicted) are reported in the manifest
// and their slices counted missing — that is the "partial" outcome the
// caller can act on. A contradictory *set* — journals from different
// runs, or two verified journals claiming overlapping slices — returns
// an error, because no output could be trusted; that is "corrupt", not
// "partial".
func MergePartial(w io.Writer, paths []string) (*Manifest, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("dist: merge of zero journals")
	}

	type member struct {
		path   string
		lo, hi int
	}
	var ok []member
	var failed []JournalFailure
	var first *header
	slice := func(h header) (int, int) { p := h.plan(); return p.Lo(), p.Hi() }

	// Pass 1: verify every journal end to end (headers against the
	// adopted run, every record against the journal's slice, payload
	// against the footer) before anything is written. A verification
	// failure found mid-copy would already have emitted garbage.
	for _, path := range paths {
		s, err := openShard(path)
		if err != nil {
			return nil, err
		}
		if first == nil {
			h := s.head
			first = &h
		} else if err := sameRunLoose(s, *first); err != nil {
			s.f.Close()
			return nil, err
		}
		lo, hi := slice(s.head)
		_, verr := s.copyVerified(io.Discard)
		s.f.Close()
		if verr != nil {
			failed = append(failed, JournalFailure{Path: path, Slic: IndexRange{lo, hi}, Err: verr.Error()})
			continue
		}
		ok = append(ok, member{path, lo, hi})
	}

	// Coverage: verified slices must not overlap (corrupt set), and the
	// gaps between them are the manifest's missing ranges.
	sort.Slice(ok, func(i, j int) bool { return ok[i].lo < ok[j].lo })
	m := &Manifest{Spec: first.Spec, Fingerprint: fmt.Sprintf("%016x", first.Fingerprint), Total: first.Total}
	next := 0
	for _, mem := range ok {
		if mem.lo < next {
			return nil, fmt.Errorf("dist: %s range [%d,%d) overlaps another verified journal's slice ending at %d",
				mem.path, mem.lo, mem.hi, next)
		}
		if mem.lo > next {
			m.Missing = append(m.Missing, IndexRange{next, mem.lo})
		}
		next = mem.hi
	}
	if next < first.Total {
		m.Missing = append(m.Missing, IndexRange{next, first.Total})
	}
	m.Failed = failed

	// Pass 2: copy the verified slices in index order.
	for _, mem := range ok {
		s, err := openShard(mem.path)
		if err != nil {
			return nil, err
		}
		n, err := s.copyVerified(w)
		s.f.Close()
		if err != nil {
			// The file changed between the passes; nothing written is
			// trustworthy now.
			return nil, fmt.Errorf("dist: %s: verified then failed on copy: %w", mem.path, err)
		}
		m.Records += n
	}
	m.Outcome = OutcomePartial
	if len(m.Missing) == 0 && len(m.Failed) == 0 {
		m.Outcome = OutcomeSuccess
	}
	return m, nil
}

// sameRunLoose is sameRun without the shard-count comparison: a partial
// merge accepts any mix of slicings of one run, so only the run
// identity (spec, total, fingerprint) must agree.
func sameRunLoose(s *shardFile, first header) error {
	if s.head.Spec != first.Spec || s.head.Total != first.Total {
		return fmt.Errorf("dist: %s is from a different run: spec=%q total=%d, want spec=%q total=%d",
			s.path, s.head.Spec, s.head.Total, first.Spec, first.Total)
	}
	if s.head.Fingerprint != first.Fingerprint {
		return fmt.Errorf("dist: %s was written by a run with a different configuration (fingerprint %016x vs %016x) — same spec name and size, different flags",
			s.path, s.head.Fingerprint, first.Fingerprint)
	}
	return nil
}

// MergePartialFile is MergePartial with the file discipline of
// MergeFile: output through a temp file and rename (only when at least
// one record verified), the manifest written to manifestPath, and a
// non-nil tee receiving the merged bytes as they are written. An
// all-missing run writes a manifest but no output file.
func MergePartialFile(outPath, manifestPath string, paths []string, tee io.Writer) (*Manifest, error) {
	tmp, err := os.CreateTemp(filepath.Dir(outPath), filepath.Base(outPath)+".merge-*")
	if err != nil {
		return nil, err
	}
	defer os.Remove(tmp.Name())
	var w io.Writer = tmp
	if tee != nil {
		w = io.MultiWriter(tmp, tee)
	}
	m, err := MergePartial(w, paths)
	if err == nil {
		err = tmp.Sync()
	}
	if cerr := tmp.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	if m.Records > 0 {
		if err := os.Rename(tmp.Name(), outPath); err != nil {
			return nil, err
		}
	}
	if manifestPath != "" {
		if err := m.WriteFile(manifestPath); err != nil {
			return m, err
		}
	}
	return m, nil
}
