package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"hash"
	"hash/crc64"
	"io"
	"os"

	"reunion/internal/obs"
	"reunion/internal/sweep"
)

// FormatV1 identifies the journal file format in the header line.
const FormatV1 = "reunion-dist-journal/1"

// crcTable is the CRC-64 (ECMA) polynomial the footer checksum uses.
var crcTable = crc64.MakeTable(crc64.ECMA)

// header is the first line of a journal: which slice of which run the
// file holds, so resume and merge can refuse a journal written under a
// different spec or plan.
type header struct {
	Format      string `json:"format"`
	Spec        string `json:"spec"`
	Fingerprint uint64 `json:"fingerprint,omitempty"`
	Shard       int    `json:"shard"`
	NShards     int    `json:"nshards"`
	Total       int    `json:"total"`
	// Ranged journals (coordinator leases) pin their explicit slice
	// bounds; absent on classic shard journals, so the framing stays
	// FormatV1-compatible in both directions.
	Ranged  bool `json:"ranged,omitempty"`
	RangeLo int  `json:"range_lo,omitempty"`
	RangeHi int  `json:"range_hi,omitempty"`
}

// footer is the last line of a complete journal: the record count and
// the CRC-64 of every payload byte (records including their newlines).
// Its presence marks the shard finished; its checksum lets resume and
// merge distinguish "complete" from "complete-looking but corrupt".
type footer struct {
	Count int    `json:"count"`
	CRC64 string `json:"crc64"`
}

type headerLine struct {
	Header *header `json:"dist_header"`
}

type footerLine struct {
	Footer *footer `json:"dist_footer"`
}

func (p Plan) header() header {
	return header{Format: FormatV1, Spec: p.Spec, Fingerprint: p.Fingerprint,
		Shard: p.Shard, NShards: p.NShards, Total: p.Total,
		Ranged: p.Ranged, RangeLo: p.RangeLo, RangeHi: p.RangeHi}
}

// plan reconstructs the Plan a header pins — the slice identity merge
// and resume verify records against.
func (h header) plan() Plan {
	return Plan{Spec: h.Spec, Fingerprint: h.Fingerprint, Total: h.Total,
		Shard: h.Shard, NShards: h.NShards,
		Ranged: h.Ranged, RangeLo: h.RangeLo, RangeHi: h.RangeHi}
}

func (h header) check(p Plan) error {
	if h.Format != FormatV1 {
		return fmt.Errorf("unsupported journal format %q", h.Format)
	}
	if h.Ranged != p.Ranged || h.RangeLo != p.RangeLo || h.RangeHi != p.RangeHi {
		return fmt.Errorf("journal is for %s, want %s", h.plan(), p)
	}
	if h.Spec != p.Spec || h.Shard != p.Shard || h.NShards != p.NShards || h.Total != p.Total {
		return fmt.Errorf("journal is for spec=%q shard %d/%d total %d, want spec=%q shard %d/%d total %d",
			h.Spec, h.Shard, h.NShards, h.Total, p.Spec, p.Shard, p.NShards, p.Total)
	}
	if h.Fingerprint != p.Fingerprint {
		return fmt.Errorf("journal was written by a run with a different configuration (fingerprint %016x, want %016x) — same spec name and size, different flags",
			h.Fingerprint, p.Fingerprint)
	}
	return nil
}

// Journal is one shard's resumable results file. It implements
// sweep.Sink: records must arrive in the plan's index order (the order
// the engines emit), each is appended as one JSONL payload line whose
// bytes are exactly what the single-process JSONL sink would write, and
// Finish seals the file with the checksummed footer once the slice is
// complete. Close without Finish leaves the journal resumable.
type Journal struct {
	plan     Plan
	path     string
	f        *os.File
	w        *bufio.Writer
	crc      hash.Hash64
	done     int
	failed   int
	complete bool
	closed   bool

	// Telemetry handles (nil when observability is off). Pure observers:
	// they never touch the payload bytes or the checksum.
	recMetric  *obs.Counter
	byteMetric *obs.Counter
	errMetric  *obs.Counter
}

// Create starts a fresh journal at path (truncating any existing file)
// and writes the header immediately, so even a shard killed before its
// first record leaves a resumable file.
func Create(path string, plan Plan) (*Journal, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	j := &Journal{plan: plan, path: path, f: f, w: bufio.NewWriter(f), crc: crc64.New(crcTable)}
	hb, err := json.Marshal(headerLine{Header: ptr(plan.header())})
	if err != nil {
		f.Close()
		return nil, err
	}
	hb = append(hb, '\n')
	if _, err := j.w.Write(hb); err != nil {
		f.Close()
		return nil, err
	}
	if err := j.w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// Open resumes the journal at path: it validates the header against the
// plan, replays the payload — verifying that record k carries global
// index plan.Index(k) — and truncates the file back to the last complete
// record. A torn or index-mismatched tail (the kill-mid-record case) is
// discarded and recomputed — safe, because every record is a pure
// function of its index. A missing file starts fresh; a file whose
// footer verifies is reported complete via Complete. A journal that
// belongs to a different plan (wrong spec, shard, or total) or whose
// footer contradicts its payload checksum is an error, never a silent
// partial resume.
func Open(path string, plan Plan) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return Create(path, plan)
	}
	if err != nil {
		return nil, err
	}
	j, err := scan(f, path, plan)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("dist: resume %s: %w", path, err)
	}
	return j, nil
}

// scan replays an existing journal file and positions it for appending.
func scan(f *os.File, path string, plan Plan) (*Journal, error) {
	r := bufio.NewReader(f)
	headLine, err := r.ReadBytes('\n')
	if err == io.EOF {
		// No complete header (torn first line or empty file): start over.
		f.Close()
		return Create(path, plan)
	}
	if err != nil {
		return nil, err
	}
	var hl headerLine
	if err := json.Unmarshal(headLine, &hl); err != nil || hl.Header == nil {
		return nil, fmt.Errorf("first line is not a journal header")
	}
	if err := hl.Header.check(plan); err != nil {
		return nil, err
	}

	st, err := replay(r, len(headLine), plan, false, nil)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(st.keep); err != nil {
		return nil, err
	}
	if _, err := f.Seek(st.keep, io.SeekStart); err != nil {
		return nil, err
	}
	return &Journal{plan: plan, path: path, f: f, w: bufio.NewWriter(f), crc: st.crc,
		done: st.done, failed: st.failed, complete: st.complete}, nil
}

// replayState is what replay learned about a journal's body.
type replayState struct {
	done, failed int
	crc          hash.Hash64
	// keep is the byte length of the trustworthy prefix: header plus
	// verified payload, plus the footer once complete.
	keep     int64
	complete bool
}

// replay walks a journal body (reader positioned just past the header,
// whose byte length seeds keep), verifying every line against the plan:
// payload records must carry consecutive slice indices, a footer must
// match the payload's count and checksum and fill the whole slice, and
// nothing may follow it. It is the ONE verifier behind both ends of the
// journal contract — resume (strict=false: the walk stops at the first
// torn or mismatched line and reports the verified prefix for
// truncate-and-recompute) and merge (strict=true: any torn, mismatched,
// or missing piece, including a missing footer, is an error) — so
// "complete" and "corrupt" cannot mean different things to the two.
// onPayload, when non-nil, receives each verified payload line.
func replay(r *bufio.Reader, headerLen int, plan Plan, strict bool, onPayload func([]byte) error) (replayState, error) {
	st := replayState{crc: crc64.New(crcTable), keep: int64(headerLen)}
	for {
		line, err := r.ReadBytes('\n')
		if err == io.EOF {
			if strict {
				return st, fmt.Errorf("journal has no footer (shard incomplete — run it to completion or -resume it first)")
			}
			// A torn final line (or a clean kill): recompute from here.
			return st, nil
		}
		if err != nil {
			return st, err
		}
		var fl footerLine
		if json.Unmarshal(line, &fl) == nil && fl.Footer != nil {
			if _, err := r.Peek(1); err != io.EOF {
				return st, fmt.Errorf("data after footer")
			}
			if fl.Footer.Count != st.done || fl.Footer.CRC64 != crcHex(st.crc) {
				return st, fmt.Errorf("footer mismatch: footer says %d records crc %s, payload has %d records crc %s",
					fl.Footer.Count, fl.Footer.CRC64, st.done, crcHex(st.crc))
			}
			if st.done != plan.Count() {
				// A footer consistent with its payload but short of the
				// slice: sealed-but-incomplete fails at resume exactly as
				// it fails at merge.
				return st, fmt.Errorf("journal sealed with %d records, shard slice needs %d", st.done, plan.Count())
			}
			st.keep += int64(len(line))
			st.complete = true
			return st, nil
		}
		var rec struct {
			Index *int   `json:"index"`
			Err   string `json:"err"`
		}
		if st.done >= plan.Count() || json.Unmarshal(line, &rec) != nil || rec.Index == nil || *rec.Index != plan.Index(st.done) {
			if strict {
				if rec.Index == nil {
					return st, fmt.Errorf("record %d is not a valid payload line", st.done)
				}
				return st, fmt.Errorf("record %d carries index %d, plan expects %d", st.done, *rec.Index, plan.Index(st.done))
			}
			// An intact line that is not the expected record: the tail is
			// untrustworthy. Drop it and everything after; the records are
			// deterministic, so recomputing is always safe.
			return st, nil
		}
		if onPayload != nil {
			if err := onPayload(line); err != nil {
				return st, err
			}
		}
		if rec.Err != "" {
			st.failed++
		}
		st.crc.Write(line)
		st.keep += int64(len(line))
		st.done++
	}
}

// OpenOrCreate resolves a CLI's -journal/-resume pair: Open (resume
// from the last complete record) when resume is set, Create (start the
// slice fresh, truncating any previous attempt) otherwise.
func OpenOrCreate(path string, plan Plan, resume bool) (*Journal, error) {
	if resume {
		return Open(path, plan)
	}
	return Create(path, plan)
}

// OpenOrCreateObs is OpenOrCreate with telemetry attached: a resume's
// header-validate-and-replay is wrapped in a "journal_replay" span, and
// the returned journal counts its appended records and bytes under the
// scope's registry. With a disabled scope it is exactly OpenOrCreate.
func OpenOrCreateObs(path string, plan Plan, resume bool, sc obs.Scope) (*Journal, error) {
	var sp *obs.Span
	if resume {
		sp = sc.Trace.StartSpan("journal", "journal_replay",
			obs.Arg{Key: "path", Val: path}, obs.Arg{Key: "shard", Val: plan.Shard})
	}
	j, err := OpenOrCreate(path, plan, resume)
	if err != nil {
		sp.End(obs.Arg{Key: "err", Val: true})
		return nil, err
	}
	sp.End(obs.Arg{Key: "replayed", Val: j.done})
	j.Observe(sc)
	return j, nil
}

// Observe attaches telemetry to subsequent Writes: counters for records,
// bytes, and error records appended, labeled with the journal's shard.
func (j *Journal) Observe(sc obs.Scope) {
	m := sc.Metrics
	if m == nil {
		return
	}
	shard := obs.L("shard", fmt.Sprintf("%d", j.plan.Shard))
	j.recMetric = m.Counter("dist_journal_records_total", "Records appended to the shard journal.", shard)
	j.byteMetric = m.Counter("dist_journal_bytes_total", "Payload bytes appended to the shard journal.", shard)
	j.errMetric = m.Counter("dist_journal_error_records_total", "Error records appended to the shard journal.", shard)
}

// SealOrClose is the one correct way to put a journal down after a run:
// a fully successful slice is sealed with its footer (Finish); any
// failure leaves the journal footerless — resumable — and the run's
// error is returned unchanged. Both CLIs share this epilogue so the
// sealing contract cannot drift between them.
func SealOrClose(j *Journal, runErr error) error {
	if runErr == nil {
		return j.Finish()
	}
	j.Close() // best-effort flush; the run error is what matters
	return runErr
}

// Plan returns the slice this journal records.
func (j *Journal) Plan() Plan { return j.plan }

// Done returns the number of records already journaled; the shard's next
// record must carry global index Plan().Index(Done()).
func (j *Journal) Done() int { return j.done }

// Remaining returns the shard's still-unjournaled global indices — what
// a resumed shard passes to the engines.
func (j *Journal) Remaining() []int { return j.plan.Indices()[j.done:] }

// Complete reports whether the journal carries a verified footer (the
// shard finished; nothing to run).
func (j *Journal) Complete() bool { return j.complete }

// Failed counts the journal's error records — runs that failed and were
// journaled as deterministic error records, both in this process and in
// the replayed prefix of a resumed journal. A CLI's exit code must
// reflect the whole slice, not just the records run since the last
// resume.
func (j *Journal) Failed() int { return j.failed }

// Write appends one record. Records must arrive in the plan's index
// order; anything else means the caller and the journal disagree about
// the resume point, which must fail loudly rather than corrupt the file.
func (j *Journal) Write(rec sweep.Record) error {
	if j.closed || j.complete {
		return fmt.Errorf("dist: write to %s journal", map[bool]string{true: "a completed", false: "a closed"}[j.complete])
	}
	if j.done >= j.plan.Count() {
		return fmt.Errorf("dist: record %d past the shard's %d-record slice", rec.Index, j.plan.Count())
	}
	if want := j.plan.Index(j.done); rec.Index != want {
		return fmt.Errorf("dist: out-of-order record: got index %d, want %d", rec.Index, want)
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	j.crc.Write(b)
	if _, err := j.w.Write(b); err != nil {
		return err
	}
	j.done++
	if rec.Err != "" {
		j.failed++
		j.errMetric.Inc()
	}
	j.recMetric.Inc()
	j.byteMetric.Add(int64(len(b)))
	return nil
}

// WriteLine appends one pre-encoded payload line — a single JSONL
// record including its trailing newline, byte-for-byte as the producer
// emitted it. The coordinator uses it to journal worker-streamed
// records without a decode/re-encode round trip that could perturb the
// bytes (float formatting, key order); the index-order discipline of
// Write still applies, so a wrong, duplicated, or out-of-order line
// fails loudly instead of corrupting the file.
func (j *Journal) WriteLine(line []byte) error {
	if j.closed || j.complete {
		return fmt.Errorf("dist: write to %s journal", map[bool]string{true: "a completed", false: "a closed"}[j.complete])
	}
	if len(line) == 0 || line[len(line)-1] != '\n' || bytes.IndexByte(line, '\n') != len(line)-1 {
		return fmt.Errorf("dist: WriteLine needs exactly one newline-terminated record line")
	}
	var rec struct {
		Index *int   `json:"index"`
		Err   string `json:"err"`
	}
	if err := json.Unmarshal(line, &rec); err != nil || rec.Index == nil {
		return fmt.Errorf("dist: WriteLine payload is not a record line")
	}
	if j.done >= j.plan.Count() {
		return fmt.Errorf("dist: record %d past the shard's %d-record slice", *rec.Index, j.plan.Count())
	}
	if want := j.plan.Index(j.done); *rec.Index != want {
		return fmt.Errorf("dist: out-of-order record: got index %d, want %d", *rec.Index, want)
	}
	j.crc.Write(line)
	if _, err := j.w.Write(line); err != nil {
		return err
	}
	j.done++
	if rec.Err != "" {
		j.failed++
		j.errMetric.Inc()
	}
	j.recMetric.Inc()
	j.byteMetric.Add(int64(len(line)))
	return nil
}

// Finish seals a complete journal: it verifies every slice record was
// written, appends the checksummed footer, and syncs and closes the
// file. Finishing an already-complete journal just closes it.
func (j *Journal) Finish() error {
	if j.closed {
		return fmt.Errorf("dist: Finish on a closed journal")
	}
	if !j.complete {
		if j.done != j.plan.Count() {
			return fmt.Errorf("dist: Finish with %d of %d records journaled", j.done, j.plan.Count())
		}
		fb, err := json.Marshal(footerLine{Footer: &footer{Count: j.done, CRC64: crcHex(j.crc)}})
		if err != nil {
			return err
		}
		fb = append(fb, '\n')
		if _, err := j.w.Write(fb); err != nil {
			return err
		}
		j.complete = true
	}
	return j.close(true)
}

// Close flushes and closes without writing a footer, leaving the journal
// resumable. It satisfies sweep.Sink.Close and is safe to call after
// Finish (a no-op then).
func (j *Journal) Close() error {
	if j.closed {
		return nil
	}
	return j.close(false)
}

func (j *Journal) close(sync bool) error {
	j.closed = true
	err := j.w.Flush()
	if sync {
		if serr := j.f.Sync(); err == nil {
			err = serr
		}
	}
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	return err
}

func crcHex(h hash.Hash64) string { return fmt.Sprintf("%016x", h.Sum64()) }

func ptr[T any](v T) *T { return &v }
