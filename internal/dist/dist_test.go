package dist

import (
	"bytes"
	"fmt"
	"hash/crc64"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reunion/internal/sweep"
)

// rec fabricates a deterministic record for global index i, the way the
// engines' records are pure functions of their index.
func rec(i int) sweep.Record {
	return sweep.Record{
		Sweep:   "t",
		Index:   i,
		Labels:  map[string]string{"cell": fmt.Sprintf("c%02d", i/3), "trial": fmt.Sprintf("%d", i%3)},
		Metrics: map[string]float64{"v": float64(i) * 1.5, "sq": float64(i * i)},
	}
}

// refBytes renders the single-process JSONL stream for [0, total).
func refBytes(t *testing.T, total int) []byte {
	t.Helper()
	var buf bytes.Buffer
	s := sweep.NewJSONL(&buf)
	for i := 0; i < total; i++ {
		if err := s.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// writeShard journals the plan's full slice and finishes it.
func writeShard(t *testing.T, path string, p Plan) {
	t.Helper()
	j, err := Create(path, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p.Indices() {
		if err := j.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestPlanPartitions(t *testing.T) {
	for _, tc := range []struct{ total, nshards int }{
		{0, 1}, {0, 4}, {1, 1}, {1, 3}, {7, 3}, {8, 3}, {9, 3}, {100, 7}, {5, 8},
	} {
		seen := make([]int, tc.total)
		prevHi := 0
		for s := 0; s < tc.nshards; s++ {
			p, err := NewPlan("x", tc.total, s, tc.nshards)
			if err != nil {
				t.Fatal(err)
			}
			if p.Lo() != prevHi {
				t.Fatalf("total=%d n=%d shard %d: lo %d, want contiguous %d", tc.total, tc.nshards, s, p.Lo(), prevHi)
			}
			prevHi = p.Hi()
			if got := len(p.Indices()); got != p.Count() {
				t.Fatalf("Indices len %d != Count %d", got, p.Count())
			}
			if min, max := tc.total/tc.nshards, (tc.total+tc.nshards-1)/tc.nshards; p.Count() < min || p.Count() > max {
				t.Fatalf("total=%d n=%d shard %d: count %d outside [%d,%d]", tc.total, tc.nshards, s, p.Count(), min, max)
			}
			for _, i := range p.Indices() {
				if !p.Owns(i) {
					t.Fatalf("shard %d does not own its own index %d", s, i)
				}
				seen[i]++
			}
		}
		if prevHi != tc.total {
			t.Fatalf("total=%d n=%d: shards end at %d", tc.total, tc.nshards, prevHi)
		}
		for i, n := range seen {
			if n != 1 {
				t.Fatalf("total=%d n=%d: index %d covered %d times", tc.total, tc.nshards, i, n)
			}
		}
	}
}

func TestNewPlanRejectsBadShapes(t *testing.T) {
	for _, tc := range []struct{ total, shard, nshards int }{
		{-1, 0, 1}, {4, 0, 0}, {4, -1, 3}, {4, 3, 3}, {4, 5, 3},
	} {
		if _, err := NewPlan("x", tc.total, tc.shard, tc.nshards); err == nil {
			t.Fatalf("NewPlan(%d,%d,%d) accepted", tc.total, tc.shard, tc.nshards)
		}
	}
}

func TestParseShard(t *testing.T) {
	for _, tc := range []struct {
		in             string
		shard, nshards int
		ok             bool
	}{
		{"", 0, 1, true},
		{"0/1", 0, 1, true},
		{"2/3", 2, 3, true},
		{" 1 / 4 ", 1, 4, true},
		{"3/3", 0, 0, false},
		{"-1/3", 0, 0, false},
		{"1", 0, 0, false},
		{"a/b", 0, 0, false},
		{"1/0", 0, 0, false},
	} {
		s, n, err := ParseShard(tc.in)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseShard(%q): err=%v, want ok=%v", tc.in, err, tc.ok)
		}
		if tc.ok && (s != tc.shard || n != tc.nshards) {
			t.Fatalf("ParseShard(%q) = %d/%d, want %d/%d", tc.in, s, n, tc.shard, tc.nshards)
		}
	}
}

func TestMergeByteIdentical(t *testing.T) {
	const total, nshards = 17, 4
	dir := t.TempDir()
	var paths []string
	for s := 0; s < nshards; s++ {
		p, err := NewPlan("t", total, s, nshards)
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, fmt.Sprintf("shard-%d.jsonl", s))
		writeShard(t, path, p)
		paths = append(paths, path)
	}
	// Shuffled path order must not matter.
	shuffled := []string{paths[2], paths[0], paths[3], paths[1]}
	var buf bytes.Buffer
	info, err := Merge(&buf, shuffled)
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != total || info.NShards != nshards || info.Spec != "t" {
		t.Fatalf("info = %+v", info)
	}
	if !bytes.Equal(buf.Bytes(), refBytes(t, total)) {
		t.Fatal("merged stream differs from single-process stream")
	}

	out := filepath.Join(dir, "merged.jsonl")
	var tee bytes.Buffer
	if _, err := MergeFile(out, paths, &tee); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(tee.Bytes(), refBytes(t, total)) {
		t.Fatal("MergeFile tee differs from the merged bytes")
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, refBytes(t, total)) {
		t.Fatal("MergeFile output differs from single-process stream")
	}
}

func TestMergeEmptyShards(t *testing.T) {
	// More shards than records: some slices are empty, the merge must
	// still reassemble the full stream.
	const total, nshards = 2, 5
	dir := t.TempDir()
	var paths []string
	for s := 0; s < nshards; s++ {
		p, _ := NewPlan("t", total, s, nshards)
		path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", s))
		writeShard(t, path, p)
		paths = append(paths, path)
	}
	var buf bytes.Buffer
	if _, err := Merge(&buf, paths); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), refBytes(t, total)) {
		t.Fatal("merged stream differs")
	}
}

func TestJournalResumeAfterCleanKill(t *testing.T) {
	p, _ := NewPlan("t", 10, 1, 2) // indices 5..9
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p.Indices()[:2] {
		if err := j.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil { // kill between records: no footer
		t.Fatal(err)
	}

	j2, err := Open(path, p)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Complete() || j2.Done() != 2 {
		t.Fatalf("resume: complete=%v done=%d, want incomplete done=2", j2.Complete(), j2.Done())
	}
	if got, want := j2.Remaining(), p.Indices()[2:]; len(got) != len(want) || got[0] != want[0] {
		t.Fatalf("Remaining = %v, want %v", got, want)
	}
	for _, i := range j2.Remaining() {
		if err := j2.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Finish(); err != nil {
		t.Fatal(err)
	}

	// A finished shard resumes as complete, and writes are refused.
	j3, err := Open(path, p)
	if err != nil {
		t.Fatal(err)
	}
	if !j3.Complete() || j3.Done() != p.Count() {
		t.Fatalf("finished journal: complete=%v done=%d", j3.Complete(), j3.Done())
	}
	if err := j3.Write(rec(5)); err == nil {
		t.Fatal("write to a complete journal succeeded")
	}
	if err := j3.Finish(); err != nil {
		t.Fatal(err)
	}
}

func TestJournalResumeAfterMidRecordKill(t *testing.T) {
	p, _ := NewPlan("t", 6, 0, 1)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeShard(t, path, p)
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Chop into the footer AND the last record: the torn tail must be
	// dropped, the last record recomputed, the footer rewritten.
	if err := os.WriteFile(path, want[:len(want)-80], 0o644); err != nil {
		t.Fatal(err)
	}
	j, err := Open(path, p)
	if err != nil {
		t.Fatal(err)
	}
	if j.Complete() {
		t.Fatal("truncated journal reported complete")
	}
	if j.Done() >= p.Count() {
		t.Fatalf("done=%d after truncation of the last record", j.Done())
	}
	for _, i := range j.Remaining() {
		if err := j.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Finish(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed journal differs from the straight-through journal")
	}
}

func TestJournalRejectsWrongPlanAndOrder(t *testing.T) {
	p, _ := NewPlan("t", 10, 0, 2)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeShard(t, path, p)

	other, _ := NewPlan("t", 10, 1, 2)
	if _, err := Open(path, other); err == nil {
		t.Fatal("journal resumed under a different shard")
	}
	renamed, _ := NewPlan("u", 10, 0, 2)
	if _, err := Open(path, renamed); err == nil {
		t.Fatal("journal resumed under a different spec")
	}

	p2, _ := NewPlan("t", 10, 1, 2)
	j, err := Create(filepath.Join(t.TempDir(), "k.jsonl"), p2)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Write(rec(0)); err == nil { // shard 1 starts at 5
		t.Fatal("out-of-order record accepted")
	}
	if err := j.Finish(); err == nil {
		t.Fatal("Finish on an incomplete journal succeeded")
	}
	j.Close()
}

func TestJournalCorruptFooterFailsLoudly(t *testing.T) {
	p, _ := NewPlan("t", 4, 0, 1)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	writeShard(t, path, p)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip one hex digit inside the footer checksum (keeping the line a
	// complete, parseable footer).
	s := string(b)
	i := strings.LastIndex(s, `"crc64":"`) + len(`"crc64":"`)
	flip := byte('0')
	if s[i] == '0' {
		flip = 'f'
	}
	corrupted := []byte(s[:i] + string(flip) + s[i+1:])
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, p); err == nil {
		t.Fatal("resume accepted a checksum-mismatched footer")
	}
	if _, err := Merge(&bytes.Buffer{}, []string{path}); err == nil {
		t.Fatal("merge accepted a checksum-mismatched footer")
	}
}

func TestMergeRejectsBadShardSets(t *testing.T) {
	const total, nshards = 9, 3
	dir := t.TempDir()
	paths := make([]string, nshards)
	for s := 0; s < nshards; s++ {
		p, _ := NewPlan("t", total, s, nshards)
		paths[s] = filepath.Join(dir, fmt.Sprintf("s%d.jsonl", s))
		writeShard(t, paths[s], p)
	}

	if _, err := Merge(&bytes.Buffer{}, paths[:2]); err == nil {
		t.Fatal("merge accepted a missing shard")
	}
	if _, err := Merge(&bytes.Buffer{}, []string{paths[0], paths[1], paths[1]}); err == nil {
		t.Fatal("merge accepted a duplicate shard")
	}
	if _, err := Merge(&bytes.Buffer{}, nil); err == nil {
		t.Fatal("merge accepted zero journals")
	}

	// An unfinished journal (no footer) must be rejected, not merged.
	p0, _ := NewPlan("t", total, 0, nshards)
	unfinished := filepath.Join(dir, "unfinished.jsonl")
	j, err := Create(unfinished, p0)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p0.Indices() {
		if err := j.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	if _, err := Merge(&bytes.Buffer{}, []string{unfinished, paths[1], paths[2]}); err == nil {
		t.Fatal("merge accepted a footerless journal")
	}

	// A journal from a different run mixed in.
	pOther, _ := NewPlan("other", total, 0, nshards)
	otherPath := filepath.Join(dir, "other.jsonl")
	writeShard(t, otherPath, pOther)
	if _, err := Merge(&bytes.Buffer{}, []string{otherPath, paths[1], paths[2]}); err == nil {
		t.Fatal("merge accepted a journal from a different spec")
	}
}

// TestFingerprintPinsRunConfiguration: a journal written under one run
// configuration must refuse to resume — and merge must refuse to mix —
// a plan whose fingerprint differs, even when spec name, size, and
// shard shape all coincide (e.g. the same CLI matrix with one flag
// changed).
func TestFingerprintPinsRunConfiguration(t *testing.T) {
	if Fingerprint("a", "bc") == Fingerprint("ab", "c") {
		t.Fatal("fingerprint is not length-delimited")
	}
	const total, nshards = 6, 2
	dir := t.TempDir()
	mkPlan := func(s int, fp uint64) Plan {
		p, err := NewPlan("t", total, s, nshards)
		if err != nil {
			t.Fatal(err)
		}
		p.Fingerprint = fp
		return p
	}
	fpA := Fingerprint("latencies:0,10")
	fpB := Fingerprint("latencies:0,20")

	path := filepath.Join(dir, "s0.jsonl")
	j, err := Create(path, mkPlan(0, fpA))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Write(rec(0)); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if _, err := Open(path, mkPlan(0, fpB)); err == nil {
		t.Fatal("journal resumed under a different run fingerprint")
	}
	jr, err := Open(path, mkPlan(0, fpA))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range jr.Remaining() {
		if err := jr.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jr.Finish(); err != nil {
		t.Fatal(err)
	}

	other := filepath.Join(dir, "s1.jsonl")
	jo, err := Create(other, mkPlan(1, fpB))
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range jo.plan.Indices() {
		if err := jo.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := jo.Finish(); err != nil {
		t.Fatal(err)
	}
	if _, err := Merge(&bytes.Buffer{}, []string{path, other}); err == nil {
		t.Fatal("merge mixed shards from runs with different fingerprints")
	}
}

// TestShortSealedJournalFailsBothEnds: a footer self-consistent with a
// payload that is shorter than the shard's slice must be rejected by
// resume exactly as merge rejects it — "complete" must mean the same
// thing at both ends of the contract.
func TestShortSealedJournalFailsBothEnds(t *testing.T) {
	p, _ := NewPlan("t", 6, 0, 1)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, p)
	if err != nil {
		t.Fatal(err)
	}
	for _, i := range p.Indices()[:2] {
		if err := j.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	j.Close() // 2 of 6 records, no footer

	// Hand-seal the short journal with a footer that matches its payload.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(b, []byte("\n"))
	crc := crc64.New(crcTable)
	for _, l := range lines[1:] { // skip header
		crc.Write(l)
	}
	foot := fmt.Sprintf(`{"dist_footer":{"count":2,"crc64":"%s"}}`+"\n", crcHex(crc))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(foot); err != nil {
		t.Fatal(err)
	}
	f.Close()

	if _, err := Open(path, p); err == nil {
		t.Fatal("resume accepted a sealed journal shorter than its slice")
	}
	if _, err := Merge(&bytes.Buffer{}, []string{path}); err == nil {
		t.Fatal("merge accepted a sealed journal shorter than its slice")
	}
}

// TestFailedRecordsSurviveResume: error records journaled before a kill
// still count after resume, so a CLI exit code reflects the whole
// slice, not just the post-resume records.
func TestFailedRecordsSurviveResume(t *testing.T) {
	p, _ := NewPlan("t", 4, 0, 1)
	path := filepath.Join(t.TempDir(), "j.jsonl")
	j, err := Create(path, p)
	if err != nil {
		t.Fatal(err)
	}
	bad := rec(0)
	bad.Err = "boom"
	bad.Metrics = nil
	if err := j.Write(bad); err != nil {
		t.Fatal(err)
	}
	if err := j.Write(rec(1)); err != nil {
		t.Fatal(err)
	}
	if j.Failed() != 1 {
		t.Fatalf("Failed = %d before kill, want 1", j.Failed())
	}
	j.Close()

	j2, err := Open(path, p)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Failed() != 1 {
		t.Fatalf("Failed = %d after resume, want 1", j2.Failed())
	}
	for _, i := range j2.Remaining() {
		if err := j2.Write(rec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := j2.Finish(); err != nil {
		t.Fatal(err)
	}
	if j2.Failed() != 1 {
		t.Fatalf("Failed = %d after Finish, want 1", j2.Failed())
	}
}
