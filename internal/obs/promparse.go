package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// PromSample is one parsed sample line of a Prometheus text exposition.
type PromSample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// PromFamily is one parsed metric family: its TYPE, optional HELP, and
// samples in file order.
type PromFamily struct {
	Name    string
	Help    string
	Type    string
	Samples []PromSample
}

// ParsePrometheus is a strict parser for the subset of the Prometheus
// text exposition format (version 0.0.4) this package emits. It exists
// so tests can round-trip /metrics output through an independent check:
// every sample line must parse, every sample must belong to a family
// declared by a preceding # TYPE line, histogram buckets must be
// cumulative and monotone and end at le="+Inf" matching _count. It is
// not a general-purpose scraper.
func ParsePrometheus(r io.Reader) ([]PromFamily, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var fams []PromFamily
	byName := map[string]*PromFamily{}
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if name == "" {
				return nil, fmt.Errorf("line %d: HELP without metric name", lineNo)
			}
			f := ensureFamily(&fams, byName, name)
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok || name == "" {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			f := ensureFamily(&fams, byName, name)
			if f.Type != "" {
				return nil, fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		fam := familyOf(byName, s.Name)
		if fam == nil {
			return nil, fmt.Errorf("line %d: sample %q has no preceding # TYPE", lineNo, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for i := range fams {
		if err := checkFamily(&fams[i]); err != nil {
			return nil, err
		}
	}
	return fams, nil
}

func ensureFamily(fams *[]PromFamily, byName map[string]*PromFamily, name string) *PromFamily {
	if f, ok := byName[name]; ok {
		return f
	}
	*fams = append(*fams, PromFamily{Name: name})
	f := &(*fams)[len(*fams)-1]
	byName[name] = f
	return f
}

// familyOf resolves a sample name to its family, stripping the
// histogram suffixes (_bucket/_sum/_count) when the base name is a
// declared histogram.
func familyOf(byName map[string]*PromFamily, sample string) *PromFamily {
	if f, ok := byName[sample]; ok {
		return f
	}
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(sample, suf)
		if base == sample {
			continue
		}
		if f, ok := byName[base]; ok && f.Type == "histogram" {
			return f
		}
	}
	return nil
}

// parseSample parses `name{k="v",...} value`.
func parseSample(line string) (PromSample, error) {
	s := PromSample{Labels: map[string]string{}}
	rest := line
	brace := strings.IndexByte(rest, '{')
	if brace >= 0 {
		s.Name = rest[:brace]
		end := strings.LastIndexByte(rest, '}')
		if end < brace {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		s.Labels, err = parseLabels(rest[brace+1 : end])
		if err != nil {
			return s, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		var ok bool
		s.Name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return s, fmt.Errorf("sample %q has no value", line)
		}
	}
	if s.Name == "" || !validName(s.Name) {
		return s, fmt.Errorf("invalid metric name in %q", line)
	}
	// the emitter writes no timestamps, so the remainder is the value
	val := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", val, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(s string) (map[string]string, error) {
	out := map[string]string{}
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, fmt.Errorf("malformed label pair in %q", s)
		}
		key := s[:eq]
		if !validName(key) {
			return nil, fmt.Errorf("invalid label name %q", key)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value is not quoted", key)
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' && i+1 < len(s) {
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				default:
					return nil, fmt.Errorf("bad escape \\%c in label %q", s[i], key)
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return nil, fmt.Errorf("unterminated value for label %q", key)
		}
		out[key] = b.String()
		s = s[i+1:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	return out, nil
}

// checkFamily enforces the per-type invariants — for histograms, that
// each label set's buckets are cumulative-monotone, end at le="+Inf",
// and agree with _count.
func checkFamily(f *PromFamily) error {
	if f.Type == "" {
		return fmt.Errorf("metric %q has samples but no TYPE", f.Name)
	}
	if f.Type != "histogram" {
		return nil
	}
	// Group by the non-le label signature.
	type histState struct {
		buckets []PromSample
		sum     *float64
		count   *float64
	}
	groups := map[string]*histState{}
	sig := func(labels map[string]string) string {
		keys := make([]string, 0, len(labels))
		for k := range labels {
			if k != "le" {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var b strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&b, "%s=%q,", k, labels[k])
		}
		return b.String()
	}
	get := func(labels map[string]string) *histState {
		k := sig(labels)
		g, ok := groups[k]
		if !ok {
			g = &histState{}
			groups[k] = g
		}
		return g
	}
	for _, s := range f.Samples {
		switch {
		case s.Name == f.Name+"_bucket":
			if _, ok := s.Labels["le"]; !ok {
				return fmt.Errorf("histogram %q bucket without le label", f.Name)
			}
			g := get(s.Labels)
			g.buckets = append(g.buckets, s)
		case s.Name == f.Name+"_sum":
			v := s.Value
			get(s.Labels).sum = &v
		case s.Name == f.Name+"_count":
			v := s.Value
			get(s.Labels).count = &v
		default:
			return fmt.Errorf("histogram %q has stray sample %q", f.Name, s.Name)
		}
	}
	for k, g := range groups {
		if len(g.buckets) == 0 {
			return fmt.Errorf("histogram %q series {%s} has no buckets", f.Name, k)
		}
		if g.sum == nil || g.count == nil {
			return fmt.Errorf("histogram %q series {%s} missing _sum or _count", f.Name, k)
		}
		last := g.buckets[len(g.buckets)-1]
		if last.Labels["le"] != "+Inf" {
			return fmt.Errorf("histogram %q series {%s} does not end at le=\"+Inf\"", f.Name, k)
		}
		if last.Value != *g.count {
			return fmt.Errorf("histogram %q series {%s}: +Inf bucket %v != count %v", f.Name, k, last.Value, *g.count)
		}
		prevLe := "" // emitter writes le bounds in ascending numeric order
		prev := -1.0
		for _, b := range g.buckets {
			if b.Value < prev {
				return fmt.Errorf("histogram %q series {%s}: bucket le=%q count %v below previous %v (not cumulative)",
					f.Name, k, b.Labels["le"], b.Value, prev)
			}
			prev = b.Value
			if le := b.Labels["le"]; le != "+Inf" {
				cur, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return fmt.Errorf("histogram %q: bad le %q", f.Name, le)
				}
				if prevLe != "" {
					p, _ := strconv.ParseFloat(prevLe, 64)
					if cur <= p {
						return fmt.Errorf("histogram %q: le bounds not ascending (%q after %q)", f.Name, le, prevLe)
					}
				}
				prevLe = le
			}
		}
	}
	return nil
}
