package obs

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMiddlewareMetrics(t *testing.T) {
	reg := NewRegistry()
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/missing" {
			http.NotFound(w, r)
			return
		}
		w.Write([]byte("hello"))
	})
	srv := httptest.NewServer(Middleware("ckpt", reg, inner))
	defer srv.Close()

	for i := 0; i < 3; i++ {
		resp, err := http.Get(srv.URL + "/ok")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	resp, err := http.Get(srv.URL + "/missing")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	body := strings.NewReader("payload")
	req, _ := http.NewRequest(http.MethodPut, srv.URL+"/ok", body)
	req.ContentLength = 7
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	get := func(name string, labels ...Label) int64 {
		return reg.Counter(name, "", labels...).Value()
	}
	h := L("handler", "ckpt")
	if got := get("http_requests_total", h, L("method", "GET"), L("code", "200")); got != 3 {
		t.Fatalf("GET 200 count = %d, want 3", got)
	}
	if got := get("http_requests_total", h, L("method", "GET"), L("code", "404")); got != 1 {
		t.Fatalf("GET 404 count = %d, want 1", got)
	}
	if got := get("http_requests_total", h, L("method", "PUT"), L("code", "200")); got != 1 {
		t.Fatalf("PUT 200 count = %d, want 1", got)
	}
	if got := get("http_request_bytes_total", h); got != 7 {
		t.Fatalf("request bytes = %d, want 7", got)
	}
	if got := get("http_response_bytes_total", h); got < 3*5 {
		t.Fatalf("response bytes = %d, want >= 15", got)
	}
	hist := reg.Histogram("http_request_duration_us", "", h, L("method", "GET")).Snapshot()
	if n := hist.N(); n != 4 {
		t.Fatalf("GET duration observations = %d, want 4", n)
	}
}

func TestMiddlewareNilRegistryPassthrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {})
	if got := Middleware("h", nil, inner); got == nil {
		t.Fatal("nil registry middleware must still serve")
	}
	// Must be the unwrapped handler (no allocation per request when off).
	rec := httptest.NewRecorder()
	Middleware("h", nil, inner).ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
}

func TestMetricsHandler(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x_total", "things").Add(4)
	rec := httptest.NewRecorder()
	MetricsHandler(reg).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	fams, err := ParsePrometheus(rec.Body)
	if err != nil {
		t.Fatalf("/metrics body failed parse: %v", err)
	}
	if len(fams) != 1 || fams[0].Samples[0].Value != 4 {
		t.Fatalf("parsed families: %+v", fams)
	}
}

func TestHealthzHandler(t *testing.T) {
	rec := httptest.NewRecorder()
	HealthzHandler(nil).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	boom := func() error { return &time.ParseError{} }
	HealthzHandler(boom).ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("failing check must 503, got %d", rec.Code)
	}
}
