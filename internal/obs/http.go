package obs

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// statusRecorder wraps a ResponseWriter to capture the status code and
// response byte count for the middleware's metrics.
type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	if r.status == 0 {
		r.status = http.StatusOK
	}
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// Middleware wraps an HTTP handler with request/status/latency/bytes
// metrics under the given registry:
//
//	http_requests_total{handler,method,code}
//	http_request_duration_us{handler,method}   (histogram)
//	http_request_bytes_total{handler}
//	http_response_bytes_total{handler}
//
// A nil registry returns the handler unwrapped — zero cost when metrics
// are off.
func Middleware(handler string, reg *Registry, next http.Handler) http.Handler {
	if reg == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w}
		next.ServeHTTP(rec, r)
		if rec.status == 0 {
			rec.status = http.StatusOK
		}
		h := L("handler", handler)
		reg.Counter("http_requests_total", "HTTP requests served.",
			h, L("method", r.Method), L("code", strconv.Itoa(rec.status))).Inc()
		reg.Histogram("http_request_duration_us", "HTTP request latency in microseconds.",
			h, L("method", r.Method)).Observe(time.Since(start).Microseconds())
		if r.ContentLength > 0 {
			reg.Counter("http_request_bytes_total", "Request body bytes received.", h).Add(r.ContentLength)
		}
		reg.Counter("http_response_bytes_total", "Response body bytes sent.", h).Add(rec.bytes)
	})
}

// MetricsHandler serves the registry in Prometheus text exposition
// format. With a nil registry it serves an empty (valid) page.
func MetricsHandler(reg *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
}

// HealthzHandler reports liveness: 200 with a one-line body. The check
// callback, if non-nil, can veto with an error (→ 503).
func HealthzHandler(check func() error) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if check != nil {
			if err := check(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
}
