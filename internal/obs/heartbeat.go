package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Heartbeat prints a periodic one-line progress report to W (stderr in
// the CLIs): done/total, completion rate, ETA, and the time since the
// last completed unit — the per-shard lag signal that makes a stalled
// worker visible in one glance instead of after the deadline.
//
// The work loop calls Tick once per completed unit (cheap: two atomic
// stores); a background goroutine started by Start does the formatting
// on its own clock, so the hot path never formats anything.
type Heartbeat struct {
	Label string        // printed as the line prefix, e.g. "sweep" or "shard 2/8"
	Total int64         // expected units; <= 0 → printed as "?"
	Every time.Duration // print interval; <= 0 → 10s
	W     io.Writer     // destination; nil → no output

	done     atomic.Int64
	lastTick atomic.Int64 // UnixNano of the most recent Tick

	stopOnce sync.Once
	stopCh   chan struct{}
	doneCh   chan struct{}
}

// Tick records one completed unit of work.
func (h *Heartbeat) Tick() {
	if h == nil {
		return
	}
	h.done.Add(1)
	h.lastTick.Store(time.Now().UnixNano())
}

// Done returns the number of units recorded so far.
func (h *Heartbeat) Done() int64 {
	if h == nil {
		return 0
	}
	return h.done.Load()
}

// Start launches the reporting goroutine and returns a stop function
// (idempotent) that prints one final line and terminates it. A nil
// heartbeat or nil W returns a no-op stop.
func (h *Heartbeat) Start() (stop func()) {
	if h == nil || h.W == nil {
		return func() {}
	}
	every := h.Every
	if every <= 0 {
		every = 10 * time.Second
	}
	h.stopCh = make(chan struct{})
	h.doneCh = make(chan struct{})
	start := time.Now()
	go func() {
		defer close(h.doneCh)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				h.report(start, false)
			case <-h.stopCh:
				h.report(start, true)
				return
			}
		}
	}()
	return func() {
		h.stopOnce.Do(func() { close(h.stopCh) })
		<-h.doneCh
	}
}

// report formats one heartbeat line.
func (h *Heartbeat) report(start time.Time, final bool) {
	done := h.done.Load()
	elapsed := time.Since(start)
	rate := 0.0
	if elapsed > 0 {
		rate = float64(done) / elapsed.Seconds()
	}

	totalStr := "?"
	pct := ""
	eta := ""
	if h.Total > 0 {
		totalStr = fmt.Sprintf("%d", h.Total)
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(done)/float64(h.Total))
		if rate > 0 && done < h.Total {
			left := time.Duration(float64(h.Total-done)/rate) * time.Second
			eta = fmt.Sprintf(" eta %s", left.Round(time.Second))
		}
	}

	lag := ""
	if last := h.lastTick.Load(); last > 0 && !final {
		lag = fmt.Sprintf(" last %s ago", time.Since(time.Unix(0, last)).Round(100*time.Millisecond))
	} else if last == 0 && done == 0 && !final {
		lag = " no progress yet"
	}

	tag := "heartbeat"
	if final {
		tag = "done"
	}
	fmt.Fprintf(h.W, "%s: %s %d/%s%s %.1f/s%s%s\n", tag, h.Label, done, totalStr, pct, rate, eta, lag)
}
