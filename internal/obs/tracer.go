package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Arg is one key/value annotation on a span, rendered into the trace
// event's "args" object.
type Arg struct {
	Key string
	Val any
}

// A spanEvent is one Chrome trace-event "complete" record (ph="X"):
// name, category, start timestamp and duration in microseconds, and a
// synthetic pid/tid pair that groups spans into tracks.
type spanEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   int64          `json:"ts"`
	Dur  int64          `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// Tracer collects spans and writes them as Chrome trace-event JSON — the
// {"traceEvents":[...]} format Perfetto and chrome://tracing load
// directly. Timestamps are microseconds since the tracer was created.
//
// Concurrent spans are laid out on synthetic "tracks" (tid values):
// starting a span claims the lowest free track and ending it releases
// the track, so a worker pool renders as a stable lane-per-worker view
// rather than one interleaved row.
//
// The event buffer is bounded (maxEvents); once full, further spans are
// counted in Dropped but not recorded — a long campaign cannot grow the
// trace without bound. A nil *Tracer is fully disabled: StartSpan
// returns a nil *Span whose End is a no-op.
type Tracer struct {
	start time.Time

	mu        sync.Mutex
	events    []spanEvent
	tracks    []bool // tracks[i] == true → tid i is in use
	dropped   int64
	maxEvents int
}

// DefaultMaxEvents bounds a tracer's buffer unless overridden: 1M spans
// is ~hours of campaign at trial granularity and ~300 MB of JSON, which
// is already past what trace viewers handle comfortably.
const DefaultMaxEvents = 1 << 20

// NewTracer returns a tracer whose clock starts now. maxEvents bounds
// the buffer; values <= 0 select DefaultMaxEvents.
func NewTracer(maxEvents int) *Tracer {
	if maxEvents <= 0 {
		maxEvents = DefaultMaxEvents
	}
	return &Tracer{start: time.Now(), maxEvents: maxEvents}
}

// Span is one in-flight traced operation. End records it. The nil span
// (from a nil tracer or a full buffer) is a no-op.
type Span struct {
	tr    *Tracer
	name  string
	cat   string
	tid   int
	begin time.Time
	args  []Arg
}

// StartSpan opens a span. The category groups related spans in trace
// viewers ("sweep", "campaign", "journal", "store", "warm", ...). Args
// attach static annotations; more can be added at End.
func (t *Tracer) StartSpan(cat, name string, args ...Arg) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	if len(t.events) >= t.maxEvents {
		t.dropped++
		t.mu.Unlock()
		return nil
	}
	tid := t.claimTrack()
	t.mu.Unlock()
	return &Span{tr: t, name: name, cat: cat, tid: tid, begin: time.Now(), args: args}
}

// claimTrack returns the lowest free track id; callers hold t.mu.
func (t *Tracer) claimTrack() int {
	for i, used := range t.tracks {
		if !used {
			t.tracks[i] = true
			return i
		}
	}
	t.tracks = append(t.tracks, true)
	return len(t.tracks) - 1
}

// End closes the span, appending one complete event. Extra args are
// merged with those given at start (later keys win).
func (s *Span) End(args ...Arg) {
	if s == nil {
		return
	}
	end := time.Now()
	ev := spanEvent{
		Name: s.name,
		Cat:  s.cat,
		Ph:   "X",
		Ts:   s.begin.Sub(s.tr.start).Microseconds(),
		Dur:  end.Sub(s.begin).Microseconds(),
		Pid:  1,
		Tid:  s.tid,
	}
	if len(s.args)+len(args) > 0 {
		ev.Args = make(map[string]any, len(s.args)+len(args))
		for _, a := range s.args {
			ev.Args[a.Key] = a.Val
		}
		for _, a := range args {
			ev.Args[a.Key] = a.Val
		}
	}
	t := s.tr
	t.mu.Lock()
	if s.tid < len(t.tracks) {
		t.tracks[s.tid] = false
	}
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Instant records a zero-duration marker event (ph="i").
func (t *Tracer) Instant(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	ev := spanEvent{
		Name: name,
		Cat:  cat,
		Ph:   "i",
		Ts:   time.Since(t.start).Microseconds(),
		Pid:  1,
	}
	if len(args) > 0 {
		ev.Args = make(map[string]any, len(args))
		for _, a := range args {
			ev.Args[a.Key] = a.Val
		}
	}
	t.mu.Lock()
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, ev)
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events discarded because the buffer was
// full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// WriteJSON renders the trace as Chrome trace-event JSON, events sorted by
// start timestamp. A nil tracer writes an empty (still valid) trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	events := []spanEvent{}
	if t != nil {
		t.mu.Lock()
		events = append(events, t.events...)
		t.mu.Unlock()
		sort.SliceStable(events, func(i, j int) bool { return events[i].Ts < events[j].Ts })
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []spanEvent `json:"traceEvents"`
		DisplayUnit string      `json:"displayTimeUnit"`
	}{events, "ms"})
}

// WriteFile writes the trace JSON to path ("-" for stdout). The
// -trace-out CLI flags land here.
func (t *Tracer) WriteFile(path string) error {
	if path == "-" {
		return t.WriteJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = t.WriteJSON(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// NewScope builds a Scope from the CLI's -trace-out/-metrics-out flag
// values: each handle is created only if its output path is non-empty,
// so the zero-flag case stays fully disabled.
func NewScope(traceOut, metricsOut string) Scope {
	var s Scope
	if traceOut != "" {
		s.Trace = NewTracer(0)
	}
	if metricsOut != "" {
		s.Metrics = NewRegistry()
	}
	return s
}

// WriteFiles flushes whichever outputs the scope has to the given paths
// (empty path → skip). Returns the first error.
func (s Scope) WriteFiles(traceOut, metricsOut string) error {
	var first error
	if s.Trace != nil && traceOut != "" {
		if err := s.Trace.WriteFile(traceOut); err != nil {
			first = err
		}
	}
	if s.Metrics != nil && metricsOut != "" {
		if err := s.Metrics.WriteFile(metricsOut); err != nil && first == nil {
			first = err
		}
	}
	return first
}
