package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeTrace mirrors the required fields of the Chrome trace-event
// format; decoding with DisallowUnknownFields is intentionally NOT used
// (the format allows extra fields), but every event must carry name,
// ph, ts, pid, tid.
type chromeTrace struct {
	TraceEvents []map[string]any `json:"traceEvents"`
}

func parseTrace(t *testing.T, s string) chromeTrace {
	t.Helper()
	var ct chromeTrace
	if err := json.Unmarshal([]byte(s), &ct); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, s)
	}
	if ct.TraceEvents == nil {
		t.Fatalf("trace output missing traceEvents array:\n%s", s)
	}
	for i, ev := range ct.TraceEvents {
		for _, field := range []string{"name", "ph", "ts", "pid"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("event %d missing required field %q: %v", i, field, ev)
			}
		}
		if ph := ev["ph"]; ph == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Fatalf("complete event %d missing dur: %v", i, ev)
			}
		}
	}
	return ct
}

func TestTracerSpans(t *testing.T) {
	tr := NewTracer(0)
	sp := tr.StartSpan("sweep", "run", Arg{"index", 3})
	time.Sleep(time.Millisecond)
	sp.End(Arg{"err", false})
	tr.Instant("sweep", "sealed")

	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	ct := parseTrace(t, sb.String())
	if len(ct.TraceEvents) != 2 {
		t.Fatalf("events = %d, want 2", len(ct.TraceEvents))
	}
	run := ct.TraceEvents[0]
	if run["name"] != "run" || run["cat"] != "sweep" || run["ph"] != "X" {
		t.Fatalf("span event wrong: %v", run)
	}
	args, _ := run["args"].(map[string]any)
	if args["index"] != float64(3) || args["err"] != false {
		t.Fatalf("span args wrong: %v", args)
	}
	if run["dur"].(float64) < 500 {
		t.Fatalf("1ms span recorded dur %v µs", run["dur"])
	}
}

func TestTracerTrackReuse(t *testing.T) {
	tr := NewTracer(0)
	// Two overlapping spans must land on different tracks; after both
	// end, the next span reuses track 0.
	a := tr.StartSpan("c", "a")
	b := tr.StartSpan("c", "b")
	if a.tid == b.tid {
		t.Fatalf("overlapping spans share track %d", a.tid)
	}
	a.End()
	b.End()
	c := tr.StartSpan("c", "c")
	if c.tid != 0 {
		t.Fatalf("freed track not reused: got tid %d", c.tid)
	}
	c.End()
}

func TestTracerBounded(t *testing.T) {
	tr := NewTracer(2)
	for i := 0; i < 5; i++ {
		tr.StartSpan("c", "s").End()
	}
	if tr.Len() != 2 {
		t.Fatalf("len = %d, want cap 2", tr.Len())
	}
	if tr.Dropped() != 3 {
		t.Fatalf("dropped = %d, want 3", tr.Dropped())
	}
	// Still renders valid JSON when full.
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	parseTrace(t, sb.String())
}

func TestTracerSortedByStart(t *testing.T) {
	tr := NewTracer(0)
	// End order is b, a — output must still be sorted by start ts.
	a := tr.StartSpan("c", "a")
	time.Sleep(200 * time.Microsecond)
	b := tr.StartSpan("c", "b")
	b.End()
	a.End()
	var sb strings.Builder
	if err := tr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	ct := parseTrace(t, sb.String())
	if ct.TraceEvents[0]["name"] != "a" || ct.TraceEvents[1]["name"] != "b" {
		t.Fatalf("events not sorted by start: %v", ct.TraceEvents)
	}
}

func TestEmptyTracerValidJSON(t *testing.T) {
	var sb strings.Builder
	if err := NewTracer(0).WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	parseTrace(t, sb.String())
	// A nil tracer also writes a valid empty trace.
	sb.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	parseTrace(t, sb.String())
}

func TestNewScope(t *testing.T) {
	if s := NewScope("", ""); s.Enabled() {
		t.Fatal("empty flag paths must yield a disabled scope")
	}
	if s := NewScope("t.json", ""); s.Trace == nil || s.Metrics != nil {
		t.Fatalf("trace-only scope wrong: %+v", s)
	}
	if s := NewScope("", "m.prom"); s.Trace != nil || s.Metrics == nil {
		t.Fatalf("metrics-only scope wrong: %+v", s)
	}
}
