package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe strings.Builder.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestHeartbeatReports(t *testing.T) {
	var buf syncBuffer
	hb := &Heartbeat{Label: "sweep", Total: 10, Every: 20 * time.Millisecond, W: &buf}
	stop := hb.Start()
	for i := 0; i < 4; i++ {
		hb.Tick()
	}
	time.Sleep(60 * time.Millisecond)
	stop()
	out := buf.String()
	if !strings.Contains(out, "heartbeat: sweep 4/10 (40.0%)") {
		t.Fatalf("missing progress line in:\n%s", out)
	}
	if !strings.Contains(out, "done: sweep 4/10") {
		t.Fatalf("missing final line in:\n%s", out)
	}
	if hb.Done() != 4 {
		t.Fatalf("done = %d, want 4", hb.Done())
	}
}

func TestHeartbeatUnknownTotal(t *testing.T) {
	var buf syncBuffer
	hb := &Heartbeat{Label: "bench", Every: 10 * time.Millisecond, W: &buf}
	stop := hb.Start()
	hb.Tick()
	time.Sleep(30 * time.Millisecond)
	stop()
	if !strings.Contains(buf.String(), "1/?") {
		t.Fatalf("unknown total must print '?':\n%s", buf.String())
	}
}

func TestHeartbeatNilSafe(t *testing.T) {
	var hb *Heartbeat
	hb.Tick()
	stop := hb.Start()
	stop()
	if hb.Done() != 0 {
		t.Fatal("nil heartbeat must read 0")
	}
	// nil writer → no goroutine, stop is a no-op
	hb2 := &Heartbeat{Label: "x"}
	stop2 := hb2.Start()
	hb2.Tick()
	stop2()
}

func TestHeartbeatStopIdempotent(t *testing.T) {
	var buf syncBuffer
	hb := &Heartbeat{Label: "x", Total: 1, Every: time.Hour, W: &buf}
	stop := hb.Start()
	stop()
	stop() // second call must not panic or deadlock
}
