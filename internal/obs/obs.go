// Package obs is the zero-dependency observability layer: a metrics
// registry (atomic counters, gauges, and power-of-two latency histograms
// with Prometheus-text and JSON exposition) and a span tracer that emits
// Chrome trace-event JSON loadable in Perfetto, plus the HTTP middleware,
// /metrics and /healthz handlers, and the CLI heartbeat built on them.
//
// The hard invariant of the whole layer: telemetry is a PURE OBSERVER.
// Attaching a Scope to an engine, a cache, or a store must never change a
// single byte of the results it produces — sweep/campaign JSONL, shard
// journal bytes, and checkpoint blobs are byte-identical with telemetry
// on and off (asserted by the equivalence tests). Telemetry writes only
// to its own outputs: the registry, the trace buffer, and stderr.
//
// Everything is off by default and nil-safe: a nil *Registry hands out
// nil metrics whose methods are no-ops, a nil *Tracer hands out nil
// spans, and the zero Scope disables both — so instrumented code pays a
// nil check, never an allocation, when observability is off.
package obs

// Scope bundles the two telemetry handles an engine is observed through.
// The zero Scope is fully disabled; either field may be set alone.
// Scopes are small and copied by value through the call graph.
type Scope struct {
	// Trace, if set, receives one span per traced operation (run, trial,
	// warmup, restore, journal replay, store get/put, merge, ...).
	Trace *Tracer
	// Metrics, if set, accumulates the counters, gauges, and latency
	// histograms the operation maintainers export via /metrics or
	// -metrics-out.
	Metrics *Registry
}

// Enabled reports whether any telemetry handle is attached.
func (s Scope) Enabled() bool { return s.Trace != nil || s.Metrics != nil }
