package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_us", "")
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil handles, got %v %v %v", c, g, h)
	}
	// All no-ops, no panics.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(42)
	hs := h.Snapshot()
	if c.Value() != 0 || g.Value() != 0 || hs.N() != 0 {
		t.Fatal("nil handles must read as zero")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry exposition: %v %q", err, sb.String())
	}

	var tr *Tracer
	sp := tr.StartSpan("cat", "name")
	if sp != nil {
		t.Fatal("nil tracer must return nil span")
	}
	sp.End() // no-op
	tr.Instant("cat", "marker")
	if tr.Len() != 0 || tr.Dropped() != 0 {
		t.Fatal("nil tracer must read as empty")
	}

	var zero Scope
	if zero.Enabled() {
		t.Fatal("zero Scope must be disabled")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "runs", L("kind", "a"))
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	// Get-or-create returns the same series.
	if r.Counter("runs_total", "runs", L("kind", "a")) != c {
		t.Fatal("same name+labels must resolve to the same counter")
	}
	if r.Counter("runs_total", "runs", L("kind", "b")) == c {
		t.Fatal("different labels must resolve to a different series")
	}

	g := r.Gauge("inflight", "")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Fatalf("gauge = %d, want 5", g.Value())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("re-registering a counter as a gauge must panic")
		}
	}()
	r.Gauge("m", "")
}

func TestInvalidNamePanics(t *testing.T) {
	r := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid metric name must panic")
		}
	}()
	r.Counter("bad name", "")
}

func TestLabelOrderCanonical(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m_total", "", L("x", "1"), L("y", "2"))
	b := r.Counter("m_total", "", L("y", "2"), L("x", "1"))
	if a != b {
		t.Fatal("label order must not create distinct series")
	}
}

func TestPrometheusRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("sweep_runs_total", "Completed sweep runs.", L("sweep", "ipc")).Add(48)
	r.Counter("sweep_runs_total", "Completed sweep runs.", L("sweep", "slack")).Add(12)
	r.Gauge("inflight_runs", "Currently executing runs.").Set(3)
	h := r.Histogram("run_duration_us", "Run wall time.", L("sweep", "ipc"))
	for _, v := range []int64{0, 1, 2, 3, 100, 5000, 5000, 131072} {
		h.Observe(v)
	}
	// A label value that needs escaping must survive the round trip.
	r.Counter("odd_total", "", L("path", `a\b"c`+"\n")).Inc()

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParsePrometheus(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition failed independent parse:\n%s\nerr: %v", sb.String(), err)
	}

	byName := map[string]PromFamily{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	sw, ok := byName["sweep_runs_total"]
	if !ok || sw.Type != "counter" {
		t.Fatalf("sweep_runs_total missing or wrong type: %+v", sw)
	}
	if len(sw.Samples) != 2 {
		t.Fatalf("sweep_runs_total series = %d, want 2", len(sw.Samples))
	}
	var total float64
	for _, s := range sw.Samples {
		total += s.Value
	}
	if total != 60 {
		t.Fatalf("sweep_runs_total sum = %v, want 60", total)
	}

	hd, ok := byName["run_duration_us"]
	if !ok || hd.Type != "histogram" {
		t.Fatalf("run_duration_us missing or wrong type: %+v", hd)
	}
	// _count and _sum agree with what was observed.
	var count, sum float64
	for _, s := range hd.Samples {
		switch s.Name {
		case "run_duration_us_count":
			count = s.Value
		case "run_duration_us_sum":
			sum = s.Value
		}
	}
	if count != 8 {
		t.Fatalf("histogram count = %v, want 8", count)
	}
	if sum != 0+1+2+3+100+5000+5000+131072 {
		t.Fatalf("histogram sum = %v", sum)
	}

	odd, ok := byName["odd_total"]
	if !ok {
		t.Fatal("odd_total missing")
	}
	if got := odd.Samples[0].Labels["path"]; got != `a\b"c`+"\n" {
		t.Fatalf("escaped label did not round-trip: %q", got)
	}
}

func TestPrometheusDeterministicOrder(t *testing.T) {
	render := func(order []string) string {
		r := NewRegistry()
		for _, name := range order {
			r.Counter(name, "").Inc()
		}
		var sb strings.Builder
		if err := r.WritePrometheus(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	a := render([]string{"b_total", "a_total", "c_total"})
	b := render([]string{"c_total", "b_total", "a_total"})
	if a != b {
		t.Fatalf("exposition must not depend on registration order:\n%s\nvs\n%s", a, b)
	}
}

func TestParsePrometheusRejectsMalformed(t *testing.T) {
	cases := []string{
		"no_type_line 1\n",
		"# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\n",                                     // no _count, no +Inf
		"# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"+Inf\"} 3\nh_sum 1\nh_count 3\n", // non-monotone
		"# TYPE c counter\nc notanumber\n",
	}
	for _, in := range cases {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("parser accepted malformed input:\n%s", in)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "help", L("k", "v")).Add(9)
	r.Histogram("h_us", "").Observe(300)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Metrics []struct {
			Name   string `json:"name"`
			Type   string `json:"type"`
			Series []struct {
				Labels    map[string]string `json:"labels"`
				Value     *int64            `json:"value"`
				Histogram *struct {
					Count int64 `json:"count"`
					Sum   int64 `json:"sum"`
				} `json:"histogram"`
			} `json:"series"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &doc); err != nil {
		t.Fatalf("JSON exposition is not valid JSON: %v\n%s", err, sb.String())
	}
	if len(doc.Metrics) != 2 {
		t.Fatalf("families = %d, want 2", len(doc.Metrics))
	}
	if doc.Metrics[0].Name != "c_total" || *doc.Metrics[0].Series[0].Value != 9 {
		t.Fatalf("counter family wrong: %+v", doc.Metrics[0])
	}
	h := doc.Metrics[1].Series[0].Histogram
	if h == nil || h.Count != 1 || h.Sum != 300 {
		t.Fatalf("histogram family wrong: %+v", doc.Metrics[1])
	}
}

func TestConcurrentUse(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("c_total", "")
			h := r.Histogram("h_us", "")
			for j := 0; j < 1000; j++ {
				c.Inc()
				h.Observe(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c_total", "").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	hsnap := r.Histogram("h_us", "").Snapshot()
	if got := hsnap.N(); got != 8000 {
		t.Fatalf("histogram n = %d, want 8000", got)
	}
}
