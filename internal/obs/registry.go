package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"reunion/internal/stats"
)

// Label is one key="value" dimension of a metric series.
type Label struct {
	Key, Value string
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing metric. The nil counter (from a
// nil registry) is a no-op.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are a programming error; they are applied
// as-is rather than panicking — exposition will show the regression).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down. The nil gauge is a no-op.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add applies a delta.
func (g *Gauge) Add(n int64) {
	if g == nil {
		return
	}
	g.v.Add(n)
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram accumulates non-negative integer observations (latencies in
// microseconds, sizes in bytes) into power-of-two buckets — a mutex over
// stats.Histogram, the same accumulator the campaign reports use. The
// nil histogram is a no-op.
type Histogram struct {
	mu sync.Mutex
	h  stats.Histogram
}

// Observe folds one observation in.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Add(v)
	h.mu.Unlock()
}

// Snapshot returns a copy of the accumulated distribution.
func (h *Histogram) Snapshot() stats.Histogram {
	if h == nil {
		return stats.Histogram{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.h
}

// Kind is a metric family's type.
type Kind int

// Metric kinds, named as Prometheus TYPE lines spell them.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind as the Prometheus text format does.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Registry is a set of named metric families, each holding one series
// per distinct label set. Get-or-create accessors are idempotent and
// safe for concurrent use; hot paths should cache the returned handle
// rather than re-resolving the name per event. A nil *Registry hands out
// nil handles, so instrumented code needs no enabled-check of its own.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

type family struct {
	name, help string
	kind       Kind
	series     map[string]*series // label key → series
}

type series struct {
	labels  []Label // sorted by key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{families: make(map[string]*family)} }

// Counter returns the counter registered under name and labels, creating
// it (and its family) on first use. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.series(name, help, KindCounter, labels).counter
}

// Gauge returns the gauge registered under name and labels.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.series(name, help, KindGauge, labels).gauge
}

// Histogram returns the histogram registered under name and labels.
func (r *Registry) Histogram(name, help string, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	return r.series(name, help, KindHistogram, labels).hist
}

// series resolves (creating if needed) one metric series. A name reused
// with a different kind is a programming error and panics: silently
// handing back the wrong type would corrupt the exposition.
func (r *Registry) series(name, help string, kind Kind, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	for _, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l.Key, name))
		}
	}
	key := labelKey(ls)

	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, series: make(map[string]*series)}
		r.families[name] = f
	} else if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, kind))
	}
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: ls}
		switch kind {
		case KindCounter:
			s.counter = &Counter{}
		case KindGauge:
			s.gauge = &Gauge{}
		case KindHistogram:
			s.hist = &Histogram{}
		}
		f.series[key] = s
	}
	return s
}

// validName enforces the Prometheus metric/label name charset.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func labelKey(ls []Label) string {
	if len(ls) == 0 {
		return ""
	}
	parts := make([]string, len(ls))
	for i, l := range ls {
		parts[i] = l.Key + `="` + escapeLabel(l.Value) + `"`
	}
	return strings.Join(parts, ",")
}

func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// snapshot returns the families sorted by name, each with its series
// sorted by label key — the deterministic exposition order both writers
// share.
func (r *Registry) snapshot() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

func (f *family) sortedSeries() []*series {
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]*series, len(keys))
	for i, k := range keys {
		out[i] = f.series[k]
	}
	return out
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, series by label set,
// histograms as cumulative _bucket/_sum/_count series with power-of-two
// le bounds. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	for _, f := range r.snapshot() {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.sortedSeries() {
			switch f.kind {
			case KindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(labelKey(s.labels)), s.counter.Value())
			case KindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, braced(labelKey(s.labels)), s.gauge.Value())
			case KindHistogram:
				writePromHistogram(&b, f.name, s.labels, s.hist.Snapshot())
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func braced(labelKey string) string {
	if labelKey == "" {
		return ""
	}
	return "{" + labelKey + "}"
}

// writePromHistogram renders one histogram series: cumulative buckets at
// the power-of-two upper bounds the accumulator uses, the mandatory
// le="+Inf" bucket equal to _count, then _sum and _count.
func writePromHistogram(b *strings.Builder, name string, labels []Label, h stats.Histogram) {
	var cum int64
	h.Buckets(func(_, hi, count int64) {
		cum += count
		le := L("le", fmt.Sprintf("%d", hi))
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, braced(labelKey(append(append([]Label(nil), labels...), le))), cum)
	})
	inf := L("le", "+Inf")
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, braced(labelKey(append(append([]Label(nil), labels...), inf))), h.N())
	fmt.Fprintf(b, "%s_sum%s %d\n", name, braced(labelKey(labels)), h.Sum())
	fmt.Fprintf(b, "%s_count%s %d\n", name, braced(labelKey(labels)), h.N())
}

// jsonFamily / jsonSeries are the JSON exposition shape: one object per
// family in name order, scalar series as {"labels","value"}, histograms
// with their bucket table.
type jsonFamily struct {
	Name   string       `json:"name"`
	Help   string       `json:"help,omitempty"`
	Type   string       `json:"type"`
	Series []jsonSeries `json:"series"`
}

type jsonSeries struct {
	Labels    map[string]string `json:"labels,omitempty"`
	Value     *int64            `json:"value,omitempty"`
	Histogram *jsonHistogram    `json:"histogram,omitempty"`
}

type jsonHistogram struct {
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Min     int64        `json:"min"`
	Max     int64        `json:"max"`
	Buckets []jsonBucket `json:"buckets,omitempty"`
}

type jsonBucket struct {
	Le    int64 `json:"le"` // inclusive upper bound of the bucket
	Count int64 `json:"count"`
}

// WriteJSON renders the registry as one JSON document (families sorted
// by name — deterministic for a given set of values). A nil registry
// writes an empty document.
func (r *Registry) WriteJSON(w io.Writer) error {
	fams := []jsonFamily{}
	if r != nil {
		for _, f := range r.snapshot() {
			jf := jsonFamily{Name: f.name, Help: f.help, Type: f.kind.String(), Series: []jsonSeries{}}
			for _, s := range f.sortedSeries() {
				js := jsonSeries{}
				if len(s.labels) > 0 {
					js.Labels = make(map[string]string, len(s.labels))
					for _, l := range s.labels {
						js.Labels[l.Key] = l.Value
					}
				}
				switch f.kind {
				case KindCounter:
					v := s.counter.Value()
					js.Value = &v
				case KindGauge:
					v := s.gauge.Value()
					js.Value = &v
				case KindHistogram:
					h := s.hist.Snapshot()
					jh := &jsonHistogram{Count: h.N(), Sum: h.Sum(), Min: h.Min(), Max: h.Max()}
					h.Buckets(func(_, hi, count int64) {
						jh.Buckets = append(jh.Buckets, jsonBucket{Le: hi, Count: count})
					})
					js.Histogram = jh
				}
				jf.Series = append(jf.Series, js)
			}
			fams = append(fams, jf)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(struct {
		Metrics []jsonFamily `json:"metrics"`
	}{fams})
}

// WriteFile writes the Prometheus text exposition to path ("-" for
// stdout). The -metrics-out CLI flags land here.
func (r *Registry) WriteFile(path string) error {
	if path == "-" {
		return r.WritePrometheus(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	err = r.WritePrometheus(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
