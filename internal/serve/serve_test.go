package serve

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"reunion/internal/obs"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp.StatusCode, string(body)
}

// The scaffold mux serves the API route (metered), /metrics, /healthz,
// and the pprof endpoints — the full operational surface both daemons
// share.
func TestNewMuxOperationalSurface(t *testing.T) {
	reg := obs.NewRegistry()
	api := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "api-ok")
	})
	mux := NewMux(reg, nil, Route{Pattern: "/api/", Name: "api", Handler: api})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	if code, body := get(t, srv, "/api/x"); code != 200 || body != "api-ok" {
		t.Fatalf("GET /api/x = %d %q", code, body)
	}
	if code, body := get(t, srv, "/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}
	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("GET /metrics = %d", code)
	}
	// The API route is metered under its Route.Name.
	if !strings.Contains(body, `http_requests_total{code="200",handler="api",method="GET"} 1`) {
		t.Errorf("metrics page lacks the api request count:\n%s", body)
	}
	if code, _ := get(t, srv, "/debug/pprof/cmdline"); code != 200 {
		t.Errorf("GET /debug/pprof/cmdline = %d", code)
	}
}

// An unnamed route mounts unmetered: no handler label appears for it.
func TestNewMuxUnnamedRouteUnmetered(t *testing.T) {
	reg := obs.NewRegistry()
	mux := NewMux(reg, nil, Route{Pattern: "/raw", Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) { fmt.Fprint(w, "raw") })})
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if code, body := get(t, srv, "/raw"); code != 200 || body != "raw" {
		t.Fatalf("GET /raw = %d %q", code, body)
	}
	if _, body := get(t, srv, "/metrics"); strings.Contains(body, `handler="raw"`) {
		t.Errorf("unnamed route was metered:\n%s", body)
	}
}

// The health check's veto turns /healthz into a 503.
func TestHealthzVeto(t *testing.T) {
	mux := NewMux(nil, func() error { return fmt.Errorf("degraded") })
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if code, body := get(t, srv, "/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "degraded") {
		t.Fatalf("GET /healthz = %d %q, want 503 with the veto reason", code, body)
	}
}

// DirHealth accepts a writable directory and rejects a deleted or
// non-directory root.
func TestDirHealth(t *testing.T) {
	dir := t.TempDir()
	if err := DirHealth(dir)(); err != nil {
		t.Fatalf("writable dir unhealthy: %v", err)
	}
	if err := DirHealth(filepath.Join(dir, "gone"))(); err == nil {
		t.Error("missing root reported healthy")
	}
	file := filepath.Join(dir, "plain")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := DirHealth(file)(); err == nil || !strings.Contains(err.Error(), "not a directory") {
		t.Errorf("plain-file root: %v", err)
	}
}

// Serve answers requests until the context is cancelled, then drains
// and returns nil — the graceful-shutdown contract SIGTERM rides on.
func TestServeGracefulShutdown(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- Serve(ctx, ln, NewMux(nil, nil), nil)
	}()

	url := "http://" + ln.Addr().String() + "/healthz"
	var resp *http.Response
	for i := 0; i < 100; i++ {
		resp, err = http.Get(url)
		if err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("server never came up: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /healthz = %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Serve returned %v after cancel, want nil", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not return after context cancel")
	}
	if _, err := http.Get(url); err == nil {
		t.Error("listener still accepting after shutdown")
	}
}
