// Package serve is the shared HTTP service scaffold for the repo's
// daemons (reunion-ckptd, reunion-coordinator): one place that builds
// the operational mux — instrumented API routes, /metrics, /healthz,
// net/http/pprof — and runs the listener with sane timeouts and
// graceful shutdown on SIGINT/SIGTERM.
//
// Extracting it is what keeps the two daemons' operational surfaces
// identical by construction instead of by copy-paste: a route added
// here (or a timeout fixed here) is a route both daemons serve. The
// tracer is deliberately absent from the scaffold: a daemon runs
// indefinitely and a span buffer would only ever grow or drop; the
// registry plus pprof cover a server's observability needs.
package serve

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"reunion/internal/obs"
)

// Route is one API surface mounted on the scaffold mux. Name labels
// the route's metrics (http_requests_total{handler=Name,...} via
// obs.Middleware); an empty Name mounts the handler unmetered.
type Route struct {
	Pattern string
	Name    string
	Handler http.Handler
}

// NewMux assembles a daemon's full mux: every route wrapped in the
// metrics middleware under reg, plus the operational endpoints every
// daemon serves —
//
//	/metrics       Prometheus text exposition
//	/healthz       liveness: 200 "ok" unless the health check vetoes
//	/debug/pprof/  the standard net/http/pprof profiling endpoints
func NewMux(reg *obs.Registry, health func() error, routes ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range routes {
		h := rt.Handler
		if rt.Name != "" {
			h = obs.Middleware(rt.Name, reg, h)
		}
		mux.Handle(rt.Pattern, h)
	}
	mux.Handle("/metrics", obs.MetricsHandler(reg))
	mux.Handle("/healthz", obs.HealthzHandler(health))
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// DirHealth returns a health check requiring root to exist and be a
// writable directory — the two failure modes (deleted root, full or
// read-only filesystem) that turn a running daemon into a silent
// degraded fallback for the whole fleet.
func DirHealth(root string) func() error {
	return func() error {
		st, err := os.Stat(root)
		if err != nil {
			return err
		}
		if !st.IsDir() {
			return fmt.Errorf("%s is not a directory", root)
		}
		probe, err := os.CreateTemp(root, ".healthz-*")
		if err != nil {
			return fmt.Errorf("root not writable: %w", err)
		}
		name := probe.Name()
		probe.Close()
		return os.Remove(filepath.Clean(name))
	}
}

// SignalContext returns a context cancelled on SIGINT or SIGTERM — the
// shutdown trigger both daemons share.
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// shutdownTimeout bounds the graceful drain: in-flight requests get
// this long after the shutdown signal before the listener is torn down.
const shutdownTimeout = 10 * time.Second

// ListenAndServe runs handler on addr until ctx is cancelled, then
// drains gracefully. logf (nil = silent) receives the bound address —
// which, with addr ":0", is where the kernel actually put the listener.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler, logf func(format string, args ...any)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return Serve(ctx, ln, handler, logf)
}

// Serve is ListenAndServe on an existing listener (tests bind :0 and
// read the port back). The server closes the listener on return.
func Serve(ctx context.Context, ln net.Listener, handler http.Handler, logf func(format string, args ...any)) error {
	srv := &http.Server{
		Handler: handler,
		// Slowloris guard; no WriteTimeout — /debug/pprof/profile
		// legitimately streams for 30s.
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if logf != nil {
		logf("serving on %s", ln.Addr())
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	if logf != nil {
		logf("shutting down")
	}
	sctx, cancel := context.WithTimeout(context.Background(), shutdownTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		srv.Close()
		return err
	}
	<-errc // always http.ErrServerClosed after a clean Shutdown
	return nil
}
