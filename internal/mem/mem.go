// Package mem provides the flat physical memory image backing the
// simulated CMP, with word and cache-block granularity access.
//
// The simulator executes real values: registers, memory and branches are
// all functional, so input incoherence in the Reunion model arises from
// genuine data races rather than an injected random process. This package
// is the root of that value chain — cache lines are filled from here and
// dirty lines written back here.
//
// Memory is sparse (page-allocated) so 3 GB address spaces from Table 1
// cost only what workloads actually touch. Reads of unmapped memory return
// zero without allocating, which keeps speculative wrong-path wild loads
// cheap and harmless.
package mem

// Geometry constants shared across the cache hierarchy.
const (
	BlockBytes = 64             // cache line size (Table 1)
	BlockWords = BlockBytes / 8 // 64-bit words per line
	BlockShift = 6              // log2(BlockBytes)
	PageBytes  = 8192           // 8 KB pages (Table 1)
	PageShift  = 13             // log2(PageBytes)
	pageWords  = PageBytes / 8  // words per page
)

// BlockAddr returns the block-aligned address containing addr.
func BlockAddr(addr uint64) uint64 { return addr &^ (BlockBytes - 1) }

// PageOf returns the page number containing addr.
func PageOf(addr uint64) uint64 { return addr >> PageShift }

// Block is one cache line of data.
type Block [BlockWords]uint64

// Memory is a sparse physical memory image.
type Memory struct {
	pages map[uint64]*[pageWords]uint64
	// Last-page cache: accesses run in page-length bursts (sequential
	// fetch, block fills), so remembering the last hit skips the map
	// lookup for the whole run. lastP is nil when nothing is cached;
	// Restore invalidates it because the page pointers are rebuilt.
	lastPN uint64
	lastP  *[pageWords]uint64
}

// New returns an empty memory image.
func New() *Memory { return &Memory{pages: make(map[uint64]*[pageWords]uint64)} }

func (m *Memory) page(addr uint64, alloc bool) *[pageWords]uint64 {
	pn := addr >> PageShift
	if m.lastP != nil && m.lastPN == pn {
		return m.lastP
	}
	p := m.pages[pn]
	if p == nil {
		if !alloc {
			// Do not cache the miss: a later write may map the page.
			return nil
		}
		p = new([pageWords]uint64)
		m.pages[pn] = p
	}
	m.lastPN, m.lastP = pn, p
	return p
}

// ReadWord returns the 64-bit word at the 8-byte-aligned address.
// Unmapped memory reads as zero.
func (m *Memory) ReadWord(addr uint64) uint64 {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[(addr%PageBytes)/8]
}

// WriteWord stores a 64-bit word at the 8-byte-aligned address.
func (m *Memory) WriteWord(addr uint64, v uint64) {
	p := m.page(addr, true)
	p[(addr%PageBytes)/8] = v
}

// ReadBlock copies the cache block containing addr into b.
func (m *Memory) ReadBlock(addr uint64, b *Block) {
	base := BlockAddr(addr)
	p := m.page(base, false)
	if p == nil {
		*b = Block{}
		return
	}
	off := (base % PageBytes) / 8
	copy(b[:], p[off:off+BlockWords])
}

// WriteBlock stores the cache block containing addr from b.
func (m *Memory) WriteBlock(addr uint64, b *Block) {
	base := BlockAddr(addr)
	p := m.page(base, true)
	off := (base % PageBytes) / 8
	copy(p[off:off+BlockWords], b[:])
}

// MappedPages returns the number of allocated pages (for footprint stats).
func (m *Memory) MappedPages() int { return len(m.pages) }

// MemoryState is a checkpoint of the memory image: a deep copy of every
// mapped page.
type MemoryState struct {
	pages map[uint64][pageWords]uint64
}

// Snapshot deep-copies the memory image. Read-only.
func (m *Memory) Snapshot() *MemoryState {
	s := &MemoryState{pages: make(map[uint64][pageWords]uint64, len(m.pages))}
	for pn, p := range m.pages {
		s.pages[pn] = *p
	}
	return s
}

// Restore rewrites the memory image from a snapshot: pages mapped since
// the snapshot are unmapped, and every snapshotted page gets its saved
// contents back. The snapshot is copied out, so it restores any number of
// times.
func (m *Memory) Restore(s *MemoryState) {
	m.pages = make(map[uint64]*[pageWords]uint64, len(s.pages))
	for pn, p := range s.pages {
		cp := p
		m.pages[pn] = &cp
	}
	m.lastP = nil // page pointers above are all new
}
