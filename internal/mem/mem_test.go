package mem

import (
	"testing"
	"testing/quick"
)

func TestReadWriteWord(t *testing.T) {
	m := New()
	if m.ReadWord(0x1000) != 0 {
		t.Fatal("unmapped read not zero")
	}
	m.WriteWord(0x1000, 42)
	if m.ReadWord(0x1000) != 42 {
		t.Fatal("readback failed")
	}
	m.WriteWord(0x1000, 43)
	if m.ReadWord(0x1000) != 43 {
		t.Fatal("overwrite failed")
	}
}

func TestUnmappedReadDoesNotAllocate(t *testing.T) {
	m := New()
	for a := uint64(0); a < 100*PageBytes; a += PageBytes {
		_ = m.ReadWord(a)
	}
	if m.MappedPages() != 0 {
		t.Fatalf("reads allocated %d pages", m.MappedPages())
	}
}

func TestBlockRoundTrip(t *testing.T) {
	m := New()
	var b Block
	for i := range b {
		b[i] = uint64(i) * 0x1111
	}
	m.WriteBlock(0x2040, &b) // unaligned addr inside block
	var got Block
	m.ReadBlock(0x2050, &got) // any addr in the same block
	if got != b {
		t.Fatalf("block mismatch: %v vs %v", got, b)
	}
	// Words individually visible.
	if m.ReadWord(BlockAddr(0x2040)+8) != 0x1111 {
		t.Fatal("word view of block write wrong")
	}
}

func TestBlockWordConsistency(t *testing.T) {
	// Property: writing words then reading the containing block sees them.
	m := New()
	f := func(addr uint64, v uint64) bool {
		addr &^= 7 // align
		addr %= 1 << 32
		m.WriteWord(addr, v)
		var b Block
		m.ReadBlock(addr, &b)
		return b[(addr%BlockBytes)/8] == v && m.ReadWord(addr) == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestPageBoundaryBlocks(t *testing.T) {
	// Blocks never straddle pages (64B blocks, 8K pages), but exercise the
	// last block of a page and the first of the next.
	m := New()
	lastBlock := uint64(PageBytes - BlockBytes)
	var b Block
	for i := range b {
		b[i] = uint64(100 + i)
	}
	m.WriteBlock(lastBlock, &b)
	m.WriteWord(PageBytes, 999) // first word of next page
	var got Block
	m.ReadBlock(lastBlock, &got)
	if got != b {
		t.Fatal("last block of page corrupted")
	}
	if m.ReadWord(PageBytes) != 999 {
		t.Fatal("next page word corrupted")
	}
	if m.MappedPages() != 2 {
		t.Fatalf("pages=%d want 2", m.MappedPages())
	}
}

func TestGeometryHelpers(t *testing.T) {
	if BlockAddr(0x12345) != 0x12340 {
		t.Fatalf("BlockAddr: %#x", BlockAddr(0x12345))
	}
	if PageOf(0x4000) != 2 {
		t.Fatalf("PageOf(0x4000)=%d want 2", PageOf(0x4000))
	}
	if BlockBytes != 64 || PageBytes != 8192 || BlockWords != 8 {
		t.Fatal("geometry constants changed; Table 1 expects 64B lines and 8K pages")
	}
	if 1<<BlockShift != BlockBytes || 1<<PageShift != PageBytes {
		t.Fatal("shift constants inconsistent")
	}
}

// Property: the memory behaves exactly like a map from aligned addresses
// to words under random mixed word/block operations.
func TestMemoryVsMapOracle(t *testing.T) {
	m := New()
	oracle := make(map[uint64]uint64)
	f := func(ops []struct {
		Addr  uint64
		Val   uint64
		Block bool
		Write bool
	}) bool {
		for _, op := range ops {
			addr := (op.Addr % (1 << 24)) &^ 7
			if op.Block {
				base := BlockAddr(addr)
				if op.Write {
					var b Block
					for i := range b {
						b[i] = op.Val + uint64(i)
						oracle[base+uint64(i)*8] = b[i]
					}
					m.WriteBlock(base, &b)
				} else {
					var b Block
					m.ReadBlock(base, &b)
					for i := range b {
						if b[i] != oracle[base+uint64(i)*8] {
							return false
						}
					}
				}
			} else {
				if op.Write {
					m.WriteWord(addr, op.Val)
					oracle[addr] = op.Val
				} else if m.ReadWord(addr) != oracle[addr] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
