package mem

import (
	"sort"

	"reunion/internal/bin"
)

// Wire codec for memory snapshots (checkpoint serialization). Pages are
// written in sorted page-number order so the encoding is deterministic —
// the same memory image always produces the same bytes, which the
// content-addressed checkpoint store and the golden-format tests rely on.

// Encode writes the snapshot.
func (s *MemoryState) Encode(w *bin.Writer) {
	nums := make([]uint64, 0, len(s.pages))
	for n := range s.pages {
		nums = append(nums, n)
	}
	sort.Slice(nums, func(i, j int) bool { return nums[i] < nums[j] })
	w.Uvarint(uint64(len(nums)))
	for _, n := range nums {
		w.U64(n)
		page := s.pages[n]
		for _, word := range page {
			w.U64(word)
		}
	}
}

// DecodeMemoryState reads a snapshot written by Encode.
func DecodeMemoryState(r *bin.Reader) *MemoryState {
	n := r.Len(8 + pageWords*8)
	s := &MemoryState{pages: make(map[uint64][pageWords]uint64, n)}
	var prev uint64
	for i := 0; i < n; i++ {
		num := r.U64()
		if i > 0 && num <= prev {
			r.Fail(errNonMonotonicPages)
			return nil
		}
		prev = num
		var page [pageWords]uint64
		for j := range page {
			page[j] = r.U64()
		}
		s.pages[num] = page
	}
	if r.Err() != nil {
		return nil
	}
	return s
}

var errNonMonotonicPages = errPages("mem: snapshot pages not in sorted order")

type errPages string

func (e errPages) Error() string { return string(e) }
