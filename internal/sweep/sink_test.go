package sweep

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

func testRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Sweep:   "t",
			Index:   i,
			Labels:  map[string]string{"workload": fmt.Sprintf("w%d", i), "mode": "reunion"},
			Metrics: map[string]float64{"ipc": 1.5 + float64(i)/8, "cycles": float64(1000 * i)},
		}
	}
	return recs
}

func TestJSONLRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	want := testRecords(5)
	want[3].Err = "boom"
	want[3].Metrics = nil
	for _, rec := range want {
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(want) {
		t.Fatalf("%d lines, want %d", len(lines), len(want))
	}
	for i, line := range lines {
		var got Record
		if err := json.Unmarshal([]byte(line), &got); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want[i]) {
			t.Errorf("line %d round-trip:\ngot  %+v\nwant %+v", i, got, want[i])
		}
	}
}

func TestJSONLDeterministicBytes(t *testing.T) {
	// Two writes of the same record must produce identical bytes (maps
	// marshal with sorted keys) — the basis of the byte-identical
	// -parallel 1 vs -parallel N guarantee.
	rec := testRecords(1)[0]
	var a, b bytes.Buffer
	if err := NewJSONL(&a).Write(rec); err != nil {
		t.Fatal(err)
	}
	if err := NewJSONL(&b).Write(rec); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Errorf("non-deterministic encoding:\n%s\n%s", a.String(), b.String())
	}
}

func TestCSVHeaderAndRows(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, rec := range testRecords(3) {
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "sweep,index,mode,workload,cycles,ipc,err" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[1] != "t,0,reunion,w0,0,1.5," {
		t.Errorf("row 0 = %q", lines[1])
	}
}

func TestCSVErrorFirstRecordKeepsMetricColumns(t *testing.T) {
	// An error record arriving first must not fix an empty metric column
	// set: it is buffered until a record with metrics defines the columns.
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	recs := testRecords(3)
	recs[0].Err = "boom"
	recs[0].Metrics = nil
	for _, rec := range recs {
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("%d lines, want header + 3 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "sweep,index,mode,workload,cycles,ipc,err" {
		t.Errorf("header lost metric columns: %q", lines[0])
	}
	if lines[1] != "t,0,reunion,w0,,,boom" {
		t.Errorf("buffered error row = %q", lines[1])
	}
	if lines[2] != "t,1,reunion,w1,1000,1.625," {
		t.Errorf("row 1 = %q", lines[2])
	}
}

func TestCSVAllErrorsStillWrites(t *testing.T) {
	var buf bytes.Buffer
	sink := NewCSV(&buf)
	for _, rec := range testRecords(2) {
		rec.Err = "boom"
		rec.Metrics = nil
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("%d lines, want header + 2 rows:\n%s", len(lines), buf.String())
	}
	if lines[0] != "sweep,index,mode,workload,err" {
		t.Errorf("header = %q", lines[0])
	}
}

func TestMemorySink(t *testing.T) {
	sink := NewMemory()
	want := testRecords(4)
	for _, rec := range want {
		if err := sink.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if got := sink.Records(); !reflect.DeepEqual(got, want) {
		t.Errorf("Records = %+v", got)
	}
	if err := sink.Close(); err != nil {
		t.Fatal(err)
	}
	if err := sink.Write(want[0]); err == nil {
		t.Error("write after close succeeded")
	}
}

func TestTee(t *testing.T) {
	a, b := NewMemory(), NewMemory()
	tee := Tee{Sinks: []Sink{a, b}}
	recs := testRecords(2)
	for _, rec := range recs {
		if err := tee.Write(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := tee.Close(); err != nil {
		t.Fatal(err)
	}
	if len(a.Records()) != 2 || len(b.Records()) != 2 {
		t.Errorf("tee fan-out: a=%d b=%d", len(a.Records()), len(b.Records()))
	}
}

// TestSweepToSinkRoundTrip drives a parallel sweep end to end into a
// memory sink and checks the streamed records arrive complete and in
// point order.
func TestSweepToSinkRoundTrip(t *testing.T) {
	sink := NewMemory()
	spec := testSpec(3, 4)
	r := Runner[cfg, int]{
		Parallelism: 6,
		Run: func(_ context.Context, p Point[cfg]) (int, error) {
			if p.Index == 5 {
				return 0, errors.New("unstable cell")
			}
			return p.Config.A * p.Config.B, nil
		},
		Emit: func(res Result[cfg, int]) error {
			var metrics map[string]float64
			if res.Err == nil {
				metrics = map[string]float64{"out": float64(res.Out)}
			}
			return sink.Write(NewRecord(spec.Name, res.Point.Index, res.Point.LabelMap(), metrics, res.Err))
		},
	}
	if _, err := r.Sweep(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	recs := sink.Records()
	if len(recs) != 12 {
		t.Fatalf("%d records, want 12", len(recs))
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("record %d has index %d (out of order)", i, rec.Index)
		}
		if i == 5 {
			if rec.Err != "unstable cell" || rec.Metrics != nil {
				t.Errorf("record 5 = %+v", rec)
			}
			continue
		}
		want := float64((i / 4) * (i % 4))
		if rec.Metrics["out"] != want {
			t.Errorf("record %d out = %v, want %v", i, rec.Metrics["out"], want)
		}
		if rec.Labels["a"] != fmt.Sprintf("%d", i/4) || rec.Labels["b"] != fmt.Sprintf("%d", i%4) {
			t.Errorf("record %d labels = %v", i, rec.Labels)
		}
	}
}
