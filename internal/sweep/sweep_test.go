package sweep

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

type cfg struct {
	A, B, C int
}

func testSpec(na, nb int) Spec[cfg] {
	return Spec[cfg]{
		Name: "test",
		Axes: []Axis[cfg]{
			NewAxis("a", seq(na), itoa, func(c *cfg, v int) { c.A = v }),
			NewAxis("b", seq(nb), itoa, func(c *cfg, v int) { c.B = v }),
		},
	}
}

func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func itoa(v int) string { return fmt.Sprintf("%d", v) }

func TestCrossProductOrder(t *testing.T) {
	s := testSpec(2, 3)
	if got := s.Size(); got != 6 {
		t.Fatalf("Size = %d, want 6", got)
	}
	pts := s.Points()
	wantNames := []string{
		"a=0,b=0", "a=0,b=1", "a=0,b=2",
		"a=1,b=0", "a=1,b=1", "a=1,b=2",
	}
	for i, p := range pts {
		if p.Index != i {
			t.Errorf("point %d has Index %d", i, p.Index)
		}
		if p.Name() != wantNames[i] {
			t.Errorf("point %d name = %q, want %q", i, p.Name(), wantNames[i])
		}
		if p.Config.A != i/3 || p.Config.B != i%3 {
			t.Errorf("point %d config = %+v", i, p.Config)
		}
	}
}

func TestApplyOrderAndBaseIsolation(t *testing.T) {
	// Later axes apply after earlier ones, and every point starts from a
	// fresh copy of Base.
	s := Spec[cfg]{
		Base: cfg{C: 7},
		Axes: []Axis[cfg]{
			NewAxis("a", seq(2), itoa, func(c *cfg, v int) { c.A = v; c.C = v }),
			NewAxis("b", seq(2), itoa, func(c *cfg, v int) { c.B = v; c.C += 10 * v }),
		},
	}
	pts := s.Points()
	if pts[3].Config.C != 1+10 {
		t.Errorf("apply order broken: %+v", pts[3].Config)
	}
	if pts[0].Config.C != 0 {
		t.Errorf("point 0: %+v", pts[0].Config)
	}
	// Base must be untouched.
	if s.Base.A != 0 || s.Base.C != 7 {
		t.Errorf("base mutated: %+v", s.Base)
	}
}

// TestDeterministicOrdering is the engine's core contract: the result
// slice and the Emit stream are identical at parallelism 1 and 8, even
// when completion order is scrambled.
func TestDeterministicOrdering(t *testing.T) {
	s := testSpec(5, 8) // 40 points
	run := func(par int) ([]Result[cfg, int], []int) {
		var emitted []int
		r := Runner[cfg, int]{
			Parallelism: par,
			Run: func(_ context.Context, p Point[cfg]) (int, error) {
				// Scramble completion order: early points sleep longest.
				time.Sleep(time.Duration(40-p.Index) * 100 * time.Microsecond)
				return p.Config.A*100 + p.Config.B, nil
			},
			Emit: func(res Result[cfg, int]) error {
				emitted = append(emitted, res.Point.Index)
				return nil
			},
		}
		results, err := r.Sweep(context.Background(), s)
		if err != nil {
			t.Fatalf("par=%d: %v", par, err)
		}
		return results, emitted
	}

	serial, emitSerial := run(1)
	parallel, emitParallel := run(8)

	for i := range serial {
		if serial[i].Out != parallel[i].Out || serial[i].Point.Name() != parallel[i].Point.Name() {
			t.Errorf("point %d differs: serial=%+v parallel=%+v", i, serial[i], parallel[i])
		}
	}
	if !reflect.DeepEqual(emitSerial, emitParallel) {
		t.Errorf("emit order differs:\nserial:   %v\nparallel: %v", emitSerial, emitParallel)
	}
	for i, idx := range emitParallel {
		if idx != i {
			t.Fatalf("emit out of order at %d: got index %d", i, idx)
		}
	}
}

func TestParallelismIsReal(t *testing.T) {
	var cur, peak atomic.Int64
	r := Runner[cfg, int]{
		Parallelism: 4,
		Run: func(_ context.Context, p Point[cfg]) (int, error) {
			n := cur.Add(1)
			for {
				old := peak.Load()
				if n <= old || peak.CompareAndSwap(old, n) {
					break
				}
			}
			time.Sleep(20 * time.Millisecond)
			cur.Add(-1)
			return 0, nil
		},
	}
	if _, err := r.Sweep(context.Background(), testSpec(4, 4)); err != nil {
		t.Fatal(err)
	}
	if peak.Load() < 2 {
		t.Errorf("peak concurrency %d; want >= 2 with 4 workers", peak.Load())
	}
}

func TestCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	r := Runner[cfg, int]{
		Parallelism: 2,
		Run: func(ctx context.Context, p Point[cfg]) (int, error) {
			if ran.Add(1) == 4 {
				cancel()
			}
			time.Sleep(time.Millisecond)
			return p.Index, nil
		},
	}
	results, err := r.Sweep(ctx, testSpec(10, 10))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var done, skipped int
	for _, res := range results {
		switch {
		case res.Err == nil:
			done++
		case errors.Is(res.Err, ErrSkipped):
			skipped++
		default:
			t.Errorf("point %d: unexpected error %v", res.Point.Index, res.Err)
		}
	}
	if done == 0 || skipped == 0 {
		t.Errorf("done=%d skipped=%d; want some of both", done, skipped)
	}
	if done+skipped != 100 {
		t.Errorf("done+skipped = %d, want 100", done+skipped)
	}
}

func TestPanicIsolation(t *testing.T) {
	r := Runner[cfg, int]{
		Parallelism: 4,
		Run: func(_ context.Context, p Point[cfg]) (int, error) {
			if p.Index == 3 {
				panic("boom")
			}
			return p.Index, nil
		},
	}
	results, err := r.Sweep(context.Background(), testSpec(2, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, res := range results {
		if res.Point.Index == 3 {
			if res.Err == nil || !strings.Contains(res.Err.Error(), "panic") {
				t.Errorf("point 3: err = %v, want panic error", res.Err)
			}
			continue
		}
		if res.Err != nil || res.Out != res.Point.Index {
			t.Errorf("point %d: out=%d err=%v", res.Point.Index, res.Out, res.Err)
		}
	}
	if err := FirstError(results); err == nil || !strings.Contains(err.Error(), "panic") {
		t.Errorf("FirstError = %v", err)
	}
}

func TestEmitErrorFailsSweep(t *testing.T) {
	emitErr := errors.New("disk full")
	var ran atomic.Int64
	r := Runner[cfg, int]{
		Parallelism: 2,
		Run: func(_ context.Context, p Point[cfg]) (int, error) {
			ran.Add(1)
			time.Sleep(time.Millisecond)
			return p.Index, nil
		},
		Emit: func(res Result[cfg, int]) error {
			if res.Point.Index == 2 {
				return emitErr
			}
			return nil
		},
	}
	results, err := r.Sweep(context.Background(), testSpec(10, 10))
	if !errors.Is(err, emitErr) {
		t.Fatalf("err = %v, want wrapped %v", err, emitErr)
	}
	// The emit failure must stop dispatching: with 100 points there is no
	// reason to finish the matrix once results cannot be written.
	if ran.Load() == 100 {
		t.Error("all 100 points ran despite the emit failure")
	}
	var skipped int
	for _, res := range results {
		if errors.Is(res.Err, ErrSkipped) {
			skipped++
		}
	}
	if skipped == 0 {
		t.Error("no points marked skipped after emit failure")
	}
}

func TestProgressCountsEveryRun(t *testing.T) {
	var calls, lastDone, total int
	r := Runner[cfg, int]{
		Parallelism: 3,
		Run:         func(_ context.Context, p Point[cfg]) (int, error) { return 0, nil },
		Progress: func(done, n int, res Result[cfg, int]) {
			calls++
			lastDone = done
			total = n
		},
	}
	if _, err := r.Sweep(context.Background(), testSpec(3, 4)); err != nil {
		t.Fatal(err)
	}
	if calls != 12 || lastDone != 12 || total != 12 {
		t.Errorf("calls=%d lastDone=%d total=%d, want 12/12/12", calls, lastDone, total)
	}
}

func TestOutputs(t *testing.T) {
	r := Runner[cfg, int]{
		Run: func(_ context.Context, p Point[cfg]) (int, error) { return p.Index * p.Index, nil },
	}
	results, err := r.Sweep(context.Background(), testSpec(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	out, err := Outputs(results)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(out, []int{0, 1, 4, 9}) {
		t.Errorf("Outputs = %v", out)
	}
}

func TestEmptyAxisYieldsEmptySweep(t *testing.T) {
	s := Spec[cfg]{Axes: []Axis[cfg]{{Name: "empty"}}}
	r := Runner[cfg, int]{Run: func(_ context.Context, p Point[cfg]) (int, error) { return 0, nil }}
	results, err := r.Sweep(context.Background(), s)
	if err != nil || len(results) != 0 {
		t.Fatalf("results=%v err=%v", results, err)
	}
}

// TestSweepIndicesSubset: a subset run yields the same per-point results
// and records as the whole-matrix run, in the order the indices were
// given, at any parallelism — the contract the distribution layer's
// shard byte-identity rests on.
func TestSweepIndicesSubset(t *testing.T) {
	s := testSpec(3, 4) // 12 points
	run := func(c *cfg) (int, error) { return c.A*100 + c.B, nil }
	full, err := (&Runner[cfg, int]{
		Run: func(_ context.Context, p Point[cfg]) (int, error) { return run(&p.Config) },
	}).Sweep(context.Background(), s)
	if err != nil {
		t.Fatal(err)
	}

	indices := []int{7, 2, 11, 2} // arbitrary order, one duplicate
	for _, par := range []int{1, 4} {
		var emitted []int
		r := Runner[cfg, int]{
			Parallelism: par,
			Run: func(_ context.Context, p Point[cfg]) (int, error) {
				time.Sleep(time.Duration(p.Index) * 50 * time.Microsecond)
				return run(&p.Config)
			},
			Emit: func(res Result[cfg, int]) error {
				emitted = append(emitted, res.Point.Index)
				return nil
			},
		}
		sub, err := r.SweepIndices(context.Background(), s, indices)
		if err != nil {
			t.Fatal(err)
		}
		if len(sub) != len(indices) {
			t.Fatalf("par=%d: %d results for %d indices", par, len(sub), len(indices))
		}
		for k, i := range indices {
			if sub[k].Err != nil {
				t.Fatalf("par=%d: index %d: %v", par, i, sub[k].Err)
			}
			if sub[k].Point.Index != i || sub[k].Point.Name() != full[i].Point.Name() || sub[k].Out != full[i].Out {
				t.Errorf("par=%d position %d: got point %d (%s) out=%d, want point %d (%s) out=%d",
					par, k, sub[k].Point.Index, sub[k].Point.Name(), sub[k].Out,
					i, full[i].Point.Name(), full[i].Out)
			}
		}
		if !reflect.DeepEqual(emitted, indices) {
			t.Errorf("par=%d: emit order %v, want %v", par, emitted, indices)
		}
	}
}

func TestSweepIndicesValidation(t *testing.T) {
	s := testSpec(2, 2)
	r := Runner[cfg, int]{Run: func(_ context.Context, p Point[cfg]) (int, error) { return 0, nil }}
	if _, err := r.SweepIndices(context.Background(), s, []int{0, 4}); err == nil {
		t.Fatal("index past Size accepted")
	}
	if _, err := r.SweepIndices(context.Background(), s, []int{-1}); err == nil {
		t.Fatal("negative index accepted")
	}
	res, err := r.SweepIndices(context.Background(), s, nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty indices: res=%v err=%v", res, err)
	}
}
