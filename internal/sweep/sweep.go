// Package sweep runs cross-product experiment matrices on a worker pool.
//
// The paper's evaluation is a matrix — execution models × workloads ×
// latency/phantom/TLB/consistency sweeps — and this package is the engine
// that executes such matrices in parallel while keeping the results
// deterministic.
//
// A Spec declares the matrix: a base configuration plus one Axis per
// swept dimension, where each axis value is a named mutation of the
// configuration. Points enumerates the cross product in a fixed row-major
// order (the last axis varies fastest), so every cell has a stable index
// and a stable set of axis labels that depend only on the spec, never on
// scheduling.
//
// A Runner executes the points on a bounded worker pool (default
// GOMAXPROCS) with context cancellation and per-run panic isolation.
// Results come back two ways: as a slice indexed by point — identical for
// any parallelism — and, optionally, streamed through an in-order Emit
// callback as soon as each contiguous prefix of the matrix completes,
// which is how results reach sinks (see Sink) while the sweep is still
// running. Because each point's configuration (including any seed fan-out
// encoded in its axes) is a pure function of its coordinates, matched-pair
// comparisons between cells stay reproducible at any worker count.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"time"

	"reunion/internal/obs"
)

// Value is one named setting of an axis: Apply mutates the configuration
// a point is built from. Apply must not retain the pointer.
type Value[C any] struct {
	Name  string
	Apply func(*C)
}

// Axis is one dimension of the cross product.
type Axis[C any] struct {
	Name   string
	Values []Value[C]
}

// NewAxis builds an axis from a slice of typed values, a label formatter,
// and a setter. It is the common case of sweeping one field.
func NewAxis[C, V any](name string, vals []V, format func(V) string, apply func(*C, V)) Axis[C] {
	ax := Axis[C]{Name: name}
	for _, v := range vals {
		v := v
		ax.Values = append(ax.Values, Value[C]{
			Name:  format(v),
			Apply: func(c *C) { apply(c, v) },
		})
	}
	return ax
}

// Dedupe drops duplicate axis values, preserving first-seen order, and
// writes one "<tool>: ignoring duplicate <axis> value ..." line per
// duplicate to w. CLI axis-flag parsers use it before NewAxis: a
// duplicated flag value (e.g. -seeds 1,1) would silently run every
// matching cell twice and skew aggregate averages.
func Dedupe[V comparable](w io.Writer, tool, axis string, vals []V, format func(V) string) []V {
	seen := make(map[V]bool, len(vals))
	out := vals[:0]
	for _, v := range vals {
		if seen[v] {
			fmt.Fprintf(w, "%s: ignoring duplicate %s value %q\n", tool, axis, format(v))
			continue
		}
		seen[v] = true
		out = append(out, v)
	}
	return out
}

// Spec declares a sweep: a base configuration and the axes whose cross
// product defines the run matrix.
type Spec[C any] struct {
	Name string
	Base C
	Axes []Axis[C]
}

// Label is one axis coordinate of a point.
type Label struct {
	Axis, Value string
}

// Point is one cell of the matrix: its index in enumeration order, its
// axis coordinates, and the fully composed configuration.
type Point[C any] struct {
	Index  int
	Labels []Label
	Config C
}

// Name renders the point's coordinates as "axis=value,axis=value".
func (p Point[C]) Name() string {
	parts := make([]string, len(p.Labels))
	for i, l := range p.Labels {
		parts[i] = l.Axis + "=" + l.Value
	}
	return strings.Join(parts, ",")
}

// LabelMap returns the point's coordinates as a map (sink records).
func (p Point[C]) LabelMap() map[string]string {
	m := make(map[string]string, len(p.Labels))
	for _, l := range p.Labels {
		m[l.Axis] = l.Value
	}
	return m
}

// FingerprintParts renders the spec's identity — its name plus every
// axis and value name, in order — for a distribution-layer run
// fingerprint (dist.Fingerprint): two specs that could produce
// different record streams render different parts. Callers append
// whatever the axes do not capture (the base configuration, campaign
// draw parameters).
func (s Spec[C]) FingerprintParts() []string {
	parts := []string{"spec:" + s.Name}
	for _, ax := range s.Axes {
		parts = append(parts, "axis:"+ax.Name)
		for _, v := range ax.Values {
			parts = append(parts, v.Name)
		}
	}
	return parts
}

// Size returns the number of points in the cross product.
func (s Spec[C]) Size() int {
	n := 1
	for _, a := range s.Axes {
		n *= len(a.Values)
	}
	return n
}

// Point decodes index i into its cell: the base configuration with each
// axis value applied in axis order. Row-major: the last axis varies
// fastest.
func (s Spec[C]) Point(i int) Point[C] {
	p := Point[C]{Index: i, Config: s.Base, Labels: make([]Label, len(s.Axes))}
	idx := make([]int, len(s.Axes))
	rem := i
	for a := len(s.Axes) - 1; a >= 0; a-- {
		k := len(s.Axes[a].Values)
		idx[a] = rem % k
		rem /= k
	}
	for a, ax := range s.Axes {
		v := ax.Values[idx[a]]
		p.Labels[a] = Label{Axis: ax.Name, Value: v.Name}
		if v.Apply != nil {
			v.Apply(&p.Config)
		}
	}
	return p
}

// Points enumerates the whole matrix in index order.
func (s Spec[C]) Points() []Point[C] {
	pts := make([]Point[C], s.Size())
	for i := range pts {
		pts[i] = s.Point(i)
	}
	return pts
}

// Result is the outcome of one point's run.
type Result[C, R any] struct {
	Point Point[C]
	Out   R
	Err   error
}

// ErrSkipped marks points that were never run because the sweep was
// cancelled first.
var ErrSkipped = errors.New("sweep: run skipped (cancelled)")

// Runner executes a Spec on a worker pool.
type Runner[C, R any] struct {
	// Run executes one point. It is called from multiple goroutines and
	// must be safe for concurrent use across distinct points.
	Run func(ctx context.Context, p Point[C]) (R, error)
	// Parallelism bounds the worker pool; 0 means GOMAXPROCS.
	Parallelism int
	// Progress, if set, observes every completed run in completion order
	// (non-deterministic under parallelism; for live reporting only). It is
	// called from the Sweep goroutine, never concurrently.
	Progress func(done, total int, r Result[C, R])
	// Emit, if set, receives results in strict point-index order, each as
	// soon as the contiguous prefix up to it has completed. A non-nil
	// error stops emission and fails the sweep. Called from the Sweep
	// goroutine, never concurrently.
	Emit func(r Result[C, R]) error
	// Obs, if enabled, observes the sweep: a span per run plus
	// sweep_runs_total / sweep_run_errors_total counters and a
	// sweep_run_duration_us histogram. Pure observer — results, Progress,
	// and the Emit stream are unaffected (asserted by the telemetry
	// equivalence tests).
	Obs obs.Scope
}

// Sweep runs every point of the spec and returns results indexed by
// point, so the output is deterministic for any parallelism. On
// cancellation it returns the partial results (unrun points carry
// ErrSkipped) and the context's error. Individual run failures and panics
// are isolated into their point's Result.Err rather than failing the
// sweep.
func (r *Runner[C, R]) Sweep(ctx context.Context, spec Spec[C]) ([]Result[C, R], error) {
	return r.sweepPoints(ctx, spec.Points())
}

// SweepIndices runs only the given points of the spec, identified by
// their global matrix indices, in the given order: results come back (and
// Emit fires) by position in indices, carrying each point's global Index
// and labels unchanged. It is how a distribution layer runs one shard's
// slice of a matrix — because Spec.Point is a pure function of the index,
// a subset run's records are byte-identical to the same points of a
// whole-matrix run at any parallelism. Every index must lie in
// [0, spec.Size()); duplicates are legal (each runs independently).
func (r *Runner[C, R]) SweepIndices(ctx context.Context, spec Spec[C], indices []int) ([]Result[C, R], error) {
	size := spec.Size()
	points := make([]Point[C], len(indices))
	for k, i := range indices {
		if i < 0 || i >= size {
			return nil, fmt.Errorf("sweep: index %d out of range [0,%d)", i, size)
		}
		points[k] = spec.Point(i)
	}
	return r.sweepPoints(ctx, points)
}

// sweepObs caches the per-sweep metric handles so the hot path does not
// re-resolve names per run. The zero value (telemetry off) is all nils,
// which every method tolerates.
type sweepObs struct {
	trace    *obs.Tracer
	runs     *obs.Counter
	errs     *obs.Counter
	duration *obs.Histogram
}

func newSweepObs(sc obs.Scope) sweepObs {
	o := sweepObs{trace: sc.Trace}
	if m := sc.Metrics; m != nil {
		o.runs = m.Counter("sweep_runs_total", "Sweep points executed.")
		o.errs = m.Counter("sweep_run_errors_total", "Sweep points that returned an error.")
		o.duration = m.Histogram("sweep_run_duration_us", "Wall time of one sweep point in microseconds.")
	}
	return o
}

// sweepPoints is the shared worker-pool body: results, Progress, and the
// in-order Emit stream are all positional over the given points.
func (r *Runner[C, R]) sweepPoints(ctx context.Context, points []Point[C]) ([]Result[C, R], error) {
	n := len(points)
	results := make([]Result[C, R], n)
	for i := range results {
		results[i] = Result[C, R]{Point: points[i], Err: ErrSkipped}
	}
	if n == 0 {
		return results, ctx.Err()
	}

	// A derived context lets an Emit failure stop dispatching promptly:
	// once results can no longer be written there is no point finishing
	// the rest of the matrix.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	par := r.Parallelism
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
	}
	if par > n {
		par = n
	}

	so := newSweepObs(r.Obs)

	jobs := make(chan int)
	completions := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i] = r.runOne(ctx, points[i], so)
				completions <- i
			}
		}()
	}
	go func() {
		defer close(jobs)
		for i := 0; i < n; i++ {
			select {
			case jobs <- i:
			case <-ctx.Done():
				return
			}
		}
	}()
	go func() {
		wg.Wait()
		close(completions)
	}()

	// The collector is the only goroutine that calls Progress and Emit.
	// Emission is gated on the contiguous completed prefix, which is what
	// makes streamed output identical at any worker count.
	emitted := 0
	done := 0
	completed := make([]bool, n)
	var emitErr error
	for i := range completions {
		done++
		if r.Progress != nil {
			r.Progress(done, n, results[i])
		}
		completed[i] = true
		for emitErr == nil && r.Emit != nil && emitted < n && completed[emitted] {
			if err := r.Emit(results[emitted]); err != nil {
				emitErr = fmt.Errorf("sweep: emit point %d: %w", emitted, err)
				cancel()
			} else {
				emitted++
			}
		}
	}
	if emitErr != nil {
		return results, emitErr
	}
	return results, ctx.Err()
}

// runOne executes a single point, converting a panic into that point's
// error so one bad configuration cannot take down the whole matrix.
func (r *Runner[C, R]) runOne(ctx context.Context, p Point[C], so sweepObs) (res Result[C, R]) {
	res.Point = p
	var sp *obs.Span
	var begin time.Time
	if so.trace != nil || so.duration != nil {
		sp = so.trace.StartSpan("sweep", "run", obs.Arg{Key: "index", Val: p.Index}, obs.Arg{Key: "point", Val: p.Name()})
		begin = time.Now()
	}
	defer func() {
		if rec := recover(); rec != nil {
			res.Err = fmt.Errorf("sweep: panic in point %d (%s): %v", p.Index, p.Name(), rec)
		}
		if so.duration != nil {
			so.duration.Observe(time.Since(begin).Microseconds())
		}
		so.runs.Inc()
		if res.Err != nil {
			so.errs.Inc()
		}
		sp.End(obs.Arg{Key: "err", Val: res.Err != nil})
	}()
	if err := ctx.Err(); err != nil {
		res.Err = ErrSkipped
		return
	}
	res.Out, res.Err = r.Run(ctx, p)
	return
}

// FirstError returns the first per-point error in index order (ignoring
// none), a convenience for sweeps that treat any failure as fatal.
func FirstError[C, R any](results []Result[C, R]) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("point %d (%s): %w", r.Point.Index, r.Point.Name(), r.Err)
		}
	}
	return nil
}

// Outputs extracts the Out of every result in index order, failing on the
// first per-point error.
func Outputs[C, R any](results []Result[C, R]) ([]R, error) {
	if err := FirstError(results); err != nil {
		return nil, err
	}
	out := make([]R, len(results))
	for i, r := range results {
		out[i] = r.Out
	}
	return out, nil
}
