package sweep

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Record is the serialized form of one finished run, the unit every sink
// consumes. Label and metric maps marshal with sorted keys (encoding/json
// sorts map keys), so a stream of records written in point-index order is
// byte-for-byte reproducible at any parallelism.
type Record struct {
	Sweep   string             `json:"sweep"`
	Index   int                `json:"index"`
	Labels  map[string]string  `json:"labels"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
	Err     string             `json:"err,omitempty"`
}

// NewRecord flattens one run into a Record.
func NewRecord(sweepName string, index int, labels map[string]string, metrics map[string]float64, err error) Record {
	rec := Record{Sweep: sweepName, Index: index, Labels: labels, Metrics: metrics}
	if err != nil {
		rec.Err = err.Error()
		rec.Metrics = nil
	}
	return rec
}

// Sink receives a stream of records. Implementations need not be safe for
// concurrent use: the engine emits from a single goroutine.
type Sink interface {
	Write(Record) error
	Close() error
}

// JSONL writes one JSON object per line (the sweep CLI's results-file
// format, suitable for BENCH_*.json-style trajectory tracking).
type JSONL struct {
	w io.Writer
}

// NewJSONL returns a JSON Lines sink over w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Write marshals one record and appends a newline.
func (s *JSONL) Write(rec Record) error {
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = s.w.Write(b)
	return err
}

// Close flushes nothing (the writer owns buffering) and never fails.
func (s *JSONL) Close() error { return nil }

// CSV writes records as comma-separated rows. The column set —
// "sweep,index,<labels...>,<metrics...>,err" with label and metric names
// sorted — is fixed by the first record that carries metrics; error
// records arriving before it are buffered so a failing first cell cannot
// truncate the metric columns of the whole file. Missing keys render
// empty.
type CSV struct {
	w          *csv.Writer
	labelCols  []string
	metricCols []string
	wroteHead  bool
	pending    []Record // error records seen before the columns were fixed
}

// NewCSV returns a CSV sink over w.
func NewCSV(w io.Writer) *CSV { return &CSV{w: csv.NewWriter(w)} }

// Write renders one record, emitting the header first.
func (s *CSV) Write(rec Record) error {
	if !s.wroteHead {
		if len(rec.Metrics) == 0 && rec.Err != "" {
			s.pending = append(s.pending, rec)
			return nil
		}
		if err := s.writeHead(rec); err != nil {
			return err
		}
	}
	return s.writeRow(rec)
}

func (s *CSV) writeHead(rec Record) error {
	s.labelCols = sortedKeys(rec.Labels)
	s.metricCols = sortedKeys(rec.Metrics)
	head := append([]string{"sweep", "index"}, s.labelCols...)
	head = append(head, s.metricCols...)
	head = append(head, "err")
	if err := s.w.Write(head); err != nil {
		return err
	}
	s.wroteHead = true
	for _, p := range s.pending {
		if err := s.writeRow(p); err != nil {
			return err
		}
	}
	s.pending = nil
	return nil
}

func (s *CSV) writeRow(rec Record) error {
	row := []string{rec.Sweep, strconv.Itoa(rec.Index)}
	for _, k := range s.labelCols {
		row = append(row, rec.Labels[k])
	}
	for _, k := range s.metricCols {
		if v, ok := rec.Metrics[k]; ok {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		} else {
			row = append(row, "")
		}
	}
	row = append(row, rec.Err)
	return s.w.Write(row)
}

// Close flushes the csv writer, first draining buffered error records if
// no record with metrics ever arrived.
func (s *CSV) Close() error {
	if !s.wroteHead && len(s.pending) > 0 {
		if err := s.writeHead(s.pending[0]); err != nil {
			return err
		}
	}
	s.w.Flush()
	return s.w.Error()
}

// Memory buffers records in order, for tests and in-process consumers.
// Unlike the file sinks it is safe for concurrent use.
type Memory struct {
	mu      sync.Mutex
	records []Record
	closed  bool
}

// NewMemory returns an in-memory sink.
func NewMemory() *Memory { return &Memory{} }

// Write appends the record.
func (s *Memory) Write(rec Record) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("sweep: write to closed memory sink")
	}
	s.records = append(s.records, rec)
	return nil
}

// Close marks the sink closed.
func (s *Memory) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}

// Records returns a copy of everything written so far.
func (s *Memory) Records() []Record {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Record, len(s.records))
	copy(out, s.records)
	return out
}

// Tee fans one record stream out to several sinks.
type Tee struct {
	Sinks []Sink
}

// Write forwards to every sink, stopping at the first error.
func (t Tee) Write(rec Record) error {
	for _, s := range t.Sinks {
		if err := s.Write(rec); err != nil {
			return err
		}
	}
	return nil
}

// Close closes every sink, returning the first error.
func (t Tee) Close() error {
	var first error
	for _, s := range t.Sinks {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
