package tlb

import "testing"

// BenchmarkTLBProbe measures the side-effect-free residency probe the
// issue stage runs before every memory access under software TLB
// management (batched per issue window on the tick path).
func BenchmarkTLBProbe(b *testing.B) {
	t := New(64, 4)
	for p := uint64(0); p < 16; p++ {
		t.Preload(p)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !t.Probe(uint64(i & 15)) {
			b.Fatal("preloaded page not resident")
		}
	}
}

// BenchmarkTLBAccess measures the filling lookup (hit path), including
// the LRU update.
func BenchmarkTLBAccess(b *testing.B) {
	t := New(64, 4)
	for p := uint64(0); p < 16; p++ {
		t.Preload(p)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		t.Access(uint64(i & 15))
	}
}

// TestTLBProbeZeroAlloc pins both lookup paths at zero allocations.
func TestTLBProbeZeroAlloc(t *testing.T) {
	tb := New(64, 4)
	tb.Preload(3)
	if a := testing.AllocsPerRun(1000, func() {
		tb.Probe(3)
		tb.Access(3)
		tb.Access(999) // miss + fill: still no heap traffic
	}); a != 0 {
		t.Fatalf("TLB lookups allocate %v per run, want 0", a)
	}
}
