package tlb

import "reunion/internal/bin"

// Wire codec for TLB snapshots (checkpoint serialization).

// Encode writes the snapshot.
func (s *TLBState) Encode(w *bin.Writer) {
	w.Uvarint(uint64(len(s.entries)))
	for _, e := range s.entries {
		w.U64(e.page)
		w.Bool(e.valid)
		w.I64(e.lru)
	}
	w.I64(s.tick)
	w.I64(s.hits)
	w.I64(s.misses)
}

// DecodeTLBState reads a snapshot written by Encode.
func DecodeTLBState(r *bin.Reader) *TLBState {
	s := &TLBState{}
	n := r.Len(8 + 1 + 8)
	for i := 0; i < n; i++ {
		s.entries = append(s.entries, entry{page: r.U64(), valid: r.Bool(), lru: r.I64()})
	}
	s.tick = r.I64()
	s.hits = r.I64()
	s.misses = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// Entries returns the number of snapshotted entries (geometry check at
// bind time).
func (s *TLBState) Entries() int { return len(s.entries) }
