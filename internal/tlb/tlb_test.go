package tlb

import (
	"testing"
	"testing/quick"
)

func TestMissThenHit(t *testing.T) {
	tb := New(8, 2)
	if tb.Access(5) {
		t.Fatal("hit in empty TLB")
	}
	if !tb.Access(5) {
		t.Fatal("miss after fill")
	}
	if tb.Hits != 1 || tb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tb.Hits, tb.Misses)
	}
}

func TestLRUWithinSet(t *testing.T) {
	tb := New(2, 2) // 1 set, 2 ways
	tb.Access(1)
	tb.Access(2)
	tb.Access(1) // 2 becomes LRU
	tb.Access(3) // evicts 2
	if !tb.Probe(1) || tb.Probe(2) || !tb.Probe(3) {
		t.Fatal("LRU eviction picked the wrong victim")
	}
}

func TestProbeDoesNotMutate(t *testing.T) {
	tb := New(8, 2)
	if tb.Probe(9) {
		t.Fatal("probe hit in empty TLB")
	}
	if tb.Misses != 0 || tb.Hits != 0 {
		t.Fatal("probe counted")
	}
	tb.Access(9)
	h, m := tb.Hits, tb.Misses
	tb.Probe(9)
	if tb.Hits != h || tb.Misses != m {
		t.Fatal("probe mutated counters")
	}
}

func TestPreload(t *testing.T) {
	tb := New(8, 2)
	tb.Preload(4)
	if tb.Misses != 0 {
		t.Fatal("preload counted a miss")
	}
	if !tb.Access(4) {
		t.Fatal("preloaded page missed")
	}
}

func TestPreloadEvictsLRU(t *testing.T) {
	tb := New(2, 2)
	tb.Preload(1)
	tb.Preload(2)
	tb.Access(1)
	tb.Preload(3) // evicts 2
	if tb.Probe(2) || !tb.Probe(1) || !tb.Probe(3) {
		t.Fatal("preload eviction wrong")
	}
}

func TestResetStats(t *testing.T) {
	tb := New(8, 2)
	tb.Access(1)
	tb.Access(1)
	tb.ResetStats()
	if tb.Hits != 0 || tb.Misses != 0 {
		t.Fatal("reset failed")
	}
	if !tb.Probe(1) {
		t.Fatal("reset must not drop entries")
	}
}

func TestBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(24, 8) // 3 sets: not a power of two
}

func TestModeString(t *testing.T) {
	if Hardware.String() != "hardware" || Software.String() != "software" {
		t.Fatal("mode names")
	}
}

// Property: two TLBs fed the identical access stream have identical
// hit/miss outcomes — the determinism the software-handler model relies on
// to keep vocal and mute cores architecturally aligned.
func TestDeterministicTwins(t *testing.T) {
	f := func(pages []uint16) bool {
		a, b := New(64, 2), New(64, 2)
		for _, p := range pages {
			if a.Access(uint64(p)) != b.Access(uint64(p)) {
				return false
			}
		}
		return a.Hits == b.Hits && a.Misses == b.Misses
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: a fully-associative-sized stream within capacity never misses
// twice for the same page.
func TestNoRepeatMissWithinReach(t *testing.T) {
	tb := New(128, 2)
	for round := 0; round < 3; round++ {
		for p := uint64(0); p < 64; p++ {
			tb.Access(p)
		}
	}
	// 64 pages over 64 sets: one per set; only the first round misses.
	if tb.Misses != 64 {
		t.Fatalf("misses=%d want 64", tb.Misses)
	}
}
