// Package tlb models the instruction and data translation lookaside
// buffers and their two management disciplines from the paper's §5.5:
//
//   - Hardware-managed: a miss costs a fixed page-walk latency and nothing
//     else (the baseline for most of the paper's results).
//   - Software-managed (UltraSPARC III "fast TLB miss handler"): a miss
//     invokes a handler containing two traps (entry and exit) and three
//     non-idempotent MMU accesses — five serializing events. Under any
//     checking microarchitecture each of those exposes the full comparison
//     latency, which is the effect Figure 7(b) quantifies.
//
// TLB state is updated on the committed instruction stream only. This keeps
// the vocal and mute TLBs of a logical pair exactly identical (they commit
// the same instruction stream), so a software handler is always invoked at
// the same instruction on both cores and never causes architectural
// divergence — matching a real machine, where the handler is part of the
// architectural execution.
package tlb

// Mode selects the TLB management discipline.
type Mode uint8

// Management modes.
const (
	// Hardware: misses are serviced by a fixed-latency page walker.
	Hardware Mode = iota
	// Software: misses trap to the UltraSPARC III-style fast miss handler
	// (2 traps + 3 non-idempotent MMU accesses + handler body).
	Software
)

// String names the mode.
func (m Mode) String() string {
	if m == Software {
		return "software"
	}
	return "hardware"
}

type entry struct {
	page  uint64
	valid bool
	lru   int64
}

// TLB is a set-associative translation buffer over page numbers. The
// simulator uses identity translation, so the TLB is a timing and counting
// structure: Access reports hit/miss and fills on miss.
type TLB struct {
	sets    [][]entry
	setMask uint64
	tick    int64

	Hits   int64
	Misses int64
}

// New builds a TLB with the given entry count and associativity.
func New(entries, ways int) *TLB {
	numSets := entries / ways
	if numSets <= 0 || numSets&(numSets-1) != 0 {
		panic("tlb: entries/ways must give a power-of-two set count")
	}
	sets := make([][]entry, numSets)
	backing := make([]entry, entries)
	for i := range sets {
		sets[i], backing = backing[:ways:ways], backing[ways:]
	}
	return &TLB{sets: sets, setMask: uint64(numSets - 1)}
}

// Access looks up a page, filling on miss (LRU). It returns true on hit.
func (t *TLB) Access(page uint64) bool {
	set := t.sets[page&t.setMask]
	t.tick++
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.tick
			t.Hits++
			return true
		}
	}
	t.Misses++
	victim := &set[0]
	for i := range set {
		if !set[i].valid {
			victim = &set[i]
			break
		}
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	*victim = entry{page: page, valid: true, lru: t.tick}
	return false
}

// Probe reports whether page is resident without filling, counting, or
// touching LRU state (used to decide whether a software handler must run
// before mutating TLB state).
func (t *TLB) Probe(page uint64) bool {
	set := t.sets[page&t.setMask]
	for i := range set {
		if set[i].valid && set[i].page == page {
			return true
		}
	}
	return false
}

// Preload installs a page without counting (warmup).
func (t *TLB) Preload(page uint64) {
	set := t.sets[page&t.setMask]
	t.tick++
	for i := range set {
		if set[i].valid && set[i].page == page {
			set[i].lru = t.tick
			return
		}
	}
	for i := range set {
		if !set[i].valid {
			set[i] = entry{page: page, valid: true, lru: t.tick}
			return
		}
	}
	victim := &set[0]
	for i := range set {
		if set[i].lru < victim.lru {
			victim = &set[i]
		}
	}
	*victim = entry{page: page, valid: true, lru: t.tick}
}

// ResetStats clears hit/miss counters (measurement-window boundaries).
func (t *TLB) ResetStats() { t.Hits, t.Misses = 0, 0 }

// TLBState is a checkpoint of the TLB: entries, LRU clock, and counters.
type TLBState struct {
	entries      []entry
	tick         int64
	hits, misses int64
}

// Snapshot captures the TLB state. Read-only.
func (t *TLB) Snapshot() *TLBState {
	s := &TLBState{tick: t.tick, hits: t.Hits, misses: t.Misses}
	for _, set := range t.sets {
		s.entries = append(s.entries, set...)
	}
	return s
}

// Restore rewrites the TLB from a snapshot (same geometry by
// construction: checkpoints restore onto the system they were taken from).
func (t *TLB) Restore(s *TLBState) {
	i := 0
	for _, set := range t.sets {
		i += copy(set, s.entries[i:])
	}
	t.tick = s.tick
	t.Hits, t.Misses = s.hits, s.misses
}
