package coherence

import (
	"maps"

	"reunion/internal/cache"
	"reunion/internal/interconnect"
)

// Checkpoint support for the shared cache controller (see the reunion
// package's System.Snapshot). The snapshot is a shallow struct copy
// (every counter and scalar) plus deep copies of the reference state:
// the cache array, the directory, the bank queues, the memory-bank
// timestamps, and the in-flight bookkeeping maps. Queued and parked
// *cache.Req values are shared between snapshot and live state — a
// request is immutable after creation, and its completion callback
// resolves the L1 MSHR by block at fire time, so a restored request
// replays exactly against the restored caches.

// L2State is a checkpoint of the controller.
type L2State struct {
	l2    L2 // shallow copy; reference fields fixed up below
	arr   cache.ArrayState
	dir   map[uint64]dirEntry
	banks []interconnect.BankQueueState
}

// Snapshot captures the controller state. Read-only.
func (l2 *L2) Snapshot() *L2State {
	s := &L2State{l2: *l2, arr: l2.arr.Snapshot()}
	s.dir = make(map[uint64]dirEntry, len(l2.dir))
	for b, d := range l2.dir {
		s.dir[b] = *d
	}
	for _, b := range l2.banks {
		s.banks = append(s.banks, b.Snapshot())
	}
	s.l2.memBankFree = append([]int64(nil), l2.memBankFree...)
	s.l2.pendingSync = maps.Clone(l2.pendingSync)
	s.l2.syncMinToken = maps.Clone(l2.syncMinToken)
	s.l2.fillsInFlight = maps.Clone(l2.fillsInFlight)
	return s
}

// Restore rewrites the controller from a snapshot. Directory entries are
// rebuilt as fresh allocations: nothing holds a *dirEntry across cycles
// (lookups go through the map at service time).
func (l2 *L2) Restore(s *L2State) {
	banks, l1d := l2.banks, l2.l1d
	*l2 = s.l2
	l2.banks, l2.l1d = banks, l1d
	l2.arr.Restore(s.arr)
	l2.dir = make(map[uint64]*dirEntry, len(s.dir))
	for b, d := range s.dir {
		cp := d
		l2.dir[b] = &cp
	}
	for i, b := range l2.banks {
		b.Restore(s.banks[i])
	}
	l2.memBankFree = append([]int64(nil), s.l2.memBankFree...)
	l2.pendingSync = maps.Clone(s.l2.pendingSync)
	l2.syncMinToken = maps.Clone(s.l2.syncMinToken)
	l2.fillsInFlight = maps.Clone(s.l2.fillsInFlight)
}
