package coherence

import (
	"testing"
	"testing/quick"

	"reunion/internal/cache"
	"reunion/internal/mem"
	"reunion/internal/sim"
)

// rig assembles an L2 with n registered vocal L1s (and optional mute L1s)
// plus a drainable clock.
type rig struct {
	eq  *sim.EventQueue
	mem *mem.Memory
	l2  *L2
	l1  []*cache.L1
}

func testConfig() Config {
	return Config{
		CapacityBytes: 256 << 10, // small L2 so eviction paths are reachable
		Ways:          8,
		Banks:         4,
		HitLatency:    35,
		XBarLatency:   4,
		RecallLatency: 16,
		MemLatency:    240,
		MemBanks:      8,
		MemBankBusy:   24,
		MemMSHRs:      64,
		PortsPerBank:  1,
		Phantom:       PhantomGlobal,
	}
}

func newRig(t *testing.T, cfg Config, vocal int, mute int) *rig {
	t.Helper()
	r := &rig{eq: sim.NewEventQueue(), mem: mem.New()}
	r.l2 = NewL2(cfg, r.eq, r.mem, vocal+mute)
	for i := 0; i < vocal+mute; i++ {
		isVocal := i < vocal
		pair := i
		if !isVocal {
			pair = i - vocal // mute core i pairs with vocal core i-vocal
		}
		l1 := cache.NewL1("l1", i, pair, isVocal, 8<<10, 2, 8, r.l2, false)
		r.l2.RegisterL1D(i, l1)
		r.l1 = append(r.l1, l1)
	}
	return r
}

// drain advances time until the memory system goes quiet.
func (r *rig) drain(t *testing.T) {
	t.Helper()
	for i := 0; i < 100_000; i++ {
		r.eq.Advance(r.eq.Now() + 1)
		r.l2.Tick()
		quiet := r.eq.Pending() == 0
		for _, b := range r.l2.banks {
			if b.Len() > 0 {
				quiet = false
			}
		}
		if quiet {
			return
		}
	}
	t.Fatal("memory system did not drain")
}

func blockN(n uint64) uint64 { return n * mem.BlockBytes }

func (r *rig) load(t *testing.T, core int, block uint64, word int) uint64 {
	t.Helper()
	var got uint64
	gotSet := false
	st, v := r.l1[core].Load(block, word, func(x uint64) { got, gotSet = x, true })
	switch st {
	case cache.Hit:
		return v
	case cache.Miss:
		r.drain(t)
		if !gotSet {
			t.Fatal("load never completed")
		}
		return got
	default:
		t.Fatal("load retry in quiet system")
		return 0
	}
}

func (r *rig) store(t *testing.T, core int, block uint64, word int, val uint64) {
	t.Helper()
	for i := 0; i < 100; i++ {
		done := false
		switch r.l1[core].Store(block, word, val, func() { done = true }) {
		case cache.Hit:
			return
		case cache.Miss:
			r.drain(t)
			if !done {
				t.Fatal("store never completed")
			}
			return
		case cache.Retry:
			r.drain(t)
		}
	}
	t.Fatal("store retried forever")
}

func TestReadYourWrites(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(10)
	r.mem.WriteWord(b, 111)
	if got := r.load(t, 0, b, 0); got != 111 {
		t.Fatalf("initial load %d", got)
	}
	r.store(t, 0, b, 0, 222)
	if got := r.load(t, 0, b, 0); got != 222 {
		t.Fatalf("read-your-write %d", got)
	}
}

func TestCrossCoreVisibility(t *testing.T) {
	r := newRig(t, testConfig(), 4, 0)
	b := blockN(20)
	// Everyone reads (shared), then core 1 writes, then everyone re-reads.
	for c := 0; c < 4; c++ {
		if got := r.load(t, c, b, 3); got != 0 {
			t.Fatalf("core %d initial %d", c, got)
		}
	}
	r.store(t, 1, b, 3, 77)
	for c := 0; c < 4; c++ {
		if got := r.load(t, c, b, 3); got != 77 {
			t.Fatalf("core %d stale read %d after remote store", c, got)
		}
	}
}

func TestWriteWriteTransfer(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(30)
	r.store(t, 0, b, 0, 1)
	r.store(t, 1, b, 0, 2) // must recall core 0's dirty M line
	if got := r.load(t, 0, b, 0); got != 2 {
		t.Fatalf("core 0 read %d after write-write transfer", got)
	}
}

func TestExclusiveGrantOnSoloRead(t *testing.T) {
	r := newRig(t, testConfig(), 2, 0)
	b := blockN(40)
	r.load(t, 0, b, 0)
	l := r.l1[0].Arr.Peek(b)
	if l == nil || l.State != cache.Exclusive {
		t.Fatalf("solo reader should get E, has %v", l)
	}
	// A second reader forces a downgrade.
	r.load(t, 1, b, 0)
	if st := r.l1[0].Arr.Peek(b).State; st != cache.Shared {
		t.Fatalf("first reader still %v after second reader", st)
	}
}

func TestDirtyWritebackReachesMemoryOnL2Eviction(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 4 << 10 // 64 lines: tiny, forces L2 evictions
	cfg.Ways = 2
	r := newRig(t, cfg, 1, 0)
	b := blockN(1)
	r.store(t, 0, b, 0, 99)
	// Evict the dirty line from the L1 by filling its set, then stream
	// enough blocks through the L2 to evict it there too.
	for i := uint64(2); i < 300; i++ {
		r.load(t, 0, blockN(i*128+1), 0) // same L1 set pressure varies
	}
	r.drain(t)
	// Wherever the data ended up, the coherent view must still be 99.
	got := r.l2.DebugRead(b)
	if got[0] != 99 {
		t.Fatalf("coherent view lost the store: %d", got[0])
	}
}

func TestPhantomGlobalSeesOwnerData(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1) // core 0 vocal, core 1 mute
	b := blockN(50)
	r.store(t, 0, b, 0, 42) // vocal holds M
	if got := r.load(t, 1, b, 0); got != 42 {
		t.Fatalf("global phantom read %d, want owner's 42", got)
	}
	// The peek must not change the owner's state.
	if st := r.l1[0].Arr.Peek(b).State; st != cache.Modified {
		t.Fatalf("owner state changed to %v by phantom peek", st)
	}
	if r.l2.PhantomPeeks == 0 {
		t.Fatal("peek not counted")
	}
}

func TestPhantomRepliesGrantWritePermission(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(55)
	r.load(t, 1, b, 0)
	l := r.l1[1].Arr.Peek(b)
	if l == nil || l.State != cache.Exclusive {
		t.Fatalf("phantom reply state %v, want Exclusive (write permission)", l.State)
	}
	// Mute stores hit locally and never become visible to the system.
	r.store(t, 1, b, 0, 1234)
	if r.mem.ReadWord(b) == 1234 {
		t.Fatal("mute store leaked to memory")
	}
	if got := r.l2.DebugRead(b); got[0] == 1234 {
		t.Fatal("mute store visible in coherent view")
	}
}

func TestPhantomNullReturnsGarbage(t *testing.T) {
	cfg := testConfig()
	cfg.Phantom = PhantomNull
	r := newRig(t, cfg, 1, 1)
	b := blockN(60)
	r.mem.WriteWord(b, 7)
	r.load(t, 0, b, 0) // vocal caches it; L2 now has it
	if got := r.load(t, 1, b, 0); got == 7 {
		t.Fatal("null phantom returned coherent data")
	}
	if r.l2.PhantomGarbage == 0 {
		t.Fatal("garbage not counted")
	}
}

func TestPhantomSharedHitsL2MissesGarbage(t *testing.T) {
	cfg := testConfig()
	cfg.Phantom = PhantomShared
	r := newRig(t, cfg, 1, 1)
	inL2 := blockN(70)
	r.mem.WriteWord(inL2, 7)
	r.load(t, 0, inL2, 0) // brings into L2
	if got := r.load(t, 1, inL2, 0); got != 7 {
		t.Fatalf("shared phantom L2 hit returned %d", got)
	}
	missing := blockN(71)
	r.mem.WriteWord(missing, 8)
	if got := r.load(t, 1, missing, 0); got == 8 {
		t.Fatal("shared phantom L2 miss returned coherent data")
	}
}

func TestPhantomGlobalMemoryReadDoesNotInstall(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(80)
	r.mem.WriteWord(b, 5)
	before := r.l2.MissesL2
	if got := r.load(t, 1, b, 0); got != 5 {
		t.Fatalf("global phantom off-chip read %d", got)
	}
	if r.l2.arr.Peek(b) != nil {
		t.Fatal("phantom memory read installed in L2 (must not change memory-system state)")
	}
	if r.l2.MissesL2 == before {
		t.Fatal("miss not counted")
	}
	if r.l2.PhantomMemReads == 0 {
		t.Fatal("phantom memory read not counted")
	}
}

func TestSyncRequestCombinesPair(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(90)
	r.mem.WriteWord(b, 3)
	// Make the mute's copy stale: mute reads, then vocal writes.
	r.load(t, 1, b, 0)
	r.store(t, 0, b, 0, 9)

	var vGot, mGot uint64
	vDone, mDone := false, false
	if !r.l1[0].SyncFill(b, 0, false, 1, func(v uint64) { vGot, vDone = v, true }) {
		t.Fatal("vocal sync rejected")
	}
	r.drain(t)
	if vDone || mDone {
		t.Fatal("sync completed with only one side arrived")
	}
	if !r.l1[1].SyncFill(b, 0, false, 1, func(v uint64) { mGot, mDone = v, true }) {
		t.Fatal("mute sync rejected")
	}
	r.drain(t)
	if !vDone || !mDone {
		t.Fatal("sync did not complete after both sides arrived")
	}
	if vGot != 9 || mGot != 9 {
		t.Fatalf("sync values %d/%d want 9/9 (single coherent value)", vGot, mGot)
	}
	if r.l2.SyncRequests != 1 {
		t.Fatalf("SyncRequests=%d", r.l2.SyncRequests)
	}
}

func TestSyncCancelDropsStaleRequests(t *testing.T) {
	r := newRig(t, testConfig(), 1, 1)
	b := blockN(95)
	called := false
	r.l1[0].SyncFill(b, 0, false, 1, func(uint64) { called = true })
	r.drain(t) // parked at the controller
	r.l2.CancelSync(0, 2)
	r.l1[0].AbortMiss(b)
	// A fresh pair of sync requests with the new token must succeed.
	vDone, mDone := false, false
	r.l1[0].SyncFill(b, 0, false, 2, func(uint64) { vDone = true })
	r.l1[1].SyncFill(b, 0, false, 2, func(uint64) { mDone = true })
	r.drain(t)
	if called {
		t.Fatal("cancelled sync completed")
	}
	if !vDone || !mDone {
		t.Fatal("fresh sync after cancel did not complete")
	}
}

// TestCoherenceVsSerialOracle is the protocol's core safety property: for
// any interleaving of loads and stores issued one-at-a-time (each drained
// to completion), every vocal load observes exactly the value of the last
// completed store to that word — the sequential memory semantics the
// directory must preserve through recalls, invalidations, upgrades and
// evictions.
func TestCoherenceVsSerialOracle(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 16 << 10 // small: exercise inclusion evictions
	cfg.Ways = 2
	r := newRig(t, cfg, 4, 0)
	oracle := make(map[uint64]uint64)
	f := func(ops []struct {
		Core  uint8
		Block uint8
		Word  uint8
		Val   uint64
		Store bool
	}) bool {
		for _, op := range ops {
			core := int(op.Core) % 4
			b := blockN(uint64(op.Block) % 64)
			w := int(op.Word) % mem.BlockWords
			if op.Store {
				r.store(t, core, b, w, op.Val)
				oracle[b+uint64(w)*8] = op.Val
			} else if got := r.load(t, core, b, w); got != oracle[b+uint64(w)*8] {
				t.Logf("core %d loaded %d from %#x want %d", core, got, b, oracle[b+uint64(w)*8])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDebugHelpers(t *testing.T) {
	r := newRig(t, testConfig(), 1, 0)
	b := blockN(7)
	r.store(t, 0, b, 0, 5)
	if s := r.l2.DebugDir(b); s == "" {
		t.Fatal("DebugDir empty")
	}
	if got := r.l2.DebugRead(b); got[0] != 5 {
		t.Fatalf("DebugRead %d", got[0])
	}
	if r.l2.Capacity() != (256<<10)/mem.BlockBytes {
		t.Fatal("capacity")
	}
	arr, wait := r.l2.QueueStats()
	if arr <= 0 || wait < 0 {
		t.Fatalf("queue stats %d %d", arr, wait)
	}
}

func TestPrefill(t *testing.T) {
	r := newRig(t, testConfig(), 1, 0)
	b := blockN(33)
	r.mem.WriteWord(b, 4)
	if !r.l2.Prefill(b) {
		t.Fatal("prefill rejected")
	}
	if r.l2.Prefill(b) {
		t.Fatal("double prefill reported install")
	}
	if l := r.l2.arr.Peek(b); l == nil || l.Data[0] != 4 {
		t.Fatal("prefill contents wrong")
	}
}

func TestPhantomStrengthStrings(t *testing.T) {
	if PhantomGlobal.String() != "global" || PhantomShared.String() != "shared" || PhantomNull.String() != "null" {
		t.Fatal("strength names")
	}
	if PhantomGlobal != 0 {
		t.Fatal("PhantomGlobal must be the zero value (safe default)")
	}
}

// TestConcurrentConvergence issues overlapping loads and stores from four
// cores without draining between operations, then drains and checks
// convergence invariants: the coherent view of each word equals the last
// value some store wrote there (per-block stores use distinct per-core
// values so "some store" is checkable), at most one L1 holds a
// non-Shared copy of any block, and the directory's owner actually has
// the line.
func TestConcurrentConvergence(t *testing.T) {
	cfg := testConfig()
	cfg.CapacityBytes = 16 << 10
	cfg.Ways = 2
	r := newRig(t, cfg, 4, 0)
	rnd := sim.NewRand(99)

	const blocks = 32
	written := make(map[uint64]map[uint64]bool) // block -> set of values written
	var outstanding int
	for step := 0; step < 4000; step++ {
		core := rnd.Intn(4)
		b := blockN(uint64(rnd.Intn(blocks)))
		if rnd.Intn(2) == 0 {
			val := uint64(step)<<8 | uint64(core)
			st := r.l1[core].Store(b, 0, val, func() { outstanding-- })
			switch st {
			case cache.Hit:
				if written[b] == nil {
					written[b] = map[uint64]bool{}
				}
				written[b][val] = true
			case cache.Miss:
				outstanding++
				if written[b] == nil {
					written[b] = map[uint64]bool{}
				}
				written[b][val] = true
			case cache.Retry:
			}
		} else {
			st, _ := r.l1[core].Load(b, 0, func(uint64) { outstanding-- })
			if st == cache.Miss {
				outstanding++
			}
		}
		// Advance a little without draining: requests overlap.
		for i := 0; i < rnd.Intn(4); i++ {
			r.eq.Advance(r.eq.Now() + 1)
			r.l2.Tick()
		}
	}
	r.drain(t)
	if outstanding != 0 {
		t.Fatalf("%d operations never completed", outstanding)
	}
	for i := 0; i < blocks; i++ {
		b := blockN(uint64(i))
		vals := written[b]
		if len(vals) == 0 {
			continue
		}
		got := r.l2.DebugRead(b)[0]
		if !vals[got] {
			t.Fatalf("block %d converged to %d, which no store wrote", i, got)
		}
		// Single-writer invariant.
		exclusive := 0
		for c := 0; c < 4; c++ {
			if l := r.l1[c].Arr.Peek(b); l != nil && (l.State == cache.Modified || l.State == cache.Exclusive) {
				exclusive++
			}
		}
		if exclusive > 1 {
			t.Fatalf("block %d held exclusively by %d caches:\n%s", i, exclusive, r.l2.DebugDir(b))
		}
	}
}
