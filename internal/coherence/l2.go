// Package coherence implements the shared cache controller of the
// simulated CMP: a banked, inclusive L2 with a directory tracking vocal L1
// sharers and owners, backed by a fixed-latency memory model.
//
// On top of the ordinary MESI-style protocol, the controller implements
// the three Reunion mechanisms from §4.2 of the paper:
//
//   - Vocal/mute semantics: the directory never records mute caches as
//     sharers or owners, and mute evictions/writebacks never reach memory.
//     The coherence protocol behaves as if mute cores were absent.
//   - Phantom requests: every non-synchronizing mute request is transformed
//     into a phantom request that returns a value without changing
//     coherence state. Three strengths are modelled — null (arbitrary data
//     on any miss), shared (L2 hit data, arbitrary on L2 miss), and global
//     (L2, then vocal-owner peek, then main memory).
//   - Synchronizing requests: issued by both members of a logical pair
//     during the re-execution protocol. The controller collects both,
//     flushes the block from the pair's private caches, performs a coherent
//     write transaction on the pair's behalf, and replies to both cores
//     atomically.
package coherence

import (
	"fmt"
	"os"

	"reunion/internal/cache"
	"reunion/internal/interconnect"
	"reunion/internal/mem"
	"reunion/internal/sim"
)

// TraceBlock, when non-zero, logs every controller action on that block
// to stderr (protocol debugging).
var TraceBlock uint64

func (l2 *L2) tracef(block uint64, format string, args ...any) {
	if TraceBlock != 0 && block == TraceBlock {
		fmt.Fprintf(os.Stderr, "[%8d] l2: %s\n", l2.eq.Now(), fmt.Sprintf(format, args...))
	}
}

// PhantomStrength selects how diligently a phantom request searches for
// coherent data (paper §4.2).
type PhantomStrength uint8

// Phantom request strengths. Global — the paper's default and the only
// strength that keeps input incoherence rare — is the zero value, so a
// zero Config gets the sensible configuration.
const (
	// PhantomGlobal checks the shared cache, peeks private vocal caches,
	// and issues non-coherent reads to main memory for off-chip misses.
	PhantomGlobal PhantomStrength = iota
	// PhantomShared checks the shared cache and returns arbitrary values
	// only on L2 misses.
	PhantomShared
	// PhantomNull returns arbitrary data on any request.
	PhantomNull
)

// String names the strength as in the paper's tables.
func (p PhantomStrength) String() string {
	switch p {
	case PhantomNull:
		return "null"
	case PhantomShared:
		return "shared"
	case PhantomGlobal:
		return "global"
	}
	return "?"
}

// Config holds shared-cache and memory parameters (Table 1 defaults come
// from the reunion package).
type Config struct {
	CapacityBytes int
	Ways          int
	Banks         int   // power of two
	HitLatency    int64 // L1-miss to L1-fill for an L2 hit (35 cycles)
	XBarLatency   int64 // one-way crossbar traversal, included in HitLatency
	RecallLatency int64 // extra latency to recall/peek a private L1 copy
	MemLatency    int64 // off-chip access (60ns at 4GHz = 240 cycles)
	MemBanks      int   // memory banks (64); 0 disables bank contention
	MemBankBusy   int64 // cycles a bank is occupied per access
	MemMSHRs      int   // max outstanding off-chip fetches (64)
	PortsPerBank  int   // bank service bandwidth per cycle
	Phantom       PhantomStrength
}

type dirEntry struct {
	sharers uint32 // vocal core bitmask, excluding owner
	owner   int8   // vocal core index with E/M permission, -1 if none
}

type flightKey struct {
	core  int
	block uint64
}

// L2 is the shared cache controller. It implements cache.Below.
type L2 struct {
	cfg Config
	eq  *sim.EventQueue
	arr *cache.Array
	dir map[uint64]*dirEntry
	mem *mem.Memory

	banks    []*interconnect.BankQueue
	bankMask uint64

	l1d []*cache.L1 // indexed by global core id; nil until registered

	memInFlight  int
	memBankFree  []int64 // next free cycle per memory bank
	MemQueueWait int64   // cycles memory requests waited on busy banks

	pendingSync  map[int]*cache.Req // pair id -> first-arrived sync request
	syncMinToken map[int]int64      // pair id -> minimum valid sync token

	// fillsInFlight tracks replies that grant a copy to a vocal L1 and
	// have been scheduled but not yet delivered. A directory-listed owner
	// or sharer with no line and no in-flight fill has silently evicted a
	// clean line; with an in-flight fill the prober must retry (the fill
	// lands within a bounded reply latency, so retries terminate).
	fillsInFlight map[flightKey]int

	// Stats
	Reads, ReadX, Ifetches int64
	HitsL2, MissesL2       int64
	Recalls                int64
	Invalidations          int64
	MemAccesses            int64
	PhantomReqs            int64
	PhantomGarbage         int64
	PhantomPeeks           int64
	PhantomMemReads        int64
	SyncRequests           int64
	WritebacksRecv         int64
	RetriesInternal        int64
}

// NewL2 builds the controller.
func NewL2(cfg Config, eq *sim.EventQueue, m *mem.Memory, numCores int) *L2 {
	if cfg.Banks&(cfg.Banks-1) != 0 || cfg.Banks == 0 {
		panic("coherence: banks must be a power of two")
	}
	l2 := &L2{
		cfg:           cfg,
		eq:            eq,
		arr:           cache.NewArray(cfg.CapacityBytes, cfg.Ways),
		dir:           make(map[uint64]*dirEntry),
		mem:           m,
		bankMask:      uint64(cfg.Banks - 1),
		l1d:           make([]*cache.L1, numCores),
		pendingSync:   make(map[int]*cache.Req),
		syncMinToken:  make(map[int]int64),
		fillsInFlight: make(map[flightKey]int),
	}
	for i := 0; i < cfg.Banks; i++ {
		l2.banks = append(l2.banks, interconnect.NewBankQueue(cfg.PortsPerBank))
	}
	if cfg.MemBanks > 0 {
		l2.memBankFree = make([]int64, cfg.MemBanks)
	}
	return l2
}

// memAccessLatency returns the latency of an off-chip access to block,
// accounting for memory bank occupancy (banks are interleaved by block
// address). Doubling miss traffic — as relaxed input replication does —
// shows up here as queueing delay.
func (l2 *L2) memAccessLatency(block uint64) int64 {
	if l2.memBankFree == nil {
		return l2.cfg.MemLatency
	}
	bank := (block >> mem.BlockShift) % uint64(len(l2.memBankFree))
	now := l2.eq.Now()
	start := now
	if l2.memBankFree[bank] > start {
		start = l2.memBankFree[bank]
		l2.MemQueueWait += start - now
	}
	l2.memBankFree[bank] = start + l2.cfg.MemBankBusy
	return start - now + l2.cfg.MemLatency
}

// RegisterL1D attaches a core's data cache for probes and phantom peeks.
func (l2 *L2) RegisterL1D(core int, c *cache.L1) { l2.l1d[core] = c }

// QueueStats returns aggregate bank-queue contention statistics.
func (l2 *L2) QueueStats() (arrivals, totalWait int64) {
	for _, b := range l2.banks {
		arrivals += b.Arrivals
		totalWait += b.TotalWait
	}
	return
}

func (l2 *L2) bankOf(block uint64) *interconnect.BankQueue {
	return l2.banks[(block>>mem.BlockShift)&l2.bankMask]
}

// Request accepts an L1 (or pair) request. It arrives at its bank after
// the crossbar latency.
func (l2 *L2) Request(r *cache.Req) {
	l2.eq.AfterR(l2.cfg.XBarLatency, &EvXbar{R: r}, l2)
}

// XbarArrive returns the fire closure for a crossbar-traversal event:
// the request lands in its bank queue. The checkpoint decoder rebuilds
// pending traversals from EvXbar descriptors through this factory; live
// scheduling goes through RunEvent instead.
func (l2 *L2) XbarArrive(r *cache.Req) func() {
	return func() { l2.xbarArrive(r) }
}

func (l2 *L2) xbarArrive(r *cache.Req) { l2.bankOf(r.Block).Push(l2.eq.Now(), r) }

// RunEvent implements sim.EventRunner: the controller schedules its
// events with descriptors and dispatches on their type here, so the hot
// paths build no per-event closures. The checkpoint decoder still
// rebinds decoded events through the closure factories (Fn takes
// precedence over the runner), keeping one implementation per action.
func (l2 *L2) RunEvent(desc any) {
	switch d := desc.(type) {
	case *EvXbar:
		l2.xbarArrive(d.R)
	case *EvReply:
		l2.deliverReply(d)
	case *EvMemCont:
		l2.memFetchDone(d)
	case *EvPhantomMem:
		l2.phantomMemDone(d.R)
	default:
		panic(fmt.Sprintf("coherence: L2.RunEvent on unknown descriptor %T", desc))
	}
}

// Tick services every bank once per cycle. Call exactly once per cycle.
func (l2 *L2) Tick() {
	now := l2.eq.Now()
	for _, b := range l2.banks {
		for {
			it := b.Pop(now)
			if it == nil {
				break
			}
			l2.process(it.(*cache.Req))
		}
	}
}

// QuiesceWake implements sim.Tickable: the controller has work exactly
// when a bank queue holds a request (arrivals, including internal
// requeues, land in a bank; everything else — memory completions, reply
// deliveries — travels through scheduled events).
func (l2 *L2) QuiesceWake() (int64, bool) {
	for _, b := range l2.banks {
		if b.Len() > 0 {
			return 0, false
		}
	}
	return 0, true
}

// AccountIdle implements sim.Tickable: the controller keeps no per-cycle
// counters.
func (l2 *L2) AccountIdle(int64) {}

// ResetStats zeroes every controller statistic, including bank-queue
// contention and memory-queue wait (measurement-window boundary).
func (l2 *L2) ResetStats() {
	l2.Reads, l2.ReadX, l2.Ifetches = 0, 0, 0
	l2.HitsL2, l2.MissesL2 = 0, 0
	l2.Recalls, l2.Invalidations = 0, 0
	l2.MemAccesses = 0
	l2.PhantomReqs, l2.PhantomGarbage, l2.PhantomPeeks, l2.PhantomMemReads = 0, 0, 0, 0
	l2.SyncRequests = 0
	l2.WritebacksRecv = 0
	l2.RetriesInternal = 0
	l2.MemQueueWait = 0
	for _, b := range l2.banks {
		b.ResetStats()
	}
}

// requeue re-enqueues a request that hit a transient conflict; it will be
// serviced after everything already queued, which guarantees progress for
// in-flight notifications it may be waiting on.
func (l2 *L2) requeue(r *cache.Req) {
	l2.RetriesInternal++
	l2.bankOf(r.Block).Push(l2.eq.Now(), r)
}

// reply schedules a response to the requester after service plus crossbar
// time. extra adds recall or memory latency. Replies that grant a copy to
// a vocal data cache are tracked until delivery so directory probes can
// distinguish in-flight fills from silent clean evictions.
func (l2 *L2) reply(r *cache.Req, data *mem.Block, exclusive bool, extra int64) {
	lat := l2.cfg.HitLatency - l2.cfg.XBarLatency + extra
	if lat < 1 {
		lat = 1
	}
	track := r.Kind != cache.Ifetch
	if track {
		l2.fillsInFlight[flightKey{core: r.Core, block: r.Block}]++
	}
	d := &EvReply{R: r, Data: *data, Exclusive: exclusive, Track: track}
	l2.eq.AfterR(lat, d, l2)
}

// DeliverReply returns the fire closure for a scheduled reply: deliver
// the response, then retire the in-flight fill-tracking entry. The
// tracking increment happened at schedule time and is captured in the
// snapshotted fillsInFlight map, so a checkpoint rebind must only attach
// this closure — never re-increment.
func (l2 *L2) DeliverReply(d *EvReply) func() {
	return func() { l2.deliverReply(d) }
}

func (l2 *L2) deliverReply(d *EvReply) {
	d.R.Done(cache.Resp{Data: d.Data, Exclusive: d.Exclusive})
	if d.Track {
		key := flightKey{core: d.R.Core, block: d.R.Block}
		if l2.fillsInFlight[key]--; l2.fillsInFlight[key] == 0 {
			delete(l2.fillsInFlight, key)
		}
	}
}

func (l2 *L2) fillInFlight(core int, block uint64) bool {
	return l2.fillsInFlight[flightKey{core: core, block: block}] > 0
}

func garbageBlock(block uint64) mem.Block {
	var b mem.Block
	for i := range b {
		b[i] = sim.Mix64(block ^ (uint64(i)+1)*0x9e3779b97f4a7c15 ^ 0xbadc0ffee0ddf00d)
	}
	return b
}

func (l2 *L2) process(r *cache.Req) {
	if TraceBlock != 0 && r.Block == TraceBlock {
		d := l2.dir[r.Block]
		ds := "nil"
		if d != nil {
			ds = fmt.Sprintf("{own=%d sh=%b}", d.owner, d.sharers)
		}
		l2.tracef(r.Block, "process %v core=%d vocal=%v dir=%s", r.Kind, r.Core, r.Vocal, ds)
	}
	switch r.Kind {
	case cache.Writeback:
		l2.processWriteback(r)
	case cache.Sync:
		l2.processSync(r)
	default:
		if r.Vocal {
			l2.processVocal(r)
		} else {
			l2.processPhantom(r)
		}
	}
}

func (l2 *L2) processWriteback(r *cache.Req) {
	if !r.Vocal {
		// The controller ignores all eviction and writeback requests
		// originating from mute cores (paper §4.2). L1s drop them at the
		// source, so seeing one here is a bug.
		panic("coherence: mute writeback reached shared cache controller")
	}
	l2.WritebacksRecv++
	d := l2.dir[r.Block]
	if d != nil {
		if d.owner == int8(r.Core) {
			d.owner = -1
		}
		d.sharers &^= 1 << uint(r.Core)
		if r.Data == nil { // clean-eviction notification
			if d.owner < 0 && d.sharers == 0 {
				delete(l2.dir, r.Block)
			}
			return
		}
	}
	if r.Data == nil {
		return
	}
	if l := l2.arr.Peek(r.Block); l != nil {
		l.Data = *r.Data
		l.Dirty = true
		l.State = cache.Modified
	} else {
		// Victimized from L2 while the L1 still held it; write home.
		l2.mem.WriteBlock(r.Block, r.Data)
	}
}

// recallOwner pulls the freshest copy from the current owner's L1 into the
// L2 line. invalidate selects recall-invalidate vs recall-downgrade.
// It returns false (and requeues r) if the owner's copy is transiently
// unavailable (fill in flight or line locked by an atomic).
func (l2 *L2) recallOwner(r *cache.Req, line *cache.Line, d *dirEntry, invalidate bool) (ok bool, extra int64) {
	if d == nil || d.owner < 0 {
		return true, 0
	}
	if int(d.owner) == r.Core {
		// The requester itself is the stale-registered owner (it silently
		// evicted a clean E line and is re-requesting). Clear and proceed.
		d.owner = -1
		return true, 0
	}
	if l2.fillInFlight(int(d.owner), r.Block) {
		// The owner's grant has not landed yet. Probing now would find
		// either nothing or a stale pre-upgrade S line; both are wrong to
		// act on. Retry once the grant is delivered (bounded wait).
		l2.tracef(r.Block, "recallOwner core=%d: owner=%d fill in flight, requeue", r.Core, d.owner)
		l2.requeue(r)
		return false, 0
	}
	owner := l2.l1d[d.owner]
	var data mem.Block
	var dirty, had, busy bool
	if invalidate {
		data, dirty, had, busy = owner.ProbeInvalidate(r.Block)
	} else {
		data, dirty, had, busy = owner.ProbeDowngrade(r.Block)
	}
	if busy {
		l2.requeue(r)
		return false, 0
	}
	l2.Recalls++
	if had && dirty {
		line.Data = data
		line.Dirty = true
	}
	if !had {
		// No line and no grant in flight: the owner silently evicted a
		// clean line; the L2 copy is current. Clear ownership below.
		l2.tracef(r.Block, "recallOwner core=%d: owner=%d treated as silent evict", r.Core, d.owner)
	}
	if invalidate {
		d.owner = -1
	} else {
		d.sharers |= 1 << uint(d.owner)
		d.owner = -1
	}
	return true, l2.cfg.RecallLatency
}

// invalidateSharers drops every vocal sharer except keep. It returns
// false (after requeueing r) when a sharer's fill is still in flight or
// its line is transiently locked: clearing the directory bit then would
// let the late fill create a stale copy the directory no longer tracks.
func (l2 *L2) invalidateSharers(r *cache.Req, block uint64, d *dirEntry, keep int) bool {
	if d == nil {
		return true
	}
	for c := 0; c < len(l2.l1d); c++ {
		if c == keep || d.sharers&(1<<uint(c)) == 0 {
			continue
		}
		if l1 := l2.l1d[c]; l1 != nil {
			if l2.fillInFlight(c, block) {
				l2.requeue(r)
				return false
			}
			if _, _, _, busy := l1.ProbeInvalidate(block); busy {
				l2.requeue(r)
				return false
			}
			l2.Invalidations++
		}
		d.sharers &^= 1 << uint(c)
	}
	return true
}

// ensureLine obtains the L2 line for d.R.Block, fetching from memory when
// absent. The continuation named by d runs when the line is resident, with
// extra latency already accumulated for the reply. Returns false if the
// request was deferred. The continuation is carried as plain data (not a
// closure) so a pending off-chip fetch survives checkpoint serialization.
func (l2 *L2) ensureLine(d *EvMemCont) bool {
	r := d.R
	if l := l2.arr.Lookup(r.Block); l != nil {
		l2.HitsL2++
		l2.runCont(d, l, 0)
		return true
	}
	if l2.memInFlight >= l2.cfg.MemMSHRs {
		l2.requeue(r)
		return false
	}
	l2.MissesL2++
	l2.MemAccesses++
	l2.memInFlight++
	l2.eq.AfterR(l2.memAccessLatency(r.Block), d, l2)
	return true
}

// MemFetchDone returns the fire closure for an off-chip fetch completion:
// install the block and resume the request's continuation. The off-chip
// latency was paid by the event itself; the reply adds only its normal
// on-chip service and crossbar time. The memInFlight increment happened at
// schedule time and is captured in the snapshot, so a checkpoint rebind
// must only attach this closure.
func (l2 *L2) MemFetchDone(d *EvMemCont) func() {
	return func() { l2.memFetchDone(d) }
}

func (l2 *L2) memFetchDone(d *EvMemCont) {
	l2.memInFlight--
	var data mem.Block
	l2.mem.ReadBlock(d.R.Block, &data)
	line := l2.installL2(d.R.Block, &data)
	l2.runCont(d, line, 0)
}

// runCont dispatches a resident-line continuation by kind.
func (l2 *L2) runCont(d *EvMemCont, line *cache.Line, extra int64) {
	switch d.Cont {
	case ContIfetch:
		l2.reply(d.R, &line.Data, false, extra)
	case ContGetS:
		l2.contGetS(d.R, line, extra)
	case ContGetX:
		l2.contGetX(d.R, line, extra)
	case ContSync:
		l2.contSync(d, line, extra)
	default:
		panic(fmt.Sprintf("coherence: unknown continuation kind %d", d.Cont))
	}
}

// installL2 places a block into the L2 array, handling inclusive eviction
// of the victim's L1 copies.
func (l2 *L2) installL2(block uint64, data *mem.Block) *cache.Line {
	if l := l2.arr.Peek(block); l != nil {
		// Raced with another miss to the same block; keep resident copy.
		return l
	}
	line, victim, evicted := l2.arr.Install(block, data, cache.Shared)
	if evicted {
		l2.evictInclusive(victim)
	}
	return line
}

func (l2 *L2) evictInclusive(victim cache.Line) {
	data := victim.Data
	dirty := victim.Dirty
	if d := l2.dir[victim.Block]; d != nil {
		if d.owner >= 0 {
			if od, odirty, had, busy := l2.l1d[d.owner].ProbeInvalidate(victim.Block); had && !busy && odirty {
				data = od
				dirty = true
			}
			// A busy (locked) or in-flight owner copy is a tolerated rare
			// race: its eventual writeback goes straight to memory. LRU
			// makes it near-impossible (the line was just touched).
		}
		for c := 0; c < len(l2.l1d); c++ {
			if d.sharers&(1<<uint(c)) == 0 {
				continue
			}
			if l1 := l2.l1d[c]; l1 != nil {
				l1.ProbeInvalidate(victim.Block)
				l2.Invalidations++
			}
		}
		delete(l2.dir, victim.Block)
	}
	if dirty {
		l2.mem.WriteBlock(victim.Block, &data)
	}
}

func (l2 *L2) dirFor(block uint64) *dirEntry {
	d := l2.dir[block]
	if d == nil {
		d = &dirEntry{owner: -1}
		l2.dir[block] = d
	}
	return d
}

func (l2 *L2) processVocal(r *cache.Req) {
	switch r.Kind {
	case cache.Ifetch:
		l2.Ifetches++
		l2.ensureLine(&EvMemCont{R: r, Cont: ContIfetch})
	case cache.GetS:
		l2.Reads++
		l2.ensureLine(&EvMemCont{R: r, Cont: ContGetS})
	case cache.GetX:
		l2.ReadX++
		l2.ensureLine(&EvMemCont{R: r, Cont: ContGetX})
	default:
		panic(fmt.Sprintf("coherence: unexpected vocal request kind %v", r.Kind))
	}
}

// contGetS resumes a vocal read once the line is resident.
func (l2 *L2) contGetS(r *cache.Req, line *cache.Line, extra int64) {
	d := l2.dirFor(r.Block)
	ok, rextra := l2.recallOwner(r, line, d, false)
	if !ok {
		return
	}
	exclusive := d.sharers == 0 && d.owner < 0
	if exclusive {
		d.owner = int8(r.Core)
	} else {
		d.sharers |= 1 << uint(r.Core)
	}
	l2.reply(r, &line.Data, exclusive, extra+rextra)
}

// contGetX resumes a vocal read-exclusive once the line is resident.
func (l2 *L2) contGetX(r *cache.Req, line *cache.Line, extra int64) {
	d := l2.dirFor(r.Block)
	ok, rextra := l2.recallOwner(r, line, d, true)
	if !ok {
		return
	}
	if !l2.invalidateSharers(r, r.Block, d, r.Core) {
		return
	}
	d.sharers = 0
	d.owner = int8(r.Core)
	l2.reply(r, &line.Data, true, extra+rextra)
}

// processPhantom serves a mute request at the configured strength.
// Phantom replies always grant write permission within the mute hierarchy.
func (l2 *L2) processPhantom(r *cache.Req) {
	l2.PhantomReqs++
	switch l2.cfg.Phantom {
	case PhantomNull:
		g := garbageBlock(r.Block)
		l2.PhantomGarbage++
		l2.reply(r, &g, true, 0)
	case PhantomShared:
		if line := l2.arr.Lookup(r.Block); line != nil {
			l2.HitsL2++
			l2.reply(r, &line.Data, true, 0)
			return
		}
		l2.MissesL2++
		g := garbageBlock(r.Block)
		l2.PhantomGarbage++
		l2.reply(r, &g, true, 0)
	case PhantomGlobal:
		if line := l2.arr.Lookup(r.Block); line != nil {
			l2.HitsL2++
			// Best-effort freshness: peek a vocal owner's private copy
			// without changing its coherence state.
			if d := l2.dir[r.Block]; d != nil && d.owner >= 0 {
				if data, ok := l2.l1d[d.owner].PeekWord(r.Block); ok {
					l2.PhantomPeeks++
					l2.reply(r, &data, true, l2.cfg.RecallLatency)
					return
				}
			}
			l2.reply(r, &line.Data, true, 0)
			return
		}
		// Off-chip non-coherent read: do not install in L2 (a phantom
		// request must not change memory-system state).
		l2.MissesL2++
		if l2.memInFlight >= l2.cfg.MemMSHRs {
			l2.requeue(r)
			return
		}
		l2.PhantomMemReads++
		l2.MemAccesses++
		l2.memInFlight++
		l2.eq.AfterR(l2.memAccessLatency(r.Block), &EvPhantomMem{R: r}, l2)
	}
}

// PhantomMemDone returns the fire closure for a phantom off-chip read:
// reply with the memory image without installing anything. The memInFlight
// increment happened at schedule time and is captured in the snapshot, so
// a checkpoint rebind must only attach this closure.
func (l2 *L2) PhantomMemDone(r *cache.Req) func() {
	return func() { l2.phantomMemDone(r) }
}

func (l2 *L2) phantomMemDone(r *cache.Req) {
	l2.memInFlight--
	var data mem.Block
	l2.mem.ReadBlock(r.Block, &data)
	l2.reply(r, &data, true, 0)
}

// DebugDir formats the directory and cache state of a block plus every
// registered L1's view of it (wedge diagnosis).
func (l2 *L2) DebugDir(block uint64) string {
	s := fmt.Sprintf("block %#x: ", block)
	if d := l2.dir[block]; d != nil {
		s += fmt.Sprintf("dir{owner=%d sharers=%012b} ", d.owner, d.sharers)
	} else {
		s += "dir{none} "
	}
	if l := l2.arr.Peek(block); l != nil {
		s += fmt.Sprintf("l2{%v dirty=%v w0=%d} ", l.State, l.Dirty, l.Data[0])
	} else {
		s += "l2{miss} "
	}
	for i, l1 := range l2.l1d {
		if l1 == nil {
			continue
		}
		if l := l1.Arr.Peek(block); l != nil {
			s += fmt.Sprintf("l1d%d{%v dirty=%v locked=%v w0=%d} ", i, l.State, l.Dirty, l.Locked, l.Data[0])
		}
	}
	return s
}

// DebugRead returns the current coherent value of a block, outside of
// timing: the owner's private copy if one exists, else the L2 copy, else
// memory. For tests and result inspection.
func (l2 *L2) DebugRead(block uint64) mem.Block {
	if d := l2.dir[block]; d != nil && d.owner >= 0 {
		if data, ok := l2.l1d[d.owner].PeekWord(block); ok {
			return data
		}
	}
	if l := l2.arr.Peek(block); l != nil {
		return l.Data
	}
	var b mem.Block
	l2.mem.ReadBlock(block, &b)
	return b
}

// Prefill installs a block from memory into the L2 without timing (warmup
// from an emulated checkpoint). It reports whether the block was newly
// installed.
func (l2 *L2) Prefill(block uint64) bool {
	if l2.arr.Peek(block) != nil {
		return false
	}
	var d mem.Block
	l2.mem.ReadBlock(block, &d)
	l2.installL2(block, &d)
	return true
}

// Capacity returns the number of blocks the L2 can hold.
func (l2 *L2) Capacity() int { return l2.cfg.CapacityBytes / mem.BlockBytes }

// VisitDirty calls fn for every dirty line in the shared cache, in
// deterministic array order (set-major, then way). Architectural-state
// digests fold dirty L2 lines this way; clean lines mirror memory and
// carry no unique architectural state.
func (l2 *L2) VisitDirty(fn func(block uint64, data *mem.Block)) {
	l2.arr.ForEachValid(func(l *cache.Line) {
		if l.Dirty {
			fn(l.Block, &l.Data)
		}
	})
}

// CancelSync invalidates every synchronizing request of the pair with a
// token below minToken: a parked request is dropped and in-flight ones are
// discarded on arrival. Recovery escalation uses this so stale sync
// requests can never pair with the re-executed ones.
func (l2 *L2) CancelSync(pair int, minToken int64) {
	if r := l2.pendingSync[pair]; r != nil && r.Token < minToken {
		delete(l2.pendingSync, pair)
	}
	if l2.syncMinToken[pair] < minToken {
		l2.syncMinToken[pair] = minToken
	}
}

// processSync implements the synchronizing request: held until both
// members of the logical pair have arrived, then the block is flushed from
// the pair's private caches, a coherent write transaction is performed on
// the pair's behalf, and both cores receive the same value atomically.
func (l2 *L2) processSync(r *cache.Req) {
	if r.Token < l2.syncMinToken[r.Pair] {
		return // cancelled by recovery escalation; the L1 MSHR was aborted
	}
	first, ok := l2.pendingSync[r.Pair]
	if !ok {
		l2.pendingSync[r.Pair] = r
		return
	}
	if first.Token != r.Token {
		// A stale partner survived cancellation bookkeeping; keep the
		// newer request parked and drop the older one.
		if first.Token < r.Token {
			l2.pendingSync[r.Pair] = r
		}
		return
	}
	if first.Block != r.Block {
		panic(fmt.Sprintf("coherence: pair %d sync requests disagree on block: %#x vs %#x",
			r.Pair, first.Block, r.Block))
	}
	vocal, mute := first, r
	if !vocal.Vocal {
		vocal, mute = r, first
	}
	// Stale pre-recovery fills still in flight toward either private cache
	// would land over the synchronizing fill; wait for them to drain.
	if l2.fillInFlight(vocal.Core, r.Block) || l2.fillInFlight(mute.Core, r.Block) {
		l2.pendingSync[r.Pair] = first
		l2.requeue(r)
		return
	}
	l2.SyncRequests++
	// Flush the pair's private copies: the vocal's comes home, the mute's
	// is discarded.
	vd, vdirty, vhad, vbusy := l2.l1d[vocal.Core].ProbeInvalidate(r.Block)
	if vbusy {
		// Cannot happen in the re-execution protocol (the pair is single-
		// stepping and holds no locked lines), but be safe.
		delete(l2.pendingSync, r.Pair)
		l2.requeue(first)
		l2.requeue(r)
		return
	}
	l2.l1d[mute.Core].ProbeInvalidate(r.Block)
	delete(l2.pendingSync, r.Pair)

	l2.ensureLine(&EvMemCont{
		R: r, Cont: ContSync,
		Vocal: vocal, Mute: mute,
		VHad: vhad, VDirty: vdirty, VData: vd,
	})
}

// contSync resumes a combined synchronizing request once the line is
// resident. d carries the pair's two requests and the flushed vocal copy.
func (l2 *L2) contSync(c *EvMemCont, line *cache.Line, extra int64) {
	r := c.R
	d := l2.dirFor(r.Block)
	ok, rextra := l2.recallOwner(r, line, d, true)
	if !ok {
		// recallOwner requeued r; re-park its partner so the retried
		// request finds it and the pair combines again.
		partner := c.Vocal
		if r == c.Vocal {
			partner = c.Mute
		}
		l2.pendingSync[r.Pair] = partner
		return
	}
	if c.VHad && c.VDirty {
		line.Data = c.VData
		line.Dirty = true
	}
	if !l2.invalidateSharers(r, r.Block, d, c.Vocal.Core) {
		// r was requeued; re-park its partner so the retried request
		// finds it and the pair combines again.
		partner := c.Vocal
		if r == c.Vocal {
			partner = c.Mute
		}
		l2.pendingSync[r.Pair] = partner
		return
	}
	d.sharers = 0
	d.owner = int8(c.Vocal.Core)
	// Atomic reply to both members of the pair.
	l2.reply(c.Vocal, &line.Data, true, extra+rextra)
	l2.reply(c.Mute, &line.Data, true, extra+rextra)
}
