package coherence

import (
	"fmt"
	"sort"

	"reunion/internal/bin"
	"reunion/internal/cache"
	"reunion/internal/interconnect"
	"reunion/internal/mem"
)

// This file is the coherence package's half of checkpoint serialization:
// plain-data descriptors for the controller's scheduled events (so pending
// crossbar traversals, reply deliveries, and off-chip fetches survive a
// process boundary) and a wire codec for L2State.
//
// Requests appear in many places at once — bank queues, parked sync slots,
// event descriptors — and processSync compares them by pointer, so the
// codec never serializes a *cache.Req inline. The root checkpoint encoder
// interns every request into a table and passes reqID/req translation
// hooks down; one table index always decodes to one shared *cache.Req.

// EvXbar describes a request in flight across the crossbar toward its
// bank (rebind via L2.XbarArrive).
type EvXbar struct{ R *cache.Req }

// EvReply describes a scheduled reply delivery (rebind via
// L2.DeliverReply; the fill-tracking increment is already in the
// snapshotted map).
type EvReply struct {
	R         *cache.Req
	Data      mem.Block
	Exclusive bool
	Track     bool
}

// ContKind names the continuation that resumes a request once its L2 line
// is resident.
type ContKind uint8

// Continuation kinds.
const (
	// ContIfetch replies with the line for an instruction fetch.
	ContIfetch ContKind = iota + 1
	// ContGetS finishes a vocal read (directory update, shared/exclusive
	// grant).
	ContGetS
	// ContGetX finishes a vocal read-exclusive (recall, invalidations,
	// exclusive grant).
	ContGetX
	// ContSync finishes a combined synchronizing transaction (coherent
	// write on the pair's behalf, atomic reply to both members).
	ContSync
)

// EvMemCont describes a pending off-chip fetch completion together with
// the continuation that resumes the request (rebind via L2.MemFetchDone;
// the memInFlight increment is already in the snapshot). Vocal, Mute and
// the V* fields are meaningful only for ContSync.
type EvMemCont struct {
	R            *cache.Req
	Cont         ContKind
	Vocal, Mute  *cache.Req
	VHad, VDirty bool
	VData        mem.Block
}

// EvPhantomMem describes a pending phantom off-chip read (rebind via
// L2.PhantomMemDone).
type EvPhantomMem struct{ R *cache.Req }

// --- event descriptor codecs ---

// Encode writes the descriptor; reqID interns the request.
func (d *EvXbar) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
}

// DecodeEvXbar reads a descriptor written by Encode; req resolves interned
// request indices.
func DecodeEvXbar(r *bin.Reader, req func(int) *cache.Req) *EvXbar {
	d := &EvXbar{R: req(r.Int())}
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns the request.
func (d *EvReply) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
	for _, word := range d.Data {
		w.U64(word)
	}
	w.Bool(d.Exclusive)
	w.Bool(d.Track)
}

// DecodeEvReply reads a descriptor written by Encode.
func DecodeEvReply(r *bin.Reader, req func(int) *cache.Req) *EvReply {
	d := &EvReply{R: req(r.Int())}
	for i := range d.Data {
		d.Data[i] = r.U64()
	}
	d.Exclusive = r.Bool()
	d.Track = r.Bool()
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns the requests.
func (d *EvMemCont) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
	w.U8(uint8(d.Cont))
	if d.Cont == ContSync {
		w.Int(reqID(d.Vocal))
		w.Int(reqID(d.Mute))
		w.Bool(d.VHad)
		w.Bool(d.VDirty)
		for _, word := range d.VData {
			w.U64(word)
		}
	}
}

// DecodeEvMemCont reads a descriptor written by Encode.
func DecodeEvMemCont(r *bin.Reader, req func(int) *cache.Req) *EvMemCont {
	d := &EvMemCont{R: req(r.Int()), Cont: ContKind(r.U8())}
	if r.Err() == nil && (d.Cont < ContIfetch || d.Cont > ContSync) {
		r.Fail(fmt.Errorf("coherence: unknown continuation kind %d", d.Cont))
		return nil
	}
	if d.Cont == ContSync {
		d.Vocal = req(r.Int())
		d.Mute = req(r.Int())
		d.VHad = r.Bool()
		d.VDirty = r.Bool()
		for i := range d.VData {
			d.VData[i] = r.U64()
		}
		if r.Err() == nil && (d.Vocal == nil || d.Mute == nil) {
			r.Fail(errBadReqRef)
			return nil
		}
	}
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

// Encode writes the descriptor; reqID interns the request.
func (d *EvPhantomMem) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	w.Int(reqID(d.R))
}

// DecodeEvPhantomMem reads a descriptor written by Encode.
func DecodeEvPhantomMem(r *bin.Reader, req func(int) *cache.Req) *EvPhantomMem {
	d := &EvPhantomMem{R: req(r.Int())}
	if r.Err() != nil || d.R == nil {
		r.Fail(errBadReqRef)
		return nil
	}
	return d
}

var errBadReqRef = errCoherence("coherence: bad interned request reference")

type errCoherence string

func (e errCoherence) Error() string { return string(e) }

// --- L2State ---

// VisitReqs calls fn for every request the snapshot references, in
// deterministic order (bank queues FIFO, then parked sync requests by
// pair id). The root encoder builds its interning table with this.
func (s *L2State) VisitReqs(fn func(*cache.Req)) {
	for i := range s.banks {
		s.banks[i].Each(func(it interconnect.Item, _ int64) {
			fn(it.(*cache.Req))
		})
	}
	pairs := sortedKeys(s.l2.pendingSync)
	for _, p := range pairs {
		fn(s.l2.pendingSync[p])
	}
}

func sortedKeys[V any](m map[int]V) []int {
	ks := make([]int, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	return ks
}

// Encode writes the snapshot; reqID interns queued and parked requests.
// Maps are written in sorted key order so the encoding is deterministic.
func (s *L2State) Encode(w *bin.Writer, reqID func(*cache.Req) int) {
	s.arr.Encode(w)

	blocks := make([]uint64, 0, len(s.dir))
	for b := range s.dir {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	w.Uvarint(uint64(len(blocks)))
	for _, b := range blocks {
		d := s.dir[b]
		w.U64(b)
		w.U32(d.sharers)
		w.I64(int64(d.owner))
	}

	w.Uvarint(uint64(len(s.banks)))
	for i := range s.banks {
		bq := &s.banks[i]
		lastSrv, served, arrivals, totWait, maxDepth := bq.Meta()
		w.I64(lastSrv)
		w.Int(served)
		w.I64(arrivals)
		w.I64(totWait)
		w.Int(maxDepth)
		w.Uvarint(uint64(bq.Len()))
		bq.Each(func(it interconnect.Item, arrived int64) {
			w.Int(reqID(it.(*cache.Req)))
			w.I64(arrived)
		})
	}

	w.Uvarint(uint64(len(s.l2.memBankFree)))
	for _, t := range s.l2.memBankFree {
		w.I64(t)
	}
	w.Int(s.l2.memInFlight)

	pairs := sortedKeys(s.l2.pendingSync)
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.Int(p)
		w.Int(reqID(s.l2.pendingSync[p]))
	}
	pairs = sortedKeys(s.l2.syncMinToken)
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		w.Int(p)
		w.I64(s.l2.syncMinToken[p])
	}

	keys := make([]flightKey, 0, len(s.l2.fillsInFlight))
	for k := range s.l2.fillsInFlight {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].core != keys[j].core {
			return keys[i].core < keys[j].core
		}
		return keys[i].block < keys[j].block
	})
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Int(k.core)
		w.U64(k.block)
		w.Int(s.l2.fillsInFlight[k])
	}

	w.I64(s.l2.Reads)
	w.I64(s.l2.ReadX)
	w.I64(s.l2.Ifetches)
	w.I64(s.l2.HitsL2)
	w.I64(s.l2.MissesL2)
	w.I64(s.l2.Recalls)
	w.I64(s.l2.Invalidations)
	w.I64(s.l2.MemAccesses)
	w.I64(s.l2.PhantomReqs)
	w.I64(s.l2.PhantomGarbage)
	w.I64(s.l2.PhantomPeeks)
	w.I64(s.l2.PhantomMemReads)
	w.I64(s.l2.SyncRequests)
	w.I64(s.l2.WritebacksRecv)
	w.I64(s.l2.RetriesInternal)
	w.I64(s.l2.MemQueueWait)
}

// DecodeL2State reads a snapshot written by Encode; req resolves interned
// request indices. Pointer fields (event queue, array, memory, bank and
// L1 references) are left nil for BindTo.
func DecodeL2State(r *bin.Reader, req func(int) *cache.Req) *L2State {
	s := &L2State{arr: cache.DecodeArrayState(r)}

	nd := r.Len(8 + 4 + 8)
	s.dir = make(map[uint64]dirEntry, nd)
	var prevBlock uint64
	for i := 0; i < nd; i++ {
		b := r.U64()
		if i > 0 && b <= prevBlock {
			r.Fail(errCoherence("coherence: snapshot directory not in sorted order"))
			return nil
		}
		prevBlock = b
		sharers := r.U32()
		owner := r.I64()
		if owner < -1 || owner > 127 {
			r.Fail(fmt.Errorf("coherence: snapshot directory owner %d out of range", owner))
			return nil
		}
		s.dir[b] = dirEntry{sharers: sharers, owner: int8(owner)}
	}

	nb := r.Len(8 + 1 + 8 + 8 + 1 + 1)
	for i := 0; i < nb; i++ {
		lastSrv := r.I64()
		served := r.Int()
		arrivals := r.I64()
		totWait := r.I64()
		maxDepth := r.Int()
		nq := r.Len(1 + 8)
		items := make([]interconnect.Item, 0, nq)
		arrived := make([]int64, 0, nq)
		for j := 0; j < nq; j++ {
			rq := req(r.Int())
			at := r.I64()
			if r.Err() == nil && rq == nil {
				r.Fail(errBadReqRef)
				return nil
			}
			items = append(items, rq)
			arrived = append(arrived, at)
		}
		s.banks = append(s.banks,
			interconnect.NewBankQueueState(items, arrived, lastSrv, served, arrivals, totWait, maxDepth))
	}

	nf := r.Len(8)
	for i := 0; i < nf; i++ {
		s.l2.memBankFree = append(s.l2.memBankFree, r.I64())
	}
	s.l2.memInFlight = r.Int()
	if r.Err() == nil && s.l2.memInFlight < 0 {
		r.Fail(fmt.Errorf("coherence: snapshot memInFlight %d negative", s.l2.memInFlight))
		return nil
	}

	np := r.Len(1 + 1)
	s.l2.pendingSync = make(map[int]*cache.Req, np)
	prevPair := -1
	for i := 0; i < np; i++ {
		p := r.Int()
		rq := req(r.Int())
		if r.Err() == nil && (p <= prevPair || rq == nil) {
			r.Fail(errCoherence("coherence: snapshot pendingSync malformed"))
			return nil
		}
		prevPair = p
		s.l2.pendingSync[p] = rq
	}
	np = r.Len(1 + 8)
	s.l2.syncMinToken = make(map[int]int64, np)
	prevPair = -1
	for i := 0; i < np; i++ {
		p := r.Int()
		if r.Err() == nil && p <= prevPair {
			r.Fail(errCoherence("coherence: snapshot syncMinToken not in sorted order"))
			return nil
		}
		prevPair = p
		s.l2.syncMinToken[p] = r.I64()
	}

	nk := r.Len(1 + 8 + 1)
	s.l2.fillsInFlight = make(map[flightKey]int, nk)
	prev := flightKey{core: -1}
	for i := 0; i < nk; i++ {
		k := flightKey{core: r.Int(), block: r.U64()}
		n := r.Int()
		if r.Err() == nil &&
			(n <= 0 || k.core < 0 ||
				(i > 0 && (k.core < prev.core || (k.core == prev.core && k.block <= prev.block)))) {
			r.Fail(errCoherence("coherence: snapshot fillsInFlight malformed"))
			return nil
		}
		prev = k
		s.l2.fillsInFlight[k] = n
	}

	s.l2.Reads = r.I64()
	s.l2.ReadX = r.I64()
	s.l2.Ifetches = r.I64()
	s.l2.HitsL2 = r.I64()
	s.l2.MissesL2 = r.I64()
	s.l2.Recalls = r.I64()
	s.l2.Invalidations = r.I64()
	s.l2.MemAccesses = r.I64()
	s.l2.PhantomReqs = r.I64()
	s.l2.PhantomGarbage = r.I64()
	s.l2.PhantomPeeks = r.I64()
	s.l2.PhantomMemReads = r.I64()
	s.l2.SyncRequests = r.I64()
	s.l2.WritebacksRecv = r.I64()
	s.l2.RetriesInternal = r.I64()
	s.l2.MemQueueWait = r.I64()
	if r.Err() != nil {
		return nil
	}
	return s
}

// BindTo validates the decoded snapshot against the live controller's
// geometry and fixes up the pointer fields Restore carries over (config,
// event queue, array, memory, banks, registered L1s), so Restore on a
// decoded snapshot behaves exactly like Restore on a live one.
func (s *L2State) BindTo(live *L2) error {
	if len(s.banks) != len(live.banks) {
		return fmt.Errorf("coherence: snapshot has %d banks, controller has %d", len(s.banks), len(live.banks))
	}
	if len(s.l2.memBankFree) != len(live.memBankFree) {
		return fmt.Errorf("coherence: snapshot has %d memory banks, controller has %d",
			len(s.l2.memBankFree), len(live.memBankFree))
	}
	n := len(live.l1d)
	for b, d := range s.dir {
		if int(d.owner) >= n {
			return fmt.Errorf("coherence: snapshot directory owner %d out of range for %d cores", d.owner, n)
		}
		if n < 32 && d.sharers>>uint(n) != 0 {
			return fmt.Errorf("coherence: snapshot directory sharers %#x out of range for %d cores (block %#x)",
				d.sharers, n, b)
		}
	}
	for k := range s.l2.fillsInFlight {
		if k.core >= n {
			return fmt.Errorf("coherence: snapshot in-flight fill core %d out of range for %d cores", k.core, n)
		}
	}
	s.l2.cfg = live.cfg
	s.l2.eq = live.eq
	s.l2.arr = live.arr
	s.l2.dir = nil // Restore rebuilds from s.dir
	s.l2.mem = live.mem
	s.l2.banks = live.banks
	s.l2.bankMask = live.bankMask
	s.l2.l1d = live.l1d
	return nil
}
