// Package campaign is the Monte-Carlo fault-injection campaign engine:
// it turns the repository from an IPC reproducer into a dependability-
// measurement system by injecting one precise single-bit fault per trial
// and classifying every outcome.
//
// A Spec declares the fault model (flip-bit range, injection-cycle window,
// cores under test), the trial count per cell, and the cell matrix —
// workload/mode/seed axes expressed as an internal/sweep cross product.
// The engine flattens cells × trials into one sweep matrix and runs it on
// sweep's worker pool, so trial streams inherit the sweep engine's
// guarantees: deterministic enumeration, panic isolation, and in-order
// emission that makes the JSONL results file byte-identical at any
// parallelism.
//
// Every trial's injection is a pure function of the campaign seed and the
// trial's cell coordinates (minus the axes named in StreamExclude), never
// of scheduling. Excluding an axis — typically the execution mode — makes
// cells that differ only on that axis face the *same fault stream*, which
// is what turns "Reunion has zero SDCs, non-redundant does not" from an
// anecdote into a controlled comparison.
//
// Each trial is classified against a fault-free golden run of the same
// seed into exactly one outcome:
//
//   - Masked: the fault never reached architectural state — it was never
//     consumed, or its flipped value died before influencing the committed
//     stream (commit digest matches golden).
//   - Detected: the fingerprint comparison caught the flip and rollback
//     recovery restored correct execution; the trial records its detection
//     latency in cycles and committed instructions.
//   - SDC: silent data corruption — the trial completed but its committed
//     stream diverged from golden with no detection.
//   - DUE: detected-unrecoverable or lost — an unrecoverable pair failure,
//     a run error, or the trial deadline. Terminal, never retried (the
//     kilroy postmortem's lesson for campaign runners).
package campaign

import (
	"context"
	"errors"
	"fmt"
	"strconv"

	"reunion/internal/obs"
	"reunion/internal/sim"
	"reunion/internal/sweep"
)

// FaultModel bounds the Monte-Carlo draws of the single-fault trials.
type FaultModel struct {
	// BitLo/BitHi is the inclusive flip-bit range (defaults 0..63).
	BitLo, BitHi uint
	// WindowLo/WindowHi is the injection-cycle window, measured from the
	// start of the measurement phase: each trial arms its fault at a cycle
	// in [WindowLo, WindowHi). WindowHi defaults to WindowLo+1 (inject at
	// exactly WindowLo).
	WindowLo, WindowHi int64
	// Cores caps the cores under test: trials target a core index in
	// [0, Cores). Zero means every core of the cell's system — the trial
	// runner maps the draw onto the cell's actual core count (which
	// differs by mode: a Reunion cell has a vocal and a mute per logical
	// processor).
	Cores int
}

func (m FaultModel) withDefaults() FaultModel {
	if m.BitLo == 0 && m.BitHi == 0 {
		m.BitHi = 63
	}
	if m.WindowHi <= m.WindowLo {
		m.WindowHi = m.WindowLo + 1
	}
	return m
}

// Trial is one Monte-Carlo draw: which bit to flip, when to arm it, and a
// raw core draw the runner maps onto the cell's core count.
type Trial struct {
	Cell  int // cell index in the matrix
	Index int // trial index within the cell
	Bit   uint
	Cycle int64 // measurement-relative arm cycle

	coreDraw uint64
}

// Core maps the trial's core draw onto a system with n cores.
func (t Trial) Core(n int) int {
	if n <= 0 {
		return 0
	}
	return int(t.coreDraw % uint64(n))
}

// Outcome is the terminal classification of one trial.
type Outcome uint8

// Trial outcomes. Every trial lands in exactly one.
const (
	Masked Outcome = iota
	Detected
	SDC
	DUE
	numOutcomes
)

// Outcomes lists the outcomes in classification-table order.
func Outcomes() []Outcome { return []Outcome{Masked, Detected, SDC, DUE} }

// String names the outcome as the results-file label.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case Detected:
		return "detected"
	case SDC:
		return "sdc"
	case DUE:
		return "due"
	}
	return "?"
}

// Observation is what the trial runner reports back for classification.
type Observation struct {
	// Err is any run failure (build error, panic, golden-run failure);
	// classified DUE.
	Err error
	// Unrecoverable reports a detected, unrecoverable error (phase-2
	// comparison mismatch); classified DUE.
	Unrecoverable bool
	// Completed reports that every vocal core reached the commit target
	// within the trial deadline; a false value is classified DUE.
	Completed bool
	// Armed/Fired track the injection's fate: armed at its cycle, and
	// consumed by a register-writing instruction entering check. An
	// unfired fault is architecturally masked.
	Armed, Fired bool
	FireCycle    int64
	// Detected reports a recovery attributed to the injected fault, with
	// its latency from consumption in cycles and committed instructions.
	Detected                     bool
	LatencyCycles, LatencyInstrs int64
	// Digest is the trial's commit digest; GoldenDigest the fault-free
	// reference for the same cell. DigestOK confirms both latched.
	Digest, GoldenDigest uint64
	DigestOK             bool
	// Core is the resolved target core index (observability only).
	Core int
	// Retired/Squashed count flipped results that reached architectural
	// state vs. were discarded by rollback or a pipeline flush.
	Retired, Squashed int64
	// Diag carries free-form diagnostic text (e.g. a kernel-event trace
	// dump) for live reporting of anomalous trials. It never enters the
	// sink record — diagnostics must not perturb the byte-stable results
	// stream.
	Diag string
}

// Classify maps an observation to its terminal outcome. Priority order:
// lost trials are DUE regardless of what else happened; a fault-attributed
// recovery on a completed trial is Detected; an unconsumed fault is Masked;
// otherwise the commit digest against golden separates Masked from SDC.
//
// A Detected claim does not override retired corruption: if the flipped
// result reached architectural state (Retired > 0 — it aliased past the
// fingerprint, so rollback could not undo it) and the digest diverged,
// the trial is SDC no matter what a later (misattributed) recovery
// claimed. Digest divergence with the flip squashed is NOT corruption —
// a recovered run re-executes with perturbed timing, and racy shared
// memory may legitimately commit different (valid) values than golden.
func Classify(o Observation) Outcome {
	switch {
	case o.Err != nil || o.Unrecoverable || !o.Completed || !o.DigestOK:
		return DUE
	case o.Detected && (o.Digest == o.GoldenDigest || o.Retired == 0):
		return Detected
	case o.Detected:
		return SDC
	case !o.Fired:
		return Masked
	case o.Digest == o.GoldenDigest:
		return Masked
	default:
		return SDC
	}
}

// Spec declares a campaign: the cell matrix, the fault model, and the
// Monte-Carlo parameters.
type Spec[C any] struct {
	Name string
	// Matrix is the cell cross product (workload × mode × seed × …).
	Matrix sweep.Spec[C]
	Model  FaultModel
	// Trials is the number of injected trials per cell (min 1).
	Trials int
	// Seed drives the per-trial injection draws.
	Seed uint64
	// StreamExclude names matrix axes whose value must NOT influence a
	// trial's injection draw, so cells differing only on those axes face
	// an identical fault stream (typically the execution-model axis).
	StreamExclude []string
}

func (s Spec[C]) withDefaults() Spec[C] {
	if s.Trials < 1 {
		s.Trials = 1
	}
	if s.Name == "" {
		s.Name = s.Matrix.Name
	}
	if s.Name == "" {
		s.Name = "campaign"
	}
	s.Model = s.Model.withDefaults()
	return s
}

// draw computes the point's injection deterministically from the campaign
// seed and the point's coordinates minus the excluded axes. The trial
// label participates (distinct trials draw distinct faults); scheduling
// never does.
func (s Spec[C]) draw(pt sweep.Point[C]) Trial {
	h := sim.Mix64(s.Seed ^ 0xfa017ca3)
	for _, l := range pt.Labels {
		if s.streamExcluded(l.Axis) {
			continue
		}
		h = sim.Mix64(h ^ hashString(l.Axis))
		h = sim.Mix64(h ^ hashString(l.Value))
	}
	r := sim.NewRand(h)
	m := s.Model
	t := Trial{
		Cell:     pt.Index / s.Trials,
		Index:    pt.Index % s.Trials,
		Bit:      m.BitLo + uint(r.Uint64()%uint64(m.BitHi-m.BitLo+1)),
		Cycle:    m.WindowLo + int64(r.Uint64()%uint64(m.WindowHi-m.WindowLo)),
		coreDraw: r.Uint64(),
	}
	if m.Cores > 0 {
		t.coreDraw %= uint64(m.Cores)
	}
	return t
}

func (s Spec[C]) streamExcluded(axis string) bool {
	for _, a := range s.StreamExclude {
		if a == axis {
			return true
		}
	}
	return false
}

// hashString is FNV-1a 64.
func hashString(s string) uint64 {
	h := uint64(0xcbf29ce484222325)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	return h
}

// trialAxis appends the Monte-Carlo dimension to the cell matrix. Its
// values mutate nothing: the trial index reaches the runner through the
// point's coordinates.
func trialAxis[C any](trials int) sweep.Axis[C] {
	ax := sweep.Axis[C]{Name: "trial"}
	for i := 0; i < trials; i++ {
		ax.Values = append(ax.Values, sweep.Value[C]{Name: strconv.Itoa(i)})
	}
	return ax
}

// Engine executes a campaign Spec on the sweep worker pool.
type Engine[C any] struct {
	Spec Spec[C]
	// RunTrial executes one injected trial for the given cell. It is
	// called from multiple goroutines and must be safe for concurrent use
	// across distinct trials (the reunion trial runner is: one simulation
	// per call, golden runs memoized behind a singleflight).
	RunTrial func(ctx context.Context, cell sweep.Point[C], t Trial) Observation
	// Parallelism bounds the worker pool; 0 means GOMAXPROCS.
	Parallelism int
	// Sink, if set, receives one record per trial in matrix order —
	// byte-identical output at any parallelism. The engine does not close
	// the sink.
	Sink sweep.Sink
	// Indices, if non-nil, restricts the run to these global indices of
	// the flattened cells×trials matrix (a shard's slice, in the order
	// given — ascending for a distribution plan). Draws, classification,
	// and record bytes are unchanged: a trial's fault stream depends only
	// on its coordinates, so the same index yields the same record
	// whether the whole matrix or one shard runs it. The report covers
	// only the executed trials.
	Indices []int
	// Progress, if set, observes completed trials in completion order
	// (live reporting only).
	Progress func(done, total int, cell sweep.Point[C], t Trial, o Observation, out Outcome)
	// Obs, if enabled, observes the campaign: a span per trial plus
	// campaign_trials_total{outcome=...} counters and a
	// campaign_detect_latency_cycles histogram over detected trials. It is
	// also forwarded to the underlying sweep runner. Pure observer — the
	// report, the sink stream, and Progress are unaffected.
	Obs obs.Scope
}

// trialRun is the engine-internal result of one trial.
type trialRun struct {
	trial Trial
	obs   Observation
	out   Outcome
}

// Run executes every trial and returns the aggregated coverage report.
// Individual trial failures (including panics in RunTrial) become DUE
// outcomes, not campaign failures; the campaign itself fails only on
// context cancellation or a sink write error.
func (e *Engine[C]) Run(ctx context.Context) (*Report, error) {
	spec := e.Spec.withDefaults()
	cells := spec.Matrix.Points()
	combined := sweep.Spec[C]{
		Name: spec.Name,
		Base: spec.Matrix.Base,
		Axes: append(append([]sweep.Axis[C]{}, spec.Matrix.Axes...), trialAxis[C](spec.Trials)),
	}

	rep := newReport(spec.Name, spec.Trials, cells)

	// Campaign-level telemetry: one span per trial carrying the outcome,
	// outcome counters, and a detect-latency histogram. The sweep runner
	// below gets the metrics handle only — its generic per-run span would
	// duplicate the richer trial span.
	var outcomeCounters [numOutcomes]*obs.Counter
	var detectLatency *obs.Histogram
	if m := e.Obs.Metrics; m != nil {
		for _, o := range Outcomes() {
			outcomeCounters[o] = m.Counter("campaign_trials_total", "Campaign trials by terminal outcome.",
				obs.L("outcome", o.String()))
		}
		detectLatency = m.Histogram("campaign_detect_latency_cycles", "Detection latency of detected trials in cycles.")
	}

	runner := sweep.Runner[C, trialRun]{
		Parallelism: e.Parallelism,
		Obs:         obs.Scope{Metrics: e.Obs.Metrics},
		Run: func(ctx context.Context, pt sweep.Point[C]) (trialRun, error) {
			t := spec.draw(pt)
			sp := e.Obs.Trace.StartSpan("campaign", "trial",
				obs.Arg{Key: "cell", Val: t.Cell}, obs.Arg{Key: "trial", Val: t.Index},
				obs.Arg{Key: "point", Val: pt.Name()})
			o := e.RunTrial(ctx, pt, t)
			out := Classify(o)
			sp.End(obs.Arg{Key: "outcome", Val: out.String()})
			outcomeCounters[out].Inc()
			if out == Detected && detectLatency != nil {
				detectLatency.Observe(o.LatencyCycles)
			}
			return trialRun{trial: t, obs: o, out: out}, nil
		},
		Progress: func(done, total int, r sweep.Result[C, trialRun]) {
			if e.Progress != nil {
				e.Progress(done, total, r.Point, r.Out.trial, r.Out.obs, outcomeOf(r))
			}
		},
		Emit: func(r sweep.Result[C, trialRun]) error {
			tr := r.Out
			if r.Err != nil {
				if errors.Is(r.Err, sweep.ErrSkipped) {
					// A cancelled, never-executed trial must not enter the
					// stream: it is not a lost trial (nothing ran), and a
					// resumable journal would otherwise persist it as a
					// bogus DUE record that resume skips forever. Stop
					// emission at the last executed trial instead.
					return r.Err
				}
				// A panic in RunTrial is a lost trial: terminal DUE,
				// preserved in the stream.
				tr = trialRun{trial: spec.draw(r.Point), obs: Observation{Err: r.Err}, out: DUE}
				outcomeCounters[DUE].Inc()
			}
			rep.add(tr)
			if e.Sink == nil {
				return nil
			}
			return e.Sink.Write(record(spec.Name, r.Point, tr))
		},
	}

	var err error
	if e.Indices != nil {
		_, err = runner.SweepIndices(ctx, combined, e.Indices)
	} else {
		_, err = runner.Sweep(ctx, combined)
	}
	rep.finish()
	return rep, err
}

func outcomeOf[C any](r sweep.Result[C, trialRun]) Outcome {
	if r.Err != nil {
		return DUE
	}
	return r.Out.out
}

// record flattens one trial into a sink record: the point's coordinates
// plus the outcome as labels, the numeric observability as metrics.
func record[C any](name string, pt sweep.Point[C], tr trialRun) sweep.Record {
	labels := pt.LabelMap()
	labels["outcome"] = tr.out.String()
	var metrics map[string]float64
	if tr.obs.Err == nil {
		metrics = map[string]float64{
			"bit":                   float64(tr.trial.Bit),
			"inject_cycle":          float64(tr.trial.Cycle),
			"core":                  float64(tr.obs.Core),
			"armed":                 b2f(tr.obs.Armed),
			"fired":                 b2f(tr.obs.Fired),
			"fire_cycle":            float64(tr.obs.FireCycle),
			"detected":              b2f(tr.obs.Detected),
			"detect_latency_cycles": float64(tr.obs.LatencyCycles),
			"detect_latency_instrs": float64(tr.obs.LatencyInstrs),
			"digest_match":          b2f(tr.obs.DigestOK && tr.obs.Digest == tr.obs.GoldenDigest),
			"fault_retired":         float64(tr.obs.Retired),
			"fault_squashed":        float64(tr.obs.Squashed),
		}
	}
	return sweep.NewRecord(name, pt.Index, labels, metrics, tr.obs.Err)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Validate sanity-checks a spec before a long campaign: a non-empty
// matrix and a drawable fault model.
func (s Spec[C]) Validate() error {
	s = s.withDefaults()
	if s.Matrix.Size() == 0 {
		return fmt.Errorf("campaign: empty cell matrix (every axis needs at least one value)")
	}
	if s.Model.BitHi < s.Model.BitLo {
		return fmt.Errorf("campaign: bit range [%d,%d] is empty", s.Model.BitLo, s.Model.BitHi)
	}
	if s.Model.BitHi > 63 {
		// ArmFault flips bit%64: accepting >63 would silently alias the
		// draws onto low bits while the results file reports the raw ones.
		return fmt.Errorf("campaign: bit range [%d,%d] exceeds the 63-bit result width", s.Model.BitLo, s.Model.BitHi)
	}
	for _, ax := range s.Matrix.Axes {
		if ax.Name == "trial" || ax.Name == "outcome" {
			return fmt.Errorf("campaign: axis name %q is reserved", ax.Name)
		}
	}
	return nil
}
