package campaign

import (
	"fmt"
	"io"
	"strings"

	"reunion/internal/stats"
	"reunion/internal/sweep"
)

// CellReport aggregates one cell's trials: outcome counts, masking
// sub-causes, and detection-latency distributions.
type CellReport struct {
	// Name is the cell's coordinates rendered "axis=value,axis=value".
	Name string
	// Labels are the cell's coordinates (no trial axis).
	Labels []sweep.Label

	Counts [numOutcomes]int64
	// Unfired counts masked trials whose fault was never consumed (armed
	// on a dead path, or the trial ended first) — architecturally masked
	// without ever entering the datapath.
	Unfired int64
	// Retired/Squashed total the flipped results that reached
	// architectural state vs. were discarded by rollback or squash.
	Retired, Squashed int64

	// Latency distributions over detected trials.
	LatencyCycles stats.Histogram
	LatencyInstrs stats.Histogram
}

// Trials returns the cell's total classified trials.
func (c *CellReport) Trials() int64 {
	var n int64
	for _, k := range c.Counts {
		n += k
	}
	return n
}

// Count returns the number of trials with the given outcome.
func (c *CellReport) Count(o Outcome) int64 { return c.Counts[o] }

// Rate returns the fraction of trials with the given outcome.
func (c *CellReport) Rate(o Outcome) float64 {
	n := c.Trials()
	if n == 0 {
		return 0
	}
	return float64(c.Counts[o]) / float64(n)
}

// RateCI returns the 95% Wilson interval for the outcome's rate.
func (c *CellReport) RateCI(o Outcome) (lo, hi float64) {
	return stats.WilsonCI(c.Counts[o], c.Trials())
}

// Coverage returns the detection coverage — detected / (detected + SDC +
// DUE), the fraction of architecturally consequential faults the
// machinery caught — with its 95% Wilson interval. ok is false when no
// trial was consequential (every fault masked), in which case coverage is
// undefined rather than perfect.
func (c *CellReport) Coverage() (p, lo, hi float64, ok bool) {
	k := c.Counts[Detected]
	n := k + c.Counts[SDC] + c.Counts[DUE]
	if n == 0 {
		return 0, 0, 1, false
	}
	lo, hi = stats.WilsonCI(k, n)
	return float64(k) / float64(n), lo, hi, true
}

func (c *CellReport) add(tr trialRun) {
	c.Counts[tr.out]++
	o := tr.obs
	c.Retired += o.Retired
	c.Squashed += o.Squashed
	if tr.out == Masked && !o.Fired {
		c.Unfired++
	}
	if tr.out == Detected {
		c.LatencyCycles.Add(o.LatencyCycles)
		c.LatencyInstrs.Add(o.LatencyInstrs)
	}
}

// Report aggregates a whole campaign: per-cell breakdowns plus a total.
type Report struct {
	Name          string
	TrialsPerCell int
	Cells         []CellReport
	Total         CellReport
}

func newReport[C any](name string, trials int, cells []sweep.Point[C]) *Report {
	r := &Report{Name: name, TrialsPerCell: trials, Total: CellReport{Name: "TOTAL"}}
	for _, c := range cells {
		r.Cells = append(r.Cells, CellReport{Name: c.Name(), Labels: c.Labels})
	}
	return r
}

func (r *Report) add(tr trialRun) {
	if tr.trial.Cell >= 0 && tr.trial.Cell < len(r.Cells) {
		r.Cells[tr.trial.Cell].add(tr)
	}
	r.Total.add(tr)
}

func (r *Report) finish() {}

// Cell returns the report for the cell with the given coordinates string
// (as rendered by sweep.Point.Name), or nil.
func (r *Report) Cell(name string) *CellReport {
	for i := range r.Cells {
		if r.Cells[i].Name == name {
			return &r.Cells[i]
		}
	}
	return nil
}

// CellBy returns the first cell whose labels include every given
// axis=value pair, or nil.
func (r *Report) CellBy(want map[string]string) *CellReport {
	for i := range r.Cells {
		m := make(map[string]string, len(r.Cells[i].Labels))
		for _, l := range r.Cells[i].Labels {
			m[l.Axis] = l.Value
		}
		match := true
		for k, v := range want {
			if m[k] != v {
				match = false
				break
			}
		}
		if match {
			return &r.Cells[i]
		}
	}
	return nil
}

// WriteTable renders the coverage summary: one row per cell plus the
// total, with outcome counts, detection coverage (95% Wilson interval),
// and detection-latency quantiles in cycles.
func (r *Report) WriteTable(w io.Writer) {
	nameW := len("TOTAL")
	for _, c := range r.Cells {
		if len(c.Name) > nameW {
			nameW = len(c.Name)
		}
	}
	fmt.Fprintf(w, "%-*s %7s %7s %8s %5s %5s %-19s %22s\n",
		nameW, "cell", "trials", "masked", "detected", "sdc", "due", "coverage [95% CI]", "latency p50/p95/max")
	row := func(c *CellReport) {
		cov := "      n/a          "
		if p, lo, hi, ok := c.Coverage(); ok {
			cov = fmt.Sprintf("%.3f [%.3f,%.3f]", p, lo, hi)
		}
		lat := strings.Repeat(" ", 22)
		if c.LatencyCycles.N() > 0 {
			lat = fmt.Sprintf("%8d/%6d/%6dc", c.LatencyCycles.Quantile(0.5),
				c.LatencyCycles.Quantile(0.95), c.LatencyCycles.Max())
		}
		fmt.Fprintf(w, "%-*s %7d %7d %8d %5d %5d %-19s %s\n",
			nameW, c.Name, c.Trials(), c.Count(Masked), c.Count(Detected),
			c.Count(SDC), c.Count(DUE), cov, lat)
	}
	for i := range r.Cells {
		row(&r.Cells[i])
	}
	row(&r.Total)
	fmt.Fprintf(w, "masked-unfired %d of %d masked; flipped results retired %d, squashed %d\n",
		r.Total.Unfired, r.Total.Count(Masked), r.Total.Retired, r.Total.Squashed)
}
