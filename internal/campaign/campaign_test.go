package campaign

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"reunion/internal/sweep"
)

// fakeCell is the cell configuration of the test campaigns.
type fakeCell struct {
	Mode     string
	Workload string
}

func fakeMatrix() sweep.Spec[fakeCell] {
	return sweep.Spec[fakeCell]{
		Name: "fake",
		Axes: []sweep.Axis[fakeCell]{
			sweep.NewAxis("mode", []string{"reunion", "non-redundant"},
				func(s string) string { return s },
				func(c *fakeCell, s string) { c.Mode = s }),
			sweep.NewAxis("workload", []string{"w1", "w2", "w3"},
				func(s string) string { return s },
				func(c *fakeCell, s string) { c.Workload = s }),
		},
	}
}

// fakeRun is a pure trial runner: the observation depends only on the
// cell and the draw, never on scheduling.
func fakeRun(_ context.Context, cell sweep.Point[fakeCell], t Trial) Observation {
	o := Observation{Completed: true, DigestOK: true, Armed: true, Core: t.Core(8)}
	o.Fired = t.Bit%4 != 0 // a quarter of the faults die unconsumed
	if !o.Fired {
		return o
	}
	o.FireCycle = t.Cycle
	if cell.Config.Mode == "reunion" {
		o.Detected = true
		o.LatencyCycles = int64(t.Bit) + 10
		o.LatencyInstrs = int64(t.Bit) / 8
		o.Squashed = 1
		return o
	}
	o.Retired = 1
	if t.Bit%2 == 0 {
		o.GoldenDigest = 1 // digest mismatch → SDC
	}
	return o
}

func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		o    Observation
		want Outcome
	}{
		{"error", Observation{Err: errors.New("boom")}, DUE},
		{"unrecoverable", Observation{Unrecoverable: true, Completed: true, DigestOK: true}, DUE},
		{"deadline", Observation{Completed: false, DigestOK: true}, DUE},
		{"no-digest", Observation{Completed: true, DigestOK: false}, DUE},
		{"detected", Observation{Completed: true, DigestOK: true, Fired: true, Detected: true}, Detected},
		{"unfired", Observation{Completed: true, DigestOK: true, Fired: false}, Masked},
		{"digest-match", Observation{Completed: true, DigestOK: true, Fired: true, Digest: 7, GoldenDigest: 7}, Masked},
		{"digest-mismatch", Observation{Completed: true, DigestOK: true, Fired: true, Digest: 7, GoldenDigest: 8}, SDC},
		{"detected-then-lost", Observation{Completed: false, DigestOK: true, Fired: true, Detected: true}, DUE},
		// A recovered run may legitimately diverge from golden through
		// racy shared memory as long as the flip itself was squashed...
		{"detected-race-divergence", Observation{Completed: true, DigestOK: true, Fired: true, Detected: true,
			Digest: 7, GoldenDigest: 8, Squashed: 1}, Detected},
		// ...but a flip that retired (aliased past the fingerprint) with a
		// diverged digest is corruption, whatever a later recovery claimed.
		{"detected-but-retired-corruption", Observation{Completed: true, DigestOK: true, Fired: true, Detected: true,
			Digest: 7, GoldenDigest: 8, Retired: 1}, SDC},
	}
	for _, c := range cases {
		if got := Classify(c.o); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestEveryTrialClassifiedExactlyOnce(t *testing.T) {
	eng := Engine[fakeCell]{
		Spec: Spec[fakeCell]{
			Matrix: fakeMatrix(),
			Model:  FaultModel{WindowHi: 1000},
			Trials: 20,
			Seed:   42,
		},
		RunTrial: fakeRun,
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	total := int64(0)
	for _, c := range rep.Cells {
		if got := c.Trials(); got != 20 {
			t.Fatalf("cell %s classified %d trials, want 20", c.Name, got)
		}
		total += c.Trials()
	}
	if total != rep.Total.Trials() || total != 6*20 {
		t.Fatalf("total %d (cells) vs %d (TOTAL), want %d", total, rep.Total.Trials(), 6*20)
	}
}

// TestJSONLDeterministicUnderParallelism mirrors internal/sweep's ordering
// test at the campaign level: the same Spec and seed must produce
// byte-identical JSONL at parallelism 1 and 8.
func TestJSONLDeterministicUnderParallelism(t *testing.T) {
	run := func(par int) []byte {
		var buf bytes.Buffer
		eng := Engine[fakeCell]{
			Spec: Spec[fakeCell]{
				Matrix:        fakeMatrix(),
				Model:         FaultModel{WindowHi: 500},
				Trials:        15,
				Seed:          7,
				StreamExclude: []string{"mode"},
			},
			// A scheduling wobble makes completion order differ from
			// matrix order under parallelism; emission order must not.
			RunTrial: func(ctx context.Context, cell sweep.Point[fakeCell], tr Trial) Observation {
				time.Sleep(time.Duration(tr.Bit%5) * time.Millisecond)
				return fakeRun(ctx, cell, tr)
			},
			Parallelism: par,
			Sink:        sweep.NewJSONL(&buf),
		}
		if _, err := eng.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := run(1)
	par := run(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("JSONL differs between -parallel 1 (%d bytes) and -parallel 8 (%d bytes)", len(seq), len(par))
	}
	if len(seq) == 0 {
		t.Fatal("no records emitted")
	}
}

// TestStreamExclude: cells differing only on an excluded axis draw the
// same fault stream; distinct trials draw distinct faults.
func TestStreamExclude(t *testing.T) {
	spec := Spec[fakeCell]{
		Matrix:        fakeMatrix(),
		Model:         FaultModel{WindowHi: 10_000},
		Trials:        50,
		Seed:          99,
		StreamExclude: []string{"mode"},
	}.withDefaults()
	pts := sweep.Spec[fakeCell]{
		Base: spec.Matrix.Base,
		Axes: append(append([]sweep.Axis[fakeCell]{}, spec.Matrix.Axes...), trialAxis[fakeCell](spec.Trials)),
	}.Points()
	byKey := make(map[string]Trial)
	distinct := make(map[string]bool)
	for _, pt := range pts {
		tr := spec.draw(pt)
		lm := pt.LabelMap()
		key := lm["workload"] + "/" + lm["trial"] // stream key: everything but mode
		if prev, ok := byKey[key]; ok {
			if prev.Bit != tr.Bit || prev.Cycle != tr.Cycle || prev.Core(64) != tr.Core(64) {
				t.Fatalf("key %s: draws differ across the excluded mode axis: %+v vs %+v", key, prev, tr)
			}
		}
		byKey[key] = tr
		distinct[fmt.Sprintf("%d/%d/%d", tr.Bit, tr.Cycle, tr.Core(64))] = true
	}
	if len(distinct) < 50 {
		t.Fatalf("only %d distinct draws across 150 stream keys — draws are degenerate", len(distinct))
	}
}

func TestDrawBounds(t *testing.T) {
	spec := Spec[fakeCell]{
		Matrix: fakeMatrix(),
		Model:  FaultModel{BitLo: 8, BitHi: 15, WindowLo: 100, WindowHi: 200},
		Trials: 200,
		Seed:   3,
	}.withDefaults()
	pts := sweep.Spec[fakeCell]{
		Base: spec.Matrix.Base,
		Axes: append(append([]sweep.Axis[fakeCell]{}, spec.Matrix.Axes...), trialAxis[fakeCell](spec.Trials)),
	}.Points()
	for _, pt := range pts {
		tr := spec.draw(pt)
		if tr.Bit < 8 || tr.Bit > 15 {
			t.Fatalf("bit %d outside [8,15]", tr.Bit)
		}
		if tr.Cycle < 100 || tr.Cycle >= 200 {
			t.Fatalf("cycle %d outside [100,200)", tr.Cycle)
		}
		if c := tr.Core(4); c < 0 || c >= 4 {
			t.Fatalf("core %d outside [0,4)", c)
		}
	}
}

func TestPanicInRunTrialBecomesDUE(t *testing.T) {
	eng := Engine[fakeCell]{
		Spec: Spec[fakeCell]{
			Matrix: fakeMatrix(),
			Trials: 2,
			Seed:   1,
		},
		RunTrial: func(ctx context.Context, cell sweep.Point[fakeCell], tr Trial) Observation {
			if cell.Config.Workload == "w2" {
				panic("trial blew up")
			}
			return fakeRun(ctx, cell, tr)
		},
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	w2 := rep.CellBy(map[string]string{"mode": "reunion", "workload": "w2"})
	if w2 == nil {
		t.Fatal("w2 cell missing")
	}
	if w2.Count(DUE) != 2 {
		t.Fatalf("panicking trials must classify DUE: %+v", w2.Counts)
	}
	if rep.Total.Trials() != 12 {
		t.Fatalf("panics lost trials: %d of 12", rep.Total.Trials())
	}
}

func TestReportCoverageAndTable(t *testing.T) {
	eng := Engine[fakeCell]{
		Spec: Spec[fakeCell]{
			Matrix:        fakeMatrix(),
			Model:         FaultModel{WindowHi: 1000},
			Trials:        40,
			Seed:          11,
			StreamExclude: []string{"mode"},
		},
		RunTrial: fakeRun,
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	re := rep.CellBy(map[string]string{"mode": "reunion", "workload": "w1"})
	nr := rep.CellBy(map[string]string{"mode": "non-redundant", "workload": "w1"})
	if re == nil || nr == nil {
		t.Fatal("cells missing")
	}
	if re.Count(SDC) != 0 {
		t.Fatalf("reunion cell has SDCs: %+v", re.Counts)
	}
	if nr.Count(SDC) == 0 {
		t.Fatalf("non-redundant cell has no SDCs under the fake model: %+v", nr.Counts)
	}
	p, lo, hi, ok := re.Coverage()
	if !ok || p != 1 || lo <= 0 || hi != 1 {
		t.Fatalf("reunion coverage: p=%v lo=%v hi=%v ok=%v", p, lo, hi, ok)
	}
	if n := re.LatencyCycles.N(); n != re.Count(Detected) {
		t.Fatalf("latency histogram has %d entries for %d detected trials", n, re.Count(Detected))
	}
	// Same fault stream → identical fired counts across the mode axis.
	if reFired, nrFired := re.Trials()-re.Unfired, nr.Trials()-nr.Unfired; reFired != nrFired {
		t.Fatalf("fired counts differ across the excluded mode axis: %d vs %d", reFired, nrFired)
	}
	var buf bytes.Buffer
	rep.WriteTable(&buf)
	out := buf.String()
	for _, want := range []string{"TOTAL", "coverage", "mode=reunion", "mode=non-redundant"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
}

func TestValidate(t *testing.T) {
	good := Spec[fakeCell]{Matrix: fakeMatrix()}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	empty := Spec[fakeCell]{Matrix: sweep.Spec[fakeCell]{Axes: []sweep.Axis[fakeCell]{{Name: "mode"}}}}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty matrix validated")
	}
	reserved := good
	reserved.Matrix.Axes = append(reserved.Matrix.Axes, sweep.Axis[fakeCell]{
		Name: "trial", Values: []sweep.Value[fakeCell]{{Name: "x"}}})
	if err := reserved.Validate(); err == nil {
		t.Fatal("reserved axis name validated")
	}
	wide := good
	wide.Model = FaultModel{BitLo: 48, BitHi: 70}
	if err := wide.Validate(); err == nil {
		t.Fatal("bit range beyond 63 validated (ArmFault would alias it mod 64)")
	}
}

// TestShardedRunReassemblesByteIdentical: splitting the flattened trial
// space across Engine.Indices slices and concatenating the slices' JSONL
// reproduces the whole-campaign stream byte for byte — draws and
// classification depend only on trial coordinates, never on which shard
// runs them.
func TestShardedRunReassemblesByteIdentical(t *testing.T) {
	spec := Spec[fakeCell]{
		Matrix:        fakeMatrix(),
		Model:         FaultModel{WindowHi: 500},
		Trials:        10,
		Seed:          99,
		StreamExclude: []string{"mode"},
	}
	total := fakeMatrix().Size() * spec.Trials

	var ref bytes.Buffer
	eng := Engine[fakeCell]{Spec: spec, RunTrial: fakeRun, Sink: sweep.NewJSONL(&ref)}
	refRep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const nshards = 4
	var merged bytes.Buffer
	var shardTrials int64
	for s := 0; s < nshards; s++ {
		lo, hi := total*s/nshards, total*(s+1)/nshards
		indices := make([]int, 0, hi-lo)
		for i := lo; i < hi; i++ {
			indices = append(indices, i)
		}
		sharded := Engine[fakeCell]{
			Spec:        spec,
			RunTrial:    fakeRun,
			Sink:        sweep.NewJSONL(&merged),
			Indices:     indices,
			Parallelism: 3,
		}
		rep, err := sharded.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if got := rep.Total.Trials(); got != int64(len(indices)) {
			t.Fatalf("shard %d report covers %d trials, want %d", s, got, len(indices))
		}
		shardTrials += rep.Total.Trials()
	}
	if shardTrials != refRep.Total.Trials() {
		t.Fatalf("shards classified %d trials, whole run %d", shardTrials, refRep.Total.Trials())
	}
	if !bytes.Equal(merged.Bytes(), ref.Bytes()) {
		t.Fatal("concatenated shard JSONL differs from the single-run stream")
	}
}

// TestCancelledTrialsNeverEnterTheStream: a trial skipped by
// cancellation (never executed) must stop emission, not be written as a
// DUE record — a resumable journal downstream would otherwise persist
// it and skip past it forever. Repeated iterations chase the scheduling
// race where a worker receives a job after the cancel.
func TestCancelledTrialsNeverEnterTheStream(t *testing.T) {
	for iter := 0; iter < 25; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		var executed atomic.Int64
		sink := sweep.NewMemory()
		eng := Engine[fakeCell]{
			Spec: Spec[fakeCell]{
				Matrix: fakeMatrix(),
				Model:  FaultModel{WindowHi: 100},
				Trials: 5,
				Seed:   uint64(iter + 1),
			},
			Parallelism: 4,
			Sink:        sink,
			RunTrial: func(_ context.Context, cell sweep.Point[fakeCell], tr Trial) Observation {
				if executed.Add(1) == 3 {
					cancel()
				}
				return Observation{Completed: true, DigestOK: true}
			},
		}
		_, err := eng.Run(ctx)
		cancel()
		if err == nil {
			t.Fatalf("iter %d: cancelled campaign returned nil error", iter)
		}
		for _, r := range sink.Records() {
			if strings.Contains(r.Err, "skipped") {
				t.Fatalf("iter %d: never-executed trial entered the stream: %+v", iter, r)
			}
		}
		if got := len(sink.Records()); int64(got) > executed.Load() {
			t.Fatalf("iter %d: %d records for %d executed trials", iter, got, executed.Load())
		}
	}
}
