// Package interconnect models the on-chip transport between private L1
// caches and the shared L2: a crossbar with fixed traversal latency and
// per-bank request queues with a configurable service rate.
//
// The queue is where shared-cache contention — one of the two sources of
// Reunion's loose-coupling slack (paper §5.3) — comes from: when mute
// phantom requests and vocal coherent requests pile onto the same bank,
// effective memory latency rises. Bank service bandwidth scales with the
// number of cores, matching the paper's "on-chip cache bandwidth scales in
// proportion with the number of cores" assumption.
package interconnect

// Item is a queued unit of work.
type Item any

// BankQueue is a FIFO with a bounded per-cycle service rate. Arrivals
// during cycle t are eligible for service at t+1 at the earliest.
type BankQueue struct {
	q        []queued
	perCycle int
	lastSrv  int64
	served   int

	// Stats
	Arrivals  int64
	TotalWait int64 // cycles items spent queued before service
	MaxDepth  int
}

type queued struct {
	item    Item
	arrived int64
}

// NewBankQueue returns a queue serving at most perCycle items per cycle.
func NewBankQueue(perCycle int) *BankQueue {
	if perCycle < 1 {
		perCycle = 1
	}
	return &BankQueue{perCycle: perCycle}
}

// SetRate changes the per-cycle service rate (used when scaling bandwidth
// with core count).
func (b *BankQueue) SetRate(perCycle int) {
	if perCycle < 1 {
		perCycle = 1
	}
	b.perCycle = perCycle
}

// Push enqueues an item at the given cycle.
func (b *BankQueue) Push(now int64, it Item) {
	b.q = append(b.q, queued{item: it, arrived: now})
	b.Arrivals++
	if len(b.q) > b.MaxDepth {
		b.MaxDepth = len(b.q)
	}
}

// Pop dequeues the next serviceable item at the given cycle, honouring the
// service rate. It returns nil when the queue is empty or the bank has
// exhausted its bandwidth this cycle.
func (b *BankQueue) Pop(now int64) Item {
	if len(b.q) == 0 {
		return nil
	}
	if now != b.lastSrv {
		b.lastSrv = now
		b.served = 0
	}
	if b.served >= b.perCycle {
		return nil
	}
	head := b.q[0]
	if head.arrived >= now {
		return nil // arrived this cycle; serviceable next cycle
	}
	copy(b.q, b.q[1:])
	b.q = b.q[:len(b.q)-1]
	b.served++
	b.TotalWait += now - head.arrived
	return head.item
}

// Len returns the current queue depth.
func (b *BankQueue) Len() int { return len(b.q) }

// ResetStats zeroes the contention counters (measurement-window
// boundary).
func (b *BankQueue) ResetStats() { b.Arrivals, b.TotalWait, b.MaxDepth = 0, 0, 0 }

// BankQueueState is a checkpoint of the queue: contents (items shared —
// they are immutable requests), service bookkeeping, and counters.
type BankQueueState struct {
	q                 []queued
	lastSrv           int64
	served            int
	arrivals, totWait int64
	maxDepth          int
}

// Snapshot captures the queue state. Read-only.
func (b *BankQueue) Snapshot() BankQueueState {
	return BankQueueState{
		q:       append([]queued(nil), b.q...),
		lastSrv: b.lastSrv, served: b.served,
		arrivals: b.Arrivals, totWait: b.TotalWait, maxDepth: b.MaxDepth,
	}
}

// Restore rewrites the queue from a snapshot.
func (b *BankQueue) Restore(s BankQueueState) {
	b.q = append([]queued(nil), s.q...)
	b.lastSrv, b.served = s.lastSrv, s.served
	b.Arrivals, b.TotalWait, b.MaxDepth = s.arrivals, s.totWait, s.maxDepth
}
