package interconnect

// Checkpoint-serialization accessors. The queue items are requests owned
// by the coherence layer, so the byte codec lives there; this file only
// exposes the snapshot's contents and a constructor for decoded parts.

// Each calls fn for every queued item in FIFO order.
func (s *BankQueueState) Each(fn func(item Item, arrived int64)) {
	for _, e := range s.q {
		fn(e.item, e.arrived)
	}
}

// Len returns the snapshot's queue depth.
func (s *BankQueueState) Len() int { return len(s.q) }

// Meta returns the snapshot's service bookkeeping and counters.
func (s *BankQueueState) Meta() (lastSrv int64, served int, arrivals, totWait int64, maxDepth int) {
	return s.lastSrv, s.served, s.arrivals, s.totWait, s.maxDepth
}

// NewBankQueueState assembles a queue snapshot from decoded parts. items
// and arrived must have equal length and FIFO order.
func NewBankQueueState(items []Item, arrived []int64,
	lastSrv int64, served int, arrivals, totWait int64, maxDepth int) BankQueueState {
	s := BankQueueState{
		lastSrv: lastSrv, served: served,
		arrivals: arrivals, totWait: totWait, maxDepth: maxDepth,
	}
	for i := range items {
		s.q = append(s.q, queued{item: items[i], arrived: arrived[i]})
	}
	return s
}
