package interconnect

import "testing"

func TestFIFOOrder(t *testing.T) {
	q := NewBankQueue(1)
	q.Push(0, "a")
	q.Push(0, "b")
	q.Push(0, "c")
	var got []string
	for cyc := int64(1); cyc < 10; cyc++ {
		for {
			it := q.Pop(cyc)
			if it == nil {
				break
			}
			got = append(got, it.(string))
		}
	}
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("order: %v", got)
	}
}

func TestServiceRateLimit(t *testing.T) {
	q := NewBankQueue(2)
	for i := 0; i < 10; i++ {
		q.Push(0, i)
	}
	served := 0
	for cyc := int64(1); cyc <= 3; cyc++ {
		for q.Pop(cyc) != nil {
			served++
		}
	}
	if served != 6 { // 2 per cycle * 3 cycles
		t.Fatalf("served %d in 3 cycles at rate 2", served)
	}
}

func TestSameCycleArrivalNotServed(t *testing.T) {
	q := NewBankQueue(4)
	q.Push(5, "x")
	if q.Pop(5) != nil {
		t.Fatal("served an item the cycle it arrived")
	}
	if q.Pop(6) == nil {
		t.Fatal("not served the following cycle")
	}
}

func TestWaitAccounting(t *testing.T) {
	q := NewBankQueue(1)
	q.Push(0, "a")
	q.Push(0, "b")
	if q.Pop(3) == nil { // a waited 3
		t.Fatal("pop failed")
	}
	if q.Pop(5) == nil { // b waited 5
		t.Fatal("pop failed")
	}
	if q.TotalWait != 8 {
		t.Fatalf("TotalWait=%d want 8", q.TotalWait)
	}
	if q.Arrivals != 2 || q.MaxDepth != 2 {
		t.Fatalf("Arrivals=%d MaxDepth=%d", q.Arrivals, q.MaxDepth)
	}
}

func TestRateFloor(t *testing.T) {
	q := NewBankQueue(0) // clamps to 1
	q.Push(0, "a")
	if q.Pop(1) == nil {
		t.Fatal("rate floor broken")
	}
	q.SetRate(-3)
	q.Push(1, "b")
	if q.Pop(2) == nil {
		t.Fatal("SetRate floor broken")
	}
}
