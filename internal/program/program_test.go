package program

import (
	"testing"

	"reunion/internal/isa"
)

func TestLabelsForwardAndBackward(t *testing.T) {
	b := NewBuilder("t", 0x1000)
	b.Label("top")
	b.Addi(1, 1, 1)
	b.Beq(1, 2, "end") // forward reference
	b.Jmp("top")       // backward reference
	b.Label("end")
	b.Halt()
	th := b.Build()
	if th.Code[1].Imm != 3 {
		t.Fatalf("forward label resolved to %d want 3", th.Code[1].Imm)
	}
	if th.Code[2].Imm != 0 {
		t.Fatalf("backward label resolved to %d want 0", th.Code[2].Imm)
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t", 0)
	b.Label("x")
	b.Label("x")
}

func TestUndefinedLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b := NewBuilder("t", 0)
	b.Jmp("nowhere")
	b.Build()
}

func TestPCAddrAndFetch(t *testing.T) {
	b := NewBuilder("t", 0x4000)
	b.Nop()
	b.Halt()
	th := b.Build()
	if th.PCAddr(0) != 0x4000 || th.PCAddr(1) != 0x4000+isa.Bytes {
		t.Fatal("PCAddr arithmetic")
	}
	if in, ok := th.Fetch(0); !ok || in.Op != isa.Nop {
		t.Fatal("fetch 0")
	}
	if _, ok := th.Fetch(2); ok {
		t.Fatal("fetch past end must fail")
	}
	if _, ok := th.Fetch(-1); ok {
		t.Fatal("fetch negative must fail")
	}
}

func TestInitRegs(t *testing.T) {
	b := NewBuilder("t", 0)
	b.InitReg(5, -42)
	b.Halt()
	th := b.Build()
	if th.InitRegs[5] != -42 {
		t.Fatal("InitReg lost")
	}
}

func TestSpinlockShape(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Spinlock(1, 11)
	b.Unlock(1)
	b.Halt()
	th := b.Build()
	// Acquire: ld, bne, li, li, cas, bne. Release: membar, li, st.
	wantOps := []isa.Op{isa.Ld, isa.Bne, isa.Li, isa.Li, isa.Cas, isa.Bne,
		isa.Membar, isa.Li, isa.St, isa.Halt}
	if len(th.Code) != len(wantOps) {
		t.Fatalf("spinlock+unlock emitted %d instrs", len(th.Code))
	}
	for i, op := range wantOps {
		if th.Code[i].Op != op {
			t.Fatalf("instr %d is %v want %v", i, th.Code[i].Op, op)
		}
	}
	// Both branches must target the acquire loop head.
	if th.Code[1].Imm != 0 || th.Code[5].Imm != 0 {
		t.Fatal("spinlock retry targets wrong")
	}
}

func TestEmitHelpersEncode(t *testing.T) {
	b := NewBuilder("t", 0)
	b.Li(3, 7)
	b.Ld(4, 3, 16)
	b.St(3, 24, 4)
	b.Cas(5, 3, 4)
	b.DevLd(6, 3, 0)
	b.DevSt(3, 8, 6)
	b.Trap(2)
	b.Membar()
	th := b.Build()
	checks := []struct {
		i   int
		op  isa.Op
		rd  uint8
		rs1 uint8
		rs2 uint8
		imm int64
	}{
		{0, isa.Li, 3, 0, 0, 7},
		{1, isa.Ld, 4, 3, 0, 16},
		{2, isa.St, 0, 3, 4, 24},
		{3, isa.Cas, 5, 3, 4, 0},
		{4, isa.DevLd, 6, 3, 0, 0},
		{5, isa.DevSt, 0, 3, 6, 8},
		{6, isa.Trap, 0, 0, 0, 2},
		{7, isa.Membar, 0, 0, 0, 0},
	}
	for _, c := range checks {
		in := th.Code[c.i]
		if in.Op != c.op || in.Rd != c.rd || in.Rs1 != c.rs1 || in.Rs2 != c.rs2 || in.Imm != c.imm {
			t.Errorf("instr %d: %+v want op=%v rd=%d rs1=%d rs2=%d imm=%d",
				c.i, in, c.op, c.rd, c.rs1, c.rs2, c.imm)
		}
	}
}
